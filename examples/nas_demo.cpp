// Example: run any NAS kernel under any connection-management strategy
// and device, and print the paper's headline numbers for that run — CPU
// time, verification, VIs per process, pinned memory.
//
//   ./examples/nas_demo [kernel] [class] [nprocs] [model] [device]
//   ./examples/nas_demo CG S 16 ondemand clan
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/nas/common.h"
#include "src/odmpi.h"

using namespace odmpi;

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "CG";
  const char cls_char = argc > 2 ? argv[2][0] : 'S';
  const int nprocs = argc > 3 ? std::atoi(argv[3]) : 16;
  const std::string model_s = argc > 4 ? argv[4] : "ondemand";
  const std::string device_s = argc > 5 ? argv[5] : "clan";

  mpi::JobOptions opt;
  opt.profile = device_s == "bvia" ? via::DeviceProfile::bvia()
                                   : via::DeviceProfile::clan();
  if (model_s == "static" || model_s == "static-p2p") {
    opt.device.connection_model = mpi::ConnectionModel::kStaticPeerToPeer;
  } else if (model_s == "static-cs") {
    opt.device.connection_model = mpi::ConnectionModel::kStaticClientServer;
  } else {
    opt.device.connection_model = mpi::ConnectionModel::kOnDemand;
  }

  const nas::Class cls = nas::class_from_char(cls_char);
  nas::KernelResult result;
  mpi::World world(nprocs, opt);
  const mpi::RunResult run = world.run_job([&](mpi::Comm& comm) {
    nas::KernelResult r = nas::kernel_by_name(kernel)(comm, cls);
    if (comm.rank() == 0) result = r;
  });
  if (!run.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", run.summary().c_str());
    return 1;
  }

  std::int64_t pinned = 0;
  for (int r = 0; r < nprocs; ++r)
    pinned += world.report(r).pinned_bytes_peak;

  std::printf("%s.%s.%d on %s with %s connections\n", result.name.c_str(),
              nas::to_string(cls), nprocs, opt.profile.name.c_str(),
              to_string(opt.device.connection_model));
  std::printf("  CPU time      : %.2f s (virtual)\n", result.time_sec);
  std::printf("  verification  : %s\n",
              result.verified ? "SUCCESSFUL" : "FAILED");
  std::printf("  VIs/process   : %.2f of %d possible\n",
              world.metrics().mean_vis_per_process, nprocs - 1);
  std::printf("  mean init     : %.1f us\n", world.metrics().mean_init_us);
  std::printf("  pinned memory : %.2f MB across the job\n", pinned / 1e6);
  return result.verified ? 0 : 2;
}
