// Example: master/worker task farm with MPI_ANY_SOURCE — the pattern that
// stresses on-demand connection management hardest (paper section 3.5):
// the master's wildcard receive forces connection requests to every
// worker, because any of them might report next.
//
// The master hands out chunks of a numerical integration; workers request
// work with a wildcard-received message and return partial sums.
//
//   ./examples/master_worker [nprocs] [tasks]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/odmpi.h"

using namespace odmpi;

namespace {
constexpr mpi::Tag kTagRequest = 1;
constexpr mpi::Tag kTagWork = 2;
constexpr mpi::Tag kTagResult = 3;
constexpr mpi::Tag kTagStop = 4;

// Integrand: 4/(1+x^2) over [0,1] integrates to pi.
double integrate_chunk(int chunk, int chunks) {
  constexpr int kSamples = 512;
  const double lo = static_cast<double>(chunk) / chunks;
  const double hi = static_cast<double>(chunk + 1) / chunks;
  const double h = (hi - lo) / kSamples;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = lo + (i + 0.5) * h;
    sum += 4.0 / (1.0 + x * x) * h;
  }
  return sum;
}
}  // namespace

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
  const int tasks = argc > 2 ? std::atoi(argv[2]) : 64;

  mpi::JobOptions opt;
  opt.device.connection_model = mpi::ConnectionModel::kOnDemand;

  mpi::World world(nprocs, opt);
  const mpi::RunResult result = world.run_job([tasks](mpi::Comm& comm) {
    const int me = comm.rank();
    if (me == 0) {
      // Master: wildcard-receive requests/results, send out chunk ids.
      double pi = 0;
      int next_chunk = 0, outstanding = 0, idle_workers = 0;
      const int workers = comm.size() - 1;
      while (idle_workers < workers) {
        double payload[2];  // [0] = worker's partial sum or request marker
        mpi::MsgStatus st =
            comm.recv(payload, 2, mpi::kDouble, mpi::kAnySource, mpi::kAnyTag);
        if (st.tag == kTagResult) {
          pi += payload[0];
          --outstanding;
        }
        if (next_chunk < tasks) {
          std::int32_t chunk = next_chunk++;
          comm.send(&chunk, 1, mpi::kInt32, st.source, kTagWork);
          ++outstanding;
        } else {
          std::int32_t stop = -1;
          comm.send(&stop, 1, mpi::kInt32, st.source, kTagStop);
          ++idle_workers;
        }
      }
      std::printf("pi ~= %.10f (err %.2e), %d tasks over %d workers\n", pi,
                  std::abs(pi - M_PI), tasks, workers);
      (void)outstanding;
    } else {
      // Worker: ask for work until told to stop.
      double hello[2] = {0, 0};
      comm.send(hello, 2, mpi::kDouble, 0, kTagRequest);
      for (;;) {
        std::int32_t chunk = 0;
        mpi::MsgStatus st = comm.recv(&chunk, 1, mpi::kInt32, 0, mpi::kAnyTag);
        if (st.tag == kTagStop) break;
        double result[2] = {integrate_chunk(chunk, tasks), 0};
        // Model some compute time for the chunk.
        sim::Process::current()->sleep(sim::microseconds(200));
        comm.send(result, 2, mpi::kDouble, 0, kTagResult);
      }
    }
  });
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", result.summary().c_str());
    return 1;
  }
  std::printf("\nmaster created %d VIs (wildcard receives connect to the "
              "whole communicator);\nworkers created:",
              world.report(0).vis_created);
  for (int r = 1; r < nprocs; ++r) {
    std::printf(" %d", world.report(r).vis_created);
  }
  std::printf("\n");
  return 0;
}
