// Quickstart: the smallest useful odmpi program.
//
// Simulates an 8-process MPI job on a cLAN-like cluster with on-demand
// connection management: a ring exchange, an allreduce, and a look at the
// resource numbers that motivated the paper — how many VI endpoints each
// process actually created versus what a fully-connected (static) setup
// would have pinned.
//
//   ./examples/quickstart [nprocs] [static|ondemand]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/odmpi.h"

using namespace odmpi;

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
  const bool use_static = argc > 2 && std::strcmp(argv[2], "static") == 0;

  mpi::JobOptions opt;
  opt.profile = via::DeviceProfile::clan();
  opt.device.connection_model = use_static
                                    ? mpi::ConnectionModel::kStaticPeerToPeer
                                    : mpi::ConnectionModel::kOnDemand;

  mpi::World world(nprocs, opt);
  const mpi::RunResult result = world.run_job([](mpi::Comm& comm) {
    const int me = comm.rank();
    const int n = comm.size();

    // Pass a token around the ring.
    const int right = (me + 1) % n;
    const int left = (me - 1 + n) % n;
    std::int32_t token = me, from_left = -1;
    comm.sendrecv(&token, 1, mpi::kInt32, right, /*sendtag=*/0, &from_left, 1,
                  mpi::kInt32, left, /*recvtag=*/0);

    // Sum everyone's rank.
    const std::int64_t total = comm.allreduce_one<std::int64_t>(me,
                                                                mpi::Op::kSum);
    if (me == 0) {
      std::printf("ring token from rank %d, allreduce sum = %lld "
                  "(expect %d)\n",
                  from_left, static_cast<long long>(total),
                  n * (n - 1) / 2);
    }
  });
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", result.summary().c_str());
    return 1;
  }

  double vis = 0, init_us = 0;
  std::int64_t pinned = 0;
  for (int r = 0; r < nprocs; ++r) {
    vis += world.report(r).vis_created;
    init_us += sim::to_us(world.report(r).init_time);
    pinned += world.report(r).pinned_bytes_peak;
  }
  std::printf("\nconnection management: %s\n",
              to_string(opt.device.connection_model));
  std::printf("  mean VIs created per process : %.2f (static would be %d)\n",
              vis / nprocs, nprocs - 1);
  std::printf("  mean MPI_Init time           : %.1f us\n", init_us / nprocs);
  std::printf("  total pinned memory (peak)   : %.2f MB\n", pinned / 1.0e6);
  std::printf("  virtual job duration         : %.3f ms\n",
              sim::to_ms(world.completion_time()));
  return 0;
}
