// Example: 2D heat diffusion with halo exchange — the classic
// nearest-neighbour MPI application (the kind Table 1 shows uses a
// handful of the N-1 possible connections).
//
// A square grid of ranks each owns a tile of the plate; every step
// exchanges ghost rows/columns with the four neighbours and applies a
// Jacobi stencil; every 50 steps an allreduce tracks the global heat.
// At the end the example prints how the on-demand VI counts compare to a
// full mesh.
//
//   ./examples/heat_stencil [nprocs] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/odmpi.h"

using namespace odmpi;

namespace {

constexpr int kTile = 32;  // local tile edge

struct Tile {
  std::vector<double> cur, next;
  int px, py, x, y;  // process grid and my coordinates

  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * (kTile + 2) +
           static_cast<std::size_t>(j);
  }
  int rank_of(int gx, int gy) const { return gx * py + gy; }
};

}  // namespace

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 16;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

  mpi::JobOptions opt;
  opt.device.connection_model = mpi::ConnectionModel::kOnDemand;

  mpi::World world(nprocs, opt);
  const mpi::RunResult result = world.run_job([steps](mpi::Comm& comm) {
    Tile t;
    // Near-square process grid.
    t.px = static_cast<int>(std::lround(std::sqrt(comm.size())));
    while (comm.size() % t.px != 0) --t.px;
    t.py = comm.size() / t.px;
    t.x = comm.rank() / t.py;
    t.y = comm.rank() % t.py;

    t.cur.assign(static_cast<std::size_t>((kTile + 2) * (kTile + 2)), 0.0);
    t.next = t.cur;
    // A hot spot on the rank owning the plate centre.
    if (t.x == t.px / 2 && t.y == t.py / 2) {
      for (int i = kTile / 2 - 2; i < kTile / 2 + 2; ++i)
        for (int j = kTile / 2 - 2; j < kTile / 2 + 2; ++j)
          t.cur[t.idx(i + 1, j + 1)] = 100.0;
    }

    std::vector<double> ghost_send(kTile), ghost_recv(kTile);
    double global_heat = 0;
    for (int step = 0; step < steps; ++step) {
      // Exchange the four halos (non-periodic: edges use kProcNull).
      struct Side {
        int partner;
        bool row;     // exchanging a row (true) or a column
        int send_at;  // interior line to send
        int recv_at;  // ghost line to fill
      };
      const Side sides[4] = {
          {t.x > 0 ? t.rank_of(t.x - 1, t.y) : mpi::kProcNull, true, 1, 0},
          {t.x + 1 < t.px ? t.rank_of(t.x + 1, t.y) : mpi::kProcNull, true,
           kTile, kTile + 1},
          {t.y > 0 ? t.rank_of(t.x, t.y - 1) : mpi::kProcNull, false, 1, 0},
          {t.y + 1 < t.py ? t.rank_of(t.x, t.y + 1) : mpi::kProcNull, false,
           kTile, kTile + 1},
      };
      for (const Side& s : sides) {
        for (int k = 0; k < kTile; ++k) {
          ghost_send[static_cast<std::size_t>(k)] =
              s.row ? t.cur[t.idx(s.send_at, k + 1)]
                    : t.cur[t.idx(k + 1, s.send_at)];
        }
        comm.sendrecv(ghost_send.data(), kTile, mpi::kDouble, s.partner, step,
                      ghost_recv.data(), kTile, mpi::kDouble, s.partner,
                      step);
        if (s.partner != mpi::kProcNull) {
          for (int k = 0; k < kTile; ++k) {
            if (s.row) {
              t.cur[t.idx(s.recv_at, k + 1)] =
                  ghost_recv[static_cast<std::size_t>(k)];
            } else {
              t.cur[t.idx(k + 1, s.recv_at)] =
                  ghost_recv[static_cast<std::size_t>(k)];
            }
          }
        }
      }

      // Jacobi step.
      for (int i = 1; i <= kTile; ++i) {
        for (int j = 1; j <= kTile; ++j) {
          t.next[t.idx(i, j)] =
              t.cur[t.idx(i, j)] +
              0.2 * (t.cur[t.idx(i - 1, j)] + t.cur[t.idx(i + 1, j)] +
                     t.cur[t.idx(i, j - 1)] + t.cur[t.idx(i, j + 1)] -
                     4.0 * t.cur[t.idx(i, j)]);
        }
      }
      std::swap(t.cur, t.next);

      if (step % 50 == 49) {
        double local = 0;
        for (int i = 1; i <= kTile; ++i)
          for (int j = 1; j <= kTile; ++j) local += t.cur[t.idx(i, j)];
        comm.allreduce(&local, &global_heat, 1, mpi::kDouble, mpi::Op::kSum);
      }
    }
    if (comm.rank() == 0) {
      std::printf("after %d steps: total heat %.4f (diffusion conserves it)\n",
                  steps, global_heat);
    }
  });
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", result.summary().c_str());
    return 1;
  }

  std::printf("\nper-process VI endpoints (on-demand):\n");
  double avg = 0;
  for (int r = 0; r < nprocs; ++r) avg += world.report(r).vis_created;
  std::printf("  mean %.2f of a possible %d — the stencil only ever needed "
              "its neighbours\n",
              avg / nprocs, nprocs - 1);
  return 0;
}
