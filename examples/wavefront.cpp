// Example: Sweep3D-style wavefront transport sweeps — one of the Table 1
// applications. A 2D process grid performs sweeps from each of the four
// corners; a rank can start a plane only after receiving the boundary
// angles from its upstream neighbours, so the computation ripples
// diagonally across the grid. A classic case where on-demand connection
// management pins exactly the 2-4 neighbour connections each rank uses.
//
//   ./examples/wavefront [nprocs] [planes]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/odmpi.h"

using namespace odmpi;

namespace {
constexpr int kLine = 24;  // boundary values per plane edge
constexpr mpi::Tag kTagSweep = 9;
}  // namespace

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 16;
  const int planes = argc > 2 ? std::atoi(argv[2]) : 8;

  mpi::JobOptions opt;
  opt.device.connection_model = mpi::ConnectionModel::kOnDemand;

  mpi::World world(nprocs, opt);
  const mpi::RunResult result = world.run_job([planes](mpi::Comm& comm) {
    int px = static_cast<int>(std::lround(std::sqrt(comm.size())));
    while (comm.size() % px != 0) --px;
    const int py = comm.size() / px;
    const int x = comm.rank() / py, y = comm.rank() % py;
    const auto rank_of = [py](int gx, int gy) { return gx * py + gy; };

    std::vector<double> cell(kLine * kLine, 1.0);
    std::vector<double> in_x(kLine), in_y(kLine), out_x(kLine), out_y(kLine);

    // Four sweep directions (the eight-octant sweep collapsed to four in
    // 2D): (dx, dy) gives the downstream direction.
    const int dirs[4][2] = {{+1, +1}, {+1, -1}, {-1, +1}, {-1, -1}};
    for (const auto& d : dirs) {
      const int from_x = x - d[0], from_y = y - d[1];
      const int to_x = x + d[0], to_y = y + d[1];
      const bool has_up_x = from_x >= 0 && from_x < px;
      const bool has_up_y = from_y >= 0 && from_y < py;
      const bool has_dn_x = to_x >= 0 && to_x < px;
      const bool has_dn_y = to_y >= 0 && to_y < py;
      for (int k = 0; k < planes; ++k) {
        if (has_up_x) {
          comm.recv(in_x.data(), kLine, mpi::kDouble, rank_of(from_x, y),
                    kTagSweep);
        } else {
          std::fill(in_x.begin(), in_x.end(), 1.0);
        }
        if (has_up_y) {
          comm.recv(in_y.data(), kLine, mpi::kDouble, rank_of(x, from_y),
                    kTagSweep);
        } else {
          std::fill(in_y.begin(), in_y.end(), 1.0);
        }
        // Transport recurrence across the local cell.
        for (int i = 0; i < kLine; ++i) {
          for (int j = 0; j < kLine; ++j) {
            const double up_i = i > 0 ? cell[(i - 1) * kLine + j] : in_x[j];
            const double up_j = j > 0 ? cell[i * kLine + j - 1] : in_y[i];
            cell[i * kLine + j] =
                0.5 * cell[i * kLine + j] + 0.25 * (up_i + up_j);
          }
        }
        for (int j = 0; j < kLine; ++j)
          out_x[j] = cell[(kLine - 1) * kLine + j];
        for (int i = 0; i < kLine; ++i)
          out_y[i] = cell[i * kLine + kLine - 1];
        if (has_dn_x) {
          comm.send(out_x.data(), kLine, mpi::kDouble, rank_of(to_x, y),
                    kTagSweep);
        }
        if (has_dn_y) {
          comm.send(out_y.data(), kLine, mpi::kDouble, rank_of(x, to_y),
                    kTagSweep);
        }
      }
    }
    double local = 0;
    for (double v : cell) local += v;
    double total = 0;
    comm.allreduce(&local, &total, 1, mpi::kDouble, mpi::Op::kSum);
    if (comm.rank() == 0) {
      std::printf("wavefront flux after %d planes x 4 octants: %.4f\n",
                  planes, total);
    }
  });
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", result.summary().c_str());
    return 1;
  }
  double vis = 0;
  for (int r = 0; r < nprocs; ++r) vis += world.report(r).vis_created;
  std::printf("mean VIs/process: %.2f — Table 1 reports 3.5 distinct\n"
              "destinations for Sweep3D at 64 processes; a static setup\n"
              "would pin %d per process.\n",
              vis / nprocs, nprocs - 1);
  return 0;
}
