#include "src/mpi/matching.h"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace odmpi::mpi {

void MatchingEngine::add_posted(RequestPtr recv) {
  const std::uint64_t key = key_of(recv->context, recv->src);
  posted_[key].push_back(PostedEntry{next_seq_++, std::move(recv)});
  ++posted_count_;
}

RequestPtr MatchingEngine::match_arrival(ContextId ctx, Rank src, Tag tag) {
  // Candidates come from at most two buckets: receives naming this source
  // and wildcard-source receives in the same context. The older of the
  // two first-matches (by global sequence) is what a linear scan of one
  // combined queue would have found.
  PostedBucket* buckets[2] = {nullptr, nullptr};
  if (auto it = posted_.find(key_of(ctx, src)); it != posted_.end()) {
    buckets[0] = &it->second;
  }
  if (auto it = posted_.find(key_of(ctx, kAnySource)); it != posted_.end()) {
    buckets[1] = &it->second;
  }

  PostedBucket* best_bucket = nullptr;
  PostedBucket::iterator best;
  for (PostedBucket* bucket : buckets) {
    if (bucket == nullptr) continue;
    for (auto it = bucket->begin(); it != bucket->end(); ++it) {
      const RequestPtr& req = it->req;
      if (req->tag != kAnyTag && req->tag != tag) continue;
      if (best_bucket == nullptr || it->seq < best->seq) {
        best_bucket = bucket;
        best = it;
      }
      break;  // bucket is in post order: the first tag match is oldest
    }
  }
  if (best_bucket == nullptr) return nullptr;
  RequestPtr found = std::move(best->req);
  best_bucket->erase(best);
  --posted_count_;
  // The emptied bucket stays in the map: a ping-pong pattern re-creates
  // the same (context, source) key on every message, and a fresh deque
  // costs a heap allocation. Key count is bounded by peers × contexts.
  return found;
}

UnexpectedMsg* MatchingEngine::peek_unexpected(ContextId ctx, Rank src,
                                               Tag tag) {
  if (src != kAnySource) {
    auto it = unexpected_.find(key_of(ctx, src));
    if (it == unexpected_.end()) return nullptr;
    for (const auto& msg : it->second) {
      if (msg->claimed != nullptr) continue;
      if (tag == kAnyTag || tag == msg->tag) return msg.get();
    }
    return nullptr;
  }
  // Wildcard source: merge the per-bucket first matches by sequence.
  // Contexts share the map, so skip foreign-context buckets; bucket
  // counts stay small (one per communicating peer per context).
  UnexpectedMsg* best = nullptr;
  for (auto& [key, bucket] : unexpected_) {
    if (ctx_of_key(key) != ctx) continue;
    for (const auto& msg : bucket) {
      if (msg->claimed != nullptr) continue;
      if (tag != kAnyTag && tag != msg->tag) continue;
      if (best == nullptr || msg->match_seq < best->match_seq) {
        best = msg.get();
      }
      break;  // first unclaimed tag match is this bucket's oldest
    }
  }
  return best;
}

UnexpectedMsg* MatchingEngine::match_posted(const RequestPtr& recv) {
  return peek_unexpected(recv->context, recv->src, recv->tag);
}

UnexpectedMsg* MatchingEngine::add_unexpected(
    std::unique_ptr<UnexpectedMsg> msg) {
  msg->match_seq = next_seq_++;
  auto& bucket = unexpected_[key_of(msg->context, msg->src)];
  bucket.push_back(std::move(msg));
  ++unexpected_count_;
  return bucket.back().get();
}

void MatchingEngine::remove_unexpected(UnexpectedMsg* msg) {
  auto bucket_it = unexpected_.find(key_of(msg->context, msg->src));
  assert(bucket_it != unexpected_.end());
  auto& bucket = bucket_it->second;
  auto it = std::find_if(bucket.begin(), bucket.end(),
                         [msg](const auto& m) { return m.get() == msg; });
  assert(it != bucket.end());
  bucket.erase(it);
  --unexpected_count_;
  // Empty buckets are kept (see match_arrival); wildcard scans skip them.
}

bool MatchingEngine::cancel_posted(const RequestPtr& recv) {
  auto bucket_it = posted_.find(key_of(recv->context, recv->src));
  if (bucket_it == posted_.end()) return false;
  auto& bucket = bucket_it->second;
  auto it =
      std::find_if(bucket.begin(), bucket.end(),
                   [&recv](const PostedEntry& e) { return e.req == recv; });
  if (it == bucket.end()) return false;
  bucket.erase(it);
  --posted_count_;
  return true;
}

std::vector<RequestPtr> MatchingEngine::take_posted_from(Rank src) {
  // Collect across every context bucket naming `src`, then restore post
  // order by sequence (callers fail these receives in a deterministic
  // order).
  std::vector<PostedEntry> taken;
  for (auto it = posted_.begin(); it != posted_.end();) {
    if (rank_of_key(it->first) != src) {
      ++it;
      continue;
    }
    for (PostedEntry& e : it->second) {
      taken.push_back(std::move(e));
      --posted_count_;
    }
    it = posted_.erase(it);
  }
  std::sort(taken.begin(), taken.end(),
            [](const PostedEntry& a, const PostedEntry& b) {
              return a.seq < b.seq;
            });
  std::vector<RequestPtr> out;
  out.reserve(taken.size());
  for (PostedEntry& e : taken) out.push_back(std::move(e.req));
  return out;
}

std::vector<RequestPtr> MatchingEngine::take_posted_wildcards(
    const std::function<bool(const RequestPtr&)>& doomed) {
  std::vector<PostedEntry> taken;
  for (auto it = posted_.begin(); it != posted_.end();) {
    if (rank_of_key(it->first) != kAnySource) {
      ++it;
      continue;
    }
    auto& bucket = it->second;
    for (auto e = bucket.begin(); e != bucket.end();) {
      if (doomed(e->req)) {
        taken.push_back(std::move(*e));
        e = bucket.erase(e);
        --posted_count_;
      } else {
        ++e;
      }
    }
    it = bucket.empty() ? posted_.erase(it) : std::next(it);
  }
  std::sort(taken.begin(), taken.end(),
            [](const PostedEntry& a, const PostedEntry& b) {
              return a.seq < b.seq;
            });
  std::vector<RequestPtr> out;
  out.reserve(taken.size());
  for (PostedEntry& e : taken) out.push_back(std::move(e.req));
  return out;
}

}  // namespace odmpi::mpi
