#include "src/mpi/matching.h"

#include <algorithm>
#include <cassert>

namespace odmpi::mpi {

RequestPtr MatchingEngine::match_arrival(ContextId ctx, Rank src, Tag tag) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    RequestPtr& req = *it;
    if (matches(req->context, req->src, req->tag, ctx, src, tag)) {
      RequestPtr found = std::move(req);
      posted_.erase(it);
      return found;
    }
  }
  return nullptr;
}

UnexpectedMsg* MatchingEngine::match_posted(const RequestPtr& recv) {
  for (auto& msg : unexpected_) {
    if (msg->claimed != nullptr) continue;
    if (matches(recv->context, recv->src, recv->tag, msg->context, msg->src,
                msg->tag)) {
      return msg.get();
    }
  }
  return nullptr;
}

UnexpectedMsg* MatchingEngine::peek_unexpected(ContextId ctx, Rank src,
                                               Tag tag) {
  for (auto& msg : unexpected_) {
    if (msg->claimed != nullptr) continue;
    if (matches(ctx, src, tag, msg->context, msg->src, msg->tag)) {
      return msg.get();
    }
  }
  return nullptr;
}

UnexpectedMsg* MatchingEngine::add_unexpected(
    std::unique_ptr<UnexpectedMsg> msg) {
  unexpected_.push_back(std::move(msg));
  return unexpected_.back().get();
}

void MatchingEngine::remove_unexpected(UnexpectedMsg* msg) {
  auto it = std::find_if(unexpected_.begin(), unexpected_.end(),
                         [msg](const auto& m) { return m.get() == msg; });
  assert(it != unexpected_.end());
  unexpected_.erase(it);
}

bool MatchingEngine::cancel_posted(const RequestPtr& recv) {
  auto it = std::find(posted_.begin(), posted_.end(), recv);
  if (it == posted_.end()) return false;
  posted_.erase(it);
  return true;
}

std::vector<RequestPtr> MatchingEngine::take_posted_from(Rank src) {
  std::vector<RequestPtr> taken;
  for (auto it = posted_.begin(); it != posted_.end();) {
    if ((*it)->src == src) {
      taken.push_back(std::move(*it));
      it = posted_.erase(it);
    } else {
      ++it;
    }
  }
  return taken;
}

}  // namespace odmpi::mpi
