#include "src/mpi/device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/sim/process.h"

namespace odmpi::mpi {

namespace {

// One credit is reserved per channel for explicit credit-return packets so
// that flow control cannot deadlock when both directions exhaust their
// windows simultaneously.
constexpr int kDataCreditFloor = 2;   // data/control packets need >= this
constexpr int kCreditCreditFloor = 1; // kCredit packets may use the last
// Smallest shared-receive-endpoint window grant (see channel bootstrap in
// create_channel_vi): below this, the half-window return threshold hits 1
// and idle peers ping-pong credit messages.
constexpr int kMinSrqGrant = 2 * kDataCreditFloor;

// Interned stat handles for the device's cold-path counters (hot-path
// totals live in HotCounters and are folded into Stats at finalize).
const sim::Stats::Counter kInitialized = sim::Stats::counter("mpi.initialized");
const sim::Stats::Counter kVisCreated = sim::Stats::counter("mpi.vis_created");
const sim::Stats::Counter kPinnedRecvBytes =
    sim::Stats::counter("mpi.pinned_recv_bytes");
const sim::Stats::Counter kConnections = sim::Stats::counter("mpi.connections");
const sim::Stats::Counter kChannelFailures =
    sim::Stats::counter("mpi.channel_failures");
const sim::Stats::Counter kParkedSends = sim::Stats::counter("mpi.parked_sends");
const sim::Stats::Counter kCreditWindowGrown =
    sim::Stats::counter("mpi.credit_window_grown");
const sim::Stats::Counter kUnexpectedMsgs =
    sim::Stats::counter("mpi.unexpected_msgs");
const sim::Stats::Counter kUnexpectedRts =
    sim::Stats::counter("mpi.unexpected_rts");
const sim::Stats::Counter kRegCacheHits =
    sim::Stats::counter("mpi.reg_cache_hits");
const sim::Stats::Counter kRegCacheMisses =
    sim::Stats::counter("mpi.reg_cache_misses");
// Resource-capped eviction (DeviceConfig::max_vis > 0 only): counted only
// when the budget actually evicts, so unlimited runs never touch these.
const sim::Stats::Counter kEvictions = sim::Stats::counter("mpi.evictions");
const sim::Stats::Counter kReconnects = sim::Stats::counter("mpi.reconnects");
// Rank-kill injection only: how many distinct peer deaths this device
// learned of (directly or by gossip). The runtime classifies a finished
// rank with a nonzero count as "impacted".
const sim::Stats::Counter kPeerFailedSeen =
    sim::Stats::counter("mpi.peer_failed_seen");
// Sim time (ns) at which this device most recently learned of a death.
// With a single injected kill this IS the detection instant, which is
// what bench_failover charts against the DeviceProfile timeouts.
const sim::Stats::Counter kPeerFailedLastNs =
    sim::Stats::counter("mpi.peer_failed_last_ns");
const sim::Stats::Counter kWatchdogProbes =
    sim::Stats::counter("mpi.watchdog_probes");

// Trace-event names: the message lifecycle (TraceCat::kMsg) and the
// device-level connection handshake (TraceCat::kConn).
const sim::Stats::Counter kTrSend = sim::Stats::counter("mpi.send");
const sim::Stats::Counter kTrRecv = sim::Stats::counter("mpi.recv");
const sim::Stats::Counter kTrPark = sim::Stats::counter("mpi.send.park");
const sim::Stats::Counter kTrHandshake =
    sim::Stats::counter("mpi.conn.handshake");
const sim::Stats::Counter kTrConnFailed = sim::Stats::counter("mpi.conn.failed");
const sim::Stats::Counter kTrUnexpected =
    sim::Stats::counter("mpi.msg.unexpected");
const sim::Stats::Counter kTrUnexpDepth =
    sim::Stats::counter("mpi.unexpected_depth");
const sim::Stats::Counter kTrEvict = sim::Stats::counter("mpi.conn.evict");
const sim::Stats::Counter kTrReconnect =
    sim::Stats::counter("mpi.conn.reconnect");
// Failure model (TraceCat::kConn / kMsg): a0 of peer_failed is 1 when the
// death was learned by gossip, 0 when detected locally.
const sim::Stats::Counter kTrPeerFailed =
    sim::Stats::counter("mpi.conn.peer_failed");
const sim::Stats::Counter kTrMsgAborted =
    sim::Stats::counter("mpi.msg.aborted");
// RDMA rendezvous lifecycle instants (TraceCat::kMsg). a0 always carries
// the *sender-side* cookie so scripts/check_trace.py --check-rendezvous
// can stitch RTS -> (CTS -> write | read) -> FIN into one causal chain
// per transfer; rts/write are emitted at the sender, cts/read at the
// receiver (whose args.peer names the sender), and fin at whichever side
// completes last — a1 = 1 when that side is the sender (read mode),
// 0 when it is the receiver (write mode).
const sim::Stats::Counter kTrRdmaRts = sim::Stats::counter("via.rdma.rts");
const sim::Stats::Counter kTrRdmaCts = sim::Stats::counter("via.rdma.cts");
const sim::Stats::Counter kTrRdmaWrite = sim::Stats::counter("via.rdma.write");
const sim::Stats::Counter kTrRdmaRead = sim::Stats::counter("via.rdma.read");
const sim::Stats::Counter kTrRdmaFin = sim::Stats::counter("via.rdma.fin");

RequestPtr make_completed_request(ReqKind kind) {
  auto req = std::make_shared<RequestState>();
  req->kind = kind;
  req->done = true;
  req->status.source = kProcNull;
  req->status.tag = kAnyTag;
  req->status.count_bytes = 0;
  return req;
}

}  // namespace

Device::Device(via::Cluster& cluster, Rank rank, int size, DeviceConfig config,
               OobExchange* oob)
    : cluster_(cluster),
      nic_(cluster.nic(rank)),
      tracer_(cluster.tracer()),
      rank_(rank),
      size_(size),
      config_(config),
      oob_(oob) {
  assert(rank >= 0 && rank < size);
  assert(config_.eager_buf_bytes > kHeaderBytes);
  assert((config_.rndv_mode == RndvMode::kWrite ||
          nic_.profile().supports_rdma_read) &&
         "read rendezvous requires a profile with RDMA read support");
  assert((!config_.shared_recv_endpoint ||
          nic_.profile().supports_shared_recv) &&
         "shared_recv_endpoint requires a profile with shared receive");
  send_cq_ = nic_.create_cq();
  recv_cq_ = nic_.create_cq();

  // Channels are created lazily on first touch (see Device::channel): an
  // on-demand process in a 16k-rank job must not pay N-1 channel structs
  // for the handful of peers it will ever talk to.

  kills_active_ = cluster_.fault_plan().config().has_kills();
  if (kills_active_) {
    // The O(N) knowledge vector only exists under a kill schedule; every
    // read is behind a kills_active_ guard.
    known_failed_.assign(static_cast<std::size_t>(size), false);
    // Probe exhaustion (the watchdog's detector for a connected-but-idle
    // corpse) reports straight into the failure-knowledge machinery.
    nic_.connections().set_peer_failed_handler(
        [this](via::NodeId node) { note_peer_failed(node); });
  }

  // Device-global pool of registered eager send (staging) buffers.
  // lazy_send_pool defers allocation + registration to first use (the
  // registration cost then lands outside the init window — opt-in only).
  if (!config_.lazy_send_pool) {
    send_pool_.reserve(static_cast<std::size_t>(config_.send_pool_size));
    for (int i = 0; i < config_.send_pool_size; ++i) {
      auto buf = std::make_unique<EagerBuf>();
      buf->mem.resize(config_.eager_buf_bytes);
      buf->handle = nic_.register_memory(buf->mem.data(), buf->mem.size());
      free_send_bufs_.push_back(buf.get());
      send_pool_.push_back(std::move(buf));
    }
  }

  cm_ = ConnectionManager::create(*this, config_.connection_model);
}

Device::~Device() = default;

void Device::init() {
  cm_->init();
  stats_.set(kInitialized, 1);
}

via::Discriminator Device::pair_discriminator(Rank peer) const {
  const auto lo = static_cast<std::uint64_t>(std::min(rank_, peer));
  const auto hi = static_cast<std::uint64_t>(std::max(rank_, peer));
  // High bit marks MPI-owned discriminators; raw-VIA users of the same
  // cluster can use the low space without collisions.
  return (std::uint64_t{1} << 63) | (lo << 24) | hi;
}

void Device::trace_msg_begin_slow(const RequestPtr& req) {
  const bool send = req->kind == ReqKind::kSend;
  req->trace_span = tracer_->begin_span(
      sim::TraceCat::kMsg, send ? kTrSend : kTrRecv, rank_,
      send ? req->dst : req->src,
      static_cast<std::int64_t>(send ? req->bytes : req->capacity), req->tag);
}

void Device::trace_msg_done_slow(RequestState& req) {
  // Idempotent: every completion site calls this, and a request can pass
  // through several (fail_channel sweeps, then a wait observes done).
  if (req.trace_span != 0) {
    tracer_->end_span(req.trace_span);
    req.trace_span = 0;
  }
  if (req.park_span != 0) {
    tracer_->end_span(req.park_span);
    req.park_span = 0;
  }
}

void Device::trace_unexpected_depth() {
  if (tracer_ == nullptr || !tracer_->on(sim::TraceCat::kMsg)) return;
  tracer_->counter(sim::TraceCat::kMsg, kTrUnexpDepth, rank_,
                   static_cast<std::int64_t>(matching_.unexpected_count()));
}

int Device::distinct_peers_contacted() const {
  // ever_had_vi rather than vi != nullptr so the count keeps its meaning
  // when a resource cap has torn some VIs back down.
  int n = 0;
  for (const auto& [peer, ch] : channels_) n += (ch->ever_had_vi ? 1 : 0);
  return n;
}

void Device::prepare_channel(Channel& ch) {
  touch_channel(ch);  // connection traffic is about to start
  if (ch.vi != nullptr) return;
  assert(ch.peer != rank_);
  if (ch.ever_had_vi) {
    // Transparent re-establishment after an eviction tore the pair down
    // (only reachable in resource-capped mode — nothing else destroys a
    // VI before finalize).
    stats_.add(kReconnects);
    if (tracer_ != nullptr) {
      tracer_->instant(sim::TraceCat::kConn, kTrReconnect, rank_, ch.peer);
    }
  }
  ch.ever_had_vi = true;
  ++channel_vis_;
  touch_lru(ch);
  ch.vi = nic_.create_vi(send_cq_, recv_cq_);
  // MVICH requires Reliable Delivery from the VI provider; the level is
  // only observable (acks + retransmission) under fault injection.
  if (cluster_.fault_active()) {
    ch.vi->set_reliability(via::ReliabilityLevel::kReliableDelivery);
  }
  vi_to_channel_[ch.vi] = &ch;

  if (config_.shared_recv_endpoint) {
    // XRC-style sharing: the VI consumes from the device-global SRQ pool
    // instead of a private preposted window, so a new peer pins zero
    // additional receive memory. Its window is a *grant* debited from
    // the pool, topped up to the full configured window in
    // channel_connected(), budget permitting. The bootstrap grant is
    // twice the data-credit floor, never less: the explicit-return
    // threshold is half the window, and at a window of 2 a lone credit
    // message (which itself consumes a slot on arrival) would meet the
    // threshold and provoke a credit message in reply — two idle peers
    // bouncing returns forever.
    srq_ensure();
    ch.vi->bind_shared_recv(srq_);
    if (srq_credit_budget_ < kMinSrqGrant) {
      srq_add_buffers(std::max(config_.srq_grow, kMinSrqGrant));
    }
    srq_credit_budget_ -= kMinSrqGrant;
    ch.srq_granted = kMinSrqGrant;
    ch.credit_limit = kMinSrqGrant;
    // The peer runs the same configuration, so its bootstrap grant to us
    // is symmetric — no wire exchange needed to agree on it.
    ch.credits = kMinSrqGrant;
    stats_.add(kVisCreated);
  } else {
    const int window = config_.dynamic_credits
                           ? std::min(config_.initial_dynamic_credits,
                                      config_.credits)
                           : config_.credits;
    ch.credit_limit = window;
    ch.credits = window;
    ch.recv_bufs.reserve(static_cast<std::size_t>(config_.credits));
    for (int i = 0; i < window; ++i) {
      auto buf = std::make_unique<EagerBuf>();
      buf->mem.resize(config_.eager_buf_bytes);
      buf->handle = nic_.register_memory(buf->mem.data(), buf->mem.size());
      buf->desc.op = via::DescOp::kReceive;
      buf->desc.addr = buf->mem.data();
      buf->desc.length = buf->mem.size();
      buf->desc.mem_handle = buf->handle;
      buf->desc.user_context = buf.get();
      // Preposting before the connection is established is legal VIA and
      // closes the race where the peer's first eager packet beats our
      // discovery of the established connection.
      [[maybe_unused]] via::Status st = ch.vi->post_recv(&buf->desc);
      assert(st == via::Status::kSuccess);
      ch.recv_bufs.push_back(std::move(buf));
    }
    stats_.add(kVisCreated);
    stats_.add(kPinnedRecvBytes,
               static_cast<std::int64_t>(window * config_.eager_buf_bytes));
  }
  if (tracer_ != nullptr && ch.conn_span == 0) {
    // Spans the whole handshake saga, fault retries included; closed in
    // channel_connected() or fail_channel().
    ch.conn_span = tracer_->begin_span(sim::TraceCat::kConn, kTrHandshake,
                                       rank_, ch.peer);
  }
}

void Device::channel_connected(Channel& ch) {
  assert(ch.vi != nullptr && ch.vi->state() == via::ViState::kConnected);
  // Idempotent, and must never resurrect a channel that has moved past
  // kConnected: a stale connection-manager entry observing the VI as
  // connected while the channel is mid eviction drain (or failed over)
  // would otherwise yank it back to kConnected.
  if (ch.state == Channel::State::kConnected ||
      ch.state == Channel::State::kDraining ||
      ch.state == Channel::State::kFailed) {
    return;
  }
  ch.state = Channel::State::kConnected;
  stats_.add(kConnections);
  if (ch.conn_span != 0) {
    tracer_->end_span(ch.conn_span);
    ch.conn_span = 0;
  }
  // Failure propagation to the late-connecting: a peer that was not
  // connected when a death flooded the mesh learns of it here, first
  // thing on its fresh channel (the practical form of piggybacking the
  // known-failed set on connection establishment).
  if (kills_active_ && known_failed_count_ > 0) {
    for (Rank d = 0; d < size_; ++d) {
      if (!known_failed_[static_cast<std::size_t>(d)] || d == ch.peer) {
        continue;
      }
      PacketHeader h;
      h.type = PacketType::kPeerFailed;
      h.src_rank = rank_;
      h.tag = d;
      enqueue_control(ch, h);
    }
  }
  // Shared-receive mode: top the peer's bootstrap window up to the full
  // configured credit window, bounded by what the shared pool still has
  // ungranted (the invariant "sum of grants <= posted pool depth" is
  // what preserves the no-descriptor-drop guarantee). The grant rides an
  // explicit kCredit — or piggybacks, if data beats it out of the queue.
  if (srq_ != nullptr) {
    const int extra =
        std::min(config_.credits - ch.credit_limit, srq_credit_budget_);
    if (extra > 0) {
      srq_credit_budget_ -= extra;
      ch.srq_granted += extra;
      ch.credit_limit += extra;
      ch.grant_pending += extra;
      if (!ch.credit_msg_queued) {
        PacketHeader h;
        h.type = PacketType::kCredit;
        h.src_rank = rank_;
        ch.credit_msg_queued = true;
        enqueue_control(ch, h);
      }
    }
  }
  // Drain the paper's pre-posted send FIFO strictly in order (MPI
  // non-overtaking, section 3.4).
  while (!ch.park_fifo.empty()) {
    RequestPtr req = std::move(ch.park_fifo.front());
    ch.park_fifo.pop_front();
    if (req->park_span != 0) {
      tracer_->end_span(req->park_span);
      req->park_span = 0;
    }
    start_protocol(req);
  }
}

via::Status Device::peer_error(Rank peer) const {
  if (kills_active_ &&
      (known_failed_[static_cast<std::size_t>(peer)] ||
       cluster_.fault_plan().node_dead(peer))) {
    return via::Status::kPeerFailed;
  }
  return via::Status::kTimeout;
}

void Device::abort_request(const RequestPtr& req, via::Status error,
                           Rank peer) {
  if (req == nullptr || req->done) return;
  req->error = error;
  req->done = true;
  trace_msg_done(*req);
  if (error == via::Status::kPeerFailed && tracer_ != nullptr) {
    const bool send = req->kind == ReqKind::kSend;
    tracer_->instant(sim::TraceCat::kMsg, kTrMsgAborted, rank_, peer,
                     static_cast<std::int64_t>(send ? req->bytes
                                                    : req->capacity),
                     req->tag);
  }
}

void Device::fail_channel(Channel& ch, via::Status error) {
  if (ch.state == Channel::State::kFailed) return;
  // Relabel a generic timeout against a process the fault plan knows is
  // dead: callers keep reporting what their timers saw (kTimeout); the
  // peek never shortens any timer, it only names the cause honestly.
  if (error == via::Status::kTimeout) error = peer_error(ch.peer);
  ch.state = Channel::State::kFailed;
  // An eviction handshake cut short by the failure is abandoned; the
  // entry on evicting_ is swept lazily by progress_evictions().
  ch.evict_initiator = false;
  ch.evict_ack_due = false;
  ch.evict_teardown_ready = false;
  stats_.add(kChannelFailures);
  if (ch.conn_span != 0) {
    tracer_->end_span(ch.conn_span);
    ch.conn_span = 0;
  }
  if (tracer_ != nullptr) {
    tracer_->instant(sim::TraceCat::kConn, kTrConnFailed, rank_, ch.peer,
                     static_cast<std::int64_t>(error));
  }

  auto fail_req = [this, error, &ch](const RequestPtr& req) {
    abort_request(req, error, ch.peer);
  };

  // Shared-receive mode: the dead pair's window grant returns to the
  // pool (its consumed buffers were reposted on arrival, so pool depth
  // is intact and the invariant sum(grants) <= depth still holds).
  if (srq_ != nullptr && ch.srq_granted > 0) {
    srq_credit_budget_ += ch.srq_granted;
    ch.srq_granted = 0;
    ch.grant_pending = 0;
  }

  // Sends parked waiting for the connection that will never come.
  while (!ch.park_fifo.empty()) {
    fail_req(ch.park_fifo.front());
    ch.park_fifo.pop_front();
  }
  // Wire packets queued behind credits / send buffers.
  while (!ch.outq.empty()) {
    fail_req(ch.outq.front().req);
    ch.outq.pop_front();
  }
  // A partially reassembled incoming eager message can never finish.
  if (ch.in_req != nullptr) {
    fail_req(ch.in_req);
    ch.in_req.reset();
  }
  ch.in_unexp = nullptr;
  ch.in_offset = 0;
  ch.in_total = 0;
  // Rendezvous transfers touching this peer (either direction).
  for (auto it = rndv_senders_.begin(); it != rndv_senders_.end();) {
    if (it->second->dst == ch.peer) {
      fail_req(it->second);
      it = rndv_senders_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = rndv_receivers_.begin(); it != rndv_receivers_.end();) {
    if (it->second->src == ch.peer ||
        it->second->status.source == ch.peer) {
      fail_req(it->second);
      it = rndv_receivers_.erase(it);
    } else {
      ++it;
    }
  }
  // Posted receives naming this peer can never match.
  for (const RequestPtr& r : matching_.take_posted_from(ch.peer)) {
    fail_req(r);
  }
  // A wildcard receive may have just lost its last live candidate.
  sweep_doomed_wildcards();
  nic_.notify_host();  // wake a blocked waiter so it observes the failure
  // A channel failed over against a process the plan knows is dead is
  // this device's moment of detection: record and propagate it.
  if (error == via::Status::kPeerFailed) note_peer_failed(ch.peer);
}

void Device::note_peer_failed(Rank dead, bool via_gossip) {
  if (!kills_active_ || dead == rank_) return;
  if (dead < 0 || dead >= size_) return;
  if (known_failed_[static_cast<std::size_t>(dead)]) return;
  known_failed_[static_cast<std::size_t>(dead)] = true;
  ++known_failed_count_;
  stats_.add(kPeerFailedSeen);
  stats_.set(kPeerFailedLastNs,
             static_cast<std::int64_t>(cluster_.engine().now()));
  if (tracer_ != nullptr) {
    tracer_->instant(sim::TraceCat::kConn, kTrPeerFailed, rank_, dead,
                     via_gossip ? 1 : 0);
  }
  // Fail the corpse's channel (idempotent — fail_channel re-entering
  // note_peer_failed stops at the known_failed_ check above), then
  // gossip the death to everyone still live.
  fail_channel(channel(dead), via::Status::kPeerFailed);
  flood_peer_failed(dead);
  sweep_doomed_wildcards();
}

void Device::flood_peer_failed(Rank dead) {
  // Only materialized channels can be transport-active, so walking the
  // lazy map covers every peer a notice could reach.
  for (const auto& [peer, chp] : channels_) {
    Channel& ch = *chp;
    if (ch.peer == rank_ || ch.peer == dead) continue;
    if (known_failed_[static_cast<std::size_t>(ch.peer)]) continue;
    if (!ch.transport_active()) continue;
    PacketHeader h;
    h.type = PacketType::kPeerFailed;
    h.src_rank = rank_;
    h.tag = dead;  // the rank being reported dead
    enqueue_control(ch, h);
  }
}

void Device::sweep_doomed_wildcards() {
  if (matching_.posted_count() == 0) return;
  auto doomed = [this](const RequestPtr& r) {
    if (r->wildcard_candidates.empty()) return false;
    for (Rank c : r->wildcard_candidates) {
      // find_channel: a read-only sweep must not materialize channels for
      // untouched candidates (absent == kUnconnected == live).
      const Channel* ch = find_channel(c);
      const bool dead =
          (ch != nullptr && ch->state == Channel::State::kFailed) ||
          peer_known_failed(c);
      if (!dead) return false;
    }
    return true;
  };
  for (const RequestPtr& r : matching_.take_posted_wildcards(doomed)) {
    abort_request(r, via::Status::kPeerFailed, kAnySource);
  }
}

// --- Send path ---------------------------------------------------------------

RequestPtr Device::post_send(const void* buf, std::size_t bytes,
                             Rank dst_world, Tag tag, ContextId ctx,
                             SendMode mode) {
  if (dst_world == kProcNull) return make_completed_request(ReqKind::kSend);
  assert(dst_world >= 0 && dst_world < size_);
  assert(!finalized_);

  auto req = std::make_shared<RequestState>();
  req->kind = ReqKind::kSend;
  req->dst = dst_world;
  req->tag = tag;
  req->context = ctx;
  req->bytes = bytes;
  req->mode = mode;
  req->send_buf = static_cast<const std::byte*>(buf);
  if (mode == SendMode::kBuffered) {
    // Buffered sends are local: the data is copied out and the operation
    // completes immediately, independent of receiver or connection state
    // (paper section 3.6).
    req->buffered_copy.assign(req->send_buf, req->send_buf + bytes);
    req->done = true;
  }
  ++hot_.sends;
  hot_.send_bytes += static_cast<std::int64_t>(bytes);
  trace_msg_begin(req);

  if (dst_world == rank_) {
    deliver_self(req);
    if (req->done) trace_msg_done(*req);
    return req;
  }

  Channel& ch = channel(dst_world);
  touch_lru(ch);
  if (ch.state == Channel::State::kFailed) {
    // Terminal: the peer was declared unreachable. Fail fast instead of
    // parking the send forever.
    abort_request(req, peer_error(dst_world), dst_world);
    return req;
  }
  if (!ch.connected()) {
    cm_->ensure_connection(dst_world);
  }
  if (ch.state == Channel::State::kFailed) {
    abort_request(req, peer_error(dst_world), dst_world);
    return req;
  }
  if (!ch.connected()) {
    // Paper section 3.4: sends posted before the connection completes are
    // parked in the per-VI FIFO and replayed in order on establishment.
    ch.park_fifo.push_back(req);
    stats_.add(kParkedSends);
    if (tracer_ != nullptr && tracer_->on(sim::TraceCat::kMsg)) {
      req->park_span = tracer_->begin_span(
          sim::TraceCat::kMsg, kTrPark, rank_, req->dst,
          static_cast<std::int64_t>(req->bytes), req->tag);
    }
    return req;
  }
  start_protocol(req);
  if (req->done) trace_msg_done(*req);
  return req;
}

void Device::start_protocol(const RequestPtr& req) {
  Channel& ch = channel(req->dst);
  assert(ch.connected());
  const bool rendezvous =
      req->mode == SendMode::kSynchronous || req->bytes > config_.eager_threshold;
  if (!rendezvous) {
    ++hot_.eager_sends;
    enqueue_eager(ch, req);
    return;
  }
  ++hot_.rndv_sends;
  req->cookie = next_cookie_++;
  rndv_senders_[req->cookie] = req;
  PacketHeader h;
  h.type = PacketType::kRts;
  h.src_rank = rank_;
  h.tag = req->tag;
  h.context = req->context;
  h.total_bytes = req->bytes;
  h.cookie = req->cookie;
  if (config_.rndv_mode == RndvMode::kRead && req->bytes > 0) {
    // Read mode: the RTS itself exports the source buffer, so the
    // receiver can pull the payload directly — no CTS round trip.
    h.remote_addr = reinterpret_cast<std::uint64_t>(req->payload());
    const via::MemoryHandle mh = register_cached(req->payload(), req->bytes);
    h.rkey = nic_.memory().export_rkey(mh);
  }
  req->rts_sent = true;
  if (tracer_ != nullptr && tracer_->on(sim::TraceCat::kMsg)) {
    tracer_->instant(sim::TraceCat::kMsg, kTrRdmaRts, rank_, req->dst,
                     static_cast<std::int64_t>(req->cookie),
                     static_cast<std::int64_t>(req->bytes));
  }
  enqueue_control(ch, h);
}

void Device::enqueue_eager(Channel& ch, const RequestPtr& req) {
  touch_channel(ch);
  const std::size_t seg = config_.eager_payload();
  std::size_t off = 0;
  bool first = true;
  do {
    const std::size_t n = std::min(seg, req->bytes - off);
    OutPacket pkt;
    pkt.header.type = first ? PacketType::kEagerFirst : PacketType::kEagerData;
    pkt.header.src_rank = rank_;
    pkt.header.tag = req->tag;
    pkt.header.context = req->context;
    pkt.header.total_bytes = req->bytes;
    pkt.payload = req->payload() + off;
    pkt.payload_bytes = n;
    pkt.req = req;
    off += n;
    pkt.last_segment = off >= req->bytes;
    ch.outq.push_back(std::move(pkt));
    first = false;
  } while (off < req->bytes);
  drain_outq(ch);
}

void Device::enqueue_control(Channel& ch, PacketHeader header) {
  touch_channel(ch);
  OutPacket pkt;
  pkt.header = header;
  ch.outq.push_back(std::move(pkt));
  drain_outq(ch);
}

void Device::take_credits(Channel& ch, PacketHeader& header) {
  // A window grant awaiting announcement (shared-receive mode) rides the
  // same piggyback field as ordinary credit returns; the peer cannot and
  // need not distinguish them.
  const int take = std::min(ch.unreturned + ch.grant_pending, 255);
  header.credits = static_cast<std::uint8_t>(take);
  const int from_grant = std::min(ch.grant_pending, take);
  ch.grant_pending -= from_grant;
  ch.unreturned -= take - from_grant;
}

bool Device::drain_outq(Channel& ch) {
  bool progressed = false;
  while (!ch.outq.empty() && ch.transport_active()) {
    OutPacket& pkt = ch.outq.front();
    const bool is_credit = pkt.header.type == PacketType::kCredit;
    if (is_credit && ch.unreturned == 0 && ch.grant_pending == 0) {
      // A data packet already piggybacked everything; drop the explicit
      // return instead of wasting a wire message. The queued-flag must be
      // cleared here: normally poll_send_cq() clears it when the wire
      // message completes, but this packet never reaches the NIC, and a
      // stale flag would suppress every future credit return on the
      // channel (fatal for narrow shared-receive grants).
      ch.credit_msg_queued = false;
      ch.outq.pop_front();
      progressed = true;
      continue;
    }
    // kEvictAck may dip into the reserved credit like kCredit: the
    // responder is tearing the channel down and will never need its
    // explicit credit-return reserve again, and the ack must not be able
    // to starve behind an exhausted data window.
    const bool reserve_ok =
        is_credit || pkt.header.type == PacketType::kEvictAck;
    const int floor = reserve_ok ? kCreditCreditFloor : kDataCreditFloor;
    if (ch.credits < floor) {
      // A data packet stalled on the window must not pin a credit return
      // queued behind it: with narrow shared-receive grants two peers can
      // hold each other's last data credit hostage exactly this way. The
      // explicit return is order-independent — credits are piggybacked at
      // post time, not enqueue time — so let it jump the line through its
      // reserved credit.
      if (!reserve_ok && ch.credits >= kCreditCreditFloor) {
        auto cit = std::find_if(
            ch.outq.begin(), ch.outq.end(), [](const OutPacket& p) {
              return p.header.type == PacketType::kCredit;
            });
        if (cit != ch.outq.end()) {
          std::rotate(ch.outq.begin(), cit, cit + 1);
          continue;
        }
      }
      break;
    }
    EagerBuf* buf = acquire_send_buf();
    if (buf == nullptr) {
      if (std::find(starved_channels_.begin(), starved_channels_.end(), &ch) ==
          starved_channels_.end()) {
        starved_channels_.push_back(&ch);
      }
      break;
    }
    OutPacket out = std::move(ch.outq.front());
    ch.outq.pop_front();
    take_credits(ch, out.header);
    write_header(buf->mem.data(), out.header);
    if (out.payload_bytes > 0) {
      std::memcpy(buf->mem.data() + kHeaderBytes, out.payload,
                  out.payload_bytes);
    }
    buf->desc.op = via::DescOp::kSend;
    buf->desc.addr = buf->mem.data();
    buf->desc.length = kHeaderBytes + out.payload_bytes;
    buf->desc.mem_handle = buf->handle;
    buf->desc.user_context = buf;
    buf->desc.reset_for_repost();
    via::Status st = ch.vi->post_send(&buf->desc);
    if (st != via::Status::kSuccess) {
      release_send_buf(buf);
      if (ch.state == Channel::State::kDraining &&
          ch.vi->state() == via::ViState::kDisconnected &&
          out.req == nullptr) {
        // Benign teardown race, not a transport fault: the peer finished
        // the eviction handshake and disconnected while a queued control
        // packet — typically the credit return for its final in-flight
        // data — was still waiting here. An orderly disconnect proves the
        // peer needs nothing more from us, and the flow-control state
        // dies with the VI anyway; drop the packet and keep draining.
        progressed = true;
        continue;
      }
      // The VI failed underneath us (reliable-send retries exhausted): the
      // descriptor was discarded synchronously without a CQ entry, so the
      // buffer is still ours to reclaim. Fail the channel terminally.
      abort_request(out.req, peer_error(ch.peer), ch.peer);
      fail_channel(ch, via::Status::kTimeout);
      return true;
    }
    --ch.credits;
    ++hot_.packets_sent;
    progressed = true;

    if (out.req != nullptr) {
      if (out.header.type == PacketType::kFin) {
        out.req->fin_sent = true;
        out.req->done = true;
        trace_msg_done(*out.req);
      } else {
        out.req->bytes_copied += out.payload_bytes;
        if (out.last_segment && out.req->mode != SendMode::kSynchronous) {
          // Eager standard/ready sends complete locally once the data is
          // staged in wire buffers (buffered completed even earlier).
          out.req->done = true;
          trace_msg_done(*out.req);
        }
      }
    }
  }
  return progressed;
}

void Device::deliver_self(const RequestPtr& req) {
  // Self messages never touch VIA (MVICH short-circuits them too).
  ++hot_.self_sends;
  RequestPtr recv = matching_.match_arrival(req->context, rank_, req->tag);
  if (recv != nullptr) {
    const std::size_t n = std::min(req->bytes, recv->capacity);
    if (n > 0) std::memcpy(recv->recv_buf, req->payload(), n);
    recv->truncated = req->bytes > recv->capacity;
    recv->bytes_received = n;
    recv->status = MsgStatus{rank_, req->tag, req->bytes};
    recv->done = true;
    req->done = true;
    trace_msg_done(*recv);
    return;
  }
  auto unexp = std::make_unique<UnexpectedMsg>();
  unexp->src = rank_;
  unexp->tag = req->tag;
  unexp->context = req->context;
  unexp->total_bytes = req->bytes;
  unexp->arrived_bytes = req->bytes;
  unexp->payload.assign(req->payload(), req->payload() + req->bytes);
  if (req->mode == SendMode::kSynchronous) {
    unexp->self_send = req.get();
    rndv_senders_[next_cookie_] = req;  // keep the request alive
    unexp->sender_cookie = next_cookie_++;
  } else {
    req->done = true;
  }
  matching_.add_unexpected(std::move(unexp));
  if (tracer_ != nullptr) {
    tracer_->instant(sim::TraceCat::kMsg, kTrUnexpected, rank_, rank_,
                     static_cast<std::int64_t>(req->bytes), req->tag);
  }
  trace_unexpected_depth();
}

// --- Receive path ------------------------------------------------------------

RequestPtr Device::post_recv(void* buf, std::size_t capacity, Rank src_world,
                             Tag tag, ContextId ctx,
                             const std::vector<Rank>* comm_world_ranks) {
  if (src_world == kProcNull) return make_completed_request(ReqKind::kRecv);
  assert(src_world == kAnySource || (src_world >= 0 && src_world < size_));
  assert(!finalized_);

  auto req = std::make_shared<RequestState>();
  req->kind = ReqKind::kRecv;
  req->src = src_world;
  req->tag = tag;
  req->context = ctx;
  req->recv_buf = static_cast<std::byte*>(buf);
  req->capacity = capacity;
  ++hot_.recvs;
  trace_msg_begin(req);

  // Paper section 4: the receive side also drives connection setup — a
  // named-source receive connects to that source; a wildcard receive must
  // connect to every process in the communicator (section 3.5).
  if (src_world == kAnySource) {
    if (comm_world_ranks != nullptr) {
      cm_->on_any_source(*comm_world_ranks);
    } else {
      std::vector<Rank> all(static_cast<std::size_t>(size_));
      for (Rank r = 0; r < size_; ++r) all[static_cast<std::size_t>(r)] = r;
      cm_->on_any_source(all);
    }
    if (cluster_.fault_active()) {
      // Record who could legally match this wildcard (everyone in the
      // communicator but ourselves) so the doomed-wildcard sweep can tell
      // when the last live candidate is gone. Bookkeeping only: no events
      // are scheduled and no draws made, so fault schedules are unchanged.
      if (comm_world_ranks != nullptr) {
        for (Rank r : *comm_world_ranks) {
          if (r != rank_) req->wildcard_candidates.push_back(r);
        }
      } else {
        for (Rank r = 0; r < size_; ++r) {
          if (r != rank_) req->wildcard_candidates.push_back(r);
        }
      }
    }
  } else if (src_world != rank_) {
    if (channel(src_world).state == Channel::State::kFailed) {
      abort_request(req, peer_error(src_world), src_world);
      return req;
    }
    cm_->ensure_connection(src_world);
    if (channel(src_world).state == Channel::State::kFailed) {
      abort_request(req, peer_error(src_world), src_world);
      return req;
    }
    touch_lru(channel(src_world));  // expected traffic: a poor LRU victim
  }

  UnexpectedMsg* m = matching_.match_posted(req);
  if (m == nullptr) {
    if (!req->wildcard_candidates.empty()) {
      // All candidates may already be dead at post time (e.g. a 2-rank
      // job whose only peer was killed): fail now rather than queueing a
      // receive the sweep has already passed over.
      bool all_dead = true;
      for (Rank c : req->wildcard_candidates) {
        const Channel* cch = find_channel(c);
        if (!((cch != nullptr && cch->state == Channel::State::kFailed) ||
              peer_known_failed(c))) {
          all_dead = false;
          break;
        }
      }
      if (all_dead) {
        abort_request(req, via::Status::kPeerFailed, kAnySource);
        return req;
      }
    }
    matching_.add_posted(req);
    return req;
  }
  if (m->is_rendezvous) {
    req->status = MsgStatus{m->src, m->tag, m->total_bytes};
    if (config_.rndv_mode == RndvMode::kRead) {
      start_read_rndv(channel(m->src), req, m->total_bytes, m->sender_cookie,
                      m->remote_addr, m->rkey);
    } else {
      send_cts(channel(m->src), req, m->total_bytes, m->sender_cookie);
    }
    matching_.remove_unexpected(m);
    trace_unexpected_depth();
    return req;
  }
  if (!m->complete()) {
    // Claim the in-flight eager message; remaining segments will finish it.
    m->claimed = req;
    return req;
  }
  const std::size_t n = std::min(m->total_bytes, capacity);
  if (n > 0) std::memcpy(req->recv_buf, m->payload.data(), n);
  req->truncated = m->total_bytes > capacity;
  req->bytes_received = n;
  req->status = MsgStatus{m->src, m->tag, m->total_bytes};
  req->done = true;
  trace_msg_done(*req);
  if (m->self_send != nullptr) {
    m->self_send->done = true;
    trace_msg_done(*m->self_send);
    rndv_senders_.erase(m->sender_cookie);
  }
  matching_.remove_unexpected(m);
  trace_unexpected_depth();
  return req;
}

void Device::send_cts(Channel& ch, const RequestPtr& recv,
                      std::size_t total_bytes, std::uint64_t sender_cookie) {
  assert(recv->capacity >= total_bytes &&
         "rendezvous truncation is not supported: receive buffer too small");
  PacketHeader h;
  h.type = PacketType::kCts;
  h.src_rank = rank_;
  h.cookie = sender_cookie;
  h.recv_cookie = next_cookie_++;
  if (total_bytes > 0) {
    h.remote_addr = reinterpret_cast<std::uint64_t>(recv->recv_buf);
    h.remote_handle = register_cached(recv->recv_buf, total_bytes);
  }
  rndv_receivers_[h.recv_cookie] = recv;
  recv->bytes_received = total_bytes;
  if (tracer_ != nullptr && tracer_->on(sim::TraceCat::kMsg)) {
    tracer_->instant(sim::TraceCat::kMsg, kTrRdmaCts, rank_, ch.peer,
                     static_cast<std::int64_t>(sender_cookie),
                     static_cast<std::int64_t>(total_bytes));
  }
  enqueue_control(ch, h);
}

void Device::start_read_rndv(Channel& ch, const RequestPtr& recv,
                             std::size_t total_bytes,
                             std::uint64_t sender_cookie,
                             std::uint64_t remote_addr, std::uint32_t rkey) {
  assert(config_.rndv_mode == RndvMode::kRead);
  assert(recv->capacity >= total_bytes &&
         "rendezvous truncation is not supported: receive buffer too small");
  recv->bytes_received = total_bytes;
  if (tracer_ != nullptr && tracer_->on(sim::TraceCat::kMsg)) {
    tracer_->instant(sim::TraceCat::kMsg, kTrRdmaRead, rank_, ch.peer,
                     static_cast<std::int64_t>(sender_cookie),
                     static_cast<std::int64_t>(total_bytes));
  }
  if (total_bytes == 0) {
    // Nothing to pull: complete locally and release the sender now.
    recv->done = true;
    trace_msg_done(*recv);
    PacketHeader fin;
    fin.type = PacketType::kFinRead;
    fin.src_rank = rank_;
    fin.cookie = sender_cookie;
    enqueue_control(ch, fin);
    return;
  }
  if (ch.vi == nullptr || !ch.transport_active()) {
    // The channel failed between the RTS arriving and this receive being
    // posted; the sender side was (or will be) swept by its own failover.
    abort_request(recv, peer_error(ch.peer), ch.peer);
    return;
  }
  auto d = std::make_unique<via::Descriptor>();
  d->op = via::DescOp::kRdmaRead;
  d->addr = recv->recv_buf;
  d->length = total_bytes;
  d->mem_handle = register_cached(recv->recv_buf, total_bytes);
  d->remote_addr = reinterpret_cast<std::byte*>(remote_addr);
  d->remote_rkey = rkey;
  d->user_context = d.get();
  via::Status st = ch.vi->post_send(d.get());
  if (st != via::Status::kSuccess) {
    abort_request(recv, peer_error(ch.peer), ch.peer);
    fail_channel(ch, via::Status::kTimeout);
    return;
  }
  const std::uint64_t rcookie = next_cookie_++;
  rndv_receivers_[rcookie] = recv;
  read_rndv_[d.get()] = ReadRndv{rcookie, sender_cookie, ch.peer};
  hot_.rndv_bytes += static_cast<std::int64_t>(total_bytes);
  touch_channel(ch);  // the read descriptor is in-flight work on this VI
  rdma_in_flight_.push_back(std::move(d));
}

bool Device::poll_recv_cq() {
  bool progressed = false;
  while (auto c = recv_cq_->poll()) {
    progressed = true;
    auto* buf = static_cast<EagerBuf*>(c->descriptor->user_context);
    auto it = vi_to_channel_.find(c->vi);
    if (it == vi_to_channel_.end()) {
      // Fault mode can delay a control packet (e.g. a credit return) past
      // the eviction handshake: its completion was already queued when the
      // host woke, but the peer's disconnect in the same wake-up finished
      // the teardown first, so the VI is gone. The packet is moot — the
      // flow-control state died with the VI. Shared-pool buffers must
      // still go back to the SRQ so the pool does not leak.
      if (srq_ != nullptr) {
        buf->desc.reset_for_repost();
        (void)srq_->post(&buf->desc);
      }
      continue;
    }
    Channel& ch = *it->second;
    if (c->descriptor->status != via::Status::kSuccess) {
      // Disconnect teardown can flush descriptors; nothing to deliver.
      // Shared-mode pool buffers go straight back to the SRQ regardless —
      // the pool must not shrink underneath the granted windows.
      if (srq_ != nullptr) {
        buf->desc.reset_for_repost();
        (void)srq_->post(&buf->desc);
      }
      continue;
    }
    via::Nic::charge_host(nic_.profile().recv_handling_overhead);
    handle_packet(ch, buf->mem.data(), c->descriptor->bytes_transferred);

    // Repost the descriptor and account a credit to return. In shared
    // mode the buffer belongs to the device-global pool, not the channel,
    // so it reposts to the SRQ even if this particular VI has errored.
    buf->desc.reset_for_repost();
    via::Status st = srq_ != nullptr ? srq_->post(&buf->desc)
                                     : ch.vi->post_recv(&buf->desc);
    if (st != via::Status::kSuccess) {
      // VI in error state (terminal transport failure): stop recycling.
      continue;
    }
    ++ch.unreturned;
    ++ch.msgs_received;
    ++hot_.packets_received;

    // (Dynamic growth is a per-peer-window concept; in shared mode the
    // window is a grant from the fixed pool, sized at connect time.)
    if (config_.dynamic_credits && srq_ == nullptr &&
        ch.credit_limit < config_.credits &&
        ch.msgs_received >= ch.credit_limit) {
      // Paper future work: grow the window with observed traffic.
      const int new_limit = std::min(2 * ch.credit_limit, config_.credits);
      for (int i = ch.credit_limit; i < new_limit; ++i) {
        auto extra = std::make_unique<EagerBuf>();
        extra->mem.resize(config_.eager_buf_bytes);
        extra->handle =
            nic_.register_memory(extra->mem.data(), extra->mem.size());
        extra->desc.op = via::DescOp::kReceive;
        extra->desc.addr = extra->mem.data();
        extra->desc.length = extra->mem.size();
        extra->desc.mem_handle = extra->handle;
        extra->desc.user_context = extra.get();
        [[maybe_unused]] via::Status st2 = ch.vi->post_recv(&extra->desc);
        assert(st2 == via::Status::kSuccess);
        ch.recv_bufs.push_back(std::move(extra));
      }
      ch.unreturned += new_limit - ch.credit_limit;  // advertise the growth
      ch.credit_limit = new_limit;
      stats_.add(kCreditWindowGrown);
    }
    maybe_return_credits(ch);
  }
  return progressed;
}

void Device::handle_packet(Channel& ch, const std::byte* data,
                           std::size_t bytes) {
  assert(bytes >= kHeaderBytes);
  const PacketHeader h = read_header(data);
  touch_lru(ch);  // an arrival is recent use of the pair
  if (h.credits > 0) {
    ch.credits += h.credits;
    drain_outq(ch);  // the refill may unblock queued packets
  }
  const std::byte* payload = data + kHeaderBytes;
  const std::size_t payload_bytes = bytes - kHeaderBytes;
  switch (h.type) {
    case PacketType::kEagerFirst:
      handle_eager_first(ch, h, payload, payload_bytes);
      return;
    case PacketType::kEagerData:
      handle_eager_data(ch, payload, payload_bytes);
      return;
    case PacketType::kRts:
      handle_rts(ch, h);
      return;
    case PacketType::kCts:
      handle_cts(h);
      return;
    case PacketType::kFin:
      handle_fin(h);
      return;
    case PacketType::kFinRead:
      handle_fin_read(h);
      return;
    case PacketType::kCredit:
      return;  // piggyback already harvested above
    case PacketType::kEvictReq:
      handle_evict_req(ch);
      return;
    case PacketType::kEvictAck:
      handle_evict_ack(ch);
      return;
    case PacketType::kPeerFailed:
      // Gossip: a peer tells us h.tag is dead. Re-flooding happens inside
      // note_peer_failed on first learning, which is what bounds the
      // propagation: each device forwards a given death at most once.
      if (h.tag != rank_) {
        note_peer_failed(h.tag, /*via_gossip=*/true);
      }
      return;
  }
  assert(false && "unknown packet type");
}

void Device::handle_eager_first(Channel& ch, const PacketHeader& h,
                                const std::byte* payload,
                                std::size_t payload_bytes) {
  assert(ch.in_total == 0 && "previous eager message not finished");
  RequestPtr r = matching_.match_arrival(h.context, h.src_rank, h.tag);
  if (r != nullptr) {
    r->status = MsgStatus{h.src_rank, h.tag, h.total_bytes};
    const std::size_t n = std::min(payload_bytes, r->capacity);
    if (n > 0) std::memcpy(r->recv_buf, payload, n);
    if (h.total_bytes <= payload_bytes) {
      r->truncated = h.total_bytes > r->capacity;
      r->bytes_received = std::min(h.total_bytes, r->capacity);
      r->done = true;
      trace_msg_done(*r);
      return;
    }
    ch.in_req = std::move(r);
    ch.in_offset = payload_bytes;
    ch.in_total = h.total_bytes;
    return;
  }
  auto owned = std::make_unique<UnexpectedMsg>();
  owned->src = h.src_rank;
  owned->tag = h.tag;
  owned->context = h.context;
  owned->total_bytes = h.total_bytes;
  owned->arrived_bytes = payload_bytes;
  owned->payload.assign(payload, payload + payload_bytes);
  UnexpectedMsg* m = matching_.add_unexpected(std::move(owned));
  stats_.add(kUnexpectedMsgs);
  if (tracer_ != nullptr) {
    tracer_->instant(sim::TraceCat::kMsg, kTrUnexpected, rank_, h.src_rank,
                     static_cast<std::int64_t>(h.total_bytes), h.tag);
  }
  trace_unexpected_depth();
  if (h.total_bytes > payload_bytes) {
    ch.in_unexp = m;
    ch.in_offset = payload_bytes;
    ch.in_total = h.total_bytes;
  }
}

void Device::handle_eager_data(Channel& ch, const std::byte* payload,
                               std::size_t payload_bytes) {
  assert(ch.in_total > 0 && "continuation without an active message");
  if (ch.in_req != nullptr) {
    RequestState& r = *ch.in_req;
    if (ch.in_offset < r.capacity) {
      const std::size_t n = std::min(payload_bytes, r.capacity - ch.in_offset);
      std::memcpy(r.recv_buf + ch.in_offset, payload, n);
    }
  } else {
    assert(ch.in_unexp != nullptr);
    ch.in_unexp->payload.insert(ch.in_unexp->payload.end(), payload,
                                payload + payload_bytes);
    ch.in_unexp->arrived_bytes += payload_bytes;
  }
  ch.in_offset += payload_bytes;
  if (ch.in_offset >= ch.in_total) finish_eager_recv(ch);
}

void Device::finish_eager_recv(Channel& ch) {
  if (ch.in_req != nullptr) {
    RequestState& r = *ch.in_req;
    r.truncated = ch.in_total > r.capacity;
    r.bytes_received = std::min(ch.in_total, r.capacity);
    r.done = true;
    trace_msg_done(r);
    ch.in_req.reset();
  } else if (ch.in_unexp != nullptr) {
    UnexpectedMsg* m = ch.in_unexp;
    ch.in_unexp = nullptr;
    if (m->claimed != nullptr) {
      RequestPtr r = m->claimed;
      const std::size_t n = std::min(m->total_bytes, r->capacity);
      if (n > 0) std::memcpy(r->recv_buf, m->payload.data(), n);
      r->truncated = m->total_bytes > r->capacity;
      r->bytes_received = n;
      r->status = MsgStatus{m->src, m->tag, m->total_bytes};
      r->done = true;
      trace_msg_done(*r);
      matching_.remove_unexpected(m);
      trace_unexpected_depth();
    }
    // Unclaimed: the entry stays queued for a future receive.
  }
  ch.in_offset = 0;
  ch.in_total = 0;
}

void Device::handle_rts(Channel& ch, const PacketHeader& h) {
  RequestPtr r = matching_.match_arrival(h.context, h.src_rank, h.tag);
  if (r != nullptr) {
    r->status = MsgStatus{h.src_rank, h.tag, h.total_bytes};
    if (config_.rndv_mode == RndvMode::kRead) {
      start_read_rndv(ch, r, h.total_bytes, h.cookie, h.remote_addr, h.rkey);
    } else {
      send_cts(ch, r, h.total_bytes, h.cookie);
    }
    return;
  }
  auto owned = std::make_unique<UnexpectedMsg>();
  owned->src = h.src_rank;
  owned->tag = h.tag;
  owned->context = h.context;
  owned->total_bytes = h.total_bytes;
  owned->is_rendezvous = true;
  owned->sender_cookie = h.cookie;
  owned->remote_addr = h.remote_addr;
  owned->rkey = h.rkey;
  matching_.add_unexpected(std::move(owned));
  stats_.add(kUnexpectedRts);
  if (tracer_ != nullptr) {
    tracer_->instant(sim::TraceCat::kMsg, kTrUnexpected, rank_, h.src_rank,
                     static_cast<std::int64_t>(h.total_bytes), h.tag);
  }
  trace_unexpected_depth();
}

void Device::handle_cts(const PacketHeader& h) {
  auto it = rndv_senders_.find(h.cookie);
  assert(it != rndv_senders_.end());
  RequestPtr req = it->second;
  rndv_senders_.erase(it);
  req->cts_received = true;
  Channel& ch = channel(req->dst);
  if (req->bytes > 0) {
    auto d = std::make_unique<via::Descriptor>();
    d->op = via::DescOp::kRdmaWrite;
    // The descriptor only reads from the user buffer; VIA descriptors are
    // mutable structs, hence the const_cast.
    d->addr = const_cast<std::byte*>(req->payload());
    d->length = req->bytes;
    d->mem_handle = register_cached(req->payload(), req->bytes);
    d->remote_addr = reinterpret_cast<std::byte*>(h.remote_addr);
    d->remote_mem_handle = h.remote_handle;
    d->user_context = d.get();
    [[maybe_unused]] via::Status st = ch.vi->post_send(d.get());
    assert(st == via::Status::kSuccess);
    rdma_in_flight_.push_back(std::move(d));
    hot_.rndv_bytes += static_cast<std::int64_t>(req->bytes);
    if (tracer_ != nullptr && tracer_->on(sim::TraceCat::kMsg)) {
      tracer_->instant(sim::TraceCat::kMsg, kTrRdmaWrite, rank_, req->dst,
                       static_cast<std::int64_t>(req->cookie),
                       static_cast<std::int64_t>(req->bytes));
    }
  }
  // FIN follows the RDMA data on the same (ordered) connection, so the
  // receiver's completion implies the data has landed. It echoes the
  // sender cookie so the receiver's completion instant can be correlated
  // back to the RTS that started the transfer.
  PacketHeader fin;
  fin.type = PacketType::kFin;
  fin.src_rank = rank_;
  fin.cookie = h.cookie;
  fin.recv_cookie = h.recv_cookie;
  OutPacket pkt;
  pkt.header = fin;
  pkt.req = req;
  pkt.last_segment = true;
  touch_channel(ch);  // the RDMA write above also rides this channel's VI
  ch.outq.push_back(std::move(pkt));
  drain_outq(ch);
}

void Device::handle_fin(const PacketHeader& h) {
  auto it = rndv_receivers_.find(h.recv_cookie);
  assert(it != rndv_receivers_.end());
  RequestPtr req = it->second;
  rndv_receivers_.erase(it);
  req->done = true;
  trace_msg_done(*req);
  if (tracer_ != nullptr && tracer_->on(sim::TraceCat::kMsg)) {
    tracer_->instant(sim::TraceCat::kMsg, kTrRdmaFin, rank_, h.src_rank,
                     static_cast<std::int64_t>(h.cookie), 0);
  }
}

void Device::handle_fin_read(const PacketHeader& h) {
  // Tolerant lookup (unlike handle_fin): under fault injection the
  // sender's channel can fail over — sweeping rndv_senders_ — while the
  // receiver's kFinRead is already on the wire.
  auto it = rndv_senders_.find(h.cookie);
  if (it == rndv_senders_.end()) return;
  RequestPtr req = it->second;
  rndv_senders_.erase(it);
  req->cts_received = true;  // read mode: the FIN is the only response
  req->done = true;
  trace_msg_done(*req);
  if (tracer_ != nullptr && tracer_->on(sim::TraceCat::kMsg)) {
    tracer_->instant(sim::TraceCat::kMsg, kTrRdmaFin, rank_, h.src_rank,
                     static_cast<std::int64_t>(h.cookie), 1);
  }
}

void Device::maybe_return_credits(Channel& ch) {
  if (ch.unreturned < std::max(1, ch.credit_limit / 2)) return;
  if (ch.credit_msg_queued) return;
  // Returns keep flowing through an eviction drain — the peer may need
  // its window back to finish its half of the handshake — but once both
  // sides have agreed to tear down, nothing the peer does depends on our
  // credits, and a fresh wire message would race VI destruction.
  if (ch.state == Channel::State::kDraining && ch.evict_teardown_ready) {
    return;
  }
  if (!ch.transport_active()) return;
  PacketHeader h;
  h.type = PacketType::kCredit;
  h.src_rank = rank_;
  ch.credit_msg_queued = true;
  OutPacket pkt;
  pkt.header = h;
  touch_channel(ch);
  ch.outq.push_back(std::move(pkt));
  drain_outq(ch);
}

// --- Buffers -----------------------------------------------------------------

EagerBuf* Device::acquire_send_buf() {
  if (free_send_bufs_.empty()) {
    if (config_.lazy_send_pool &&
        send_pool_.size() <
            static_cast<std::size_t>(config_.send_pool_size)) {
      // Deferred pool growth: allocate + register one staging buffer at
      // the moment a send first needs it instead of during MPID_Init.
      auto buf = std::make_unique<EagerBuf>();
      buf->mem.resize(config_.eager_buf_bytes);
      buf->handle = nic_.register_memory(buf->mem.data(), buf->mem.size());
      EagerBuf* raw = buf.get();
      send_pool_.push_back(std::move(buf));
      return raw;
    }
    return nullptr;
  }
  EagerBuf* buf = free_send_bufs_.back();
  free_send_bufs_.pop_back();
  return buf;
}

void Device::release_send_buf(EagerBuf* buf) {
  free_send_bufs_.push_back(buf);
  while (!starved_channels_.empty() && !free_send_bufs_.empty()) {
    Channel* ch = starved_channels_.front();
    starved_channels_.pop_front();
    drain_outq(*ch);
  }
}

void Device::srq_ensure() {
  if (srq_ != nullptr) return;
  srq_ = nic_.create_shared_recv_queue();
  srq_add_buffers(std::max(config_.srq_depth, kDataCreditFloor));
}

void Device::srq_add_buffers(int n) {
  assert(srq_ != nullptr);
  for (int i = 0; i < n; ++i) {
    auto buf = std::make_unique<EagerBuf>();
    buf->mem.resize(config_.eager_buf_bytes);
    buf->handle = nic_.register_memory(buf->mem.data(), buf->mem.size());
    buf->desc.op = via::DescOp::kReceive;
    buf->desc.addr = buf->mem.data();
    buf->desc.length = buf->mem.size();
    buf->desc.mem_handle = buf->handle;
    buf->desc.user_context = buf.get();
    [[maybe_unused]] via::Status st = srq_->post(&buf->desc);
    assert(st == via::Status::kSuccess);
    srq_bufs_.push_back(std::move(buf));
  }
  srq_credit_budget_ += n;
  stats_.add(kPinnedRecvBytes,
             static_cast<std::int64_t>(n) *
                 static_cast<std::int64_t>(config_.eager_buf_bytes));
}

via::MemoryHandle Device::register_cached(const std::byte* addr,
                                          std::size_t bytes) {
  auto it = reg_cache_.upper_bound(addr);
  if (it != reg_cache_.begin()) {
    --it;
    if (it->first <= addr && addr + bytes <= it->first + it->second.second) {
      stats_.add(kRegCacheHits);
      return it->second.first;
    }
  }
  via::MemoryHandle h = nic_.register_memory(addr, bytes);
  reg_cache_[addr] = {h, bytes};
  stats_.add(kRegCacheMisses);
  return h;
}

// --- Progress & waiting --------------------------------------------------

bool Device::poll_send_cq() {
  bool progressed = false;
  while (auto c = send_cq_->poll()) {
    progressed = true;
    via::Descriptor* desc = c->descriptor;
    // A terminal error completion (reliable-delivery retries exhausted)
    // fails the whole channel; resources are still reclaimed below.
    const bool send_failed = desc->status != via::Status::kSuccess &&
                             !finalized_ && cluster_.fault_active();
    if (desc->op == via::DescOp::kRdmaWrite ||
        desc->op == via::DescOp::kRdmaRead) {
      auto it = std::find_if(
          rdma_in_flight_.begin(), rdma_in_flight_.end(),
          [desc](const auto& d) { return d.get() == desc; });
      assert(it != rdma_in_flight_.end());
      // Keep the descriptor alive for the rest of this iteration: erase()
      // alone would free it while `desc` is still read below.
      std::unique_ptr<via::Descriptor> owned = std::move(*it);
      rdma_in_flight_.erase(it);
      if (desc->op == via::DescOp::kRdmaRead) {
        // Read-rendezvous: the pulled data has landed in the receive
        // buffer — finish the receive and release the sender's pinned
        // buffer with the reverse FIN.
        const auto info_it = read_rndv_.find(desc);
        assert(info_it != read_rndv_.end());
        const ReadRndv info = info_it->second;
        read_rndv_.erase(info_it);
        auto recv_it = rndv_receivers_.find(info.recv_cookie);
        if (desc->status == via::Status::kSuccess) {
          if (recv_it != rndv_receivers_.end()) {
            RequestPtr recv = recv_it->second;
            rndv_receivers_.erase(recv_it);
            recv->done = true;
            trace_msg_done(*recv);
          }
          Channel& rch = channel(info.peer);
          if (rch.transport_active()) {
            PacketHeader fin;
            fin.type = PacketType::kFinRead;
            fin.src_rank = rank_;
            fin.cookie = info.sender_cookie;
            enqueue_control(rch, fin);
          }
        } else if (recv_it != rndv_receivers_.end()) {
          RequestPtr recv = recv_it->second;
          rndv_receivers_.erase(recv_it);
          abort_request(recv, peer_error(info.peer), info.peer);
        }
      }
      if (send_failed) {
        auto ch_it = vi_to_channel_.find(c->vi);
        if (ch_it != vi_to_channel_.end()) {
          fail_channel(*ch_it->second, via::Status::kTimeout);
        }
      }
      continue;
    }
    auto* buf = static_cast<EagerBuf*>(desc->user_context);
    // Credit-message bookkeeping: the packet left the NIC.
    const PacketHeader h = read_header(buf->mem.data());
    if (h.type == PacketType::kCredit) {
      auto it = vi_to_channel_.find(c->vi);
      if (it != vi_to_channel_.end()) {
        it->second->credit_msg_queued = false;
        // Re-arm immediately: returns that accrued while this message was
        // in flight were skipped by the queued-flag check, and if the peer
        // is stalled on its last data credit no further arrival will ever
        // trigger them (narrow shared-receive grants wedge exactly here).
        if (it->second->transport_active()) {
          maybe_return_credits(*it->second);
        }
      }
    }
    release_send_buf(buf);
    if (send_failed) {
      auto ch_it = vi_to_channel_.find(c->vi);
      if (ch_it != vi_to_channel_.end()) {
        Channel& fch = *ch_it->second;
        if (fch.state == Channel::State::kDraining &&
            fch.evict_teardown_ready &&
            !(kills_active_ && cluster_.fault_plan().node_dead(fch.peer))) {
          // Retry exhaustion after an agreed eviction teardown: the peer
          // provably processed everything up to the handshake packet (it
          // could not have agreed otherwise), so the "failure" is its VI
          // disappearing under our trailing retransmits — e.g. the
          // disconnect notification itself was fault-dropped. Not data
          // loss; the teardown completes normally. EXCEPT when the peer
          // died after agreeing: finish_evict against a corpse would
          // wedge the drain, so the death wins the race and the channel
          // fails over instead.
          continue;
        }
        fail_channel(fch, via::Status::kTimeout);
      }
    }
  }
  return progressed;
}

// --- Resource-capped eviction (DeviceConfig::max_vis > 0) ----------------
//
// Two-phase handshake over the ordered eager channel (DESIGN.md sec. 11):
// the initiator sends kEvictReq once the channel is locally quiescent; the
// responder answers kEvictAck once *its* side is quiescent too. Eager
// ordering makes this race-free — the req is ordered after everything the
// initiator ever sent, the ack after everything the responder sent — so
// when each side has seen the other's handshake packet the wire between
// the pair is provably empty in its inbound direction and the VI can be
// torn down without losing data.

bool Device::peer_has_rndv(Rank peer) const {
  for (const auto& [cookie, req] : rndv_senders_) {
    if (req->dst == peer) return true;
  }
  for (const auto& [cookie, req] : rndv_receivers_) {
    if (req->src == peer || req->status.source == peer) return true;
  }
  return false;
}

bool Device::channel_evictable(const Channel& ch) const {
  if (ch.state != Channel::State::kConnected) return false;
  if (ch.vi == nullptr || ch.vi->state() != via::ViState::kConnected) {
    return false;
  }
  if (!ch.outq.empty() || !ch.park_fifo.empty()) return false;
  if (ch.vi->sends_in_flight() != 0) return false;
  if (ch.credit_msg_queued) return false;
  if (ch.in_req != nullptr || ch.in_unexp != nullptr || ch.in_total != 0) {
    return false;
  }
  // The teardown request itself must respect the data-credit floor.
  if (ch.credits < kDataCreditFloor) return false;
  if (peer_has_rndv(ch.peer)) return false;
  return true;
}

bool Device::begin_evict(Channel& ch) {
  assert(config_.max_vis > 0);
  if (!channel_evictable(ch)) return false;
  ch.state = Channel::State::kDraining;
  ch.evict_initiator = true;
  ch.evict_ack_due = false;
  ch.evict_teardown_ready = false;
  evicting_.push_back(&ch);
  PacketHeader h;
  h.type = PacketType::kEvictReq;
  h.src_rank = rank_;
  enqueue_control(ch, h);
  return true;
}

bool Device::evict_lru_channel() {
  Channel* victim = nullptr;
  for (const auto& [peer, chp] : channels_) {
    Channel& ch = *chp;
    if (!channel_evictable(ch)) continue;
    if (victim == nullptr || ch.last_used < victim->last_used) victim = &ch;
  }
  return victim != nullptr && begin_evict(*victim);
}

void Device::handle_evict_req(Channel& ch) {
  if (ch.state == Channel::State::kFailed) return;
  if (ch.state == Channel::State::kDraining && ch.evict_initiator) {
    // Crossing evictions: both sides proposed teardown simultaneously.
    // The peer's request proves it was quiescent when it sent it — by the
    // ordering argument above it is as good as an ack.
    ch.evict_teardown_ready = true;
    return;
  }
  if (ch.state == Channel::State::kConnecting) {
    // The request arrived on the VI, so the VIA handshake has completed;
    // our connection manager just has not observed it yet. Catch up first
    // so parked sends drain (and then block the ack) rather than sitting
    // out the teardown.
    channel_connected(ch);
  }
  assert(ch.state == Channel::State::kConnected);
  ch.state = Channel::State::kDraining;
  ch.evict_initiator = false;
  ch.evict_ack_due = true;
  ch.evict_teardown_ready = false;
  evicting_.push_back(&ch);
}

void Device::handle_evict_ack(Channel& ch) {
  if (ch.state == Channel::State::kFailed) return;
  assert(ch.state == Channel::State::kDraining && ch.evict_initiator);
  ch.evict_teardown_ready = true;
}

bool Device::progress_evictions() {
  bool progressed = false;
  // Index loop: finish_evict() may reconnect a peer whose sends parked
  // during the drain, which can re-enter ensure_connection and (at the
  // budget) push a fresh eviction onto evicting_.
  for (std::size_t i = 0; i < evicting_.size();) {
    Channel& ch = *evicting_[i];
    if (ch.state != Channel::State::kDraining) {
      // Failed over mid-drain (fault injection): the handshake is
      // abandoned, fail_channel already swept the queues.
      evicting_.erase(evicting_.begin() + static_cast<std::ptrdiff_t>(i));
      progressed = true;
      continue;
    }
    if (ch.evict_ack_due && ch.outq.empty() && ch.in_total == 0 &&
        !peer_has_rndv(ch.peer)) {
      // Responder side is quiescent: everything we ever sent is queued
      // ahead of (and thus ordered before) this ack.
      PacketHeader h;
      h.type = PacketType::kEvictAck;
      h.src_rank = rank_;
      ch.evict_ack_due = false;
      ch.evict_teardown_ready = true;
      enqueue_control(ch, h);
      progressed = true;
    }
    if (ch.evict_teardown_ready &&
        ch.vi->state() == via::ViState::kDisconnected) {
      // The peer already tore its side down; any control packets still
      // queued (credit returns for its final data) are moot and would
      // otherwise hold the outq non-empty forever if the credit floor
      // blocks them from even being attempted.
      while (!ch.outq.empty() && ch.outq.front().req == nullptr) {
        ch.outq.pop_front();
        progressed = true;
      }
    }
    if (ch.evict_teardown_ready && ch.outq.empty()) {
      if (ch.vi->state() == via::ViState::kDisconnected &&
          ch.vi->sends_in_flight() > 0) {
        // The peer finished first and its disconnect overtook our last
        // VIA-level acks (fault mode). The disconnect itself proves the
        // peer processed everything we sent, so flush the reliable-send
        // bookkeeping instead of retransmitting into a dead VI.
        nic_.complete_sends_on_disconnect(*ch.vi);
      }
      if (ch.vi->sends_in_flight() == 0) {
        finish_evict(ch);
        evicting_.erase(evicting_.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;
        continue;
      }
    }
    ++i;
  }
  return progressed;
}

void Device::finish_evict(Channel& ch) {
  assert(ch.state == Channel::State::kDraining);
  assert(ch.vi != nullptr && ch.vi->sends_in_flight() == 0);
  assert(ch.outq.empty());
  assert(ch.in_req == nullptr && ch.in_unexp == nullptr && ch.in_total == 0);
  // Completions for this VI may still sit unpolled in either CQ; drain
  // them now so no completion outlives its VI. The recv side matters in
  // fault mode: a delayed control packet can land during the final
  // handshake wake-up, and its queued completion must be consumed while
  // the VI->channel mapping is still intact.
  poll_send_cq();
  poll_recv_cq();
  if (ch.vi->state() == via::ViState::kConnected) {
    nic_.connections().disconnect(*ch.vi);
  }
  vi_to_channel_.erase(ch.vi);
  nic_.destroy_vi(ch.vi);
  ch.vi = nullptr;
  // Release the pinned eager receive window — the paper's ~120 kB per VI.
  // In shared mode there is no per-peer window to release (the pool
  // persists; that is the resource win): only the grant returns to the
  // budget, ready for the next peer.
  std::int64_t released = 0;
  if (srq_ != nullptr) {
    srq_credit_budget_ += ch.srq_granted;
    ch.srq_granted = 0;
    ch.grant_pending = 0;
  } else {
    for (const auto& buf : ch.recv_bufs) {
      released += static_cast<std::int64_t>(buf->mem.size());
      nic_.deregister_memory(buf->handle);
    }
    ch.recv_bufs.clear();
    stats_.add(kPinnedRecvBytes, -released);
  }
  ch.credits = 0;
  ch.credit_limit = 0;
  ch.unreturned = 0;
  ch.msgs_received = 0;
  ch.credit_msg_queued = false;
  ch.evict_initiator = false;
  ch.evict_ack_due = false;
  ch.evict_teardown_ready = false;
  ch.state = Channel::State::kUnconnected;
  --channel_vis_;
  stats_.add(kEvictions);
  if (tracer_ != nullptr) {
    tracer_->instant(sim::TraceCat::kConn, kTrEvict, rank_, ch.peer,
                     released);
  }
  // Sends that arrived while the drain was in flight parked in the FIFO;
  // reconnect immediately so they replay in order through the normal
  // establishment path (budget-checked like any other connect).
  if (!ch.park_fifo.empty()) cm_->ensure_connection(ch.peer);
}

bool Device::progress() {
  bool progressed = false;
  progressed |= cm_->progress();
  if (!evicting_.empty()) progressed |= progress_evictions();
  progressed |= poll_send_cq();
  progressed |= poll_recv_cq();
  return progressed;
}

void Device::arm_watchdog() {
  if (watchdog_armed_ || finalized_ || nic_.dead()) return;
  watchdog_armed_ = true;
  const std::uint64_t gen = ++watchdog_generation_;
  // Interval: well above one conn_timeout so a healthy-but-congested peer
  // never gets probed mid-handshake storm, well below the run deadline so
  // detection latency stays bounded (~3 ms on cLAN constants).
  const sim::SimTime interval = 20 * nic_.profile().conn_timeout;
  cluster_.engine().schedule_after(interval,
                                   [this, gen] { on_watchdog(gen); });
}

void Device::on_watchdog(std::uint64_t gen) {
  if (gen != watchdog_generation_) return;
  watchdog_armed_ = false;
  if (finalized_ || nic_.dead() || !in_blocking_wait_) return;
  // Probe every peer not already known dead — not just transport-active
  // channels: an on-demand receiver waiting on a corpse that never sent
  // has no connection (and thus no retransmission timer) to detect the
  // death for it. Pongs are answered at NIC level, so probing a busy
  // live peer never perturbs its host.
  for (Rank peer = 0; peer < size_; ++peer) {
    if (peer == rank_ || known_failed_[static_cast<std::size_t>(peer)]) {
      continue;
    }
    if (nic_.connections().probing(peer)) continue;
    nic_.connections().probe_peer(peer);
    stats_.add(kWatchdogProbes);
  }
  arm_watchdog();
}

void Device::wait(const RequestPtr& req) {
  if (req == nullptr || req->done) return;
  wait_until([&] { return req->done; });
}

bool Device::test(const RequestPtr& req) {
  if (req == nullptr || req->done) return true;
  progress();
  return req->done;
}

bool Device::iprobe(Rank src_world, Tag tag, ContextId ctx,
                    MsgStatus* status) {
  progress();
  UnexpectedMsg* m = matching_.peek_unexpected(ctx, src_world, tag);
  if (m == nullptr) return false;
  if (status != nullptr) *status = MsgStatus{m->src, m->tag, m->total_bytes};
  return true;
}

void Device::finalize_quiesce() {
  // Quiesce: every queued packet out, every rendezvous finished, every
  // send descriptor completed. Only channels on the active list can hold
  // such work (see touch_channel); quiet ones are retired as we sweep, so
  // each poll costs O(active) instead of O(N).
  wait_until([&] {
    if (!rdma_in_flight_.empty()) return false;
    if (!rndv_senders_.empty()) return false;
    // Resource-capped mode: an eviction handshake this side started (or
    // is responding to) must finish before we may declare quiescence —
    // entering the finalize barrier with a channel mid-drain would tear
    // the VI down under the handshake.
    if (!evicting_.empty()) return false;
    while (!active_channels_.empty()) {
      Channel& ch = *active_channels_.back();
      if (!channel_quiet(ch)) return false;
      ch.on_active_list = false;
      active_channels_.pop_back();
    }
    return true;
  });
}

void Device::finalize_teardown() {
  for (const auto& [peer, chp] : channels_) {
    Channel& ch = *chp;
    if (ch.vi == nullptr) continue;
    if (ch.vi->state() == via::ViState::kConnected) ch.vi->disconnect();
    if (ch.vi->state() == via::ViState::kDisconnected &&
        ch.vi->sends_in_flight() > 0) {
      // The peer finalized first and its orderly disconnect raced our
      // trailing control traffic (fault mode can delay a credit return
      // past the peer's last receive). The disconnect proves the peer
      // needs nothing more; flush the reliable-send bookkeeping exactly
      // as the eviction drain does so the VI can be destroyed.
      nic_.complete_sends_on_disconnect(*ch.vi);
    }
    nic_.destroy_vi(ch.vi);
    ch.vi = nullptr;
    ch.state = Channel::State::kUnconnected;
  }
  vi_to_channel_.clear();
  finalized_ = true;
}

// --- Request handle ------------------------------------------------------

MsgStatus Request::wait() {
  if (state_ == nullptr) return MsgStatus{kProcNull, kAnyTag, 0};
  if (!state_->done) {
    assert(device_ != nullptr);
    device_->wait(state_);
  }
  return state_->status;
}

bool Request::test() {
  if (state_ == nullptr || state_->done) return true;
  assert(device_ != nullptr);
  return device_->test(state_);
}

void wait_all(std::vector<Request>& requests) {
  for (Request& r : requests) r.wait();
}

std::vector<std::size_t> wait_some(std::vector<Request>& requests) {
  assert(!requests.empty());
  (void)wait_any(requests);  // ensure at least one is complete
  std::vector<std::size_t> done;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].done()) done.push_back(i);
  }
  return done;
}

bool test_all(std::vector<Request>& requests) {
  bool all = true;
  for (Request& r : requests) all &= r.test();
  return all;
}

std::size_t test_any(std::vector<Request>& requests) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].test()) return i;
  }
  return kNoRequest;
}

std::size_t wait_any(std::vector<Request>& requests) {
  assert(!requests.empty());
  // Null / already-complete handles win immediately.
  Device* device = nullptr;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].done()) return i;
    if (device == nullptr && requests[i].state() != nullptr) {
      device = requests[i].device();
    }
  }
  assert(device != nullptr);
  std::size_t winner = 0;
  device->wait_until([&] {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].done()) {
        winner = i;
        return true;
      }
    }
    return false;
  });
  return winner;
}

}  // namespace odmpi::mpi
