#include "src/mpi/datatype.h"

namespace odmpi::mpi {

const char* to_string(TypeKind k) {
  switch (k) {
    case TypeKind::kByte: return "byte";
    case TypeKind::kInt32: return "int32";
    case TypeKind::kInt64: return "int64";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
  }
  return "unknown";
}

}  // namespace odmpi::mpi
