// Nonblocking communication requests. A RequestState mirrors an MVICH
// MPIR request: envelope, protocol progress flags, and completion status.
// The public `Request` is a cheap shared handle; `wait()`/`test()`
// delegate to the owning device's progress engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mpi/types.h"
#include "src/via/types.h"

namespace odmpi::mpi {

class Device;

enum class ReqKind : std::uint8_t { kSend, kRecv };

struct RequestState {
  ReqKind kind = ReqKind::kSend;
  bool done = false;

  /// Transport-level failure. kSuccess for a normal completion; kTimeout
  /// when the peer channel failed terminally (connection or reliable-send
  /// retries exhausted under fault injection); kPeerFailed when the peer
  /// process is known dead (rank-kill injection). A failed request is
  /// done.
  via::Status error = via::Status::kSuccess;

  // Envelope (ranks are world ranks inside the device layer).
  ContextId context = 0;
  Tag tag = 0;

  // --- Send side ---
  Rank dst = -1;
  const std::byte* send_buf = nullptr;
  std::size_t bytes = 0;
  SendMode mode = SendMode::kStandard;
  std::vector<std::byte> buffered_copy;  // owns data for buffered mode
  std::size_t bytes_enqueued = 0;        // handed to the channel out-queue
  std::size_t bytes_copied = 0;          // copied into wire buffers
  bool rts_sent = false;
  bool cts_received = false;
  bool fin_sent = false;
  std::uint64_t cookie = 0;  // rendezvous identity at the sender

  // --- Receive side ---
  Rank src = kAnySource;  // world rank or kAnySource
  std::byte* recv_buf = nullptr;
  std::size_t capacity = 0;
  std::size_t bytes_received = 0;
  bool truncated = false;  // arrived message exceeded capacity
  MsgStatus status;        // source is a world rank; Comm translates

  // MPI_ANY_SOURCE only, fault-mode only: the world ranks that could
  // legally match this receive (the communicator's members minus self).
  // The device sweeps wildcard receives whose every candidate has failed
  // — without this list a wildcard against an all-dead communicator
  // would block forever. Empty in fault-free runs.
  std::vector<Rank> wildcard_candidates;

  // --- Tracing (0 = no open span; ids live in the World's sim::Tracer) ---
  std::uint32_t trace_span = 0;  // post -> complete lifecycle span
  std::uint32_t park_span = 0;   // park-FIFO residency span (sends)

  [[nodiscard]] const std::byte* payload() const {
    return mode == SendMode::kBuffered ? buffered_copy.data() : send_buf;
  }
};

using RequestPtr = std::shared_ptr<RequestState>;

/// Public handle returned by isend/irecv. Null-state handles (from
/// sends/recvs to kProcNull) are complete and waitable.
class Request {
 public:
  Request() = default;
  Request(RequestPtr state, Device* device)
      : state_(std::move(state)), device_(device) {}

  /// Blocks (per the device wait policy) until the operation completes;
  /// returns the receive status (meaningful for receives).
  MsgStatus wait();

  /// Progresses once; true if complete.
  bool test();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const {
    return state_ == nullptr || state_->done;
  }
  /// Transport error recorded at completion (kSuccess if none).
  [[nodiscard]] via::Status error() const {
    return state_ == nullptr ? via::Status::kSuccess : state_->error;
  }
  [[nodiscard]] bool failed() const {
    return state_ != nullptr && state_->error != via::Status::kSuccess;
  }
  [[nodiscard]] const RequestPtr& state() const { return state_; }
  [[nodiscard]] Device* device() const { return device_; }

 private:
  RequestPtr state_;
  Device* device_ = nullptr;
};

/// MPI_Waitall / MPI_Waitany / MPI_Waitsome / MPI_Testall equivalents.
void wait_all(std::vector<Request>& requests);
std::size_t wait_any(std::vector<Request>& requests);

/// Blocks until at least one request completes; returns the indices of
/// every completed request (like MPI_Waitsome's outcount+indices).
std::vector<std::size_t> wait_some(std::vector<Request>& requests);

/// True if every request is complete (progresses once, like MPI_Testall).
bool test_all(std::vector<Request>& requests);

/// Index of a completed request after one progress pass, or npos.
inline constexpr std::size_t kNoRequest = static_cast<std::size_t>(-1);
std::size_t test_any(std::vector<Request>& requests);

}  // namespace odmpi::mpi
