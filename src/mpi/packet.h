// Wire packet format for the MPI device protocol over VIA.
//
// Every eager buffer starts with a fixed 64-byte header. Data above the
// eager threshold travels by rendezvous: RTS -> CTS (carrying the
// registered target buffer) -> RDMA write -> FIN.
#pragma once

#include <cstdint>
#include <cstring>

#include "src/mpi/types.h"

namespace odmpi::mpi {

enum class PacketType : std::uint8_t {
  kEagerFirst = 1,  // first (or only) segment: carries the full envelope
  kEagerData,       // continuation segment of a multi-packet eager message
  kRts,             // rendezvous request-to-send
  kCts,             // clear-to-send: target address + memory handle
  kFin,             // rendezvous completion notification
  // Read-rendezvous completion (DeviceConfig::rndv_mode == kRead):
  // receiver -> sender, "my RDMA read of your buffer finished, release
  // it". The mirror image of kFin, which flows sender -> receiver.
  kFinRead,
  kCredit,          // explicit flow-control credit return
  // Resource-capped eviction handshake (DeviceConfig::max_vis > 0 only).
  // Both ride the ordered eager channel, which is what makes the
  // teardown race-free: kEvictReq is ordered after every packet the
  // initiator ever sent, and kEvictAck after every packet the responder
  // sent — so once the initiator sees the ack, the wire between the pair
  // is provably empty in both directions.
  kEvictReq,        // initiator -> responder: propose teardown
  kEvictAck,        // responder -> initiator: both sides quiescent
  // Failure propagation (rank-kill injection only): "rank h.tag is dead".
  // Flooded to every connected peer when a device first learns of a
  // death, so knowledge spreads through the live mesh in bounded time
  // instead of each pair rediscovering the corpse by timeout.
  kPeerFailed,
};

struct PacketHeader {
  PacketType type = PacketType::kEagerFirst;
  std::uint8_t credits = 0;  // piggybacked credit return (every packet)
  std::uint16_t reserved = 0;
  std::int32_t src_rank = -1;  // world rank of the sender
  std::int32_t tag = 0;
  std::int32_t context = 0;
  std::uint64_t total_bytes = 0;    // full message length (first/RTS)
  std::uint64_t cookie = 0;         // sender-side rendezvous id
  std::uint64_t recv_cookie = 0;    // receiver-side rendezvous id (CTS/FIN)
  std::uint64_t remote_addr = 0;    // CTS: target buffer address;
                                    // RTS (read mode): source buffer address
  std::uint32_t remote_handle = 0;  // CTS: target memory handle
  std::uint32_t rkey = 0;           // RTS (read mode): source buffer rkey
};

inline constexpr std::size_t kHeaderBytes = 64;
static_assert(sizeof(PacketHeader) <= kHeaderBytes,
              "header must fit the reserved prefix of an eager buffer");

inline void write_header(std::byte* buf, const PacketHeader& h) {
  std::memcpy(buf, &h, sizeof(PacketHeader));
}

inline PacketHeader read_header(const std::byte* buf) {
  PacketHeader h;
  std::memcpy(&h, buf, sizeof(PacketHeader));
  return h;
}

}  // namespace odmpi::mpi
