// Reduction operations (MPI_SUM, MPI_MAX, ...) with element-wise apply.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/mpi/datatype.h"

namespace odmpi::mpi {

enum class Op : std::uint8_t {
  kSum,
  kProd,
  kMax,
  kMin,
  kLand,  // logical and
  kLor,   // logical or
  kBand,  // bitwise and
  kBor,   // bitwise or
};

/// inout[i] = inout[i] OP in[i] for `count` elements of `datatype`.
/// Logical/bitwise ops are only defined for integer kinds (asserted).
void apply_op(Op op, Datatype datatype, void* inout, const void* in,
              std::size_t count);

[[nodiscard]] const char* to_string(Op op);

}  // namespace odmpi::mpi
