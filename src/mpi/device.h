// The ADI device: MVICH's VIA device layer rebuilt in C++.
//
// One Device per MPI process. It owns:
//  * a virtual channel per peer, each bound to one VI once connected,
//    with credit-based eager flow control over preposted descriptors
//    (kCredits x eager_buf_bytes = the "120 kB per VI" of the paper);
//  * the eager (segmented, below eager_threshold) and rendezvous
//    (RTS/CTS/RDMA-write/FIN) protocols;
//  * the matching engine;
//  * a pluggable ConnectionManager (static or on-demand — the paper's
//    experimental axis);
//  * progress(): the MPID_DeviceCheck() equivalent driving message AND
//    connection progress from the same polling loop (paper section 3.3);
//  * the wait loop implementing the polling / spinwait completion
//    policies of section 5.3.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/mpi/matching.h"
#include "src/mpi/packet.h"
#include "src/mpi/request.h"
#include "src/mpi/types.h"
#include "src/sim/process.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/via/provider.h"

namespace odmpi::mpi {

class ConnectionManager;
class OobExchange;

/// Protocol knobs. Defaults replicate MVICH's configuration as described
/// in the paper (eager->rendezvous switch at 5000 bytes, 120 kB of pinned
/// eager buffers per VI, spin count 100).
struct DeviceConfig {
  std::size_t eager_threshold = 5000;
  std::size_t eager_buf_bytes = 3840;  // 32 x 3840 B = 120 kB per VI
  int credits = 32;
  int send_pool_size = 64;  // device-global eager send buffers
  // Register send-pool buffers on first use instead of during MPID_Init.
  // Off by default: deferral moves the registration cost out of the
  // measured init window, which changes init-time numbers, so it is an
  // explicit opt-in for memory-footprint studies at very large N.
  bool lazy_send_pool = false;
  // Upper bound on how many queued incoming connection requests one
  // progress pass admits (0 = unlimited). Under an ANY_SOURCE connect
  // storm — N-1 simultaneous handshakes into one rank — admission happens
  // in batched rounds so a single MPID_DeviceCheck() never walks an O(N)
  // backlog. 32 exceeds any backlog a <=16-rank job can form, so paper-
  // regime runs behave exactly as the unbounded poll did.
  int admission_batch = 32;
  WaitPolicy wait_policy = WaitPolicy::spinwait(100);
  ConnectionModel connection_model = ConnectionModel::kOnDemand;
  // Paper's planned future work: grow a channel's credit window with
  // traffic instead of a fixed allocation (start small, double on use).
  bool dynamic_credits = false;
  int initial_dynamic_credits = 4;
  // How many full VIA handshakes (each with its own internal retry +
  // backoff budget) a connection manager attempts before declaring the
  // peer unreachable and failing the channel. Only reachable under fault
  // injection — a loss-free fabric always connects on the first try.
  int max_connect_attempts = 3;
  // Rendezvous data-movement protocol. kWrite (default) is the paper's
  // CTS-carries-target / sender-writes protocol and works on every
  // profile. kRead requires a DeviceProfile with supports_rdma_read (the
  // "rdma" profile): the RTS carries the sender's registered buffer and
  // rkey, the receiver pulls the payload with one RDMA read and notifies
  // the sender with kFinRead — one fewer control hop on the critical
  // path, and the receiver controls when its memory is written.
  RndvMode rndv_mode = RndvMode::kWrite;
  // XRC-style shared receive endpoint mode (requires a profile with
  // supports_shared_recv). Instead of pinning a full `credits`-deep
  // window of eager buffers per peer — the paper's 120 kB-per-VI cost
  // that motivates on-demand management in the first place — all VIs
  // bind to one SharedRecvQueue holding `srq_depth` buffers total, and
  // the per-peer credit window becomes a *grant* debited from that
  // shared pool. Per-peer receive state drops from O(peers) to O(1);
  // the invariant "sum of granted windows <= posted SRQ depth" keeps
  // the no-descriptor-drop guarantee of the per-peer design. Off by
  // default: the per-peer window is the paper's configuration.
  bool shared_recv_endpoint = false;
  int srq_depth = 64;  // initial shared pool, in buffers
  int srq_grow = 8;    // pool growth when a new peer cannot get a grant
  // Per-process VI budget for on-demand management (paper section 6's
  // "dynamic teardown under resource pressure"). 0 = unlimited, which is
  // today's behaviour and the default: no eviction code path runs and
  // identically-seeded runs are byte-identical to a build without the
  // feature. When > 0, exceeding the budget evicts the least-recently
  // used quiescent channel through a graceful teardown handshake and the
  // pair transparently reconnects on next use. Only the on-demand
  // connection manager honours the budget; static models ignore it.
  int max_vis = 0;

  [[nodiscard]] std::size_t eager_payload() const {
    return eager_buf_bytes - kHeaderBytes;
  }
};

/// A registered eager buffer (wire staging area) with its descriptor.
struct EagerBuf {
  std::vector<std::byte> mem;
  via::MemoryHandle handle = via::kInvalidMemoryHandle;
  via::Descriptor desc;
};

/// One queued wire packet waiting for credits / a send buffer.
struct OutPacket {
  PacketHeader header;
  const std::byte* payload = nullptr;  // into the user / buffered buffer
  std::size_t payload_bytes = 0;
  RequestPtr req;          // owning send request (null for control)
  bool last_segment = false;
};

/// Per-peer virtual channel. kFailed is terminal: the peer could not be
/// reached (or a reliable send exhausted its retries) and every pending
/// and future operation on the channel completes with a kTimeout error.
/// kDraining is the eviction teardown handshake (resource-capped mode
/// only): the wire is still live — arrivals are processed and queued
/// packets flush — but new sends park in the FIFO exactly as during
/// connection establishment, and the channel returns to kUnconnected
/// once both sides agree the pair is quiescent.
struct Channel {
  enum class State : std::uint8_t {
    kUnconnected,
    kConnecting,
    kConnected,
    kDraining,
    kFailed,
  };

  Rank peer = -1;
  State state = State::kUnconnected;
  via::Vi* vi = nullptr;
  int credits = 0;       // sends we may post before the peer refills us
  int credit_limit = 0;  // current window size (== credits posted by peer)
  int unreturned = 0;    // arrivals not yet credited back to the peer
  std::int64_t msgs_received = 0;
  bool credit_msg_queued = false;  // explicit kCredit packet outstanding
  // Shared-receive mode only: window grant awaiting announcement to the
  // peer (rides the next packet's piggyback field, or an explicit
  // kCredit), and the total grant debited from the device's SRQ budget
  // (returned on eviction / failure).
  int grant_pending = 0;
  int srq_granted = 0;
  std::deque<OutPacket> outq;       // wire packets awaiting credits/buffers
  std::deque<RequestPtr> park_fifo;  // the paper's pre-posted send FIFO
  std::vector<std::unique_ptr<EagerBuf>> recv_bufs;

  // Reassembly of the (single, in-order) incoming eager message.
  RequestPtr in_req;               // matched: land in the user buffer
  UnexpectedMsg* in_unexp = nullptr;  // unmatched: accumulate
  std::size_t in_offset = 0;
  std::size_t in_total = 0;

  // True while the channel sits on the device's active list (queued or
  // in-flight work, or connection progress). Maintained by the device.
  bool on_active_list = false;

  // Open handshake span (prepare_channel -> connected/failed) when the
  // job is tracing; 0 otherwise. Lives in the World's sim::Tracer.
  std::uint32_t conn_span = 0;

  // --- Resource-capped mode bookkeeping (DeviceConfig::max_vis > 0) ------
  // LRU stamp: monotonic use counter, bumped on every send/arrival. A
  // plain integer so maintaining it is free and order-neutral when the
  // budget is unlimited.
  std::uint64_t last_used = 0;
  // The channel held a VI at some point (survives eviction; lets
  // distinct_peers_contacted() keep its meaning when VIs are torn down).
  bool ever_had_vi = false;
  // Eviction handshake state: this side initiated the evict (sent
  // kEvictReq) vs. is responding to the peer's request.
  bool evict_initiator = false;
  // Responder owes the peer a kEvictAck once its own side is quiescent.
  bool evict_ack_due = false;
  // Handshake agreed; tear the VI down as soon as the out-queue flushes
  // and the last send descriptor completes.
  bool evict_teardown_ready = false;

  [[nodiscard]] bool connected() const { return state == State::kConnected; }

  /// True while the VI can still carry wire traffic: connected, or mid
  /// eviction drain (arrivals and queued packets keep flowing so the
  /// teardown handshake itself can complete).
  [[nodiscard]] bool transport_active() const {
    return state == State::kConnected || state == State::kDraining;
  }
};

class Device {
 public:
  /// `oob`, when non-null, is the job's out-of-band bootstrap hub (the
  /// World): connection managers that bulk-exchange endpoint ids at init
  /// (static-tree) publish and read their VI tables through it. Managers
  /// that handshake over the wire never touch it.
  Device(via::Cluster& cluster, Rank rank, int size, DeviceConfig config,
         OobExchange* oob = nullptr);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// MPID_Init: runs the connection manager's bootstrap (full mesh for
  /// static models, nothing for on-demand).
  void init();

  /// MPID_End happens in two phases with a job-wide barrier in between
  /// (as in MVICH): first every rank quiesces its own in-flight traffic,
  /// then — once all ranks agree — connections are torn down. Without the
  /// barrier a rank could disconnect while a peer still holds queued
  /// credit-return packets for it.
  void finalize_quiesce();
  void finalize_teardown();

  /// Convenience for single-device tests: quiesce + teardown back to back.
  void finalize() {
    finalize_quiesce();
    finalize_teardown();
  }

  // --- Point-to-point ------------------------------------------------------

  RequestPtr post_send(const void* buf, std::size_t bytes, Rank dst_world,
                       Tag tag, ContextId ctx, SendMode mode);
  RequestPtr post_recv(void* buf, std::size_t capacity, Rank src_world,
                       Tag tag, ContextId ctx,
                       const std::vector<Rank>* comm_world_ranks = nullptr);

  /// One pass of MPID_DeviceCheck(): polls completion queues, handles
  /// arrived packets, progresses connections, drains parked sends and
  /// credit-starved out-queues. Returns true if anything advanced.
  bool progress();

  /// Runs progress under the configured wait policy until `pred` holds.
  /// Templated so the predicate is a direct (inlinable) call in the poll
  /// loop rather than a std::function indirection per iteration.
  template <typename Pred>
  void wait_until(Pred&& pred);

  void wait(const RequestPtr& req);
  bool test(const RequestPtr& req);

  /// Nonblocking probe for a matching arrived envelope.
  bool iprobe(Rank src_world, Tag tag, ContextId ctx, MsgStatus* status);

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] const DeviceConfig& config() const { return config_; }
  [[nodiscard]] via::Nic& nic() { return nic_; }
  [[nodiscard]] via::Cluster& cluster() { return cluster_; }
  /// Statistics registry; hot-path counters are folded in on access.
  /// Counter handles are interned once per process, not per flush.
  [[nodiscard]] sim::Stats& stats() {
    static const sim::Stats::Counter kSends = sim::Stats::counter("mpi.sends");
    static const sim::Stats::Counter kSendBytes =
        sim::Stats::counter("mpi.send_bytes");
    static const sim::Stats::Counter kRecvs = sim::Stats::counter("mpi.recvs");
    static const sim::Stats::Counter kEagerSends =
        sim::Stats::counter("mpi.eager_sends");
    static const sim::Stats::Counter kRndvSends =
        sim::Stats::counter("mpi.rndv_sends");
    static const sim::Stats::Counter kRndvBytes =
        sim::Stats::counter("mpi.rndv_bytes");
    static const sim::Stats::Counter kPacketsSent =
        sim::Stats::counter("mpi.packets_sent");
    static const sim::Stats::Counter kPacketsReceived =
        sim::Stats::counter("mpi.packets_received");
    static const sim::Stats::Counter kSelfSends =
        sim::Stats::counter("mpi.self_sends");
    stats_.set(kSends, hot_.sends);
    stats_.set(kSendBytes, hot_.send_bytes);
    stats_.set(kRecvs, hot_.recvs);
    stats_.set(kEagerSends, hot_.eager_sends);
    stats_.set(kRndvSends, hot_.rndv_sends);
    stats_.set(kRndvBytes, hot_.rndv_bytes);
    stats_.set(kPacketsSent, hot_.packets_sent);
    stats_.set(kPacketsReceived, hot_.packets_received);
    stats_.set(kSelfSends, hot_.self_sends);
    return stats_;
  }
  /// The virtual channel for `peer`, created on first touch. Channels are
  /// lazy so a 16k-rank on-demand device holds state for O(active peers),
  /// not O(N): an untouched peer costs nothing until a send, receive or
  /// incoming packet names it. Creation is pure host memory — no sim time
  /// is charged and no events scheduled — so laziness cannot perturb any
  /// schedule.
  [[nodiscard]] Channel& channel(Rank peer) {
    auto it = channels_.find(peer);
    if (it == channels_.end()) {
      it = channels_.emplace(peer, std::make_unique<Channel>()).first;
      it->second->peer = peer;
    }
    return *it->second;
  }
  /// Read-only lookup that never materializes a channel: nullptr means
  /// the peer was never touched (state-wise equivalent to kUnconnected).
  [[nodiscard]] const Channel* find_channel(Rank peer) const {
    auto it = channels_.find(peer);
    return it == channels_.end() ? nullptr : it->second.get();
  }
  [[nodiscard]] ConnectionManager& connection_manager() { return *cm_; }
  /// The job's out-of-band bootstrap hub, or nullptr when the device runs
  /// outside a World (single-device unit tests).
  [[nodiscard]] OobExchange* oob_exchange() const { return oob_; }
  [[nodiscard]] MatchingEngine& matching() { return matching_; }

  /// The job's trace sink, or nullptr when not tracing. Collectives and
  /// connection managers route their spans through here.
  [[nodiscard]] sim::Tracer* tracer() const { return tracer_; }

  /// Distinct peers this process ever communicated with (parked or sent).
  [[nodiscard]] int distinct_peers_contacted() const;

  // --- Used by connection managers -----------------------------------------

  /// Creates the channel's VI, registers + preposts its eager receive
  /// buffers, and leaves it ready for a connect call. Idempotent.
  void prepare_channel(Channel& ch);

  /// Marks the channel connected and drains its park FIFO in order.
  void channel_connected(Channel& ch);

  /// Terminal connection/transport failure on `ch`: fails every queued,
  /// parked and in-progress request touching the peer with `error`
  /// (normally via::Status::kTimeout) instead of leaving them to hang.
  /// Under rank-kill injection a kTimeout against a peer the fault plan
  /// knows is dead is relabelled kPeerFailed — labelling only; detection
  /// latency is still paid in full by the timers that got us here.
  void fail_channel(Channel& ch, via::Status error);

  // --- Failure knowledge (rank-kill injection only) ------------------------

  /// Records that `dead` is a failed process: fails its channel, sweeps
  /// doomed wildcard receives, and floods a kPeerFailed notice to every
  /// connected peer that does not know yet (gossip — each device
  /// re-floods on first learning, so knowledge covers the live mesh in
  /// O(diameter) rounds). Idempotent; no-op unless the job injects kills.
  /// `via_gossip` marks knowledge relayed by a peer's kPeerFailed notice
  /// rather than local detection (trace annotation only).
  void note_peer_failed(Rank dead, bool via_gossip = false);

  /// True if this device knows `peer` to be a failed process.
  /// known_failed_ is only allocated under a kill schedule, hence the
  /// short-circuit order.
  [[nodiscard]] bool peer_known_failed(Rank peer) const {
    return kills_active_ &&
           known_failed_[static_cast<std::size_t>(peer)];
  }
  [[nodiscard]] int known_failed_count() const {
    return known_failed_count_;
  }

  /// Pair-unique VIA discriminator for (rank, peer).
  [[nodiscard]] via::Discriminator pair_discriminator(Rank peer) const;

  [[nodiscard]] via::CompletionQueue& send_cq() { return *send_cq_; }
  [[nodiscard]] via::CompletionQueue& recv_cq() { return *recv_cq_; }

  // --- Resource-capped eviction (DeviceConfig::max_vis > 0) ----------------
  // Mechanics live here (the device owns channels, packets and buffers);
  // policy — when to evict and which connection to defer — lives in the
  // on-demand connection manager.

  /// Channels currently holding a VI (created, not yet torn down).
  [[nodiscard]] int open_channel_vis() const { return channel_vis_; }

  /// True when `ch` may be chosen as an eviction victim right now: fully
  /// connected with no queued packets, no parked sends, no in-flight send
  /// descriptors, no partial eager reassembly, no rendezvous touching the
  /// peer, and enough credits to carry the teardown request.
  [[nodiscard]] bool channel_evictable(const Channel& ch) const;

  /// Starts the graceful teardown handshake on an evictable connected
  /// channel: sends kEvictReq, moves the channel to kDraining and tracks
  /// it until finish_evict(). Returns false if `ch` is not evictable.
  bool begin_evict(Channel& ch);

  /// Picks the least-recently-used evictable channel and begins its
  /// eviction. Returns false when no channel qualifies (all busy).
  bool evict_lru_channel();

  /// True while any eviction handshake is in flight.
  [[nodiscard]] bool eviction_in_progress() const {
    return !evicting_.empty();
  }

 private:
  // Send path.
  void start_protocol(const RequestPtr& req);
  void enqueue_eager(Channel& ch, const RequestPtr& req);
  void enqueue_control(Channel& ch, PacketHeader header);
  bool drain_outq(Channel& ch);
  void deliver_self(const RequestPtr& req);

  // Receive path.
  bool poll_recv_cq();
  bool poll_send_cq();
  void handle_packet(Channel& ch, const std::byte* data, std::size_t bytes);
  void handle_eager_first(Channel& ch, const PacketHeader& h,
                          const std::byte* payload, std::size_t payload_bytes);
  void handle_eager_data(Channel& ch, const std::byte* payload,
                         std::size_t payload_bytes);
  void handle_rts(Channel& ch, const PacketHeader& h);
  void handle_cts(const PacketHeader& h);
  void handle_fin(const PacketHeader& h);
  void handle_fin_read(const PacketHeader& h);
  /// Read-rendezvous receive path: posts the RDMA read of the sender's
  /// buffer (or completes immediately for zero-byte payloads).
  void start_read_rndv(Channel& ch, const RequestPtr& recv,
                       std::size_t total_bytes, std::uint64_t sender_cookie,
                       std::uint64_t remote_addr, std::uint32_t rkey);
  void finish_eager_recv(Channel& ch);
  void send_cts(Channel& ch, const RequestPtr& recv, std::size_t total_bytes,
                std::uint64_t sender_cookie);
  void maybe_return_credits(Channel& ch);
  void take_credits(Channel& ch, PacketHeader& header);

  /// Puts `ch` on the active list (idempotent). Called wherever a channel
  /// might acquire queued packets, in-flight VI sends, or connection
  /// traffic; quiescent channels are lazily retired during sweeps, so
  /// scans over in-flight work touch O(active) channels, not all N-1.
  void touch_channel(Channel& ch) {
    if (!ch.on_active_list) {
      ch.on_active_list = true;
      active_channels_.push_back(&ch);
    }
  }

  /// True when the channel holds no queued or in-flight work that the
  /// finalize quiesce phase must wait for.
  static bool channel_quiet(const Channel& ch) {
    return ch.outq.empty() && ch.state != Channel::State::kConnecting &&
           (ch.vi == nullptr || ch.vi->sends_in_flight() == 0);
  }

  // Failure-model internals (rank-kill injection; see DESIGN.md sec. 12).
  // The error label for operations against `peer`: kPeerFailed when the
  // peer is known (or provably, per the fault plan) dead, else kTimeout.
  [[nodiscard]] via::Status peer_error(Rank peer) const;
  // Fails `req` with `error` (idempotent) and emits the msg.aborted
  // instant when the error is a peer death.
  void abort_request(const RequestPtr& req, via::Status error, Rank peer);
  void flood_peer_failed(Rank dead);
  // Completes every posted wildcard receive whose candidate senders have
  // all failed (the latent ANY_SOURCE hang) with kPeerFailed.
  void sweep_doomed_wildcards();
  // Death-detection watchdog: armed while the process blocks in
  // wait_until under an active kill schedule, it periodically asks the
  // ConnectionService to liveness-probe every transport-active peer —
  // the only detector for a connected-but-silent corpse (a pair with no
  // packets in flight has no retransmission timer watching it).
  void arm_watchdog();
  void on_watchdog(std::uint64_t gen);

  // Eviction internals (resource-capped mode; see DESIGN.md section 11).
  void touch_lru(Channel& ch) { ch.last_used = ++lru_clock_; }
  [[nodiscard]] bool peer_has_rndv(Rank peer) const;
  void handle_evict_req(Channel& ch);
  void handle_evict_ack(Channel& ch);
  bool progress_evictions();
  void finish_evict(Channel& ch);

  // Tracing helpers; no-ops when the job is not tracing (tracer_ null or
  // the message category masked). The guards live inline so the common
  // not-tracing case costs a branch, not an out-of-line call per message.
  void trace_msg_begin(const RequestPtr& req) {  // opens the lifecycle span
    if (tracer_ == nullptr || !tracer_->on(sim::TraceCat::kMsg)) return;
    trace_msg_begin_slow(req);
  }
  void trace_msg_done(RequestState& req) {  // closes lifecycle + park
    if (req.trace_span == 0 && req.park_span == 0) return;
    trace_msg_done_slow(req);
  }
  void trace_msg_begin_slow(const RequestPtr& req);
  void trace_msg_done_slow(RequestState& req);
  void trace_unexpected_depth();  // samples the unexpected-queue depth

  // Buffers / registration.
  EagerBuf* acquire_send_buf();
  void release_send_buf(EagerBuf* buf);
  via::MemoryHandle register_cached(const std::byte* addr, std::size_t bytes);

  // Shared-receive (XRC) mode internals.
  void srq_ensure();            // lazily creates the SRQ + initial pool
  void srq_add_buffers(int n);  // registers and posts n more pool buffers

  via::Cluster& cluster_;
  via::Nic& nic_;
  sim::Tracer* tracer_;  // from the cluster; nullptr when not tracing
  Rank rank_;
  int size_;
  DeviceConfig config_;
  OobExchange* oob_ = nullptr;
  std::unique_ptr<ConnectionManager> cm_;

  via::CompletionQueue* send_cq_ = nullptr;
  via::CompletionQueue* recv_cq_ = nullptr;

  // Keyed and ordered by peer rank; lazily populated (see channel()).
  // Iteration order matches the old dense vector's, so every sweep that
  // walks the map visits peers in the same deterministic order.
  std::map<Rank, std::unique_ptr<Channel>> channels_;
  std::vector<Channel*> active_channels_;  // see touch_channel()
  std::unordered_map<via::Vi*, Channel*> vi_to_channel_;
  MatchingEngine matching_;

  std::vector<std::unique_ptr<EagerBuf>> send_pool_;
  std::vector<EagerBuf*> free_send_bufs_;
  std::deque<Channel*> starved_channels_;  // waiting for a send buffer

  std::unordered_map<std::uint64_t, RequestPtr> rndv_senders_;
  std::unordered_map<std::uint64_t, RequestPtr> rndv_receivers_;
  std::uint64_t next_cookie_ = 1;

  // Rendezvous RDMA descriptors in flight (returned via user_context).
  std::vector<std::unique_ptr<via::Descriptor>> rdma_in_flight_;

  // Read-rendezvous bookkeeping: in-flight RDMA read descriptor -> what
  // to do when it completes (which receive to finish, which sender
  // cookie to name in the kFinRead, which peer to send it to).
  struct ReadRndv {
    std::uint64_t recv_cookie = 0;
    std::uint64_t sender_cookie = 0;
    Rank peer = -1;
  };
  std::unordered_map<via::Descriptor*, ReadRndv> read_rndv_;

  // Shared-receive (XRC) mode state. The SRQ and its buffer pool are
  // device-global (that is the point); srq_credit_budget_ tracks how
  // many posted-but-ungranted buffers remain, maintaining the invariant
  // sum(channel.srq_granted) + srq_credit_budget_ == buffers posted.
  via::SharedRecvQueue* srq_ = nullptr;
  std::vector<std::unique_ptr<EagerBuf>> srq_bufs_;
  int srq_credit_budget_ = 0;

  // Registration cache: base address -> (handle, length).
  std::map<const std::byte*, std::pair<via::MemoryHandle, std::size_t>>
      reg_cache_;

  // Per-packet/per-message counters kept as plain integers: the map-based
  // registry is far too slow for the data path (millions of packets).
  struct HotCounters {
    std::int64_t sends = 0, send_bytes = 0, recvs = 0;
    std::int64_t eager_sends = 0, rndv_sends = 0, rndv_bytes = 0;
    std::int64_t packets_sent = 0, packets_received = 0, self_sends = 0;
  };
  HotCounters hot_;
  sim::Stats stats_;
  bool finalized_ = false;

  // Resource-capped mode state: monotonic LRU clock, count of channels
  // holding a VI, and channels mid eviction handshake. All three stay at
  // their initial values' cost (integer bumps, empty-vector checks) when
  // max_vis is 0, so the unlimited mode is byte-identical to before.
  std::uint64_t lru_clock_ = 0;
  int channel_vis_ = 0;
  std::vector<Channel*> evicting_;

  // Rank-kill state. kills_active_ is fixed at construction from the
  // fault config; with no kill schedule every guard below is one false
  // branch, the watchdog / probe machinery never arms, and known_failed_
  // is never even allocated (every read is kills-gated), keeping
  // kill-free runs byte-identical and their footprint N-independent.
  bool kills_active_ = false;
  std::vector<bool> known_failed_;  // by world rank; kill schedules only
  int known_failed_count_ = 0;
  bool in_blocking_wait_ = false;
  bool watchdog_armed_ = false;
  std::uint64_t watchdog_generation_ = 0;
};

/// Strategy interface for connection management (paper sections 3-4).
class ConnectionManager {
 public:
  explicit ConnectionManager(Device& device) : device_(device) {}
  virtual ~ConnectionManager() = default;

  /// Runs inside MPID_Init.
  virtual void init() = 0;

  /// Called when a send or a named-source receive first touches `peer`.
  /// Must put the channel in at least kConnecting state.
  virtual void ensure_connection(Rank peer) = 0;

  /// Called when a receive is posted with MPI_ANY_SOURCE: the on-demand
  /// manager connects to every process in the communicator (section 3.5).
  virtual void on_any_source(const std::vector<Rank>& comm_world_ranks) = 0;

  /// Folded into every MPID_DeviceCheck() pass.
  ///
  /// Progress contract: returns true when this call advanced some
  /// connection state — answered an incoming request, completed or
  /// retried a handshake, or failed a channel over — meaning the caller
  /// should poll again immediately because more work may have become
  /// ready. Returns false when the manager is quiescent and the caller
  /// may yield or block. A manager whose bootstrap completes entirely in
  /// init() (the static models) has nothing to advance and always
  /// returns false; that is a valid implementation of this contract, not
  /// a missing feature.
  virtual bool progress() = 0;

  [[nodiscard]] virtual ConnectionModel model() const = 0;

  /// Factory for the model's manager. The returned unique_ptr is the
  /// single owner; the Device stores it for its own lifetime and every
  /// other reference (tests, benches) must go through
  /// Device::connection_manager().
  [[nodiscard]] static std::unique_ptr<ConnectionManager> create(
      Device& device, ConnectionModel model);

 protected:
  Device& device_;
};

template <typename Pred>
void Device::wait_until(Pred&& pred) {
  auto* proc = sim::Process::current();
  assert(proc != nullptr);
  const bool polling = config_.wait_policy.is_polling();
  const bool has_kernel_wait = !nic_.profile().wait_is_poll;
  // One spin iteration of MPID_DeviceCheck costs roughly two CQ polls
  // plus loop overhead; the spin window is what the configured spin
  // budget buys before the process falls through to the kernel wait.
  const sim::SimTime spin_iter_cost =
      2 * nic_.profile().cq_poll_cost + sim::nanoseconds(60);
  const sim::SimTime spin_window =
      polling ? 0
              : std::max(1, config_.wait_policy.spin_count) * spin_iter_cost;

  while (!pred()) {
    if (progress()) continue;
    // Nothing progressed: the process would now sit in a poll loop (or a
    // kernel wait) until the NIC signals. Blocking in the *simulator* is
    // virtual-time-equivalent to polling — nothing else runs on this CPU
    // and the wake-up lands exactly at the event's arrival time — so we
    // block and reconstruct the policy cost afterwards:
    //  * polling: no extra charge, ever;
    //  * spinwait on a device whose wait is a poll (BVIA): same as
    //    polling, matching the paper's observation that the two modes
    //    are indistinguishable there;
    //  * spinwait on cLAN: if the event arrived after the spin budget
    //    was exhausted, the process had really gone to sleep in the
    //    kernel and pays the wake-up penalty.
    nic_.set_host_waiter(proc);
    if (kills_active_) {
      // A connected-but-silent corpse generates no completions: nothing
      // would ever wake this wait. The watchdog keeps virtual time (and
      // liveness probes) flowing while the process is parked.
      in_blocking_wait_ = true;
      arm_watchdog();
    }
    const sim::SimTime blocked = proc->block();
    in_blocking_wait_ = false;
    nic_.set_host_waiter(nullptr);
    if (blocked > 0 && !polling && has_kernel_wait &&
        blocked > spin_window) {
      proc->advance(nic_.profile().blocking_wait_wakeup);
      static const sim::Stats::Counter kKernelWakeups =
          sim::Stats::counter("mpi.kernel_wakeups");
      stats_.add(kKernelWakeups);
    }
  }
}

}  // namespace odmpi::mpi
