#include <cstring>
#include <numeric>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::reduce_scatter(const void* sendbuf, void* recvbuf,
                          const int* recvcounts, Datatype dt, Op op) const {
  using namespace coll;
  const int n = size();
  const int me = rank();
  int total = 0;
  for (int r = 0; r < n; ++r) total += recvcounts[r];

  // Reduce the full vector to rank 0, then scatter the segments — the
  // MPICH-1.2 implementation (reduce + scatterv).
  std::vector<std::byte> full(static_cast<std::size_t>(total) * dt.size());
  reduce(sendbuf, full.data(), total, dt, op, /*root=*/0);

  const std::size_t my_bytes =
      static_cast<std::size_t>(recvcounts[me]) * dt.size();
  if (me == 0) {
    std::memcpy(recvbuf, full.data(),
                static_cast<std::size_t>(recvcounts[0]) * dt.size());
    std::size_t off = static_cast<std::size_t>(recvcounts[0]) * dt.size();
    for (int r = 1; r < n; ++r) {
      const std::size_t bytes =
          static_cast<std::size_t>(recvcounts[r]) * dt.size();
      coll_send(full.data() + off, bytes, r, kTagReduceScatter);
      off += bytes;
    }
  } else {
    coll_recv(recvbuf, my_bytes, 0, kTagReduceScatter);
  }
}

}  // namespace odmpi::mpi
