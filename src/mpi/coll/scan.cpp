#include <cstring>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::scan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
                Op op) const {
  using namespace coll;
  const int n = size();
  const int me = rank();
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.size();
  std::memcpy(recvbuf, sendbuf, bytes);

  // Chain scan (MPICH-1 style): receive the running prefix from the left
  // neighbour, fold, pass to the right.
  if (me > 0) {
    std::vector<std::byte> incoming(bytes);
    coll_recv(incoming.data(), bytes, me - 1, kTagScan);
    apply_op(op, dt, recvbuf, incoming.data(), static_cast<std::size_t>(count));
  }
  if (me + 1 < n) {
    coll_send(recvbuf, bytes, me + 1, kTagScan);
  }
}

}  // namespace odmpi::mpi
