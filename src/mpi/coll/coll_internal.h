// Shared helpers for the collective algorithms. The algorithm choices
// replicate the MPICH-1.2-era implementations MVICH inherited, because
// Table 2 of the paper (VIs used per process) is a direct function of
// each algorithm's communication partners:
//  * barrier/allreduce: recursive doubling (XOR partners -> log2 N VIs);
//  * bcast/reduce: binomial trees whose edges are XOR partners too;
//  * gather/scatter: linear (rooted);
//  * allgather: recursive doubling (power of two) or ring;
//  * alltoall: pairwise exchange (N-1 partners — the full mesh IS needs).
#pragma once

#include "src/mpi/comm.h"

namespace odmpi::mpi::coll {

// Tags inside the collective context, one per operation (debuggability).
inline constexpr Tag kTagBarrier = 1;
inline constexpr Tag kTagBcast = 2;
inline constexpr Tag kTagReduce = 3;
inline constexpr Tag kTagAllreduce = 4;
inline constexpr Tag kTagGather = 5;
inline constexpr Tag kTagScatter = 6;
inline constexpr Tag kTagAllgather = 7;
inline constexpr Tag kTagAlltoall = 8;
inline constexpr Tag kTagReduceScatter = 9;
inline constexpr Tag kTagScan = 10;

// Interned names for collective phase spans (TraceCat::kColl).
inline const sim::Stats::Counter kTrBarrierFold =
    sim::Stats::counter("coll.barrier.fold");
inline const sim::Stats::Counter kTrBarrierRound =
    sim::Stats::counter("coll.barrier.round");
inline const sim::Stats::Counter kTrAllreduceFold =
    sim::Stats::counter("coll.allreduce.fold");
inline const sim::Stats::Counter kTrAllreduceRound =
    sim::Stats::counter("coll.allreduce.round");
inline const sim::Stats::Counter kTrBcastStep =
    sim::Stats::counter("coll.bcast.step");

/// RAII span over one algorithm round of a collective. Under tracing,
/// chrome://tracing then shows *which* round of a recursive-doubling
/// exchange absorbed a first-touch connection handshake — the timeline
/// the paper's Figures 4-7 argue about. Free when the job is not tracing.
class PhaseSpan {
 public:
  PhaseSpan(const Comm& comm, sim::Stats::Counter name, int peer,
            std::int64_t round = 0, std::int64_t bytes = 0)
      : tracer_(comm.device().tracer()) {
    if (tracer_ != nullptr) {
      id_ = tracer_->begin_span(sim::TraceCat::kColl, name,
                                comm.device().rank(), peer, round, bytes);
    }
  }
  ~PhaseSpan() {
    if (id_ != 0) tracer_->end_span(id_);
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  sim::Tracer* tracer_;
  sim::TraceSpanId id_ = 0;
};

[[nodiscard]] inline bool is_pow2(int n) { return (n & (n - 1)) == 0; }

/// Largest power of two <= n.
[[nodiscard]] inline int pow2_floor(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace odmpi::mpi::coll
