#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::barrier() const {
  using namespace coll;
  const int n = size();
  if (n == 1) return;
  const int me = rank();
  const int base = pow2_floor(n);

  // Fold the ranks beyond the largest power of two into the base set —
  // this is the "extra steps for nodes not in the binomial tree" that
  // causes the paper's fluctuation on non-power-of-two sizes (Fig 4).
  if (me >= base) {
    PhaseSpan span(*this, kTrBarrierFold, me - base);
    coll_send(nullptr, 0, me - base, kTagBarrier);
    coll_recv(nullptr, 0, me - base, kTagBarrier);
    return;
  }
  if (me + base < n) {
    PhaseSpan span(*this, kTrBarrierFold, me + base);
    coll_recv(nullptr, 0, me + base, kTagBarrier);
  }
  // Recursive doubling among the power-of-two base set: partner = me XOR
  // 2^k, so every rank meets exactly log2(base) distinct peers (Table 2).
  int round = 0;
  for (int mask = 1; mask < base; mask <<= 1, ++round) {
    const int partner = me ^ mask;
    PhaseSpan span(*this, kTrBarrierRound, partner, round);
    coll_sendrecv(nullptr, 0, partner, nullptr, 0, partner, kTagBarrier);
  }
  if (me + base < n) {
    PhaseSpan span(*this, kTrBarrierFold, me + base);
    coll_send(nullptr, 0, me + base, kTagBarrier);
  }
}

}  // namespace odmpi::mpi
