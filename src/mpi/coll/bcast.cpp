#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::bcast(void* buf, int count, Datatype dt, int root) const {
  using namespace coll;
  const int n = size();
  if (n == 1) return;
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.size();
  // Binomial tree on virtual ranks relative to the root; tree edges are
  // XOR partners of the virtual rank, exactly MPICH-1.2's MPIR_Bcast.
  const int vr = (rank() - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int parent = ((vr - mask) + root) % n;
      PhaseSpan span(*this, kTrBcastStep, parent, mask,
                     static_cast<std::int64_t>(bytes));
      coll_recv(buf, bytes, parent, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int child = (vr + mask + root) % n;
      PhaseSpan span(*this, kTrBcastStep, child, mask,
                     static_cast<std::int64_t>(bytes));
      coll_send(buf, bytes, child, kTagBcast);
    }
    mask >>= 1;
  }
}

}  // namespace odmpi::mpi
