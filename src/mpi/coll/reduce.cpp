#include <cstring>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::reduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
                  Op op, int root) const {
  using namespace coll;
  const int n = size();
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.size();
  const bool am_root = rank() == root;

  // Accumulator: the root reduces in place into recvbuf; everyone else
  // works in a scratch buffer.
  std::vector<std::byte> scratch;
  std::byte* acc;
  if (am_root) {
    acc = static_cast<std::byte*>(recvbuf);
  } else {
    scratch.resize(bytes);
    acc = scratch.data();
  }
  std::memcpy(acc, sendbuf, bytes);

  // Mirror of the binomial bcast tree: children fold into parents. All
  // our ops are commutative, so combine order does not affect the result.
  std::vector<std::byte> incoming(bytes);
  const int vr = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      if (vr + mask < n) {
        const int child = (vr + mask + root) % n;
        coll_recv(incoming.data(), bytes, child, kTagReduce);
        apply_op(op, dt, acc, incoming.data(),
                 static_cast<std::size_t>(count));
      }
    } else {
      const int parent = ((vr - mask) + root) % n;
      coll_send(acc, bytes, parent, kTagReduce);
      break;
    }
    mask <<= 1;
  }
}

}  // namespace odmpi::mpi
