#include <cstring>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::gather(const void* sendbuf, int sendcount, void* recvbuf,
                  Datatype dt, int root) const {
  using namespace coll;
  const int n = size();
  const std::size_t block = static_cast<std::size_t>(sendcount) * dt.size();
  if (rank() != root) {
    coll_send(sendbuf, block, root, kTagGather);
    return;
  }
  // Linear gather, as in MPICH-1.2: the root posts a receive per peer.
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(root) * block, sendbuf, block);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(n - 1));
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    reqs.push_back(coll_irecv(out + static_cast<std::size_t>(r) * block,
                              block, r, kTagGather));
  }
  wait_all(reqs);
}

}  // namespace odmpi::mpi
