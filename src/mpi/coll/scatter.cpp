#include <cstring>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::scatter(const void* sendbuf, int count, void* recvbuf, Datatype dt,
                   int root) const {
  using namespace coll;
  const int n = size();
  const std::size_t block = static_cast<std::size_t>(count) * dt.size();
  if (rank() != root) {
    coll_recv(recvbuf, block, root, kTagScatter);
    return;
  }
  // Linear scatter (MPICH-1.2): one send per peer from the root.
  const auto* in = static_cast<const std::byte*>(sendbuf);
  std::memcpy(recvbuf, in + static_cast<std::size_t>(root) * block, block);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(n - 1));
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    reqs.push_back(coll_isend(in + static_cast<std::size_t>(r) * block, block,
                              r, kTagScatter));
  }
  wait_all(reqs);
}

}  // namespace odmpi::mpi
