#include <cstring>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::allgather(const void* sendbuf, int sendcount, void* recvbuf,
                     Datatype dt) const {
  using namespace coll;
  const int n = size();
  const int me = rank();
  const std::size_t block = static_cast<std::size_t>(sendcount) * dt.size();
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(me) * block, sendbuf, block);
  if (n == 1) return;

  if (is_pow2(n)) {
    // Recursive doubling: round k exchanges the 2^k blocks accumulated so
    // far with partner me XOR 2^k.
    for (int mask = 1; mask < n; mask <<= 1) {
      const int partner = me ^ mask;
      const int my_start = (me / mask) * mask;        // blocks I hold
      const int their_start = (partner / mask) * mask;
      coll_sendrecv(out + static_cast<std::size_t>(my_start) * block,
                    static_cast<std::size_t>(mask) * block, partner,
                    out + static_cast<std::size_t>(their_start) * block,
                    static_cast<std::size_t>(mask) * block, partner,
                    kTagAllgather);
    }
    return;
  }
  // Ring for non-power-of-two sizes.
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  int have = me;  // block received in the previous round
  for (int step = 0; step < n - 1; ++step) {
    const int incoming = (have - 1 + n) % n;
    coll_sendrecv(out + static_cast<std::size_t>(have) * block, block, right,
                  out + static_cast<std::size_t>(incoming) * block, block,
                  left, kTagAllgather);
    have = incoming;
  }
}

}  // namespace odmpi::mpi
