#include <cstring>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::alltoall(const void* sendbuf, int count, void* recvbuf,
                    Datatype dt) const {
  using namespace coll;
  const int n = size();
  const int me = rank();
  const std::size_t block = static_cast<std::size_t>(count) * dt.size();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(me) * block,
              in + static_cast<std::size_t>(me) * block, block);

  // Pairwise exchange: every process meets all N-1 peers (the full-mesh
  // pattern that keeps IS at utilization 1.0 even under static management
  // in Table 2). XOR pairing for powers of two, rotation otherwise.
  for (int step = 1; step < n; ++step) {
    int send_to, recv_from;
    if (is_pow2(n)) {
      send_to = recv_from = me ^ step;
    } else {
      send_to = (me + step) % n;
      recv_from = (me - step + n) % n;
    }
    coll_sendrecv(in + static_cast<std::size_t>(send_to) * block, block,
                  send_to, out + static_cast<std::size_t>(recv_from) * block,
                  block, recv_from, kTagAlltoall);
  }
}

void Comm::alltoallv(const void* sendbuf, const int* sendcounts,
                     const int* sdispls, void* recvbuf, const int* recvcounts,
                     const int* rdispls, Datatype dt) const {
  using namespace coll;
  const int n = size();
  const int me = rank();
  const std::size_t ext = dt.size();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);

  std::memcpy(out + static_cast<std::size_t>(rdispls[me]) * ext,
              in + static_cast<std::size_t>(sdispls[me]) * ext,
              static_cast<std::size_t>(sendcounts[me]) * ext);

  // Post all receives, then rotated sends, then complete everything —
  // MPICH-1.2's MPIR_Alltoallv structure.
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(2 * (n - 1)));
  for (int step = 1; step < n; ++step) {
    const int src = (me - step + n) % n;
    reqs.push_back(
        coll_irecv(out + static_cast<std::size_t>(rdispls[src]) * ext,
                   static_cast<std::size_t>(recvcounts[src]) * ext, src,
                   kTagAlltoall));
  }
  for (int step = 1; step < n; ++step) {
    const int dst = (me + step) % n;
    reqs.push_back(
        coll_isend(in + static_cast<std::size_t>(sdispls[dst]) * ext,
                   static_cast<std::size_t>(sendcounts[dst]) * ext, dst,
                   kTagAlltoall));
  }
  wait_all(reqs);
}

}  // namespace odmpi::mpi
