#include <cstring>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::allreduce(const void* sendbuf, void* recvbuf, int count,
                     Datatype dt, Op op) const {
  using namespace coll;
  const int n = size();
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.size();
  std::memcpy(recvbuf, sendbuf, bytes);
  if (n == 1) return;
  const int me = rank();
  const int base = pow2_floor(n);
  std::vector<std::byte> incoming(bytes);

  // Fold extras into the power-of-two base set.
  if (me >= base) {
    PhaseSpan span(*this, kTrAllreduceFold, me - base, 0,
                   static_cast<std::int64_t>(bytes));
    coll_send(recvbuf, bytes, me - base, kTagAllreduce);
    coll_recv(recvbuf, bytes, me - base, kTagAllreduce);
    return;
  }
  if (me + base < n) {
    PhaseSpan span(*this, kTrAllreduceFold, me + base, 0,
                   static_cast<std::int64_t>(bytes));
    coll_recv(incoming.data(), bytes, me + base, kTagAllreduce);
    apply_op(op, dt, recvbuf, incoming.data(),
             static_cast<std::size_t>(count));
  }

  // Recursive doubling: each round exchanges the running reduction with
  // partner me XOR 2^k (log2 N distinct partners — Table 2's Allreduce).
  int round = 0;
  for (int mask = 1; mask < base; mask <<= 1, ++round) {
    const int partner = me ^ mask;
    PhaseSpan span(*this, kTrAllreduceRound, partner, round,
                   static_cast<std::int64_t>(bytes));
    coll_sendrecv(recvbuf, bytes, partner, incoming.data(), bytes, partner,
                  kTagAllreduce);
    apply_op(op, dt, recvbuf, incoming.data(),
             static_cast<std::size_t>(count));
  }

  if (me + base < n) {
    PhaseSpan span(*this, kTrAllreduceFold, me + base, 0,
                   static_cast<std::int64_t>(bytes));
    coll_send(recvbuf, bytes, me + base, kTagAllreduce);
  }
}

}  // namespace odmpi::mpi
