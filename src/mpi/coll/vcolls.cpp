// Variable-count collectives: gatherv, scatterv, allgatherv. Linear
// rooted algorithms (MPICH-1.2 style), ring-free allgatherv built from
// gatherv + bcast to keep block placement simple and correct.
#include <cstring>
#include <vector>

#include "src/mpi/coll/coll_internal.h"

namespace odmpi::mpi {

void Comm::gatherv(const void* sendbuf, int sendcount, void* recvbuf,
                   const int* recvcounts, const int* displs, Datatype dt,
                   int root) const {
  using namespace coll;
  const int n = size();
  const std::size_t ext = dt.size();
  if (rank() != root) {
    coll_send(sendbuf, static_cast<std::size_t>(sendcount) * ext, root,
              kTagGather);
    return;
  }
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(displs[root]) * ext, sendbuf,
              static_cast<std::size_t>(sendcount) * ext);
  std::vector<Request> reqs;
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    reqs.push_back(
        coll_irecv(out + static_cast<std::size_t>(displs[r]) * ext,
                   static_cast<std::size_t>(recvcounts[r]) * ext, r,
                   kTagGather));
  }
  wait_all(reqs);
}

void Comm::scatterv(const void* sendbuf, const int* sendcounts,
                    const int* displs, void* recvbuf, int recvcount,
                    Datatype dt, int root) const {
  using namespace coll;
  const int n = size();
  const std::size_t ext = dt.size();
  if (rank() != root) {
    coll_recv(recvbuf, static_cast<std::size_t>(recvcount) * ext, root,
              kTagScatter);
    return;
  }
  const auto* in = static_cast<const std::byte*>(sendbuf);
  std::memcpy(recvbuf, in + static_cast<std::size_t>(displs[root]) * ext,
              static_cast<std::size_t>(sendcounts[root]) * ext);
  std::vector<Request> reqs;
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    reqs.push_back(
        coll_isend(in + static_cast<std::size_t>(displs[r]) * ext,
                   static_cast<std::size_t>(sendcounts[r]) * ext, r,
                   kTagScatter));
  }
  wait_all(reqs);
}

void Comm::allgatherv(const void* sendbuf, int sendcount, void* recvbuf,
                      const int* recvcounts, const int* displs,
                      Datatype dt) const {
  const int n = size();
  // Gather to rank 0 then broadcast the assembled buffer (the correct
  // total extent is known to every rank from counts+displs).
  gatherv(sendbuf, sendcount, recvbuf, recvcounts, displs, dt, /*root=*/0);
  std::size_t total_end = 0;
  for (int r = 0; r < n; ++r) {
    total_end = std::max(total_end, static_cast<std::size_t>(displs[r]) +
                                        static_cast<std::size_t>(
                                            recvcounts[r]));
  }
  bcast(recvbuf, static_cast<int>(total_end), dt, /*root=*/0);
}

}  // namespace odmpi::mpi
