// Out-of-band bootstrap exchange (DESIGN.md section 14).
//
// Static connection establishment at large N is dominated by the O(N^2)
// wire handshakes of the naive all-pairs bootstrap. Real MPI launchers
// avoid this with their process manager: every process deposits its
// endpoint identifiers into an out-of-band channel (PMI put/fence/get),
// the runtime aggregates them tree-fashion, and each process then binds
// its endpoints directly — no per-pair wire rendezvous at all.
//
// OobExchange is that hub. The World implements it on top of its shared
// address space: publish_vi_table() deposits one rank's per-peer VI-id
// table and blocks (barrier semantics) until every rank has deposited,
// charging each caller the aggregated-exchange cost
//
//     oob_hop_cost * ceil(log2 N)  +  oob_entry_cost * N
//
// — a tree of depth log2(N) forwarding hops plus linear per-entry
// marshalling, the standard cost shape of an alltoallv-style PMI fence.
// After it returns, lookup_vi() reads any rank's table entry for free
// (host memory; the charged cost already covered the distribution).
#pragma once

#include <vector>

#include "src/mpi/types.h"
#include "src/via/types.h"

namespace odmpi::mpi {

class OobExchange {
 public:
  virtual ~OobExchange() = default;

  /// Collective: deposits `rank`'s table (table[p] = the VI id `rank`
  /// created for talking to peer p; unused entries may be -1) and parks
  /// the caller until all participants have deposited. Charges the
  /// aggregated-exchange cost to the calling process's clock.
  virtual void publish_vi_table(Rank rank, std::vector<via::ViId> table) = 0;

  /// The VI id `owner` published for talking to `peer`. Only valid after
  /// publish_vi_table() returned on every rank.
  [[nodiscard]] virtual via::ViId lookup_vi(Rank owner, Rank peer) const = 0;

  /// Plain collective fence: parks `rank` until every participant has
  /// arrived. Bootstraps fence after their bind phase — a locally bound
  /// VI whose peer has not bound yet silently drops arrivals, so no rank
  /// may start sending before all binds are done.
  virtual void oob_fence(Rank rank) = 0;
};

}  // namespace odmpi::mpi
