// The communicator: the library's main public handle.
//
// MPI-1.2 subset sufficient for the paper's entire evaluation: blocking
// and nonblocking point-to-point in all four send modes, wildcards,
// probe, eleven collectives, and communicator dup/split. Methods take
// (buffer, count, datatype) like the C bindings, plus typed std::span
// conveniences.
#pragma once

#include <cassert>
#include <memory>
#include <span>
#include <vector>

#include "src/mpi/datatype.h"
#include "src/mpi/device.h"
#include "src/mpi/group.h"
#include "src/mpi/op.h"
#include "src/mpi/request.h"
#include "src/mpi/types.h"

namespace odmpi::mpi {

/// Per-rank library context shared by all communicators of that rank.
struct RankContext {
  Device* device = nullptr;
  ContextId next_context = 2;  // 0/1 reserved for the world communicator
};

class Comm {
 public:
  Comm() = default;

  /// Builds a communicator over `group` with point-to-point context
  /// `context` (its collective context is context+1, MPICH-style).
  Comm(RankContext* rc, Group group, ContextId context);

  [[nodiscard]] bool valid() const { return s_ != nullptr; }
  [[nodiscard]] int rank() const { return s_->my_rank; }
  [[nodiscard]] int size() const { return s_->group.size(); }
  [[nodiscard]] const Group& group() const { return s_->group; }
  [[nodiscard]] ContextId context() const { return s_->context; }
  [[nodiscard]] Device& device() const { return *s_->rc->device; }

  /// Virtual wall-clock in seconds (MPI_Wtime).
  [[nodiscard]] double wtime() const;

  // --- Blocking point-to-point ---------------------------------------------

  void send(const void* buf, int count, Datatype dt, int dest, Tag tag) const;
  void ssend(const void* buf, int count, Datatype dt, int dest, Tag tag) const;
  void bsend(const void* buf, int count, Datatype dt, int dest, Tag tag) const;
  void rsend(const void* buf, int count, Datatype dt, int dest, Tag tag) const;
  MsgStatus recv(void* buf, int count, Datatype dt, int source,
                 Tag tag) const;
  MsgStatus sendrecv(const void* sendbuf, int sendcount, Datatype sendtype,
                     int dest, Tag sendtag, void* recvbuf, int recvcount,
                     Datatype recvtype, int source, Tag recvtag) const;
  MsgStatus sendrecv_replace(void* buf, int count, Datatype dt, int dest,
                             Tag sendtag, int source, Tag recvtag) const;

  // --- Nonblocking point-to-point ------------------------------------------

  Request isend(const void* buf, int count, Datatype dt, int dest,
                Tag tag) const;
  Request issend(const void* buf, int count, Datatype dt, int dest,
                 Tag tag) const;
  Request ibsend(const void* buf, int count, Datatype dt, int dest,
                 Tag tag) const;
  Request irecv(void* buf, int count, Datatype dt, int source, Tag tag) const;

  // --- Probe ------------------------------------------------------------

  bool iprobe(int source, Tag tag, MsgStatus* status = nullptr) const;
  MsgStatus probe(int source, Tag tag) const;

  // --- Collectives -----------------------------------------------------

  void barrier() const;
  void bcast(void* buf, int count, Datatype dt, int root) const;
  void reduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
              Op op, int root) const;
  void allreduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
                 Op op) const;
  void gather(const void* sendbuf, int sendcount, void* recvbuf, Datatype dt,
              int root) const;
  void scatter(const void* sendbuf, int count, void* recvbuf, Datatype dt,
               int root) const;
  void allgather(const void* sendbuf, int sendcount, void* recvbuf,
                 Datatype dt) const;
  void alltoall(const void* sendbuf, int count, void* recvbuf,
                Datatype dt) const;
  void alltoallv(const void* sendbuf, const int* sendcounts,
                 const int* sdispls, void* recvbuf, const int* recvcounts,
                 const int* rdispls, Datatype dt) const;
  void reduce_scatter(const void* sendbuf, void* recvbuf,
                      const int* recvcounts, Datatype dt, Op op) const;
  void scan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
            Op op) const;
  void gatherv(const void* sendbuf, int sendcount, void* recvbuf,
               const int* recvcounts, const int* displs, Datatype dt,
               int root) const;
  void scatterv(const void* sendbuf, const int* sendcounts, const int* displs,
                void* recvbuf, int recvcount, Datatype dt, int root) const;
  void allgatherv(const void* sendbuf, int sendcount, void* recvbuf,
                  const int* recvcounts, const int* displs,
                  Datatype dt) const;

  // --- Communicator management -------------------------------------------

  /// Duplicate with a fresh context (collective).
  [[nodiscard]] Comm dup() const;

  /// Partition by color, order by (key, rank) (collective). A negative
  /// color yields an invalid communicator for that caller.
  [[nodiscard]] Comm split(int color, int key) const;

  // --- Typed conveniences ----------------------------------------------

  template <typename T>
  void send(std::span<const T> data, int dest, Tag tag) const {
    send(data.data(), static_cast<int>(data.size()), datatype_of<T>(), dest,
         tag);
  }
  template <typename T>
  MsgStatus recv(std::span<T> data, int source, Tag tag) const {
    return recv(data.data(), static_cast<int>(data.size()), datatype_of<T>(),
                source, tag);
  }
  template <typename T>
  T allreduce_one(T value, Op op) const {
    T out{};
    allreduce(&value, &out, 1, datatype_of<T>(), op);
    return out;
  }
  template <typename T>
  void bcast_one(T& value, int root) const {
    bcast(&value, 1, datatype_of<T>(), root);
  }

  // --- Internals shared with the collective implementations ---------------

  /// Collective-plane context id (user traffic never matches it).
  [[nodiscard]] ContextId coll_context() const { return s_->context + 1; }

  /// World rank of a communicator rank; passes wildcards through.
  [[nodiscard]] Rank to_world(int r) const;

  /// Low-level helpers used by coll/*.cpp (bytes, coll context).
  void coll_send(const void* buf, std::size_t bytes, int dest, Tag tag) const;
  void coll_recv(void* buf, std::size_t bytes, int src, Tag tag) const;
  Request coll_isend(const void* buf, std::size_t bytes, int dest,
                     Tag tag) const;
  Request coll_irecv(void* buf, std::size_t bytes, int src, Tag tag) const;
  void coll_sendrecv(const void* sbuf, std::size_t sbytes, int dest,
                     void* rbuf, std::size_t rbytes, int src, Tag tag) const;

 private:
  struct State {
    RankContext* rc;
    Group group;
    ContextId context;
    int my_rank;
  };

  MsgStatus translate(MsgStatus st) const;

  std::shared_ptr<State> s_;
};

}  // namespace odmpi::mpi
