// Core MPI-subset types shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace odmpi::mpi {

using Rank = int;
using Tag = int;
using ContextId = int;

/// Wildcards and sentinels (MPI_ANY_SOURCE / MPI_ANY_TAG / MPI_PROC_NULL).
inline constexpr Rank kAnySource = -1;
inline constexpr Tag kAnyTag = -1;
inline constexpr Rank kProcNull = -2;

/// MPI_Status equivalent: filled in on receive completion.
struct MsgStatus {
  Rank source = kAnySource;  // communicator-relative rank of the sender
  Tag tag = kAnyTag;
  std::size_t count_bytes = 0;
};

/// MPI send modes (standard/synchronous/buffered/ready), section 3.6 of
/// the paper: only buffered is local; the others may depend on the
/// receiver — and under on-demand connections, standard-mode completion
/// additionally depends on connection establishment.
enum class SendMode : std::uint8_t {
  kStandard,
  kSynchronous,
  kBuffered,
  kReady,
};

/// Connection-management strategy (the paper's experimental axis).
enum class ConnectionModel : std::uint8_t {
  kStaticClientServer,  // fully connected in MPI_Init, serialized C/S
  kStaticPeerToPeer,    // fully connected in MPI_Init, parallel P2P
  kStaticTree,          // fully connected in MPI_Init, bulk OOB exchange
  kOnDemand,            // the paper's contribution
};

[[nodiscard]] inline const char* to_string(ConnectionModel m) {
  switch (m) {
    case ConnectionModel::kStaticClientServer: return "static-cs";
    case ConnectionModel::kStaticPeerToPeer: return "static-p2p";
    case ConnectionModel::kStaticTree: return "static-tree";
    case ConnectionModel::kOnDemand: return "on-demand";
  }
  return "unknown";
}

/// How rendezvous data moves once the envelope handshake matches
/// (messages above the eager threshold, and synchronous sends):
///  * kWrite — the paper-era protocol: receiver's CTS carries its
///    registered buffer, sender RDMA-writes into it, FIN notifies;
///  * kRead — the MPICH2-over-InfiniBand protocol: the RTS itself
///    carries the sender's registered buffer + rkey, the receiver
///    RDMA-reads it and notifies with a reverse FIN. One fewer
///    control-packet round trip; requires a profile with RDMA read.
enum class RndvMode : std::uint8_t {
  kWrite,
  kRead,
};

[[nodiscard]] inline const char* to_string(RndvMode m) {
  switch (m) {
    case RndvMode::kWrite: return "rndv-write";
    case RndvMode::kRead: return "rndv-read";
  }
  return "unknown";
}

/// Completion-wait policy (paper section 5.3): MVICH's default spins
/// `spin_count` times then falls through to the kernel wait ("spinwait");
/// raising the spin count to effectively infinity gives "polling".
struct WaitPolicy {
  static constexpr int kInfiniteSpin = -1;

  int spin_count = 100;

  static WaitPolicy polling() { return WaitPolicy{kInfiniteSpin}; }
  static WaitPolicy spinwait(int spins = 100) { return WaitPolicy{spins}; }

  [[nodiscard]] bool is_polling() const { return spin_count == kInfiniteSpin; }
};

[[nodiscard]] inline const char* to_string(const WaitPolicy& p) {
  return p.is_polling() ? "polling" : "spinwait";
}

}  // namespace odmpi::mpi
