#include "src/mpi/comm.h"

#include <algorithm>
#include <cstring>

#include "src/sim/process.h"

namespace odmpi::mpi {

Comm::Comm(RankContext* rc, Group group, ContextId context) {
  s_ = std::make_shared<State>();
  s_->rc = rc;
  s_->context = context;
  s_->my_rank = group.rank_of_world(rc->device->rank());
  s_->group = std::move(group);
  assert(s_->my_rank >= 0 && "calling rank must be a member of the group");
}

double Comm::wtime() const {
  auto* p = sim::Process::current();
  assert(p != nullptr);
  return sim::to_sec(p->now());
}

Rank Comm::to_world(int r) const {
  if (r == kAnySource || r == kProcNull) return r;
  return s_->group.world_rank(r);
}

MsgStatus Comm::translate(MsgStatus st) const {
  if (st.source >= 0) st.source = s_->group.rank_of_world(st.source);
  return st;
}

// --- Blocking point-to-point -------------------------------------------------

namespace {
std::size_t bytes_of(int count, Datatype dt) {
  assert(count >= 0);
  return static_cast<std::size_t>(count) * dt.size();
}
}  // namespace

void Comm::send(const void* buf, int count, Datatype dt, int dest,
                Tag tag) const {
  Device& d = device();
  d.wait(d.post_send(buf, bytes_of(count, dt), to_world(dest), tag,
                     s_->context, SendMode::kStandard));
}

void Comm::ssend(const void* buf, int count, Datatype dt, int dest,
                 Tag tag) const {
  Device& d = device();
  d.wait(d.post_send(buf, bytes_of(count, dt), to_world(dest), tag,
                     s_->context, SendMode::kSynchronous));
}

void Comm::bsend(const void* buf, int count, Datatype dt, int dest,
                 Tag tag) const {
  Device& d = device();
  d.wait(d.post_send(buf, bytes_of(count, dt), to_world(dest), tag,
                     s_->context, SendMode::kBuffered));
}

void Comm::rsend(const void* buf, int count, Datatype dt, int dest,
                 Tag tag) const {
  Device& d = device();
  d.wait(d.post_send(buf, bytes_of(count, dt), to_world(dest), tag,
                     s_->context, SendMode::kReady));
}

MsgStatus Comm::recv(void* buf, int count, Datatype dt, int source,
                     Tag tag) const {
  Device& d = device();
  RequestPtr req = d.post_recv(buf, bytes_of(count, dt), to_world(source), tag,
                               s_->context, &s_->group.world_ranks());
  d.wait(req);
  return translate(req->status);
}

MsgStatus Comm::sendrecv(const void* sendbuf, int sendcount, Datatype sendtype,
                         int dest, Tag sendtag, void* recvbuf, int recvcount,
                         Datatype recvtype, int source, Tag recvtag) const {
  Device& d = device();
  RequestPtr recv_req =
      d.post_recv(recvbuf, bytes_of(recvcount, recvtype), to_world(source),
                  recvtag, s_->context, &s_->group.world_ranks());
  RequestPtr send_req =
      d.post_send(sendbuf, bytes_of(sendcount, sendtype), to_world(dest),
                  sendtag, s_->context, SendMode::kStandard);
  d.wait(send_req);
  d.wait(recv_req);
  return translate(recv_req->status);
}

MsgStatus Comm::sendrecv_replace(void* buf, int count, Datatype dt,
                                 int dest, Tag sendtag, int source,
                                 Tag recvtag) const {
  // The outgoing data is staged in a temporary so the receive can land in
  // the caller's buffer (MPI_Sendrecv_replace semantics).
  const std::size_t bytes = bytes_of(count, dt);
  std::vector<std::byte> staged(static_cast<const std::byte*>(buf),
                                static_cast<const std::byte*>(buf) + bytes);
  return sendrecv(staged.data(), count, dt, dest, sendtag, buf, count, dt,
                  source, recvtag);
}

// --- Nonblocking ---------------------------------------------------------

Request Comm::isend(const void* buf, int count, Datatype dt, int dest,
                    Tag tag) const {
  Device& d = device();
  return Request(d.post_send(buf, bytes_of(count, dt), to_world(dest), tag,
                             s_->context, SendMode::kStandard),
                 &d);
}

Request Comm::issend(const void* buf, int count, Datatype dt, int dest,
                     Tag tag) const {
  Device& d = device();
  return Request(d.post_send(buf, bytes_of(count, dt), to_world(dest), tag,
                             s_->context, SendMode::kSynchronous),
                 &d);
}

Request Comm::ibsend(const void* buf, int count, Datatype dt, int dest,
                     Tag tag) const {
  Device& d = device();
  return Request(d.post_send(buf, bytes_of(count, dt), to_world(dest), tag,
                             s_->context, SendMode::kBuffered),
                 &d);
}

Request Comm::irecv(void* buf, int count, Datatype dt, int source,
                    Tag tag) const {
  Device& d = device();
  return Request(d.post_recv(buf, bytes_of(count, dt), to_world(source), tag,
                             s_->context, &s_->group.world_ranks()),
                 &d);
}

// --- Probe -----------------------------------------------------------------

bool Comm::iprobe(int source, Tag tag, MsgStatus* status) const {
  MsgStatus st;
  if (!device().iprobe(to_world(source), tag, s_->context, &st)) return false;
  if (status != nullptr) *status = translate(st);
  return true;
}

MsgStatus Comm::probe(int source, Tag tag) const {
  MsgStatus st;
  device().wait_until(
      [&] { return device().iprobe(to_world(source), tag, s_->context, &st); });
  return translate(st);
}

// --- Collective-plane helpers ---------------------------------------------

void Comm::coll_send(const void* buf, std::size_t bytes, int dest,
                     Tag tag) const {
  Device& d = device();
  d.wait(d.post_send(buf, bytes, to_world(dest), tag, coll_context(),
                     SendMode::kStandard));
}

void Comm::coll_recv(void* buf, std::size_t bytes, int src, Tag tag) const {
  Device& d = device();
  RequestPtr req = d.post_recv(buf, bytes, to_world(src), tag, coll_context(),
                               &s_->group.world_ranks());
  d.wait(req);
}

Request Comm::coll_isend(const void* buf, std::size_t bytes, int dest,
                         Tag tag) const {
  Device& d = device();
  return Request(d.post_send(buf, bytes, to_world(dest), tag, coll_context(),
                             SendMode::kStandard),
                 &d);
}

Request Comm::coll_irecv(void* buf, std::size_t bytes, int src,
                         Tag tag) const {
  Device& d = device();
  return Request(d.post_recv(buf, bytes, to_world(src), tag, coll_context(),
                             &s_->group.world_ranks()),
                 &d);
}

void Comm::coll_sendrecv(const void* sbuf, std::size_t sbytes, int dest,
                         void* rbuf, std::size_t rbytes, int src,
                         Tag tag) const {
  Device& d = device();
  RequestPtr recv_req = d.post_recv(rbuf, rbytes, to_world(src), tag,
                                    coll_context(), &s_->group.world_ranks());
  RequestPtr send_req = d.post_send(sbuf, sbytes, to_world(dest), tag,
                                    coll_context(), SendMode::kStandard);
  d.wait(send_req);
  d.wait(recv_req);
}

// --- Communicator management -------------------------------------------------

Comm Comm::dup() const {
  // Agree on a context id: the max of everyone's next_context (collective
  // over this communicator), MPICH-style.
  std::int32_t mine = s_->rc->next_context;
  std::int32_t agreed = 0;
  allreduce(&mine, &agreed, 1, kInt32, Op::kMax);
  s_->rc->next_context = agreed + 2;
  return Comm(s_->rc, s_->group, agreed);
}

Comm Comm::split(int color, int key) const {
  const int n = size();
  // Gather (color, key, world_rank) from everyone.
  std::vector<std::int32_t> mine = {static_cast<std::int32_t>(color),
                                    static_cast<std::int32_t>(key),
                                    static_cast<std::int32_t>(to_world(rank()))};
  std::vector<std::int32_t> all(static_cast<std::size_t>(3 * n));
  allgather(mine.data(), 3, all.data(), kInt32);

  // Agree on the new context (shared across colors: groups are disjoint,
  // so reusing one id cannot cause cross-talk).
  std::int32_t next = s_->rc->next_context;
  std::int32_t agreed = 0;
  allreduce(&next, &agreed, 1, kInt32, Op::kMax);
  s_->rc->next_context = agreed + 2;

  if (color < 0) return Comm();

  struct Member {
    int key;
    Rank world;
  };
  std::vector<Member> members;
  for (int i = 0; i < n; ++i) {
    const auto* rec = &all[static_cast<std::size_t>(3 * i)];
    if (rec[0] == color) members.push_back({rec[1], rec[2]});
  }
  std::sort(members.begin(), members.end(), [](const Member& a,
                                               const Member& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.world < b.world;
  });
  std::vector<Rank> ranks;
  ranks.reserve(members.size());
  for (const Member& m : members) ranks.push_back(m.world);
  return Comm(s_->rc, Group(std::move(ranks)), agreed);
}

}  // namespace odmpi::mpi
