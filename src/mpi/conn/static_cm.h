// Static connection management: the original MVICH scheme. Every process
// creates N-1 VIs and connects them all inside MPI_Init, so the VI layer
// is fully connected before the application runs. Two bootstrap flavours
// (paper section 5.6 / Figure 8):
//  * peer-to-peer: all requests issued at once, matched as they arrive;
//  * client/server: serialized — each process accepts from higher ranks
//    in rank order, then connects to lower ranks in descending order.
#pragma once

#include "src/mpi/device.h"

namespace odmpi::mpi {

class StaticConnectionManager final : public ConnectionManager {
 public:
  StaticConnectionManager(Device& device, bool client_server)
      : ConnectionManager(device), client_server_(client_server) {}

  void init() override;

  void ensure_connection(Rank peer) override;
  void on_any_source(const std::vector<Rank>& comm_world_ranks) override;
  /// Static management finishes every handshake inside init(), so the
  /// progress hook never has connection work to advance — returning false
  /// unconditionally satisfies the base-class contract (see
  /// ConnectionManager::progress).
  bool progress() override { return false; }

  [[nodiscard]] ConnectionModel model() const override {
    return client_server_ ? ConnectionModel::kStaticClientServer
                          : ConnectionModel::kStaticPeerToPeer;
  }

 private:
  void init_peer_to_peer();
  void init_client_server();

  bool client_server_;
};

}  // namespace odmpi::mpi
