#include "src/mpi/conn/tree_cm.h"

#include <cassert>
#include <utility>
#include <vector>

#include "src/mpi/oob.h"

namespace odmpi::mpi {

void TreeConnectionManager::init() {
  Device& d = device_;
  if (d.size() == 1) return;
  OobExchange* oob = d.oob_exchange();
  assert(oob != nullptr &&
         "static-tree bootstrap needs an out-of-band exchange hub; "
         "run the device under a World (or another OobExchange)");

  // Phase 1 — local endpoint creation: every VI plus its preposted eager
  // window, no wire traffic.
  std::vector<via::ViId> table(static_cast<std::size_t>(d.size()), -1);
  for (Rank peer = 0; peer < d.size(); ++peer) {
    if (peer == d.rank()) continue;
    Channel& ch = d.channel(peer);
    d.prepare_channel(ch);
    table[static_cast<std::size_t>(peer)] = ch.vi->id();
  }

  // Phase 2 — aggregated exchange (collective, barrier semantics): after
  // this returns, every rank's table is visible everywhere.
  oob->publish_vi_table(d.rank(), std::move(table));

  // Phase 3 — bind every pair. Both sides already know each other's VI
  // id, so establishment is a local driver transition; no handshake
  // packet exists for the fault plan to drop.
  via::ConnectionService& svc = d.nic().connections();
  for (Rank peer = 0; peer < d.size(); ++peer) {
    if (peer == d.rank()) continue;
    Channel& ch = d.channel(peer);
    [[maybe_unused]] via::Status st =
        svc.bind_peer(*ch.vi, peer, oob->lookup_vi(peer, d.rank()));
    assert(st == via::Status::kSuccess);
    d.channel_connected(ch);
  }

  // Phase 4 — fence before any data can flow: a locally-bound VI whose
  // peer has not bound yet silently drops arrivals (VIA semantics), so no
  // rank may leave MPI_Init until every rank finished phase 3.
  oob->oob_fence(d.rank());
}

void TreeConnectionManager::ensure_connection(Rank peer) {
  // Fully connected after init by construction, exactly like the other
  // static models.
  [[maybe_unused]] Channel& ch = device_.channel(peer);
  assert((ch.connected() || ch.state == Channel::State::kFailed) &&
         "static-tree connection management lost a connection");
  (void)peer;
}

void TreeConnectionManager::on_any_source(
    const std::vector<Rank>& /*comm_world_ranks*/) {
  // Nothing to do: every possible sender is already connected.
}

}  // namespace odmpi::mpi
