#include "src/mpi/conn/ondemand_cm.h"

#include <algorithm>
#include <cassert>

#include "src/mpi/conn/static_cm.h"

namespace odmpi::mpi {

namespace {

const sim::Stats::Counter kOndemandConnects =
    sim::Stats::counter("mpi.ondemand_connects");
const sim::Stats::Counter kConnectReattempts =
    sim::Stats::counter("mpi.connect_reattempts");
const sim::Stats::Counter kConnectFailures =
    sim::Stats::counter("mpi.connect_failures");
const sim::Stats::Counter kTrReattempt =
    sim::Stats::counter("mpi.conn.reattempt");

// Inverse of Device::pair_discriminator.
std::pair<Rank, Rank> decode_pair(via::Discriminator disc) {
  const auto hi = static_cast<Rank>(disc & 0xFFFFFF);
  const auto lo = static_cast<Rank>((disc >> 24) & 0xFFFFFF);
  return {lo, hi};
}
}  // namespace

void OnDemandConnectionManager::ensure_connection(Rank peer) {
  Channel& ch = device_.channel(peer);
  if (ch.state != Channel::State::kUnconnected) return;
  device_.prepare_channel(ch);
  ch.state = Channel::State::kConnecting;
  device_.stats().add(kOndemandConnects);
  device_.nic().connections().connect_peer(*ch.vi, peer,
                                           device_.pair_discriminator(peer));
  if (ch.vi->state() == via::ViState::kConnected) {
    // The peer's request had already arrived: matched synchronously.
    device_.channel_connected(ch);
  } else {
    connecting_.push_back(peer);
  }
}

void OnDemandConnectionManager::on_any_source(
    const std::vector<Rank>& comm_world_ranks) {
  // Section 3.5: the receive may match a message from any member, so a
  // connection request goes to all of them; whichever one eventually
  // sends will find an established (or establishing) connection.
  for (Rank peer : comm_world_ranks) {
    if (peer != device_.rank()) ensure_connection(peer);
  }
}

bool OnDemandConnectionManager::progress() {
  bool progressed = false;

  // Incoming requests from peers we have not connected to yet: answer
  // each with our own connect_peer, which claims the queued request and
  // establishes immediately.
  via::ConnectionService& svc = device_.nic().connections();
  if (svc.has_incoming()) {
    for (const via::IncomingRequest& req : svc.poll_incoming()) {
      const auto [lo, hi] = decode_pair(req.discriminator);
      const Rank peer = (lo == device_.rank()) ? hi : lo;
      assert(peer == req.src_node && "discriminator / source mismatch");
      ensure_connection(peer);
      progressed = true;
    }
  }

  // Locally initiated requests that completed since the last check.
  if (!connecting_.empty()) {
    auto it = connecting_.begin();
    while (it != connecting_.end()) {
      Channel& ch = device_.channel(*it);
      if (ch.vi->state() == via::ViState::kConnected) {
        device_.channel_connected(ch);
        attempts_.erase(*it);
        it = connecting_.erase(it);
        progressed = true;
      } else if (ch.vi->state() == via::ViState::kError) {
        // The VIA handshake exhausted its retry budget. Attempt a fresh
        // handshake on the same VI, or give up and fail the channel so
        // pending requests surface a clean timeout instead of hanging.
        const Rank peer = *it;
        int& tries = attempts_[peer];
        ++tries;
        if (tries < device_.config().max_connect_attempts) {
          device_.stats().add(kConnectReattempts);
          if (sim::Tracer* tr = device_.tracer()) {
            tr->instant(sim::TraceCat::kConn, kTrReattempt, device_.rank(),
                        peer, tries);
          }
          device_.nic().connections().connect_peer(
              *ch.vi, peer, device_.pair_discriminator(peer));
          if (ch.vi->state() == via::ViState::kConnected) {
            device_.channel_connected(ch);
            attempts_.erase(peer);
            it = connecting_.erase(it);
          } else {
            ++it;
          }
        } else {
          device_.stats().add(kConnectFailures);
          attempts_.erase(peer);
          device_.fail_channel(ch, via::Status::kTimeout);
          it = connecting_.erase(it);
        }
        progressed = true;
      } else {
        ++it;
      }
    }
  }
  return progressed;
}

std::unique_ptr<ConnectionManager> ConnectionManager::create(
    Device& device, ConnectionModel model) {
  switch (model) {
    case ConnectionModel::kStaticClientServer:
      return std::make_unique<StaticConnectionManager>(device,
                                                       /*client_server=*/true);
    case ConnectionModel::kStaticPeerToPeer:
      return std::make_unique<StaticConnectionManager>(
          device, /*client_server=*/false);
    case ConnectionModel::kOnDemand:
      return std::make_unique<OnDemandConnectionManager>(device);
  }
  assert(false && "unknown connection model");
  return nullptr;
}

}  // namespace odmpi::mpi
