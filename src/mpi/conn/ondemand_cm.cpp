#include "src/mpi/conn/ondemand_cm.h"

#include <algorithm>
#include <cassert>

#include "src/mpi/conn/static_cm.h"
#include "src/mpi/conn/tree_cm.h"

namespace odmpi::mpi {

namespace {

const sim::Stats::Counter kOndemandConnects =
    sim::Stats::counter("mpi.ondemand_connects");
const sim::Stats::Counter kConnectReattempts =
    sim::Stats::counter("mpi.connect_reattempts");
const sim::Stats::Counter kConnectFailures =
    sim::Stats::counter("mpi.connect_failures");
const sim::Stats::Counter kTrReattempt =
    sim::Stats::counter("mpi.conn.reattempt");

// Inverse of Device::pair_discriminator.
std::pair<Rank, Rank> decode_pair(via::Discriminator disc) {
  const auto hi = static_cast<Rank>(disc & 0xFFFFFF);
  const auto lo = static_cast<Rank>((disc >> 24) & 0xFFFFFF);
  return {lo, hi};
}
}  // namespace

void OnDemandConnectionManager::ensure_connection(Rank peer) {
  Channel& ch = device_.channel(peer);
  if (ch.state != Channel::State::kUnconnected) return;
  if (may_connect(peer)) {
    connect_now(peer);
    return;
  }
  // Blocked. Either the budget is exhausted — kick an LRU eviction (one
  // at a time keeps the schedule deterministic) — or the last free slot
  // is reserved for synchronous admissions, in which case no eviction can
  // help and the connect simply waits for a limbo handshake to resolve.
  // The channel stays kUnconnected, so the triggering send parks in its
  // FIFO through the normal not-yet-connected path. The strict order —
  // victim destroyed, then replacement created — is what keeps the live
  // VI count <= budget at every step.
  if (device_.open_channel_vis() >= device_.config().max_vis &&
      !device_.eviction_in_progress()) {
    device_.evict_lru_channel();
  }
  defer(peer);
}

int OnDemandConnectionManager::limbo_count() {
  int n = 0;
  for (Rank peer : connecting_) {
    if (device_.channel(peer).state == Channel::State::kConnecting) ++n;
  }
  return n;
}

bool OnDemandConnectionManager::may_connect(Rank peer) {
  const int budget = device_.config().max_vis;
  if (budget <= 0) return true;
  if (device_.open_channel_vis() >= budget) return false;
  if (budget == 1) return true;  // no room for a reservation; see header
  if (device_.nic().connections().has_unmatched_for(
          device_.pair_discriminator(peer))) {
    // The peer's request is already queued: connect_peer matches it
    // synchronously, so this admission can never strand a slot in limbo
    // and may take the last one.
    return true;
  }
  return limbo_count() < budget - 1;
}

void OnDemandConnectionManager::connect_now(Rank peer) {
  Channel& ch = device_.channel(peer);
  assert(ch.state == Channel::State::kUnconnected);
  device_.prepare_channel(ch);
  ch.state = Channel::State::kConnecting;
  device_.stats().add(kOndemandConnects);
  device_.nic().connections().connect_peer(*ch.vi, peer,
                                           device_.pair_discriminator(peer));
  if (ch.vi->state() == via::ViState::kConnected) {
    // The peer's request had already arrived: matched synchronously.
    device_.channel_connected(ch);
  } else {
    connecting_.push_back(peer);
  }
}

bool OnDemandConnectionManager::is_waiting(Rank peer) const {
  return waiting_set_.find(peer) != waiting_set_.end();
}

void OnDemandConnectionManager::defer(Rank peer) {
  if (!waiting_set_.insert(peer).second) return;
  waiting_slots_.push_back(peer);
}

bool OnDemandConnectionManager::admit_waiting_slow() {
  bool progressed = false;
  // Scan the whole queue rather than popping from the head: an entry
  // blocked on the limbo reservation must not head-of-line-block a later
  // entry whose peer request is already queued — admitting those
  // synchronous matches is exactly what un-wedges rings of mutually
  // waiting ranks. Admission order among eligible entries stays FIFO.
  for (auto it = waiting_slots_.begin(); it != waiting_slots_.end();) {
    const Rank peer = *it;
    Channel& ch = device_.channel(peer);
    // The wait may have been overtaken: the peer's own request can have
    // connected the channel, or it failed over. Only a still-unconnected
    // channel needs the deferred connect.
    if (ch.state != Channel::State::kUnconnected) {
      waiting_set_.erase(peer);
      it = waiting_slots_.erase(it);
      progressed = true;
      continue;
    }
    if (!may_connect(peer)) {
      ++it;
      continue;
    }
    waiting_set_.erase(peer);
    it = waiting_slots_.erase(it);
    connect_now(peer);
    progressed = true;
  }
  if (!waiting_slots_.empty() &&
      device_.open_channel_vis() >= device_.config().max_vis &&
      !device_.eviction_in_progress()) {
    // Still over budget and nothing draining: free the next slot.
    progressed |= device_.evict_lru_channel();
  }
  return progressed;
}

void OnDemandConnectionManager::on_any_source(
    const std::vector<Rank>& comm_world_ranks) {
  // Section 3.5: the receive may match a message from any member, so a
  // connection request goes to all of them; whichever one eventually
  // sends will find an established (or establishing) connection.
  for (Rank peer : comm_world_ranks) {
    if (peer != device_.rank()) ensure_connection(peer);
  }
}

bool OnDemandConnectionManager::progress() {
  bool progressed = false;

  // Incoming requests from peers we have not connected to yet: answer
  // each with our own connect_peer, which claims the queued request and
  // establishes immediately.
  via::ConnectionService& svc = device_.nic().connections();
  if (svc.has_incoming()) {
    // Batched admission: one MPID_DeviceCheck() pass answers at most
    // admission_batch queued requests (0 = all). Under an ANY_SOURCE
    // connect storm the backlog behind one rank is O(N); bounding the
    // round keeps each progress pass O(batch) and lets the responder
    // interleave data progress with admissions. Requests beyond the
    // bound simply stay queued for the next pass — arrival order is
    // preserved.
    const auto batch = static_cast<std::size_t>(
        std::max(0, device_.config().admission_batch));
    for (const via::IncomingRequest& req : svc.poll_incoming(batch)) {
      const auto [lo, hi] = decode_pair(req.discriminator);
      const Rank peer = (lo == device_.rank()) ? hi : lo;
      assert(peer == req.src_node && "discriminator / source mismatch");
      Channel& ch = device_.channel(peer);
      if (ch.state == Channel::State::kFailed) {
        // The peer's request outlived the channel: it failed over (or the
        // peer is known dead) after the request was queued. Answering is
        // pointless and leaving it queued would re-report it every pass.
        svc.drop_unmatched_from(req.src_node);
        progressed = true;
        continue;
      }
      const bool was_waiting = is_waiting(peer);
      ensure_connection(peer);
      // A deferred answer (resource-capped mode) leaves the request
      // queued in the service until the eventual connect_peer claims it,
      // so this loop sees it again on every pass. Only count progress
      // when something actually changed — answering it, or queueing the
      // peer for admission the first time — or the progress contract
      // would report "advancing" forever and the wait loop could never
      // block.
      if (ch.state != Channel::State::kUnconnected ||
          (!was_waiting && is_waiting(peer))) {
        progressed = true;
      }
    }
  }

  // Resource-capped mode: admit deferred connects as eviction frees
  // budget slots. A no-op (empty deque) with an unlimited budget.
  progressed |= admit_waiting();

  // Locally initiated requests that completed since the last check.
  if (!connecting_.empty()) {
    auto it = connecting_.begin();
    while (it != connecting_.end()) {
      Channel& ch = device_.channel(*it);
      if (ch.vi == nullptr || ch.state != Channel::State::kConnecting) {
        // Resolved out of band (resource-capped mode only): an arriving
        // kEvictReq connected the channel through its fast path, and it
        // may since have drained or been torn down. Never reachable with
        // an unlimited budget, where only this walk resolves entries.
        attempts_.erase(*it);
        it = connecting_.erase(it);
        progressed = true;
        continue;
      }
      if (ch.vi->state() == via::ViState::kConnected) {
        device_.channel_connected(ch);
        attempts_.erase(*it);
        it = connecting_.erase(it);
        progressed = true;
      } else if (ch.vi->state() == via::ViState::kError) {
        // The VIA handshake exhausted its retry budget. Attempt a fresh
        // handshake on the same VI, or give up and fail the channel so
        // pending requests surface a clean timeout instead of hanging.
        const Rank peer = *it;
        int& tries = attempts_[peer];
        ++tries;
        if (tries < device_.config().max_connect_attempts) {
          device_.stats().add(kConnectReattempts);
          if (sim::Tracer* tr = device_.tracer()) {
            tr->instant(sim::TraceCat::kConn, kTrReattempt, device_.rank(),
                        peer, tries);
          }
          device_.nic().connections().connect_peer(
              *ch.vi, peer, device_.pair_discriminator(peer));
          if (ch.vi->state() == via::ViState::kConnected) {
            device_.channel_connected(ch);
            attempts_.erase(peer);
            it = connecting_.erase(it);
          } else {
            ++it;
          }
        } else {
          device_.stats().add(kConnectFailures);
          attempts_.erase(peer);
          device_.fail_channel(ch, via::Status::kTimeout);
          it = connecting_.erase(it);
        }
        progressed = true;
      } else {
        ++it;
      }
    }
  }
  return progressed;
}

std::unique_ptr<ConnectionManager> ConnectionManager::create(
    Device& device, ConnectionModel model) {
  switch (model) {
    case ConnectionModel::kStaticClientServer:
      return std::make_unique<StaticConnectionManager>(device,
                                                       /*client_server=*/true);
    case ConnectionModel::kStaticPeerToPeer:
      return std::make_unique<StaticConnectionManager>(
          device, /*client_server=*/false);
    case ConnectionModel::kStaticTree:
      return std::make_unique<TreeConnectionManager>(device);
    case ConnectionModel::kOnDemand:
      return std::make_unique<OnDemandConnectionManager>(device);
  }
  assert(false && "unknown connection model");
  return nullptr;
}

}  // namespace odmpi::mpi
