#include "src/mpi/conn/static_cm.h"

#include <cassert>

namespace odmpi::mpi {

void StaticConnectionManager::init() {
  if (device_.size() == 1) return;
  if (client_server_) {
    init_client_server();
  } else {
    init_peer_to_peer();
  }
}

void StaticConnectionManager::init_peer_to_peer() {
  Device& d = device_;
  // Issue every peer request up front; the VIA service matches them in
  // whatever order they arrive — no serialization.
  for (Rank peer = 0; peer < d.size(); ++peer) {
    if (peer == d.rank()) continue;
    Channel& ch = d.channel(peer);
    d.prepare_channel(ch);
    ch.state = Channel::State::kConnecting;
    d.nic().connections().connect_peer(*ch.vi, peer,
                                       d.pair_discriminator(peer));
  }
  d.wait_until([&] {
    bool all = true;
    for (Rank peer = 0; peer < d.size(); ++peer) {
      if (peer == d.rank()) continue;
      Channel& ch = d.channel(peer);
      if (ch.connected()) continue;
      if (ch.vi->state() == via::ViState::kConnected) {
        d.channel_connected(ch);
      } else {
        all = false;
      }
    }
    return all;
  });
}

void StaticConnectionManager::init_client_server() {
  Device& d = device_;
  assert(d.nic().profile().supports_client_server &&
         "device offers no client/server connection model");
  // Serialized bootstrap as in MVICH: act as the server for every higher
  // rank, accepting strictly in rank order regardless of arrival order —
  // this is the serialization the paper blames for the client/server
  // line in Figure 8 — then connect as a client to lower ranks in
  // descending order (which makes the global order deadlock-free).
  via::ConnectionService& svc = d.nic().connections();
  for (Rank j = d.rank() + 1; j < d.size(); ++j) {
    via::IncomingRequest req = svc.connect_wait(d.pair_discriminator(j));
    Channel& ch = d.channel(j);
    d.prepare_channel(ch);
    [[maybe_unused]] via::Status st = svc.connect_accept(req, *ch.vi);
    assert(st == via::Status::kSuccess);
    d.channel_connected(ch);
  }
  for (Rank j = d.rank() - 1; j >= 0; --j) {
    Channel& ch = d.channel(j);
    d.prepare_channel(ch);
    [[maybe_unused]] via::Status st =
        svc.connect_request(*ch.vi, j, d.pair_discriminator(j));
    assert(st == via::Status::kSuccess);
    d.channel_connected(ch);
  }
}

void StaticConnectionManager::ensure_connection(Rank peer) {
  // Fully connected after init by construction.
  assert(device_.channel(peer).connected() &&
         "static connection management lost a connection");
  (void)peer;
}

void StaticConnectionManager::on_any_source(
    const std::vector<Rank>& /*comm_world_ranks*/) {
  // Nothing to do: every possible sender is already connected.
}

}  // namespace odmpi::mpi
