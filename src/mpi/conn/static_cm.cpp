#include "src/mpi/conn/static_cm.h"

#include <cassert>

namespace odmpi::mpi {

namespace {
const sim::Stats::Counter kConnectReattempts =
    sim::Stats::counter("mpi.connect_reattempts");
const sim::Stats::Counter kConnectFailures =
    sim::Stats::counter("mpi.connect_failures");
const sim::Stats::Counter kTrReattempt =
    sim::Stats::counter("mpi.conn.reattempt");
}  // namespace

void StaticConnectionManager::init() {
  if (device_.size() == 1) return;
  if (client_server_) {
    init_client_server();
  } else {
    init_peer_to_peer();
  }
}

void StaticConnectionManager::init_peer_to_peer() {
  Device& d = device_;
  // Issue every peer request up front; the VIA service matches them in
  // whatever order they arrive — no serialization.
  for (Rank peer = 0; peer < d.size(); ++peer) {
    if (peer == d.rank()) continue;
    Channel& ch = d.channel(peer);
    d.prepare_channel(ch);
    ch.state = Channel::State::kConnecting;
    d.nic().connections().connect_peer(*ch.vi, peer,
                                       d.pair_discriminator(peer));
  }
  std::vector<int> attempts(static_cast<std::size_t>(d.size()), 0);
  d.wait_until([&] {
    bool all = true;
    for (Rank peer = 0; peer < d.size(); ++peer) {
      if (peer == d.rank()) continue;
      Channel& ch = d.channel(peer);
      if (ch.connected() || ch.state == Channel::State::kFailed) continue;
      if (ch.vi->state() == via::ViState::kConnected) {
        d.channel_connected(ch);
      } else if (ch.vi->state() == via::ViState::kError) {
        // VIA handshake timed out (fault injection): restart it on the
        // same VI or, once the budget is spent, fail the channel so the
        // job sees clean request errors instead of a hang.
        if (++attempts[static_cast<std::size_t>(peer)] <
            d.config().max_connect_attempts) {
          d.stats().add(kConnectReattempts);
          if (sim::Tracer* tr = d.tracer()) {
            tr->instant(sim::TraceCat::kConn, kTrReattempt, d.rank(), peer,
                        attempts[static_cast<std::size_t>(peer)]);
          }
          d.nic().connections().connect_peer(*ch.vi, peer,
                                             d.pair_discriminator(peer));
          all = false;
        } else {
          d.stats().add(kConnectFailures);
          d.fail_channel(ch, via::Status::kTimeout);
        }
      } else {
        all = false;
      }
    }
    return all;
  });
}

void StaticConnectionManager::init_client_server() {
  Device& d = device_;
  assert(d.nic().profile().supports_client_server &&
         "device offers no client/server connection model");
  // Serialized bootstrap as in MVICH: act as the server for every higher
  // rank, accepting strictly in rank order regardless of arrival order —
  // this is the serialization the paper blames for the client/server
  // line in Figure 8 — then connect as a client to lower ranks in
  // descending order (which makes the global order deadlock-free).
  via::ConnectionService& svc = d.nic().connections();
  for (Rank j = d.rank() + 1; j < d.size(); ++j) {
    via::IncomingRequest req = svc.connect_wait(d.pair_discriminator(j));
    Channel& ch = d.channel(j);
    d.prepare_channel(ch);
    [[maybe_unused]] via::Status st = svc.connect_accept(req, *ch.vi);
    assert(st == via::Status::kSuccess);
    d.channel_connected(ch);
  }
  for (Rank j = d.rank() - 1; j >= 0; --j) {
    Channel& ch = d.channel(j);
    d.prepare_channel(ch);
    via::Status st = via::Status::kTimeout;
    for (int attempt = 0; attempt < d.config().max_connect_attempts;
         ++attempt) {
      if (attempt > 0) {
        d.stats().add(kConnectReattempts);
        if (sim::Tracer* tr = d.tracer()) {
          tr->instant(sim::TraceCat::kConn, kTrReattempt, d.rank(), j, attempt);
        }
      }
      st = svc.connect_request(*ch.vi, j, d.pair_discriminator(j));
      if (st != via::Status::kTimeout) break;
    }
    if (st == via::Status::kSuccess) {
      d.channel_connected(ch);
    } else {
      d.stats().add(kConnectFailures);
      d.fail_channel(ch, via::Status::kTimeout);
    }
  }
}

void StaticConnectionManager::ensure_connection(Rank peer) {
  // Fully connected after init by construction (a channel may instead be
  // terminally failed when init ran under fault injection).
  [[maybe_unused]] Channel& ch = device_.channel(peer);
  assert((ch.connected() || ch.state == Channel::State::kFailed) &&
         "static connection management lost a connection");
  (void)peer;
}

void StaticConnectionManager::on_any_source(
    const std::vector<Rank>& /*comm_world_ranks*/) {
  // Nothing to do: every possible sender is already connected.
}

}  // namespace odmpi::mpi
