// On-demand connection management — the paper's contribution.
//
// No VI exists until a pair of processes first communicates. The first
// send to (or named receive from) a peer creates a VI, preposts its eager
// buffers and issues a nonblocking peer-to-peer connection request;
// MPID_DeviceCheck() (Device::progress) then treats connection requests
// "as another type of nonblocking communication request": it polls for
// incoming peer requests and answers them with the matching connect_peer,
// and completes locally initiated requests, draining each channel's
// pre-posted send FIFO in order. A receive from MPI_ANY_SOURCE connects
// to every process in the communicator (section 3.5).
//
// Resource-capped mode (DeviceConfig::max_vis > 0): when a connect would
// exceed the per-process VI budget, the manager kicks off an LRU eviction
// on the device and defers the connect into a FIFO until a slot frees;
// the triggering send parks in the channel's pre-posted FIFO exactly as
// during a normal handshake, so ordering is preserved. The live VI count
// never exceeds the budget — a victim is fully torn down before its
// replacement is created.
//
// Deadlock avoidance (the limbo reservation): a locally initiated
// connect whose peer has not asked for us yet sits in kConnecting
// "limbo" until the peer reciprocates — and a channel in limbo is
// neither evictable nor guaranteed to resolve while the peer is itself
// wedged. If every rank filled its whole budget with limbo connects, a
// ring of ranks would wait on each other forever. So limbo connects may
// occupy at most max_vis - 1 slots: one slot is always reclaimable for
// admissions that match an already-queued incoming request (those
// connect synchronously and can never strand a slot). max_vis = 1 has no
// room for the reservation and can deadlock on adversarial patterns;
// configure at least 2.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "src/mpi/device.h"

namespace odmpi::mpi {

class OnDemandConnectionManager final : public ConnectionManager {
 public:
  explicit OnDemandConnectionManager(Device& device)
      : ConnectionManager(device) {}

  /// Nothing happens at init — that is the whole point.
  void init() override {}

  void ensure_connection(Rank peer) override;
  void on_any_source(const std::vector<Rank>& comm_world_ranks) override;
  bool progress() override;

  [[nodiscard]] ConnectionModel model() const override {
    return ConnectionModel::kOnDemand;
  }

 private:
  /// The actual connect: creates the VI and issues the peer request.
  /// Callers have already checked the channel is kUnconnected and the
  /// budget has room (or is unlimited).
  void connect_now(Rank peer);

  /// Queues `peer` for connection once the VI budget has room (dedupes).
  void defer(Rank peer);

  /// True while `peer` sits in the deferred-connect queue.
  [[nodiscard]] bool is_waiting(Rank peer) const;

  /// Admits deferred peers as budget slots free up; keeps an eviction in
  /// flight while any peer is still waiting. Returns true on progress.
  /// The empty-queue fast path (every poll in uncapped mode) stays
  /// inline; the scan is out of line.
  bool admit_waiting() {
    if (waiting_slots_.empty()) return false;
    return admit_waiting_slow();
  }
  bool admit_waiting_slow();

  /// True when connect_now(peer) is admissible under the budget right
  /// now: a slot is free AND the connect either matches a queued incoming
  /// request synchronously or leaves the limbo reservation intact (see
  /// the file comment). Always true with an unlimited budget.
  bool may_connect(Rank peer);

  /// Channels currently stuck in the kConnecting handshake.
  int limbo_count();

  std::vector<Rank> connecting_;  // channels with a pending peer request
  // Handshake attempts per peer (fault injection only): when a VIA-level
  // connect times out, the handshake restarts on the same VI up to
  // DeviceConfig::max_connect_attempts times before the channel fails.
  std::map<Rank, int> attempts_;
  // Resource-capped mode: peers whose connect is deferred until an
  // eviction frees a budget slot (FIFO, deduped via waiting_set_). Both
  // stay empty when max_vis is 0, and waiting_set_ holds only peers
  // actually deferred — O(waiting), never the O(N) flag array it used to
  // be (a 16k-rank job must not pay per-world-size state per manager).
  std::deque<Rank> waiting_slots_;
  std::set<Rank> waiting_set_;
};

}  // namespace odmpi::mpi
