// On-demand connection management — the paper's contribution.
//
// No VI exists until a pair of processes first communicates. The first
// send to (or named receive from) a peer creates a VI, preposts its eager
// buffers and issues a nonblocking peer-to-peer connection request;
// MPID_DeviceCheck() (Device::progress) then treats connection requests
// "as another type of nonblocking communication request": it polls for
// incoming peer requests and answers them with the matching connect_peer,
// and completes locally initiated requests, draining each channel's
// pre-posted send FIFO in order. A receive from MPI_ANY_SOURCE connects
// to every process in the communicator (section 3.5).
#pragma once

#include <map>
#include <vector>

#include "src/mpi/device.h"

namespace odmpi::mpi {

class OnDemandConnectionManager final : public ConnectionManager {
 public:
  explicit OnDemandConnectionManager(Device& device)
      : ConnectionManager(device) {}

  /// Nothing happens at init — that is the whole point.
  void init() override {}

  void ensure_connection(Rank peer) override;
  void on_any_source(const std::vector<Rank>& comm_world_ranks) override;
  bool progress() override;

  [[nodiscard]] ConnectionModel model() const override {
    return ConnectionModel::kOnDemand;
  }

 private:
  std::vector<Rank> connecting_;  // channels with a pending peer request
  // Handshake attempts per peer (fault injection only): when a VIA-level
  // connect times out, the handshake restarts on the same VI up to
  // DeviceConfig::max_connect_attempts times before the channel fails.
  std::map<Rank, int> attempts_;
};

}  // namespace odmpi::mpi
