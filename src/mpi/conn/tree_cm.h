// Static bootstrap via bulk out-of-band exchange (DESIGN.md section 14).
//
// The naive static models pay one wire handshake (and, for client/server,
// a serialization chain) per pair, which is what makes the Figure-8 init
// curves blow up with N. Real launchers do better: every process creates
// its N-1 VIs locally, deposits the id table into the process manager's
// out-of-band channel, the runtime aggregates the tables tree-fashion
// (depth log2 N), and each process then *binds* its endpoints directly —
// a local driver transition (conn_bind_cost), no per-pair rendezvous at
// all. This manager is that fairer static baseline: still O(N) VIs and
// pinned buffers per process (the paper's resource argument is untouched,
// and exactly why on-demand still wins at scale), but with an init cost
// of N * (vi_create + bind) + oob_exchange(log N, N) instead of the
// all-pairs handshake storm.
//
// Loss immunity: the exchange rides the management network and the binds
// never touch the VIA wire, so a FaultPlan's packet loss cannot touch
// this bootstrap — only the data phase sees faults.
#pragma once

#include "src/mpi/device.h"

namespace odmpi::mpi {

class TreeConnectionManager final : public ConnectionManager {
 public:
  explicit TreeConnectionManager(Device& device) : ConnectionManager(device) {}

  void init() override;

  void ensure_connection(Rank peer) override;
  void on_any_source(const std::vector<Rank>& comm_world_ranks) override;
  /// Like the other static models, init() leaves nothing to advance.
  bool progress() override { return false; }

  [[nodiscard]] ConnectionModel model() const override {
    return ConnectionModel::kStaticTree;
  }
};

}  // namespace odmpi::mpi
