#include "src/mpi/runtime.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <string>

namespace odmpi::mpi {

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kDeadline:
      return "deadline";
    case RunStatus::kRankFailed:
      return "rank_failed";
  }
  return "?";
}

namespace {
std::string format_sim_seconds(sim::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6gs", sim::to_us(t) / 1e6);
  return buf;
}
}  // namespace

std::string RunResult::summary() const {
  std::string out;
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kDeadline:
      out = "deadline exceeded, " + std::to_string(failed_ranks.size()) +
            " unfinished rank(s):";
      for (int r : failed_ranks) out += " " + std::to_string(r);
      if (!deaths.empty()) {
        out += " (after " + std::to_string(deaths.size()) +
               " injected death(s))";
      }
      return out;
    case RunStatus::kRankFailed:
      if (!deaths.empty()) {
        // Killed vs impacted, spelled out: "rank 3 died at t=1.2s;
        // 5 survivors degraded".
        for (std::size_t i = 0; i < deaths.size(); ++i) {
          if (i > 0) out += ", ";
          out += "rank " + std::to_string(deaths[i].rank) + " died at t=" +
                 format_sim_seconds(deaths[i].time);
        }
        out += "; " + std::to_string(impacted_ranks.size()) + " survivor" +
               (impacted_ranks.size() == 1 ? "" : "s") + " degraded";
        return out;
      }
      out = "finished with failed channels on " +
            std::to_string(failed_ranks.size()) + " rank(s):";
      for (int r : failed_ranks) out += " " + std::to_string(r);
      return out;
  }
  return "?";
}

World::World(SessionConfig session)
    : nranks_(session.nranks),
      options_(std::move(session.options)),
      tracer_(std::make_unique<sim::Tracer>()),
      reports_(static_cast<std::size_t>(nranks_)) {
  assert(nranks_ >= 1);
  alive_ = nranks_;
  tracer_->configure(options_.trace, &engine_);
  contexts_.resize(static_cast<std::size_t>(nranks_));
  devices_.resize(static_cast<std::size_t>(nranks_));
}

World::~World() = default;

void World::materialize_cluster() {
  if (cluster_) return;
  cluster_ = std::make_unique<via::Cluster>(engine_, nranks_, options_.profile,
                                            options_.fault);
  cluster_->set_tracer(tracer_.get());
}

void World::oob_barrier() {
  auto* p = sim::Process::current();
  assert(p != nullptr);
  // Sense-reversing barrier: a process may carry a latched wakeup signal
  // from earlier NIC activity (Process::block consumes it and returns
  // immediately), so waiting must re-check the generation in a loop
  // rather than trust a single block().
  const std::uint64_t my_generation = barrier_generation_;
  ++barrier_waiting_;
  // Release when every *alive* rank has arrived: a rank killed mid-run
  // (FaultConfig::rank_kills) never shows up, and kill_rank() shrinks
  // alive_ / re-checks release so survivors are not held hostage.
  if (barrier_waiting_ >= alive_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    for (sim::Process* blocked : barrier_blocked_) blocked->wakeup();
    barrier_blocked_.clear();
    return;
  }
  barrier_blocked_.push_back(p);
  while (barrier_generation_ == my_generation) {
    p->block();
  }
}

void World::oob_barrier_driving(Device& dev) {
  auto* p = sim::Process::current();
  assert(p != nullptr);
  const std::uint64_t my_generation = barrier_generation_;
  ++barrier_waiting_;
  if (barrier_waiting_ >= alive_) {  // alive, not nranks_: see oob_barrier
    barrier_waiting_ = 0;
    ++barrier_generation_;
    for (sim::Process* blocked : barrier_blocked_) blocked->wakeup();
    barrier_blocked_.clear();
    return;
  }
  barrier_blocked_.push_back(p);
  // Unlike oob_barrier, keep the device's progress engine running while
  // waiting: under a VI budget a peer still in its user code may evict the
  // channel to us, and the two-phase teardown needs our half of the
  // handshake (kEvictAck) answered even though we are already quiescent.
  // Event-driven, same shape as Device::wait_until's blocking path — the
  // barrier release wakes us via barrier_blocked_, NIC activity via the
  // host waiter.
  while (barrier_generation_ == my_generation) {
    if (dev.progress()) continue;
    dev.nic().set_host_waiter(p);
    p->block();
    dev.nic().set_host_waiter(nullptr);
  }
}

void World::kill_rank(int rank) {
  RankReport& report = reports_[static_cast<std::size_t>(rank)];
  if (report.finished) return;  // finalized before its kill time: survives
  sim::Process& p = *processes_[static_cast<std::size_t>(rank)];
  if (p.killed()) return;  // duplicate entry in the kill schedule
  p.kill();
  --alive_;
  deaths_.push_back(RunResult::RankDeath{rank, engine_.now()});
  // Black out the node: the fabric drops every packet to or from it (so
  // survivors' retransmissions and probes go unanswered and time out) and
  // the corpse's own NIC machinery — armed timers, host wakeups — goes
  // silent rather than replaying a ghost.
  cluster_->fault_plan().mark_node_dead(rank);
  cluster_->nic(rank).kill();
  static const sim::Stats::Counter kTrRankKilled =
      sim::Stats::counter("fault.rank_killed");
  tracer_->instant(sim::TraceCat::kFabric, kTrRankKilled, rank);
  // If the corpse was parked in an oob barrier it will never re-arrive;
  // un-count it. Either way the death may make the remaining waiters a
  // full house, so re-evaluate the release.
  auto it = std::find(barrier_blocked_.begin(), barrier_blocked_.end(), &p);
  if (it != barrier_blocked_.end()) {
    barrier_blocked_.erase(it);
    --barrier_waiting_;
  }
  if (barrier_waiting_ > 0 && barrier_waiting_ >= alive_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    for (sim::Process* blocked : barrier_blocked_) blocked->wakeup();
    barrier_blocked_.clear();
  }
}

void World::rank_main(int rank, const std::function<void(Comm&)>& fn) {
  auto* proc = sim::Process::current();
  RankReport& report = reports_[static_cast<std::size_t>(rank)];

  // ---- MPI_Init ----
  const sim::SimTime t_start = proc->now();
  // Out-of-band bootstrap: process-manager launch + address exchange.
  const auto log_n = static_cast<std::int64_t>(
      std::ceil(std::log2(std::max(2, nranks_))));
  proc->advance(options_.bootstrap_base +
                log_n * options_.bootstrap_per_rank_log);
  oob_barrier();

  auto device = std::make_unique<Device>(*cluster_, rank, nranks_,
                                         options_.device, /*oob=*/this);
  auto ctx = std::make_unique<RankContext>();
  ctx->device = device.get();
  devices_[static_cast<std::size_t>(rank)] = std::move(device);
  contexts_[static_cast<std::size_t>(rank)] = std::move(ctx);
  Device& dev = *devices_[static_cast<std::size_t>(rank)];

  dev.init();
  report.init_time = proc->now() - t_start;

  // ---- User code ----
  Comm world(contexts_[static_cast<std::size_t>(rank)].get(),
             Group::world(nranks_), /*context=*/0);
  const sim::SimTime t_body = proc->now();
  fn(world);
  report.body_time = proc->now() - t_body;

  // ---- MPI_Finalize ----
  dev.finalize_quiesce();
  // Nobody disconnects until everyone has quiesced. With a VI budget the
  // wait must keep driving the device: an eviction handshake from a rank
  // still in its user code can target us after our own quiescence, and a
  // blocked barrier would never answer the kEvictReq (deadlock). Unlimited
  // mode keeps the plain blocking barrier so its event order — and the
  // golden traces — stay untouched.
  if (options_.device.max_vis > 0) {
    oob_barrier_driving(dev);
  } else {
    oob_barrier();
  }
  dev.finalize_teardown();
  oob_barrier();
  report.total_time = proc->now() - t_start;
  report.finished = true;
  report.vis_created = cluster_->nic(rank).vis_ever_created();
  report.vis_open_peak =
      static_cast<int>(cluster_->nic(rank).stats().get("vi.open_peak"));
  report.connections = static_cast<int>(
      cluster_->nic(rank).connections().connections_established());
  report.pinned_bytes_peak = cluster_->nic(rank).memory().peak_pinned_bytes();
  report.device_stats = dev.stats();
  report.device_stats.merge(cluster_->nic(rank).stats());
}

RunResult World::run_job(const std::function<void(Comm&)>& fn) {
  assert(!ran_ && "World::run is one-shot; build a fresh World per job");
  ran_ = true;
  materialize_cluster();
  processes_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    processes_.push_back(std::make_unique<sim::Process>(
        engine_, r, [this, r, &fn] { rank_main(r, fn); },
        options_.stack_bytes));
    processes_.back()->start();
  }
  // Injected rank deaths fire as plain engine events: deterministic in
  // virtual time, ordered against application events by the same queue.
  for (const sim::RankKill& k : options_.fault.rank_kills) {
    if (k.rank < 0 || k.rank >= nranks_) continue;
    engine_.schedule_at(k.time, [this, r = k.rank] { kill_rank(r); });
  }
  engine_.run_until(options_.deadline);

  RunResult result;
  result.completion_time = completion_time();
  result.deaths = deaths_;
  std::vector<bool> killed(static_cast<std::size_t>(nranks_), false);
  for (const RunResult::RankDeath& d : deaths_) {
    killed[static_cast<std::size_t>(d.rank)] = true;
  }
  // A killed rank not finishing is the injected outcome, not a deadline
  // miss; only a *survivor* that failed to finalize is a hang.
  for (int r = 0; r < nranks_; ++r) {
    if (!reports_[static_cast<std::size_t>(r)].finished &&
        !killed[static_cast<std::size_t>(r)]) {
      result.failed_ranks.push_back(r);
    }
  }
  if (!result.failed_ranks.empty()) {
    result.status = RunStatus::kDeadline;
  } else if (!deaths_.empty()) {
    // Every survivor finalized: the run "succeeded" in the degraded sense.
    // failed_ranks names the dead; impacted_ranks the survivors that saw
    // a death (locally or via gossip) and kept going.
    result.status = RunStatus::kRankFailed;
    static const sim::Stats::Counter kPeerFailedSeen =
        sim::Stats::counter("mpi.peer_failed_seen");
    for (int r = 0; r < nranks_; ++r) {
      if (killed[static_cast<std::size_t>(r)]) {
        result.failed_ranks.push_back(r);
      } else if (reports_[static_cast<std::size_t>(r)].device_stats.get(
                     kPeerFailedSeen) > 0) {
        result.impacted_ranks.push_back(r);
      }
    }
  } else {
    // Every rank finalized; surface ranks whose peers died under them.
    static const sim::Stats::Counter kChannelFailures =
        sim::Stats::counter("mpi.channel_failures");
    for (int r = 0; r < nranks_; ++r) {
      if (reports_[static_cast<std::size_t>(r)].device_stats.get(
              kChannelFailures) > 0) {
        result.failed_ranks.push_back(r);
      }
    }
    if (!result.failed_ranks.empty()) result.status = RunStatus::kRankFailed;
  }
  std::sort(result.failed_ranks.begin(), result.failed_ranks.end());
  result.failed_ranks.erase(
      std::unique(result.failed_ranks.begin(), result.failed_ranks.end()),
      result.failed_ranks.end());
  if (tracer_->enabled()) {
    result.trace = tracer_.get();
    if (!options_.trace.path.empty()) {
      tracer_->write_chrome_json_file(options_.trace.path);
    }
  }
  return result;
}

sim::SimTime World::completion_time() const {
  sim::SimTime t = 0;
  for (const auto& p : processes_) t = std::max(t, p->now());
  return t;
}

WorldMetrics World::metrics() const {
  WorldMetrics m;
  for (const RankReport& r : reports_) {
    const double init_us = sim::to_us(r.init_time);
    m.mean_init_us += init_us;
    m.max_init_us = std::max(m.max_init_us, init_us);
    m.mean_vis_per_process += r.vis_created;
    m.mean_peak_vis_per_process += r.vis_open_peak;
    m.mean_pinned_bytes_peak += static_cast<double>(r.pinned_bytes_peak);
  }
  m.mean_init_us /= nranks_;
  m.mean_vis_per_process /= nranks_;
  m.mean_peak_vis_per_process /= nranks_;
  m.mean_pinned_bytes_peak /= nranks_;
  return m;
}

sim::Stats World::aggregate_stats() {
  sim::Stats total;
  if (cluster_) total = cluster_->aggregate_stats();
  for (const RankReport& r : reports_) total.merge(r.device_stats);
  return total;
}

// --- OobExchange --------------------------------------------------------

void World::publish_vi_table(Rank rank, std::vector<via::ViId> table) {
  auto* proc = sim::Process::current();
  assert(proc != nullptr && "publish_vi_table must run on a rank fiber");
  assert(static_cast<int>(table.size()) == nranks_);
  if (oob_tables_.empty()) {
    oob_tables_.resize(static_cast<std::size_t>(nranks_));
  }
  oob_tables_[static_cast<std::size_t>(rank)] = std::move(table);
  // Aggregated-exchange cost: a tree of forwarding hops plus linear
  // per-entry marshalling (see JobOptions::oob_hop_cost).
  const auto log_n = static_cast<std::int64_t>(
      std::ceil(std::log2(std::max(2, nranks_))));
  proc->advance(log_n * options_.oob_hop_cost +
                static_cast<std::int64_t>(nranks_) * options_.oob_entry_cost);
  oob_barrier();  // get() is only valid once every rank has put()
}

via::ViId World::lookup_vi(Rank owner, Rank peer) const {
  return oob_tables_.at(static_cast<std::size_t>(owner))
      .at(static_cast<std::size_t>(peer));
}

void World::oob_fence(Rank rank) {
  auto* proc = sim::Process::current();
  assert(proc != nullptr && "oob_fence must run on a rank fiber");
  (void)rank;
  // A fence is the tree half of the exchange: hops only, no payload.
  const auto log_n = static_cast<std::int64_t>(
      std::ceil(std::log2(std::max(2, nranks_))));
  proc->advance(log_n * options_.oob_hop_cost);
  oob_barrier();
}

RunResult run_world_job(int nranks, const JobOptions& options,
                        const std::function<void(Comm&)>& fn) {
  World world(nranks, options);
  RunResult result = world.run_job(fn);
  result.trace = nullptr;  // the tracer dies with the World, right here
  return result;
}

bool run_world(int nranks, const JobOptions& options,
               const std::function<void(Comm&)>& fn) {
  return run_world_job(nranks, options, fn).status != RunStatus::kDeadline;
}

}  // namespace odmpi::mpi
