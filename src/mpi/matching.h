// MPI message matching: the posted-receive queue and the unexpected-message
// queue, with (context, source, tag) matching including MPI_ANY_SOURCE /
// MPI_ANY_TAG wildcards.
//
// Queues are bucketed by (context, source) with a global monotonic
// sequence number stamped at insertion (see DESIGN.md section 9). An
// exact-source lookup touches one bucket (two for arrivals, which must
// also consult the MPI_ANY_SOURCE bucket); candidates from different
// buckets are ordered by sequence, which is exactly the insertion order a
// linear scan of one global queue would observe — so non-overtaking
// (MPI 1.2 section 3.5) is preserved by construction while the common
// exact match drops from O(queue) to O(1) amortized. An unexpected entry
// may be *claimed* by a receive before all of its eager segments have
// arrived; the remaining segments then land directly in the user buffer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/mpi/request.h"
#include "src/mpi/types.h"

namespace odmpi::mpi {

/// A message that arrived (or whose rendezvous RTS arrived) before a
/// matching receive was posted.
struct UnexpectedMsg {
  Rank src = -1;  // world rank
  Tag tag = 0;
  ContextId context = 0;
  std::size_t total_bytes = 0;
  std::size_t arrived_bytes = 0;
  bool is_rendezvous = false;
  std::uint64_t sender_cookie = 0;     // RTS cookie (rendezvous only)
  // Read-rendezvous only: the sender's registered buffer, carried by the
  // RTS so a late-posted receive can issue the RDMA read directly.
  std::uint64_t remote_addr = 0;
  std::uint32_t rkey = 0;
  std::vector<std::byte> payload;      // accumulated eager data
  RequestPtr claimed;                  // receive bound to this entry
  RequestState* self_send = nullptr;   // pending self-ssend to complete
  std::uint64_t match_seq = 0;         // arrival order (set by the engine)

  [[nodiscard]] bool complete() const {
    return is_rendezvous || arrived_bytes >= total_bytes;
  }
};

class MatchingEngine {
 public:
  /// Does (context, src, tag) of a posted receive match a message
  /// envelope? `req_src`/`req_tag` may be wildcards.
  static bool matches(ContextId req_ctx, Rank req_src, Tag req_tag,
                      ContextId msg_ctx, Rank msg_src, Tag msg_tag) {
    return req_ctx == msg_ctx &&
           (req_src == kAnySource || req_src == msg_src) &&
           (req_tag == kAnyTag || req_tag == msg_tag);
  }

  /// Arrival side: finds and removes the oldest posted receive matching
  /// the envelope, or null if none is posted.
  RequestPtr match_arrival(ContextId ctx, Rank src, Tag tag);

  /// Post side: finds the oldest unclaimed unexpected message matching
  /// the receive, or null. The entry stays in the queue (claimed) until
  /// the device disposes of it with remove_unexpected().
  UnexpectedMsg* match_posted(const RequestPtr& recv);

  /// Probe: oldest unclaimed unexpected entry matching (ctx, src, tag);
  /// `src`/`tag` may be wildcards.
  UnexpectedMsg* peek_unexpected(ContextId ctx, Rank src, Tag tag);

  void add_posted(RequestPtr recv);
  UnexpectedMsg* add_unexpected(std::unique_ptr<UnexpectedMsg> msg);
  void remove_unexpected(UnexpectedMsg* msg);

  /// Cancels a posted receive (used by tests); true if it was queued.
  bool cancel_posted(const RequestPtr& recv);

  /// Removes and returns every posted receive naming `src` as its source
  /// (wildcard receives stay queued — another peer may still match them),
  /// in post order. Used to fail receives cleanly when a peer becomes
  /// unreachable.
  std::vector<RequestPtr> take_posted_from(Rank src);

  /// Removes and returns, in post order, every posted MPI_ANY_SOURCE
  /// receive for which `doomed` returns true. The device sweeps with a
  /// predicate meaning "every candidate sender of this receive has
  /// failed" when the known-failed set grows — the only condition under
  /// which a wildcard receive provably can never match.
  std::vector<RequestPtr> take_posted_wildcards(
      const std::function<bool(const RequestPtr&)>& doomed);

  [[nodiscard]] std::size_t posted_count() const { return posted_count_; }
  [[nodiscard]] std::size_t unexpected_count() const {
    return unexpected_count_;
  }

 private:
  // Bucket key: (context, source). Wildcard-source receives live in the
  // (context, kAnySource) bucket; unexpected messages always carry a
  // concrete source.
  static std::uint64_t key_of(ContextId ctx, Rank src) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ctx))
            << 32) |
           static_cast<std::uint32_t>(src);
  }
  static ContextId ctx_of_key(std::uint64_t key) {
    return static_cast<ContextId>(key >> 32);
  }
  static Rank rank_of_key(std::uint64_t key) {
    return static_cast<Rank>(static_cast<std::int32_t>(
        static_cast<std::uint32_t>(key & 0xFFFFFFFFu)));
  }

  struct PostedEntry {
    std::uint64_t seq;
    RequestPtr req;
  };

  using PostedBucket = std::deque<PostedEntry>;
  using UnexpectedBucket = std::deque<std::unique_ptr<UnexpectedMsg>>;

  std::unordered_map<std::uint64_t, PostedBucket> posted_;
  std::unordered_map<std::uint64_t, UnexpectedBucket> unexpected_;
  std::uint64_t next_seq_ = 1;  // shared by both queues: one arrival order
  std::size_t posted_count_ = 0;
  std::size_t unexpected_count_ = 0;
};

}  // namespace odmpi::mpi
