#include "src/mpi/group.h"

#include <numeric>

namespace odmpi::mpi {

Group::Group(std::vector<Rank> world_ranks) {
  auto state = std::make_shared<State>();
  state->ranks = std::move(world_ranks);
  size_ = static_cast<int>(state->ranks.size());
  state->index.reserve(state->ranks.size());
  for (int i = 0; i < size_; ++i) {
    state->index.emplace(state->ranks[static_cast<std::size_t>(i)], i);
  }
  state_ = std::move(state);
}

Group Group::world(int n) {
  Group g;
  g.size_ = n;
  g.identity_ = true;
  return g;
}

int Group::rank_of_world(Rank world) const {
  if (identity_) return (world >= 0 && world < size_) ? world : -1;
  if (!state_) return -1;
  auto it = state_->index.find(world);
  return it == state_->index.end() ? -1 : it->second;
}

const std::vector<Rank>& Group::world_ranks() const {
  if (!state_) {
    auto state = std::make_shared<State>();
    state->ranks.resize(static_cast<std::size_t>(size_));
    std::iota(state->ranks.begin(), state->ranks.end(), 0);
    state_ = std::move(state);
  }
  return state_->ranks;
}

}  // namespace odmpi::mpi
