#include "src/mpi/group.h"

#include <numeric>

namespace odmpi::mpi {

Group::Group(std::vector<Rank> world_ranks)
    : world_ranks_(std::move(world_ranks)) {
  index_.reserve(world_ranks_.size());
  for (int i = 0; i < size(); ++i) {
    index_.emplace(world_ranks_[static_cast<std::size_t>(i)], i);
  }
}

Group Group::world(int n) {
  std::vector<Rank> ranks(static_cast<std::size_t>(n));
  std::iota(ranks.begin(), ranks.end(), 0);
  return Group(std::move(ranks));
}

int Group::rank_of_world(Rank world) const {
  auto it = index_.find(world);
  return it == index_.end() ? -1 : it->second;
}

}  // namespace odmpi::mpi
