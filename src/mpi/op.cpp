#include "src/mpi/op.h"

#include <algorithm>
#include <cassert>

namespace odmpi::mpi {

namespace {

template <typename T>
void apply_arith(Op op, T* inout, const T* in, std::size_t count) {
  switch (op) {
    case Op::kSum:
      for (std::size_t i = 0; i < count; ++i) inout[i] += in[i];
      return;
    case Op::kProd:
      for (std::size_t i = 0; i < count; ++i) inout[i] *= in[i];
      return;
    case Op::kMax:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::max(inout[i], in[i]);
      return;
    case Op::kMin:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::min(inout[i], in[i]);
      return;
    default:
      break;
  }
  if constexpr (std::is_integral_v<T>) {
    switch (op) {
      case Op::kLand:
        for (std::size_t i = 0; i < count; ++i)
          inout[i] = (inout[i] != 0 && in[i] != 0) ? 1 : 0;
        return;
      case Op::kLor:
        for (std::size_t i = 0; i < count; ++i)
          inout[i] = (inout[i] != 0 || in[i] != 0) ? 1 : 0;
        return;
      case Op::kBand:
        for (std::size_t i = 0; i < count; ++i) inout[i] &= in[i];
        return;
      case Op::kBor:
        for (std::size_t i = 0; i < count; ++i) inout[i] |= in[i];
        return;
      default:
        break;
    }
  }
  assert(false && "op not defined for this datatype");
}

}  // namespace

void apply_op(Op op, Datatype datatype, void* inout, const void* in,
              std::size_t count) {
  switch (datatype.kind) {
    case TypeKind::kByte:
      apply_arith(op, static_cast<std::uint8_t*>(inout),
                  static_cast<const std::uint8_t*>(in), count);
      return;
    case TypeKind::kInt32:
      apply_arith(op, static_cast<std::int32_t*>(inout),
                  static_cast<const std::int32_t*>(in), count);
      return;
    case TypeKind::kInt64:
      apply_arith(op, static_cast<std::int64_t*>(inout),
                  static_cast<const std::int64_t*>(in), count);
      return;
    case TypeKind::kFloat:
      apply_arith(op, static_cast<float*>(inout),
                  static_cast<const float*>(in), count);
      return;
    case TypeKind::kDouble:
      apply_arith(op, static_cast<double*>(inout),
                  static_cast<const double*>(in), count);
      return;
  }
  assert(false && "unknown datatype");
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kSum: return "sum";
    case Op::kProd: return "prod";
    case Op::kMax: return "max";
    case Op::kMin: return "min";
    case Op::kLand: return "land";
    case Op::kLor: return "lor";
    case Op::kBand: return "band";
    case Op::kBor: return "bor";
  }
  return "unknown";
}

}  // namespace odmpi::mpi
