// Process groups: an ordered set of world ranks. Communicators are a
// group plus a context id.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/mpi/types.h"

namespace odmpi::mpi {

class Group {
 public:
  Group() = default;
  explicit Group(std::vector<Rank> world_ranks);

  /// The world group {0, 1, ..., n-1}.
  static Group world(int n);

  [[nodiscard]] int size() const {
    return static_cast<int>(world_ranks_.size());
  }

  /// Translates a group-relative rank to a world rank.
  [[nodiscard]] Rank world_rank(int group_rank) const {
    return world_ranks_.at(static_cast<std::size_t>(group_rank));
  }

  /// Translates a world rank to its group-relative rank (-1 if absent).
  [[nodiscard]] int rank_of_world(Rank world) const;

  [[nodiscard]] bool contains(Rank world) const {
    return rank_of_world(world) >= 0;
  }

  [[nodiscard]] const std::vector<Rank>& world_ranks() const {
    return world_ranks_;
  }

 private:
  std::vector<Rank> world_ranks_;
  std::unordered_map<Rank, int> index_;
};

}  // namespace odmpi::mpi
