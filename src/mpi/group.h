// Process groups: an ordered set of world ranks. Communicators are a
// group plus a context id.
//
// The world group {0..n-1} is the identity permutation, so it is stored
// as just its size: translations are arithmetic and no N-sized table
// exists until someone asks for the materialized vector (the ANY_SOURCE
// path does). Explicit groups share their rank table and index through an
// immutable shared state, so copying a Group (every Comm holds one by
// value) never duplicates O(N) storage.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/mpi/types.h"

namespace odmpi::mpi {

class Group {
 public:
  Group() = default;
  explicit Group(std::vector<Rank> world_ranks);

  /// The world group {0, 1, ..., n-1}: O(1) storage (identity form).
  static Group world(int n);

  [[nodiscard]] int size() const { return size_; }

  /// Translates a group-relative rank to a world rank.
  [[nodiscard]] Rank world_rank(int group_rank) const {
    if (identity_) return group_rank;
    return state_->ranks.at(static_cast<std::size_t>(group_rank));
  }

  /// Translates a world rank to its group-relative rank (-1 if absent).
  [[nodiscard]] int rank_of_world(Rank world) const;

  [[nodiscard]] bool contains(Rank world) const {
    return rank_of_world(world) >= 0;
  }

  /// The full rank table. An identity group materializes it on first call
  /// (cached; shared by copies made afterwards) — callers that only
  /// translate ranks never pay the O(N) allocation.
  [[nodiscard]] const std::vector<Rank>& world_ranks() const;

 private:
  struct State {
    std::vector<Rank> ranks;
    std::unordered_map<Rank, int> index;  // empty for identity groups
  };

  // Shared, immutable once published. For identity groups it starts null
  // and is filled lazily by world_ranks() — mutable because that is a
  // cache, not a semantic change. Worlds are single-threaded, and groups
  // never cross Worlds, so no synchronization is needed.
  mutable std::shared_ptr<const State> state_;
  int size_ = 0;
  bool identity_ = false;
};

}  // namespace odmpi::mpi
