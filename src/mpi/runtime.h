// The job launcher: builds a simulated cluster, spawns one process fiber
// per MPI rank, runs MPI_Init / user code / MPI_Finalize, and collects the
// per-rank reports (init time, run time, VIs created, pinned memory) the
// paper's tables and figures are made of.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/mpi/comm.h"
#include "src/mpi/device.h"
#include "src/sim/engine.h"
#include "src/sim/process.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/via/provider.h"

namespace odmpi::mpi {

struct JobOptions {
  via::DeviceProfile profile = via::DeviceProfile::clan();
  DeviceConfig device;

  /// Virtual-time budget; a run that does not finish by then is reported
  /// as deadlocked (false from World::run).
  sim::SimTime deadline = sim::seconds(36000);

  /// Out-of-band (process-manager / sockets) bootstrap cost charged to
  /// every rank at the head of MPI_Init: address exchange and the like.
  /// This is the part of "MPI_Init has communication" that does not go
  /// through VIA (paper section 5.5 note).
  sim::SimTime bootstrap_base = sim::microseconds(250);
  sim::SimTime bootstrap_per_rank_log = sim::microseconds(60);

  std::size_t stack_bytes = 1 << 20;
  std::uint64_t seed = 0x0D0C2002;  // reproducible workloads

  /// Fault injection (off by default). When fault.enabled, the fabric
  /// drops/duplicates/delays packets per the seeded plan, VIs run under
  /// Reliable Delivery semantics, and connection handshakes retry with
  /// timeout + exponential backoff. Same config + seed => identical run.
  sim::FaultConfig fault;

  /// Message-lifecycle / connection-timeline tracing (off by default).
  /// When trace.enabled, the run records spans and instants across all
  /// four layers into World's sim::Tracer; if trace.path is non-empty,
  /// run_job writes Chrome trace-event JSON there on completion. Tracing
  /// never perturbs virtual time.
  sim::TraceConfig trace;
};

struct RankReport {
  bool finished = false;
  sim::SimTime init_time = 0;      // MPI_Init duration (Figure 8)
  sim::SimTime body_time = 0;      // init end -> user function return
  sim::SimTime total_time = 0;     // start -> finalize complete
  int vis_created = 0;             // Table 2's per-process VI count
  // High-water mark of simultaneously open VIs. Equals vis_created unless
  // a resource cap (DeviceConfig::max_vis) evicted and reconnected
  // channels, in which case vis_created counts reconnects too and this is
  // the honest Table-2 resource figure.
  int vis_open_peak = 0;
  int connections = 0;
  std::int64_t pinned_bytes_peak = 0;  // NIC high-water pinned memory
  sim::Stats device_stats;
};

/// Why a job ended the way it did.
enum class RunStatus {
  kOk,          // every rank finalized, no channel failures
  kDeadline,    // some rank never finished: deadlock or virtual timeout
  kRankFailed,  // every *surviving* rank finalized, but fault injection
                // either killed ranks outright (FaultConfig::rank_kills)
                // or failed peer channels under them
};

[[nodiscard]] const char* to_string(RunStatus s);

/// Structured outcome of World::run_job. Replaces the bare bool from
/// World::run: carries the failure cause, the ranks involved, the final
/// virtual clock, and (when tracing was enabled) the recorded trace.
struct [[nodiscard]] RunResult {
  RunStatus status = RunStatus::kOk;

  /// kDeadline: ranks that never finished (killed ranks are *not* listed
  /// here — dying on schedule is not a deadline miss; a survivor that
  /// hangs is). kRankFailed: the killed ranks when a kill schedule fired,
  /// otherwise ranks whose device reported channel failures. Always
  /// sorted ascending with duplicates removed. Empty for kOk.
  std::vector<int> failed_ranks;

  /// One injected death that actually took effect (the rank had not yet
  /// finalized when its kill time arrived), in kill order.
  struct RankDeath {
    int rank = -1;
    sim::SimTime time = 0;
  };
  std::vector<RankDeath> deaths;

  /// Survivors that observed at least one peer death (locally detected or
  /// learned via kPeerFailed gossip) and finalized anyway. Sorted
  /// ascending. Disjoint from failed_ranks in kill runs.
  std::vector<int> impacted_ranks;

  /// Virtual time when the last rank stopped (== World::completion_time).
  sim::SimTime completion_time = 0;

  /// The run's trace when JobOptions::trace.enabled, else nullptr. Owned
  /// by the World; valid for its lifetime.
  const sim::Tracer* trace = nullptr;

  [[nodiscard]] bool ok() const { return status == RunStatus::kOk; }
  explicit operator bool() const { return ok(); }

  /// One-line human-readable outcome ("deadline exceeded, 2 unfinished
  /// ranks: 0 3") for logs and test failure messages.
  [[nodiscard]] std::string summary() const;
};

class World {
 public:
  explicit World(int nranks, JobOptions options = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `fn(world_comm)` on every rank and reports the structured
  /// outcome: status, failing ranks, completion time and — when
  /// JobOptions::trace.enabled — the recorded trace (also written to
  /// trace.path as Chrome JSON when the path is set). One-shot per World.
  RunResult run_job(const std::function<void(Comm&)>& fn);

  /// Legacy form of run_job; prefer run_job, which also reports *why* a
  /// run failed. Returns true when every rank reached the end of
  /// MPI_Finalize within the virtual deadline (i.e. status is not
  /// kDeadline — kRankFailed still returns true, matching the historic
  /// contract where fault-injected runs "succeed" once every rank
  /// observes its failures and finalizes).
  bool run(const std::function<void(Comm&)>& fn) {
    return run_job(fn).status != RunStatus::kDeadline;
  }

  [[nodiscard]] int size() const { return nranks_; }
  [[nodiscard]] const JobOptions& options() const { return options_; }
  [[nodiscard]] const RankReport& report(int rank) const {
    return reports_.at(static_cast<std::size_t>(rank));
  }

  /// Virtual time when the last rank finished its user function.
  [[nodiscard]] sim::SimTime completion_time() const;

  /// Mean MPI_Init duration across ranks (Figure 8's metric).
  [[nodiscard]] double mean_init_us() const;

  /// Mean VIs created per process (Table 2's metric).
  [[nodiscard]] double mean_vis_per_process() const;

  /// Mean peak simultaneously-open VIs per process. The capped-mode
  /// Table-2 column: under a VI budget this stays <= max_vis while
  /// mean_vis_per_process() also counts eviction reconnects.
  [[nodiscard]] double mean_peak_vis_per_process() const;

  /// Aggregate device+NIC statistics across all ranks.
  [[nodiscard]] sim::Stats aggregate_stats();

  /// The job's tracer. Records nothing unless JobOptions::trace.enabled;
  /// useful after run_job to walk events or write exports by hand.
  [[nodiscard]] const sim::Tracer& tracer() const { return *tracer_; }

  /// Out-of-band barrier over the management network: used by MPI_Init /
  /// MPI_Finalize bookkeeping, never by application traffic.
  void oob_barrier();

 private:
  void rank_main(int rank, const std::function<void(Comm&)>& fn);

  /// Engine-context kill event (FaultConfig::rank_kills): halts the
  /// rank's fiber, blacks out its NIC in the fault plan, and releases any
  /// oob barrier the corpse was (or would have been) counted in. No-op if
  /// the rank already finalized — a kill cannot race past MPI_Finalize.
  void kill_rank(int rank);

  /// oob_barrier that keeps pumping `dev.progress()` while waiting.
  /// Resource-capped finalize only: a quiescent rank must still answer
  /// eviction handshakes from peers that are not done yet.
  void oob_barrier_driving(Device& dev);

  int nranks_;
  JobOptions options_;
  sim::Engine engine_;
  std::unique_ptr<sim::Tracer> tracer_;  // stable address; cluster points in
  via::Cluster cluster_;
  std::vector<std::unique_ptr<sim::Process>> processes_;
  std::vector<std::unique_ptr<RankContext>> contexts_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<RankReport> reports_;

  // oob barrier state (sense-reversing; see the .cpp). Barriers release
  // when every *alive* rank has arrived; kill_rank shrinks alive_ and
  // re-evaluates the release so survivors never wait on a corpse.
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::vector<sim::Process*> barrier_blocked_;
  int alive_ = 0;
  std::vector<RunResult::RankDeath> deaths_;
  bool ran_ = false;
};

/// One-call convenience: run `fn` on `nranks` ranks with `options`.
/// Note the World (and thus RunResult::trace) dies before this returns;
/// build a World directly when the trace must outlive the run.
RunResult run_world_job(int nranks, const JobOptions& options,
                        const std::function<void(Comm&)>& fn);

/// Legacy form of run_world_job; see World::run for the bool contract.
bool run_world(int nranks, const JobOptions& options,
               const std::function<void(Comm&)>& fn);

}  // namespace odmpi::mpi
