// The job launcher: builds a simulated cluster, spawns one process fiber
// per MPI rank, runs MPI_Init / user code / MPI_Finalize, and collects the
// per-rank reports (init time, run time, VIs created, pinned memory) the
// paper's tables and figures are made of.
//
// Construction is sessions-style (MPI-4 flavored): a SessionConfig — or
// the fluent WorldBuilder over it — describes the whole job as a plain
// value; the World itself stays cheap until run_job() materializes the
// cluster (one NIC per node). A 16k-rank World can therefore be described,
// stored and copied around for free, and only the run pays for N.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/mpi/comm.h"
#include "src/mpi/device.h"
#include "src/mpi/oob.h"
#include "src/sim/engine.h"
#include "src/sim/process.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/via/provider.h"

namespace odmpi::mpi {

struct JobOptions {
  via::DeviceProfile profile = via::DeviceProfile::clan();
  DeviceConfig device;

  /// Virtual-time budget; a run that does not finish by then is reported
  /// as deadlocked (RunStatus::kDeadline).
  sim::SimTime deadline = sim::seconds(36000);

  /// Out-of-band (process-manager / sockets) bootstrap cost charged to
  /// every rank at the head of MPI_Init: address exchange and the like.
  /// This is the part of "MPI_Init has communication" that does not go
  /// through VIA (paper section 5.5 note).
  sim::SimTime bootstrap_base = sim::microseconds(250);
  sim::SimTime bootstrap_per_rank_log = sim::microseconds(60);

  /// Aggregated out-of-band exchange cost model (static-tree bootstrap;
  /// DESIGN.md section 14). One publish_vi_table() collective charges
  /// every rank  oob_hop_cost * ceil(log2 N) + oob_entry_cost * N:
  /// a tree of forwarding hops plus linear per-entry marshalling — the
  /// standard shape of a PMI put/fence/get over a management network.
  sim::SimTime oob_hop_cost = sim::microseconds(40);
  sim::SimTime oob_entry_cost = sim::nanoseconds(150);

  std::size_t stack_bytes = 1 << 20;
  std::uint64_t seed = 0x0D0C2002;  // reproducible workloads

  /// Fault injection (off by default). When fault.enabled, the fabric
  /// drops/duplicates/delays packets per the seeded plan, VIs run under
  /// Reliable Delivery semantics, and connection handshakes retry with
  /// timeout + exponential backoff. Same config + seed => identical run.
  sim::FaultConfig fault;

  /// Message-lifecycle / connection-timeline tracing (off by default).
  /// When trace.enabled, the run records spans and instants across all
  /// four layers into World's sim::Tracer; if trace.path is non-empty,
  /// run_job writes Chrome trace-event JSON there on completion. Tracing
  /// never perturbs virtual time.
  sim::TraceConfig trace;
};

/// Sessions-style job description: the full shape of one run — size plus
/// every knob — as a plain value. Copyable, storable, replayable; no
/// simulation resource exists until a World built from it runs.
struct SessionConfig {
  int nranks = 1;
  JobOptions options;
};

struct RankReport {
  bool finished = false;
  sim::SimTime init_time = 0;      // MPI_Init duration (Figure 8)
  sim::SimTime body_time = 0;      // init end -> user function return
  sim::SimTime total_time = 0;     // start -> finalize complete
  int vis_created = 0;             // Table 2's per-process VI count
  // High-water mark of simultaneously open VIs. Equals vis_created unless
  // a resource cap (DeviceConfig::max_vis) evicted and reconnected
  // channels, in which case vis_created counts reconnects too and this is
  // the honest Table-2 resource figure.
  int vis_open_peak = 0;
  int connections = 0;
  std::int64_t pinned_bytes_peak = 0;  // NIC high-water pinned memory
  sim::Stats device_stats;
};

/// Cross-rank aggregates of the RankReports: every number the paper's
/// figures and tables quote, in one struct (one accessor instead of a
/// getter per metric; see World::metrics).
struct WorldMetrics {
  double mean_init_us = 0;   // Figure 8's metric
  double max_init_us = 0;    // stragglers: the slowest rank's MPI_Init
  double mean_vis_per_process = 0;       // Table 2
  double mean_peak_vis_per_process = 0;  // Table 2 under a VI budget
  double mean_pinned_bytes_peak = 0;     // NIC pinned-memory high water
};

/// Why a job ended the way it did.
enum class RunStatus {
  kOk,          // every rank finalized, no channel failures
  kDeadline,    // some rank never finished: deadlock or virtual timeout
  kRankFailed,  // every *surviving* rank finalized, but fault injection
                // either killed ranks outright (FaultConfig::rank_kills)
                // or failed peer channels under them
};

[[nodiscard]] const char* to_string(RunStatus s);

/// Structured outcome of World::run_job. Replaces the bare bool from
/// World::run: carries the failure cause, the ranks involved, the final
/// virtual clock, and (when tracing was enabled) the recorded trace.
struct [[nodiscard]] RunResult {
  RunStatus status = RunStatus::kOk;

  /// kDeadline: ranks that never finished (killed ranks are *not* listed
  /// here — dying on schedule is not a deadline miss; a survivor that
  /// hangs is). kRankFailed: the killed ranks when a kill schedule fired,
  /// otherwise ranks whose device reported channel failures. Always
  /// sorted ascending with duplicates removed. Empty for kOk.
  std::vector<int> failed_ranks;

  /// One injected death that actually took effect (the rank had not yet
  /// finalized when its kill time arrived), in kill order.
  struct RankDeath {
    int rank = -1;
    sim::SimTime time = 0;
  };
  std::vector<RankDeath> deaths;

  /// Survivors that observed at least one peer death (locally detected or
  /// learned via kPeerFailed gossip) and finalized anyway. Sorted
  /// ascending. Disjoint from failed_ranks in kill runs.
  std::vector<int> impacted_ranks;

  /// Virtual time when the last rank stopped (== World::completion_time).
  sim::SimTime completion_time = 0;

  /// The run's trace when JobOptions::trace.enabled, else nullptr. Owned
  /// by the World; valid for its lifetime.
  const sim::Tracer* trace = nullptr;

  [[nodiscard]] bool ok() const { return status == RunStatus::kOk; }
  explicit operator bool() const { return ok(); }

  /// One-line human-readable outcome ("deadline exceeded, 2 unfinished
  /// ranks: 0 3") for logs and test failure messages.
  [[nodiscard]] std::string summary() const;
};

class World : public OobExchange {
 public:
  /// Primary constructor: a fully described session. Cheap — the cluster
  /// (one NIC per node) is not materialized until run_job().
  explicit World(SessionConfig session);

  /// Historic signature; thin forwarder to the SessionConfig form.
  World(int nranks, JobOptions options = {})
      : World(SessionConfig{nranks, std::move(options)}) {}

  ~World() override;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `fn(world_comm)` on every rank and reports the structured
  /// outcome: status, failing ranks, completion time and — when
  /// JobOptions::trace.enabled — the recorded trace (also written to
  /// trace.path as Chrome JSON when the path is set). One-shot per World.
  RunResult run_job(const std::function<void(Comm&)>& fn);

  /// Legacy form of run_job. Returns true when every rank reached the end
  /// of MPI_Finalize within the virtual deadline (i.e. status is not
  /// kDeadline — kRankFailed still returns true, matching the historic
  /// contract where fault-injected runs "succeed" once every rank
  /// observes its failures and finalizes).
  [[deprecated("use run_job(); it also reports *why* a run failed")]]
  bool run(const std::function<void(Comm&)>& fn) {
    return run_job(fn).status != RunStatus::kDeadline;
  }

  [[nodiscard]] int size() const { return nranks_; }
  [[nodiscard]] const JobOptions& options() const { return options_; }
  [[nodiscard]] const RankReport& report(int rank) const {
    return reports_.at(static_cast<std::size_t>(rank));
  }

  /// Virtual time when the last rank finished its user function.
  [[nodiscard]] sim::SimTime completion_time() const;

  /// Cross-rank aggregates of the per-rank reports: the paper's figure
  /// and table metrics in one read.
  [[nodiscard]] WorldMetrics metrics() const;

  /// Legacy per-metric getters; each is one field of metrics().
  [[deprecated("use metrics().mean_init_us")]]
  [[nodiscard]] double mean_init_us() const {
    return metrics().mean_init_us;
  }
  [[deprecated("use metrics().mean_vis_per_process")]]
  [[nodiscard]] double mean_vis_per_process() const {
    return metrics().mean_vis_per_process;
  }
  [[deprecated("use metrics().mean_peak_vis_per_process")]]
  [[nodiscard]] double mean_peak_vis_per_process() const {
    return metrics().mean_peak_vis_per_process;
  }

  /// Aggregate device+NIC statistics across all ranks.
  [[nodiscard]] sim::Stats aggregate_stats();

  /// The job's tracer. Records nothing unless JobOptions::trace.enabled;
  /// useful after run_job to walk events or write exports by hand.
  [[nodiscard]] const sim::Tracer& tracer() const { return *tracer_; }

  // --- OobExchange (the management-network bootstrap hub) -----------------
  // Implemented on the World's shared address space; each collective call
  // charges the aggregated-exchange cost model from JobOptions and parks
  // the caller on the job-wide out-of-band barrier.

  void publish_vi_table(Rank rank, std::vector<via::ViId> table) override;
  [[nodiscard]] via::ViId lookup_vi(Rank owner, Rank peer) const override;
  void oob_fence(Rank rank) override;

 private:
  void rank_main(int rank, const std::function<void(Comm&)>& fn);

  /// Builds the cluster (one NIC per node) and attaches the tracer.
  /// Deferred to run_job so an unrun World never pays O(N) resources.
  void materialize_cluster();

  /// Out-of-band barrier over the management network: used by MPI_Init /
  /// MPI_Finalize bookkeeping and the OobExchange collectives, never by
  /// application traffic.
  void oob_barrier();

  /// Engine-context kill event (FaultConfig::rank_kills): halts the
  /// rank's fiber, blacks out its NIC in the fault plan, and releases any
  /// oob barrier the corpse was (or would have been) counted in. No-op if
  /// the rank already finalized — a kill cannot race past MPI_Finalize.
  void kill_rank(int rank);

  /// oob_barrier that keeps pumping `dev.progress()` while waiting.
  /// Resource-capped finalize only: a quiescent rank must still answer
  /// eviction handshakes from peers that are not done yet.
  void oob_barrier_driving(Device& dev);

  int nranks_;
  JobOptions options_;
  sim::Engine engine_;
  std::unique_ptr<sim::Tracer> tracer_;  // stable address; cluster points in
  std::unique_ptr<via::Cluster> cluster_;  // lazily built; see run_job
  std::vector<std::unique_ptr<sim::Process>> processes_;
  std::vector<std::unique_ptr<RankContext>> contexts_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<RankReport> reports_;

  // OobExchange table store: oob_tables_[owner][peer] once every rank has
  // published. Only allocated when a bootstrap actually exchanges tables
  // (static-tree); on-demand jobs never touch it.
  std::vector<std::vector<via::ViId>> oob_tables_;

  // oob barrier state (sense-reversing; see the .cpp). Barriers release
  // when every *alive* rank has arrived; kill_rank shrinks alive_ and
  // re-evaluates the release so survivors never wait on a corpse.
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::vector<sim::Process*> barrier_blocked_;
  int alive_ = 0;
  std::vector<RunResult::RankDeath> deaths_;
  bool ran_ = false;
};

/// Fluent sessions-style builder over SessionConfig. Every setter returns
/// *this*, so a job reads as one expression:
///
///   auto result = WorldBuilder()
///                     .ranks(1024)
///                     .connection_model(ConnectionModel::kOnDemand)
///                     .run_job(body);
class WorldBuilder {
 public:
  WorldBuilder() = default;
  explicit WorldBuilder(SessionConfig session) : session_(std::move(session)) {}

  WorldBuilder& ranks(int n) {
    session_.nranks = n;
    return *this;
  }
  WorldBuilder& options(JobOptions opts) {
    session_.options = std::move(opts);
    return *this;
  }
  WorldBuilder& profile(via::DeviceProfile p) {
    session_.options.profile = std::move(p);
    return *this;
  }
  WorldBuilder& device(DeviceConfig d) {
    session_.options.device = d;
    return *this;
  }
  WorldBuilder& connection_model(ConnectionModel m) {
    session_.options.device.connection_model = m;
    return *this;
  }
  WorldBuilder& deadline(sim::SimTime t) {
    session_.options.deadline = t;
    return *this;
  }
  WorldBuilder& seed(std::uint64_t s) {
    session_.options.seed = s;
    return *this;
  }
  WorldBuilder& fault(sim::FaultConfig f) {
    session_.options.fault = std::move(f);
    return *this;
  }
  WorldBuilder& trace(sim::TraceConfig t) {
    session_.options.trace = std::move(t);
    return *this;
  }

  [[nodiscard]] const SessionConfig& session() const { return session_; }

  /// Materializes a World for this session (heap — World is pinned: the
  /// engine, fibers and barrier state record its address).
  [[nodiscard]] std::unique_ptr<World> build() const {
    return std::make_unique<World>(session_);
  }

  /// One-shot convenience: build, run, report. The World (and thus
  /// RunResult::trace) dies before this returns.
  RunResult run_job(const std::function<void(Comm&)>& fn) const {
    RunResult result = build()->run_job(fn);
    result.trace = nullptr;
    return result;
  }

 private:
  SessionConfig session_;
};

/// One-call convenience: run `fn` on `nranks` ranks with `options`.
/// Note the World (and thus RunResult::trace) dies before this returns;
/// build a World directly when the trace must outlive the run.
RunResult run_world_job(int nranks, const JobOptions& options,
                        const std::function<void(Comm&)>& fn);

/// Legacy form of run_world_job; see World::run for the bool contract.
[[deprecated("use run_world_job(), which also reports *why* a run failed")]]
bool run_world(int nranks, const JobOptions& options,
               const std::function<void(Comm&)>& fn);

}  // namespace odmpi::mpi
