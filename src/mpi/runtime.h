// The job launcher: builds a simulated cluster, spawns one process fiber
// per MPI rank, runs MPI_Init / user code / MPI_Finalize, and collects the
// per-rank reports (init time, run time, VIs created, pinned memory) the
// paper's tables and figures are made of.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/mpi/comm.h"
#include "src/mpi/device.h"
#include "src/sim/engine.h"
#include "src/sim/process.h"
#include "src/sim/stats.h"
#include "src/via/provider.h"

namespace odmpi::mpi {

struct JobOptions {
  via::DeviceProfile profile = via::DeviceProfile::clan();
  DeviceConfig device;

  /// Virtual-time budget; a run that does not finish by then is reported
  /// as deadlocked (false from World::run).
  sim::SimTime deadline = sim::seconds(36000);

  /// Out-of-band (process-manager / sockets) bootstrap cost charged to
  /// every rank at the head of MPI_Init: address exchange and the like.
  /// This is the part of "MPI_Init has communication" that does not go
  /// through VIA (paper section 5.5 note).
  sim::SimTime bootstrap_base = sim::microseconds(250);
  sim::SimTime bootstrap_per_rank_log = sim::microseconds(60);

  std::size_t stack_bytes = 1 << 20;
  std::uint64_t seed = 0x0D0C2002;  // reproducible workloads

  /// Fault injection (off by default). When fault.enabled, the fabric
  /// drops/duplicates/delays packets per the seeded plan, VIs run under
  /// Reliable Delivery semantics, and connection handshakes retry with
  /// timeout + exponential backoff. Same config + seed => identical run.
  sim::FaultConfig fault;
};

struct RankReport {
  bool finished = false;
  sim::SimTime init_time = 0;      // MPI_Init duration (Figure 8)
  sim::SimTime body_time = 0;      // init end -> user function return
  sim::SimTime total_time = 0;     // start -> finalize complete
  int vis_created = 0;             // Table 2's per-process VI count
  int connections = 0;
  std::int64_t pinned_bytes_peak = 0;  // NIC high-water pinned memory
  sim::Stats device_stats;
};

class World {
 public:
  explicit World(int nranks, JobOptions options = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `fn(world_comm)` on every rank. Returns true when every rank
  /// reached the end of MPI_Finalize within the virtual deadline; false
  /// signals a deadlock or timeout (reports are still populated with
  /// whatever completed).
  bool run(const std::function<void(Comm&)>& fn);

  [[nodiscard]] int size() const { return nranks_; }
  [[nodiscard]] const JobOptions& options() const { return options_; }
  [[nodiscard]] const RankReport& report(int rank) const {
    return reports_.at(static_cast<std::size_t>(rank));
  }

  /// Virtual time when the last rank finished its user function.
  [[nodiscard]] sim::SimTime completion_time() const;

  /// Mean MPI_Init duration across ranks (Figure 8's metric).
  [[nodiscard]] double mean_init_us() const;

  /// Mean VIs created per process (Table 2's metric).
  [[nodiscard]] double mean_vis_per_process() const;

  /// Aggregate device+NIC statistics across all ranks.
  [[nodiscard]] sim::Stats aggregate_stats();

  /// Out-of-band barrier over the management network: used by MPI_Init /
  /// MPI_Finalize bookkeeping, never by application traffic.
  void oob_barrier();

 private:
  void rank_main(int rank, const std::function<void(Comm&)>& fn);

  int nranks_;
  JobOptions options_;
  sim::Engine engine_;
  via::Cluster cluster_;
  std::vector<std::unique_ptr<sim::Process>> processes_;
  std::vector<std::unique_ptr<RankContext>> contexts_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<RankReport> reports_;

  // oob barrier state (sense-reversing; see the .cpp)
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::vector<sim::Process*> barrier_blocked_;
  bool ran_ = false;
};

/// One-call convenience: run `fn` on `nranks` ranks with `options`.
bool run_world(int nranks, const JobOptions& options,
               const std::function<void(Comm&)>& fn);

}  // namespace odmpi::mpi
