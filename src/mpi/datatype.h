// Basic MPI datatypes. Only fixed-size contiguous types are supported —
// enough for the paper's benchmarks (NAS kernels use INT/DOUBLE and raw
// bytes). A datatype is (kind, extent); reduction dispatch uses the kind.
#pragma once

#include <cstddef>
#include <cstdint>

namespace odmpi::mpi {

enum class TypeKind : std::uint8_t {
  kByte,
  kInt32,
  kInt64,
  kFloat,
  kDouble,
};

struct Datatype {
  TypeKind kind;
  std::size_t extent;

  [[nodiscard]] std::size_t size() const { return extent; }
  bool operator==(const Datatype&) const = default;
};

inline constexpr Datatype kByte{TypeKind::kByte, 1};
inline constexpr Datatype kInt32{TypeKind::kInt32, 4};
inline constexpr Datatype kInt64{TypeKind::kInt64, 8};
inline constexpr Datatype kFloat{TypeKind::kFloat, 4};
inline constexpr Datatype kDouble{TypeKind::kDouble, 8};

/// Maps a C++ arithmetic type to its Datatype (for the typed helpers).
template <typename T>
constexpr Datatype datatype_of();

template <>
constexpr Datatype datatype_of<std::byte>() { return kByte; }
template <>
constexpr Datatype datatype_of<char>() { return kByte; }
template <>
constexpr Datatype datatype_of<unsigned char>() { return kByte; }
template <>
constexpr Datatype datatype_of<std::int32_t>() { return kInt32; }
template <>
constexpr Datatype datatype_of<std::int64_t>() { return kInt64; }
template <>
constexpr Datatype datatype_of<float>() { return kFloat; }
template <>
constexpr Datatype datatype_of<double>() { return kDouble; }

[[nodiscard]] const char* to_string(TypeKind k);

}  // namespace odmpi::mpi
