// Umbrella header for the odmpi library.
//
// odmpi reproduces "Impact of On-Demand Connection Management in MPI over
// VIA" (Wu, Liu, Wyckoff, Panda — CLUSTER 2002): a deterministic cluster
// simulator, a VIA emulation with both connection models, an MVICH-style
// MPI library with pluggable static / on-demand connection management,
// and the NAS-kernel workloads the paper evaluates.
//
// Quick start:
//
//   #include "src/odmpi.h"
//   using namespace odmpi;
//
//   mpi::JobOptions opt;
//   opt.profile = via::DeviceProfile::clan();
//   opt.device.connection_model = mpi::ConnectionModel::kOnDemand;
//   mpi::World world(8, opt);
//   world.run_job([](mpi::Comm& comm) {
//     double x = comm.rank(), sum = 0;
//     comm.allreduce(&x, &sum, 1, mpi::kDouble, mpi::Op::kSum);
//   });
#pragma once

#include "src/mpi/comm.h"
#include "src/mpi/datatype.h"
#include "src/mpi/device.h"
#include "src/mpi/group.h"
#include "src/mpi/op.h"
#include "src/mpi/request.h"
#include "src/mpi/runtime.h"
#include "src/mpi/types.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/process.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/via/device_profile.h"
#include "src/via/provider.h"
