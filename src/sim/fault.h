// Seeded, deterministic fault injection for the simulated interconnect.
//
// A FaultPlan decides, per packet, whether the wire drops, duplicates or
// delay-jitters it, driven entirely by one Rng stream derived from the
// plan's seed. Because the discrete-event engine delivers events in a
// deterministic order, the sequence of decide() calls — and therefore the
// whole fault schedule — replays bit-for-bit for a given seed. Disabled
// plans make no Rng draws and charge no cost, so fault-free runs are
// byte-identical to a build without the subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace odmpi::sim {

/// Wire-level packet taxonomy for fault targeting: payload-bearing data
/// descriptors versus connection-management / ack control traffic.
enum class FaultClass : std::uint8_t { kData, kControl };

/// A window during which one node's NIC is effectively off the wire:
/// every packet to or from it is dropped ("brownout").
struct BrownoutWindow {
  int node = -1;
  SimTime start = 0;
  SimTime end = 0;  // exclusive
};

/// Directional per-link drop-rate override (e.g. 1.0 = unreachable).
/// Overrides win over the class-wide rates when they are larger.
struct LinkFault {
  int src = -1;
  int dst = -1;
  double drop_rate = 0.0;
};

struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0xFA417;

  // Independent loss probabilities per packet class.
  double data_drop_rate = 0.0;
  double control_drop_rate = 0.0;

  // Probability that a surviving packet is duplicated by the switch; the
  // copy arrives `duplicate_lag` after the original.
  double duplicate_rate = 0.0;
  SimTime duplicate_lag = microseconds(5);

  // Probability that a surviving packet picks up extra switch-queueing
  // delay, uniform in (0, delay_jitter_max]. Large jitter relative to the
  // inter-packet gap reorders packets.
  double delay_rate = 0.0;
  SimTime delay_jitter_max = microseconds(50);

  std::vector<BrownoutWindow> brownouts;
  std::vector<LinkFault> link_faults;

  /// Marks the directed links a->b and b->a as 100% lossy (unreachable
  /// peer): the scenario behind the paper-motivated timeout tests.
  void block_pair(int a, int b) {
    link_faults.push_back(LinkFault{a, b, 1.0});
    link_faults.push_back(LinkFault{b, a, 1.0});
  }
};

/// The verdict for one packet.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  SimTime extra_delay = 0;    // added to the arrival time
  SimTime duplicate_lag = 0;  // copy's extra lag past the original
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config)
      : config_(config), rng_(config.seed, /*stream=*/0x0DF417ULL) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Rules on one packet about to hit the wire at `when`. Must only be
  /// called on an enabled plan (callers gate on enabled() so the disabled
  /// path costs one branch and zero Rng draws).
  FaultDecision decide(int src, int dst, FaultClass cls, SimTime when);

  /// Fault-model counters ("fault.*"), for aggregation into cluster stats.
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  FaultConfig config_;
  Rng rng_;
  Stats stats_;
};

}  // namespace odmpi::sim
