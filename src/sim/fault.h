// Seeded, deterministic fault injection for the simulated interconnect.
//
// A FaultPlan decides, per packet, whether the wire drops, duplicates or
// delay-jitters it, driven entirely by one Rng stream derived from the
// plan's seed. Because the discrete-event engine delivers events in a
// deterministic order, the sequence of decide() calls — and therefore the
// whole fault schedule — replays bit-for-bit for a given seed. Disabled
// plans make no Rng draws and charge no cost, so fault-free runs are
// byte-identical to a build without the subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace odmpi::sim {

/// Wire-level packet taxonomy for fault targeting: payload-bearing data
/// descriptors versus connection-management / ack control traffic.
enum class FaultClass : std::uint8_t { kData, kControl };

/// A window during which one node's NIC is effectively off the wire:
/// every packet to or from it is dropped ("brownout").
struct BrownoutWindow {
  int node = -1;
  SimTime start = 0;
  SimTime end = 0;  // exclusive
};

/// Directional per-link drop-rate override (e.g. 1.0 = unreachable).
/// Overrides win over the class-wide rates when they are larger.
struct LinkFault {
  int src = -1;
  int dst = -1;
  double drop_rate = 0.0;
};

/// A scheduled process death: at `time` the rank's fiber halts and its
/// NIC goes dark (every link to or from it becomes 100% lossy and its
/// ConnectionService stops answering). Unlike a brownout the node never
/// comes back.
struct RankKill {
  int rank = -1;
  SimTime time = 0;
};

struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0xFA417;

  // Independent loss probabilities per packet class.
  double data_drop_rate = 0.0;
  double control_drop_rate = 0.0;

  // Probability that a surviving packet is duplicated by the switch; the
  // copy arrives `duplicate_lag` after the original.
  double duplicate_rate = 0.0;
  SimTime duplicate_lag = microseconds(5);

  // Probability that a surviving packet picks up extra switch-queueing
  // delay, uniform in (0, delay_jitter_max]. Large jitter relative to the
  // inter-packet gap reorders packets.
  double delay_rate = 0.0;
  SimTime delay_jitter_max = microseconds(50);

  std::vector<BrownoutWindow> brownouts;
  std::vector<LinkFault> link_faults;

  // Scheduled process deaths. A non-empty list activates the plan even
  // with `enabled == false` (the kill schedule needs the reliability
  // machinery — acks, retransmission, connect timers — to detect the
  // corpse), but makes no Rng draws of its own, so a kills-only plan
  // adds no noise to the packet schedule until the first death.
  std::vector<RankKill> rank_kills;

  /// Marks the directed links a->b and b->a as 100% lossy (unreachable
  /// peer): the scenario behind the paper-motivated timeout tests.
  void block_pair(int a, int b) {
    link_faults.push_back(LinkFault{a, b, 1.0});
    link_faults.push_back(LinkFault{b, a, 1.0});
  }

  /// Schedules `rank` to die at `time`.
  void kill_rank(int rank, SimTime time) {
    rank_kills.push_back(RankKill{rank, time});
  }

  [[nodiscard]] bool has_kills() const { return !rank_kills.empty(); }
};

/// The verdict for one packet.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  SimTime extra_delay = 0;    // added to the arrival time
  SimTime duplicate_lag = 0;  // copy's extra lag past the original
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config)
      : config_(config),
        enabled_(config.enabled || !config.rank_kills.empty()),
        rng_(config.seed, /*stream=*/0x0DF417ULL) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Rules on one packet about to hit the wire at `when`. Must only be
  /// called on an enabled plan (callers gate on enabled() so the disabled
  /// path costs one branch and zero Rng draws).
  FaultDecision decide(int src, int dst, FaultClass cls, SimTime when);

  // --- Rank-death state (driven by the runtime's kill events) -------------

  /// Marks `node`'s NIC dark: from now on every packet to or from it is
  /// dropped unconditionally (no Rng draw — a corpse is schedule, not
  /// noise).
  void mark_node_dead(int node);
  [[nodiscard]] bool node_dead(int node) const {
    for (int d : dead_nodes_) {
      if (d == node) return true;
    }
    return false;
  }
  [[nodiscard]] bool any_node_dead() const { return !dead_nodes_.empty(); }

  /// Fault-model counters ("fault.*"), for aggregation into cluster stats.
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  FaultConfig config_;
  bool enabled_ = false;
  std::vector<int> dead_nodes_;
  Rng rng_;
  Stats stats_;
};

}  // namespace odmpi::sim
