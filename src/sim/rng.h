// Deterministic random-number streams.
//
// Each rank (and each workload generator) gets its own stream derived from
// a master seed + stream id via splitmix64, so adding a rank or reordering
// draws in one rank never perturbs another — a prerequisite for the
// determinism property tests.
#pragma once

#include <cstdint>

namespace odmpi::sim {

/// xoshiro256** seeded through splitmix64. Not cryptographic; fast and
/// statistically solid for workload generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Independent stream `stream` of the same master seed.
  Rng(std::uint64_t seed, std::uint64_t stream);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p.
  bool next_bool(double p);

 private:
  std::uint64_t s_[4];
};

/// The splitmix64 step, exposed for seeding hierarchies elsewhere.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace odmpi::sim
