#include "src/sim/fiber.h"

#include <cassert>
#include <cstdlib>

#if defined(__SANITIZE_THREAD__)
#define ODMPI_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ODMPI_TSAN_FIBERS 1
#endif
#endif

#ifdef ODMPI_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace odmpi::sim {

namespace {
// One simulation per thread (the sweep runner drives independent Worlds on
// separate threads), so the "current fiber" register is per-thread. Within
// a thread fibers still switch cooperatively — no locking needed.
thread_local Fiber* g_current_fiber = nullptr;

#ifdef ODMPI_TSAN_FIBERS
void* tsan_make_fiber() { return __tsan_create_fiber(0); }
void tsan_free_fiber(void* f) {
  if (f != nullptr) __tsan_destroy_fiber(f);
}
void tsan_switch(void* f) {
  if (f != nullptr) __tsan_switch_to_fiber(f, 0);
}
void* tsan_this_fiber() { return __tsan_get_current_fiber(); }
#else
void* tsan_make_fiber() { return nullptr; }
void tsan_free_fiber(void*) {}
void tsan_switch(void*) {}
void* tsan_this_fiber() { return nullptr; }
#endif
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)),
      stack_(new std::byte[(stack_bytes + 15) & ~std::size_t{15}]),
      stack_bytes_((stack_bytes + 15) & ~std::size_t{15}) {}

Fiber::~Fiber() {
  // A fiber destroyed mid-flight simply abandons its stack; the simulation
  // tears everything down together at the end of a run.
  tsan_free_fiber(tsan_fiber_);
}

Fiber* Fiber::current() { return g_current_fiber; }

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr);
  self->body_();
  self->finished_ = true;
  // Return to the scheduler for good. uc_link would also work, but an
  // explicit swap keeps all switching in one place.
  tsan_switch(self->tsan_scheduler_);
  swapcontext(&self->context_, &self->scheduler_context_);
  // Unreachable: a finished fiber is never resumed.
  std::abort();
}

void Fiber::resume() {
  assert(g_current_fiber == nullptr && "resume() called from inside a fiber");
  assert(!finished_ && "resume() on a finished fiber");
  if (!started_) {
    started_ = true;
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = nullptr;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
    tsan_fiber_ = tsan_make_fiber();
  }
  g_current_fiber = this;
  tsan_scheduler_ = tsan_this_fiber();
  tsan_switch(tsan_fiber_);
  swapcontext(&scheduler_context_, &context_);
  g_current_fiber = nullptr;
}

void Fiber::yield_to_scheduler() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "yield outside of a fiber");
  g_current_fiber = nullptr;
  tsan_switch(self->tsan_scheduler_);
  swapcontext(&self->context_, &self->scheduler_context_);
  g_current_fiber = self;
}

}  // namespace odmpi::sim
