#include "src/sim/fiber.h"

#include <cassert>
#include <cstdlib>

namespace odmpi::sim {

namespace {
// Single-threaded simulation: plain globals are safe and fast.
Fiber* g_current_fiber = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_((stack_bytes + 15) & ~std::size_t{15}) {}

Fiber::~Fiber() {
  // A fiber destroyed mid-flight simply abandons its stack; the simulation
  // tears everything down together at the end of a run.
}

Fiber* Fiber::current() { return g_current_fiber; }

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr);
  self->body_();
  self->finished_ = true;
  // Return to the scheduler for good. uc_link would also work, but an
  // explicit swap keeps all switching in one place.
  swapcontext(&self->context_, &self->scheduler_context_);
  // Unreachable: a finished fiber is never resumed.
  std::abort();
}

void Fiber::resume() {
  assert(g_current_fiber == nullptr && "resume() called from inside a fiber");
  assert(!finished_ && "resume() on a finished fiber");
  if (!started_) {
    started_ = true;
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.data();
    context_.uc_stack.ss_size = stack_.size();
    context_.uc_link = nullptr;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  g_current_fiber = this;
  swapcontext(&scheduler_context_, &context_);
  g_current_fiber = nullptr;
}

void Fiber::yield_to_scheduler() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "yield outside of a fiber");
  g_current_fiber = nullptr;
  swapcontext(&self->context_, &self->scheduler_context_);
  g_current_fiber = self;
}

}  // namespace odmpi::sim
