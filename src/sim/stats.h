// Lightweight statistics registry shared by every layer.
//
// The VIA layer counts VIs, connections, pinned bytes and dropped packets;
// the MPI layer counts messages, protocol events and parked sends; the
// benchmark harnesses read these to regenerate the paper's resource tables
// (Table 2) alongside the timing figures.
//
// Counter names are interned once into a process-wide table of dense ids
// (see DESIGN.md section 9): hot paths hold a Stats::Counter handle and
// bump a slot in a flat array — no string hashing, no map walk, no
// allocation. The string-keyed methods remain for cold paths and resolve
// through the intern table; `all()` materializes the familiar
// name-ordered map for reporting, so Table 2 output is unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.h"

namespace odmpi::sim {

class Stats {
 public:
  /// Handle for an interned counter name. Cheap to copy; valid for the
  /// whole process and usable with any Stats instance.
  class Counter {
   public:
    Counter() = default;

    friend bool operator==(Counter, Counter) = default;

   private:
    friend class Stats;
    explicit Counter(std::uint32_t id) : id_(id) {}
    std::uint32_t id_ = 0;
  };

  /// Interns `name`, returning its dense handle. First use of a name
  /// registers it; later uses (from any Stats instance) find the same id.
  static Counter counter(std::string_view name);

  /// The name a handle was interned under. Cold path: reporting and
  /// trace export only. Lock-free (safe from concurrent sweep threads).
  [[nodiscard]] static std::string name_of(Counter c);

  /// Adds `delta` to the counter (created at 0 on first touch).
  void add(Counter c, std::int64_t delta = 1) {
    Cell& cell = cell_for(c.id_);
    cell.value += delta;
    cell.touched = true;
  }

  /// Sets a gauge to an absolute value.
  void set(Counter c, std::int64_t value) {
    Cell& cell = cell_for(c.id_);
    cell.value = value;
    cell.touched = true;
  }

  /// Tracks a running maximum (e.g. peak pinned bytes).
  void set_max(Counter c, std::int64_t value) {
    Cell& cell = cell_for(c.id_);  // first touch registers the 0 entry
    if (value > cell.value) cell.value = value;
    cell.touched = true;
  }

  [[nodiscard]] std::int64_t get(Counter c) const {
    return c.id_ < cells_.size() ? cells_[c.id_].value : 0;
  }

  // String-keyed convenience forms (cold paths, tests, reporting).
  void add(const std::string& name, std::int64_t delta = 1) {
    add(counter(name), delta);
  }
  void set(const std::string& name, std::int64_t value) {
    set(counter(name), value);
  }
  void set_max(const std::string& name, std::int64_t value) {
    set_max(counter(name), value);
  }
  [[nodiscard]] std::int64_t get(const std::string& name) const {
    return get(counter(name));
  }

  /// Materializes the touched counters as a name-ordered map — the same
  /// shape the reporting code has always consumed.
  [[nodiscard]] std::map<std::string, std::int64_t> all() const;

  void clear() { cells_.clear(); }

  /// Merges another registry into this one (summing counters); used to
  /// aggregate per-rank stats into cluster totals.
  void merge(const Stats& other);

 private:
  struct Cell {
    std::int64_t value = 0;
    bool touched = false;  // distinguishes "never used" from a zero value
  };

  Cell& cell_for(std::uint32_t id) {
    if (id >= cells_.size()) cells_.resize(id + 1);
    return cells_[id];
  }

  std::vector<Cell> cells_;  // indexed by interned counter id
};

}  // namespace odmpi::sim
