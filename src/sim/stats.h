// Lightweight statistics registry shared by every layer.
//
// The VIA layer counts VIs, connections, pinned bytes and dropped packets;
// the MPI layer counts messages, protocol events and parked sends; the
// benchmark harnesses read these to regenerate the paper's resource tables
// (Table 2) alongside the timing figures.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/sim/time.h"

namespace odmpi::sim {

class Stats {
 public:
  /// Adds `delta` to the named counter (created at 0 on first touch).
  void add(const std::string& name, std::int64_t delta = 1) {
    counters_[name] += delta;
  }

  /// Sets a gauge to an absolute value.
  void set(const std::string& name, std::int64_t value) {
    counters_[name] = value;
  }

  /// Tracks a running maximum (e.g. peak pinned bytes).
  void set_max(const std::string& name, std::int64_t value) {
    auto& cur = counters_[name];
    if (value > cur) cur = value;
  }

  [[nodiscard]] std::int64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const {
    return counters_;
  }

  void clear() { counters_.clear(); }

  /// Merges another registry into this one (summing counters); used to
  /// aggregate per-rank stats into cluster totals.
  void merge(const Stats& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

 private:
  std::map<std::string, std::int64_t> counters_;
};

}  // namespace odmpi::sim
