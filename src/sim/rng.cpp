#include "src/sim/rng.h"

#include <cassert>

namespace odmpi::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : Rng(seed, 0) {}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t sm = seed ^ (stream * 0xd1b54a32d192ed03ULL + 1);
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

}  // namespace odmpi::sim
