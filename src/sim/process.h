// A simulated process: a fiber with a local virtual clock.
//
// Execution model (process-oriented DES):
//  * "Resume process P" is itself an engine event. A process therefore only
//    runs when every event with an earlier timestamp has been delivered.
//  * While running, a process charges work to its *local* clock with
//    advance(); the global clock stays at the resume timestamp. Anything
//    the process emits (packets, wakeups) is stamped with its local time,
//    so causality is preserved exactly.
//  * yield() re-schedules the process at its local time and lets the engine
//    deliver any events that "happened" in between — this is what makes a
//    polling loop interleave correctly with message arrivals.
//  * block()/wakeup() implement a binary-semaphore style wait used by
//    completion queues; a wakeup that races a running process is latched
//    and consumed by the next block().
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>

#include "src/sim/engine.h"
#include "src/sim/fiber.h"
#include "src/sim/time.h"

namespace odmpi::sim {

class Process {
 public:
  enum class State { NotStarted, Ready, Running, Blocked, Finished, Killed };

  /// Creates a process that runs `body` when started. `id` is free-form
  /// (MPI rank for our usage) and appears in diagnostics.
  Process(Engine& engine, int id, std::function<void()> body,
          std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Schedules the first resume at engine.now() + delay.
  void start(SimTime delay = 0);

  /// Local virtual time of this process.
  [[nodiscard]] SimTime now() const { return local_now_; }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] bool finished() const { return state_ == State::Finished; }
  [[nodiscard]] bool killed() const { return state_ == State::Killed; }

  /// Halts the process where it stands (fault injection): a Ready resume
  /// becomes a no-op, a Blocked fiber stays suspended forever (its stack
  /// unwinds at Process destruction, like a deadline-expired run), and
  /// future wakeups are dropped. Must be called from engine context —
  /// never from inside the victim's own fiber — so the process is never
  /// Running at kill time. No-op on a Finished process.
  void kill();

  /// --- Calls below must be made from inside the process's fiber. ---

  /// Charges `dt` of virtual work to the local clock without yielding.
  void advance(SimTime dt) {
    assert(dt >= 0);
    local_now_ += dt;
  }

  /// Lets the engine deliver pending events up to the local time, then
  /// continues. The interleaving point of every polling loop.
  void yield();

  /// advance(dt) then yield(): models a timed sleep.
  void sleep(SimTime dt);

  /// Blocks until some other event calls wakeup(). A latched wakeup (one
  /// that arrived while the process was running) returns immediately.
  /// Returns the virtual duration actually spent blocked (0 if latched).
  SimTime block();

  /// --- Calls below may be made from anywhere. ---

  /// Unblocks the process (or latches the signal if it is not blocked).
  void wakeup();

  /// The process currently executing, or nullptr when in plain engine
  /// context (e.g. a packet-delivery event).
  static Process* current();

  /// Local time of the current process, or the engine's global time when
  /// no process is running. The correct timestamp for emitted events.
  static SimTime current_time(const Engine& engine);

 private:
  void resume_now();

  Engine& engine_;
  int id_;
  State state_ = State::NotStarted;
  SimTime local_now_ = 0;
  bool pending_signal_ = false;
  std::unique_ptr<Fiber> fiber_;
};

}  // namespace odmpi::sim
