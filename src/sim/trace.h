// Deterministic structured tracing for the simulation.
//
// The paper's argument is about *when* connection work happens: VI
// creation deferred out of MPI_Init, a handshake hidden behind the first
// parked eager send. sim::Tracer records that timeline — spans, instants
// and counter samples stamped with virtual time — so every figure and
// table claim is inspectable in chrome://tracing / Perfetto, and the raw
// event stream can be golden-diffed via a compact text digest.
//
// Design constraints (see DESIGN.md section 10):
//  * Zero overhead when disabled: every record call is a single mask
//    test; no allocation, no virtual dispatch, no clock read.
//  * Non-perturbing when enabled: the tracer never charges host time and
//    never schedules engine events, so an identically-seeded run produces
//    identical virtual timestamps with tracing on or off.
//  * Allocation-free steady state: events land in 1024-slot chunks whose
//    storage comes from the thread-local block pool (sim/pool_alloc), the
//    same recycling path the engine's event slabs use.
//  * Interned names: event names are sim::Stats::Counter handles — 4-byte
//    ids on the hot path, resolved to strings only at export.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/pool_alloc.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace odmpi::sim {

class Engine;

/// Event categories, one bit each in TraceConfig::categories.
enum class TraceCat : std::uint8_t {
  kFabric = 0,  // wire packets, NIC doorbell scans, drops, retransmits
  kConn = 1,    // VI/connection state machine timeline (both layers)
  kMsg = 2,     // MPI message lifecycle: post, park, drain, match, done
  kColl = 3,    // collective phase spans (per-round steps)
};

constexpr std::uint32_t trace_bit(TraceCat c) {
  return 1u << static_cast<unsigned>(c);
}

constexpr std::uint32_t kTraceAllCategories =
    trace_bit(TraceCat::kFabric) | trace_bit(TraceCat::kConn) |
    trace_bit(TraceCat::kMsg) | trace_bit(TraceCat::kColl);

[[nodiscard]] const char* to_string(TraceCat c);

/// Tracing knobs carried by mpi::JobOptions (mirrors how FaultConfig is
/// threaded through). Disabled by default; enabling it never changes
/// virtual time.
struct TraceConfig {
  bool enabled = false;
  /// Bitmask of trace_bit(TraceCat) values; defaults to everything.
  std::uint32_t categories = kTraceAllCategories;
  /// When non-empty, World::run_job writes Chrome trace-event JSON here
  /// after the run completes.
  std::string path;
};

/// Identifies an open span; 0 is the null span (tracing off or category
/// masked), accepted and ignored by end_span().
using TraceSpanId = std::uint32_t;

class Tracer {
 public:
  /// One recorded event. Fixed-size POD so chunks are allocation-stable;
  /// exposed for tests and tools that walk the raw stream.
  struct Event {
    SimTime ts = 0;        // virtual start time (ns)
    SimTime dur = 0;       // span duration (ns); 0 for instants/counters
    std::int64_t a0 = 0;   // event-specific argument (bytes, depth, ...)
    std::int64_t a1 = 0;   // second argument (tag, round, attempt, ...)
    Stats::Counter name;   // interned event name
    std::int32_t rank = -1;
    std::int32_t peer = -1;
    TraceCat cat = TraceCat::kFabric;
    char ph = 'i';         // Chrome phase: 'X' span, 'i' instant, 'C' counter
    bool open = false;     // span begun but not yet ended
  };
  static_assert(sizeof(SimTime) == 8);

  Tracer() = default;
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Arms the tracer. `engine` supplies virtual timestamps (via
  /// Process::current_time, so events carry the emitting process's local
  /// clock). A disabled config leaves every record call a no-op.
  void configure(const TraceConfig& config, Engine* engine);

  [[nodiscard]] bool enabled() const { return mask_ != 0; }

  /// The one hot-path question: is this category being recorded?
  /// Call sites gate argument marshalling on this.
  [[nodiscard]] bool on(TraceCat c) const { return (mask_ & trace_bit(c)) != 0; }

  /// Records a point event at the current virtual time.
  void instant(TraceCat cat, Stats::Counter name, int rank, int peer = -1,
               std::int64_t a0 = 0, std::int64_t a1 = 0) {
    if (!on(cat)) return;
    record('i', cat, name, rank, peer, now(), 0, a0, a1, false);
  }

  /// Records a point event with an explicit timestamp (for layers like
  /// the fabric that compute future arrival times up front).
  void instant_at(TraceCat cat, Stats::Counter name, int rank, int peer,
                  SimTime ts, std::int64_t a0 = 0, std::int64_t a1 = 0) {
    if (!on(cat)) return;
    record('i', cat, name, rank, peer, ts, 0, a0, a1, false);
  }

  /// Opens a span at the current virtual time. Returns 0 when the
  /// category is off; end_span(0) is a no-op, so call sites never branch.
  [[nodiscard]] TraceSpanId begin_span(TraceCat cat, Stats::Counter name,
                                       int rank, int peer = -1,
                                       std::int64_t a0 = 0,
                                       std::int64_t a1 = 0) {
    if (!on(cat)) return 0;
    record('X', cat, name, rank, peer, now(), 0, a0, a1, true);
    return static_cast<TraceSpanId>(count_);  // 1-based index of the event
  }

  /// Closes a span, stamping its duration from the current virtual time.
  void end_span(TraceSpanId id) {
    if (id == 0) return;
    Event& e = at(id - 1);
    e.dur = now() - e.ts;
    e.open = false;
  }

  /// Records a complete span whose interval is already known.
  void complete(TraceCat cat, Stats::Counter name, int rank, int peer,
                SimTime ts, SimTime dur, std::int64_t a0 = 0,
                std::int64_t a1 = 0) {
    if (!on(cat)) return;
    record('X', cat, name, rank, peer, ts, dur, a0, a1, false);
  }

  /// Records a counter sample (e.g. unexpected-queue depth) at the
  /// current virtual time.
  void counter(TraceCat cat, Stats::Counter name, int rank,
               std::int64_t value) {
    if (!on(cat)) return;
    record('C', cat, name, rank, -1, now(), 0, value, 0, false);
  }

  // --- Introspection (tests, exporters) -------------------------------

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] const Event& event(std::size_t i) const {
    return chunks_[i >> kChunkShift]->events[i & (kChunkSlots - 1)];
  }
  /// Number of chunk allocations performed; stays 0 while disabled.
  [[nodiscard]] std::size_t chunk_allocations() const {
    return chunk_allocations_;
  }

  /// One line per event, in record order, every field printed — the
  /// golden-diffable digest. Identically-seeded runs produce identical
  /// digests byte for byte.
  [[nodiscard]] std::string digest() const;

  /// Chrome trace-event JSON (chrome://tracing, Perfetto). pid = rank,
  /// tid = category lane; timestamps in microseconds with the nanosecond
  /// remainder as three fixed decimals, so output is deterministic.
  void write_chrome_json(std::ostream& os) const;

  /// Convenience wrapper; returns false if the file cannot be opened.
  bool write_chrome_json_file(const std::string& path) const;

  /// Drops all recorded events (chunk storage is returned to the pool).
  void clear();

 private:
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

  // Chunk storage comes from the thread-local block pool, like the
  // engine's event slabs: warm pages, no per-run allocation churn.
  struct Chunk {
    Event events[kChunkSlots];

    static void* operator new(std::size_t bytes) {
      return detail::pool_alloc(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      detail::pool_free(p, bytes);
    }
  };

  [[nodiscard]] SimTime now() const;

  Event& at(std::size_t i) {
    return chunks_[i >> kChunkShift]->events[i & (kChunkSlots - 1)];
  }

  void record(char ph, TraceCat cat, Stats::Counter name, int rank, int peer,
              SimTime ts, SimTime dur, std::int64_t a0, std::int64_t a1,
              bool open);

  std::uint32_t mask_ = 0;  // 0 while disabled: on() is one AND + compare
  Engine* engine_ = nullptr;
  std::vector<Chunk*> chunks_;
  std::size_t count_ = 0;
  std::size_t chunk_allocations_ = 0;
};

}  // namespace odmpi::sim
