// The discrete-event engine.
//
// A single global queue of (time, sequence, action) events, processed in
// strictly nondecreasing (time, sequence) order. Determinism: ties in time
// are broken by insertion sequence, and nothing in the simulation consults
// wall-clock time or unseeded randomness.
//
// Hot-path layout (see DESIGN.md section 9): callables live in a chunked
// slab of reusable slots (SmallFn in-place, no allocation for small
// captures, stable addresses so events fire without being moved); a 4-ary
// indexed min-heap of 16-byte (time, seq|slot) entries orders them. A
// dense slot -> position index gives O(log n) true cancellation —
// no tombstones, and nothing to scan at pop time. EventIds carry a
// per-slot generation, so a stale id (fired, cancelled, or slot since
// reused) is detected exactly.
//
// Sorted-run fast path: while events are scheduled in nondecreasing time
// order (the common discrete-event pattern), the entry array is simply
// kept sorted — which is itself a valid heap — and pop is an O(1) head
// advance. The first out-of-order insert or cancellation switches to
// ordinary sift-based heap maintenance rooted at the current head, with
// no data movement; sorted mode resumes when the queue drains. The pop
// order is the strict (time, seq) order in both modes.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/pool_alloc.h"
#include "src/sim/small_fn.h"
#include "src/sim/time.h"

namespace odmpi::sim {

/// Opaque id that can be used to cancel a scheduled event. Encodes the
/// event's slab slot and a generation validating that the slot still
/// holds this event.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  ~Engine() {
    // The engine's arrays and slabs free into the thread-local block pool.
    // Destroying an Engine (and hence a World) on a different thread than
    // the one that ran it would drain its blocks into the wrong thread's
    // arena — the sweep runner guarantees same-thread teardown, and this
    // assert keeps other callers honest.
    assert(pool_thread_ == detail::pool_thread_id() &&
           "Engine destroyed on a different thread than it ran on");
  }

  /// Current global virtual time: the timestamp of the event being
  /// processed (or of the last processed event while between events).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute virtual time `t` (>= now()).
  EventId schedule_at(SimTime t, SmallFn action);

  /// Schedules `action` `delay` after the current global time.
  EventId schedule_after(SimTime delay, SmallFn action);

  /// Cancels a previously scheduled event. Returns false if the event has
  /// already fired or was already cancelled (stale ids are rejected by
  /// the generation check, never silently accepted).
  bool cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final virtual time.
  SimTime run();

  /// Runs until the queue is empty or virtual time would exceed
  /// `deadline`; events beyond the deadline remain queued.
  SimTime run_until(SimTime deadline);

  /// Number of events processed so far (for tests and perf benches).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Number of live events currently queued. Cancelled events leave the
  /// queue immediately and are not counted.
  [[nodiscard]] std::size_t events_pending() const {
    return heap_.size() - base_;
  }

 private:
  // Entry keys pack (sequence << 24) | slot so the sift loops compare one
  // word: sequences are unique, so the slot bits never decide an order.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq =
      (std::uint64_t{1} << (64 - kSlotBits)) - 1;
  static constexpr std::uint32_t kNotQueued = 0xFFFFFFFFu;

  // Slab chunk: stable addresses, so growth never moves a callable and
  // events are invoked in place. 1024 slots * 64 B = 64 KiB per chunk,
  // sized to come from the thread-local block pool (warm pages, no
  // per-engine fault churn).
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
  struct Chunk {
    SmallFn fns[kChunkSlots];

    static void* operator new(std::size_t bytes) {
      return detail::pool_alloc(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      detail::pool_free(p, bytes);
    }
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t key;  // (seq << kSlotBits) | slot
  };
  static_assert(sizeof(HeapEntry) == 16);

  /// Strict event order: (time, insertion sequence).
  static bool entry_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  SmallFn& fn_of(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift]->fns[slot & (kChunkSlots - 1)];
  }

  // Per-slot bookkeeping, one cache-line-friendly record: the generation
  // validating EventIds and the slot's current heap position.
  struct SlotMeta {
    std::uint32_t gen;
    std::uint32_t pos;
  };

  void heap_set(std::uint32_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    meta_[e.key & kSlotMask].pos = pos;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void push_entry(SimTime t, std::uint32_t slot);
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void heap_remove(std::uint32_t pos);
  void renumber_seqs();
  bool pop_and_fire();

  template <typename T>
  using PoolVec = std::vector<T, detail::PoolAllocator<T>>;

  std::vector<std::unique_ptr<Chunk>> chunks_;  // slab; slots are reused
  PoolVec<SlotMeta> meta_;  // per-slot generation + heap position
  PoolVec<std::uint32_t> free_slots_;
  PoolVec<HeapEntry> heap_;  // entries [base_, size): sorted run or 4-ary heap
  std::uint32_t base_ = 0;   // head of the live window / heap root position
  bool sorted_ = true;       // true while the live window is fully sorted
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_processed_ = 0;
  // Captured at construction; checked at destruction (debug builds).
  [[maybe_unused]] std::uintptr_t pool_thread_ = detail::pool_thread_id();
};

}  // namespace odmpi::sim
