// The discrete-event engine.
//
// A single global queue of (time, sequence, action) events, processed in
// strictly nondecreasing (time, sequence) order. Determinism: ties in time
// are broken by insertion sequence, and nothing in the simulation consults
// wall-clock time or unseeded randomness.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace odmpi::sim {

/// Opaque id that can be used to cancel a scheduled event.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current global virtual time: the timestamp of the event being
  /// processed (or of the last processed event while between events).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute virtual time `t` (>= now()).
  EventId schedule_at(SimTime t, std::function<void()> action);

  /// Schedules `action` `delay` after the current global time.
  EventId schedule_after(SimTime delay, std::function<void()> action);

  /// Cancels a previously scheduled event. Returns false if the event has
  /// already fired or was already cancelled.
  bool cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final virtual time.
  SimTime run();

  /// Runs until the queue is empty or virtual time would exceed
  /// `deadline`; events beyond the deadline remain queued.
  SimTime run_until(SimTime deadline);

  /// Number of events processed so far (for tests and perf benches).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Number of events currently queued (including cancelled tombstones).
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    EventId id;  // also the tie-break sequence number
    std::function<void()> action;

    // std::priority_queue is a max-heap; invert for earliest-first.
    bool operator<(const Event& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  bool pop_and_fire();

  std::priority_queue<Event> queue_;
  std::vector<EventId> cancelled_;  // sorted insertion not needed; see .cpp
  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_processed_ = 0;
};

}  // namespace odmpi::sim
