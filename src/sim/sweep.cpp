#include "src/sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace odmpi::sim {

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Executes one config to completion on the calling thread and fills its
// submission-indexed slot. The World lives and dies entirely on this
// thread (Engine asserts same-thread teardown), so its pool blocks recycle
// into this thread's arena for the next World the worker picks up.
void execute(const SweepConfig& cfg, int worker, SweepItemResult& out) {
  out.label = cfg.label;
  out.worker = worker;
  const double t0 = wall_now();
  try {
    mpi::World world(cfg.nranks, cfg.options);
    out.result = world.run_job(cfg.body);
    out.result.trace = nullptr;  // dies with the World below
    out.metrics = world.metrics();
    out.mean_init_us = out.metrics.mean_init_us;
    out.mean_vis_per_process = out.metrics.mean_vis_per_process;
    if (cfg.collect_stats) out.stats = world.aggregate_stats();
    if (cfg.collect_digest) out.digest = world.tracer().digest();
    if (cfg.collect_reports) {
      out.reports.reserve(static_cast<std::size_t>(cfg.nranks));
      for (int r = 0; r < cfg.nranks; ++r) out.reports.push_back(world.report(r));
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
  out.wall_seconds = wall_now() - t0;
}

// One work-stealing deque per worker. Tasks are whole Worlds (hundreds of
// microseconds and up), so a mutex per deque costs nothing measurable;
// the deques exist to keep round-robin locality (a worker drains its own
// share front-to-front, preserving warm-arena reuse) while letting idle
// workers steal from the back of loaded ones.
struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> q;
};

}  // namespace

SweepRunner::SweepRunner(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads_ = threads;
}

std::size_t SweepRunner::submit(SweepConfig config) {
  configs_.push_back(std::move(config));
  return configs_.size() - 1;
}

SweepReport SweepRunner::run() {
  std::vector<SweepConfig> configs = std::move(configs_);
  configs_.clear();

  SweepReport report;
  report.items.resize(configs.size());
  const int nworkers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threads_), std::max<std::size_t>(configs.size(), 1)));
  report.threads = nworkers;
  const double t0 = wall_now();

  if (configs.empty()) return report;

  if (nworkers == 1) {
    // Degenerate sweep: run inline on the caller's thread. Identical
    // results (each World is deterministic in isolation), and the caller's
    // pool arena stays warm for whatever it runs next.
    for (std::size_t i = 0; i < configs.size(); ++i) {
      execute(configs[i], 0, report.items[i]);
    }
  } else {
    std::vector<WorkerQueue> queues(static_cast<std::size_t>(nworkers));
    for (std::size_t i = 0; i < configs.size(); ++i) {
      queues[i % static_cast<std::size_t>(nworkers)].q.push_back(i);
    }
    std::atomic<std::size_t> remaining{configs.size()};

    auto worker_main = [&](int me) {
      const auto self = static_cast<std::size_t>(me);
      while (remaining.load(std::memory_order_acquire) > 0) {
        std::size_t task = 0;
        bool got = false;
        {
          WorkerQueue& mine = queues[self];
          std::lock_guard<std::mutex> lock(mine.mu);
          if (!mine.q.empty()) {
            task = mine.q.front();
            mine.q.pop_front();
            got = true;
          }
        }
        if (!got) {
          // Steal from the back of the most loaded victim.
          for (std::size_t k = 1; k < queues.size() && !got; ++k) {
            WorkerQueue& victim = queues[(self + k) % queues.size()];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.q.empty()) {
              task = victim.q.back();
              victim.q.pop_back();
              got = true;
            }
          }
        }
        if (!got) {
          // Queues are empty but Worlds are still in flight on other
          // workers; nothing to steal until one finishes (it won't spawn
          // more work). Yield rather than spin hard.
          std::this_thread::yield();
          continue;
        }
        execute(configs[task], me, report.items[task]);
        remaining.fetch_sub(1, std::memory_order_release);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nworkers));
    for (int w = 0; w < nworkers; ++w) pool.emplace_back(worker_main, w);
    for (std::thread& t : pool) t.join();
  }

  // Aggregate in submission order so the report is identical for any
  // thread count.
  bool first = true;
  double completion_sum = 0;
  for (const SweepItemResult& item : report.items) {
    if (!item.error.empty()) {
      ++report.errored;
      continue;
    }
    switch (item.result.status) {
      case mpi::RunStatus::kOk: ++report.ok; break;
      case mpi::RunStatus::kDeadline: ++report.deadline; break;
      case mpi::RunStatus::kRankFailed: ++report.rank_failed; break;
    }
    const SimTime ct = item.result.completion_time;
    if (first) {
      report.completion_min = report.completion_max = ct;
      first = false;
    } else {
      report.completion_min = std::min(report.completion_min, ct);
      report.completion_max = std::max(report.completion_max, ct);
    }
    completion_sum += static_cast<double>(ct);
    report.merged_stats.merge(item.stats);
  }
  const int counted = report.ok + report.deadline + report.rank_failed;
  if (counted > 0) report.completion_mean = completion_sum / counted;
  report.wall_seconds = wall_now() - t0;
  return report;
}

SweepReport SweepRunner::run_all(std::vector<SweepConfig> configs,
                                 int threads) {
  SweepRunner runner(threads);
  for (SweepConfig& c : configs) runner.submit(std::move(c));
  return runner.run();
}

}  // namespace odmpi::sim
