// Parallel multi-World sweep runner.
//
// The paper's results are all parameter sweeps — connection model x
// message size x rank count x NIC profile — and the test batteries
// (fault seeds, eviction budgets, rank-kill grids) are sweeps too. Each
// World is a fully deterministic single-threaded simulation; Worlds share
// nothing mutable (the Stats intern table is lock-free for readers, the
// process/fiber "current" registers are thread_local, and the block pool
// is one arena per thread). So N configurations can run on N OS threads
// with zero coordination beyond handing out tasks.
//
// SweepRunner is a small work-stealing thread pool: one World per task,
// per-thread BlockPool arenas warm across the Worlds a thread executes
// back-to-back, results written into submission-indexed slots. The
// returned SweepReport is therefore deterministic and submission-ordered
// regardless of thread count or interleaving: running with threads=8
// yields bit-identical per-config results to threads=1 and to a plain
// sequential loop (sweep_test.cpp holds this as a regression test).
//
// Thread-safety contract for callers: a config's `body` runs on an
// arbitrary worker thread, concurrently with other configs' bodies. A
// body may freely touch state owned by its own config (the usual capture
// of per-config output buffers) but must not share mutable state across
// configs without its own synchronization.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/mpi/runtime.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace odmpi::sim {

/// One World to run: the shape of World(nranks, options).run_job(body).
struct SweepConfig {
  std::string label;  ///< carried through to the item result, for reports
  int nranks = 2;
  mpi::JobOptions options;
  std::function<void(mpi::Comm&)> body;

  /// Aggregate this World's device stats into the item and the report's
  /// merged table. Off by default: stats aggregation walks every rank.
  bool collect_stats = false;

  /// Record the World's trace digest (requires options.trace.enabled).
  /// The digest is computed before the World is destroyed, so sweep items
  /// can be golden-diffed without keeping Worlds alive.
  bool collect_digest = false;

  /// Copy every rank's RankReport into the item result.
  bool collect_reports = false;
};

/// Outcome of one config. `result.trace` is always nulled: the World (and
/// its tracer) is destroyed on the worker thread that ran it — ask for
/// collect_digest when the trace content matters.
struct SweepItemResult {
  std::string label;
  mpi::RunResult result;
  /// The World's cross-rank aggregates, captured before teardown.
  mpi::WorldMetrics metrics;
  /// Convenience copies of the two most-read metrics fields (kept for the
  /// many sweep consumers that only ever chart these).
  double mean_init_us = 0;
  double mean_vis_per_process = 0;
  Stats stats;          ///< aggregate device stats (collect_stats)
  std::string digest;   ///< trace digest (collect_digest)
  std::vector<mpi::RankReport> reports;  ///< per-rank (collect_reports)
  /// Non-empty if constructing or running the World threw on the worker
  /// thread (e.g. an invalid config); `result` is then default. Note an
  /// exception thrown *inside a rank body* cannot be captured here — it
  /// unwinds a fiber stack and terminates, exactly as without the runner.
  std::string error;
  double wall_seconds = 0;  ///< host time this World took to execute
  int worker = -1;          ///< worker thread index (observability only)

  [[nodiscard]] bool ok() const {
    return error.empty() && result.status == mpi::RunStatus::kOk;
  }
};

/// Aggregated outcome of a sweep, submission-ordered.
struct SweepReport {
  std::vector<SweepItemResult> items;

  // Status counts across items.
  int ok = 0;
  int deadline = 0;
  int rank_failed = 0;
  int errored = 0;  ///< items whose body threw

  // Virtual completion-time stats across items (min/mean/max).
  SimTime completion_min = 0;
  SimTime completion_max = 0;
  double completion_mean = 0;

  /// Merged device stats across every collect_stats item.
  Stats merged_stats;

  double wall_seconds = 0;  ///< host time for the whole sweep
  int threads = 0;          ///< worker threads actually used

  [[nodiscard]] bool all_ok() const {
    return deadline == 0 && errored == 0;
  }
};

class SweepRunner {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit SweepRunner(int threads = 0);

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Queues a config; returns its submission index (== its slot in
  /// SweepReport::items). Must not be called while run() is executing.
  std::size_t submit(SweepConfig config);

  /// Executes every submitted config and returns the aggregated report.
  /// Reusable: the submission list is consumed, and more configs may be
  /// submitted for a subsequent run().
  SweepReport run();

  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] std::size_t pending() const { return configs_.size(); }

  /// One-call form: submit everything, run, report.
  static SweepReport run_all(std::vector<SweepConfig> configs,
                             int threads = 0);

 private:
  int threads_;
  std::vector<SweepConfig> configs_;
};

}  // namespace odmpi::sim
