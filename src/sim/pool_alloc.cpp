#include "src/sim/pool_alloc.h"

#include <array>
#include <bit>
#include <new>
#include <vector>

namespace odmpi::sim::detail {

namespace {

// Blocks >= 64 KiB are cached; smaller requests go straight to malloc,
// which recycles them from its own bins without page churn.
constexpr std::size_t kMinPooledBytes = std::size_t{1} << 16;
constexpr std::size_t kMinPooledShift = 16;
constexpr std::size_t kBuckets = 14;      // 64 KiB .. 512 MiB
constexpr std::size_t kMaxPerBucket = 4;  // cache depth per size class

struct BlockPool {
  std::array<std::vector<void*>, kBuckets> buckets;
  PoolStats stats;
};

// Leaked intentionally: engines living in thread-local or static storage
// may deallocate during thread teardown, after a destructed pool would
// already be gone.
BlockPool& pool() {
  static thread_local BlockPool* p = new BlockPool;
  return *p;
}

// Bucket index for a request, rounding the size up to a power of two.
std::size_t bucket_of(std::size_t bytes) {
  const auto width = static_cast<std::size_t>(std::bit_width(bytes - 1));
  return (width > kMinPooledShift) ? width - kMinPooledShift : 0;
}

}  // namespace

void* pool_alloc(std::size_t bytes) {
  if (bytes < kMinPooledBytes) return ::operator new(bytes);
  const std::size_t b = bucket_of(bytes);
  if (b >= kBuckets) return ::operator new(bytes);
  BlockPool& pl = pool();
  auto& bucket = pl.buckets[b];
  ++pl.stats.allocs;
  if (!bucket.empty()) {
    void* p = bucket.back();
    bucket.pop_back();
    ++pl.stats.reuses;
    --pl.stats.blocks_cached;
    pl.stats.cached_bytes -= kMinPooledBytes << b;
    return p;
  }
  ++pl.stats.fresh;
  return ::operator new(kMinPooledBytes << b);
}

void pool_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes >= kMinPooledBytes) {
    const std::size_t b = bucket_of(bytes);
    if (b < kBuckets) {
      BlockPool& pl = pool();
      auto& bucket = pl.buckets[b];
      if (bucket.size() < kMaxPerBucket) {
        bucket.push_back(p);
        ++pl.stats.frees_cached;
        ++pl.stats.blocks_cached;
        pl.stats.cached_bytes += kMinPooledBytes << b;
        if (pl.stats.cached_bytes > pl.stats.peak_cached_bytes) {
          pl.stats.peak_cached_bytes = pl.stats.cached_bytes;
        }
        return;
      }
      ++pl.stats.frees_released;
    }
  }
  ::operator delete(p);
}

PoolStats pool_stats() { return pool().stats; }

std::uintptr_t pool_thread_id() {
  return reinterpret_cast<std::uintptr_t>(&pool());
}

}  // namespace odmpi::sim::detail
