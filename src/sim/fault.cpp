#include "src/sim/fault.h"

#include <algorithm>

namespace odmpi::sim {

namespace {

// Interned once: decide() runs per simulated packet.
const Stats::Counter kBrownoutDrops = Stats::counter("fault.brownout_drops");
const Stats::Counter kRankKillDrops = Stats::counter("fault.rank_kill_drops");
const Stats::Counter kDroppedData = Stats::counter("fault.dropped_data");
const Stats::Counter kDroppedControl = Stats::counter("fault.dropped_control");
const Stats::Counter kDuplicated = Stats::counter("fault.duplicated");
const Stats::Counter kDelayed = Stats::counter("fault.delayed");

}  // namespace

void FaultPlan::mark_node_dead(int node) {
  if (!node_dead(node)) dead_nodes_.push_back(node);
}

FaultDecision FaultPlan::decide(int src, int dst, FaultClass cls,
                                SimTime when) {
  FaultDecision d;

  // A dead endpoint loses the packet outright, both directions: the
  // corpse neither transmits (its armed timers still fire, but nothing
  // leaves the node) nor receives. No Rng draw — deaths are part of the
  // schedule, not the noise, so a kills-only plan stays draw-free.
  if (!dead_nodes_.empty() && (node_dead(src) || node_dead(dst))) {
    d.drop = true;
    stats_.add(kRankKillDrops);
    return d;
  }

  // NIC brownouts: either endpoint off the wire loses the packet outright
  // (no Rng draw — windows are part of the schedule, not the noise).
  for (const BrownoutWindow& w : config_.brownouts) {
    if ((w.node == src || w.node == dst) && when >= w.start && when < w.end) {
      d.drop = true;
      stats_.add(kBrownoutDrops);
      return d;
    }
  }

  double drop_rate = cls == FaultClass::kData ? config_.data_drop_rate
                                              : config_.control_drop_rate;
  for (const LinkFault& lf : config_.link_faults) {
    if (lf.src == src && lf.dst == dst) {
      drop_rate = std::max(drop_rate, lf.drop_rate);
    }
  }

  // Fixed draw order (drop, duplicate, delay) keeps the stream alignment
  // identical across replays regardless of which faults actually fire.
  if (drop_rate > 0.0 && rng_.next_bool(drop_rate)) {
    d.drop = true;
    stats_.add(cls == FaultClass::kData ? kDroppedData : kDroppedControl);
    return d;
  }
  if (config_.duplicate_rate > 0.0 && rng_.next_bool(config_.duplicate_rate)) {
    d.duplicate = true;
    d.duplicate_lag = config_.duplicate_lag;
    stats_.add(kDuplicated);
  }
  if (config_.delay_rate > 0.0 && rng_.next_bool(config_.delay_rate)) {
    d.extra_delay = 1 + static_cast<SimTime>(
                            rng_.next_below(static_cast<std::uint64_t>(
                                std::max<SimTime>(1, config_.delay_jitter_max))));
    stats_.add(kDelayed);
  }
  return d;
}

}  // namespace odmpi::sim
