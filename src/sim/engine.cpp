#include "src/sim/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace odmpi::sim {

EventId Engine::schedule_at(SimTime t, std::function<void()> action) {
  if (t < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(action)});
  return id;
}

EventId Engine::schedule_after(SimTime delay, std::function<void()> action) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(action));
}

bool Engine::cancel(EventId id) {
  // Lazy cancellation: remember the id and drop the event when popped.
  // The cancelled list stays tiny in practice (timeouts that fired early),
  // so a linear scan at pop time is fine and keeps the queue simple.
  if (id == 0 || id >= next_id_) return false;
  cancelled_.push_back(id);
  return true;
}

bool Engine::pop_and_fire() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_processed_;
    ev.action();
    return true;
  }
  return false;
}

SimTime Engine::run() {
  while (pop_and_fire()) {
  }
  return now_;
}

SimTime Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    if (!pop_and_fire()) break;
  }
  if (now_ < deadline && queue_.empty()) {
    // Quiescent before the deadline: advance the clock to the deadline so
    // callers can rely on now() == deadline after a bounded run.
    now_ = deadline;
  }
  return now_;
}

}  // namespace odmpi::sim
