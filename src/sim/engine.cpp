#include "src/sim/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace odmpi::sim {

namespace {

constexpr std::uint32_t slot_of(EventId id) {
  return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
}
constexpr std::uint32_t gen_of(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}
constexpr EventId make_id(std::uint32_t gen, std::uint32_t slot) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

}  // namespace

std::uint32_t Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(meta_.size());
  if (idx > kSlotMask) {
    throw std::length_error("Engine: too many pending events");
  }
  if ((idx & (kChunkSlots - 1)) == 0) {
    chunks_.push_back(std::make_unique<Chunk>());
  }
  meta_.push_back(SlotMeta{1, kNotQueued});
  return idx;
}

void Engine::release_slot(std::uint32_t idx) {
  fn_of(idx).reset();
  if (++meta_[idx].gen == 0) meta_[idx].gen = 1;  // keep ids != EventId 0
  free_slots_.push_back(idx);
}

EventId Engine::schedule_at(SimTime t, SmallFn action) {
  if (t < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  if (next_seq_ > kMaxSeq) renumber_seqs();
  const std::uint32_t idx = acquire_slot();
  fn_of(idx) = std::move(action);
  push_entry(t, idx);
  return make_id(meta_[idx].gen, idx);
}

EventId Engine::schedule_after(SimTime delay, SmallFn action) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(action));
}

void Engine::push_entry(SimTime t, std::uint32_t slot) {
  const std::uint64_t key = (next_seq_++ << kSlotBits) | slot;
  const auto pos = static_cast<std::uint32_t>(heap_.size());
  // A sorted run stays sorted for nondecreasing times (keys are already
  // monotonic); an out-of-order insert switches to sift-based
  // maintenance over the same array, which is a valid heap as-is.
  if (sorted_ && pos != base_ && t < heap_.back().time) sorted_ = false;
  heap_.push_back(HeapEntry{t, key});
  meta_[slot].pos = pos;
  if (!sorted_) sift_up(pos);
}

bool Engine::cancel(EventId id) {
  const std::uint32_t idx = slot_of(id);
  if (idx >= meta_.size()) return false;
  if (meta_[idx].gen != gen_of(id) || meta_[idx].pos == kNotQueued) {
    return false;
  }
  sorted_ = false;  // a sorted window is a valid heap; remove by sifting
  heap_remove(meta_[idx].pos);
  release_slot(idx);
  return true;
}

void Engine::sift_up(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > base_) {
    const std::uint32_t parent = base_ + (pos - base_ - 1) / 4;
    if (!entry_before(e, heap_[parent])) break;
    heap_set(pos, heap_[parent]);
    pos = parent;
  }
  heap_set(pos, e);
}

void Engine::sift_down(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  const auto n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first = base_ + 4 * (pos - base_) + 1;
    if (first >= n) break;
    std::uint32_t best = first;
    const std::uint32_t last = std::min(first + 4, n);
    for (std::uint32_t c = first + 1; c < last; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], e)) break;
    heap_set(pos, heap_[best]);
    pos = best;
  }
  heap_set(pos, e);
}

void Engine::heap_remove(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  meta_[heap_[pos].key & kSlotMask].pos = kNotQueued;
  if (pos != last) {
    heap_set(pos, heap_[last]);
    heap_.pop_back();
    const auto moved = static_cast<std::uint32_t>(heap_[pos].key & kSlotMask);
    sift_up(pos);
    if (meta_[moved].pos == pos) sift_down(pos);
  } else {
    heap_.pop_back();
  }
  if (base_ == heap_.size()) {
    heap_.clear();
    base_ = 0;
    sorted_ = true;
  }
}

// Sequence numbers have 40 bits; on the (theoretical) wraparound, compact
// the live window back to seq 1.. in the current strict order.
void Engine::renumber_seqs() {
  std::vector<HeapEntry> live(heap_.begin() + base_, heap_.end());
  std::sort(live.begin(), live.end(), entry_before);
  heap_.clear();
  base_ = 0;
  sorted_ = true;
  next_seq_ = 1;
  for (const HeapEntry& e : live) {
    const auto slot = static_cast<std::uint32_t>(e.key & kSlotMask);
    heap_.push_back(HeapEntry{e.time, (next_seq_++ << kSlotBits) | slot});
    meta_[slot].pos = static_cast<std::uint32_t>(heap_.size() - 1);
  }
}

bool Engine::pop_and_fire() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[base_];
  const auto s = static_cast<std::uint32_t>(top.key & kSlotMask);
  assert(top.time >= now_);
  now_ = top.time;
  ++events_processed_;
  if (sorted_) {
    meta_[s].pos = kNotQueued;
    if (++base_ == heap_.size()) {
      heap_.clear();
      base_ = 0;
    }
  } else {
    heap_remove(base_);
  }
  // Retire the id before invoking: the action may cancel its own id
  // (which must now report false) or schedule new events (which must not
  // reuse this slot while its callable is still running — it stays off
  // the free list until after the call).
  if (++meta_[s].gen == 0) meta_[s].gen = 1;
  SmallFn& fn = fn_of(s);
  fn();  // invoked in place; chunk addresses are stable across growth
  fn.reset();
  free_slots_.push_back(s);
  return true;
}

SimTime Engine::run() {
  while (pop_and_fire()) {
  }
  return now_;
}

SimTime Engine::run_until(SimTime deadline) {
  while (!heap_.empty() && heap_[base_].time <= deadline) {
    if (!pop_and_fire()) break;
  }
  if (now_ < deadline && heap_.empty()) {
    // Quiescent before the deadline: advance the clock to the deadline so
    // callers can rely on now() == deadline after a bounded run.
    now_ = deadline;
  }
  return now_;
}

}  // namespace odmpi::sim
