// Virtual time for the discrete-event simulation.
//
// All simulated latencies in the library are expressed as SimTime. The unit
// is the nanosecond: fine enough to express sub-microsecond NIC costs
// (e.g. per-VI doorbell polling on Berkeley VIA) without floating point,
// wide enough (int64) for ~292 simulated years.
#pragma once

#include <cstdint>

namespace odmpi::sim {

/// Virtual simulation time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Handy constructors so cost models read like the paper ("40 us wake-up").
constexpr SimTime nanoseconds(std::int64_t n) { return n; }
constexpr SimTime microseconds(std::int64_t us) { return us * 1000; }
constexpr SimTime milliseconds(std::int64_t ms) { return ms * 1000 * 1000; }
constexpr SimTime seconds(std::int64_t s) { return s * 1000 * 1000 * 1000; }

/// Fractional helpers used by cost models (e.g. 0.4 us per extra VI).
constexpr SimTime microseconds_f(double us) {
  return static_cast<SimTime>(us * 1000.0);
}

constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1000.0; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(SimTime t) { return static_cast<double>(t) / 1e9; }

}  // namespace odmpi::sim
