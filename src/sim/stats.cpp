#include "src/sim/stats.h"

#include <atomic>
#include <cassert>
#include <mutex>
#include <unordered_map>

namespace odmpi::sim {

namespace {

// Process-wide intern table, shared by every World in the process —
// including Worlds running concurrently on sweep-runner threads.
//
// Writes (first-time registration of a name) take the mutex; they are
// cold — hot code holds Counter handles and never comes here. Reads
// (name_of / all) are lock-free: name storage is chunked and append-only
// so a slot's address never changes once written, and `published` is
// release-stored only after the slot is fully constructed, so an
// acquire-load of `published` makes every id below it safe to read.
// Leaked intentionally so handles stay valid during static/thread-local
// teardown.
struct InternTable {
  static constexpr std::uint32_t kChunkSize = 1024;
  static constexpr std::uint32_t kMaxChunks = 1024;  // 1M names, plenty

  std::mutex mu;  // guards ids + appends; readers never take it
  std::unordered_map<std::string, std::uint32_t> ids;
  std::atomic<std::string*> chunks[kMaxChunks] = {};
  std::atomic<std::uint32_t> published{0};

  /// Lock-free; valid for any id below published.load(acquire).
  [[nodiscard]] const std::string& name(std::uint32_t id) const {
    std::string* chunk = chunks[id / kChunkSize].load(std::memory_order_relaxed);
    return chunk[id % kChunkSize];
  }
};

InternTable& table() {
  static InternTable* t = new InternTable;
  return *t;
}

}  // namespace

Stats::Counter Stats::counter(std::string_view name) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  const std::uint32_t next = t.published.load(std::memory_order_relaxed);
  auto [it, inserted] = t.ids.try_emplace(std::string(name), next);
  if (inserted) {
    assert(next / InternTable::kChunkSize < InternTable::kMaxChunks &&
           "counter-name intern table full");
    std::atomic<std::string*>& slot = t.chunks[next / InternTable::kChunkSize];
    std::string* chunk = slot.load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new std::string[InternTable::kChunkSize];
      slot.store(chunk, std::memory_order_relaxed);
    }
    chunk[next % InternTable::kChunkSize] = it->first;
    t.published.store(next + 1, std::memory_order_release);
  }
  return Counter(it->second);
}

std::string Stats::name_of(Counter c) {
  InternTable& t = table();
  const std::uint32_t n = t.published.load(std::memory_order_acquire);
  return c.id_ < n ? t.name(c.id_) : std::string();
}

std::map<std::string, std::int64_t> Stats::all() const {
  std::map<std::string, std::int64_t> out;
  InternTable& t = table();
  const std::uint32_t n = t.published.load(std::memory_order_acquire);
  for (std::uint32_t id = 0; id < cells_.size(); ++id) {
    if (cells_[id].touched && id < n) out.emplace(t.name(id), cells_[id].value);
  }
  return out;
}

void Stats::merge(const Stats& other) {
  if (other.cells_.size() > cells_.size()) {
    cells_.resize(other.cells_.size());
  }
  for (std::uint32_t id = 0; id < other.cells_.size(); ++id) {
    if (other.cells_[id].touched) {
      cells_[id].value += other.cells_[id].value;
      cells_[id].touched = true;
    }
  }
}

}  // namespace odmpi::sim
