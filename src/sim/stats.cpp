#include "src/sim/stats.h"

#include <mutex>
#include <unordered_map>

namespace odmpi::sim {

namespace {

// Process-wide intern table. The mutex is cold-path only: hot code holds
// Counter handles and never comes here. Leaked intentionally so handles
// stay valid during static/thread-local teardown.
struct InternTable {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> ids;
  std::vector<std::string> names;
};

InternTable& table() {
  static InternTable* t = new InternTable;
  return *t;
}

}  // namespace

Stats::Counter Stats::counter(std::string_view name) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto [it, inserted] = t.ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(t.names.size()));
  if (inserted) t.names.push_back(it->first);
  return Counter(it->second);
}

std::string Stats::name_of(Counter c) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  // Returned by value: `names` may reallocate when later names intern.
  return c.id_ < t.names.size() ? t.names[c.id_] : std::string();
}

std::map<std::string, std::int64_t> Stats::all() const {
  std::map<std::string, std::int64_t> out;
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  for (std::uint32_t id = 0; id < cells_.size(); ++id) {
    if (cells_[id].touched) out.emplace(t.names[id], cells_[id].value);
  }
  return out;
}

void Stats::merge(const Stats& other) {
  if (other.cells_.size() > cells_.size()) {
    cells_.resize(other.cells_.size());
  }
  for (std::uint32_t id = 0; id < other.cells_.size(); ++id) {
    if (other.cells_[id].touched) {
      cells_[id].value += other.cells_[id].value;
      cells_[id].touched = true;
    }
  }
}

}  // namespace odmpi::sim
