#include "src/sim/stats.h"

// Header-only today; the translation unit anchors the target and leaves
// room for heavier reporting (percentile timers) without touching callers.
