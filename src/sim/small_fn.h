// A move-only callable with inline storage: the event engine's
// replacement for std::function<void()> on the schedule/fire fast path.
//
// Callables up to kInlineBytes that are suitably aligned and
// nothrow-move-constructible live inside the object — scheduling one
// performs no heap allocation. Larger or throwing-move callables fall
// back to a single heap allocation (rare: the simulator's events capture
// a `this` pointer and a couple of ids).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace odmpi::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  /// True when a callable of type F is stored in the inline buffer (no
  /// allocation). Exposed so tests can static_assert that the simulator's
  /// own event lambdas stay on the allocation-free path.
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(std::decay_t<F>) <= kInlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule_at call site.
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<F>) {
      ::new (storage()) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *static_cast<Fn**>(storage()) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(other.storage(), storage());
    other.ops_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(other.storage(), storage());
      other.ops_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(storage()); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the held callable lives in the inline buffer.
  [[nodiscard]] bool is_inline() const {
    return ops_ != nullptr && ops_->inline_stored;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst);  // move into dst, destroy src
    void (*destroy)(void*);
    bool inline_stored;
  };

  template <typename Fn>
  static void invoke_inline(void* p) {
    (*std::launder(static_cast<Fn*>(p)))();
  }
  template <typename Fn>
  static void relocate_inline(void* src, void* dst) {
    Fn* f = std::launder(static_cast<Fn*>(src));
    ::new (dst) Fn(std::move(*f));
    f->~Fn();
  }
  template <typename Fn>
  static void destroy_inline(void* p) {
    std::launder(static_cast<Fn*>(p))->~Fn();
  }

  template <typename Fn>
  static void invoke_heap(void* p) {
    (**static_cast<Fn**>(p))();
  }
  template <typename Fn>
  static void relocate_heap(void* src, void* dst) {
    *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
  }
  template <typename Fn>
  static void destroy_heap(void* p) {
    delete *static_cast<Fn**>(p);
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{&invoke_inline<Fn>, &relocate_inline<Fn>,
                                  &destroy_inline<Fn>, true};
  template <typename Fn>
  static constexpr Ops kHeapOps{&invoke_heap<Fn>, &relocate_heap<Fn>,
                                &destroy_heap<Fn>, false};

  void* storage() { return static_cast<void*>(storage_); }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace odmpi::sim
