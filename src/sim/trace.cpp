#include "src/sim/trace.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "src/sim/process.h"

namespace odmpi::sim {

const char* to_string(TraceCat c) {
  switch (c) {
    case TraceCat::kFabric:
      return "fabric";
    case TraceCat::kConn:
      return "conn";
    case TraceCat::kMsg:
      return "msg";
    case TraceCat::kColl:
      return "coll";
  }
  return "?";
}

Tracer::~Tracer() { clear(); }

void Tracer::configure(const TraceConfig& config, Engine* engine) {
  mask_ = config.enabled ? config.categories : 0;
  engine_ = engine;
}

SimTime Tracer::now() const {
  assert(engine_ != nullptr);
  return Process::current_time(*engine_);
}

void Tracer::record(char ph, TraceCat cat, Stats::Counter name, int rank,
                    int peer, SimTime ts, SimTime dur, std::int64_t a0,
                    std::int64_t a1, bool open) {
  if ((count_ >> kChunkShift) >= chunks_.size()) {
    chunks_.push_back(new Chunk);
    ++chunk_allocations_;
  }
  Event& e = at(count_++);
  e.ts = ts;
  e.dur = dur;
  e.a0 = a0;
  e.a1 = a1;
  e.name = name;
  e.rank = rank;
  e.peer = peer;
  e.cat = cat;
  e.ph = ph;
  e.open = open;
}

void Tracer::clear() {
  for (Chunk* c : chunks_) delete c;
  chunks_.clear();
  count_ = 0;
}

std::string Tracer::digest() const {
  std::string out;
  out.reserve(count_ * 80);
  char line[256];
  for (std::size_t i = 0; i < count_; ++i) {
    const Event& e = event(i);
    std::snprintf(line, sizeof(line),
                  "%c %s %s rank=%d peer=%d ts=%" PRId64 " dur=%" PRId64
                  " a0=%" PRId64 " a1=%" PRId64 "%s\n",
                  e.ph, to_string(e.cat), Stats::name_of(e.name).c_str(),
                  e.rank, e.peer, e.ts, e.dur, e.a0, e.a1,
                  e.open ? " open" : "");
    out += line;
  }
  return out;
}

namespace {

// Microseconds with the nanosecond remainder as exactly three decimals:
// deterministic output with no floating-point formatting in sight.
void put_us(std::ostream& os, SimTime ns) {
  if (ns < 0) {  // defensive: spans never run backwards, but clamp anyway
    os << 0;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  os << buf;
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < count_; ++i) {
    const Event& e = event(i);
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << Stats::name_of(e.name) << "\",\"cat\":\""
       << to_string(e.cat) << "\",\"ph\":\"" << e.ph << "\",\"ts\":";
    put_us(os, e.ts);
    if (e.ph == 'X') {
      os << ",\"dur\":";
      put_us(os, e.dur);  // spans still open at export get dur = 0
    }
    os << ",\"pid\":" << e.rank << ",\"tid\":"
       << static_cast<int>(e.cat);
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{";
    if (e.ph == 'C') {
      os << "\"value\":" << e.a0;
    } else {
      os << "\"peer\":" << e.peer << ",\"a0\":" << e.a0 << ",\"a1\":" << e.a1;
      if (e.open) os << ",\"open\":1";
    }
    os << "}}";
  }
  // Name the per-category lanes and per-rank processes so the viewer
  // reads "rank 0 / msg" instead of bare ids.
  std::int32_t max_rank = -1;
  for (std::size_t i = 0; i < count_; ++i) {
    if (event(i).rank > max_rank) max_rank = event(i).rank;
  }
  for (std::int32_t r = 0; r <= max_rank; ++r) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << r
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << r << "\"}}";
    for (int c = 0; c < 4; ++c) {
      os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << r
         << ",\"tid\":" << c << ",\"args\":{\"name\":\""
         << to_string(static_cast<TraceCat>(c)) << "\"}}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(out);
  return static_cast<bool>(out);
}

}  // namespace odmpi::sim
