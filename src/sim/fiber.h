// Cooperative fibers built on ucontext.
//
// Every simulated MPI rank runs as a fiber with its own stack. The engine
// resumes exactly one fiber at a time; a fiber returns control by calling
// Fiber::yield_to_scheduler(). There are no OS threads involved, so the
// whole simulation is single-threaded and deterministic, and a context
// switch is two swapcontext() calls (~100ns), cheap enough for the tens of
// millions of switches a NAS-class run performs.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include <ucontext.h>

namespace odmpi::sim {

/// A cooperative fiber. Non-copyable, non-movable (the ucontext records
/// the address of its stack and of the object itself).
class Fiber {
 public:
  /// Creates a fiber that will run `body` when first resumed.
  /// `stack_bytes` is rounded up to a multiple of 16.
  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the scheduler into this fiber. Returns when the fiber
  /// yields or its body returns. Must not be called from inside a fiber.
  void resume();

  /// Switches from the currently running fiber back to the scheduler.
  /// Must be called from inside a fiber.
  static void yield_to_scheduler();

  /// True once the fiber's body has returned. Resuming a finished fiber
  /// is a programming error (asserted).
  [[nodiscard]] bool finished() const { return finished_; }

  /// The fiber currently executing, or nullptr when in the scheduler.
  static Fiber* current();

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

 private:
  static void trampoline();

  std::function<void()> body_;
  // Default-initialized (not value-initialized) so no page of a stack is
  // touched until the fiber actually grows into it: a 16k-rank World
  // allocates gigabytes of stack address space but only resident-faults
  // the few KiB each fiber uses. A vector here would zero-fill — and
  // therefore resident — every page up front.
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_bytes_ = 0;
  ucontext_t context_{};
  ucontext_t scheduler_context_{};
  bool started_ = false;
  bool finished_ = false;
  // ThreadSanitizer fiber handles (null outside TSan builds). TSan cannot
  // see through swapcontext(); without the switch annotations it reports
  // false races between fibers that share an OS thread.
  void* tsan_fiber_ = nullptr;
  void* tsan_scheduler_ = nullptr;
};

}  // namespace odmpi::sim
