#include "src/sim/process.h"

#include <algorithm>
#include <utility>

namespace odmpi::sim {

namespace {
// One simulation per thread: the sweep runner drives independent Worlds
// on separate threads, so the "current process" register is per-thread.
thread_local Process* g_current_process = nullptr;
}  // namespace

Process::Process(Engine& engine, int id, std::function<void()> body,
                 std::size_t stack_bytes)
    : engine_(engine), id_(id) {
  fiber_ = std::make_unique<Fiber>(
      [this, body = std::move(body)] {
        body();
        state_ = State::Finished;
      },
      stack_bytes);
}

Process* Process::current() { return g_current_process; }

SimTime Process::current_time(const Engine& engine) {
  if (g_current_process != nullptr) return g_current_process->now();
  return engine.now();
}

void Process::start(SimTime delay) {
  assert(state_ == State::NotStarted);
  state_ = State::Ready;
  local_now_ = engine_.now() + delay;
  engine_.schedule_after(delay, [this] { resume_now(); });
}

void Process::kill() {
  assert(g_current_process != this && "a process cannot kill itself");
  if (state_ == State::Finished) return;
  state_ = State::Killed;
  pending_signal_ = false;
}

void Process::resume_now() {
  // A kill may land between a wakeup's schedule_at and the resume event:
  // the corpse simply never runs again (its fiber is torn down with the
  // Process, exactly like a deadline-expired run).
  if (state_ == State::Killed) return;
  assert(state_ == State::Ready);
  local_now_ = std::max(local_now_, engine_.now());
  state_ = State::Running;
  Process* prev = g_current_process;
  g_current_process = this;
  fiber_->resume();
  g_current_process = prev;
}

void Process::yield() {
  assert(g_current_process == this && "yield() from outside the process");
  state_ = State::Ready;
  engine_.schedule_at(local_now_, [this] { resume_now(); });
  Fiber::yield_to_scheduler();
}

void Process::sleep(SimTime dt) {
  advance(dt);
  yield();
}

SimTime Process::block() {
  assert(g_current_process == this && "block() from outside the process");
  if (pending_signal_) {
    pending_signal_ = false;
    return 0;
  }
  const SimTime blocked_at = local_now_;
  state_ = State::Blocked;
  Fiber::yield_to_scheduler();
  // wakeup() moved us to Ready and scheduled the resume; resume_now()
  // already advanced local_now_ to the wakeup time.
  return local_now_ - blocked_at;
}

void Process::wakeup() {
  if (state_ == State::Blocked) {
    state_ = State::Ready;
    const SimTime t = std::max(Process::current_time(engine_), local_now_);
    local_now_ = t;
    engine_.schedule_at(t, [this] { resume_now(); });
  } else if (state_ == State::Running || state_ == State::Ready) {
    pending_signal_ = true;
  }
  // Wakeups aimed at finished/killed/unstarted processes are dropped: the
  // only sources are completion queues, whose owners outlive their waiters.
}

}  // namespace odmpi::sim
