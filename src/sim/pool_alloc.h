// A thread-local recycling pool for the event engine's large arrays.
//
// Simulations construct and destroy many Engine instances (one per World,
// one per benchmark iteration). Their heap/slab arrays grow into the
// multi-megabyte range, which glibc serves with mmap and returns with
// munmap — so every fresh Engine re-faults thousands of zero pages. The
// pool keeps a small per-thread cache of big blocks so successive engines
// reuse warm memory. Blocks below the cache threshold go straight to
// operator new (malloc already recycles those).
//
// Each OS thread owns an independent pool: the sweep runner relies on this
// for per-thread arena reuse (Worlds executed back-to-back on the same
// worker thread recycle each other's blocks with zero cross-thread
// traffic). A World must be destroyed on the thread that ran it —
// otherwise its blocks drain into the wrong thread's cache; Engine asserts
// this in debug builds via pool_thread_id().
//
// Purely an allocation-layer optimization: no effect on event ordering or
// determinism.
#pragma once

#include <cstddef>
#include <cstdint>

namespace odmpi::sim::detail {

void* pool_alloc(std::size_t bytes);
void pool_free(void* p, std::size_t bytes) noexcept;

/// Counters for the calling thread's block pool. Alloc/free tallies count
/// pooled-size requests only (smaller ones bypass the pool entirely).
struct PoolStats {
  std::uint64_t allocs = 0;          ///< pooled-size allocation requests
  std::uint64_t reuses = 0;          ///< requests served from the cache
  std::uint64_t fresh = 0;           ///< requests served by operator new
  std::uint64_t frees_cached = 0;    ///< frees recycled into the cache
  std::uint64_t frees_released = 0;  ///< frees passed to operator delete
  std::size_t blocks_cached = 0;     ///< blocks sitting in the cache now
  std::size_t cached_bytes = 0;      ///< bytes sitting in the cache now
  std::size_t peak_cached_bytes = 0; ///< high-water mark of cached_bytes
};

/// Snapshot of the calling thread's pool counters.
[[nodiscard]] PoolStats pool_stats();

/// Stable identifier of the calling thread's pool. Objects that free into
/// the pool record this at construction and assert it at destruction to
/// catch cross-thread frees (which would silently migrate cached blocks
/// between arenas).
[[nodiscard]] std::uintptr_t pool_thread_id();

template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_free(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;  // all pools on a thread share the same block cache
  }
};

}  // namespace odmpi::sim::detail
