// A thread-local recycling pool for the event engine's large arrays.
//
// Simulations construct and destroy many Engine instances (one per World,
// one per benchmark iteration). Their heap/slab arrays grow into the
// multi-megabyte range, which glibc serves with mmap and returns with
// munmap — so every fresh Engine re-faults thousands of zero pages. The
// pool keeps a small per-thread cache of big blocks so successive engines
// reuse warm memory. Blocks below the cache threshold go straight to
// operator new (malloc already recycles those).
//
// Purely an allocation-layer optimization: no effect on event ordering or
// determinism.
#pragma once

#include <cstddef>

namespace odmpi::sim::detail {

void* pool_alloc(std::size_t bytes);
void pool_free(void* p, std::size_t bytes) noexcept;

template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_free(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;  // all pools on a thread share the same block cache
  }
};

}  // namespace odmpi::sim::detail
