#include "src/via/memory.h"

#include <algorithm>

namespace odmpi::via {

MemoryHandle MemoryRegistry::register_region(const std::byte* base,
                                             std::size_t length) {
  const MemoryHandle handle = next_handle_++;
  const RKey rkey = next_rkey_++;
  regions_.emplace(handle, Region{base, length, rkey});
  rkey_to_handle_.emplace(rkey, handle);
  pinned_bytes_ += static_cast<std::int64_t>(length);
  peak_pinned_bytes_ = std::max(peak_pinned_bytes_, pinned_bytes_);
  return handle;
}

bool MemoryRegistry::deregister(MemoryHandle handle) {
  auto it = regions_.find(handle);
  if (it == regions_.end()) return false;
  pinned_bytes_ -= static_cast<std::int64_t>(it->second.length);
  rkey_to_handle_.erase(it->second.rkey);
  regions_.erase(it);
  return true;
}

bool MemoryRegistry::covers(MemoryHandle handle, const std::byte* addr,
                            std::size_t length) const {
  auto it = regions_.find(handle);
  if (it == regions_.end()) return false;
  const Region& r = it->second;
  return addr >= r.base && addr + length <= r.base + r.length;
}

RKey MemoryRegistry::export_rkey(MemoryHandle handle) const {
  auto it = regions_.find(handle);
  return it == regions_.end() ? kInvalidRKey : it->second.rkey;
}

bool MemoryRegistry::covers_rkey(RKey rkey, const std::byte* addr,
                                 std::size_t length) const {
  auto it = rkey_to_handle_.find(rkey);
  if (it == rkey_to_handle_.end()) return false;
  return covers(it->second, addr, length);
}

}  // namespace odmpi::via
