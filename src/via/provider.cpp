#include "src/via/provider.h"

namespace odmpi::via {

Cluster::Cluster(sim::Engine& engine, int num_nodes, DeviceProfile profile,
                 sim::FaultConfig fault)
    : engine_(engine),
      profile_(std::move(profile)),
      fault_plan_(fault),
      fabric_(engine, num_nodes, profile_) {
  if (fault_plan_.enabled()) fabric_.set_fault_plan(&fault_plan_);
  nics_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    nics_.push_back(std::make_unique<Nic>(*this, n));
  }
}

sim::Stats Cluster::aggregate_stats() {
  sim::Stats total;
  for (const auto& nic : nics_) {
    total.merge(nic->stats());
    total.add("mem.pinned_bytes", nic->memory().pinned_bytes());
  }
  total.set("fabric.packets",
            static_cast<std::int64_t>(fabric_.packets_delivered()));
  total.set("fabric.bytes",
            static_cast<std::int64_t>(fabric_.bytes_delivered()));
  if (fault_plan_.enabled()) {
    total.set("fabric.dropped",
              static_cast<std::int64_t>(fabric_.packets_dropped()));
    total.set("fabric.duplicated",
              static_cast<std::int64_t>(fabric_.packets_duplicated()));
    total.merge(fault_plan_.stats());
  }
  return total;
}

}  // namespace odmpi::via
