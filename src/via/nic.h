// The per-node NIC: owns the node's VIs, completion queues, registered
// memory and connection service, and moves messages through the fabric.
//
// Cost-model split: host-side overheads (posting, polling) are charged to
// the calling process's virtual clock; NIC and wire costs become event
// delays. Berkeley VIA's signature behaviour — per-message cost growing
// with the number of open VIs on the node (Figure 1) — lives in
// send_nic_delay().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/sim/process.h"
#include "src/sim/stats.h"
#include "src/via/completion.h"
#include "src/via/connection.h"
#include "src/via/descriptor.h"
#include "src/via/device_profile.h"
#include "src/via/memory.h"
#include "src/via/srq.h"
#include "src/via/types.h"
#include "src/via/vi.h"

namespace odmpi::via {

class Cluster;

class Nic {
 public:
  Nic(Cluster& cluster, NodeId node);
  ~Nic();

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  // --- Resource creation --------------------------------------------------

  /// VipCreateVi: charges the driver-call cost and returns a new endpoint.
  Vi* create_vi(CompletionQueue* send_cq, CompletionQueue* recv_cq);

  /// VipDestroyVi. The VI must have no queued work.
  void destroy_vi(Vi* vi);

  /// VipCreateCQ.
  CompletionQueue* create_cq();

  /// Creates a shared receive queue (InfiniBand SRQ / XRC shared receive
  /// context). VIs opt in with Vi::bind_shared_recv; the queue lives as
  /// long as the NIC.
  SharedRecvQueue* create_shared_recv_queue();

  /// VipRegisterMem: pins the pages and charges the per-page cost.
  MemoryHandle register_memory(const std::byte* base, std::size_t length);
  bool deregister_memory(MemoryHandle handle);

  // --- Introspection ------------------------------------------------------

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] int open_vi_count() const { return open_vi_count_; }
  [[nodiscard]] int vis_ever_created() const { return vis_ever_created_; }
  [[nodiscard]] MemoryRegistry& memory() { return memory_; }
  [[nodiscard]] ConnectionService& connections() { return connections_; }
  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] const DeviceProfile& profile() const;
  /// Statistics registry; hot-path counters are folded in on access.
  /// Counter handles are interned once per process, not per flush.
  [[nodiscard]] sim::Stats& stats() {
    static const sim::Stats::Counter kSent = sim::Stats::counter("msg.sent");
    static const sim::Stats::Counter kSentBytes =
        sim::Stats::counter("msg.sent_bytes");
    static const sim::Stats::Counter kReceived =
        sim::Stats::counter("msg.received");
    static const sim::Stats::Counter kRdmaWrite =
        sim::Stats::counter("rdma.write");
    static const sim::Stats::Counter kRdmaWriteBytes =
        sim::Stats::counter("rdma.write_bytes");
    static const sim::Stats::Counter kRdmaWriteReceived =
        sim::Stats::counter("rdma.write_received");
    static const sim::Stats::Counter kRdmaRead =
        sim::Stats::counter("rdma.read");
    static const sim::Stats::Counter kRdmaReadBytes =
        sim::Stats::counter("rdma.read_bytes");
    static const sim::Stats::Counter kRdmaReadServed =
        sim::Stats::counter("rdma.read_served");
    stats_.set(kSent, hot_.msg_sent);
    stats_.set(kSentBytes, hot_.msg_sent_bytes);
    stats_.set(kReceived, hot_.msg_received);
    stats_.set(kRdmaWrite, hot_.rdma_write);
    stats_.set(kRdmaWriteBytes, hot_.rdma_write_bytes);
    stats_.set(kRdmaWriteReceived, hot_.rdma_write_received);
    stats_.set(kRdmaRead, hot_.rdma_read);
    stats_.set(kRdmaReadBytes, hot_.rdma_read_bytes);
    stats_.set(kRdmaReadServed, hot_.rdma_read_served);
    return stats_;
  }

  // --- Host notification --------------------------------------------------
  // A process that blocks waiting for "anything from this NIC" (the MPI
  // device's spinwait fallback) registers here; completions *and*
  // connection events wake it — without this, a process asleep in a
  // kernel wait could never see an on-demand connection request.

  void set_host_waiter(sim::Process* process) { host_waiter_ = process; }
  void notify_host();

  // --- Rank-death injection ------------------------------------------------

  /// Takes the NIC off the wire permanently: pending and future timer
  /// events on this NIC become no-ops and the host is never notified
  /// again. The fabric-level packet blackout is the FaultPlan's job
  /// (mark_node_dead); this flag silences the locally-armed machinery —
  /// retransmit timers, probe replies — that would otherwise keep acting
  /// for a corpse.
  void kill();
  [[nodiscard]] bool dead() const { return dead_; }

  // --- Internal (Vi / ConnectionService entry points) ---------------------

  Status start_send(Vi& vi, Descriptor* desc);
  Status start_rdma_write(Vi& vi, Descriptor* desc);
  /// One-sided read: fetches [remote_addr, remote_addr+length) from the
  /// peer's memory into the local buffer. The target validates the
  /// descriptor's rkey against its registry; no receive descriptor is
  /// consumed and no completion is generated at the target — the
  /// initiator's descriptor completes on its *send* CQ when the response
  /// lands (IB read semantics). Under faults the request/response pair is
  /// retried on a seeded timer; exhausted retries fail the VI.
  Status start_rdma_read(Vi& vi, Descriptor* desc);
  void on_message(ViId target_vi, const std::vector<std::byte>& payload);
  void on_rdma_write(std::byte* remote_addr, MemoryHandle remote_handle,
                     const std::vector<std::byte>& payload);
  /// Target side of an RDMA read: copies the requested bytes and sends
  /// the data response back to the initiator.
  void serve_rdma_read(ViId target_vi, std::uint64_t read_id,
                       std::byte* remote_addr, std::size_t length);
  /// Initiator side: response arrived, land the data and complete.
  void on_rdma_read_response(std::uint64_t read_id,
                             const std::vector<std::byte>& payload);
  [[nodiscard]] Vi* find_vi(ViId id);

  // --- Reliable delivery (active only under a FaultPlan) -------------------
  // Per-VI sequencing with cumulative acks and seeded retransmission:
  // every data/RDMA packet carries a sequence number, the receiver
  // delivers strictly in order (suppressing duplicates and post-gap
  // arrivals) and acks cumulatively; the sender retransmits on timeout
  // with exponential backoff and fails the VI into the error state once
  // the profile's retry budget is exhausted.

  void on_reliable_message(ViId target_vi, std::uint64_t seq,
                           const std::vector<std::byte>& payload);
  void on_reliable_rdma(ViId target_vi, std::uint64_t seq,
                        std::byte* remote_addr,
                        const std::vector<std::byte>& payload);
  void on_ack(ViId target_vi, std::uint64_t acked);

  /// Flushes reliable sends still awaiting a VIA-level ack on a VI whose
  /// peer has disconnected, completing them with kSuccess. Only legal
  /// when a higher-level handshake proved the peer processed everything
  /// outstanding before it tore its endpoint down (the MPI eviction
  /// protocol): the missing acks were lost in flight or cut off by the
  /// peer's teardown, not the data. Without this a disconnect racing the
  /// last ack would strand sends_in_flight() above zero forever (the
  /// retransmit timer is a no-op on a non-connected VI).
  void complete_sends_on_disconnect(Vi& vi);

  /// Charges host-side time to the currently running process (no-op when
  /// called from plain engine context, e.g. a delivery event).
  static void charge_host(sim::SimTime cost) {
    if (auto* p = sim::Process::current()) p->advance(cost);
  }

  /// Sender-side NIC processing delay for one message, including the
  /// per-open-VI doorbell scan on Berkeley VIA.
  [[nodiscard]] sim::SimTime send_nic_delay() const;

 private:
  void complete(Vi& vi, Descriptor* desc, Status status, std::size_t bytes,
                bool is_receive);

  // Records the per-message doorbell-scan cost instant (TraceCat::kFabric)
  // when the job is tracing; args carry open-VI count and the delay.
  void trace_doorbell(const Vi& vi) const;

  // Reliable-delivery internals.
  Status start_reliable(Vi& vi, Descriptor* desc, bool is_rdma);
  void transmit_reliable(Vi& vi, Vi::ReliableSend& rs);
  void on_retransmit_timer(ViId vi_id, std::uint64_t seq, std::uint64_t gen);
  void fail_reliable_sends(Vi& vi);
  void send_ack(Vi& vi);
  // Unreliable delivery under faults: loss surfaces as kTransportError.
  Status start_unreliable_lossy(Vi& vi, Descriptor* desc, bool is_rdma);

  // RDMA-read internals. A pending read is request/response state on the
  // *initiator*: the request names it by id, duplicate responses (from
  // retransmitted requests) find the id gone and are ignored — reads are
  // idempotent, so at-least-once request delivery is enough.
  struct PendingRead {
    ViId vi_id = -1;
    Descriptor* desc = nullptr;
    int retries = 0;
    std::uint64_t timer_generation = 0;
  };
  void transmit_read(std::uint64_t read_id, PendingRead& pr);
  void on_read_retry_timer(std::uint64_t read_id, std::uint64_t gen);

  Cluster& cluster_;
  NodeId node_;
  MemoryRegistry memory_;
  ConnectionService connections_;
  std::vector<std::unique_ptr<Vi>> vis_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<SharedRecvQueue>> srqs_;
  std::map<std::uint64_t, PendingRead> pending_reads_;
  std::uint64_t next_read_id_ = 1;
  int open_vi_count_ = 0;
  int vis_ever_created_ = 0;
  bool dead_ = false;
  sim::Process* host_waiter_ = nullptr;
  // Data-path counters as plain integers (see stats()).
  struct HotCounters {
    std::int64_t msg_sent = 0, msg_sent_bytes = 0, msg_received = 0;
    std::int64_t rdma_write = 0, rdma_write_bytes = 0,
                 rdma_write_received = 0;
    std::int64_t rdma_read = 0, rdma_read_bytes = 0, rdma_read_served = 0;
  };
  HotCounters hot_;
  sim::Stats stats_;
};

}  // namespace odmpi::via
