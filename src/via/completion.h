// Completion queues.
//
// A VI's work queues can be bound to completion queues at creation time;
// the NIC then pushes a completion entry whenever a descriptor finishes.
// MVICH binds the receive queues of every VI to a single CQ and drives all
// progress by polling it — we reproduce that structure.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "src/sim/process.h"
#include "src/via/descriptor.h"
#include "src/via/types.h"

namespace odmpi::via {

class Vi;
struct DeviceProfile;

struct Completion {
  Vi* vi = nullptr;
  Descriptor* descriptor = nullptr;
  bool is_receive = false;
};

class CompletionQueue {
 public:
  explicit CompletionQueue(const DeviceProfile& profile)
      : profile_(profile) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Nonblocking poll (VipCQDone). Charges the device's poll cost to the
  /// calling process and pops the oldest completion if any.
  std::optional<Completion> poll();

  /// Blocking wait (VipCQWait): returns the oldest completion, sleeping
  /// if the queue is empty. On devices where wait is a kernel sleep
  /// (cLAN), an actual sleep costs `blocking_wait_wakeup` on the way out;
  /// on Berkeley VIA this degenerates to a poll loop.
  Completion wait();

  /// True if a completion is available without consuming it. Free of
  /// cost-model charges; used by wait-policy loops for bookkeeping.
  [[nodiscard]] bool has_entries() const { return !entries_.empty(); }

  [[nodiscard]] std::size_t depth() const { return entries_.size(); }

  /// NIC side: enqueue a completion and wake any waiter.
  void push(const Completion& completion);

  /// Times the queue transitioned a waiter out of a real kernel sleep
  /// (spinwait's failure mode in the paper).
  [[nodiscard]] std::uint64_t kernel_wakeups() const {
    return kernel_wakeups_;
  }

 private:
  const DeviceProfile& profile_;
  std::deque<Completion> entries_;
  sim::Process* waiter_ = nullptr;
  std::uint64_t kernel_wakeups_ = 0;
};

}  // namespace odmpi::via
