// Device cost profiles: the calibration layer that stands in for the real
// GigaNet cLAN and Berkeley VIA / Myrinet hardware of the paper's testbed.
//
// Every constant is virtual time (ns) or a rate; see DESIGN.md section 5
// for how the values were picked to land in the paper's measured regime.
#pragma once

#include <string>

#include "src/sim/time.h"
#include "src/via/types.h"

namespace odmpi::via {

struct DeviceProfile {
  std::string name;

  // --- Host-side costs (charged to the calling process's clock). ---
  sim::SimTime send_post_overhead;    // build descriptor + doorbell ring
  sim::SimTime recv_post_overhead;    // post a receive descriptor
  sim::SimTime cq_poll_cost;          // one VipCQDone-style poll
  sim::SimTime recv_handling_overhead;  // per-arrival host-side handling
  // Penalty when a blocking wait actually goes to sleep (kernel transition
  // + interrupt + reschedule). Zero when wait_is_poll.
  sim::SimTime blocking_wait_wakeup;
  // Berkeley VIA implements VipCQWait as an infinite poll loop, so wait
  // and poll are indistinguishable there (paper section 5.3).
  bool wait_is_poll;

  // --- NIC / wire costs (become event delays, not host time). ---
  sim::SimTime nic_base_cost;    // fixed NIC processing per message
  // Berkeley VIA's LANai firmware round-robins the doorbells of every
  // open VI, so per-message NIC cost grows with the number of open VIs on
  // that node (paper Figure 1). Zero for cLAN.
  sim::SimTime nic_per_vi_cost;
  double per_byte_ns;            // inverse wire bandwidth
  sim::SimTime wire_latency;     // cable + switch traversal

  // --- Connection management costs. ---
  sim::SimTime vi_create_cost;        // VipCreateVi (driver call)
  sim::SimTime conn_os_cost;          // kernel involvement per endpoint
  sim::SimTime conn_handshake_bytes;  // handshake packet size (bytes)
  // Transitioning an endpoint pair straight to connected when both sides
  // already know each other's VI id (the bulk-OOB-exchange bootstrap):
  // local driver work only, no wire handshake and no kernel rendezvous,
  // hence much cheaper than conn_os_cost.
  sim::SimTime conn_bind_cost;
  bool supports_client_server;        // cLAN: both models; BVIA: P2P only

  // --- One-sided capabilities (the post-VIA generation). ---
  // RDMA read (target-side memory fetched by the initiator) and shared
  // receive contexts (one receive queue serving many peers, InfiniBand
  // SRQ/XRC style) arrived with the InfiniBand HCAs that succeeded VIA
  // NICs. The cLAN and Berkeley VIA profiles advertise neither; the rdma()
  // profile advertises both. The simulation itself can execute the ops on
  // any profile — these flags record what the modelled hardware offered,
  // and benches/tests use them to pick honest configurations.
  bool supports_rdma_read;
  bool supports_shared_recv;

  // --- Reliability / retry calibration (only exercised under an active
  // FaultPlan; the loss-free wire never arms a timer). ---
  // VipConnectPeerRequest / VipConnectRequest timeout before the
  // handshake packet is retransmitted; retry k waits
  //   conn_timeout + conn_retry_backoff_base * (2^k - 1).
  sim::SimTime conn_timeout;
  sim::SimTime conn_retry_backoff_base;
  int max_conn_retries;               // retransmits before kTimeout
  // Reliable-delivery data path: base retransmission timeout (doubles per
  // retry) and the retry cap before the VI enters the error state.
  sim::SimTime retransmit_timeout;
  int max_retransmits;

  /// Worst-case virtual time a single connect attempt can spend in
  /// retries before surfacing kTimeout.
  [[nodiscard]] sim::SimTime conn_retry_budget() const {
    sim::SimTime total = 0;
    for (int k = 0; k <= max_conn_retries; ++k) {
      total += conn_timeout +
               conn_retry_backoff_base * ((sim::SimTime{1} << k) - 1);
    }
    return total;
  }

  // --- Memory registration. ---
  sim::SimTime mem_reg_cost_per_page;  // pin one 4 kB page
  static constexpr std::size_t kPageBytes = 4096;

  /// GigaNet cLAN 1000 + cLAN5300 switch (paper's first testbed).
  /// Targets: ~14 us small-message MPI latency, ~110 MB/s peak bandwidth,
  /// expensive kernel wake-up (~40 us), VI-count-independent latency.
  static DeviceProfile clan() {
    DeviceProfile p;
    p.name = "clan";
    p.send_post_overhead = sim::nanoseconds(900);
    p.recv_post_overhead = sim::nanoseconds(400);
    p.cq_poll_cost = sim::nanoseconds(120);
    p.recv_handling_overhead = sim::nanoseconds(1400);
    p.blocking_wait_wakeup = sim::microseconds(40);
    p.wait_is_poll = false;
    p.nic_base_cost = sim::nanoseconds(2600);
    p.nic_per_vi_cost = sim::nanoseconds(0);
    p.per_byte_ns = 8.9;  // ~112 MB/s
    p.wire_latency = sim::nanoseconds(8600);
    p.vi_create_cost = sim::microseconds(35);
    p.conn_os_cost = sim::microseconds(180);
    p.conn_handshake_bytes = 64;
    p.conn_bind_cost = sim::microseconds(20);
    p.supports_client_server = true;
    p.supports_rdma_read = false;
    p.supports_shared_recv = false;
    // ~12 us one-way handshake latency: time out at ~12x that, back off
    // in 100 us steps (cLAN's kernel-mediated connects are expensive, so
    // retries are spaced generously).
    p.conn_timeout = sim::microseconds(150);
    p.conn_retry_backoff_base = sim::microseconds(100);
    p.max_conn_retries = 6;
    p.retransmit_timeout = sim::microseconds(120);
    p.max_retransmits = 8;
    p.mem_reg_cost_per_page = sim::nanoseconds(80);
    return p;
  }

  /// Berkeley VIA 2.0 on Myrinet LANai 7 (paper's second testbed).
  /// Targets: ~35 us small-message MPI latency at 2 open VIs, growing
  /// roughly half a microsecond per additional open VI per NIC traversal
  /// (Figure 1), ~60 MB/s bandwidth, wait == poll.
  static DeviceProfile bvia() {
    DeviceProfile p;
    p.name = "bvia";
    p.send_post_overhead = sim::nanoseconds(1800);
    p.recv_post_overhead = sim::nanoseconds(700);
    p.cq_poll_cost = sim::nanoseconds(200);
    p.recv_handling_overhead = sim::nanoseconds(2600);
    p.blocking_wait_wakeup = sim::nanoseconds(0);
    p.wait_is_poll = true;
    p.nic_base_cost = sim::nanoseconds(6200);
    p.nic_per_vi_cost = sim::nanoseconds(520);
    p.per_byte_ns = 15.2;  // ~66 MB/s
    p.wire_latency = sim::nanoseconds(20500);
    p.vi_create_cost = sim::microseconds(60);
    p.conn_os_cost = sim::microseconds(420);
    p.conn_handshake_bytes = 64;
    p.conn_bind_cost = sim::microseconds(45);
    p.supports_client_server = false;
    p.supports_rdma_read = false;
    p.supports_shared_recv = false;
    // ~29 us one-way handshake latency and a 420 us kernel connect cost:
    // both the base timeout and the backoff are scaled up accordingly.
    p.conn_timeout = sim::microseconds(400);
    p.conn_retry_backoff_base = sim::microseconds(250);
    p.max_conn_retries = 6;
    p.retransmit_timeout = sim::microseconds(300);
    p.max_retransmits = 8;
    p.mem_reg_cost_per_page = sim::nanoseconds(150);
    return p;
  }

  /// First-generation InfiniBand 4X HCA (the "MPICH2 over InfiniBand with
  /// RDMA support" era that followed the paper's testbeds). Targets: ~6 us
  /// small-message MPI latency, ~840 MB/s bandwidth, latency flat in the
  /// number of open endpoints (RC queue pairs live in HCA context memory,
  /// no firmware doorbell scan), cheap polling, and native one-sided ops:
  /// RDMA read and SRQ/XRC-style shared receive contexts.
  static DeviceProfile rdma() {
    DeviceProfile p;
    p.name = "rdma";
    p.send_post_overhead = sim::nanoseconds(400);
    p.recv_post_overhead = sim::nanoseconds(250);
    p.cq_poll_cost = sim::nanoseconds(90);
    p.recv_handling_overhead = sim::nanoseconds(600);
    p.blocking_wait_wakeup = sim::microseconds(12);
    p.wait_is_poll = false;
    p.nic_base_cost = sim::nanoseconds(1300);
    p.nic_per_vi_cost = sim::nanoseconds(0);
    p.per_byte_ns = 1.2;  // ~840 MB/s
    p.wire_latency = sim::nanoseconds(3400);
    p.vi_create_cost = sim::microseconds(18);
    p.conn_os_cost = sim::microseconds(95);
    p.conn_handshake_bytes = 64;
    p.conn_bind_cost = sim::microseconds(9);
    p.supports_client_server = true;
    p.supports_rdma_read = true;
    p.supports_shared_recv = true;
    // ~5 us one-way handshake: tighter timeouts than the VIA NICs, same
    // retry discipline.
    p.conn_timeout = sim::microseconds(60);
    p.conn_retry_backoff_base = sim::microseconds(40);
    p.max_conn_retries = 6;
    p.retransmit_timeout = sim::microseconds(50);
    p.max_retransmits = 8;
    p.mem_reg_cost_per_page = sim::nanoseconds(60);
    return p;
  }
};

}  // namespace odmpi::via
