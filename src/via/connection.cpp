#include "src/via/connection.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "src/via/nic.h"
#include "src/via/provider.h"
#include "src/via/vi.h"

namespace odmpi::via {

namespace {
// Interned stat handles for the handshake paths (cold, but the retry and
// duplicate-suppression sites loop under faults).
const sim::Stats::Counter kEstablished =
    sim::Stats::counter("conn.established");
const sim::Stats::Counter kPeerInitiated =
    sim::Stats::counter("conn.peer_initiated");
const sim::Stats::Counter kTimeouts = sim::Stats::counter("conn.timeouts");
const sim::Stats::Counter kRetries = sim::Stats::counter("conn.retries");
const sim::Stats::Counter kDupReacked =
    sim::Stats::counter("conn.dup_request_reacked");
const sim::Stats::Counter kDupSuppressed =
    sim::Stats::counter("conn.dup_request_suppressed");
const sim::Stats::Counter kUnmatchedQueued =
    sim::Stats::counter("conn.peer_unmatched_queued");
const sim::Stats::Counter kCsQueued =
    sim::Stats::counter("conn.cs_request_queued");
const sim::Stats::Counter kRejected = sim::Stats::counter("conn.rejected");
const sim::Stats::Counter kDisconnected =
    sim::Stats::counter("conn.disconnected");
const sim::Stats::Counter kBound = sim::Stats::counter("conn.bound");
const sim::Stats::Counter kBusySent = sim::Stats::counter("conn.busy_sent");
const sim::Stats::Counter kBusyDeferred =
    sim::Stats::counter("conn.busy_deferred");

// Trace event names: the per-VI state machine timeline
// (request_sent -> request_rx -> established, with retry/timeout/reject).
const sim::Stats::Counter kTrRequestSent =
    sim::Stats::counter("via.conn.request_sent");
const sim::Stats::Counter kTrRequestRx =
    sim::Stats::counter("via.conn.request_rx");
const sim::Stats::Counter kTrEstablished =
    sim::Stats::counter("via.conn.established");
const sim::Stats::Counter kTrRetry = sim::Stats::counter("via.conn.retry");
const sim::Stats::Counter kTrTimeout =
    sim::Stats::counter("via.conn.timeout");
const sim::Stats::Counter kTrRejected =
    sim::Stats::counter("via.conn.rejected");
const sim::Stats::Counter kTrDisconnect =
    sim::Stats::counter("via.conn.disconnect");
const sim::Stats::Counter kTrBound = sim::Stats::counter("via.conn.bound");
const sim::Stats::Counter kTrBusy = sim::Stats::counter("via.conn.busy");

// Liveness-probe stats and trace names (rank-death detection only).
const sim::Stats::Counter kProbes = sim::Stats::counter("conn.probes");
const sim::Stats::Counter kProbeRetries =
    sim::Stats::counter("conn.probe_retries");
const sim::Stats::Counter kProbePongs =
    sim::Stats::counter("conn.probe_pongs");
const sim::Stats::Counter kProbeFailed =
    sim::Stats::counter("conn.probe_failed");
const sim::Stats::Counter kTrProbe = sim::Stats::counter("via.conn.probe");
const sim::Stats::Counter kTrProbeFailed =
    sim::Stats::counter("via.conn.probe_failed");
}  // namespace

void ConnectionService::trace_conn(sim::Stats::Counter name, NodeId peer,
                                   std::int64_t a0, std::int64_t a1) const {
  sim::Tracer* tr = nic_.cluster().tracer();
  if (tr == nullptr) return;
  tr->instant(sim::TraceCat::kConn, name, nic_.node(), peer, a0, a1);
}

void ConnectionService::send_control(NodeId dst,
                                     std::function<void(Nic&)> handler) {
  Cluster& cluster = nic_.cluster();
  Nic& remote = cluster.nic(dst);
  cluster.fabric().deliver(
      nic_.node(), dst,
      static_cast<std::size_t>(nic_.profile().conn_handshake_bytes),
      sim::FaultClass::kControl,
      sim::Process::current_time(cluster.engine()),
      nic_.profile().nic_base_cost, /*dst_nic_delay=*/0,
      /*on_tx_done=*/{},
      [&remote, handler = std::move(handler)] { handler(remote); });
}

void ConnectionService::establish(Vi& vi, NodeId remote_node, ViId remote_vi) {
  vi.set_connected(remote_node, remote_vi);
  ++connections_established_;
  nic_.stats().add(kEstablished);
  trace_conn(kTrEstablished, remote_node, vi.id(), remote_vi);
  nic_.notify_host();
}

bool ConnectionService::fault_active() const {
  return nic_.cluster().fault_active();
}

sim::SimTime ConnectionService::retry_wait(int attempts) const {
  // Exponential backoff: conn_timeout for the first wait, then the base
  // backoff doubling per retry on top of it.
  const auto& p = nic_.profile();
  const int shift = attempts < 16 ? attempts : 16;
  return p.conn_timeout + p.conn_retry_backoff_base * ((1LL << shift) - 1);
}

sim::SimTime ConnectionService::congestion_allowance(NodeId remote) const {
  // Both egress queues the handshake round trip must drain behind; keeps
  // a handshake racing a data burst from timing out spuriously.
  Cluster& cluster = nic_.cluster();
  const sim::SimTime now = sim::Process::current_time(cluster.engine());
  return cluster.fabric().egress_backlog(nic_.node(), now) +
         cluster.fabric().egress_backlog(remote, now);
}

// --- Peer-to-peer model -----------------------------------------------------

Status ConnectionService::connect_peer(Vi& vi, NodeId remote_node,
                                       Discriminator disc) {
  // kError is accepted so a caller can retry a timed-out handshake on the
  // same endpoint (the VI is reset as part of the new attempt).
  if (vi.state() != ViState::kIdle && vi.state() != ViState::kError) {
    return Status::kInvalidState;
  }
  vi.state_ = ViState::kIdle;
  Nic::charge_host(nic_.profile().conn_os_cost);
  nic_.stats().add(kPeerInitiated);

  // A matching request may already have arrived (the remote side called
  // connect_peer first): claim it and complete the connection now. The
  // index makes the miss (the common case) O(log) instead of a scan of a
  // backlog that can be thousands deep under a connect storm.
  auto it = unmatched_.end();
  if (has_unmatched_for(disc)) {
    it = std::find_if(unmatched_.begin(), unmatched_.end(),
                      [&](const IncomingRequest& r) {
                        return r.discriminator == disc &&
                               r.src_node == remote_node;
                      });
  }
  if (it != unmatched_.end()) {
    const IncomingRequest req = *it;
    // Retransmitted copies of the same request may be queued behind it;
    // claim them all.
    unmatched_erase_if([&](const IncomingRequest& r) {
      return r.discriminator == disc && r.src_node == remote_node;
    });
    establish(vi, req.src_node, req.src_vi);
    if (fault_active()) established_peer_[disc] = vi.id();
    const NodeId me = nic_.node();
    const ViId my_vi = vi.id();
    const ViId their_vi = req.src_vi;
    send_control(req.src_node, [their_vi, me, my_vi](Nic& remote) {
      remote.connections().on_peer_ack(their_vi, me, my_vi);
    });
    return Status::kSuccess;
  }

  vi.state_ = ViState::kConnectPending;
  pending_peer_[disc] = PendingPeer{&vi, remote_node, disc};
  trace_conn(kTrRequestSent, remote_node, static_cast<std::int64_t>(disc));
  const IncomingRequest req{nic_.node(), vi.id(), disc};
  send_control(remote_node, [req](Nic& remote) {
    remote.connections().on_peer_request(req);
  });
  if (fault_active()) arm_peer_timer(disc);
  return Status::kSuccess;
}

Status ConnectionService::bind_peer(Vi& vi, NodeId remote_node,
                                    ViId remote_vi) {
  if (vi.state() != ViState::kIdle && vi.state() != ViState::kError) {
    return Status::kInvalidState;
  }
  vi.state_ = ViState::kIdle;
  Nic::charge_host(nic_.profile().conn_bind_cost);
  nic_.stats().add(kBound);
  trace_conn(kTrBound, remote_node, vi.id(), remote_vi);
  establish(vi, remote_node, remote_vi);
  return Status::kSuccess;
}

void ConnectionService::resend_peer_request(const PendingPeer& pending) {
  const IncomingRequest req{nic_.node(), pending.vi->id(), pending.disc};
  send_control(pending.remote_node, [req](Nic& remote) {
    remote.connections().on_peer_request(req);
  });
}

void ConnectionService::arm_peer_timer(Discriminator disc,
                                       sim::SimTime extra_wait) {
  auto it = pending_peer_.find(disc);
  if (it == pending_peer_.end()) return;
  PendingPeer& pending = it->second;
  const std::uint64_t gen = ++next_timer_generation_;
  pending.timer_generation = gen;
  Cluster& cluster = nic_.cluster();
  cluster.engine().schedule_at(
      sim::Process::current_time(cluster.engine()) +
          retry_wait(pending.attempts) +
          congestion_allowance(pending.remote_node) + extra_wait,
      [this, disc, gen] { on_peer_timer(disc, gen); });
}

void ConnectionService::on_peer_timer(Discriminator disc, std::uint64_t gen) {
  if (nic_.dead()) return;  // a corpse's armed handshake timers are no-ops
  auto it = pending_peer_.find(disc);
  if (it == pending_peer_.end()) return;  // matched or abandoned meanwhile
  PendingPeer& pending = it->second;
  if (pending.timer_generation != gen) return;  // superseded
  if (pending.attempts >= nic_.profile().max_conn_retries) {
    Vi* vi = pending.vi;
    const NodeId remote_node = pending.remote_node;
    pending_peer_.erase(it);  // invalidates `pending`
    vi->state_ = ViState::kError;
    nic_.stats().add(kTimeouts);
    trace_conn(kTrTimeout, remote_node, static_cast<std::int64_t>(disc));
    nic_.notify_host();
    return;
  }
  ++pending.attempts;
  nic_.stats().add(kRetries);
  trace_conn(kTrRetry, pending.remote_node, static_cast<std::int64_t>(disc),
             pending.attempts);
  resend_peer_request(pending);
  arm_peer_timer(disc);
}

void ConnectionService::on_peer_request(const IncomingRequest& request) {
  auto it = pending_peer_.find(request.discriminator);
  if (it != pending_peer_.end() &&
      it->second.remote_node == request.src_node) {
    // Crossing or second-arriving request: we already issued ours, so the
    // match completes here.
    Vi* vi = it->second.vi;
    pending_peer_.erase(it);
    establish(*vi, request.src_node, request.src_vi);
    if (fault_active()) established_peer_[request.discriminator] = vi->id();
    const NodeId me = nic_.node();
    const ViId my_vi = vi->id();
    const ViId their_vi = request.src_vi;
    send_control(request.src_node, [their_vi, me, my_vi](Nic& remote) {
      remote.connections().on_peer_ack(their_vi, me, my_vi);
    });
    return;
  }
  if (fault_active()) {
    // Retransmission of a handshake this node already completed (our ack
    // was lost): answer it again rather than queueing a ghost request.
    auto est = established_peer_.find(request.discriminator);
    if (est != established_peer_.end()) {
      Vi* vi = nic_.find_vi(est->second);
      if (vi != nullptr && vi->state() == ViState::kConnected &&
          vi->remote_node() == request.src_node) {
        nic_.stats().add(kDupReacked);
        const NodeId me = nic_.node();
        const ViId my_vi = vi->id();
        const ViId their_vi = request.src_vi;
        send_control(request.src_node, [their_vi, me, my_vi](Nic& remote) {
          remote.connections().on_peer_ack(their_vi, me, my_vi);
        });
        return;
      }
    }
    // Retransmission of a request already sitting unmatched: keep one
    // copy. The index prunes the scan to storms of the same pair.
    const bool dup =
        has_unmatched_for(request.discriminator) &&
        std::any_of(
            unmatched_.begin(), unmatched_.end(),
            [&](const IncomingRequest& r) {
              return r.discriminator == request.discriminator &&
                     r.src_node == request.src_node &&
                     r.src_vi == request.src_vi;
            });
    if (dup) {
      nic_.stats().add(kDupSuppressed);
      // A retransmit arriving while the original still waits means the
      // initiator's timer beat our admission backlog: tell it to back off
      // past the estimated drain time instead of burning retries.
      send_busy(request);
      return;
    }
  }
  // No local request yet: queue it for the host's progress loop (the
  // on-demand connection manager polls these in device_check).
  unmatched_push(request);
  nic_.stats().add(kUnmatchedQueued);
  trace_conn(kTrRequestRx, request.src_node,
             static_cast<std::int64_t>(request.discriminator));
  if (fault_active() &&
      static_cast<int>(unmatched_.size()) > busy_watermark_) {
    // Deep admission backlog: the host will take a while to answer this
    // request. Push the initiator's retransmit horizon out so the wait
    // does not read as loss (fault-free runs arm no timers, so there is
    // nothing to defer there).
    send_busy(request);
  }
  nic_.notify_host();
}

void ConnectionService::send_busy(const IncomingRequest& request) {
  nic_.stats().add(kBusySent);
  const auto backlog = static_cast<std::int64_t>(unmatched_.size());
  const Discriminator disc = request.discriminator;
  trace_conn(kTrBusy, request.src_node, static_cast<std::int64_t>(disc),
             backlog);
  send_control(request.src_node, [disc, backlog](Nic& remote) {
    remote.connections().on_peer_busy(disc, backlog);
  });
}

void ConnectionService::on_peer_busy(Discriminator disc,
                                     std::int64_t backlog) {
  auto it = pending_peer_.find(disc);
  if (it == pending_peer_.end()) return;  // established or torn down
  nic_.stats().add(kBusyDeferred);
  // Re-arm (generation bump supersedes the old timer) with the remote
  // backlog's estimated serial drain time on top of the usual schedule;
  // deliberately does NOT consume one of the initiator's retry attempts —
  // the peer is alive and slow, not lost.
  arm_peer_timer(disc, nic_.profile().conn_os_cost * backlog);
}

void ConnectionService::on_peer_ack(ViId local_vi, NodeId remote_node,
                                    ViId remote_vi) {
  Vi* vi = nic_.find_vi(local_vi);
  if (vi == nullptr) return;
  if (vi->state() == ViState::kConnectPending) {
    // Remove the pending entry that carried this VI.
    for (auto it = pending_peer_.begin(); it != pending_peer_.end(); ++it) {
      if (it->second.vi == vi) {
        if (fault_active()) established_peer_[it->first] = local_vi;
        pending_peer_.erase(it);
        break;
      }
    }
    establish(*vi, remote_node, remote_vi);
  }
  // Already connected (crossing requests): the ack is redundant.
}

std::vector<IncomingRequest> ConnectionService::poll_incoming(
    std::size_t max_batch) {
  Nic::charge_host(nic_.profile().cq_poll_cost);
  const std::size_t n = (max_batch == 0 || max_batch > unmatched_.size())
                            ? unmatched_.size()
                            : max_batch;
  return {unmatched_.begin(),
          unmatched_.begin() + static_cast<std::ptrdiff_t>(n)};
}

void ConnectionService::drop_unmatched_from(NodeId src) {
  unmatched_erase_if(
      [src](const IncomingRequest& r) { return r.src_node == src; });
}

void ConnectionService::unmatched_push(const IncomingRequest& request) {
  unmatched_.push_back(request);
  ++unmatched_by_disc_[request.discriminator];
}

void ConnectionService::unmatched_index_remove(Discriminator disc) {
  auto it = unmatched_by_disc_.find(disc);
  if (it == unmatched_by_disc_.end()) return;
  if (--it->second <= 0) unmatched_by_disc_.erase(it);
}

// --- Client/server model ----------------------------------------------------

IncomingRequest ConnectionService::connect_wait(Discriminator disc) {
  auto* p = sim::Process::current();
  assert(p != nullptr && "connect_wait outside a process");
  assert(nic_.profile().supports_client_server &&
         "device does not implement the client/server model");
  for (;;) {
    auto it = std::find_if(
        cs_pending_.begin(), cs_pending_.end(),
        [&](const IncomingRequest& r) { return r.discriminator == disc; });
    if (it != cs_pending_.end()) {
      IncomingRequest req = *it;
      cs_pending_.erase(it);
      return req;
    }
    cs_waiters_.push_back(CsWaiter{disc, p});
    p->block();
    std::erase_if(cs_waiters_,
                  [p](const CsWaiter& w) { return w.process == p; });
  }
}

Status ConnectionService::connect_accept(const IncomingRequest& request,
                                         Vi& vi) {
  if (vi.state() != ViState::kIdle && vi.state() != ViState::kError) {
    return Status::kInvalidState;
  }
  vi.state_ = ViState::kIdle;
  Nic::charge_host(nic_.profile().conn_os_cost);
  establish(vi, request.src_node, request.src_vi);
  const NodeId me = nic_.node();
  const ViId my_vi = vi.id();
  const ViId their_vi = request.src_vi;
  if (fault_active()) {
    cs_responded_[{request.src_node, request.src_vi}] =
        CsResponse{true, my_vi};
  }
  send_control(request.src_node, [their_vi, me, my_vi](Nic& remote) {
    remote.connections().on_cs_response(their_vi, true, me, my_vi);
  });
  return Status::kSuccess;
}

void ConnectionService::connect_reject(const IncomingRequest& request) {
  const ViId their_vi = request.src_vi;
  if (fault_active()) {
    cs_responded_[{request.src_node, request.src_vi}] =
        CsResponse{false, -1};
  }
  send_control(request.src_node, [their_vi](Nic& remote) {
    remote.connections().on_cs_response(their_vi, false, -1, -1);
  });
}

Status ConnectionService::connect_request(Vi& vi, NodeId remote_node,
                                          Discriminator disc) {
  auto* p = sim::Process::current();
  assert(p != nullptr && "connect_request outside a process");
  assert(nic_.profile().supports_client_server &&
         "device does not implement the client/server model");
  if (vi.state() != ViState::kIdle && vi.state() != ViState::kError) {
    return Status::kInvalidState;
  }
  vi.state_ = ViState::kConnectPending;
  Nic::charge_host(nic_.profile().conn_os_cost);
  cs_clients_[vi.id()] = CsClient{&vi, std::nullopt, p, remote_node, disc};
  trace_conn(kTrRequestSent, remote_node, static_cast<std::int64_t>(disc));

  const IncomingRequest req{nic_.node(), vi.id(), disc};
  send_control(remote_node, [req](Nic& remote) {
    remote.connections().on_cs_request(req);
  });
  if (fault_active()) arm_cs_timer(vi.id());

  CsClient& client = cs_clients_[vi.id()];
  while (!client.result.has_value()) {
    p->block();
  }
  const Status result = *client.result;
  cs_clients_.erase(vi.id());
  return result;
}

void ConnectionService::arm_cs_timer(ViId vi_id) {
  auto it = cs_clients_.find(vi_id);
  if (it == cs_clients_.end()) return;
  CsClient& client = it->second;
  const std::uint64_t gen = ++next_timer_generation_;
  client.timer_generation = gen;
  Cluster& cluster = nic_.cluster();
  cluster.engine().schedule_at(
      sim::Process::current_time(cluster.engine()) +
          retry_wait(client.attempts) +
          congestion_allowance(client.remote_node),
      [this, vi_id, gen] { on_cs_timer(vi_id, gen); });
}

void ConnectionService::on_cs_timer(ViId vi_id, std::uint64_t gen) {
  if (nic_.dead()) return;  // a corpse's armed handshake timers are no-ops
  auto it = cs_clients_.find(vi_id);
  if (it == cs_clients_.end()) return;
  CsClient& client = it->second;
  if (client.timer_generation != gen) return;
  if (client.result.has_value()) return;  // response arrived meanwhile
  if (client.attempts >= nic_.profile().max_conn_retries) {
    client.vi->state_ = ViState::kError;
    client.result = Status::kTimeout;
    nic_.stats().add(kTimeouts);
    trace_conn(kTrTimeout, client.remote_node,
               static_cast<std::int64_t>(client.disc));
    client.process->wakeup();
    return;
  }
  ++client.attempts;
  nic_.stats().add(kRetries);
  trace_conn(kTrRetry, client.remote_node,
             static_cast<std::int64_t>(client.disc), client.attempts);
  const IncomingRequest req{nic_.node(), vi_id, client.disc};
  send_control(client.remote_node, [req](Nic& remote) {
    remote.connections().on_cs_request(req);
  });
  arm_cs_timer(vi_id);
}

void ConnectionService::on_cs_request(const IncomingRequest& request) {
  if (fault_active()) {
    // Already answered (our response was lost): repeat the same answer.
    auto ans = cs_responded_.find({request.src_node, request.src_vi});
    if (ans != cs_responded_.end()) {
      nic_.stats().add(kDupReacked);
      const NodeId me = nic_.node();
      const CsResponse resp = ans->second;
      const ViId their_vi = request.src_vi;
      send_control(request.src_node, [their_vi, resp, me](Nic& remote) {
        remote.connections().on_cs_response(their_vi, resp.accepted, me,
                                            resp.my_vi);
      });
      return;
    }
    // Already queued awaiting connect_wait: keep one copy.
    const bool dup = std::any_of(
        cs_pending_.begin(), cs_pending_.end(), [&](const IncomingRequest& r) {
          return r.src_node == request.src_node && r.src_vi == request.src_vi;
        });
    if (dup) {
      nic_.stats().add(kDupSuppressed);
      return;
    }
  }
  cs_pending_.push_back(request);
  nic_.stats().add(kCsQueued);
  trace_conn(kTrRequestRx, request.src_node,
             static_cast<std::int64_t>(request.discriminator));
  for (const CsWaiter& w : cs_waiters_) {
    if (w.disc == request.discriminator) {
      w.process->wakeup();
      break;
    }
  }
  nic_.notify_host();
}

void ConnectionService::on_cs_response(ViId local_vi, bool accepted,
                                       NodeId remote_node, ViId remote_vi) {
  auto it = cs_clients_.find(local_vi);
  if (it == cs_clients_.end()) return;
  CsClient& client = it->second;
  if (client.result.has_value()) return;  // duplicate response
  if (accepted) {
    establish(*client.vi, remote_node, remote_vi);
    client.result = Status::kSuccess;
  } else {
    client.vi->state_ = ViState::kIdle;
    client.result = Status::kRejected;
    nic_.stats().add(kRejected);
    trace_conn(kTrRejected, remote_node);
  }
  client.process->wakeup();
}

// --- Liveness probes --------------------------------------------------------

void ConnectionService::probe_peer(NodeId remote) {
  if (nic_.dead()) return;
  if (probes_.find(remote) != probes_.end()) return;  // one in flight
  probes_[remote] = Probe{};
  nic_.stats().add(kProbes);
  trace_conn(kTrProbe, remote);
  send_ping(remote);
  arm_probe_timer(remote);
}

void ConnectionService::send_ping(NodeId remote) {
  const NodeId me = nic_.node();
  send_control(remote, [me](Nic& r) { r.connections().on_liveness_ping(me); });
}

void ConnectionService::on_liveness_ping(NodeId src_node) {
  // Answered entirely at NIC level — no descriptors, no host involvement —
  // so a process parked in a long compute phase still answers probes. A
  // dead NIC never gets here (the fabric blackholes its packets), but the
  // guard keeps the invariant local.
  if (nic_.dead()) return;
  const NodeId me = nic_.node();
  send_control(src_node,
               [me](Nic& r) { r.connections().on_liveness_pong(me); });
}

void ConnectionService::on_liveness_pong(NodeId src_node) {
  auto it = probes_.find(src_node);
  if (it == probes_.end()) return;  // probe already resolved
  probes_.erase(it);
  nic_.stats().add(kProbePongs);
}

void ConnectionService::arm_probe_timer(NodeId remote) {
  auto it = probes_.find(remote);
  if (it == probes_.end()) return;
  Probe& probe = it->second;
  const std::uint64_t gen = ++next_timer_generation_;
  probe.timer_generation = gen;
  Cluster& cluster = nic_.cluster();
  cluster.engine().schedule_at(
      sim::Process::current_time(cluster.engine()) +
          retry_wait(probe.attempts) + congestion_allowance(remote),
      [this, remote, gen] { on_probe_timer(remote, gen); });
}

void ConnectionService::on_probe_timer(NodeId remote, std::uint64_t gen) {
  if (nic_.dead()) return;  // the prober itself died meanwhile
  auto it = probes_.find(remote);
  if (it == probes_.end()) return;  // pong arrived meanwhile
  Probe& probe = it->second;
  if (probe.timer_generation != gen) return;  // superseded
  if (probe.attempts >= nic_.profile().max_conn_retries) {
    probes_.erase(it);
    nic_.stats().add(kProbeFailed);
    trace_conn(kTrProbeFailed, remote);
    if (peer_failed_handler_) peer_failed_handler_(remote);
    nic_.notify_host();
    return;
  }
  ++probe.attempts;
  nic_.stats().add(kProbeRetries);
  send_ping(remote);
  arm_probe_timer(remote);
}

// --- Disconnect ---------------------------------------------------------

void ConnectionService::forget_established(const Vi& vi) {
  // Idempotent re-accept hygiene: once a VI leaves the connected state its
  // discriminator must stop short-circuiting handshakes — an eviction
  // reconnect reuses the same pair discriminator with fresh VIs, and a
  // stale entry would re-ack the new request against a dead endpoint.
  // Both maps are empty in fault-free runs, so this costs nothing there.
  std::erase_if(established_peer_,
                [&](const auto& kv) { return kv.second == vi.id(); });
}

void ConnectionService::forget_vi(const Vi& vi) {
  // A VI destroyed mid-handshake (rank teardown, eviction of an endpoint
  // whose connect never completed) leaves its PendingPeer entry behind;
  // the armed retry timer would then resend through a dangling Vi*. Erase
  // by pointer — the entry is keyed by discriminator, not id.
  std::erase_if(pending_peer_,
                [&](const auto& kv) { return kv.second.vi == &vi; });
  forget_established(vi);
}

void ConnectionService::disconnect(Vi& vi) {
  if (vi.state() != ViState::kConnected) return;
  const NodeId remote_node = vi.remote_node();
  const ViId remote_vi = vi.remote_vi();
  vi.state_ = ViState::kDisconnected;
  forget_established(vi);
  send_control(remote_node, [remote_vi](Nic& remote) {
    remote.connections().on_disconnect(remote_vi);
  });
  nic_.stats().add(kDisconnected);
  trace_conn(kTrDisconnect, remote_node);
}

void ConnectionService::on_disconnect(ViId local_vi) {
  Vi* vi = nic_.find_vi(local_vi);
  if (vi == nullptr || vi->state() != ViState::kConnected) return;
  vi->state_ = ViState::kDisconnected;
  // Preposted receive descriptors can never complete now; flush them with
  // kDisconnected exactly as destroy_vi does (the VIA spec flushes work
  // queues on disconnect, not just destruction). Leaving them queued —
  // the pre-fix behaviour — strands the remote VI's descriptors in limbo
  // until the endpoint happens to be destroyed.
  while (!vi->recv_queue_.empty()) {
    Descriptor* desc = vi->recv_queue_.front();
    vi->recv_queue_.pop_front();
    desc->status = Status::kDisconnected;
    desc->done = true;
  }
  forget_established(*vi);
  nic_.notify_host();
}

}  // namespace odmpi::via
