#include "src/via/connection.h"

#include <algorithm>
#include <cassert>

#include "src/via/nic.h"
#include "src/via/provider.h"
#include "src/via/vi.h"

namespace odmpi::via {

void ConnectionService::send_control(NodeId dst,
                                     std::function<void(Nic&)> handler) {
  Cluster& cluster = nic_.cluster();
  Nic& remote = cluster.nic(dst);
  cluster.fabric().deliver(
      nic_.node(), dst,
      static_cast<std::size_t>(nic_.profile().conn_handshake_bytes),
      sim::Process::current_time(cluster.engine()),
      nic_.profile().nic_base_cost, /*dst_nic_delay=*/0,
      /*on_tx_done=*/{},
      [&remote, handler = std::move(handler)] { handler(remote); });
}

void ConnectionService::establish(Vi& vi, NodeId remote_node, ViId remote_vi) {
  vi.set_connected(remote_node, remote_vi);
  ++connections_established_;
  nic_.stats().add("conn.established");
  nic_.notify_host();
}

// --- Peer-to-peer model -----------------------------------------------------

Status ConnectionService::connect_peer(Vi& vi, NodeId remote_node,
                                       Discriminator disc) {
  if (vi.state() != ViState::kIdle) return Status::kInvalidState;
  Nic::charge_host(nic_.profile().conn_os_cost);
  nic_.stats().add("conn.peer_initiated");

  // A matching request may already have arrived (the remote side called
  // connect_peer first): claim it and complete the connection now.
  auto it = std::find_if(unmatched_.begin(), unmatched_.end(),
                         [&](const IncomingRequest& r) {
                           return r.discriminator == disc &&
                                  r.src_node == remote_node;
                         });
  if (it != unmatched_.end()) {
    const IncomingRequest req = *it;
    unmatched_.erase(it);
    establish(vi, req.src_node, req.src_vi);
    const NodeId me = nic_.node();
    const ViId my_vi = vi.id();
    const ViId their_vi = req.src_vi;
    send_control(req.src_node, [their_vi, me, my_vi](Nic& remote) {
      remote.connections().on_peer_ack(their_vi, me, my_vi);
    });
    return Status::kSuccess;
  }

  vi.state_ = ViState::kConnectPending;
  pending_peer_[disc] = PendingPeer{&vi, remote_node};
  const IncomingRequest req{nic_.node(), vi.id(), disc};
  send_control(remote_node, [req](Nic& remote) {
    remote.connections().on_peer_request(req);
  });
  return Status::kSuccess;
}

void ConnectionService::on_peer_request(const IncomingRequest& request) {
  auto it = pending_peer_.find(request.discriminator);
  if (it != pending_peer_.end() &&
      it->second.remote_node == request.src_node) {
    // Crossing or second-arriving request: we already issued ours, so the
    // match completes here.
    Vi* vi = it->second.vi;
    pending_peer_.erase(it);
    establish(*vi, request.src_node, request.src_vi);
    const NodeId me = nic_.node();
    const ViId my_vi = vi->id();
    const ViId their_vi = request.src_vi;
    send_control(request.src_node, [their_vi, me, my_vi](Nic& remote) {
      remote.connections().on_peer_ack(their_vi, me, my_vi);
    });
    return;
  }
  // No local request yet: queue it for the host's progress loop (the
  // on-demand connection manager polls these in device_check).
  unmatched_.push_back(request);
  nic_.stats().add("conn.peer_unmatched_queued");
  nic_.notify_host();
}

void ConnectionService::on_peer_ack(ViId local_vi, NodeId remote_node,
                                    ViId remote_vi) {
  Vi* vi = nic_.find_vi(local_vi);
  if (vi == nullptr) return;
  if (vi->state() == ViState::kConnectPending) {
    // Remove the pending entry that carried this VI.
    for (auto it = pending_peer_.begin(); it != pending_peer_.end(); ++it) {
      if (it->second.vi == vi) {
        pending_peer_.erase(it);
        break;
      }
    }
    establish(*vi, remote_node, remote_vi);
  }
  // Already connected (crossing requests): the ack is redundant.
}

std::vector<IncomingRequest> ConnectionService::poll_incoming() {
  Nic::charge_host(nic_.profile().cq_poll_cost);
  return {unmatched_.begin(), unmatched_.end()};
}

// --- Client/server model ----------------------------------------------------

IncomingRequest ConnectionService::connect_wait(Discriminator disc) {
  auto* p = sim::Process::current();
  assert(p != nullptr && "connect_wait outside a process");
  assert(nic_.profile().supports_client_server &&
         "device does not implement the client/server model");
  for (;;) {
    auto it = std::find_if(
        cs_pending_.begin(), cs_pending_.end(),
        [&](const IncomingRequest& r) { return r.discriminator == disc; });
    if (it != cs_pending_.end()) {
      IncomingRequest req = *it;
      cs_pending_.erase(it);
      return req;
    }
    cs_waiters_.push_back(CsWaiter{disc, p});
    p->block();
    std::erase_if(cs_waiters_,
                  [p](const CsWaiter& w) { return w.process == p; });
  }
}

Status ConnectionService::connect_accept(const IncomingRequest& request,
                                         Vi& vi) {
  if (vi.state() != ViState::kIdle) return Status::kInvalidState;
  Nic::charge_host(nic_.profile().conn_os_cost);
  establish(vi, request.src_node, request.src_vi);
  const NodeId me = nic_.node();
  const ViId my_vi = vi.id();
  const ViId their_vi = request.src_vi;
  send_control(request.src_node, [their_vi, me, my_vi](Nic& remote) {
    remote.connections().on_cs_response(their_vi, true, me, my_vi);
  });
  return Status::kSuccess;
}

void ConnectionService::connect_reject(const IncomingRequest& request) {
  const ViId their_vi = request.src_vi;
  send_control(request.src_node, [their_vi](Nic& remote) {
    remote.connections().on_cs_response(their_vi, false, -1, -1);
  });
}

Status ConnectionService::connect_request(Vi& vi, NodeId remote_node,
                                          Discriminator disc) {
  auto* p = sim::Process::current();
  assert(p != nullptr && "connect_request outside a process");
  assert(nic_.profile().supports_client_server &&
         "device does not implement the client/server model");
  if (vi.state() != ViState::kIdle) return Status::kInvalidState;
  Nic::charge_host(nic_.profile().conn_os_cost);
  vi.state_ = ViState::kConnectPending;
  cs_clients_[vi.id()] = CsClient{&vi, std::nullopt, p};

  const IncomingRequest req{nic_.node(), vi.id(), disc};
  send_control(remote_node, [req](Nic& remote) {
    remote.connections().on_cs_request(req);
  });

  CsClient& client = cs_clients_[vi.id()];
  while (!client.result.has_value()) {
    p->block();
  }
  const Status result = *client.result;
  cs_clients_.erase(vi.id());
  return result;
}

void ConnectionService::on_cs_request(const IncomingRequest& request) {
  cs_pending_.push_back(request);
  nic_.stats().add("conn.cs_request_queued");
  for (const CsWaiter& w : cs_waiters_) {
    if (w.disc == request.discriminator) {
      w.process->wakeup();
      break;
    }
  }
  nic_.notify_host();
}

void ConnectionService::on_cs_response(ViId local_vi, bool accepted,
                                       NodeId remote_node, ViId remote_vi) {
  auto it = cs_clients_.find(local_vi);
  if (it == cs_clients_.end()) return;
  CsClient& client = it->second;
  if (accepted) {
    establish(*client.vi, remote_node, remote_vi);
    client.result = Status::kSuccess;
  } else {
    client.vi->state_ = ViState::kIdle;
    client.result = Status::kRejected;
    nic_.stats().add("conn.rejected");
  }
  client.process->wakeup();
}

// --- Disconnect ---------------------------------------------------------

void ConnectionService::disconnect(Vi& vi) {
  if (vi.state() != ViState::kConnected) return;
  const NodeId remote_node = vi.remote_node();
  const ViId remote_vi = vi.remote_vi();
  vi.state_ = ViState::kDisconnected;
  send_control(remote_node, [remote_vi](Nic& remote) {
    remote.connections().on_disconnect(remote_vi);
  });
  nic_.stats().add("conn.disconnected");
}

void ConnectionService::on_disconnect(ViId local_vi) {
  Vi* vi = nic_.find_vi(local_vi);
  if (vi == nullptr || vi->state() != ViState::kConnected) return;
  vi->state_ = ViState::kDisconnected;
  nic_.notify_host();
}

}  // namespace odmpi::via
