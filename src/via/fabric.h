// The cluster interconnect: cables and switches between NICs.
//
// Delivery cost = sender NIC processing + serialized egress transmission
// (per-byte) + wire/switch latency + receiver NIC processing. Egress
// serialization per node gives honest bandwidth saturation when a node
// streams to many peers (alltoall in IS).
//
// When a FaultPlan is attached and enabled, each packet consults it once
// as it hits the wire: the plan may drop it (arrival never fires — the
// sender's NIC-side tx completion still does, as on real hardware), emit
// a duplicate arrival, or add switch-queueing jitter to the arrival time.
// With the plan disabled the delivery path is byte-for-byte the seed
// behavior: one branch, no Rng draws, identical event schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"
#include "src/via/device_profile.h"
#include "src/via/types.h"

namespace odmpi::via {

class Fabric {
 public:
  Fabric(sim::Engine& engine, int num_nodes, const DeviceProfile& profile)
      : engine_(engine), profile_(profile), egress_free_(num_nodes, 0) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Attaches (or detaches, with nullptr) the fault-injection plan.
  void set_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }

  /// Attaches (or detaches, with nullptr) the trace sink. The fabric
  /// records wire-occupancy spans and drop/duplicate instants under
  /// TraceCat::kFabric; recording never changes delivery times.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Ships `bytes` from `src` to `dst`. Returns false if the fault plan
  /// dropped the packet (the arrival callback will never fire).
  ///  * `cls`          — data vs control, for fault-injection targeting.
  ///  * `depart_time`  — sender-side timestamp of the doorbell (the
  ///    sending process's local clock).
  ///  * `src_nic_delay` — NIC processing before the wire (includes the
  ///    per-VI doorbell-scan cost on Berkeley VIA).
  ///  * `dst_nic_delay` — NIC processing after the wire.
  ///  * `on_tx_done`   — fired when the sender's NIC is finished with the
  ///    message (send-descriptor completion time); may be empty. Fires
  ///    even for dropped packets: the sender's NIC cannot see the loss.
  ///  * `on_arrival`   — fired at the destination NIC (twice when the
  ///    plan duplicates the packet).
  ///
  /// Callbacks are sim::SmallFn: per-packet captures up to 48 bytes ride
  /// inline through the engine with zero heap allocations (the
  /// std::function signature this replaced cost two allocations per
  /// packet on the send hot path).
  bool deliver(NodeId src, NodeId dst, std::size_t bytes,
               sim::FaultClass cls, sim::SimTime depart_time,
               sim::SimTime src_nic_delay, sim::SimTime dst_nic_delay,
               sim::SmallFn on_tx_done, sim::SmallFn on_arrival);

  [[nodiscard]] std::uint64_t packets_delivered() const {
    return packets_delivered_;
  }
  [[nodiscard]] std::uint64_t bytes_delivered() const {
    return bytes_delivered_;
  }
  /// Virtual time until `node`'s egress link drains everything already
  /// queued (0 when idle). Retransmission timers consult this so that a
  /// congested-but-healthy link is not mistaken for a dead one.
  [[nodiscard]] sim::SimTime egress_backlog(NodeId node,
                                            sim::SimTime now) const {
    const sim::SimTime free = egress_free_[static_cast<std::size_t>(node)];
    return free > now ? free - now : 0;
  }

  [[nodiscard]] std::uint64_t packets_dropped() const {
    return packets_dropped_;
  }
  [[nodiscard]] std::uint64_t packets_duplicated() const {
    return packets_duplicated_;
  }

 private:
  sim::Engine& engine_;
  const DeviceProfile& profile_;
  std::vector<sim::SimTime> egress_free_;
  sim::FaultPlan* fault_plan_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_duplicated_ = 0;
};

}  // namespace odmpi::via
