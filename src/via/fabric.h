// The cluster interconnect: cables and switches between NICs.
//
// Delivery cost = sender NIC processing + serialized egress transmission
// (per-byte) + wire/switch latency + receiver NIC processing. Egress
// serialization per node gives honest bandwidth saturation when a node
// streams to many peers (alltoall in IS).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"
#include "src/via/device_profile.h"
#include "src/via/types.h"

namespace odmpi::via {

class Fabric {
 public:
  Fabric(sim::Engine& engine, int num_nodes, const DeviceProfile& profile)
      : engine_(engine), profile_(profile), egress_free_(num_nodes, 0) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Ships `bytes` from `src` to `dst`.
  ///  * `depart_time`  — sender-side timestamp of the doorbell (the
  ///    sending process's local clock).
  ///  * `src_nic_delay` — NIC processing before the wire (includes the
  ///    per-VI doorbell-scan cost on Berkeley VIA).
  ///  * `dst_nic_delay` — NIC processing after the wire.
  ///  * `on_tx_done`   — fired when the sender's NIC is finished with the
  ///    message (send-descriptor completion time); may be empty.
  ///  * `on_arrival`   — fired at the destination NIC.
  void deliver(NodeId src, NodeId dst, std::size_t bytes,
               sim::SimTime depart_time, sim::SimTime src_nic_delay,
               sim::SimTime dst_nic_delay, std::function<void()> on_tx_done,
               std::function<void()> on_arrival);

  [[nodiscard]] std::uint64_t packets_delivered() const {
    return packets_delivered_;
  }
  [[nodiscard]] std::uint64_t bytes_delivered() const {
    return bytes_delivered_;
  }

 private:
  sim::Engine& engine_;
  const DeviceProfile& profile_;
  std::vector<sim::SimTime> egress_free_;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace odmpi::via
