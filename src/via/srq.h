// Shared receive queue: one pool of receive descriptors serving every VI
// bound to it, modelled on InfiniBand SRQ / XRC shared receive contexts.
//
// The resource argument is the paper's Table 2 sharpened for the NIC
// generation that followed VIA: with per-VI receive queues, a rank must
// prepost a full credit window of pinned buffers per connected peer —
// O(peers) pinned memory even when most peers are idle. A shared receive
// queue preposts one pool sized to the *aggregate* inflow, so per-peer
// receive-side state collapses to O(1); the flow-control invariant that
// makes this safe (the sum of credit windows granted to peers never
// exceeds the pool depth) lives in mpi::Device.
//
// Semantics mirror the per-VI queue: arrivals consume descriptors in
// FIFO order, and an arrival that finds the pool empty is dropped (a
// hard application error, made unreachable by the credit scheme).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "src/via/descriptor.h"
#include "src/via/types.h"

namespace odmpi::via {

class Nic;

class SharedRecvQueue {
 public:
  SharedRecvQueue(Nic& nic, int id) : nic_(nic), id_(id) {}

  SharedRecvQueue(const SharedRecvQueue&) = delete;
  SharedRecvQueue& operator=(const SharedRecvQueue&) = delete;

  /// Posts a receive descriptor to the shared pool. Same contract as
  /// Vi::post_recv: the buffer must lie in registered memory, and the
  /// caller is charged the per-post host overhead.
  Status post(Descriptor* desc);

  /// Takes the oldest posted descriptor, or null when the pool is empty.
  Descriptor* pop();

  [[nodiscard]] std::size_t depth() const { return queue_.size(); }
  [[nodiscard]] int id() const { return id_; }

  /// Arrivals dropped because the pool was empty.
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

  /// Total descriptors ever posted (observability for tests/benches).
  [[nodiscard]] std::uint64_t posted_total() const { return posted_total_; }

 private:
  friend class Nic;  // drop accounting on empty-pool arrivals

  Nic& nic_;
  int id_;
  std::deque<Descriptor*> queue_;
  std::uint64_t drops_ = 0;
  std::uint64_t posted_total_ = 0;
};

}  // namespace odmpi::via
