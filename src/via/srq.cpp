#include "src/via/srq.h"

#include "src/via/nic.h"

namespace odmpi::via {

Status SharedRecvQueue::post(Descriptor* desc) {
  Nic::charge_host(nic_.profile().recv_post_overhead);
  if (!nic_.memory().covers(desc->mem_handle, desc->addr, desc->length)) {
    desc->status = Status::kNotRegistered;
    desc->done = true;
    return Status::kNotRegistered;
  }
  desc->reset_for_repost();
  desc->op = DescOp::kReceive;
  queue_.push_back(desc);
  ++posted_total_;
  return Status::kSuccess;
}

Descriptor* SharedRecvQueue::pop() {
  if (queue_.empty()) return nullptr;
  Descriptor* desc = queue_.front();
  queue_.pop_front();
  return desc;
}

}  // namespace odmpi::via
