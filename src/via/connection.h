// VIA connection management: both models from the spec.
//
//  * Peer-to-peer (VIA >= 1.0, the only model Berkeley VIA offers): both
//    sides call connect_peer with the same discriminator; whichever
//    request arrives second completes the match. Symmetric — the property
//    the paper exploits for on-demand management (section 3.2).
//  * Client/server (VIA 0.95): the server parks in connect_wait, the
//    client issues connect_request; the server accepts or rejects.
//
// Incoming peer requests that found no local match are queued and exposed
// through poll_incoming(), which is exactly the hook MVICH's modified
// MPID_DeviceCheck() polls to accept on-demand connections without a
// server thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/sim/process.h"
#include "src/sim/stats.h"
#include "src/via/types.h"

namespace odmpi::via {

class Nic;
class Vi;

/// An incoming connection request visible to the host.
struct IncomingRequest {
  NodeId src_node = -1;
  ViId src_vi = -1;
  Discriminator discriminator = 0;
};

class ConnectionService {
 public:
  explicit ConnectionService(Nic& nic) : nic_(nic) {}

  ConnectionService(const ConnectionService&) = delete;
  ConnectionService& operator=(const ConnectionService&) = delete;

  // --- Peer-to-peer model -------------------------------------------------

  /// Nonblocking VipConnectPeerRequest: moves `vi` to kConnectPending and
  /// either matches an already-arrived remote request or sends ours.
  /// Completion is observable via vi.state() == kConnected.
  Status connect_peer(Vi& vi, NodeId remote_node, Discriminator disc);

  /// Connects `vi` straight to a remote endpoint whose id is already
  /// known — learned through an out-of-band bulk exchange — with a local
  /// driver transition only: no handshake packet, no kernel rendezvous
  /// (charges conn_bind_cost instead of conn_os_cost). Both sides must
  /// bind symmetrically or the pair is half-open; the static-tree
  /// bootstrap guarantees this with a barrier between exchange and bind.
  Status bind_peer(Vi& vi, NodeId remote_node, ViId remote_vi);

  /// Unmatched incoming peer requests in arrival order (charges one poll
  /// cost). Entries remain queued until a local connect_peer with the
  /// same discriminator claims them. `max_batch` bounds how many entries
  /// one poll reports (0 = no bound): under a connect storm the host
  /// admits requests in batched rounds instead of walking — and copying —
  /// an O(N) backlog on every progress pass.
  std::vector<IncomingRequest> poll_incoming(std::size_t max_batch = 0);

  /// True if any unmatched incoming request is queued (no cost; cheap
  /// host-memory check used by progress loops).
  [[nodiscard]] bool has_incoming() const { return !unmatched_.empty(); }

  /// Drops every queued unmatched peer request from `src`. Failure
  /// cleanup: once the host knows `src`'s process is gone (or its channel
  /// failed over), a stale pre-death request must be discarded — left
  /// queued it would be re-reported by poll_incoming on every progress
  /// pass forever.
  void drop_unmatched_from(NodeId src);

  /// True if an unmatched incoming request with `disc` is queued — i.e. a
  /// local connect_peer with that discriminator would match synchronously
  /// instead of waiting for the remote side. The on-demand manager's VI
  /// budget uses this to tell limbo-free admissions apart. Indexed: a
  /// connect storm can queue thousands of requests, so a linear scan here
  /// would turn every admission check into O(backlog).
  [[nodiscard]] bool has_unmatched_for(Discriminator disc) const {
    return unmatched_by_disc_.find(disc) != unmatched_by_disc_.end();
  }

  /// Backpressure watermark: under fault injection, a peer request that
  /// arrives while more than this many requests are already queued is
  /// answered with a busy notice telling the initiator to defer its
  /// retransmit timer past the estimated drain time (without consuming a
  /// retry attempt). Prevents an admission backlog from masquerading as
  /// loss and collapsing into a retry storm. No effect on fault-free
  /// runs, which arm no handshake timers at all.
  void set_busy_watermark(int depth) { busy_watermark_ = depth; }

  // --- Client/server model ------------------------------------------------

  /// Blocking VipConnectWait: parks the calling process until a client
  /// request with `disc` arrives; returns it.
  IncomingRequest connect_wait(Discriminator disc);

  /// Accepts a previously returned request, connecting `vi` to it.
  Status connect_accept(const IncomingRequest& request, Vi& vi);

  /// Rejects a previously returned request.
  void connect_reject(const IncomingRequest& request);

  /// Blocking VipConnectRequest (client side): returns once the server
  /// accepted (kSuccess) or rejected (kRejected).
  Status connect_request(Vi& vi, NodeId remote_node, Discriminator disc);

  // --- Disconnect ---------------------------------------------------------

  void disconnect(Vi& vi);

  /// Called by Nic::destroy_vi: drops every handshake record that still
  /// references `vi` by pointer or id. A peer request can be pending (with
  /// a retransmit timer armed) when its VI is torn down — the timer must
  /// find nothing rather than a dangling Vi*.
  void forget_vi(const Vi& vi);

  // --- Liveness probes (rank-death detection) ------------------------------
  // A connected pair exchanging no data has no retransmission machinery
  // watching the peer, so a process death on the far side is invisible: a
  // blocked receiver would wait forever. The host (the MPI device's
  // watchdog) asks the NIC to probe such peers: a connectionless ping is
  // answered at NIC level by a pong, retried with the same backoff budget
  // as a connection handshake; a peer whose NIC is dark never answers, and
  // exhausting the budget reports the peer failed through the callback.
  // Probes ride the control class, so they are visible to fault injection
  // like any handshake packet.

  /// Starts a liveness probe toward `remote` (no-op if one is in flight).
  void probe_peer(NodeId remote);

  /// True while a probe toward `remote` awaits its pong.
  [[nodiscard]] bool probing(NodeId remote) const {
    return probes_.find(remote) != probes_.end();
  }

  /// Called when a probe exhausts its retry budget: the peer is dead.
  void set_peer_failed_handler(std::function<void(NodeId)> handler) {
    peer_failed_handler_ = std::move(handler);
  }

  // --- Fabric-facing handlers (invoked by delivery events) ----------------

  void on_peer_request(const IncomingRequest& request);
  void on_peer_ack(ViId local_vi, NodeId remote_node, ViId remote_vi);
  void on_peer_busy(Discriminator disc, std::int64_t backlog);
  void on_cs_request(const IncomingRequest& request);
  void on_cs_response(ViId local_vi, bool accepted, NodeId remote_node,
                      ViId remote_vi);
  void on_disconnect(ViId local_vi);
  void on_liveness_ping(NodeId src_node);
  void on_liveness_pong(NodeId src_node);

  [[nodiscard]] std::uint64_t connections_established() const {
    return connections_established_;
  }

 private:
  struct PendingPeer {
    Vi* vi;
    NodeId remote_node;
    Discriminator disc = 0;
    int attempts = 0;
    std::uint64_t timer_generation = 0;  // invalidates stale timers
  };
  struct CsWaiter {
    Discriminator disc;
    sim::Process* process;
  };
  struct CsClient {
    Vi* vi;
    std::optional<Status> result;
    sim::Process* process;
    NodeId remote_node = -1;
    Discriminator disc = 0;
    int attempts = 0;
    std::uint64_t timer_generation = 0;
  };
  /// A client/server response already sent, retained so a retransmitted
  /// request (our response was lost) gets the same answer again.
  struct CsResponse {
    bool accepted = false;
    ViId my_vi = -1;
  };

  void send_control(NodeId dst, std::function<void(Nic&)> handler);
  void establish(Vi& vi, NodeId remote_node, ViId remote_vi);

  // unmatched_ bookkeeping: every insert/erase goes through these so the
  // per-discriminator index stays consistent with the arrival-order queue.
  void unmatched_push(const IncomingRequest& request);
  template <typename Pred>
  void unmatched_erase_if(Pred pred) {
    for (auto it = unmatched_.begin(); it != unmatched_.end();) {
      if (pred(*it)) {
        unmatched_index_remove(it->discriminator);
        it = unmatched_.erase(it);
      } else {
        ++it;
      }
    }
  }
  void unmatched_index_remove(Discriminator disc);

  /// Tells `request`'s initiator to defer its retransmit timer past our
  /// admission backlog's estimated drain time (fault mode only).
  void send_busy(const IncomingRequest& request);

  /// Drops fault-mode idempotency entries that reference `vi` once it
  /// leaves the connected state (disconnect, either side).
  void forget_established(const Vi& vi);

  // Records one point on the connection state-machine timeline
  // (TraceCat::kConn) when the job is tracing; no-op otherwise.
  void trace_conn(sim::Stats::Counter name, NodeId peer, std::int64_t a0 = 0,
                  std::int64_t a1 = 0) const;

  // Handshake retransmission (armed only under an active FaultPlan; see
  // Cluster::fault_active). Each arm bumps the generation so a timer that
  // outlived its request is a no-op.
  [[nodiscard]] bool fault_active() const;
  [[nodiscard]] sim::SimTime retry_wait(int attempts) const;
  [[nodiscard]] sim::SimTime congestion_allowance(NodeId remote) const;
  void arm_peer_timer(Discriminator disc, sim::SimTime extra_wait = 0);
  void on_peer_timer(Discriminator disc, std::uint64_t gen);
  void resend_peer_request(const PendingPeer& pending);
  void arm_cs_timer(ViId vi_id);
  void on_cs_timer(ViId vi_id, std::uint64_t gen);
  void send_ping(NodeId remote);
  void arm_probe_timer(NodeId remote);
  void on_probe_timer(NodeId remote, std::uint64_t gen);

  struct Probe {
    int attempts = 0;
    std::uint64_t timer_generation = 0;
  };

  Nic& nic_;
  std::map<Discriminator, PendingPeer> pending_peer_;
  std::map<NodeId, Probe> probes_;  // liveness probes awaiting a pong
  std::function<void(NodeId)> peer_failed_handler_;
  std::deque<IncomingRequest> unmatched_;        // peer reqs with no match
  // Entries queued in unmatched_ per discriminator: O(log) membership for
  // the admission fast path and duplicate suppression under storms.
  std::map<Discriminator, int> unmatched_by_disc_;
  int busy_watermark_ = 64;
  std::deque<IncomingRequest> cs_pending_;       // client reqs awaiting wait
  std::vector<CsWaiter> cs_waiters_;
  std::map<ViId, CsClient> cs_clients_;
  // Fault-mode bookkeeping for idempotent handshakes: which discriminators
  // this node already matched (so a retransmitted peer request is re-acked
  // instead of queued as new), and which client/server requests it already
  // answered. Both stay empty in fault-free runs.
  std::map<Discriminator, ViId> established_peer_;
  std::map<std::pair<NodeId, ViId>, CsResponse> cs_responded_;
  std::uint64_t next_timer_generation_ = 0;
  std::uint64_t connections_established_ = 0;
};

}  // namespace odmpi::via
