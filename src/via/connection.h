// VIA connection management: both models from the spec.
//
//  * Peer-to-peer (VIA >= 1.0, the only model Berkeley VIA offers): both
//    sides call connect_peer with the same discriminator; whichever
//    request arrives second completes the match. Symmetric — the property
//    the paper exploits for on-demand management (section 3.2).
//  * Client/server (VIA 0.95): the server parks in connect_wait, the
//    client issues connect_request; the server accepts or rejects.
//
// Incoming peer requests that found no local match are queued and exposed
// through poll_incoming(), which is exactly the hook MVICH's modified
// MPID_DeviceCheck() polls to accept on-demand connections without a
// server thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/sim/process.h"
#include "src/via/types.h"

namespace odmpi::via {

class Nic;
class Vi;

/// An incoming connection request visible to the host.
struct IncomingRequest {
  NodeId src_node = -1;
  ViId src_vi = -1;
  Discriminator discriminator = 0;
};

class ConnectionService {
 public:
  explicit ConnectionService(Nic& nic) : nic_(nic) {}

  ConnectionService(const ConnectionService&) = delete;
  ConnectionService& operator=(const ConnectionService&) = delete;

  // --- Peer-to-peer model -------------------------------------------------

  /// Nonblocking VipConnectPeerRequest: moves `vi` to kConnectPending and
  /// either matches an already-arrived remote request or sends ours.
  /// Completion is observable via vi.state() == kConnected.
  Status connect_peer(Vi& vi, NodeId remote_node, Discriminator disc);

  /// Unmatched incoming peer requests (charges one poll cost). Entries
  /// remain queued until a local connect_peer with the same discriminator
  /// claims them.
  std::vector<IncomingRequest> poll_incoming();

  /// True if any unmatched incoming request is queued (no cost; cheap
  /// host-memory check used by progress loops).
  [[nodiscard]] bool has_incoming() const { return !unmatched_.empty(); }

  // --- Client/server model ------------------------------------------------

  /// Blocking VipConnectWait: parks the calling process until a client
  /// request with `disc` arrives; returns it.
  IncomingRequest connect_wait(Discriminator disc);

  /// Accepts a previously returned request, connecting `vi` to it.
  Status connect_accept(const IncomingRequest& request, Vi& vi);

  /// Rejects a previously returned request.
  void connect_reject(const IncomingRequest& request);

  /// Blocking VipConnectRequest (client side): returns once the server
  /// accepted (kSuccess) or rejected (kRejected).
  Status connect_request(Vi& vi, NodeId remote_node, Discriminator disc);

  // --- Disconnect ---------------------------------------------------------

  void disconnect(Vi& vi);

  // --- Fabric-facing handlers (invoked by delivery events) ----------------

  void on_peer_request(const IncomingRequest& request);
  void on_peer_ack(ViId local_vi, NodeId remote_node, ViId remote_vi);
  void on_cs_request(const IncomingRequest& request);
  void on_cs_response(ViId local_vi, bool accepted, NodeId remote_node,
                      ViId remote_vi);
  void on_disconnect(ViId local_vi);

  [[nodiscard]] std::uint64_t connections_established() const {
    return connections_established_;
  }

 private:
  struct PendingPeer {
    Vi* vi;
    NodeId remote_node;
  };
  struct CsWaiter {
    Discriminator disc;
    sim::Process* process;
  };
  struct CsClient {
    Vi* vi;
    std::optional<Status> result;
    sim::Process* process;
  };

  void send_control(NodeId dst, std::function<void(Nic&)> handler);
  void establish(Vi& vi, NodeId remote_node, ViId remote_vi);

  Nic& nic_;
  std::map<Discriminator, PendingPeer> pending_peer_;
  std::deque<IncomingRequest> unmatched_;        // peer reqs with no match
  std::deque<IncomingRequest> cs_pending_;       // client reqs awaiting wait
  std::vector<CsWaiter> cs_waiters_;
  std::map<ViId, CsClient> cs_clients_;
  std::uint64_t connections_established_ = 0;
};

}  // namespace odmpi::via
