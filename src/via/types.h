// Common types for the Virtual Interface Architecture emulation.
//
// Naming follows the VIA 1.0 specification's concepts (VI, descriptor,
// completion queue, connection discriminator) with C++ types instead of
// the C VIPL calling convention.
#pragma once

#include <cstdint>
#include <string>

namespace odmpi::via {

/// A node in the simulated cluster (one NIC per node).
using NodeId = int;

/// Identifies a VI endpoint within its NIC.
using ViId = int;

/// Opaque handle to a registered (pinned) memory region.
using MemoryHandle = std::uint32_t;
inline constexpr MemoryHandle kInvalidMemoryHandle = 0;

/// Remote key for one-sided access, InfiniBand-style: a token the owner
/// of a registered region exports to peers, who present it with RDMA
/// read/write descriptors. Unlike a MemoryHandle (a local name for a
/// region), an rkey is meaningful to the *remote* NIC, which validates
/// the {rkey, address, length} triple against its own registry.
using RKey = std::uint32_t;
inline constexpr RKey kInvalidRKey = 0;

/// VIA connection discriminator: the rendezvous token that matches two
/// connection requests. MPI uses one discriminator per process pair.
using Discriminator = std::uint64_t;

/// Completion / operation status, modelled on VIP_STATUS.
enum class Status {
  kSuccess,
  kInProgress,
  kNotConnected,       // send posted on an unconnected VI: discarded
  kInvalidState,       // operation illegal in the VI's current state
  kNoDescriptor,       // message arrived with an empty receive queue
  kNotRegistered,      // buffer not covered by a registered region
  kRejected,           // connection request rejected by the remote side
  kDisconnected,       // peer disconnected with work still queued
  kLengthError,        // arriving message longer than the posted buffer
  kProtectionError,    // RDMA target outside the remote registered region
  kTimeout,            // connect / reliable send exhausted its retries
  kTransportError,     // packet lost on the wire (unreliable delivery)
  kPeerFailed,         // remote process known dead (rank-kill injection)
};

[[nodiscard]] inline const char* to_string(Status s) {
  switch (s) {
    case Status::kSuccess: return "success";
    case Status::kInProgress: return "in-progress";
    case Status::kNotConnected: return "not-connected";
    case Status::kInvalidState: return "invalid-state";
    case Status::kNoDescriptor: return "no-descriptor";
    case Status::kNotRegistered: return "not-registered";
    case Status::kRejected: return "rejected";
    case Status::kDisconnected: return "disconnected";
    case Status::kLengthError: return "length-error";
    case Status::kProtectionError: return "protection-error";
    case Status::kTimeout: return "timeout";
    case Status::kTransportError: return "transport-error";
    case Status::kPeerFailed: return "peer-failed";
  }
  return "unknown";
}

/// VIA reliability levels (spec section 2.8). The simulation's fabric is
/// loss-free unless fault injection is enabled, so the levels only change
/// behavior under an active FaultPlan:
///  * kUnreliableDelivery — losses are surfaced as kTransportError send
///    completions, duplicates and reordering reach the receiver;
///  * kReliableDelivery — per-VI sequencing, cumulative acks and seeded
///    retransmission with exponential backoff; exhausted retries complete
///    the descriptor with kTimeout and move the VI to the error state;
///  * kReliableReception — modelled identically to kReliableDelivery (the
///    distinction — completion on remote *memory* arrival vs NIC arrival
///    — collapses in the simulator's single-event arrival model).
enum class ReliabilityLevel : std::uint8_t {
  kUnreliableDelivery,
  kReliableDelivery,
  kReliableReception,
};

[[nodiscard]] inline const char* to_string(ReliabilityLevel r) {
  switch (r) {
    case ReliabilityLevel::kUnreliableDelivery: return "unreliable-delivery";
    case ReliabilityLevel::kReliableDelivery: return "reliable-delivery";
    case ReliabilityLevel::kReliableReception: return "reliable-reception";
  }
  return "unknown";
}

/// VI endpoint state machine, VIA spec section 2.4.
enum class ViState {
  kIdle,            // created, not yet connected
  kConnectPending,  // peer-to-peer or client request issued, waiting
  kConnected,
  kDisconnected,
  kError,
};

[[nodiscard]] inline const char* to_string(ViState s) {
  switch (s) {
    case ViState::kIdle: return "idle";
    case ViState::kConnectPending: return "connect-pending";
    case ViState::kConnected: return "connected";
    case ViState::kDisconnected: return "disconnected";
    case ViState::kError: return "error";
  }
  return "unknown";
}

}  // namespace odmpi::via
