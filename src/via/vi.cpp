#include "src/via/vi.h"

#include "src/via/nic.h"
#include "src/via/srq.h"

namespace odmpi::via {

Status Vi::post_send(Descriptor* desc) {
  Nic::charge_host(nic_.profile().send_post_overhead);
  if (state_ != ViState::kConnected) {
    // VIA discards work posted to an unconnected send queue. The MPI layer
    // must never hit this path (it parks sends in the pre-posted FIFO);
    // raw-VIA users observe the error through the descriptor status.
    desc->status = Status::kNotConnected;
    desc->done = true;
    nic_.stats().add("via.send_discarded_unconnected");
    return Status::kNotConnected;
  }
  if (!nic_.memory().covers(desc->mem_handle, desc->addr, desc->length)) {
    desc->status = Status::kNotRegistered;
    desc->done = true;
    return Status::kNotRegistered;
  }
  if (desc->op == DescOp::kRdmaWrite) {
    return nic_.start_rdma_write(*this, desc);
  }
  if (desc->op == DescOp::kRdmaRead) {
    return nic_.start_rdma_read(*this, desc);
  }
  return nic_.start_send(*this, desc);
}

Status Vi::post_recv(Descriptor* desc) {
  if (shared_recv_ != nullptr && state_ != ViState::kError) {
    // SharedRecvQueue::post levies the post charge and runs the same
    // covers validation, so delegate before charging here.
    return shared_recv_->post(desc);
  }
  Nic::charge_host(nic_.profile().recv_post_overhead);
  if (state_ == ViState::kError) {
    desc->status = Status::kInvalidState;
    desc->done = true;
    return Status::kInvalidState;
  }
  if (!nic_.memory().covers(desc->mem_handle, desc->addr, desc->length)) {
    desc->status = Status::kNotRegistered;
    desc->done = true;
    return Status::kNotRegistered;
  }
  desc->reset_for_repost();
  desc->op = DescOp::kReceive;
  recv_queue_.push_back(desc);
  return Status::kSuccess;
}

void Vi::disconnect() { nic_.connections().disconnect(*this); }

}  // namespace odmpi::via
