// The Virtual Interface endpoint: a send queue and a receive queue plus a
// connection state machine. Key VIA semantics preserved here:
//  * a send posted on an unconnected VI is discarded with an error
//    completion (this is what forces the paper's pre-posted-send FIFO);
//  * a message arriving at a VI with an empty receive queue is dropped;
//  * receive descriptors may legally be preposted before connection.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/sim/time.h"
#include "src/via/completion.h"
#include "src/via/descriptor.h"
#include "src/via/types.h"

namespace odmpi::via {

class Nic;
class SharedRecvQueue;

class Vi {
 public:
  Vi(Nic& nic, ViId id, CompletionQueue* send_cq, CompletionQueue* recv_cq)
      : nic_(nic), id_(id), send_cq_(send_cq), recv_cq_(recv_cq) {}

  Vi(const Vi&) = delete;
  Vi& operator=(const Vi&) = delete;

  /// Posts a send or RDMA-write descriptor. On an unconnected VI the
  /// descriptor completes immediately with kNotConnected and nothing is
  /// transmitted (VIA spec behaviour the paper quotes in section 3.4).
  Status post_send(Descriptor* desc);

  /// Posts a receive descriptor. Legal in any non-error state, including
  /// before the connection is established. On a VI bound to a shared
  /// receive queue the descriptor joins the shared pool.
  Status post_recv(Descriptor* desc);

  /// Binds this VI's receive side to a shared receive queue (XRC-style):
  /// arrivals consume descriptors from the shared pool instead of the
  /// per-VI queue. Must be done before the first arrival; null unbinds.
  void bind_shared_recv(SharedRecvQueue* srq) { shared_recv_ = srq; }
  [[nodiscard]] SharedRecvQueue* shared_recv() const { return shared_recv_; }

  /// Initiates an orderly disconnect (VipDisconnect).
  void disconnect();

  [[nodiscard]] ViState state() const { return state_; }
  [[nodiscard]] ViId id() const { return id_; }

  /// VIA reliability level requested at VI creation time. Only observable
  /// under an active FaultPlan — the loss-free wire satisfies all three
  /// levels for free (see types.h).
  [[nodiscard]] ReliabilityLevel reliability() const { return reliability_; }
  void set_reliability(ReliabilityLevel level) { reliability_ = level; }

  /// True when the reliable-delivery machinery should run for this VI.
  [[nodiscard]] bool reliable() const {
    return reliability_ != ReliabilityLevel::kUnreliableDelivery;
  }

  [[nodiscard]] Nic& nic() { return nic_; }
  [[nodiscard]] NodeId remote_node() const { return remote_node_; }
  [[nodiscard]] ViId remote_vi() const { return remote_vi_; }
  [[nodiscard]] CompletionQueue* send_cq() { return send_cq_; }
  [[nodiscard]] CompletionQueue* recv_cq() { return recv_cq_; }
  [[nodiscard]] std::size_t recv_queue_depth() const {
    return recv_queue_.size();
  }
  [[nodiscard]] std::size_t sends_in_flight() const {
    return sends_in_flight_;
  }

  /// Messages that arrived and were dropped because no receive descriptor
  /// was posted (a hard application error under VIA).
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  friend class Nic;
  friend class ConnectionService;

  void set_connected(NodeId remote_node, ViId remote_vi) {
    state_ = ViState::kConnected;
    remote_node_ = remote_node;
    remote_vi_ = remote_vi;
  }

  /// One unacknowledged reliable-delivery packet (send or RDMA write)
  /// retained for retransmission.
  struct ReliableSend {
    Descriptor* desc = nullptr;
    std::uint64_t seq = 0;
    std::vector<std::byte> payload;   // wire copy, survives retransmits
    std::size_t wire_bytes = 0;
    std::byte* remote_addr = nullptr; // RDMA writes only
    bool is_rdma = false;
    int retries = 0;
    std::uint64_t timer_generation = 0;
    sim::SimTime first_tx_time = 0;   // when this packet first hit the wire
  };

  Nic& nic_;
  ViId id_;
  ViState state_ = ViState::kIdle;
  ReliabilityLevel reliability_ = ReliabilityLevel::kUnreliableDelivery;
  NodeId remote_node_ = -1;
  ViId remote_vi_ = -1;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  SharedRecvQueue* shared_recv_ = nullptr;
  std::deque<Descriptor*> recv_queue_;
  std::size_t sends_in_flight_ = 0;
  std::uint64_t drops_ = 0;

  // Reliable-delivery state (touched only under an active FaultPlan).
  std::uint64_t next_send_seq_ = 0;     // next sequence number to assign
  std::uint64_t next_recv_seq_ = 0;     // next in-order seq expected
  std::map<std::uint64_t, std::unique_ptr<ReliableSend>> unacked_;
  // Liveness evidence: a VI only fails on retransmit exhaustion if the
  // peer has been silent since the packet's first transmission. Any ack
  // (including a duplicate re-ack) proves the link is congested, not dead.
  sim::SimTime last_ack_time_ = -1;
};

}  // namespace odmpi::via
