#include "src/via/nic.h"

#include <cassert>
#include <cstring>
#include <utility>

#include "src/via/provider.h"

namespace odmpi::via {

namespace {
// Wire framing per message (VIA header + CRC), added to payload bytes for
// transmission-time purposes.
constexpr std::size_t kWireHeaderBytes = 32;
// Acknowledgement packet size (reliable delivery, faulted runs only).
constexpr std::size_t kAckWireBytes = 16;

// Interned stat handles: these sites are cold individually but several
// sit on fault-path loops — handles keep them off the intern-table mutex.
const sim::Stats::Counter kViCreated = sim::Stats::counter("vi.created");
const sim::Stats::Counter kViOpenPeak = sim::Stats::counter("vi.open_peak");
const sim::Stats::Counter kMemPinnedPeak =
    sim::Stats::counter("mem.pinned_peak_bytes");
const sim::Stats::Counter kDroppedNoVi =
    sim::Stats::counter("msg.dropped_no_vi");
const sim::Stats::Counter kDroppedNoDesc =
    sim::Stats::counter("msg.dropped_no_desc");
const sim::Stats::Counter kLengthError =
    sim::Stats::counter("msg.length_error");
const sim::Stats::Counter kProtectionError =
    sim::Stats::counter("rdma.protection_error");
const sim::Stats::Counter kUdTransportErrors =
    sim::Stats::counter("via.ud_transport_errors");
const sim::Stats::Counter kBudgetExtended =
    sim::Stats::counter("via.retransmit_budget_extended");
const sim::Stats::Counter kRetransmits =
    sim::Stats::counter("via.retransmits");
const sim::Stats::Counter kSendTimeouts =
    sim::Stats::counter("via.send_timeouts");
const sim::Stats::Counter kDupSuppressed =
    sim::Stats::counter("via.dup_suppressed");
const sim::Stats::Counter kOutOfOrderDropped =
    sim::Stats::counter("via.out_of_order_dropped");

// Trace event names.
const sim::Stats::Counter kTrDoorbell =
    sim::Stats::counter("nic.doorbell_scan");
const sim::Stats::Counter kTrRetransmit =
    sim::Stats::counter("via.retransmit");
const sim::Stats::Counter kTrSendTimeout =
    sim::Stats::counter("via.send_timeout");
}  // namespace

Nic::Nic(Cluster& cluster, NodeId node)
    : cluster_(cluster), node_(node), connections_(*this) {}

Nic::~Nic() = default;

const DeviceProfile& Nic::profile() const { return cluster_.profile(); }

Vi* Nic::create_vi(CompletionQueue* send_cq, CompletionQueue* recv_cq) {
  charge_host(profile().vi_create_cost);
  const ViId id = static_cast<ViId>(vis_.size());
  vis_.push_back(std::make_unique<Vi>(*this, id, send_cq, recv_cq));
  ++open_vi_count_;
  ++vis_ever_created_;
  stats_.add(kViCreated);
  stats_.set_max(kViOpenPeak, open_vi_count_);
  return vis_.back().get();
}

void Nic::destroy_vi(Vi* vi) {
  assert(vi != nullptr);
  assert(vi->sends_in_flight_ == 0 && "destroy_vi with sends in flight");
  // Preposted receive descriptors that never matched a message are flushed
  // with kDisconnected status (VIA flushes work queues on destroy).
  while (!vi->recv_queue_.empty()) {
    Descriptor* desc = vi->recv_queue_.front();
    vi->recv_queue_.pop_front();
    desc->status = Status::kDisconnected;
    desc->done = true;
  }
  const ViId id = vi->id();
  assert(id >= 0 && id < static_cast<ViId>(vis_.size()) &&
         vis_[id].get() == vi);
  connections_.forget_vi(*vi);  // no handshake record may outlive the VI
  vis_[id].reset();  // keep ids of other VIs stable
  --open_vi_count_;
}

CompletionQueue* Nic::create_cq() {
  cqs_.push_back(std::make_unique<CompletionQueue>(profile()));
  return cqs_.back().get();
}

SharedRecvQueue* Nic::create_shared_recv_queue() {
  srqs_.push_back(std::make_unique<SharedRecvQueue>(
      *this, static_cast<int>(srqs_.size())));
  return srqs_.back().get();
}

MemoryHandle Nic::register_memory(const std::byte* base, std::size_t length) {
  const auto pages =
      (length + DeviceProfile::kPageBytes - 1) / DeviceProfile::kPageBytes;
  charge_host(static_cast<sim::SimTime>(pages) *
              profile().mem_reg_cost_per_page);
  const MemoryHandle h = memory_.register_region(base, length);
  stats_.set_max(kMemPinnedPeak, memory_.peak_pinned_bytes());
  return h;
}

bool Nic::deregister_memory(MemoryHandle handle) {
  return memory_.deregister(handle);
}

void Nic::notify_host() {
  if (dead_) return;
  if (host_waiter_ != nullptr) host_waiter_->wakeup();
}

void Nic::kill() {
  dead_ = true;
  host_waiter_ = nullptr;
}

Vi* Nic::find_vi(ViId id) {
  if (id < 0 || id >= static_cast<ViId>(vis_.size())) return nullptr;
  return vis_[id].get();
}

sim::SimTime Nic::send_nic_delay() const {
  // Berkeley VIA's firmware scans the doorbell of every open VI per
  // message (nic_per_vi_cost > 0); cLAN's hardware dispatch is flat.
  return profile().nic_base_cost +
         profile().nic_per_vi_cost * open_vi_count_;
}

void Nic::trace_doorbell(const Vi& vi) const {
  sim::Tracer* tr = cluster_.tracer();
  if (tr == nullptr || !tr->on(sim::TraceCat::kFabric)) return;
  tr->instant(sim::TraceCat::kFabric, kTrDoorbell, node_, vi.remote_node(),
              open_vi_count_, send_nic_delay());
}

void Nic::complete(Vi& vi, Descriptor* desc, Status status, std::size_t bytes,
                   bool is_receive) {
  desc->status = status;
  desc->bytes_transferred = bytes;
  desc->done = true;
  CompletionQueue* cq = is_receive ? vi.recv_cq() : vi.send_cq();
  if (cq != nullptr) cq->push(Completion{&vi, desc, is_receive});
  notify_host();
}

Status Nic::start_send(Vi& vi, Descriptor* desc) {
  assert(vi.state() == ViState::kConnected);
  ++hot_.msg_sent;
  hot_.msg_sent_bytes += static_cast<std::int64_t>(desc->length);
  trace_doorbell(vi);
  if (cluster_.fault_active()) {
    return vi.reliable() ? start_reliable(vi, desc, /*is_rdma=*/false)
                         : start_unreliable_lossy(vi, desc, /*is_rdma=*/false);
  }
  std::vector<std::byte> payload(desc->addr, desc->addr + desc->length);
  const NodeId dst = vi.remote_node();
  const ViId dst_vi = vi.remote_vi();
  ++vi.sends_in_flight_;

  Nic& remote = cluster_.nic(dst);
  Vi* vi_ptr = &vi;
  cluster_.fabric().deliver(
      node_, dst, desc->length + kWireHeaderBytes, sim::FaultClass::kData,
      sim::Process::current_time(cluster_.engine()), send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/
      [this, vi_ptr, desc] {
        --vi_ptr->sends_in_flight_;
        complete(*vi_ptr, desc, Status::kSuccess, desc->length,
                 /*is_receive=*/false);
      },
      /*on_arrival=*/
      [&remote, dst_vi, payload = std::move(payload)] {
        remote.on_message(dst_vi, payload);
      });
  return Status::kSuccess;
}

void Nic::on_message(ViId target_vi, const std::vector<std::byte>& payload) {
  Vi* vi = find_vi(target_vi);
  if (vi == nullptr || vi->state() != ViState::kConnected) {
    stats_.add(kDroppedNoVi);
    return;
  }
  Descriptor* desc = nullptr;
  if (vi->shared_recv_ != nullptr) {
    // XRC-style shared receive context: the arrival consumes from the
    // pool every bound VI shares. The completion still names this VI, so
    // the layer above can attribute the message to its peer.
    desc = vi->shared_recv_->pop();
    if (desc == nullptr) {
      ++vi->shared_recv_->drops_;
      ++vi->drops_;
      stats_.add(kDroppedNoDesc);
      return;
    }
  } else {
    if (vi->recv_queue_.empty()) {
      // VIA semantics: no preposted receive descriptor => the message is
      // dropped. The MPI credit scheme makes this unreachable from MPI.
      ++vi->drops_;
      stats_.add(kDroppedNoDesc);
      return;
    }
    desc = vi->recv_queue_.front();
    vi->recv_queue_.pop_front();
  }
  if (payload.size() > desc->length) {
    complete(*vi, desc, Status::kLengthError, 0, /*is_receive=*/true);
    stats_.add(kLengthError);
    return;
  }
  if (!payload.empty()) {
    std::memcpy(desc->addr, payload.data(), payload.size());
  }
  ++hot_.msg_received;
  complete(*vi, desc, Status::kSuccess, payload.size(), /*is_receive=*/true);
}

Status Nic::start_rdma_write(Vi& vi, Descriptor* desc) {
  assert(vi.state() == ViState::kConnected);
  const NodeId dst = vi.remote_node();
  Nic& remote = cluster_.nic(dst);
  // Simulation shortcut: the protection check that real hardware performs
  // at the target happens eagerly here; it is deterministic either way.
  if (!remote.memory().covers(desc->remote_mem_handle, desc->remote_addr,
                              desc->length)) {
    complete(vi, desc, Status::kProtectionError, 0, /*is_receive=*/false);
    stats_.add(kProtectionError);
    return Status::kProtectionError;
  }
  ++hot_.rdma_write;
  hot_.rdma_write_bytes += static_cast<std::int64_t>(desc->length);
  trace_doorbell(vi);
  if (cluster_.fault_active()) {
    return vi.reliable() ? start_reliable(vi, desc, /*is_rdma=*/true)
                         : start_unreliable_lossy(vi, desc, /*is_rdma=*/true);
  }
  std::vector<std::byte> payload(desc->addr, desc->addr + desc->length);
  std::byte* remote_addr = desc->remote_addr;
  ++vi.sends_in_flight_;

  Vi* vi_ptr = &vi;
  cluster_.fabric().deliver(
      node_, dst, desc->length + kWireHeaderBytes, sim::FaultClass::kData,
      sim::Process::current_time(cluster_.engine()), send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/
      [this, vi_ptr, desc] {
        --vi_ptr->sends_in_flight_;
        complete(*vi_ptr, desc, Status::kSuccess, desc->length,
                 /*is_receive=*/false);
      },
      /*on_arrival=*/
      [&remote, remote_addr, payload = std::move(payload)] {
        remote.on_rdma_write(remote_addr, kInvalidMemoryHandle, payload);
      });
  return Status::kSuccess;
}

void Nic::on_rdma_write(std::byte* remote_addr, MemoryHandle /*handle*/,
                        const std::vector<std::byte>& payload) {
  // The write lands silently: no receive descriptor is consumed and no
  // completion is generated at the target (plain RDMA write, no
  // immediate data) — the rendezvous FIN message provides notification.
  if (!payload.empty()) {
    std::memcpy(remote_addr, payload.data(), payload.size());
  }
  ++hot_.rdma_write_received;
}

// --- RDMA read --------------------------------------------------------------
// Two fabric trips: a header-sized request to the target, a data-sized
// response back. The initiator's descriptor completes on its send CQ when
// the response lands; the target consumes no receive descriptor and sees
// no completion (IB read semantics — the HCA serves the read without host
// involvement). Reads are inherently idempotent, so fault recovery is
// at-least-once request retransmission on a seeded timer: a duplicate
// response finds its pending-read id already gone and is dropped. (Real
// RDMA reads exist only on reliable connections; the simulation likewise
// retries reads regardless of the VI's nominal reliability level.)

Status Nic::start_rdma_read(Vi& vi, Descriptor* desc) {
  assert(vi.state() == ViState::kConnected);
  Nic& remote = cluster_.nic(vi.remote_node());
  // As with writes, the target-side protection check happens eagerly —
  // here against the rkey the region's owner exported.
  if (!remote.memory().covers_rkey(desc->remote_rkey, desc->remote_addr,
                                   desc->length)) {
    complete(vi, desc, Status::kProtectionError, 0, /*is_receive=*/false);
    stats_.add(kProtectionError);
    return Status::kProtectionError;
  }
  ++hot_.rdma_read;
  hot_.rdma_read_bytes += static_cast<std::int64_t>(desc->length);
  trace_doorbell(vi);
  ++vi.sends_in_flight_;
  const std::uint64_t read_id = next_read_id_++;
  PendingRead& pr = pending_reads_[read_id];
  pr.vi_id = vi.id();
  pr.desc = desc;
  transmit_read(read_id, pr);
  return Status::kSuccess;
}

void Nic::transmit_read(std::uint64_t read_id, PendingRead& pr) {
  Vi* vi = find_vi(pr.vi_id);
  if (vi == nullptr || vi->state() != ViState::kConnected) return;
  const NodeId dst = vi->remote_node();
  const ViId dst_vi = vi->remote_vi();
  Nic& remote = cluster_.nic(dst);
  Descriptor* desc = pr.desc;
  const sim::SimTime now = sim::Process::current_time(cluster_.engine());
  cluster_.fabric().deliver(
      node_, dst, kWireHeaderBytes, sim::FaultClass::kControl, now,
      send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/[] {},
      /*on_arrival=*/
      [&remote, dst_vi, read_id, addr = desc->remote_addr,
       len = desc->length] { remote.serve_rdma_read(dst_vi, read_id, addr,
                                                    len); });
  if (!cluster_.fault_active()) return;
  // Arm the retry timer: the round trip covers both wire directions and
  // the data-sized response, so the congestion-aware RTO of the reliable
  // path fits unchanged.
  const std::uint64_t gen = ++pr.timer_generation;
  const int shift = pr.retries < 6 ? pr.retries : 6;
  Fabric& fabric = cluster_.fabric();
  const sim::SimTime rto =
      (profile().retransmit_timeout << shift) +
      fabric.egress_backlog(node_, now) + fabric.egress_backlog(dst, now) +
      2 * profile().wire_latency;
  cluster_.engine().schedule_at(now + rto, [this, read_id, gen] {
    on_read_retry_timer(read_id, gen);
  });
}

void Nic::serve_rdma_read(ViId target_vi, std::uint64_t read_id,
                          std::byte* remote_addr, std::size_t length) {
  if (dead_) return;
  Vi* vi = find_vi(target_vi);
  if (vi == nullptr || vi->state() != ViState::kConnected) {
    stats_.add(kDroppedNoVi);
    return;
  }
  ++hot_.rdma_read_served;
  std::vector<std::byte> payload(remote_addr, remote_addr + length);
  const NodeId dst = vi->remote_node();
  Nic& initiator = cluster_.nic(dst);
  cluster_.fabric().deliver(
      node_, dst, length + kWireHeaderBytes, sim::FaultClass::kData,
      sim::Process::current_time(cluster_.engine()), send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/[] {},
      /*on_arrival=*/
      [&initiator, read_id, payload = std::move(payload)] {
        initiator.on_rdma_read_response(read_id, payload);
      });
}

void Nic::on_rdma_read_response(std::uint64_t read_id,
                                const std::vector<std::byte>& payload) {
  auto it = pending_reads_.find(read_id);
  if (it == pending_reads_.end()) {
    // Duplicate response from a retransmitted request.
    stats_.add(kDupSuppressed);
    return;
  }
  const PendingRead pr = it->second;
  pending_reads_.erase(it);
  Vi* vi = find_vi(pr.vi_id);
  if (vi == nullptr) return;
  // A response is liveness evidence for the peer, exactly like an ack.
  vi->last_ack_time_ = sim::Process::current_time(cluster_.engine());
  if (!payload.empty()) {
    std::memcpy(pr.desc->addr, payload.data(), payload.size());
  }
  --vi->sends_in_flight_;
  complete(*vi, pr.desc, Status::kSuccess, payload.size(),
           /*is_receive=*/false);
}

void Nic::on_read_retry_timer(std::uint64_t read_id, std::uint64_t gen) {
  if (dead_) return;
  auto it = pending_reads_.find(read_id);
  if (it == pending_reads_.end()) return;  // response arrived meanwhile
  PendingRead& pr = it->second;
  if (pr.timer_generation != gen) return;  // superseded timer
  Vi* vi = find_vi(pr.vi_id);
  if (vi == nullptr || vi->state() != ViState::kConnected) return;
  if (pr.retries >= profile().max_retransmits) {
    Descriptor* desc = pr.desc;
    pending_reads_.erase(it);
    --vi->sends_in_flight_;
    complete(*vi, desc, Status::kTimeout, 0, /*is_receive=*/false);
    fail_reliable_sends(*vi);  // error state + flush everything else queued
    return;
  }
  ++pr.retries;
  stats_.add(kRetransmits);
  if (sim::Tracer* tr = cluster_.tracer()) {
    tr->instant(sim::TraceCat::kFabric, kTrRetransmit, node_,
                vi->remote_node(), static_cast<std::int64_t>(read_id),
                pr.retries);
  }
  transmit_read(read_id, pr);
}

// --- Unreliable delivery under faults ---------------------------------------
// The packet takes one trip through the (lossy) fabric; if it is dropped
// the sender's descriptor completes with kTransportError — VIA's
// Unreliable Delivery level reports transport errors but never recovers
// from them (spec §2.8).

Status Nic::start_unreliable_lossy(Vi& vi, Descriptor* desc, bool is_rdma) {
  std::vector<std::byte> payload(desc->addr, desc->addr + desc->length);
  const NodeId dst = vi.remote_node();
  const ViId dst_vi = vi.remote_vi();
  std::byte* remote_addr = desc->remote_addr;
  ++vi.sends_in_flight_;

  Nic& remote = cluster_.nic(dst);
  Vi* vi_ptr = &vi;
  // deliver() tells us synchronously whether the packet was dropped, but
  // the tx-done lambda is built first — route the verdict through a
  // shared flag (tx-done always fires strictly after deliver() returns).
  auto dropped = std::make_shared<bool>(false);
  sim::SmallFn on_arrival;
  if (is_rdma) {
    on_arrival = [&remote, remote_addr, payload = std::move(payload)] {
      remote.on_rdma_write(remote_addr, kInvalidMemoryHandle, payload);
    };
  } else {
    on_arrival = [&remote, dst_vi, payload = std::move(payload)] {
      remote.on_message(dst_vi, payload);
    };
  }
  const bool ok = cluster_.fabric().deliver(
      node_, dst, desc->length + kWireHeaderBytes, sim::FaultClass::kData,
      sim::Process::current_time(cluster_.engine()), send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/
      [this, vi_ptr, desc, dropped] {
        --vi_ptr->sends_in_flight_;
        if (*dropped) {
          stats_.add(kUdTransportErrors);
          complete(*vi_ptr, desc, Status::kTransportError, 0,
                   /*is_receive=*/false);
        } else {
          complete(*vi_ptr, desc, Status::kSuccess, desc->length,
                   /*is_receive=*/false);
        }
      },
      std::move(on_arrival));
  *dropped = !ok;
  return Status::kSuccess;
}

// --- Reliable delivery ------------------------------------------------------

Status Nic::start_reliable(Vi& vi, Descriptor* desc, bool is_rdma) {
  auto rs = std::make_unique<Vi::ReliableSend>();
  rs->desc = desc;
  rs->seq = vi.next_send_seq_++;
  rs->payload.assign(desc->addr, desc->addr + desc->length);
  rs->wire_bytes = desc->length + kWireHeaderBytes;
  rs->remote_addr = desc->remote_addr;
  rs->is_rdma = is_rdma;
  ++vi.sends_in_flight_;
  Vi::ReliableSend& ref = *rs;
  vi.unacked_.emplace(ref.seq, std::move(rs));
  transmit_reliable(vi, ref);
  return Status::kSuccess;
}

void Nic::transmit_reliable(Vi& vi, Vi::ReliableSend& rs) {
  const NodeId dst = vi.remote_node();
  const ViId dst_vi = vi.remote_vi();
  Nic& remote = cluster_.nic(dst);
  sim::SmallFn on_arrival;
  if (rs.is_rdma) {
    on_arrival = [&remote, dst_vi, seq = rs.seq, addr = rs.remote_addr,
                  payload = rs.payload] {
      remote.on_reliable_rdma(dst_vi, seq, addr, payload);
    };
  } else {
    on_arrival = [&remote, dst_vi, seq = rs.seq, payload = rs.payload] {
      remote.on_reliable_message(dst_vi, seq, payload);
    };
  }
  const sim::SimTime now = sim::Process::current_time(cluster_.engine());
  if (rs.retries == 0 && rs.first_tx_time == 0) rs.first_tx_time = now;
  cluster_.fabric().deliver(
      node_, dst, rs.wire_bytes, sim::FaultClass::kData, now,
      send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/[] {},  // completion waits for the cumulative ack
      std::move(on_arrival));

  // Arm (or re-arm) the retransmission timer. Bumping the generation
  // invalidates any timer already in flight for this packet. The wait is
  // congestion-aware: both egress queues (ours, sampled after deliver so
  // it includes this packet, and the peer's, which the returning ack must
  // drain behind) are added to the exponential base timeout so a bursty
  // but healthy link does not trigger spurious retransmission.
  const std::uint64_t gen = ++rs.timer_generation;
  const int shift = rs.retries < 6 ? rs.retries : 6;
  Fabric& fabric = cluster_.fabric();
  const sim::SimTime rto =
      (profile().retransmit_timeout << shift) +
      fabric.egress_backlog(node_, now) + fabric.egress_backlog(dst, now) +
      2 * profile().wire_latency;
  const ViId vi_id = vi.id();
  const std::uint64_t seq = rs.seq;
  cluster_.engine().schedule_at(
      now + rto,
      [this, vi_id, seq, gen] { on_retransmit_timer(vi_id, seq, gen); });
}

void Nic::on_retransmit_timer(ViId vi_id, std::uint64_t seq,
                              std::uint64_t gen) {
  if (dead_) return;  // a corpse's armed timers are no-ops
  Vi* vi = find_vi(vi_id);
  if (vi == nullptr || vi->state() != ViState::kConnected) return;
  auto it = vi->unacked_.find(seq);
  if (it == vi->unacked_.end()) return;          // acked meanwhile
  Vi::ReliableSend& rs = *it->second;
  if (rs.timer_generation != gen) return;        // superseded timer
  if (rs.retries >= profile().max_retransmits) {
    // Exhausted budget — but an ack heard since this packet first went
    // out means the peer is alive and merely congested (or we are inside
    // a go-back-N recovery). Extend the budget instead of declaring the
    // link dead; a genuinely dead link produces no acks at all.
    if (vi->last_ack_time_ >= rs.first_tx_time) {
      rs.retries = 0;
      rs.first_tx_time = sim::Process::current_time(cluster_.engine());
      stats_.add(kBudgetExtended);
    } else {
      fail_reliable_sends(*vi);
      return;
    }
  }
  ++rs.retries;
  stats_.add(kRetransmits);
  if (sim::Tracer* tr = cluster_.tracer()) {
    tr->instant(sim::TraceCat::kFabric, kTrRetransmit, node_,
                vi->remote_node(), static_cast<std::int64_t>(seq),
                rs.retries);
  }
  transmit_reliable(*vi, rs);
}

void Nic::fail_reliable_sends(Vi& vi) {
  stats_.add(kSendTimeouts);
  if (sim::Tracer* tr = cluster_.tracer()) {
    tr->instant(sim::TraceCat::kFabric, kTrSendTimeout, node_,
                vi.remote_node(),
                static_cast<std::int64_t>(vi.unacked_.size()));
  }
  vi.state_ = ViState::kError;
  // Pending RDMA reads on this VI will never see their response; flush
  // them first (in issue order — the map key is the monotonic read id) so
  // sends_in_flight_ reaches zero.
  for (auto it = pending_reads_.begin(); it != pending_reads_.end();) {
    if (it->second.vi_id == vi.id()) {
      Descriptor* desc = it->second.desc;
      it = pending_reads_.erase(it);
      --vi.sends_in_flight_;
      complete(vi, desc, Status::kTimeout, 0, /*is_receive=*/false);
    } else {
      ++it;
    }
  }
  // Complete every outstanding packet in sequence order with kTimeout;
  // std::map iterates in ascending seq order already.
  while (!vi.unacked_.empty()) {
    auto it = vi.unacked_.begin();
    Descriptor* desc = it->second->desc;
    vi.unacked_.erase(it);
    --vi.sends_in_flight_;
    complete(vi, desc, Status::kTimeout, 0, /*is_receive=*/false);
  }
}

void Nic::complete_sends_on_disconnect(Vi& vi) {
  assert(vi.state() != ViState::kConnected);
  while (!vi.unacked_.empty()) {
    auto it = vi.unacked_.begin();
    Descriptor* desc = it->second->desc;
    const std::size_t bytes = it->second->payload.size();
    vi.unacked_.erase(it);
    --vi.sends_in_flight_;
    complete(vi, desc, Status::kSuccess, bytes, /*is_receive=*/false);
  }
}

void Nic::send_ack(Vi& vi) {
  const NodeId dst = vi.remote_node();
  const ViId dst_vi = vi.remote_vi();
  Nic& remote = cluster_.nic(dst);
  cluster_.fabric().deliver(
      node_, dst, kAckWireBytes, sim::FaultClass::kControl,
      sim::Process::current_time(cluster_.engine()), send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/[] {},
      /*on_arrival=*/
      [&remote, dst_vi, acked = vi.next_recv_seq_] {
        remote.on_ack(dst_vi, acked);
      });
}

void Nic::on_ack(ViId target_vi, std::uint64_t acked) {
  Vi* vi = find_vi(target_vi);
  if (vi == nullptr || vi->state() != ViState::kConnected) return;
  vi->last_ack_time_ = sim::Process::current_time(cluster_.engine());
  // Cumulative: everything below `acked` has been delivered in order.
  bool advanced = false;
  while (!vi->unacked_.empty() && vi->unacked_.begin()->first < acked) {
    auto it = vi->unacked_.begin();
    Descriptor* desc = it->second->desc;
    const std::size_t bytes = it->second->payload.size();
    vi->unacked_.erase(it);
    --vi->sends_in_flight_;
    advanced = true;
    complete(*vi, desc, Status::kSuccess, bytes, /*is_receive=*/false);
  }
  if (advanced) {
    // Forward progress: packets queued behind the (go-back-N) gap were
    // burning retries while undeliverable. Reset their budgets so only a
    // genuinely dead link — no acks at all — exhausts max_retransmits.
    for (auto& [seq, rs] : vi->unacked_) rs->retries = 0;
  }
}

void Nic::on_reliable_message(ViId target_vi, std::uint64_t seq,
                              const std::vector<std::byte>& payload) {
  Vi* vi = find_vi(target_vi);
  if (vi == nullptr || vi->state() != ViState::kConnected) {
    stats_.add(kDroppedNoVi);
    return;
  }
  if (seq < vi->next_recv_seq_) {
    // Duplicate (retransmit raced the ack, or fabric duplication).
    stats_.add(kDupSuppressed);
    send_ack(*vi);
    return;
  }
  if (seq > vi->next_recv_seq_) {
    // Gap: an earlier packet was lost. Go-back-N — drop and re-ack so
    // the sender's timer resends from the gap.
    stats_.add(kOutOfOrderDropped);
    send_ack(*vi);
    return;
  }
  ++vi->next_recv_seq_;
  on_message(target_vi, payload);
  send_ack(*vi);
}

void Nic::on_reliable_rdma(ViId target_vi, std::uint64_t seq,
                           std::byte* remote_addr,
                           const std::vector<std::byte>& payload) {
  Vi* vi = find_vi(target_vi);
  if (vi == nullptr || vi->state() != ViState::kConnected) {
    stats_.add(kDroppedNoVi);
    return;
  }
  if (seq < vi->next_recv_seq_) {
    stats_.add(kDupSuppressed);
    send_ack(*vi);
    return;
  }
  if (seq > vi->next_recv_seq_) {
    stats_.add(kOutOfOrderDropped);
    send_ack(*vi);
    return;
  }
  ++vi->next_recv_seq_;
  on_rdma_write(remote_addr, kInvalidMemoryHandle, payload);
  send_ack(*vi);
}

}  // namespace odmpi::via
