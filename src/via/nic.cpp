#include "src/via/nic.h"

#include <cassert>
#include <cstring>
#include <utility>

#include "src/via/provider.h"

namespace odmpi::via {

namespace {
// Wire framing per message (VIA header + CRC), added to payload bytes for
// transmission-time purposes.
constexpr std::size_t kWireHeaderBytes = 32;
}  // namespace

Nic::Nic(Cluster& cluster, NodeId node)
    : cluster_(cluster), node_(node), connections_(*this) {}

Nic::~Nic() = default;

const DeviceProfile& Nic::profile() const { return cluster_.profile(); }

Vi* Nic::create_vi(CompletionQueue* send_cq, CompletionQueue* recv_cq) {
  charge_host(profile().vi_create_cost);
  const ViId id = static_cast<ViId>(vis_.size());
  vis_.push_back(std::make_unique<Vi>(*this, id, send_cq, recv_cq));
  ++open_vi_count_;
  ++vis_ever_created_;
  stats_.add("vi.created");
  stats_.set_max("vi.open_peak", open_vi_count_);
  return vis_.back().get();
}

void Nic::destroy_vi(Vi* vi) {
  assert(vi != nullptr);
  assert(vi->sends_in_flight_ == 0 && "destroy_vi with sends in flight");
  // Preposted receive descriptors that never matched a message are flushed
  // with kDisconnected status (VIA flushes work queues on destroy).
  while (!vi->recv_queue_.empty()) {
    Descriptor* desc = vi->recv_queue_.front();
    vi->recv_queue_.pop_front();
    desc->status = Status::kDisconnected;
    desc->done = true;
  }
  const ViId id = vi->id();
  assert(id >= 0 && id < static_cast<ViId>(vis_.size()) &&
         vis_[id].get() == vi);
  vis_[id].reset();  // keep ids of other VIs stable
  --open_vi_count_;
}

CompletionQueue* Nic::create_cq() {
  cqs_.push_back(std::make_unique<CompletionQueue>(profile()));
  return cqs_.back().get();
}

MemoryHandle Nic::register_memory(const std::byte* base, std::size_t length) {
  const auto pages =
      (length + DeviceProfile::kPageBytes - 1) / DeviceProfile::kPageBytes;
  charge_host(static_cast<sim::SimTime>(pages) *
              profile().mem_reg_cost_per_page);
  const MemoryHandle h = memory_.register_region(base, length);
  stats_.set_max("mem.pinned_peak_bytes", memory_.peak_pinned_bytes());
  return h;
}

bool Nic::deregister_memory(MemoryHandle handle) {
  return memory_.deregister(handle);
}

void Nic::notify_host() {
  if (host_waiter_ != nullptr) host_waiter_->wakeup();
}

Vi* Nic::find_vi(ViId id) {
  if (id < 0 || id >= static_cast<ViId>(vis_.size())) return nullptr;
  return vis_[id].get();
}

sim::SimTime Nic::send_nic_delay() const {
  // Berkeley VIA's firmware scans the doorbell of every open VI per
  // message (nic_per_vi_cost > 0); cLAN's hardware dispatch is flat.
  return profile().nic_base_cost +
         profile().nic_per_vi_cost * open_vi_count_;
}

void Nic::complete(Vi& vi, Descriptor* desc, Status status, std::size_t bytes,
                   bool is_receive) {
  desc->status = status;
  desc->bytes_transferred = bytes;
  desc->done = true;
  CompletionQueue* cq = is_receive ? vi.recv_cq() : vi.send_cq();
  if (cq != nullptr) cq->push(Completion{&vi, desc, is_receive});
  notify_host();
}

Status Nic::start_send(Vi& vi, Descriptor* desc) {
  assert(vi.state() == ViState::kConnected);
  std::vector<std::byte> payload(desc->addr, desc->addr + desc->length);
  const NodeId dst = vi.remote_node();
  const ViId dst_vi = vi.remote_vi();
  ++vi.sends_in_flight_;
  ++hot_.msg_sent;
  hot_.msg_sent_bytes += static_cast<std::int64_t>(desc->length);

  Nic& remote = cluster_.nic(dst);
  Vi* vi_ptr = &vi;
  cluster_.fabric().deliver(
      node_, dst, desc->length + kWireHeaderBytes,
      sim::Process::current_time(cluster_.engine()), send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/
      [this, vi_ptr, desc] {
        --vi_ptr->sends_in_flight_;
        complete(*vi_ptr, desc, Status::kSuccess, desc->length,
                 /*is_receive=*/false);
      },
      /*on_arrival=*/
      [&remote, dst_vi, payload = std::move(payload)] {
        remote.on_message(dst_vi, payload);
      });
  return Status::kSuccess;
}

void Nic::on_message(ViId target_vi, const std::vector<std::byte>& payload) {
  Vi* vi = find_vi(target_vi);
  if (vi == nullptr || vi->state() != ViState::kConnected) {
    stats_.add("msg.dropped_no_vi");
    return;
  }
  if (vi->recv_queue_.empty()) {
    // VIA semantics: no preposted receive descriptor => the message is
    // dropped. The MPI credit scheme makes this unreachable from MPI.
    ++vi->drops_;
    stats_.add("msg.dropped_no_desc");
    return;
  }
  Descriptor* desc = vi->recv_queue_.front();
  vi->recv_queue_.pop_front();
  if (payload.size() > desc->length) {
    complete(*vi, desc, Status::kLengthError, 0, /*is_receive=*/true);
    stats_.add("msg.length_error");
    return;
  }
  if (!payload.empty()) {
    std::memcpy(desc->addr, payload.data(), payload.size());
  }
  ++hot_.msg_received;
  complete(*vi, desc, Status::kSuccess, payload.size(), /*is_receive=*/true);
}

Status Nic::start_rdma_write(Vi& vi, Descriptor* desc) {
  assert(vi.state() == ViState::kConnected);
  const NodeId dst = vi.remote_node();
  Nic& remote = cluster_.nic(dst);
  // Simulation shortcut: the protection check that real hardware performs
  // at the target happens eagerly here; it is deterministic either way.
  if (!remote.memory().covers(desc->remote_mem_handle, desc->remote_addr,
                              desc->length)) {
    complete(vi, desc, Status::kProtectionError, 0, /*is_receive=*/false);
    stats_.add("rdma.protection_error");
    return Status::kProtectionError;
  }
  std::vector<std::byte> payload(desc->addr, desc->addr + desc->length);
  std::byte* remote_addr = desc->remote_addr;
  ++vi.sends_in_flight_;
  ++hot_.rdma_write;
  hot_.rdma_write_bytes += static_cast<std::int64_t>(desc->length);

  Vi* vi_ptr = &vi;
  cluster_.fabric().deliver(
      node_, dst, desc->length + kWireHeaderBytes,
      sim::Process::current_time(cluster_.engine()), send_nic_delay(),
      /*dst_nic_delay=*/0,
      /*on_tx_done=*/
      [this, vi_ptr, desc] {
        --vi_ptr->sends_in_flight_;
        complete(*vi_ptr, desc, Status::kSuccess, desc->length,
                 /*is_receive=*/false);
      },
      /*on_arrival=*/
      [&remote, remote_addr, payload = std::move(payload)] {
        remote.on_rdma_write(remote_addr, kInvalidMemoryHandle, payload);
      });
  return Status::kSuccess;
}

void Nic::on_rdma_write(std::byte* remote_addr, MemoryHandle /*handle*/,
                        const std::vector<std::byte>& payload) {
  // The write lands silently: no receive descriptor is consumed and no
  // completion is generated at the target (plain RDMA write, no
  // immediate data) — the rendezvous FIN message provides notification.
  if (!payload.empty()) {
    std::memcpy(remote_addr, payload.data(), payload.size());
  }
  ++hot_.rdma_write_received;
}

}  // namespace odmpi::via
