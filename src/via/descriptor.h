// VIA descriptors: the work requests a process posts to a VI's send or
// receive queue. As in real VIA, descriptors are owned by the application
// (here the MPI device layer keeps pools of them) and are revisited for
// status once the NIC completes them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/via/types.h"

namespace odmpi::via {

enum class DescOp : std::uint8_t {
  kSend,
  kReceive,
  kRdmaWrite,
  kRdmaRead,
};

struct Descriptor {
  DescOp op = DescOp::kSend;

  // Local data segment. Must lie in memory registered under `mem_handle`.
  std::byte* addr = nullptr;
  std::size_t length = 0;
  MemoryHandle mem_handle = kInvalidMemoryHandle;

  // RDMA target (ignored for send/receive). Writes name the remote region
  // by handle (the CTS hands it over directly); reads present the rkey the
  // region's owner exported, validated by the remote NIC.
  std::byte* remote_addr = nullptr;
  MemoryHandle remote_mem_handle = kInvalidMemoryHandle;
  RKey remote_rkey = kInvalidRKey;

  // Filled in on completion.
  Status status = Status::kInProgress;
  std::size_t bytes_transferred = 0;
  bool done = false;

  // Opaque cookie for the layer above (MVICH stores its request pointer
  // in the descriptor the same way).
  void* user_context = nullptr;

  /// Resets completion state so pooled descriptors can be reposted.
  void reset_for_repost() {
    status = Status::kInProgress;
    bytes_transferred = 0;
    done = false;
  }
};

}  // namespace odmpi::via
