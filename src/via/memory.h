// Memory registration: VIA requires every communication buffer to live in
// registered (pinned) memory. The registry tracks pinned bytes per node —
// the resource whose waste under static connection management motivates
// the paper (119 GB of unused pinned buffers for CG on 1024 nodes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "src/sim/time.h"
#include "src/via/types.h"

namespace odmpi::via {

class MemoryRegistry {
 public:
  /// Registers [base, base+length) and returns its handle. The caller is
  /// charged the device's per-page registration cost by the NIC wrapper.
  MemoryHandle register_region(const std::byte* base, std::size_t length);

  /// Deregisters a region; returns false for an unknown handle.
  bool deregister(MemoryHandle handle);

  /// True if [addr, addr+length) lies inside the region of `handle`.
  [[nodiscard]] bool covers(MemoryHandle handle, const std::byte* addr,
                            std::size_t length) const;

  /// Remote key of a registered region, for export to peers that will
  /// target it with one-sided operations; kInvalidRKey for an unknown
  /// handle. Every region gets a distinct rkey at registration.
  [[nodiscard]] RKey export_rkey(MemoryHandle handle) const;

  /// Validates a one-sided access: true if `rkey` names a live region
  /// containing [addr, addr+length). This is the check the *target* NIC
  /// runs on an incoming RDMA read/write that presents an rkey.
  [[nodiscard]] bool covers_rkey(RKey rkey, const std::byte* addr,
                                 std::size_t length) const;

  /// Bytes currently pinned on this node.
  [[nodiscard]] std::int64_t pinned_bytes() const { return pinned_bytes_; }

  /// High-water mark of pinned bytes.
  [[nodiscard]] std::int64_t peak_pinned_bytes() const {
    return peak_pinned_bytes_;
  }

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

 private:
  struct Region {
    const std::byte* base;
    std::size_t length;
    RKey rkey;
  };
  std::map<MemoryHandle, Region> regions_;
  std::map<RKey, MemoryHandle> rkey_to_handle_;
  MemoryHandle next_handle_ = 1;
  RKey next_rkey_ = 1;
  std::int64_t pinned_bytes_ = 0;
  std::int64_t peak_pinned_bytes_ = 0;
};

}  // namespace odmpi::via
