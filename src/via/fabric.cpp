#include "src/via/fabric.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

namespace odmpi::via {

namespace {

const sim::Stats::Counter kTrPacket = sim::Stats::counter("fabric.packet");
const sim::Stats::Counter kTrDrop = sim::Stats::counter("fabric.drop");
const sim::Stats::Counter kTrDup = sim::Stats::counter("fabric.dup");

}  // namespace

bool Fabric::deliver(NodeId src, NodeId dst, std::size_t bytes,
                     sim::FaultClass cls, sim::SimTime depart_time,
                     sim::SimTime src_nic_delay, sim::SimTime dst_nic_delay,
                     sim::SmallFn on_tx_done, sim::SmallFn on_arrival) {
  assert(src >= 0 && src < static_cast<int>(egress_free_.size()));
  assert(dst >= 0 && dst < static_cast<int>(egress_free_.size()));

  const sim::SimTime ready = depart_time + src_nic_delay;
  const sim::SimTime tx_start = std::max(ready, egress_free_[src]);
  const auto tx_time = static_cast<sim::SimTime>(
      static_cast<double>(bytes) * profile_.per_byte_ns);
  const sim::SimTime tx_done = tx_start + tx_time;
  egress_free_[src] = tx_done;

  sim::SimTime arrival = tx_done + profile_.wire_latency + dst_nic_delay;

  if (on_tx_done) {
    engine_.schedule_at(tx_done, std::move(on_tx_done));
  }

  if (fault_plan_ != nullptr && fault_plan_->enabled()) {
    const sim::FaultDecision d = fault_plan_->decide(src, dst, cls, tx_start);
    if (d.drop) {
      ++packets_dropped_;
      if (tracer_ != nullptr) {
        tracer_->instant_at(sim::TraceCat::kFabric, kTrDrop, src, dst,
                            tx_start, static_cast<std::int64_t>(bytes),
                            static_cast<std::int64_t>(cls));
      }
      return false;
    }
    arrival += d.extra_delay;
    if (d.duplicate) {
      ++packets_duplicated_;
      // SmallFn is move-only; the duplicate needs the callback twice.
      // Cold path (faults only), so one shared_ptr allocation is fine.
      // Schedule order (dup first, then primary) matches the pre-SmallFn
      // behavior so the event sequence numbers are unchanged.
      auto shared =
          std::make_shared<sim::SmallFn>(std::move(on_arrival));
      engine_.schedule_at(arrival + d.duplicate_lag,
                          [shared] { (*shared)(); });
      on_arrival = [shared] { (*shared)(); };
      if (tracer_ != nullptr) {
        tracer_->instant_at(sim::TraceCat::kFabric, kTrDup, src, dst,
                            arrival + d.duplicate_lag,
                            static_cast<std::int64_t>(bytes),
                            static_cast<std::int64_t>(cls));
      }
    }
  }

  ++packets_delivered_;
  bytes_delivered_ += bytes;
  if (tracer_ != nullptr) {
    // One span per packet covering NIC egress queueing + wire + far NIC:
    // the interval a viewer should see the bytes "in flight".
    tracer_->complete(sim::TraceCat::kFabric, kTrPacket, src, dst, tx_start,
                      arrival - tx_start, static_cast<std::int64_t>(bytes),
                      static_cast<std::int64_t>(cls));
  }
  engine_.schedule_at(arrival, std::move(on_arrival));
  return true;
}

}  // namespace odmpi::via
