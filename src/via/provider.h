// The Cluster: top-level VIA provider object tying the engine, the device
// profile, the fabric and one NIC per node together. The MPI runtime
// builds one Cluster per simulated job.
#pragma once

#include <memory>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/via/device_profile.h"
#include "src/via/fabric.h"
#include "src/via/nic.h"
#include "src/via/types.h"

namespace odmpi::via {

class Cluster {
 public:
  Cluster(sim::Engine& engine, int num_nodes, DeviceProfile profile,
          sim::FaultConfig fault = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const DeviceProfile& profile() const { return profile_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] int size() const { return static_cast<int>(nics_.size()); }
  [[nodiscard]] Nic& nic(NodeId node) { return *nics_.at(node); }

  /// True when fault injection is live: the reliability machinery (acks,
  /// retransmission, connect timers) only engages then, keeping the
  /// fault-free event schedule identical to a plan-less build.
  [[nodiscard]] bool fault_active() const { return fault_plan_.enabled(); }
  [[nodiscard]] sim::FaultPlan& fault_plan() { return fault_plan_; }

  /// Attaches the job's trace sink (owned by the MPI World) and forwards
  /// it to the fabric; NICs and the connection service read it from here.
  void set_tracer(sim::Tracer* tracer) {
    tracer_ = tracer;
    fabric_.set_tracer(tracer);
  }
  /// The attached tracer, or nullptr when the job is not tracing.
  [[nodiscard]] sim::Tracer* tracer() const { return tracer_; }

  /// Aggregated statistics across every NIC (plus fabric totals).
  [[nodiscard]] sim::Stats aggregate_stats();

 private:
  sim::Engine& engine_;
  DeviceProfile profile_;
  sim::FaultPlan fault_plan_;
  sim::Tracer* tracer_ = nullptr;
  Fabric fabric_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace odmpi::via
