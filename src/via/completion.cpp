#include "src/via/completion.h"

#include <cassert>

#include "src/via/device_profile.h"

namespace odmpi::via {

std::optional<Completion> CompletionQueue::poll() {
  if (auto* p = sim::Process::current()) {
    p->advance(profile_.cq_poll_cost);
  }
  if (entries_.empty()) return std::nullopt;
  Completion c = entries_.front();
  entries_.pop_front();
  return c;
}

Completion CompletionQueue::wait() {
  auto* p = sim::Process::current();
  assert(p != nullptr && "CompletionQueue::wait outside a process");
  p->advance(profile_.cq_poll_cost);
  while (entries_.empty()) {
    waiter_ = p;
    const sim::SimTime blocked = p->block();
    waiter_ = nullptr;
    if (blocked > 0 && !profile_.wait_is_poll) {
      // cLAN-style wait: the process really slept in the kernel and pays
      // the interrupt + reschedule cost on the way out. On Berkeley VIA
      // wait degenerates to polling: the elapsed virtual time is the same
      // (the process owns its CPU either way) but there is no penalty.
      ++kernel_wakeups_;
      p->advance(profile_.blocking_wait_wakeup);
    }
  }
  Completion c = entries_.front();
  entries_.pop_front();
  return c;
}

void CompletionQueue::push(const Completion& completion) {
  entries_.push_back(completion);
  if (waiter_ != nullptr) waiter_->wakeup();
}

}  // namespace odmpi::via
