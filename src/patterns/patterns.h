// Communication-pattern generators for the applications of the paper's
// Table 1 (taken from Vetter & Mueller's IPDPS'02 characterization):
// sPPM, SMG2000, Sphot, Sweep3D, SAMRAI and NPB CG. Each generator yields
// the set of *send destinations* per rank — Table 1's metric is the
// average number of distinct destinations per process (Sphot's 0.98 at 64
// ranks only works if receive-only masters count zero).
#pragma once

#include <set>
#include <string>
#include <vector>

namespace odmpi::patterns {

using DestinationSets = std::vector<std::set<int>>;

/// sPPM: 3D hydrodynamics, non-periodic nearest-neighbour halo exchange
/// on a 3D process grid (plus the boundary-condition partner asymmetry).
DestinationSets sppm(int nprocs);

/// SMG2000: semicoarsening multigrid; destinations grow with the level
/// count because coarse levels exchange at power-of-two strides in the
/// semicoarsened dimension and with a widening stencil in the others.
DestinationSets smg2000(int nprocs);

/// Sphot: Monte-Carlo photon transport, worker -> master result reports.
DestinationSets sphot(int nprocs);

/// Sweep3D: 2D process grid wavefront sweeps (non-periodic, 4 neighbours).
DestinationSets sweep3d(int nprocs);

/// SAMRAI: structured AMR; locality-dominated partner sets with a few
/// long-range partners from load balancing (synthetic stand-in for the
/// proprietary input deck, documented in DESIGN.md).
DestinationSets samrai(int nprocs);

/// NPB CG: the 2D grid row-reduction + transpose exchange + allreduce
/// tree destinations, matching src/nas/cg.cpp.
DestinationSets cg(int nprocs);

/// Average number of distinct destinations per process (Table 1 metric).
double average_destinations(const DestinationSets& sets);

struct PatternRow {
  std::string name;
  int nprocs;
  double average;   // measured from our generator
  double paper;     // Table 1's published value
};

/// All Table 1 rows (64 and 1024 processes per application).
std::vector<PatternRow> table1();

}  // namespace odmpi::patterns
