#include "src/patterns/patterns.h"

#include <array>
#include <cassert>
#include <cmath>

namespace odmpi::patterns {

namespace {

/// Splits a power-of-two process count over three dimensions by dealing
/// factor-2 bits round-robin (64 -> 4x4x4, 1024 -> 16x8x8).
std::array<int, 3> grid3(int n) {
  assert((n & (n - 1)) == 0);
  std::array<int, 3> p = {1, 1, 1};
  int dim = 0;
  while (n > 1) {
    p[static_cast<std::size_t>(dim)] *= 2;
    n /= 2;
    dim = (dim + 1) % 3;
  }
  return p;
}

std::array<int, 2> grid2(int n) {
  int a = static_cast<int>(std::lround(std::sqrt(n)));
  while (n % a != 0) --a;
  return {a, n / a};
}

}  // namespace

double average_destinations(const DestinationSets& sets) {
  double total = 0;
  for (const auto& s : sets) total += static_cast<double>(s.size());
  return total / static_cast<double>(sets.size());
}

DestinationSets sppm(int nprocs) {
  const auto p = grid3(nprocs);
  DestinationSets dests(static_cast<std::size_t>(nprocs));
  const auto rank_of = [&](int x, int y, int z) {
    return (x * p[1] + y) * p[2] + z;
  };
  for (int x = 0; x < p[0]; ++x) {
    for (int y = 0; y < p[1]; ++y) {
      for (int z = 0; z < p[2]; ++z) {
        auto& d = dests[static_cast<std::size_t>(rank_of(x, y, z))];
        // Non-periodic 6-face halo exchange.
        if (x > 0) d.insert(rank_of(x - 1, y, z));
        if (x + 1 < p[0]) d.insert(rank_of(x + 1, y, z));
        if (y > 0) d.insert(rank_of(x, y - 1, z));
        if (y + 1 < p[1]) d.insert(rank_of(x, y + 1, z));
        if (z > 0) d.insert(rank_of(x, y, z - 1));
        if (z + 1 < p[2]) d.insert(rank_of(x, y, z + 1));
      }
    }
  }
  return dests;
}

DestinationSets smg2000(int nprocs) {
  const auto p = grid3(nprocs);
  DestinationSets dests(static_cast<std::size_t>(nprocs));
  const auto rank_of = [&](int x, int y, int z) {
    return (x * p[1] + y) * p[2] + z;
  };
  // Semicoarsening in z: every level couples z-partners at a doubled
  // stride, and the 27-point coarse operators couple the +-1 xy
  // neighbourhood at each of those levels. Coarse-level data
  // redistribution wraps the boundaries, so the partner offsets are
  // periodic — which is what drives SMG's unusually large partner sets
  // (41.88 of 63 possible in the paper's Table 1).
  const auto wrap = [](int v, int n) { return ((v % n) + n) % n; };
  for (int x = 0; x < p[0]; ++x) {
    for (int y = 0; y < p[1]; ++y) {
      for (int z = 0; z < p[2]; ++z) {
        auto& d = dests[static_cast<std::size_t>(rank_of(x, y, z))];
        for (int stride = 1; stride < 2 * p[2]; stride *= 2) {
          for (int dx = -1; dx <= 1; ++dx) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dz : {-stride, stride, 0}) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                d.insert(rank_of(wrap(x + dx, p[0]), wrap(y + dy, p[1]),
                                 wrap(z + dz, p[2])));
              }
            }
          }
        }
        d.erase(rank_of(x, y, z));
      }
    }
  }
  return dests;
}

DestinationSets sphot(int nprocs) {
  DestinationSets dests(static_cast<std::size_t>(nprocs));
  // Workers report tallies to the master; the master only receives.
  for (int r = 1; r < nprocs; ++r) dests[static_cast<std::size_t>(r)].insert(0);
  return dests;
}

DestinationSets sweep3d(int nprocs) {
  const auto p = grid2(nprocs);
  DestinationSets dests(static_cast<std::size_t>(nprocs));
  const auto rank_of = [&](int x, int y) { return x * p[1] + y; };
  for (int x = 0; x < p[0]; ++x) {
    for (int y = 0; y < p[1]; ++y) {
      auto& d = dests[static_cast<std::size_t>(rank_of(x, y))];
      // Wavefront sweeps pass through all four non-periodic neighbours.
      if (x > 0) d.insert(rank_of(x - 1, y));
      if (x + 1 < p[0]) d.insert(rank_of(x + 1, y));
      if (y > 0) d.insert(rank_of(x, y - 1));
      if (y + 1 < p[1]) d.insert(rank_of(x, y + 1));
    }
  }
  return dests;
}

DestinationSets samrai(int nprocs) {
  DestinationSets dests(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    auto& d = dests[static_cast<std::size_t>(r)];
    // Patches laid out along a space-filling curve: near neighbours on
    // the curve, plus one longer-range partner from patch migration.
    for (int off : {-2, -1, 1, 2}) {
      const int t = r + off;
      if (t >= 0 && t < nprocs) d.insert(t);
    }
    d.insert((r + 7) % nprocs);
    d.erase(r);
  }
  return dests;
}

DestinationSets cg(int nprocs) {
  assert((nprocs & (nprocs - 1)) == 0);
  int l = 0;
  while ((1 << l) < nprocs) ++l;
  const int npcols = 1 << (l / 2);
  const int nprows = 1 << (l - l / 2);
  DestinationSets dests(static_cast<std::size_t>(nprocs));
  for (int me = 0; me < nprocs; ++me) {
    auto& d = dests[static_cast<std::size_t>(me)];
    const int row = me / npcols, col = me % npcols;
    // Row-group recursive-doubling reduction.
    for (int mask = 1; mask < npcols; mask <<= 1) {
      d.insert(row * npcols + (col ^ mask));
    }
    // Transpose-style redistribution.
    if (npcols == nprows) {
      const int partner = col * npcols + row;
      if (partner != me) d.insert(partner);
    } else {
      d.insert((2 * col) * npcols + row / 2);
      d.insert((2 * col + 1) * npcols + row / 2);
      d.erase(me);
    }
    // Allreduce (recursive doubling over the full communicator).
    for (int mask = 1; mask < nprocs; mask <<= 1) d.insert(me ^ mask);
  }
  return dests;
}

std::vector<PatternRow> table1() {
  struct App {
    const char* name;
    DestinationSets (*fn)(int);
    double paper64;
    double paper1024;  // the paper reports upper bounds at 1024
  };
  const App apps[] = {
      {"sPPM", &sppm, 5.5, 6},        {"SMG2000", &smg2000, 41.88, 1023},
      {"Sphot", &sphot, 0.98, 1},     {"Sweep3D", &sweep3d, 3.5, 4},
      {"SAMRAI", &samrai, 4.94, 10},  {"CG", &cg, 6.36, 11},
  };
  std::vector<PatternRow> rows;
  for (const App& app : apps) {
    rows.push_back({app.name, 64, average_destinations(app.fn(64)),
                    app.paper64});
    rows.push_back({app.name, 1024, average_destinations(app.fn(1024)),
                    app.paper1024});
  }
  return rows;
}

}  // namespace odmpi::patterns
