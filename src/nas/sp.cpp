// NAS SP: scalar pentadiagonal ADI solver on the multi-partition scheme.
#include "src/nas/adi.h"

namespace odmpi::nas {

KernelResult run_sp(mpi::Comm& comm, Class cls) {
  // SP's sweep boundaries are scalar lines: one plane of the 5 solution
  // components per stage.
  return run_adi(comm, cls, AdiConfig{"SP", /*boundary_factor=*/1});
}

}  // namespace odmpi::nas
