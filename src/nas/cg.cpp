// NAS CG: conjugate gradient with the NPB 2D processor-grid communication
// structure — row-group recursive-doubling reduction for the distributed
// matrix-vector product, a transpose-style redistribution exchange, and
// global allreduces for the dot products. The numerics run on a reduced
// dense SPD system and are verified by the residual norm; the full-class
// problem is represented by virtual compute charges and by padding the
// exchange messages to class-scaled sizes (so the eager/rendezvous split
// matches the real benchmark).
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "src/nas/common.h"
#include "src/sim/rng.h"

namespace odmpi::nas {

namespace {

constexpr int kN = 256;          // reduced global problem size
constexpr int kInnerIters = 25;  // NPB cgitmax
constexpr mpi::Tag kTagReduce = 31;
constexpr mpi::Tag kTagExchange = 32;

int class_n(Class cls) {
  switch (cls) {
    case Class::S: return 1400;
    case Class::A: return 14000;
    case Class::B: return 75000;
    case Class::C: return 150000;
  }
  return 1400;
}

// Symmetric pseudo-random entry in [0, 1).
double sym_entry(int i, int j) {
  const int lo = std::min(i, j), hi = std::max(i, j);
  std::uint64_t s =
      static_cast<std::uint64_t>(lo) * 1000003u + static_cast<std::uint64_t>(hi);
  return static_cast<double>(sim::splitmix64(s) >> 11) * 0x1.0p-53;
}

double matrix_entry(int i, int j) {
  return (i == j ? static_cast<double>(kN) : 0.0) + sym_entry(i, j);
}

struct CgGrid {
  int nprows, npcols, row, col, nr, nc, r0, c0;
  std::size_t pad_doubles;  // exchange size scaled to the NPB class
  std::vector<double> a_block;  // my dense block, precomputed once
};

CgGrid make_grid(mpi::Comm& comm, Class cls) {
  const int p = comm.size();
  assert((p & (p - 1)) == 0 && "NPB CG requires a power-of-two process count");
  int l = 0;
  while ((1 << l) < p) ++l;
  CgGrid g;
  g.npcols = 1 << (l / 2);
  g.nprows = 1 << (l - l / 2);
  g.row = comm.rank() / g.npcols;
  g.col = comm.rank() % g.npcols;
  g.nr = kN / g.nprows;
  g.nc = kN / g.npcols;
  g.r0 = g.row * g.nr;
  g.c0 = g.col * g.nc;
  const std::size_t class_seg =
      static_cast<std::size_t>(class_n(cls)) / static_cast<std::size_t>(g.nprows);
  // Cap the padding: the protocol behaviour (rendezvous) is identical
  // beyond the threshold and huge memcpys only burn wall-clock time in
  // the simulator's triple-copy data path.
  g.pad_doubles =
      std::max<std::size_t>(static_cast<std::size_t>(g.nr),
                            std::min<std::size_t>(class_seg, 1024));
  g.a_block.resize(static_cast<std::size_t>(g.nr) *
                   static_cast<std::size_t>(g.nc));
  for (int i = 0; i < g.nr; ++i)
    for (int j = 0; j < g.nc; ++j)
      g.a_block[static_cast<std::size_t>(i) * g.nc + j] =
          matrix_entry(g.r0 + i, g.c0 + j);
  return g;
}

/// q_row = sum over the row group of (A_block x p_col), then redistribute
/// so every rank gets w over its column segment.
void distributed_matvec(mpi::Comm& comm, const CgGrid& g,
                        const std::vector<double>& p_col,
                        std::vector<double>& w_col,
                        std::vector<double>& scratch_a,
                        std::vector<double>& scratch_b) {
  // Local dense block gemv.
  scratch_a.assign(g.pad_doubles, 0.0);
  for (int i = 0; i < g.nr; ++i) {
    const double* row = &g.a_block[static_cast<std::size_t>(i) * g.nc];
    double sum = 0;
    for (int j = 0; j < g.nc; ++j) {
      sum += row[j] * p_col[static_cast<std::size_t>(j)];
    }
    scratch_a[static_cast<std::size_t>(i)] = sum;
  }

  // Row-group allreduce by recursive doubling (XOR partners inside the
  // row, which are XOR partners of the global rank too).
  scratch_b.assign(g.pad_doubles, 0.0);
  for (int mask = 1; mask < g.npcols; mask <<= 1) {
    const int partner = g.row * g.npcols + (g.col ^ mask);
    comm.sendrecv(scratch_a.data(), static_cast<int>(g.pad_doubles), mpi::kDouble,
                  partner, kTagReduce, scratch_b.data(),
                  static_cast<int>(g.pad_doubles), mpi::kDouble, partner,
                  kTagReduce);
    for (int i = 0; i < g.nr; ++i)
      scratch_a[static_cast<std::size_t>(i)] +=
          scratch_b[static_cast<std::size_t>(i)];
  }

  // Redistribute the reduced row segment into column segments.
  w_col.assign(static_cast<std::size_t>(g.nc), 0.0);
  if (g.nprows == g.npcols) {
    const int partner = g.col * g.npcols + g.row;  // transpose position
    if (partner == comm.rank()) {
      std::copy_n(scratch_a.begin(), g.nr, w_col.begin());
    } else {
      comm.sendrecv(scratch_a.data(), static_cast<int>(g.pad_doubles),
                    mpi::kDouble, partner, kTagExchange, scratch_b.data(),
                    static_cast<int>(g.pad_doubles), mpi::kDouble, partner,
                    kTagExchange);
      std::copy_n(scratch_b.begin(), g.nr, w_col.begin());
    }
  } else {
    // nprows == 2*npcols: each rank's reduced segment is half a column
    // segment. Sender (r, c) feeds receivers (2c, r/2) and (2c+1, r/2);
    // receiver (r', c') gets its lower half from (2c', r'/2) and its
    // upper half from (2c'+1, r'/2).
    assert(g.nprows == 2 * g.npcols);
    const int dst_lo = (2 * g.col) * g.npcols + g.row / 2;
    const int dst_hi = (2 * g.col + 1) * g.npcols + g.row / 2;
    const int recv_lo_src = (2 * g.col) * g.npcols + g.row / 2;
    const int recv_hi_src = (2 * g.col + 1) * g.npcols + g.row / 2;
    std::vector<mpi::Request> reqs;
    std::vector<double> lo(g.pad_doubles), hi(g.pad_doubles);
    reqs.push_back(comm.irecv(lo.data(), static_cast<int>(g.pad_doubles),
                              mpi::kDouble, recv_lo_src, kTagExchange));
    reqs.push_back(comm.irecv(hi.data(), static_cast<int>(g.pad_doubles),
                              mpi::kDouble, recv_hi_src, kTagExchange));
    reqs.push_back(comm.isend(scratch_a.data(),
                              static_cast<int>(g.pad_doubles), mpi::kDouble,
                              dst_lo, kTagExchange));
    reqs.push_back(comm.isend(scratch_a.data(),
                              static_cast<int>(g.pad_doubles), mpi::kDouble,
                              dst_hi, kTagExchange));
    mpi::wait_all(reqs);
    std::copy_n(lo.begin(), g.nr, w_col.begin());
    std::copy_n(hi.begin(), g.nr, w_col.begin() + g.nr);
  }
}

double distributed_dot(mpi::Comm& comm, const CgGrid& g,
                       const std::vector<double>& a,
                       const std::vector<double>& b) {
  double local = 0;
  for (int i = 0; i < g.nc; ++i)
    local += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  double sum = 0;
  comm.allreduce(&local, &sum, 1, mpi::kDouble, mpi::Op::kSum);
  // Column segments are replicated across the nprows rows; the replicas
  // contribute identical partial sums, so the division is exact.
  return sum / g.nprows;
}

}  // namespace

KernelResult run_cg(mpi::Comm& comm, Class cls) {
  const CgGrid g = make_grid(comm, cls);
  const int niter = iterations("CG", cls);
  const double budget = compute_budget("CG", cls);

  std::vector<double> x(static_cast<std::size_t>(g.nc), 1.0);
  std::vector<double> z, r, p, w;
  std::vector<double> sa, sb;

  comm.barrier();
  const double t0 = comm.wtime();

  double zeta = 0, zeta_prev = 0, rnorm = 0;
  bool verified = true;
  for (int iter = 0; iter < niter; ++iter) {
    // conj_grad: solve A z = x approximately.
    z.assign(static_cast<std::size_t>(g.nc), 0.0);
    r = x;
    p = r;
    double rho = distributed_dot(comm, g, r, r);
    const double rho_initial = rho;
    for (int it = 0; it < kInnerIters; ++it) {
      distributed_matvec(comm, g, p, w, sa, sb);
      const double d = distributed_dot(comm, g, p, w);
      const double alpha = rho / d;
      for (int i = 0; i < g.nc; ++i) {
        z[static_cast<std::size_t>(i)] +=
            alpha * p[static_cast<std::size_t>(i)];
        r[static_cast<std::size_t>(i)] -=
            alpha * w[static_cast<std::size_t>(i)];
      }
      const double rho0 = rho;
      rho = distributed_dot(comm, g, r, r);
      const double beta = rho / rho0;
      for (int i = 0; i < g.nc; ++i) {
        p[static_cast<std::size_t>(i)] =
            r[static_cast<std::size_t>(i)] +
            beta * p[static_cast<std::size_t>(i)];
      }
    }
    if (!(rho < rho_initial)) verified = false;  // CG must reduce the residual

    // ||r|| = ||x - A z|| and the eigenvalue estimate.
    distributed_matvec(comm, g, z, w, sa, sb);
    double diff2 = 0;
    for (int i = 0; i < g.nc; ++i) {
      const double d = x[static_cast<std::size_t>(i)] -
                       w[static_cast<std::size_t>(i)];
      diff2 += d * d;
    }
    double diff2_sum = 0;
    comm.allreduce(&diff2, &diff2_sum, 1, mpi::kDouble, mpi::Op::kSum);
    rnorm = std::sqrt(diff2_sum / g.nprows);

    const double xz = distributed_dot(comm, g, x, z);
    zeta_prev = zeta;
    zeta = static_cast<double>(kN) + 1.0 / xz;

    // x = z / ||z||.
    const double znorm = std::sqrt(distributed_dot(comm, g, z, z));
    for (int i = 0; i < g.nc; ++i)
      x[static_cast<std::size_t>(i)] =
          z[static_cast<std::size_t>(i)] / znorm;

    charge_compute(comm, budget, niter, iter);
  }
  // The timed section ends with everyone done (NPB reports max time).
  double elapsed = comm.wtime() - t0;
  double max_elapsed = 0;
  comm.allreduce(&elapsed, &max_elapsed, 1, mpi::kDouble, mpi::Op::kMax);

  // The residual of the inner solve is the hard correctness check; the
  // eigenvalue estimate must land in the spectrum of A = kN*I + S with
  // S's entries in [0, 1).
  if (rnorm > 1e-8 * kN) verified = false;
  if (!(zeta > kN - 1.0 && zeta < 2.5 * kN)) verified = false;
  (void)zeta_prev;

  KernelResult res;
  res.name = "CG";
  res.cls = cls;
  res.nprocs = comm.size();
  res.time_sec = max_elapsed;
  res.verified = verified;
  res.checksum = zeta;
  return res;
}

}  // namespace odmpi::nas
