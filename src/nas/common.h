// Shared infrastructure for the NAS-kernel reproductions.
//
// Each kernel runs the *real* NPB communication structure (who talks to
// whom, how often, how big) and real — but size-reduced — numerics that
// are verified for correctness. The full-class computation is represented
// by virtual-time charges calibrated per (kernel, class) so absolute run
// times land in the regime of the paper's Table 3 (700 MHz PIII Xeon).
#pragma once

#include <string>

#include "src/mpi/comm.h"
#include "src/sim/time.h"

namespace odmpi::nas {

enum class Class { S, A, B, C };

[[nodiscard]] const char* to_string(Class c);
[[nodiscard]] Class class_from_char(char c);

struct KernelResult {
  std::string name;           // "CG", "MG", ...
  Class cls = Class::S;
  int nprocs = 0;
  double time_sec = 0;        // timed-section virtual seconds (max rank)
  bool verified = false;
  double checksum = 0;        // deterministic run digest
};

/// Charges virtual compute time to the calling rank: `total_proc_seconds`
/// is the whole job's compute, split evenly across ranks and charged in
/// `slices` equal pieces by the kernels (between communication phases).
void charge_compute(mpi::Comm& comm, double total_proc_seconds, int slices,
                    int slice_index);

/// Per-(kernel, class) total compute in processor-seconds, calibrated to
/// Table 3 of the paper (see EXPERIMENTS.md for the derivation).
double compute_budget(const std::string& kernel, Class cls);

/// NPB iteration counts per class.
int iterations(const std::string& kernel, Class cls);

using KernelFn = KernelResult (*)(mpi::Comm&, Class);

KernelResult run_cg(mpi::Comm& comm, Class cls);
KernelResult run_mg(mpi::Comm& comm, Class cls);
KernelResult run_is(mpi::Comm& comm, Class cls);
KernelResult run_ep(mpi::Comm& comm, Class cls);
KernelResult run_ft(mpi::Comm& comm, Class cls);
KernelResult run_sp(mpi::Comm& comm, Class cls);
KernelResult run_lu(mpi::Comm& comm, Class cls);
KernelResult run_bt(mpi::Comm& comm, Class cls);

/// Looks a kernel up by name ("CG", "MG", "IS", "EP", "FT", "SP", "BT", "LU").
KernelFn kernel_by_name(const std::string& name);

}  // namespace odmpi::nas
