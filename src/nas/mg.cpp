// NAS MG: V-cycle multigrid on a 3D periodic Poisson problem with the NPB
// communication structure — six-face halo exchanges at every level on a
// 3D process grid, allreduce norms, and a replicated coarse-grid solve
// entered through a recursive-doubling allgather once the grid is too
// coarse to distribute. Numerics run on a reduced grid and are verified
// by monotone residual reduction; faces are padded to class-scaled sizes.
#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "src/nas/common.h"
#include "src/sim/rng.h"

namespace odmpi::nas {

namespace {

constexpr int kN = 32;  // reduced global grid (NPB A/B use 256, C 512)
constexpr mpi::Tag kTagHalo = 41;

int class_grid(Class cls) {
  switch (cls) {
    case Class::S: return 32;
    case Class::A: return 256;
    case Class::B: return 256;
    case Class::C: return 512;
  }
  return 32;
}

struct Decomp {
  std::array<int, 3> p;      // process grid
  std::array<int, 3> coord;  // my coordinates
  int rank_of(int x, int y, int z) const {
    return (x * p[1] + y) * p[2] + z;
  }
};

Decomp make_decomp(mpi::Comm& comm) {
  const int n = comm.size();
  assert((n & (n - 1)) == 0 && "MG requires a power-of-two process count");
  Decomp d;
  d.p = {1, 1, 1};
  int rem = n, dim = 0;
  while (rem > 1) {
    d.p[static_cast<std::size_t>(dim)] *= 2;
    rem /= 2;
    dim = (dim + 1) % 3;
  }
  const int r = comm.rank();
  d.coord = {r / (d.p[1] * d.p[2]), (r / d.p[2]) % d.p[1], r % d.p[2]};
  return d;
}

/// A distributed level: local box (nx, ny, nz) with one ghost layer.
struct Level {
  int n;                    // global edge length
  std::array<int, 3> loc;   // local interior points per dim
  std::vector<double> u, v, r;

  std::size_t idx(int x, int y, int z) const {
    return (static_cast<std::size_t>(x) *
                static_cast<std::size_t>(loc[1] + 2) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(loc[2] + 2) +
           static_cast<std::size_t>(z);
  }
  std::size_t volume() const {
    return static_cast<std::size_t>(loc[0] + 2) *
           static_cast<std::size_t>(loc[1] + 2) *
           static_cast<std::size_t>(loc[2] + 2);
  }
};

struct MgContext {
  mpi::Comm* comm;
  Decomp decomp;
  std::size_t pad_doubles;  // face padding for class realism
};

/// Exchanges the six ghost faces of `field` (periodic). Dimensions where
/// the whole extent lives on one rank wrap locally without messages.
void exchange_halo(MgContext& ctx, Level& lvl, std::vector<double>& field) {
  const auto& d = ctx.decomp;
  for (int dim = 0; dim < 3; ++dim) {
    const int np = d.p[static_cast<std::size_t>(dim)];
    const int lo_ext = 1;
    const int hi_ext = lvl.loc[static_cast<std::size_t>(dim)];

    // Gather a face into a contiguous buffer.
    const auto pack = [&](int plane, std::vector<double>& buf) {
      buf.clear();
      const std::array<int, 3> lim = {lvl.loc[0], lvl.loc[1], lvl.loc[2]};
      for (int a = 1; a <= (dim == 0 ? 1 : lim[0]); ++a) {
        for (int b = 1; b <= (dim == 1 ? 1 : lim[1]); ++b) {
          for (int c = 1; c <= (dim == 2 ? 1 : lim[2]); ++c) {
            int x = dim == 0 ? plane : a;
            int y = dim == 1 ? plane : b;
            int z = dim == 2 ? plane : c;
            buf.push_back(field[lvl.idx(x, y, z)]);
          }
        }
      }
      buf.resize(std::max(buf.size(), ctx.pad_doubles), 0.0);
    };
    const auto unpack = [&](int plane, const std::vector<double>& buf) {
      std::size_t k = 0;
      const std::array<int, 3> lim = {lvl.loc[0], lvl.loc[1], lvl.loc[2]};
      for (int a = 1; a <= (dim == 0 ? 1 : lim[0]); ++a) {
        for (int b = 1; b <= (dim == 1 ? 1 : lim[1]); ++b) {
          for (int c = 1; c <= (dim == 2 ? 1 : lim[2]); ++c) {
            int x = dim == 0 ? plane : a;
            int y = dim == 1 ? plane : b;
            int z = dim == 2 ? plane : c;
            field[lvl.idx(x, y, z)] = buf[k++];
          }
        }
      }
    };

    if (np == 1) {
      // Periodic wrap inside the rank.
      std::vector<double> tmp;
      pack(hi_ext, tmp);
      unpack(0, tmp);
      pack(lo_ext, tmp);
      unpack(hi_ext + 1, tmp);
      continue;
    }
    std::array<int, 3> up_c = d.coord, dn_c = d.coord;
    up_c[static_cast<std::size_t>(dim)] =
        (d.coord[static_cast<std::size_t>(dim)] + 1) % np;
    dn_c[static_cast<std::size_t>(dim)] =
        (d.coord[static_cast<std::size_t>(dim)] - 1 + np) % np;
    const int up = d.rank_of(up_c[0], up_c[1], up_c[2]);
    const int dn = d.rank_of(dn_c[0], dn_c[1], dn_c[2]);

    std::vector<double> send_hi, send_lo, recv_lo, recv_hi;
    pack(hi_ext, send_hi);
    recv_lo.resize(send_hi.size());
    ctx.comm->sendrecv(send_hi.data(), static_cast<int>(send_hi.size()),
                       mpi::kDouble, up, kTagHalo, recv_lo.data(),
                       static_cast<int>(recv_lo.size()), mpi::kDouble, dn,
                       kTagHalo);
    unpack(0, recv_lo);
    pack(lo_ext, send_lo);
    recv_hi.resize(send_lo.size());
    ctx.comm->sendrecv(send_lo.data(), static_cast<int>(send_lo.size()),
                       mpi::kDouble, dn, kTagHalo, recv_hi.data(),
                       static_cast<int>(recv_hi.size()), mpi::kDouble, up,
                       kTagHalo);
    unpack(hi_ext + 1, recv_hi);
  }
}

/// r = v - A u with A = 7-point Laplacian (h = 1/n scaling folded away).
void residual(MgContext& ctx, Level& lvl) {
  exchange_halo(ctx, lvl, lvl.u);
  for (int x = 1; x <= lvl.loc[0]; ++x) {
    for (int y = 1; y <= lvl.loc[1]; ++y) {
      for (int z = 1; z <= lvl.loc[2]; ++z) {
        const double au =
            6.0 * lvl.u[lvl.idx(x, y, z)] - lvl.u[lvl.idx(x - 1, y, z)] -
            lvl.u[lvl.idx(x + 1, y, z)] - lvl.u[lvl.idx(x, y - 1, z)] -
            lvl.u[lvl.idx(x, y + 1, z)] - lvl.u[lvl.idx(x, y, z - 1)] -
            lvl.u[lvl.idx(x, y, z + 1)];
        lvl.r[lvl.idx(x, y, z)] = lvl.v[lvl.idx(x, y, z)] - au;
      }
    }
  }
}

/// Weighted-Jacobi smoothing sweeps.
void smooth(MgContext& ctx, Level& lvl, int sweeps) {
  constexpr double kOmega = 0.8;
  for (int s = 0; s < sweeps; ++s) {
    residual(ctx, lvl);
    for (int x = 1; x <= lvl.loc[0]; ++x) {
      for (int y = 1; y <= lvl.loc[1]; ++y) {
        for (int z = 1; z <= lvl.loc[2]; ++z) {
          lvl.u[lvl.idx(x, y, z)] += kOmega / 6.0 * lvl.r[lvl.idx(x, y, z)];
        }
      }
    }
  }
}

double norm2(MgContext& ctx, Level& lvl, const std::vector<double>& f) {
  double local = 0;
  for (int x = 1; x <= lvl.loc[0]; ++x)
    for (int y = 1; y <= lvl.loc[1]; ++y)
      for (int z = 1; z <= lvl.loc[2]; ++z)
        local += f[lvl.idx(x, y, z)] * f[lvl.idx(x, y, z)];
  double sum = 0;
  ctx.comm->allreduce(&local, &sum, 1, mpi::kDouble, mpi::Op::kSum);
  return std::sqrt(sum);
}

}  // namespace

KernelResult run_mg(mpi::Comm& comm, Class cls) {
  MgContext ctx;
  ctx.comm = &comm;
  ctx.decomp = make_decomp(comm);
  const int cg = class_grid(cls);
  // Class-scaled face padding (capped; past the rendezvous threshold the
  // protocol path is already exercised).
  const std::size_t class_face =
      static_cast<std::size_t>(cg) * static_cast<std::size_t>(cg) /
      static_cast<std::size_t>(
          std::max(1, ctx.decomp.p[0] * ctx.decomp.p[1]));
  ctx.pad_doubles = std::min<std::size_t>(class_face, 1024);

  // Build the fine level.
  Level fine;
  fine.n = kN;
  for (int d = 0; d < 3; ++d) {
    assert(kN % ctx.decomp.p[static_cast<std::size_t>(d)] == 0);
    fine.loc[static_cast<std::size_t>(d)] =
        kN / ctx.decomp.p[static_cast<std::size_t>(d)];
    assert(fine.loc[static_cast<std::size_t>(d)] >= 2 &&
           "too many ranks for the reduced MG grid");
  }
  fine.u.assign(fine.volume(), 0.0);
  fine.v.assign(fine.volume(), 0.0);
  fine.r.assign(fine.volume(), 0.0);

  // NPB-like source: +1 at ten deterministic cells, -1 at ten others.
  sim::Rng rng(0x6D67, 7);
  for (int k = 0; k < 20; ++k) {
    const int gx = static_cast<int>(rng.next_below(kN));
    const int gy = static_cast<int>(rng.next_below(kN));
    const int gz = static_cast<int>(rng.next_below(kN));
    const int ox = ctx.decomp.coord[0] * fine.loc[0];
    const int oy = ctx.decomp.coord[1] * fine.loc[1];
    const int oz = ctx.decomp.coord[2] * fine.loc[2];
    if (gx >= ox && gx < ox + fine.loc[0] && gy >= oy &&
        gy < oy + fine.loc[1] && gz >= oz && gz < oz + fine.loc[2]) {
      fine.v[fine.idx(gx - ox + 1, gy - oy + 1, gz - oz + 1)] =
          (k < 10) ? 1.0 : -1.0;
    }
  }

  const int niter = iterations("MG", cls);
  const double budget = compute_budget("MG", cls);

  comm.barrier();
  const double t0 = comm.wtime();

  // Two-grid V-cycles: smooth fine, restrict the residual onto a coarse
  // grid replicated on every rank (recursive-doubling allgather — this is
  // the agglomerated coarse solve), relax there, prolongate back.
  bool verified = true;
  double rn_prev = norm2(ctx, fine, fine.v);
  double rn = rn_prev;
  const int cn = kN / 2;
  std::vector<double> coarse_r(static_cast<std::size_t>(cn * cn * cn));
  std::vector<double> coarse_u(coarse_r.size());
  const auto cidx = [cn](int x, int y, int z) {
    return (static_cast<std::size_t>(x) * cn + static_cast<std::size_t>(y)) *
               cn +
           static_cast<std::size_t>(z);
  };

  for (int iter = 0; iter < niter; ++iter) {
    smooth(ctx, fine, 2);
    residual(ctx, fine);

    // Restrict locally, then allgather the coarse grid to every rank.
    const int clx = fine.loc[0] / 2, cly = fine.loc[1] / 2,
              clz = fine.loc[2] / 2;
    std::vector<double> local_coarse(
        static_cast<std::size_t>(clx * cly * clz));
    std::size_t k = 0;
    for (int x = 0; x < clx; ++x)
      for (int y = 0; y < cly; ++y)
        for (int z = 0; z < clz; ++z) {
          double s = 0;
          for (int dx = 1; dx <= 2; ++dx)
            for (int dy = 1; dy <= 2; ++dy)
              for (int dz = 1; dz <= 2; ++dz)
                s += fine.r[fine.idx(2 * x + dx, 2 * y + dy, 2 * z + dz)];
          local_coarse[k++] = s / 8.0;
        }
    std::vector<double> gathered(local_coarse.size() *
                                 static_cast<std::size_t>(comm.size()));
    comm.allgather(local_coarse.data(),
                   static_cast<int>(local_coarse.size()), gathered.data(),
                   mpi::kDouble);
    // Reassemble by block coordinates.
    for (int r = 0; r < comm.size(); ++r) {
      const std::array<int, 3> rc = {
          r / (ctx.decomp.p[1] * ctx.decomp.p[2]),
          (r / ctx.decomp.p[2]) % ctx.decomp.p[1], r % ctx.decomp.p[2]};
      std::size_t kk = static_cast<std::size_t>(r) * local_coarse.size();
      for (int x = 0; x < clx; ++x)
        for (int y = 0; y < cly; ++y)
          for (int z = 0; z < clz; ++z)
            coarse_r[cidx(rc[0] * clx + x, rc[1] * cly + y,
                          rc[2] * clz + z)] = gathered[kk++];
    }

    // Replicated coarse relaxation (identical on every rank).
    std::fill(coarse_u.begin(), coarse_u.end(), 0.0);
    for (int sweep = 0; sweep < 8; ++sweep) {
      for (int x = 0; x < cn; ++x)
        for (int y = 0; y < cn; ++y)
          for (int z = 0; z < cn; ++z) {
            const double nb =
                coarse_u[cidx((x + 1) % cn, y, z)] +
                coarse_u[cidx((x - 1 + cn) % cn, y, z)] +
                coarse_u[cidx(x, (y + 1) % cn, z)] +
                coarse_u[cidx(x, (y - 1 + cn) % cn, z)] +
                coarse_u[cidx(x, y, (z + 1) % cn)] +
                coarse_u[cidx(x, y, (z - 1 + cn) % cn)];
            coarse_u[cidx(x, y, z)] =
                (coarse_r[cidx(x, y, z)] * 4.0 + nb) / 6.0;
          }
    }

    // Prolongate (injection) and post-smooth.
    const int ox = ctx.decomp.coord[0] * clx, oy = ctx.decomp.coord[1] * cly,
              oz = ctx.decomp.coord[2] * clz;
    for (int x = 1; x <= fine.loc[0]; ++x)
      for (int y = 1; y <= fine.loc[1]; ++y)
        for (int z = 1; z <= fine.loc[2]; ++z)
          fine.u[fine.idx(x, y, z)] +=
              coarse_u[cidx(ox + (x - 1) / 2, oy + (y - 1) / 2,
                            oz + (z - 1) / 2)];
    smooth(ctx, fine, 1);

    residual(ctx, fine);
    rn_prev = rn;
    rn = norm2(ctx, fine, fine.r);
    if (!(rn < rn_prev)) verified = false;  // V-cycles must contract

    charge_compute(comm, budget, niter, iter);
  }

  double elapsed = comm.wtime() - t0;
  double max_elapsed = 0;
  comm.allreduce(&elapsed, &max_elapsed, 1, mpi::kDouble, mpi::Op::kMax);

  KernelResult res;
  res.name = "MG";
  res.cls = cls;
  res.nprocs = comm.size();
  res.time_sec = max_elapsed;
  res.verified = verified;
  res.checksum = rn;
  return res;
}

}  // namespace odmpi::nas
