// NAS EP: embarrassingly parallel Gaussian-pair generation. No
// communication until the final three allreduces (sum-x, sum-y, annulus
// counts) — which is why EP's on-demand VI count in Table 2 is just the
// allreduce partner set (log2 N).
#include <array>
#include <cmath>
#include <vector>

#include "src/nas/common.h"
#include "src/sim/rng.h"

namespace odmpi::nas {

namespace {

std::int64_t pairs_per_rank(Class cls) {
  switch (cls) {
    case Class::S: return 1 << 12;
    case Class::A: return 1 << 16;
    case Class::B: return 1 << 17;
    case Class::C: return 1 << 18;
  }
  return 1 << 12;
}

}  // namespace

KernelResult run_ep(mpi::Comm& comm, Class cls) {
  const std::int64_t local_pairs = pairs_per_rank(cls);
  const int slices = iterations("EP", cls);
  const double budget = compute_budget("EP", cls);

  comm.barrier();
  const double t0 = comm.wtime();

  sim::Rng rng(0x4550, static_cast<std::uint64_t>(comm.rank()));
  double sx = 0, sy = 0;
  std::array<double, 10> counts{};
  std::int64_t accepted = 0;
  for (int slice = 0; slice < slices; ++slice) {
    const std::int64_t chunk = local_pairs / slices;
    for (std::int64_t i = 0; i < chunk; ++i) {
      const double x = 2.0 * rng.next_double() - 1.0;
      const double y = 2.0 * rng.next_double() - 1.0;
      const double t = x * x + y * y;
      if (t > 1.0 || t == 0.0) continue;
      const double f = std::sqrt(-2.0 * std::log(t) / t);
      const double gx = x * f, gy = y * f;
      sx += gx;
      sy += gy;
      const int bin = static_cast<int>(std::max(std::abs(gx), std::abs(gy)));
      if (bin < 10) counts[static_cast<std::size_t>(bin)] += 1.0;
      ++accepted;
    }
    charge_compute(comm, budget, slices, slice);
  }

  double gsx = 0, gsy = 0;
  std::array<double, 10> gcounts{};
  comm.allreduce(&sx, &gsx, 1, mpi::kDouble, mpi::Op::kSum);
  comm.allreduce(&sy, &gsy, 1, mpi::kDouble, mpi::Op::kSum);
  comm.allreduce(counts.data(), gcounts.data(), 10, mpi::kDouble,
                 mpi::Op::kSum);

  double elapsed = comm.wtime() - t0;
  double max_elapsed = 0;
  comm.allreduce(&elapsed, &max_elapsed, 1, mpi::kDouble, mpi::Op::kMax);

  double total_in_bins = 0;
  for (double c : gcounts) total_in_bins += c;
  double global_accepted = 0;
  double local_accepted = static_cast<double>(accepted);
  comm.allreduce(&local_accepted, &global_accepted, 1, mpi::kDouble,
                 mpi::Op::kSum);

  KernelResult res;
  res.name = "EP";
  res.cls = cls;
  res.nprocs = comm.size();
  res.time_sec = max_elapsed;
  // Every accepted pair lands in a bin, and the Gaussian sums are small
  // relative to the sample count.
  res.verified = (total_in_bins == global_accepted) &&
                 std::abs(gsx) < global_accepted &&
                 std::abs(gsy) < global_accepted;
  res.checksum = gsx + gsy;
  return res;
}

}  // namespace odmpi::nas
