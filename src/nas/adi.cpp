#include "src/nas/adi.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "src/sim/rng.h"

namespace odmpi::nas {

namespace {

constexpr int kM = 8;      // cell edge (points per cell per dim)
constexpr int kComp = 5;   // solution components per point (NPB's 5)
constexpr mpi::Tag kTagFace = 61;
constexpr mpi::Tag kTagSweep = 62;

struct Multipartition {
  int q = 0, r = 0, c = 0;

  [[nodiscard]] int rank_of(int row, int col) const {
    return ((row % q + q) % q) * q + ((col % q + q) % q);
  }
  // Fixed partners (see header).
  [[nodiscard]] int xp() const { return rank_of(r - 1, c - 1); }
  [[nodiscard]] int xm() const { return rank_of(r + 1, c + 1); }
  [[nodiscard]] int yp() const { return rank_of(r + 1, c); }
  [[nodiscard]] int ym() const { return rank_of(r - 1, c); }
  [[nodiscard]] int zp() const { return rank_of(r, c + 1); }
  [[nodiscard]] int zm() const { return rank_of(r, c - 1); }
};

struct Cell {
  std::vector<double> u;  // kM^3 * kComp

  static std::size_t idx(int x, int y, int z, int comp) {
    return ((static_cast<std::size_t>(x) * kM + static_cast<std::size_t>(y)) *
                kM +
            static_cast<std::size_t>(z)) *
               kComp +
           static_cast<std::size_t>(comp);
  }
};

// Plane of values entering/leaving a cell along one dimension.
using Plane = std::vector<double>;  // kM * kM * kComp

void extract_plane(const Cell& cell, int dim, int layer, Plane& out) {
  out.resize(static_cast<std::size_t>(kM) * kM * kComp);
  std::size_t k = 0;
  for (int a = 0; a < kM; ++a)
    for (int b = 0; b < kM; ++b)
      for (int comp = 0; comp < kComp; ++comp) {
        const int x = dim == 0 ? layer : a;
        const int y = dim == 1 ? layer : (dim == 0 ? a : b);
        const int z = dim == 2 ? layer : b;
        out[k++] = cell.u[Cell::idx(x, y, z, comp)];
      }
}

void blend_plane(Cell& cell, int dim, int layer, const Plane& in) {
  std::size_t k = 0;
  for (int a = 0; a < kM; ++a)
    for (int b = 0; b < kM; ++b)
      for (int comp = 0; comp < kComp; ++comp) {
        const int x = dim == 0 ? layer : a;
        const int y = dim == 1 ? layer : (dim == 0 ? a : b);
        const int z = dim == 2 ? layer : b;
        auto& v = cell.u[Cell::idx(x, y, z, comp)];
        v = 0.5 * (v + in[k++]);
      }
}

/// Forward (dir=+1) or backward (dir=-1) line recurrence along `dim`,
/// seeded by the incoming boundary plane; returns the exit plane.
void sweep_cell(Cell& cell, int dim, int dir, const Plane& boundary,
                Plane& exit) {
  exit.resize(static_cast<std::size_t>(kM) * kM * kComp);
  std::size_t k = 0;
  for (int a = 0; a < kM; ++a)
    for (int b = 0; b < kM; ++b)
      for (int comp = 0; comp < kComp; ++comp) {
        double prev = boundary.empty() ? 0.25 : boundary[k];
        for (int s = 0; s < kM; ++s) {
          const int i = dir > 0 ? s : kM - 1 - s;
          const int x = dim == 0 ? i : a;
          const int y = dim == 1 ? i : (dim == 0 ? a : b);
          const int z = dim == 2 ? i : b;
          auto& v = cell.u[Cell::idx(x, y, z, comp)];
          v = 0.6 * v + 0.4 * prev;  // convex: stays in [0, 1]
          prev = v;
        }
        exit[k++] = prev;
      }
}

}  // namespace

KernelResult run_adi(mpi::Comm& comm, Class cls, const AdiConfig& cfg) {
  const int p = comm.size();
  const int q = static_cast<int>(std::lround(std::sqrt(p)));
  assert(q * q == p && "SP/BT require a square process count");

  Multipartition mp;
  mp.q = q;
  mp.r = comm.rank() / q;
  mp.c = comm.rank() % q;

  std::vector<Cell> cells(static_cast<std::size_t>(q));
  sim::Rng rng(0x5350, static_cast<std::uint64_t>(comm.rank()));
  for (Cell& cell : cells) {
    cell.u.resize(static_cast<std::size_t>(kM) * kM * kM * kComp);
    for (auto& v : cell.u) v = rng.next_double();
  }

  const int steps = iterations(cfg.name, cls);
  const double budget = compute_budget(cfg.name, cls);
  const std::size_t plane_doubles =
      static_cast<std::size_t>(kM) * kM * kComp *
      static_cast<std::size_t>(cfg.boundary_factor);

  comm.barrier();
  const double t0 = comm.wtime();

  Plane plane, incoming, exit_plane;
  std::vector<double> face_out, face_in;
  double checksum = 0;
  bool verified = true;

  for (int step = 0; step < steps; ++step) {
    // ---- copy_faces: aggregated ghost exchange in all six directions.
    struct Dir {
      int dim, layer_out, layer_in, to, from;
    };
    const Dir dirs[6] = {
        {0, kM - 1, 0, mp.xp(), mp.xm()}, {0, 0, kM - 1, mp.xm(), mp.xp()},
        {1, kM - 1, 0, mp.yp(), mp.ym()}, {1, 0, kM - 1, mp.ym(), mp.yp()},
        {2, kM - 1, 0, mp.zp(), mp.zm()}, {2, 0, kM - 1, mp.zm(), mp.zp()},
    };
    for (const Dir& d : dirs) {
      face_out.clear();
      for (const Cell& cell : cells) {
        extract_plane(cell, d.dim, d.layer_out, plane);
        face_out.insert(face_out.end(), plane.begin(), plane.end());
      }
      face_in.resize(face_out.size());
      comm.sendrecv(face_out.data(), static_cast<int>(face_out.size()),
                    mpi::kDouble, d.to, kTagFace, face_in.data(),
                    static_cast<int>(face_in.size()), mpi::kDouble, d.from,
                    kTagFace);
      std::size_t off = 0;
      const std::size_t per_cell = plane.size();
      for (Cell& cell : cells) {
        plane.assign(face_in.begin() + static_cast<std::ptrdiff_t>(off),
                     face_in.begin() + static_cast<std::ptrdiff_t>(off + per_cell));
        blend_plane(cell, d.dim, d.layer_in, plane);
        off += per_cell;
      }
    }

    // ---- pipelined x / y / z sweeps, forward then backward.
    for (int dim = 0; dim < 3; ++dim) {
      int succ, pred;
      if (dim == 0) {
        succ = mp.xp();
        pred = mp.xm();
      } else if (dim == 1) {
        succ = mp.yp();
        pred = mp.ym();
      } else {
        succ = mp.zp();
        pred = mp.zm();
      }
      // Which of my cells is active at stage s of this dimension's sweep?
      const auto cell_at_stage = [&](int s) -> Cell& {
        int g;
        if (dim == 0) {
          g = s;
        } else if (dim == 1) {
          g = ((s - mp.r) % q + q) % q;
        } else {
          g = ((s - mp.c) % q + q) % q;
        }
        return cells[static_cast<std::size_t>(g)];
      };
      for (int dir : {+1, -1}) {
        const int to = dir > 0 ? succ : pred;
        const int from = dir > 0 ? pred : succ;
        // Boundary hand-offs use nonblocking sends with per-stage buffers
        // (as NPB does): a blocking rendezvous send here would deadlock —
        // at each stage every process sends along a cyclic successor
        // relation while its receiver is itself blocked sending.
        std::vector<mpi::Request> pending;
        std::vector<Plane> send_bufs(static_cast<std::size_t>(q));
        for (int stage = 0; stage < q; ++stage) {
          const int s = dir > 0 ? stage : q - 1 - stage;
          incoming.clear();
          if (stage > 0) {
            incoming.resize(plane_doubles);
            comm.recv(incoming.data(), static_cast<int>(plane_doubles),
                      mpi::kDouble, from, kTagSweep);
            incoming.resize(static_cast<std::size_t>(kM) * kM * kComp);
          }
          sweep_cell(cell_at_stage(s), dim, dir, incoming, exit_plane);
          if (stage < q - 1) {
            Plane& buf = send_bufs[static_cast<std::size_t>(stage)];
            buf = exit_plane;
            buf.resize(plane_doubles, 0.0);
            pending.push_back(comm.isend(buf.data(),
                                         static_cast<int>(plane_doubles),
                                         mpi::kDouble, to, kTagSweep));
          }
        }
        mpi::wait_all(pending);
      }
    }

    // Periodic residual norm (NPB checks rhs norms along the way).
    if (step % 20 == 19 || step == steps - 1) {
      double local = 0;
      for (const Cell& cell : cells)
        for (double v : cell.u) {
          local += v;
          if (v < 0.0 || v > 1.0) verified = false;
        }
      comm.allreduce(&local, &checksum, 1, mpi::kDouble, mpi::Op::kSum);
    }
    charge_compute(comm, budget, steps, step);
  }

  double elapsed = comm.wtime() - t0;
  double max_elapsed = 0;
  comm.allreduce(&elapsed, &max_elapsed, 1, mpi::kDouble, mpi::Op::kMax);

  if (!std::isfinite(checksum) || checksum <= 0) verified = false;

  KernelResult res;
  res.name = cfg.name;
  res.cls = cls;
  res.nprocs = p;
  res.time_sec = max_elapsed;
  res.verified = verified;
  res.checksum = checksum;
  return res;
}

}  // namespace odmpi::nas
