// NAS FT: 3D FFT of a complex field with slab decomposition. The
// distributed transpose is a single alltoall per FFT — the all-pairs
// pattern (like IS) that needs the full mesh. Reduced 32^3 grid with a
// real radix-2 FFT; verified by forward+inverse round trip and by the
// NPB-style evolving checksum.
#include <cassert>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "src/nas/common.h"
#include "src/sim/rng.h"

namespace odmpi::nas {

namespace {

constexpr int kN = 32;  // grid edge (NPB A: 256x256x128)
using Cplx = std::complex<double>;

/// In-place radix-2 FFT over a stride-1 line of length kN.
void fft_line(Cplx* a, bool inverse) {
  // Bit reversal.
  for (int i = 1, j = 0; i < kN; ++i) {
    int bit = kN >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (int len = 2; len <= kN; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / len * (inverse ? 1.0 : -1.0);
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (int i = 0; i < kN; i += len) {
      Cplx w(1.0);
      for (int k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (int i = 0; i < kN; ++i) a[i] /= kN;
  }
}

}  // namespace

KernelResult run_ft(mpi::Comm& comm, Class cls) {
  const int n = comm.size();
  const int me = comm.rank();
  assert(kN % n == 0 && "FT slab decomposition requires P | 32");
  const int slab = kN / n;  // my z-planes

  // u(x, y, z_local): x fastest.
  std::vector<Cplx> field(static_cast<std::size_t>(kN * kN * slab));
  const auto idx = [slab](int x, int y, int zl) {
    return (static_cast<std::size_t>(zl) * kN + static_cast<std::size_t>(y)) *
               kN +
           static_cast<std::size_t>(x);
  };
  sim::Rng rng(0x4654, static_cast<std::uint64_t>(me));
  for (auto& c : field) c = Cplx(rng.next_double(), rng.next_double());
  const std::vector<Cplx> original = field;

  const int niter = iterations("FT", cls);
  const double budget = compute_budget("FT", cls);

  comm.barrier();
  const double t0 = comm.wtime();

  std::vector<Cplx> line(kN);
  std::vector<Cplx> sendbuf(field.size()), recvbuf(field.size());

  // Forward 3D FFT: x and y lines locally, transpose z<->x, z lines.
  const auto fft3d = [&](bool inverse) {
    for (int zl = 0; zl < slab; ++zl) {
      for (int y = 0; y < kN; ++y) {  // x lines (contiguous)
        fft_line(&field[idx(0, y, zl)], inverse);
      }
      for (int x = 0; x < kN; ++x) {  // y lines (strided: copy out/in)
        for (int y = 0; y < kN; ++y) line[static_cast<std::size_t>(y)] =
            field[idx(x, y, zl)];
        fft_line(line.data(), inverse);
        for (int y = 0; y < kN; ++y) field[idx(x, y, zl)] =
            line[static_cast<std::size_t>(y)];
      }
    }
    // Transpose: block (x-range r, z-range me) goes to rank r. After the
    // exchange each rank holds x-slabs with full z extent.
    for (int r = 0; r < n; ++r) {
      std::size_t k =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(slab) *
          static_cast<std::size_t>(kN) * static_cast<std::size_t>(slab);
      for (int zl = 0; zl < slab; ++zl)
        for (int y = 0; y < kN; ++y)
          for (int xo = 0; xo < slab; ++xo)
            sendbuf[k++] = field[idx(r * slab + xo, y, zl)];
    }
    comm.alltoall(sendbuf.data(), slab * kN * slab * 2, recvbuf.data(),
                  mpi::kDouble);
    // recvbuf from rank r: (z-range r) x y x (x-offset). Build z lines,
    // FFT them, and scatter back through the same transpose.
    const auto ridx = [slab](int r, int zl, int y, int xo) {
      return ((static_cast<std::size_t>(r) * slab + static_cast<std::size_t>(zl)) * kN +
              static_cast<std::size_t>(y)) *
                 static_cast<std::size_t>(slab) +
             static_cast<std::size_t>(xo);
    };
    for (int y = 0; y < kN; ++y) {
      for (int xo = 0; xo < slab; ++xo) {
        for (int r = 0; r < n; ++r)
          for (int zl = 0; zl < slab; ++zl)
            line[static_cast<std::size_t>(r * slab + zl)] =
                recvbuf[ridx(r, zl, y, xo)];
        fft_line(line.data(), inverse);
        for (int r = 0; r < n; ++r)
          for (int zl = 0; zl < slab; ++zl)
            recvbuf[ridx(r, zl, y, xo)] =
                line[static_cast<std::size_t>(r * slab + zl)];
      }
    }
    comm.alltoall(recvbuf.data(), slab * kN * slab * 2, sendbuf.data(),
                  mpi::kDouble);
    for (int r = 0; r < n; ++r) {
      std::size_t k =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(slab) *
          static_cast<std::size_t>(kN) * static_cast<std::size_t>(slab);
      for (int zl = 0; zl < slab; ++zl)
        for (int y = 0; y < kN; ++y)
          for (int xo = 0; xo < slab; ++xo)
            field[idx(r * slab + xo, y, zl)] = sendbuf[k++];
    }
  };

  bool verified = true;

  // Round-trip verification before the timed evolution.
  fft3d(false);
  fft3d(true);
  double max_err = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    max_err = std::max(max_err, std::abs(field[i] - original[i]));
  }
  double global_err = 0;
  comm.allreduce(&max_err, &global_err, 1, mpi::kDouble, mpi::Op::kMax);
  if (global_err > 1e-9) verified = false;

  // NPB-style evolution: forward FFT once, then per iteration scale by an
  // evolving factor and emit a checksum (allreduce).
  fft3d(false);
  double checksum = 0;
  for (int iter = 0; iter < niter; ++iter) {
    const double decay = std::exp(-1e-6 * (iter + 1));
    for (auto& c : field) c *= decay;
    double local = 0;
    for (int k = 0; k < 16; ++k) {
      local += field[static_cast<std::size_t>(k * 131) % field.size()].real();
    }
    comm.allreduce(&local, &checksum, 1, mpi::kDouble, mpi::Op::kSum);
    charge_compute(comm, budget, niter, iter);
  }

  double elapsed = comm.wtime() - t0;
  double max_elapsed = 0;
  comm.allreduce(&elapsed, &max_elapsed, 1, mpi::kDouble, mpi::Op::kMax);

  KernelResult res;
  res.name = "FT";
  res.cls = cls;
  res.nprocs = n;
  res.time_sec = max_elapsed;
  res.verified = verified;
  res.checksum = checksum;
  return res;
}

}  // namespace odmpi::nas
