// NAS IS: parallel integer bucket sort. Communication per iteration is
// exactly NPB's: an allreduce of the bucket-size histogram, an alltoall
// of the send counts, an alltoallv of the keys (the full-mesh exchange
// that keeps IS at utilization 1.0 in Table 2), and a neighbour boundary
// exchange for verification. Keys are real and the sort is verified.
#include <algorithm>
#include <cassert>
#include <vector>

#include "src/nas/common.h"
#include "src/sim/rng.h"

namespace odmpi::nas {

namespace {

constexpr mpi::Tag kTagBoundary = 51;

int keys_per_rank(Class cls) {
  switch (cls) {
    case Class::S: return 1 << 10;
    case Class::A: return 1 << 14;
    case Class::B: return 1 << 16;
    case Class::C: return 1 << 17;
  }
  return 1 << 10;
}

}  // namespace

KernelResult run_is(mpi::Comm& comm, Class cls) {
  const int n = comm.size();
  const int me = comm.rank();
  const int local_n = keys_per_rank(cls);
  const std::int32_t key_max = 1 << 19;  // NPB A's key range
  const std::int32_t bucket_width = (key_max + n - 1) / n;

  sim::Rng rng(0x4953, static_cast<std::uint64_t>(me));
  std::vector<std::int32_t> keys(static_cast<std::size_t>(local_n));
  for (auto& k : keys)
    k = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(key_max)));

  const int niter = iterations("IS", cls);
  const double budget = compute_budget("IS", cls);

  comm.barrier();
  const double t0 = comm.wtime();

  bool verified = true;
  double checksum = 0;
  std::vector<std::int64_t> local_hist(static_cast<std::size_t>(n));
  std::vector<std::int64_t> global_hist(static_cast<std::size_t>(n));
  std::vector<int> scounts(static_cast<std::size_t>(n));
  std::vector<int> sdispls(static_cast<std::size_t>(n));
  std::vector<int> rcounts(static_cast<std::size_t>(n));
  std::vector<int> rdispls(static_cast<std::size_t>(n));

  for (int iter = 0; iter < niter; ++iter) {
    // NPB perturbs two keys each iteration to defeat caching effects.
    keys[static_cast<std::size_t>(iter % local_n)] =
        static_cast<std::int32_t>(iter % key_max);
    keys[static_cast<std::size_t>((iter * 7) % local_n)] =
        static_cast<std::int32_t>((key_max - iter) % key_max);

    // Local histogram over the rank-buckets, then the global histogram.
    std::fill(local_hist.begin(), local_hist.end(), 0);
    for (std::int32_t k : keys)
      ++local_hist[static_cast<std::size_t>(k / bucket_width)];
    comm.allreduce(local_hist.data(), global_hist.data(), n, mpi::kInt64,
                   mpi::Op::kSum);

    // Partition keys by destination bucket.
    std::vector<std::int32_t> sendbuf(keys.size());
    std::fill(scounts.begin(), scounts.end(), 0);
    for (std::int32_t k : keys)
      ++scounts[static_cast<std::size_t>(k / bucket_width)];
    sdispls[0] = 0;
    for (int r = 1; r < n; ++r)
      sdispls[static_cast<std::size_t>(r)] =
          sdispls[static_cast<std::size_t>(r - 1)] +
          scounts[static_cast<std::size_t>(r - 1)];
    std::vector<int> fill = sdispls;
    for (std::int32_t k : keys)
      sendbuf[static_cast<std::size_t>(
          fill[static_cast<std::size_t>(k / bucket_width)]++)] = k;

    // Exchange the counts (alltoall), then the keys (alltoallv).
    comm.alltoall(scounts.data(), 1, rcounts.data(), mpi::kInt32);
    rdispls[0] = 0;
    for (int r = 1; r < n; ++r)
      rdispls[static_cast<std::size_t>(r)] =
          rdispls[static_cast<std::size_t>(r - 1)] +
          rcounts[static_cast<std::size_t>(r - 1)];
    const int recv_total = rdispls[static_cast<std::size_t>(n - 1)] +
                           rcounts[static_cast<std::size_t>(n - 1)];
    std::vector<std::int32_t> recvbuf(static_cast<std::size_t>(recv_total));
    comm.alltoallv(sendbuf.data(), scounts.data(), sdispls.data(),
                   recvbuf.data(), rcounts.data(), rdispls.data(),
                   mpi::kInt32);

    // The received count must agree with the global histogram.
    if (recv_total != global_hist[static_cast<std::size_t>(me)]) {
      verified = false;
    }

    // Local sort and verification.
    std::sort(recvbuf.begin(), recvbuf.end());
    for (std::int32_t k : recvbuf) {
      if (k / bucket_width != me) verified = false;
    }
    // Boundary exchange with the right neighbour (NPB's full_verify).
    std::int32_t my_max = recvbuf.empty() ? me * bucket_width - 1
                                          : recvbuf.back();
    std::int32_t left_max = -1;
    if (n > 1) {
      const int right = (me + 1) % n;
      const int left = (me - 1 + n) % n;
      comm.sendrecv(&my_max, 1, mpi::kInt32, right, kTagBoundary, &left_max,
                    1, mpi::kInt32, left, kTagBoundary);
      if (me > 0 && !recvbuf.empty() && left_max > recvbuf.front()) {
        verified = false;
      }
    }
    double local_sum = 0;
    for (std::int32_t k : recvbuf) local_sum += k;
    comm.allreduce(&local_sum, &checksum, 1, mpi::kDouble, mpi::Op::kSum);

    charge_compute(comm, budget, niter, iter);
  }

  double elapsed = comm.wtime() - t0;
  double max_elapsed = 0;
  comm.allreduce(&elapsed, &max_elapsed, 1, mpi::kDouble, mpi::Op::kMax);

  KernelResult res;
  res.name = "IS";
  res.cls = cls;
  res.nprocs = n;
  res.time_sec = max_elapsed;
  res.verified = verified;
  res.checksum = checksum;
  return res;
}

}  // namespace odmpi::nas
