#include "src/nas/common.h"

#include <cassert>
#include <map>

#include "src/sim/process.h"

namespace odmpi::nas {

const char* to_string(Class c) {
  switch (c) {
    case Class::S: return "S";
    case Class::A: return "A";
    case Class::B: return "B";
    case Class::C: return "C";
  }
  return "?";
}

Class class_from_char(char c) {
  switch (c) {
    case 'S': return Class::S;
    case 'A': return Class::A;
    case 'B': return Class::B;
    case 'C': return Class::C;
  }
  assert(false && "unknown NPB class");
  return Class::S;
}

void charge_compute(mpi::Comm& comm, double total_proc_seconds, int slices,
                    int /*slice_index*/) {
  auto* p = sim::Process::current();
  assert(p != nullptr && slices > 0);
  const double per_slice =
      total_proc_seconds / comm.size() / static_cast<double>(slices);
  p->advance(static_cast<sim::SimTime>(per_slice * 1e9));
}

double compute_budget(const std::string& kernel, Class cls) {
  // Processor-seconds for the whole job, calibrated so that run times at
  // the paper's process counts land near Table 3 (static-polling column).
  // Example: CG.B.16 = 152.6 s x 16 procs ~ 2400 proc-s.
  static const std::map<std::string, std::map<Class, double>> kBudget = {
      {"CG", {{Class::S, 2}, {Class::A, 70}, {Class::B, 2400},
              {Class::C, 9200}}},
      {"MG", {{Class::S, 1.5}, {Class::A, 72}, {Class::B, 340},
              {Class::C, 4900}}},
      {"IS", {{Class::S, 0.5}, {Class::A, 18}, {Class::B, 80},
              {Class::C, 640}}},
      {"EP", {{Class::S, 4}, {Class::A, 160}, {Class::B, 640},
              {Class::C, 2560}}},
      {"FT", {{Class::S, 3}, {Class::A, 100}, {Class::B, 1100},
              {Class::C, 4400}}},
      {"SP", {{Class::S, 8}, {Class::A, 1580}, {Class::B, 8300},
              {Class::C, 33000}}},
      {"BT", {{Class::S, 12}, {Class::A, 2900}, {Class::B, 13000},
              {Class::C, 52000}}},
      {"LU", {{Class::S, 6}, {Class::A, 1600}, {Class::B, 6600},
              {Class::C, 26000}}},
  };
  return kBudget.at(kernel).at(cls);
}

int iterations(const std::string& kernel, Class cls) {
  struct It {
    int s, a, b, c;
  };
  static const std::map<std::string, It> kIters = {
      {"CG", {5, 15, 75, 75}},   {"MG", {4, 4, 20, 20}},
      {"IS", {4, 10, 10, 10}},   {"EP", {4, 16, 16, 16}},
      {"FT", {4, 6, 20, 20}},    {"SP", {40, 400, 400, 400}},
      {"BT", {30, 200, 200, 200}}, {"LU", {10, 250, 250, 250}},
  };
  const It it = kIters.at(kernel);
  switch (cls) {
    case Class::S: return it.s;
    case Class::A: return it.a;
    case Class::B: return it.b;
    case Class::C: return it.c;
  }
  return it.s;
}

KernelFn kernel_by_name(const std::string& name) {
  if (name == "CG") return &run_cg;
  if (name == "MG") return &run_mg;
  if (name == "IS") return &run_is;
  if (name == "EP") return &run_ep;
  if (name == "FT") return &run_ft;
  if (name == "SP") return &run_sp;
  if (name == "BT") return &run_bt;
  if (name == "LU") return &run_lu;
  assert(false && "unknown NAS kernel");
  return nullptr;
}

}  // namespace odmpi::nas
