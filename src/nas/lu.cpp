// NAS LU: SSOR solver with the NPB wavefront communication pattern — a 2D
// process grid over the x-y plane; each lower-triangular sweep receives
// boundary lines from the north and west neighbours plane by plane,
// relaxes, and forwards to the south and east (the upper sweep reverses
// the direction), exactly the Sweep3D-style pipeline of Table 1. Global
// allreduce norms bound each time step.
//
// LU is part of the NPB suite the paper lists but does not plot; it is
// included for suite completeness and appears in the extended resource
// tables.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "src/nas/adi.h"
#include "src/nas/common.h"
#include "src/sim/rng.h"

namespace odmpi::nas {

namespace {

constexpr int kNx = 12, kNy = 12, kNz = 16;  // reduced local block
constexpr mpi::Tag kTagWave = 71;

struct LuGrid {
  int px, py, x, y;  // process grid and my coordinates

  [[nodiscard]] int rank_of(int gx, int gy) const { return gx * py + gy; }
  [[nodiscard]] int north() const { return x > 0 ? rank_of(x - 1, y) : -1; }
  [[nodiscard]] int south() const {
    return x + 1 < px ? rank_of(x + 1, y) : -1;
  }
  [[nodiscard]] int west() const { return y > 0 ? rank_of(x, y - 1) : -1; }
  [[nodiscard]] int east() const {
    return y + 1 < py ? rank_of(x, y + 1) : -1;
  }
};

std::size_t idx(int i, int j, int k) {
  return (static_cast<std::size_t>(k) * kNx + static_cast<std::size_t>(i)) *
             kNy +
         static_cast<std::size_t>(j);
}

}  // namespace

KernelResult run_lu(mpi::Comm& comm, Class cls) {
  LuGrid g;
  g.px = static_cast<int>(std::lround(std::sqrt(comm.size())));
  while (comm.size() % g.px != 0) --g.px;
  g.py = comm.size() / g.px;
  g.x = comm.rank() / g.py;
  g.y = comm.rank() % g.py;

  std::vector<double> u(static_cast<std::size_t>(kNx * kNy * kNz));
  sim::Rng rng(0x4C55, static_cast<std::uint64_t>(comm.rank()));
  for (auto& v : u) v = rng.next_double();

  const int steps = iterations("LU", cls);
  const double budget = compute_budget("LU", cls);

  comm.barrier();
  const double t0 = comm.wtime();

  std::vector<double> north_in(kNy), west_in(kNx);
  std::vector<double> south_out(kNy), east_out(kNx);
  double checksum = 0;
  bool verified = true;

  for (int step = 0; step < steps; ++step) {
    for (int dir : {+1, -1}) {  // lower then upper triangular sweep
      for (int kk = 0; kk < kNz; ++kk) {
        const int k = dir > 0 ? kk : kNz - 1 - kk;
        // Receive the incoming wavefront boundary for this plane.
        const int recv_ns = dir > 0 ? g.north() : g.south();
        const int recv_we = dir > 0 ? g.west() : g.east();
        if (recv_ns >= 0) {
          comm.recv(north_in.data(), kNy, mpi::kDouble, recv_ns, kTagWave);
        } else {
          std::fill(north_in.begin(), north_in.end(), 0.25);
        }
        if (recv_we >= 0) {
          comm.recv(west_in.data(), kNx, mpi::kDouble, recv_we, kTagWave);
        } else {
          std::fill(west_in.begin(), west_in.end(), 0.25);
        }
        // SSOR-style relaxation sweeping in the wavefront direction.
        if (dir > 0) {
          for (int i = 0; i < kNx; ++i) {
            for (int j = 0; j < kNy; ++j) {
              const double nb_i = i > 0 ? u[idx(i - 1, j, k)]
                                        : north_in[static_cast<std::size_t>(j)];
              const double nb_j = j > 0 ? u[idx(i, j - 1, k)]
                                        : west_in[static_cast<std::size_t>(i)];
              u[idx(i, j, k)] =
                  0.5 * u[idx(i, j, k)] + 0.25 * nb_i + 0.25 * nb_j;
            }
          }
        } else {
          for (int i = kNx - 1; i >= 0; --i) {
            for (int j = kNy - 1; j >= 0; --j) {
              const double nb_i = i + 1 < kNx
                                      ? u[idx(i + 1, j, k)]
                                      : north_in[static_cast<std::size_t>(j)];
              const double nb_j = j + 1 < kNy
                                      ? u[idx(i, j + 1, k)]
                                      : west_in[static_cast<std::size_t>(i)];
              u[idx(i, j, k)] =
                  0.5 * u[idx(i, j, k)] + 0.25 * nb_i + 0.25 * nb_j;
            }
          }
        }
        // Forward the outgoing wavefront boundary.
        const int send_ns = dir > 0 ? g.south() : g.north();
        const int send_we = dir > 0 ? g.east() : g.west();
        if (send_ns >= 0) {
          const int edge = dir > 0 ? kNx - 1 : 0;
          for (int j = 0; j < kNy; ++j)
            south_out[static_cast<std::size_t>(j)] = u[idx(edge, j, k)];
          comm.send(south_out.data(), kNy, mpi::kDouble, send_ns, kTagWave);
        }
        if (send_we >= 0) {
          const int edge = dir > 0 ? kNy - 1 : 0;
          for (int i = 0; i < kNx; ++i)
            east_out[static_cast<std::size_t>(i)] = u[idx(i, edge, k)];
          comm.send(east_out.data(), kNx, mpi::kDouble, send_we, kTagWave);
        }
      }
    }
    // Step norm (NPB computes rsdnm via allreduce).
    double local = 0;
    for (double v : u) {
      local += v;
      if (v < 0.0 || v > 1.0) verified = false;  // convex updates stay in range
    }
    comm.allreduce(&local, &checksum, 1, mpi::kDouble, mpi::Op::kSum);
    charge_compute(comm, budget, steps, step);
  }

  double elapsed = comm.wtime() - t0;
  double max_elapsed = 0;
  comm.allreduce(&elapsed, &max_elapsed, 1, mpi::kDouble, mpi::Op::kMax);

  if (!std::isfinite(checksum) || checksum <= 0) verified = false;

  KernelResult res;
  res.name = "LU";
  res.cls = cls;
  res.nprocs = comm.size();
  res.time_sec = max_elapsed;
  res.verified = verified;
  res.checksum = checksum;
  return res;
}

}  // namespace odmpi::nas
