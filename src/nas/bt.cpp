// NAS BT: block tridiagonal ADI solver on the multi-partition scheme.
#include "src/nas/adi.h"

namespace odmpi::nas {

KernelResult run_bt(mpi::Comm& comm, Class cls) {
  // BT hands 5x5 block rows (not scalar lines) to the successor cell, so
  // its boundary planes are substantially larger than SP's.
  return run_adi(comm, cls, AdiConfig{"BT", /*boundary_factor=*/3});
}

}  // namespace odmpi::nas
