// Shared core for NAS SP and BT: the multi-partition ADI scheme.
//
// With P = q*q processes, the 3D domain is carved into q^3 cells and each
// process owns the q cells along a diagonal: cell g of process (r, c)
// sits at (gx=g, gy=(r+g) mod q, gz=(c+g) mod q). The diagonal layout
// means every sweep stage keeps all processes busy, and each process has
// exactly six distinct communication partners:
//   +x -> (r-1, c-1)   -x -> (r+1, c+1)
//   +y -> (r+1, c)     -y -> (r-1, c)
//   +z -> (r, c+1)     -z -> (r, c-1)
// which (plus the allreduce tree) reproduces Table 2's ~8 VIs at 16
// processes and ~9.8 at 36.
//
// Each time step does the NPB sequence: copy_faces (six aggregated face
// exchanges), then pipelined forward+backward line sweeps in x, y, z with
// a boundary plane handed to the successor cell's owner at each stage.
// The numerics are convex-combination line recurrences — real
// data-dependent arithmetic whose boundedness is the verification.
#pragma once

#include "src/nas/common.h"

namespace odmpi::nas {

struct AdiConfig {
  const char* name;      // "SP" or "BT"
  int boundary_factor;   // BT ships 5x5 block rows -> bigger planes
};

KernelResult run_adi(mpi::Comm& comm, Class cls, const AdiConfig& cfg);

}  // namespace odmpi::nas
