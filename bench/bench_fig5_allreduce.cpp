// Figure 5: MPI_Allreduce (MPI_SUM) latency vs number of processes, using
// the llcbench measurement procedure the paper used: repeat the collective
// many times, each process reports its own average, and the master
// gathers and averages the values.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

double allreduce_us(const bench::Config& cfg, bool bvia, int nprocs) {
  mpi::JobOptions opt = bench::job_options(cfg, bvia);
  const int iters = bench::quick_mode() ? 100 : 1000;
  double result = -1;
  mpi::World world(nprocs, opt);
  if (!world.run_job([&](mpi::Comm& c) {
        double v = c.rank(), s = 0;
        for (int i = 0; i < 10; ++i) {
          c.allreduce(&v, &s, 1, mpi::kDouble, mpi::Op::kSum);
        }
        const double t0 = c.wtime();
        for (int i = 0; i < iters; ++i) {
          c.allreduce(&v, &s, 1, mpi::kDouble, mpi::Op::kSum);
        }
        double mine = (c.wtime() - t0) * 1e6 / iters;
        // llcbench-style reporting: master gathers everyone's average.
        std::vector<double> all(static_cast<std::size_t>(c.size()));
        c.gather(&mine, 1, all.data(), mpi::kDouble, 0);
        if (c.rank() == 0) {
          double sum = 0;
          for (double x : all) sum += x;
          result = sum / c.size();
        }
      })) {
    return -1;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading(
      "Figure 5 — MPI_Allreduce (MPI_SUM) latency vs number of processes");
  const std::vector<int> sizes = bench::quick_mode()
                                     ? std::vector<int>{4, 8, 16}
                                     : std::vector<int>{2, 3, 4, 5, 6, 7, 8,
                                                        10, 12, 14, 16};
  for (bool bvia : {false, true}) {
    const auto configs = bvia ? bench::bvia_configs() : bench::clan_configs();
    std::printf("\n%s allreduce latency (us):\n%8s",
                bvia ? "Berkeley VIA" : "cLAN", "procs");
    for (const auto& c : configs) std::printf("  %16s", c.label.c_str());
    std::printf("\n");
    for (int np : sizes) {
      if (bvia && np > 8) continue;
      std::printf("%8d", np);
      for (const auto& c : configs) {
        std::printf("  %16.1f", allreduce_us(c, bvia, np));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper shape: same ordering as the barrier — on-demand ==\n"
      "static-polling << static-spinwait on cLAN; on-demand < static on\n"
      "Berkeley VIA.\n");
  return 0;
}
