// Shared helpers for the paper-reproduction benches: the three
// configurations of section 5 (static-spinwait, static-polling,
// on-demand) on both devices, plus small table-printing utilities.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/odmpi.h"

namespace odmpi::bench {

/// One measurement configuration from the paper's evaluation.
struct Config {
  std::string label;
  mpi::ConnectionModel model;
  mpi::WaitPolicy policy;
};

inline Config static_spinwait() {
  return {"static-spinwait", mpi::ConnectionModel::kStaticPeerToPeer,
          mpi::WaitPolicy::spinwait(100)};
}
inline Config static_polling() {
  return {"static-polling", mpi::ConnectionModel::kStaticPeerToPeer,
          mpi::WaitPolicy::polling()};
}
inline Config on_demand() {
  // The wait policy is orthogonal to connection management; the paper's
  // on-demand results track static-polling in the collectives (Figures
  // 4-5), so the on-demand configuration is measured under polling —
  // comparing connection management at the better completion mode.
  return {"on-demand", mpi::ConnectionModel::kOnDemand,
          mpi::WaitPolicy::polling()};
}

/// cLAN shows all three; Berkeley VIA has no wait/poll distinction, so
/// the paper compares just static-polling and on-demand there.
inline std::vector<Config> clan_configs() {
  return {static_spinwait(), on_demand(), static_polling()};
}
inline std::vector<Config> bvia_configs() {
  return {on_demand(), static_polling()};
}

inline mpi::JobOptions job_options(const Config& cfg, bool bvia) {
  mpi::JobOptions opt;
  opt.profile = bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan();
  opt.device.connection_model = cfg.model;
  opt.device.wait_policy = cfg.policy;
  return opt;
}

/// Short mode for CI-style smoke runs: ODMPI_QUICK=1 trims the sweeps.
inline bool quick_mode() {
  const char* q = std::getenv("ODMPI_QUICK");
  return q != nullptr && q[0] == '1';
}

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace odmpi::bench
