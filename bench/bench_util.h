// Shared helpers for the paper-reproduction benches: the three
// configurations of section 5 (static-spinwait, static-polling,
// on-demand) on both devices, plus small table-printing utilities.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/odmpi.h"

namespace odmpi::bench {

/// One measurement configuration from the paper's evaluation.
struct Config {
  std::string label;
  mpi::ConnectionModel model;
  mpi::WaitPolicy policy;
};

inline Config static_spinwait() {
  return {"static-spinwait", mpi::ConnectionModel::kStaticPeerToPeer,
          mpi::WaitPolicy::spinwait(100)};
}
inline Config static_polling() {
  return {"static-polling", mpi::ConnectionModel::kStaticPeerToPeer,
          mpi::WaitPolicy::polling()};
}
inline Config on_demand() {
  // The wait policy is orthogonal to connection management; the paper's
  // on-demand results track static-polling in the collectives (Figures
  // 4-5), so the on-demand configuration is measured under polling —
  // comparing connection management at the better completion mode.
  return {"on-demand", mpi::ConnectionModel::kOnDemand,
          mpi::WaitPolicy::polling()};
}

/// cLAN shows all three; Berkeley VIA has no wait/poll distinction, so
/// the paper compares just static-polling and on-demand there.
inline std::vector<Config> clan_configs() {
  return {static_spinwait(), on_demand(), static_polling()};
}
inline std::vector<Config> bvia_configs() {
  return {on_demand(), static_polling()};
}

/// Path given by --trace=<file>; empty when the bench runs untraced.
inline std::string& trace_path() {
  static std::string path;
  return path;
}

/// Path given by --json=<file>; empty when no machine-readable output was
/// requested. Benches that honour it write google-benchmark-style JSON
/// ({"benchmarks": [{name, items_per_second, ...}]}) so
/// scripts/check_bench_floor.py can gate them in CI.
inline std::string& json_path() {
  static std::string path;
  return path;
}

/// Parses bench command-line flags. Supported: --trace=<file> (record all
/// trace categories on every measured job; see next_trace_config()) and
/// --json=<file> (machine-readable results; see json_path()).
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path() = arg.substr(8);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path() = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s (supported: --trace=<file>, "
                   "--json=<file>)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
}

/// Trace settings for the next measured job. When --trace was given, the
/// first job writes <file> and later jobs in the same bench write
/// <file>.2, <file>.3, ... so runs never clobber one another.
inline sim::TraceConfig next_trace_config() {
  static int runs = 0;
  sim::TraceConfig tc;
  if (trace_path().empty()) return tc;
  tc.enabled = true;
  ++runs;
  tc.path = runs == 1 ? trace_path()
                      : trace_path() + "." + std::to_string(runs);
  return tc;
}

inline mpi::JobOptions job_options(const Config& cfg, bool bvia) {
  mpi::JobOptions opt;
  opt.profile = bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan();
  opt.device.connection_model = cfg.model;
  opt.device.wait_policy = cfg.policy;
  opt.trace = next_trace_config();
  return opt;
}

/// Short mode for CI-style smoke runs: ODMPI_QUICK=1 trims the sweeps.
inline bool quick_mode() {
  const char* q = std::getenv("ODMPI_QUICK");
  return q != nullptr && q[0] == '1';
}

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace odmpi::bench
