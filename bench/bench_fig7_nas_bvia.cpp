// Figure 7 + Table 3 (Berkeley VIA half): NAS kernels on BVIA/Myrinet
// with on-demand vs static-polling, at the paper's 4- and 8-process
// cells. On BVIA, fewer open VIs means a faster NIC, so on-demand wins.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/nas/common.h"

using namespace odmpi;

namespace {

struct Cell {
  const char* kernel;
  char cls;
  int np;
};

double nas_seconds(const bench::Config& cfg, const Cell& cell) {
  mpi::JobOptions opt = bench::job_options(cfg, /*bvia=*/true);
  double secs = -1;
  mpi::World world(cell.np, opt);
  if (!world.run_job([&](mpi::Comm& c) {
        nas::KernelResult r = nas::kernel_by_name(cell.kernel)(
            c, nas::class_from_char(cell.cls));
        if (c.rank() == 0) {
          secs = r.time_sec;
          if (!r.verified) {
            std::fprintf(stderr, "%s.%c.%d FAILED VERIFICATION\n",
                         cell.kernel, cell.cls, cell.np);
          }
        }
      })) {
    return -1;
  }
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading(
      "Figure 7 / Table 3 — NAS kernels on Berkeley VIA (Myrinet)");
  std::vector<Cell> cells;
  if (bench::quick_mode()) {
    cells = {{"IS", 'S', 8}, {"CG", 'S', 8}, {"SP", 'S', 4}};
  } else {
    cells = {
        {"IS", 'A', 8}, {"IS", 'B', 8}, {"CG", 'A', 8}, {"CG", 'B', 8},
        {"EP", 'A', 8}, {"CG", 'A', 4}, {"IS", 'A', 4}, {"BT", 'A', 4},
        {"SP", 'A', 4},
    };
  }
  std::printf("\n%-10s | %15s %15s | %14s\n", "cell", "on-demand (s)",
              "polling (s)", "od / polling");
  for (const Cell& cell : cells) {
    const double od = nas_seconds(bench::on_demand(), cell);
    const double pl = nas_seconds(bench::static_polling(), cell);
    std::printf("%s.%c.%-4d | %15.2f %15.2f | %14.3f\n", cell.kernel,
                cell.cls, cell.np, od, pl, od / pl);
  }
  std::printf(
      "\npaper shape: on-demand <= static-polling in every cell (IS.A.8:\n"
      "1.98 vs 1.99 s; CG.B.8: 203.2 vs 205.0 s in the paper), because the\n"
      "NIC scans fewer doorbells — and even with equal VI counts (IS) the\n"
      "count grows gradually instead of starting at N-1.\n");
  return 0;
}
