// Figure 6 + Table 3 (cLAN half): NAS kernel CPU times on cLAN VIA under
// static-spinwait / on-demand / static-polling, for the paper's exact
// class-and-process-count cells, printed both as absolute seconds
// (Table 3) and normalized to static-polling (Figure 6's y-axis).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/nas/common.h"

using namespace odmpi;

namespace {

struct Cell {
  const char* kernel;
  char cls;
  int np;
};

double nas_seconds(const bench::Config& cfg, bool bvia, const Cell& cell) {
  mpi::JobOptions opt = bench::job_options(cfg, bvia);
  double secs = -1;
  bool verified = false;
  mpi::World world(cell.np, opt);
  if (!world.run_job([&](mpi::Comm& c) {
        nas::KernelResult r = nas::kernel_by_name(cell.kernel)(
            c, nas::class_from_char(cell.cls));
        if (c.rank() == 0) {
          secs = r.time_sec;
          verified = r.verified;
        }
      })) {
    return -1;
  }
  if (!verified) {
    std::fprintf(stderr, "%s.%c.%d FAILED VERIFICATION under %s\n",
                 cell.kernel, cell.cls, cell.np, cfg.label.c_str());
  }
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading(
      "Figure 6 / Table 3 — NAS kernels on cLAN VIA "
      "(static-spinwait vs on-demand vs static-polling)");
  std::vector<Cell> cells;
  if (bench::quick_mode()) {
    cells = {{"CG", 'S', 16}, {"MG", 'S', 16}, {"IS", 'S', 16},
             {"SP", 'S', 16}, {"BT", 'S', 16}};
  } else {
    cells = {
        {"CG", 'A', 16}, {"CG", 'B', 16}, {"CG", 'A', 32}, {"CG", 'B', 32},
        {"CG", 'C', 32}, {"MG", 'A', 16}, {"MG", 'B', 16}, {"MG", 'A', 32},
        {"MG", 'B', 32}, {"MG", 'C', 32}, {"IS", 'A', 16}, {"IS", 'B', 16},
        {"IS", 'A', 32}, {"IS", 'B', 32}, {"IS", 'C', 32}, {"SP", 'A', 16},
        {"SP", 'B', 16}, {"BT", 'A', 16}, {"BT", 'B', 16},
    };
  }
  const auto configs = bench::clan_configs();

  std::printf("\n%-10s | %15s %15s %15s | %9s %9s %9s\n", "cell",
              "spinwait (s)", "on-demand (s)", "polling (s)", "norm-sw",
              "norm-od", "norm-pl");
  for (const Cell& cell : cells) {
    double secs[3];
    for (std::size_t i = 0; i < configs.size(); ++i) {
      secs[i] = nas_seconds(configs[i], /*bvia=*/false, cell);
    }
    const double base = secs[2];  // static-polling
    std::printf("%s.%c.%-4d | %15.2f %15.2f %15.2f | %9.3f %9.3f %9.3f\n",
                cell.kernel, cell.cls, cell.np, secs[0], secs[1], secs[2],
                secs[0] / base, secs[1] / base, secs[2] / base);
  }
  std::printf(
      "\npaper shape: on-demand within ~2%% of static-polling everywhere\n"
      "(sometimes ahead, e.g. MG); static-spinwait consistently worst,\n"
      "most visibly on the collective-heavy kernels.\n");
  return 0;
}
