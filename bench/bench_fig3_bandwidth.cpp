// Figure 3: MVICH bandwidth vs message size on both devices and all three
// configurations, showing the jump at the 5000-byte eager->rendezvous
// threshold that makes the paper suggest a larger threshold would help.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

double bandwidth_mbs(const bench::Config& cfg, bool bvia, std::size_t bytes) {
  mpi::JobOptions opt = bench::job_options(cfg, bvia);
  double result = -1;
  mpi::World world(2, opt);
  if (!world.run_job([&](mpi::Comm& c) {
        std::vector<std::byte> buf(bytes);
        const int iters = bytes >= 65536 ? 20 : 50;
        if (c.rank() == 0) {
          // Warmup + window-style streaming send, acked at the end.
          c.send(buf.data(), bytes, mpi::kByte, 1, 0);
          std::int32_t ack;
          c.recv(&ack, 1, mpi::kInt32, 1, 1);
          const double t0 = c.wtime();
          for (int i = 0; i < iters; ++i)
            c.send(buf.data(), bytes, mpi::kByte, 1, 0);
          c.recv(&ack, 1, mpi::kInt32, 1, 1);
          result = static_cast<double>(iters) * bytes /
                   (c.wtime() - t0) / 1e6;
        } else {
          c.recv(buf.data(), bytes, mpi::kByte, 0, 0);
          std::int32_t ack = 1;
          c.send(&ack, 1, mpi::kInt32, 0, 1);
          for (int i = 0; i < iters; ++i)
            c.recv(buf.data(), bytes, mpi::kByte, 0, 0);
          c.send(&ack, 1, mpi::kInt32, 0, 1);
        }
      })) {
    return -1;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading("Figure 3 — MVICH bandwidth vs message size");
  const std::vector<std::size_t> sizes =
      bench::quick_mode()
          ? std::vector<std::size_t>{1024, 8192, 262144}
          : std::vector<std::size_t>{256,   1024,  2048,  4096,  4999,
                                     5001,  8192,  16384, 32768, 65536,
                                     131072, 262144};
  for (bool bvia : {false, true}) {
    const auto configs = bvia ? bench::bvia_configs() : bench::clan_configs();
    std::printf("\n%s bandwidth (MB/s):\n%10s",
                bvia ? "Berkeley VIA" : "cLAN", "bytes");
    for (const auto& c : configs) std::printf("  %16s", c.label.c_str());
    std::printf("\n");
    for (std::size_t s : sizes) {
      std::printf("%10zu", s);
      for (const auto& c : configs) {
        std::printf("  %16.1f", bandwidth_mbs(c, bvia, s));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper shape: identical curves for the three configurations; a\n"
      "visible jump crossing 5000 bytes (eager -> rendezvous); plateaus\n"
      "near ~110 MB/s (cLAN) and ~65 MB/s (BVIA).\n");
  return 0;
}
