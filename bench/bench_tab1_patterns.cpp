// Table 1: average number of distinct (send) destinations per process in
// several large-scale applications, regenerated from the communication-
// pattern generators, side by side with the published values.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/patterns/patterns.h"

using namespace odmpi;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading(
      "Table 1 — average number of distinct destinations per process");
  std::printf("%-10s %9s %12s %12s\n", "App", "Processes", "measured",
              "paper");
  for (const patterns::PatternRow& row : patterns::table1()) {
    char paper[32];
    if (row.nprocs == 1024) {
      // The paper reports upper bounds at 1024 processes.
      std::snprintf(paper, sizeof paper, "< %.0f", row.paper);
    } else {
      std::snprintf(paper, sizeof paper, "%.2f", row.paper);
    }
    std::printf("%-10s %9d %12.2f %12s\n", row.name.c_str(), row.nprocs,
                row.average, paper);
  }
  std::printf(
      "\npaper shape: every application needs a small, size-insensitive\n"
      "fraction of the N-1 connections a static fully-connected MPI pins;\n"
      "only SMG2000's multilevel coupling grows large.\n");

  // The paper's headline waste number (introduction, point 4): "if each
  // VI is associated with a 120 kB buffer as in MVICH, the total amount
  // of unused memory for the NAS benchmark CG on a 1024 node cluster is
  // 119 GB using the static connection mechanism."
  bench::heading("Pinned-memory projection at 1024 nodes (paper section 1)");
  const mpi::DeviceConfig cfg;  // MVICH defaults: 32 x 3840 B per VI
  const double per_vi_mb =
      static_cast<double>(cfg.credits) * cfg.eager_buf_bytes / 1e6;
  const int nprocs = 1024;
  const auto cg_dests = patterns::cg(nprocs);
  const double used = patterns::average_destinations(cg_dests);
  const double static_vis = nprocs - 1;
  const double unused_gb =
      (static_vis - used) * per_vi_mb * nprocs / 1e3;
  std::printf(
      "per-VI pinned buffers: %.1f kB (%d credits x %zu B)\n"
      "CG at %d processes touches %.2f peers of %d\n"
      "=> unused pinned memory under static management: %.1f GB\n"
      "   (paper: 119 GB)\n",
      per_vi_mb * 1e3, cfg.credits, cfg.eager_buf_bytes, nprocs, used,
      nprocs - 1, unused_gb);
  return 0;
}
