// Figure 8: MPI_Init time vs number of processes for the serialized
// client/server static bootstrap, the parallel peer-to-peer static
// bootstrap, and on-demand (which creates no connections at init).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

double init_ms(mpi::ConnectionModel model, bool bvia, int nprocs) {
  mpi::JobOptions opt;
  opt.profile = bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan();
  opt.device.connection_model = model;
  opt.trace = bench::next_trace_config();
  mpi::World world(nprocs, opt);
  if (!world.run([](mpi::Comm&) {})) return -1;
  return world.mean_init_us() / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading("Figure 8 — MPI_Init time vs number of processes");
  const std::vector<int> sizes =
      bench::quick_mode() ? std::vector<int>{4, 16}
                          : std::vector<int>{2, 4, 6, 8, 10, 12, 14, 16};
  std::printf("\ncLAN MPI_Init time (ms):\n");
  std::printf("%8s  %16s  %16s  %16s\n", "procs", "client/server",
              "peer-to-peer", "on-demand");
  for (int np : sizes) {
    std::printf("%8d  %16.2f  %16.2f  %16.2f\n", np,
                init_ms(mpi::ConnectionModel::kStaticClientServer, false, np),
                init_ms(mpi::ConnectionModel::kStaticPeerToPeer, false, np),
                init_ms(mpi::ConnectionModel::kOnDemand, false, np));
  }
  std::printf("\nBerkeley VIA MPI_Init time (ms) — no client/server model:\n");
  std::printf("%8s  %16s  %16s\n", "procs", "peer-to-peer", "on-demand");
  for (int np : sizes) {
    if (np > 8) continue;  // the paper caps BVIA at 8 nodes
    std::printf("%8d  %16.2f  %16.2f\n", np,
                init_ms(mpi::ConnectionModel::kStaticPeerToPeer, true, np),
                init_ms(mpi::ConnectionModel::kOnDemand, true, np));
  }
  std::printf(
      "\npaper shape: client/server grows fastest (serialized accepts),\n"
      "peer-to-peer grows linearly with N-1 connections, on-demand stays\n"
      "flat and lowest (no VIA connections at init).\n");
  return 0;
}
