// Figure 8: MPI_Init time vs number of processes for the serialized
// client/server static bootstrap, the parallel peer-to-peer static
// bootstrap, and on-demand (which creates no connections at init).
//
// Two sections:
//  - the classic 2-16 process tables reproducing the paper's figure
//    (printed first, formats frozen — diffed against goldens elsewhere);
//  - an extended 1k-16k sweep past the paper's cluster, comparing the
//    *fair* static baseline (kStaticTree: aggregated OOB exchange +
//    local binds, no per-pair wire handshakes) against on-demand, with a
//    peak-RSS-per-rank column showing the memory side of the story.
//
// --json=<file> writes google-benchmark-style JSON of the extended sweep
// (items_per_second = ranks initialized per virtual second) for the
// BENCH_init.json floor gate in CI.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/sweep.h"

using namespace odmpi;

namespace {

// A run that fails here is a simulator bug, not a data point: report why
// (deadline? failed ranks?) and fail the bench run instead of the old
// behaviour of printing a silent -1.00 cell and exiting 0.
void die_on_failure(const mpi::RunResult& result, const char* what,
                    int nprocs) {
  if (result.status == mpi::RunStatus::kOk) return;
  std::fprintf(stderr, "fig8: %s at %d procs failed: %s\n", what, nprocs,
               result.summary().c_str());
  std::exit(1);
}

double init_ms(mpi::ConnectionModel model, bool bvia, int nprocs) {
  mpi::JobOptions opt;
  opt.profile = bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan();
  opt.device.connection_model = model;
  opt.trace = bench::next_trace_config();
  mpi::World world(nprocs, opt);
  die_on_failure(world.run_job([](mpi::Comm&) {}), to_string(model), nprocs);
  return world.metrics().mean_init_us / 1000.0;
}

// ---- Extended sweep (past the paper's 16-node cluster) -----------------

// Current resident set, bytes (/proc/self/statm page count). Good enough
// for footprint *growth* attribution when configs run smallest-first: the
// allocator does not return arena pages between Worlds, so the reading
// after a config reflects the largest World run so far — which, in
// ascending order, is that config.
std::int64_t rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  long total = 0, resident = 0;
  if (!(statm >> total >> resident)) return 0;
  return static_cast<std::int64_t>(resident) * 4096;
}

struct ExtRow {
  std::string model;
  int nprocs = 0;
  double init_ms = 0;
  double rss_per_rank_kb = 0;
};

// Trimmed per-channel resources so a 4096-rank all-pairs static job (16.7M
// channel sides across the World) fits host memory. Both models use the
// same trim, so the *curve comparison* stays apples-to-apples; absolute
// numbers are not comparable with the classic section's default config.
mpi::DeviceConfig trimmed_device(mpi::ConnectionModel model) {
  mpi::DeviceConfig dev;
  dev.connection_model = model;
  dev.credits = 1;
  dev.eager_buf_bytes = 128;  // 64B header + 64B payload
  dev.send_pool_size = 8;
  dev.lazy_send_pool = true;  // footprint study: nobody sends, nobody pays
  return dev;
}

ExtRow run_extended(mpi::ConnectionModel model, int nprocs) {
  sim::SweepConfig cfg;
  cfg.label = std::string(to_string(model)) + "/" + std::to_string(nprocs);
  cfg.nranks = nprocs;
  cfg.options.profile = via::DeviceProfile::clan();
  cfg.options.device = trimmed_device(model);
  cfg.body = [](mpi::Comm&) {};

  const std::int64_t rss0 = rss_bytes();
  sim::SweepReport report = sim::SweepRunner::run_all({cfg}, /*threads=*/1);
  const std::int64_t rss1 = rss_bytes();

  const sim::SweepItemResult& item = report.items.at(0);
  if (!item.error.empty()) {
    std::fprintf(stderr, "fig8 extended: %s threw: %s\n", item.label.c_str(),
                 item.error.c_str());
    std::exit(1);
  }
  die_on_failure(item.result, item.label.c_str(), nprocs);

  ExtRow row;
  row.model = to_string(model);
  row.nprocs = nprocs;
  row.init_ms = item.metrics.mean_init_us / 1000.0;
  row.rss_per_rank_kb =
      static_cast<double>(std::max<std::int64_t>(rss1 - rss0, 0)) / 1024.0 /
      nprocs;
  return row;
}

void write_json(const std::string& path, const std::vector<ExtRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fig8: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"context\": {\"bench\": \"bench_fig8_init_time\"},\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ExtRow& r = rows[i];
    const double init_s = r.init_ms / 1e3;
    const double ranks_per_sec = init_s > 0 ? r.nprocs / init_s : 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"fig8_init/%s/%d\", "
                  "\"run_type\": \"iteration\", "
                  "\"real_time\": %.3f, \"time_unit\": \"ms\", "
                  "\"items_per_second\": %.1f, "
                  "\"rss_per_rank_kb\": %.1f}%s\n",
                  r.model.c_str(), r.nprocs, r.init_ms, ranks_per_sec,
                  r.rss_per_rank_kb, i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading("Figure 8 — MPI_Init time vs number of processes");
  const std::vector<int> sizes =
      bench::quick_mode() ? std::vector<int>{4, 16}
                          : std::vector<int>{2, 4, 6, 8, 10, 12, 14, 16};
  std::printf("\ncLAN MPI_Init time (ms):\n");
  std::printf("%8s  %16s  %16s  %16s\n", "procs", "client/server",
              "peer-to-peer", "on-demand");
  for (int np : sizes) {
    std::printf("%8d  %16.2f  %16.2f  %16.2f\n", np,
                init_ms(mpi::ConnectionModel::kStaticClientServer, false, np),
                init_ms(mpi::ConnectionModel::kStaticPeerToPeer, false, np),
                init_ms(mpi::ConnectionModel::kOnDemand, false, np));
  }
  std::printf("\nBerkeley VIA MPI_Init time (ms) — no client/server model:\n");
  std::printf("%8s  %16s  %16s\n", "procs", "peer-to-peer", "on-demand");
  for (int np : sizes) {
    if (np > 8) continue;  // the paper caps BVIA at 8 nodes
    std::printf("%8d  %16.2f  %16.2f\n", np,
                init_ms(mpi::ConnectionModel::kStaticPeerToPeer, true, np),
                init_ms(mpi::ConnectionModel::kOnDemand, true, np));
  }
  std::printf(
      "\npaper shape: client/server grows fastest (serialized accepts),\n"
      "peer-to-peer grows linearly with N-1 connections, on-demand stays\n"
      "flat and lowest (no VIA connections at init).\n");

  // ---- Extended: thousands of ranks, fair static baseline --------------
  bench::heading("Figure 8 extended — init at scale (static-tree vs on-demand)");
  const bool quick = bench::quick_mode();
  // Footprint-ascending order so the RSS attribution trick (see
  // rss_bytes) holds: on-demand first (tiny — a static-tree run before it
  // would hide its growth inside already-warm arenas), then static-tree
  // ascending.
  const std::vector<int> tree_sizes =
      quick ? std::vector<int>{256, 1024} : std::vector<int>{1024, 2048, 4096};
  const std::vector<int> od_sizes =
      quick ? std::vector<int>{1024} : std::vector<int>{1024, 4096, 16384};

  std::vector<ExtRow> rows;
  for (int np : od_sizes) {
    rows.push_back(run_extended(mpi::ConnectionModel::kOnDemand, np));
  }
  for (int np : tree_sizes) {
    rows.push_back(run_extended(mpi::ConnectionModel::kStaticTree, np));
  }

  std::printf("\ncLAN, trimmed per-channel config (1 credit, 128 B bufs):\n");
  std::printf("%14s  %8s  %14s  %16s\n", "model", "procs", "init (ms)",
              "peak RSS/rank KB");
  for (const ExtRow& r : rows) {
    std::printf("%14s  %8d  %14.2f  %16.1f\n", r.model.c_str(), r.nprocs,
                r.init_ms, r.rss_per_rank_kb);
  }
  std::printf(
      "\nextended shape: static-tree's aggregated OOB exchange removes the\n"
      "per-pair wire handshakes but still binds and provisions N-1 VIs per\n"
      "rank, so init time and footprint keep growing with N; on-demand\n"
      "stays flat in both columns at any N.\n");

  if (!bench::json_path().empty()) write_json(bench::json_path(), rows);
  return 0;
}
