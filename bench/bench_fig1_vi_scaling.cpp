// Figure 1: Berkeley VIA one-way latency as a function of the number of
// active VIs (message sizes 8/16/32/64 bytes). The BVIA firmware scans
// every open VI's doorbell per message, so latency climbs with the VI
// count — the effect that makes on-demand management *win* on BVIA.
// cLAN is shown alongside as the flat control.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

// One-way latency of a `bytes`-sized message with `extra_vis` additional
// connected-but-idle VI pairs open between the two nodes.
double one_way_us(const via::DeviceProfile& profile, int extra_vis,
                  std::size_t bytes) {
  sim::Engine engine;
  via::Cluster cluster(engine, 2, profile);
  double latency_us = -1;
  sim::Process proc(engine, 0, [&] {
    auto* p = sim::Process::current();
    const auto connect_pair = [&](via::Discriminator disc) {
      via::Vi* a = cluster.nic(0).create_vi(nullptr, nullptr);
      via::Vi* b = cluster.nic(1).create_vi(nullptr, nullptr);
      cluster.nic(0).connections().connect_peer(*a, 1, disc);
      cluster.nic(1).connections().connect_peer(*b, 0, disc);
      while (a->state() != via::ViState::kConnected ||
             b->state() != via::ViState::kConnected) {
        p->advance(sim::nanoseconds(100));
        p->yield();
      }
      return std::pair{a, b};
    };
    for (int i = 0; i < extra_vis; ++i) connect_pair(100u + i);
    auto [send_vi, recv_vi] = connect_pair(1);

    std::vector<std::byte> src(bytes ? bytes : 1), dst(bytes ? bytes : 1);
    const auto hs = cluster.nic(0).register_memory(src.data(), src.size());
    const auto hd = cluster.nic(1).register_memory(dst.data(), dst.size());

    // Average over repetitions (after one warmup).
    constexpr int kIters = 20;
    sim::SimTime total = 0;
    for (int it = 0; it <= kIters; ++it) {
      via::Descriptor recv;
      recv.addr = dst.data();
      recv.length = bytes;
      recv.mem_handle = hd;
      recv_vi->post_recv(&recv);
      via::Descriptor send;
      send.addr = src.data();
      send.length = bytes;
      send.mem_handle = hs;
      const sim::SimTime t0 = p->now();
      send_vi->post_send(&send);
      while (!recv.done) {
        p->advance(sim::nanoseconds(200));
        p->yield();
      }
      if (it > 0) total += p->now() - t0;
    }
    latency_us = sim::to_us(total) / kIters;
  });
  proc.start();
  engine.run();
  return latency_us;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading(
      "Figure 1 — latency in Berkeley VIA as a function of active VIs");
  const std::vector<int> vi_counts =
      bench::quick_mode() ? std::vector<int>{0, 8, 24}
                          : std::vector<int>{0, 2, 4, 8, 12, 16, 24, 32, 48};
  const std::size_t sizes[] = {8, 16, 32, 64};

  for (const via::DeviceProfile& profile :
       {via::DeviceProfile::bvia(), via::DeviceProfile::clan(),
        via::DeviceProfile::rdma()}) {
    std::printf("\n%s one-way latency (us):\n", profile.name.c_str());
    std::printf("%10s", "#VIs");
    for (std::size_t s : sizes) std::printf("  %6zuB", s);
    std::printf("\n");
    for (int extra : vi_counts) {
      std::printf("%10d", extra + 1);
      for (std::size_t s : sizes) {
        std::printf("  %7.2f", one_way_us(profile, extra, s));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper shape: BVIA latency grows ~linearly with open VIs at every\n"
      "message size; cLAN is flat. This is the mechanism behind on-demand's\n"
      "outright wins on Berkeley VIA (Figures 4b, 5b, 7). The rdma profile\n"
      "(post-paper hardware tier) is flat like cLAN with a longer wire.\n");
  return 0;
}
