// Table 2: average number of VIs created per process and resource
// utilization (used / created) under static and on-demand connection
// management, for the microbenchmark programs and the NAS kernels.
//
// 24 (app, size) rows x 3 connection configurations = 72 independent
// Worlds: submitted as one SweepRunner batch so the table costs the
// wall-clock of the slowest cell, not the sum of all of them.
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/nas/common.h"
#include "src/sim/sweep.h"

using namespace odmpi;

namespace {

struct Workload {
  std::string name;
  std::vector<int> sizes;
  std::function<void(mpi::Comm&)> body;
};

// The collective microbenchmarks repeat the operation (with a barrier for
// iteration sync, as the measurement loops in section 5.4 do).
std::function<void(mpi::Comm&)> coll_bench(
    std::function<void(mpi::Comm&)> op) {
  return [op = std::move(op)](mpi::Comm& comm) {
    for (int i = 0; i < 4; ++i) {
      op(comm);
      comm.barrier();
    }
  };
}

struct VisFigures {
  double created = -1;  // mean VIs created per process (Table 2's metric)
  double peak = -1;     // mean peak simultaneously-open VIs per process
};

sim::SweepConfig vis_cfg(const Workload& w, int nprocs,
                         mpi::ConnectionModel model, int max_vis = 0) {
  sim::SweepConfig cfg;
  cfg.label = w.name + "." + std::to_string(nprocs) + "/" +
              std::string(mpi::to_string(model)) +
              (max_vis > 0 ? "/cap" + std::to_string(max_vis) : "");
  cfg.nranks = nprocs;
  cfg.options.device.connection_model = model;
  cfg.options.device.max_vis = max_vis;
  cfg.options.trace = bench::next_trace_config();
  cfg.body = w.body;
  cfg.collect_reports = true;  // per-rank vis_open_peak for the peak column
  return cfg;
}

VisFigures vis_figures(const sim::SweepItemResult& item) {
  if (!item.ok()) {
    std::fprintf(stderr, "%s deadlocked!\n", item.label.c_str());
    return {};
  }
  double peak = 0;
  for (const mpi::RankReport& r : item.reports) {
    peak += static_cast<double>(r.vis_open_peak);
  }
  return {item.mean_vis_per_process,
          item.reports.empty() ? 0 : peak / item.reports.size()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading(
      "Table 2 — average VIs per process and resource utilization");

  const auto nas_body = [](const char* kernel) {
    return [kernel](mpi::Comm& comm) {
      (void)nas::kernel_by_name(kernel)(comm, nas::Class::S);
    };
  };

  std::vector<Workload> workloads = {
      {"Ring", {16, 32},
       [](mpi::Comm& c) {
         const int right = (c.rank() + 1) % c.size();
         const int left = (c.rank() - 1 + c.size()) % c.size();
         std::int32_t t = c.rank(), in = 0;
         for (int i = 0; i < 4; ++i) {
           c.sendrecv(&t, 1, mpi::kInt32, right, 0, &in, 1, mpi::kInt32,
                      left, 0);
         }
       }},
      {"Barrier", {16, 32}, coll_bench([](mpi::Comm& c) { c.barrier(); })},
      {"Allreduce", {16, 32}, coll_bench([](mpi::Comm& c) {
         double v = c.rank(), s = 0;
         c.allreduce(&v, &s, 1, mpi::kDouble, mpi::Op::kSum);
       })},
      {"Alltoall", {16, 32}, coll_bench([](mpi::Comm& c) {
         std::vector<std::int32_t> a(static_cast<std::size_t>(c.size())),
             b(static_cast<std::size_t>(c.size()));
         c.alltoall(a.data(), 1, b.data(), mpi::kInt32);
       })},
      {"Allgather", {16, 32}, coll_bench([](mpi::Comm& c) {
         std::int32_t v = c.rank();
         std::vector<std::int32_t> all(static_cast<std::size_t>(c.size()));
         c.allgather(&v, 1, all.data(), mpi::kInt32);
       })},
      {"Bcast", {16, 32}, coll_bench([](mpi::Comm& c) {
         std::int32_t v = 7;
         c.bcast(&v, 1, mpi::kInt32, 0);
       })},
      {"CG", {16, 32}, nas_body("CG")},
      {"MG", {16, 32}, nas_body("MG")},
      {"IS", {16, 32}, nas_body("IS")},
      {"SP", {16, 36}, nas_body("SP")},
      {"BT", {16, 36}, nas_body("BT")},
      {"EP", {16, 32}, nas_body("EP")},
  };

  // The capped column runs on-demand under a per-process VI budget: peak
  // simultaneously-open VIs is the honest resource figure there, since
  // created counts every eviction reconnect too.
  constexpr int kCap = 4;

  // Submit every (workload, size) row's three configurations — static,
  // on-demand, capped — as one sweep; cells stay submission-ordered.
  std::vector<sim::SweepConfig> configs;
  for (const Workload& w : workloads) {
    for (int size : w.sizes) {
      configs.push_back(
          vis_cfg(w, size, mpi::ConnectionModel::kStaticPeerToPeer));
      configs.push_back(vis_cfg(w, size, mpi::ConnectionModel::kOnDemand));
      configs.push_back(
          vis_cfg(w, size, mpi::ConnectionModel::kOnDemand, kCap));
    }
  }
  const sim::SweepReport rep = sim::SweepRunner::run_all(std::move(configs), 0);

  std::printf("%-10s %5s | %8s %10s | %8s %10s | %9s\n", "App", "Size",
              "VIs-stat", "util-stat", "VIs-od", "util-od", "peak-cap4");
  std::size_t cell = 0;
  for (const Workload& w : workloads) {
    for (int size : w.sizes) {
      const VisFigures st = vis_figures(rep.items[cell++]);
      const VisFigures od = vis_figures(rep.items[cell++]);
      const VisFigures capped = vis_figures(rep.items[cell++]);
      if (st.created < 0 || od.created < 0 || capped.created < 0) continue;
      // Utilization: VIs actually used / VIs created. On-demand only
      // creates what it uses (1.0 by construction); static creates N-1.
      const double util_static = od.created / st.created;
      std::printf("%-10s %5d | %8.2f %10.2f | %8.2f %10.2f | %9.2f\n",
                  w.name.c_str(), size, st.created, util_static, od.created,
                  1.0, capped.peak);
      if (capped.peak > kCap + 1e-9) {
        std::fprintf(stderr, "%s.%d: capped peak %.2f exceeds budget %d!\n",
                     w.name.c_str(), size, capped.peak, kCap);
        return 1;
      }
      if (capped.peak > od.peak + 1e-9) {
        std::fprintf(stderr,
                     "%s.%d: capped peak %.2f above uncapped peak %.2f!\n",
                     w.name.c_str(), size, capped.peak, od.peak);
        return 1;
      }
    }
  }
  std::printf(
      "\npaper shape: utilization well below 1 for everything except the\n"
      "alltoall-style workloads (IS, Alltoall); on-demand pins exactly\n"
      "what the application touches, and a VI budget (max_vis=%d) bounds\n"
      "the peak at min(budget, working set) — capped <= uncapped << static.\n",
      kCap);
  return 0;
}
