// Table 2: average number of VIs created per process and resource
// utilization (used / created) under static and on-demand connection
// management, for the microbenchmark programs and the NAS kernels.
//
// 24 (app, size) rows x 4 connection configurations = 96 independent
// Worlds: submitted as one SweepRunner batch so the table costs the
// wall-clock of the slowest cell, not the sum of all of them. The
// fourth configuration is the XRC-style shared receive endpoint on the
// rdma profile: one receive pool per process instead of a pinned
// per-peer credit window, with the pinned-memory column to show it.
//
// A dedicated 64-rank study then compares pinned eager-buffer memory
// between per-peer windows and the shared pool on the same on-demand
// rdma configuration, hard-failing if sharing does not strictly reduce
// it. --json=<file> writes google-benchmark-style JSON of that study
// (items_per_second = pinned-memory reduction ratio) for the
// BENCH_rdma.json floor gate in CI.
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/nas/common.h"
#include "src/sim/sweep.h"

using namespace odmpi;

namespace {

struct Workload {
  std::string name;
  std::vector<int> sizes;
  std::function<void(mpi::Comm&)> body;
};

// The collective microbenchmarks repeat the operation (with a barrier for
// iteration sync, as the measurement loops in section 5.4 do).
std::function<void(mpi::Comm&)> coll_bench(
    std::function<void(mpi::Comm&)> op) {
  return [op = std::move(op)](mpi::Comm& comm) {
    for (int i = 0; i < 4; ++i) {
      op(comm);
      comm.barrier();
    }
  };
}

struct VisFigures {
  double created = -1;    // mean VIs created per process (Table 2's metric)
  double peak = -1;       // mean peak simultaneously-open VIs per process
  double pinned_kb = -1;  // mean peak pinned NIC memory per process, KB
};

sim::SweepConfig vis_cfg(const Workload& w, int nprocs,
                         mpi::ConnectionModel model, int max_vis = 0,
                         bool xrc_shared = false) {
  sim::SweepConfig cfg;
  cfg.label = w.name + "." + std::to_string(nprocs) + "/" +
              std::string(mpi::to_string(model)) +
              (max_vis > 0 ? "/cap" + std::to_string(max_vis) : "") +
              (xrc_shared ? "/xrc" : "");
  cfg.nranks = nprocs;
  cfg.options.device.connection_model = model;
  cfg.options.device.max_vis = max_vis;
  if (xrc_shared) {
    cfg.options.profile = via::DeviceProfile::rdma();
    cfg.options.device.shared_recv_endpoint = true;
  }
  cfg.options.trace = bench::next_trace_config();
  cfg.body = w.body;
  cfg.collect_reports = true;  // per-rank vis_open_peak for the peak column
  return cfg;
}

VisFigures vis_figures(const sim::SweepItemResult& item) {
  if (!item.ok()) {
    std::fprintf(stderr, "%s deadlocked!\n", item.label.c_str());
    return {};
  }
  double peak = 0, pinned = 0;
  for (const mpi::RankReport& r : item.reports) {
    peak += static_cast<double>(r.vis_open_peak);
    pinned += static_cast<double>(r.pinned_bytes_peak);
  }
  const double n =
      item.reports.empty() ? 1 : static_cast<double>(item.reports.size());
  return {item.mean_vis_per_process, peak / n, pinned / n / 1024.0};
}

// ---- 64-rank pinned-memory study: per-peer windows vs XRC sharing ------

struct PinnedStudy {
  double per_peer_kb = 0;  // mean peak pinned bytes/rank, per-peer windows
  double shared_kb = 0;    // same, one shared receive pool per process
  double reduction = 0;    // per_peer / shared — the Table-2-style win
};

/// All-to-all on-demand traffic at `nprocs` ranks: every process ends up
/// connected to every peer, the worst case for per-peer pinned windows
/// and exactly where the shared receive pool pays off.
PinnedStudy pinned_study(int nprocs) {
  const auto body = [](mpi::Comm& c) {
    std::vector<std::int32_t> a(static_cast<std::size_t>(c.size())),
        b(static_cast<std::size_t>(c.size()));
    for (int i = 0; i < 4; ++i) {
      c.alltoall(a.data(), 1, b.data(), mpi::kInt32);
      c.barrier();
    }
  };
  std::vector<sim::SweepConfig> configs;
  for (const bool shared : {false, true}) {
    sim::SweepConfig cfg;
    cfg.label = std::string("pinned64/") + (shared ? "xrc" : "per-peer");
    cfg.nranks = nprocs;
    cfg.options.profile = via::DeviceProfile::rdma();
    cfg.options.device.connection_model = mpi::ConnectionModel::kOnDemand;
    cfg.options.device.shared_recv_endpoint = shared;
    cfg.options.trace = bench::next_trace_config();
    cfg.body = body;
    cfg.collect_reports = true;
    configs.push_back(std::move(cfg));
  }
  const sim::SweepReport rep = sim::SweepRunner::run_all(std::move(configs), 0);
  PinnedStudy study;
  for (const sim::SweepItemResult& item : rep.items) {
    if (!item.ok() || item.reports.empty()) {
      std::fprintf(stderr, "%s failed!\n", item.label.c_str());
      std::exit(1);
    }
    double pinned = 0;
    for (const mpi::RankReport& r : item.reports) {
      pinned += static_cast<double>(r.pinned_bytes_peak);
    }
    pinned /= static_cast<double>(item.reports.size()) * 1024.0;
    (item.label.ends_with("xrc") ? study.shared_kb : study.per_peer_kb) =
        pinned;
  }
  study.reduction =
      study.shared_kb > 0 ? study.per_peer_kb / study.shared_kb : 0;
  return study;
}

void write_json(const std::string& path, const PinnedStudy& s, int nprocs) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "tab2: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"context\": {\"bench\": \"bench_tab2_resources\"},\n"
                "  \"benchmarks\": [\n"
                "    {\"name\": \"tab2_pinned/xrc_reduction/%d\", "
                "\"run_type\": \"iteration\", "
                "\"real_time\": %.1f, \"time_unit\": \"kb\", "
                "\"items_per_second\": %.3f, "
                "\"per_peer_kb\": %.1f, \"shared_kb\": %.1f}\n  ]\n}\n",
                nprocs, s.shared_kb, s.reduction, s.per_peer_kb, s.shared_kb);
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading(
      "Table 2 — average VIs per process and resource utilization");

  const auto nas_body = [](const char* kernel) {
    return [kernel](mpi::Comm& comm) {
      (void)nas::kernel_by_name(kernel)(comm, nas::Class::S);
    };
  };

  std::vector<Workload> workloads = {
      {"Ring", {16, 32},
       [](mpi::Comm& c) {
         const int right = (c.rank() + 1) % c.size();
         const int left = (c.rank() - 1 + c.size()) % c.size();
         std::int32_t t = c.rank(), in = 0;
         for (int i = 0; i < 4; ++i) {
           c.sendrecv(&t, 1, mpi::kInt32, right, 0, &in, 1, mpi::kInt32,
                      left, 0);
         }
       }},
      {"Barrier", {16, 32}, coll_bench([](mpi::Comm& c) { c.barrier(); })},
      {"Allreduce", {16, 32}, coll_bench([](mpi::Comm& c) {
         double v = c.rank(), s = 0;
         c.allreduce(&v, &s, 1, mpi::kDouble, mpi::Op::kSum);
       })},
      {"Alltoall", {16, 32}, coll_bench([](mpi::Comm& c) {
         std::vector<std::int32_t> a(static_cast<std::size_t>(c.size())),
             b(static_cast<std::size_t>(c.size()));
         c.alltoall(a.data(), 1, b.data(), mpi::kInt32);
       })},
      {"Allgather", {16, 32}, coll_bench([](mpi::Comm& c) {
         std::int32_t v = c.rank();
         std::vector<std::int32_t> all(static_cast<std::size_t>(c.size()));
         c.allgather(&v, 1, all.data(), mpi::kInt32);
       })},
      {"Bcast", {16, 32}, coll_bench([](mpi::Comm& c) {
         std::int32_t v = 7;
         c.bcast(&v, 1, mpi::kInt32, 0);
       })},
      {"CG", {16, 32}, nas_body("CG")},
      {"MG", {16, 32}, nas_body("MG")},
      {"IS", {16, 32}, nas_body("IS")},
      {"SP", {16, 36}, nas_body("SP")},
      {"BT", {16, 36}, nas_body("BT")},
      {"EP", {16, 32}, nas_body("EP")},
  };

  // The capped column runs on-demand under a per-process VI budget: peak
  // simultaneously-open VIs is the honest resource figure there, since
  // created counts every eviction reconnect too.
  constexpr int kCap = 4;

  // Submit every (workload, size) row's four configurations — static,
  // on-demand, capped, XRC-shared — as one sweep; cells stay
  // submission-ordered.
  std::vector<sim::SweepConfig> configs;
  for (const Workload& w : workloads) {
    for (int size : w.sizes) {
      configs.push_back(
          vis_cfg(w, size, mpi::ConnectionModel::kStaticPeerToPeer));
      configs.push_back(vis_cfg(w, size, mpi::ConnectionModel::kOnDemand));
      configs.push_back(
          vis_cfg(w, size, mpi::ConnectionModel::kOnDemand, kCap));
      configs.push_back(vis_cfg(w, size, mpi::ConnectionModel::kOnDemand, 0,
                                /*xrc_shared=*/true));
    }
  }
  const sim::SweepReport rep = sim::SweepRunner::run_all(std::move(configs), 0);

  std::printf("%-10s %5s | %8s %10s | %8s %10s | %9s | %8s %8s\n", "App",
              "Size", "VIs-stat", "util-stat", "VIs-od", "util-od",
              "peak-cap4", "pin-od", "pin-xrc");
  std::size_t cell = 0;
  for (const Workload& w : workloads) {
    for (int size : w.sizes) {
      const VisFigures st = vis_figures(rep.items[cell++]);
      const VisFigures od = vis_figures(rep.items[cell++]);
      const VisFigures capped = vis_figures(rep.items[cell++]);
      const VisFigures xrc = vis_figures(rep.items[cell++]);
      if (st.created < 0 || od.created < 0 || capped.created < 0 ||
          xrc.created < 0) {
        continue;
      }
      // Utilization: VIs actually used / VIs created. On-demand only
      // creates what it uses (1.0 by construction); static creates N-1.
      const double util_static = od.created / st.created;
      std::printf(
          "%-10s %5d | %8.2f %10.2f | %8.2f %10.2f | %9.2f | %7.0fK %7.0fK\n",
          w.name.c_str(), size, st.created, util_static, od.created, 1.0,
          capped.peak, od.pinned_kb, xrc.pinned_kb);
      if (capped.peak > kCap + 1e-9) {
        std::fprintf(stderr, "%s.%d: capped peak %.2f exceeds budget %d!\n",
                     w.name.c_str(), size, capped.peak, kCap);
        return 1;
      }
      if (capped.peak > od.peak + 1e-9) {
        std::fprintf(stderr,
                     "%s.%d: capped peak %.2f above uncapped peak %.2f!\n",
                     w.name.c_str(), size, capped.peak, od.peak);
        return 1;
      }
    }
  }
  std::printf(
      "\npaper shape: utilization well below 1 for everything except the\n"
      "alltoall-style workloads (IS, Alltoall); on-demand pins exactly\n"
      "what the application touches, and a VI budget (max_vis=%d) bounds\n"
      "the peak at min(budget, working set) — capped <= uncapped << static.\n"
      "pin-od / pin-xrc: mean peak pinned NIC memory per process with\n"
      "per-peer credit windows vs one shared receive pool (rdma profile).\n",
      kCap);

  // ---- The XRC headline number: pinned memory at 64 ranks ----------------
  constexpr int kPinRanks = 64;
  bench::heading(
      "Pinned eager-receive memory at 64 ranks — per-peer vs XRC-shared");
  const PinnedStudy study = pinned_study(kPinRanks);
  std::printf("%-28s %12s\n", "configuration", "pinned/rank");
  std::printf("%-28s %11.1fK\n", "on-demand, per-peer windows",
              study.per_peer_kb);
  std::printf("%-28s %11.1fK\n", "on-demand, XRC shared pool",
              study.shared_kb);
  std::printf("reduction: %.2fx\n", study.reduction);
  if (study.shared_kb >= study.per_peer_kb) {
    std::fprintf(stderr,
                 "XRC-shared pinned memory (%.1fK) is not below per-peer "
                 "(%.1fK) at %d ranks!\n",
                 study.shared_kb, study.per_peer_kb, kPinRanks);
    return 1;
  }
  if (!bench::json_path().empty()) {
    write_json(bench::json_path(), study, kPinRanks);
    std::printf("wrote %s\n", bench::json_path().c_str());
  }
  return 0;
}
