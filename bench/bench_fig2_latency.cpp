// Figure 2: MVICH small-message latency vs message size on cLAN and
// Berkeley VIA for {static-polling, static-spinwait, on-demand}. The
// paper's observation: all three coincide — on-demand costs nothing once
// connections exist, and ping-pong completions land within the spin
// window so spinwait never sleeps.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

double pingpong_us(const bench::Config& cfg, bool bvia, std::size_t bytes) {
  mpi::JobOptions opt = bench::job_options(cfg, bvia);
  double result = -1;
  mpi::World world(2, opt);
  if (!world.run_job([&](mpi::Comm& c) {
        std::vector<std::byte> buf(bytes ? bytes : 1);
        const int iters = 100;
        const auto round = [&] {
          if (c.rank() == 0) {
            c.send(buf.data(), bytes, mpi::kByte, 1, 0);
            c.recv(buf.data(), bytes, mpi::kByte, 1, 0);
          } else {
            c.recv(buf.data(), bytes, mpi::kByte, 0, 0);
            c.send(buf.data(), bytes, mpi::kByte, 0, 0);
          }
        };
        for (int i = 0; i < 10; ++i) round();  // warmup incl. connect
        const double t0 = c.wtime();
        for (int i = 0; i < iters; ++i) round();
        if (c.rank() == 0) result = (c.wtime() - t0) * 1e6 / (2.0 * iters);
      })) {
    return -1;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading("Figure 2 — MVICH one-way latency vs message size");
  const std::vector<std::size_t> sizes =
      bench::quick_mode()
          ? std::vector<std::size_t>{4, 1024, 8192}
          : std::vector<std::size_t>{4,   16,   64,   256,  512, 1024,
                                     2048, 3072, 4096, 4999, 5001, 6144,
                                     8192, 12288, 16384};
  for (bool bvia : {false, true}) {
    const auto configs = bvia ? bench::bvia_configs() : bench::clan_configs();
    std::printf("\n%s latency (us):\n%10s", bvia ? "Berkeley VIA" : "cLAN",
                "bytes");
    for (const auto& c : configs) std::printf("  %16s", c.label.c_str());
    std::printf("\n");
    for (std::size_t s : sizes) {
      std::printf("%10zu", s);
      for (const auto& c : configs) {
        std::printf("  %16.2f", pingpong_us(c, bvia, s));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper shape: the three configurations coincide on each device\n"
      "(~14 us small-message on cLAN, ~35 us on BVIA), with the slope\n"
      "steepening at the 5000-byte eager->rendezvous switch.\n");
  return 0;
}
