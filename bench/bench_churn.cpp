// Connection churn under a VI budget: the resource-capped extension of
// Table 2. A rotating neighbor exchange touches every peer in turn, so
// the instantaneous working set is small but the cumulative peer set is
// the full communicator — the workload where a cap trades reconnect
// traffic for a hard bound on open VIs (and their pinned eager memory).
//
// Columns: completion time, mean peak simultaneously-open VIs per
// process, mean VIs created per process (counts eviction reconnects),
// peak pinned bytes, total evictions and reconnects across ranks.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

struct Row {
  std::string label;
  mpi::RunResult result;
  double peak_vis = 0;
  double created_vis = 0;
  std::int64_t pinned_peak = 0;  // max over ranks
  std::int64_t evictions = 0;
  std::int64_t reconnects = 0;
};

// Every rank exchanges with (rank +/- stride) for stride = 1..P-1,
// several passes, with a barrier per stride to keep the pattern phased.
// Each stride touches a new pair, so by the end every process has spoken
// to every other — but never to more than two at once.
void churn_body(mpi::Comm& c, int passes, int bytes) {
  std::vector<char> out(static_cast<std::size_t>(bytes), 'c');
  std::vector<char> in(static_cast<std::size_t>(bytes));
  for (int pass = 0; pass < passes; ++pass) {
    for (int stride = 1; stride < c.size(); ++stride) {
      const int right = (c.rank() + stride) % c.size();
      const int left = (c.rank() - stride + c.size()) % c.size();
      c.sendrecv(out.data(), bytes, mpi::kByte, right, stride, in.data(),
                 bytes, mpi::kByte, left, stride);
      c.barrier();
    }
  }
}

Row run_config(const std::string& label, mpi::ConnectionModel model,
               int max_vis, int nprocs, int passes, int bytes) {
  mpi::JobOptions opt;
  opt.device.connection_model = model;
  opt.device.max_vis = max_vis;
  opt.trace = bench::next_trace_config();
  mpi::World world(nprocs, opt);
  Row row;
  row.label = label;
  row.result =
      world.run_job([&](mpi::Comm& c) { churn_body(c, passes, bytes); });
  if (!row.result.ok()) return row;
  row.peak_vis = world.metrics().mean_peak_vis_per_process;
  row.created_vis = world.metrics().mean_vis_per_process;
  for (int r = 0; r < nprocs; ++r) {
    row.pinned_peak =
        std::max(row.pinned_peak, world.report(r).pinned_bytes_peak);
  }
  sim::Stats total = world.aggregate_stats();
  row.evictions = total.get("mpi.evictions");
  row.reconnects = total.get("mpi.reconnects");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bool quick = bench::quick_mode();
  const int nprocs = quick ? 8 : 16;
  const int passes = quick ? 1 : 2;
  const int bytes = 1024;

  bench::heading("Connection churn under a VI budget (rotating exchange, " +
                 std::to_string(nprocs) + " procs)");

  std::vector<Row> rows;
  rows.push_back(run_config("on-demand", mpi::ConnectionModel::kOnDemand,
                            /*max_vis=*/0, nprocs, passes, bytes));
  rows.push_back(run_config("on-demand-cap4", mpi::ConnectionModel::kOnDemand,
                            /*max_vis=*/4, nprocs, passes, bytes));
  rows.push_back(run_config("static-p2p",
                            mpi::ConnectionModel::kStaticPeerToPeer,
                            /*max_vis=*/0, nprocs, passes, bytes));

  std::printf("%-16s %10s %9s %9s %12s %7s %7s\n", "config", "time-ms",
              "peak-VIs", "VIs-made", "pinned-KiB", "evict", "reconn");
  for (const Row& row : rows) {
    if (!row.result.ok()) {
      std::printf("%-16s %s\n", row.label.c_str(),
                  row.result.summary().c_str());
      continue;
    }
    std::printf("%-16s %10.3f %9.2f %9.2f %12.1f %7lld %7lld\n",
                row.label.c_str(), sim::to_ms(row.result.completion_time),
                row.peak_vis, row.created_vis, row.pinned_peak / 1024.0,
                static_cast<long long>(row.evictions),
                static_cast<long long>(row.reconnects));
  }
  std::printf(
      "\npaper shape: the cap holds peak VIs (and pinned memory) at the\n"
      "budget while static pins the full N-1 mesh; the price is reconnect\n"
      "traffic and a completion-time overhead that stays modest because\n"
      "the instantaneous working set fits the budget.\n");
  return 0;
}
