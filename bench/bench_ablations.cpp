// Ablations for the design choices DESIGN.md calls out:
//  1. eager->rendezvous threshold sweep (the paper's own observation that
//     a threshold above 5000 bytes should help);
//  2. spin-count sweep between pure polling and pure blocking waits;
//  3. dynamic per-VI credit windows (the paper's stated future work)
//     versus the fixed 32-credit allocation: pinned memory vs time;
//  4. MPI_ANY_SOURCE's connect-to-all cost under on-demand management.
//
// All 34 Worlds are independent simulations, so they are submitted as one
// SweepRunner batch and executed across hardware threads; the tables are
// printed from the submission-ordered results afterwards. Measurements
// are virtual-time, so concurrency cannot perturb them (sweep_test.cpp
// holds thread-count invariance as a regression test).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/sweep.h"

using namespace odmpi;

namespace {

sim::SweepConfig pingpong_cfg(std::size_t bytes, std::size_t eager_threshold,
                              double* out_us) {
  sim::SweepConfig cfg;
  cfg.label = "pingpong/" + std::to_string(bytes) + "/thr" +
              std::to_string(eager_threshold);
  cfg.nranks = 2;
  cfg.options = bench::job_options(bench::static_polling(), false);
  cfg.options.device.eager_threshold = eager_threshold;
  cfg.body = [bytes, out_us](mpi::Comm& c) {
    std::vector<std::byte> buf(bytes);
    const auto round = [&] {
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, mpi::kByte, 1, 0);
        c.recv(buf.data(), bytes, mpi::kByte, 1, 0);
      } else {
        c.recv(buf.data(), bytes, mpi::kByte, 0, 0);
        c.send(buf.data(), bytes, mpi::kByte, 0, 0);
      }
    };
    for (int i = 0; i < 5; ++i) round();
    const double t0 = c.wtime();
    for (int i = 0; i < 50; ++i) round();
    if (c.rank() == 0) *out_us = (c.wtime() - t0) * 1e6 / 100.0;
  };
  return cfg;
}

sim::SweepConfig token_ring_cfg(int spin_count, double* out_us) {
  sim::SweepConfig cfg;
  cfg.label = spin_count < 0 ? "ring/polling"
                             : "ring/spin" + std::to_string(spin_count);
  cfg.nranks = 4;
  cfg.options.device.connection_model = mpi::ConnectionModel::kStaticPeerToPeer;
  cfg.options.device.wait_policy = spin_count < 0
                                       ? mpi::WaitPolicy::polling()
                                       : mpi::WaitPolicy::spinwait(spin_count);
  cfg.body = [out_us](mpi::Comm& c) {
    // Token ring with 60 us of compute per hop: waits regularly exceed
    // small spin windows.
    std::int32_t token = 0;
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    const double t0 = c.wtime();
    for (int lap = 0; lap < 20; ++lap) {
      if (c.rank() == 0) {
        sim::Process::current()->sleep(sim::microseconds(60));
        c.send(&token, 1, mpi::kInt32, right, 0);
        c.recv(&token, 1, mpi::kInt32, left, 0);
      } else {
        c.recv(&token, 1, mpi::kInt32, left, 0);
        sim::Process::current()->sleep(sim::microseconds(60));
        c.send(&token, 1, mpi::kInt32, right, 0);
      }
    }
    if (c.rank() == 0) *out_us = (c.wtime() - t0) * 1e6;
  };
  return cfg;
}

sim::SweepConfig credit_cfg(bool dynamic, double* out_secs) {
  sim::SweepConfig cfg;
  cfg.label = dynamic ? "credits/dynamic" : "credits/fixed";
  cfg.nranks = 16;
  cfg.options.device.connection_model = mpi::ConnectionModel::kOnDemand;
  cfg.options.device.dynamic_credits = dynamic;
  cfg.collect_reports = true;  // pinned_bytes_peak comes from the reports
  cfg.body = [out_secs](mpi::Comm& c) {
    // Skewed traffic: every rank floods one partner but only brushes the
    // others — the case where fixed windows waste pinned memory.
    const double t0 = c.wtime();
    std::vector<std::int32_t> payload(256, c.rank());
    const int hot = (c.rank() + 1) % c.size();
    const int hot_src = (c.rank() - 1 + c.size()) % c.size();
    for (int i = 0; i < 50; ++i) {
      c.sendrecv(payload.data(), 256, mpi::kInt32, hot, 0, payload.data(),
                 256, mpi::kInt32, hot_src, 0);
    }
    std::int32_t one = 1, sum = 0;
    c.allreduce(&one, &sum, 1, mpi::kInt32, mpi::Op::kSum);
    if (c.rank() == 0) *out_secs = c.wtime() - t0;
  };
  return cfg;
}

double pinned_mb(const sim::SweepItemResult& item) {
  double pinned = 0;
  for (const mpi::RankReport& r : item.reports) {
    pinned += static_cast<double>(r.pinned_bytes_peak);
  }
  return pinned / 1e6;
}

sim::SweepConfig anysource_cfg(bool wildcard, int nprocs, double* out_us) {
  sim::SweepConfig cfg;
  cfg.label = std::string(wildcard ? "anysource" : "named") + "/np" +
              std::to_string(nprocs);
  cfg.nranks = nprocs;
  cfg.options.device.connection_model = mpi::ConnectionModel::kOnDemand;
  cfg.body = [wildcard, out_us](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::int32_t v;
      const double t0 = c.wtime();
      c.recv(&v, 1, mpi::kInt32, wildcard ? mpi::kAnySource : 1, 0);
      *out_us = (c.wtime() - t0) * 1e6;
    } else if (c.rank() == 1) {
      std::int32_t v = 1;
      c.send(&v, 1, mpi::kInt32, 0, 0);
    }
    c.barrier();
  };
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);

  constexpr std::size_t kThresholds[] = {2048, 5000, 16384, 65536};
  constexpr std::size_t kSizes[] = {2048, 4096, 6144, 12288, 24576};
  constexpr int kSpins[] = {0, 10, 100, 1000, 10000, -1};
  constexpr int kNps[] = {4, 8, 16};

  // Result slots, written by the bodies (stable storage for the sweep).
  double a1[5][4];
  double a2[6];
  double credit_secs[2] = {-1, -1};  // [0]=fixed, [1]=dynamic
  double a4[3][2];                   // [np][named, wildcard]

  std::vector<sim::SweepConfig> configs;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a1[i][j] = -1;
      configs.push_back(pingpong_cfg(kSizes[i], kThresholds[j], &a1[i][j]));
    }
  }
  for (std::size_t i = 0; i < 6; ++i) {
    a2[i] = -1;
    configs.push_back(token_ring_cfg(kSpins[i], &a2[i]));
  }
  const std::size_t credit_fixed = configs.size();
  configs.push_back(credit_cfg(false, &credit_secs[0]));
  const std::size_t credit_dyn = configs.size();
  configs.push_back(credit_cfg(true, &credit_secs[1]));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      a4[i][j] = -1;
      configs.push_back(anysource_cfg(j == 1, kNps[i], &a4[i][j]));
    }
  }

  const sim::SweepReport rep = sim::SweepRunner::run_all(std::move(configs), 0);
  for (const sim::SweepItemResult& item : rep.items) {
    if (!item.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", item.label.c_str(),
                   item.error.c_str());
      return 1;
    }
  }

  bench::heading("Ablation 1 — eager->rendezvous threshold sweep (cLAN)");
  std::printf("%10s", "bytes");
  for (std::size_t t : kThresholds) std::printf("  thr=%-8zu", t);
  std::printf("   (one-way us)\n");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("%10zu", kSizes[i]);
    for (std::size_t j = 0; j < 4; ++j) std::printf("  %12.1f", a1[i][j]);
    std::printf("\n");
  }
  std::printf("paper's note confirmed: raising the threshold past 5000 B\n"
              "keeps mid-sized messages on the (cheaper) eager path.\n");

  bench::heading("Ablation 2 — spin count sweep (4-rank token ring, cLAN)");
  std::printf("%12s %14s\n", "spin count", "ring time (us)");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("%12d %14.1f\n", kSpins[i], a2[i]);
  }
  std::printf("%12s %14.1f\n", "polling", a2[5]);
  std::printf("a small spin budget pays the ~40 us kernel wake-up on every\n"
              "hop; a large one converges to pure polling.\n");

  bench::heading("Ablation 3 — dynamic credit windows (paper future work)");
  std::printf("%-14s %12s %14s\n", "mode", "time (s)", "pinned (MB)");
  std::printf("%-14s %12.4f %14.2f\n", "fixed-32", credit_secs[0],
              pinned_mb(rep.items[credit_fixed]));
  std::printf("%-14s %12.4f %14.2f\n", "dynamic", credit_secs[1],
              pinned_mb(rep.items[credit_dyn]));
  std::printf("dynamic windows trade a small warm-up cost for a large\n"
              "reduction in pinned memory on skewed traffic.\n");

  bench::heading("Ablation 4 — MPI_ANY_SOURCE connect-to-all cost");
  std::printf("%8s %18s %18s\n", "procs", "named recv (us)",
              "wildcard recv (us)");
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("%8d %18.1f %18.1f\n", kNps[i], a4[i][0], a4[i][1]);
  }
  std::printf("the wildcard's O(N) connection burst is a one-time cost per\n"
              "peer set (section 3.5's design).\n");
  return 0;
}
