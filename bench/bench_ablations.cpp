// Ablations for the design choices DESIGN.md calls out:
//  1. eager->rendezvous threshold sweep (the paper's own observation that
//     a threshold above 5000 bytes should help);
//  2. spin-count sweep between pure polling and pure blocking waits;
//  3. dynamic per-VI credit windows (the paper's stated future work)
//     versus the fixed 32-credit allocation: pinned memory vs time;
//  4. MPI_ANY_SOURCE's connect-to-all cost under on-demand management.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

double pingpong_us_at(std::size_t bytes, std::size_t eager_threshold) {
  mpi::JobOptions opt = bench::job_options(bench::static_polling(), false);
  opt.device.eager_threshold = eager_threshold;
  double result = -1;
  mpi::World world(2, opt);
  world.run([&](mpi::Comm& c) {
    std::vector<std::byte> buf(bytes);
    const auto round = [&] {
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, mpi::kByte, 1, 0);
        c.recv(buf.data(), bytes, mpi::kByte, 1, 0);
      } else {
        c.recv(buf.data(), bytes, mpi::kByte, 0, 0);
        c.send(buf.data(), bytes, mpi::kByte, 0, 0);
      }
    };
    for (int i = 0; i < 5; ++i) round();
    const double t0 = c.wtime();
    for (int i = 0; i < 50; ++i) round();
    if (c.rank() == 0) result = (c.wtime() - t0) * 1e6 / 100.0;
  });
  return result;
}

double token_ring_us(int spin_count) {
  mpi::JobOptions opt;
  opt.device.connection_model = mpi::ConnectionModel::kStaticPeerToPeer;
  opt.device.wait_policy = spin_count < 0 ? mpi::WaitPolicy::polling()
                                          : mpi::WaitPolicy::spinwait(spin_count);
  double result = -1;
  mpi::World world(4, opt);
  world.run([&](mpi::Comm& c) {
    // Token ring with 60 us of compute per hop: waits regularly exceed
    // small spin windows.
    std::int32_t token = 0;
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    const double t0 = c.wtime();
    for (int lap = 0; lap < 20; ++lap) {
      if (c.rank() == 0) {
        sim::Process::current()->sleep(sim::microseconds(60));
        c.send(&token, 1, mpi::kInt32, right, 0);
        c.recv(&token, 1, mpi::kInt32, left, 0);
      } else {
        c.recv(&token, 1, mpi::kInt32, left, 0);
        sim::Process::current()->sleep(sim::microseconds(60));
        c.send(&token, 1, mpi::kInt32, right, 0);
      }
    }
    if (c.rank() == 0) result = (c.wtime() - t0) * 1e6;
  });
  return result;
}

struct CreditResult {
  double seconds;
  double pinned_mb;
};

CreditResult credit_run(bool dynamic) {
  mpi::JobOptions opt;
  opt.device.connection_model = mpi::ConnectionModel::kOnDemand;
  opt.device.dynamic_credits = dynamic;
  mpi::World world(16, opt);
  double secs = -1;
  world.run([&](mpi::Comm& c) {
    // Skewed traffic: every rank floods one partner but only brushes the
    // others — the case where fixed windows waste pinned memory.
    const double t0 = c.wtime();
    std::vector<std::int32_t> payload(256, c.rank());
    const int hot = (c.rank() + 1) % c.size();
    const int hot_src = (c.rank() - 1 + c.size()) % c.size();
    for (int i = 0; i < 50; ++i) {
      c.sendrecv(payload.data(), 256, mpi::kInt32, hot, 0, payload.data(),
                 256, mpi::kInt32, hot_src, 0);
    }
    std::int32_t one = 1, sum = 0;
    c.allreduce(&one, &sum, 1, mpi::kInt32, mpi::Op::kSum);
    if (c.rank() == 0) secs = c.wtime() - t0;
  });
  double pinned = 0;
  for (int r = 0; r < world.size(); ++r) {
    pinned += static_cast<double>(world.report(r).pinned_bytes_peak);
  }
  return {secs, pinned / 1e6};
}

double anysource_first_recv_us(bool wildcard, int nprocs) {
  mpi::JobOptions opt;
  opt.device.connection_model = mpi::ConnectionModel::kOnDemand;
  double result = -1;
  mpi::World world(nprocs, opt);
  world.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::int32_t v;
      const double t0 = c.wtime();
      c.recv(&v, 1, mpi::kInt32, wildcard ? mpi::kAnySource : 1, 0);
      result = (c.wtime() - t0) * 1e6;
    } else if (c.rank() == 1) {
      std::int32_t v = 1;
      c.send(&v, 1, mpi::kInt32, 0, 0);
    }
    c.barrier();
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading("Ablation 1 — eager->rendezvous threshold sweep (cLAN)");
  std::printf("%10s", "bytes");
  const std::size_t thresholds[] = {2048, 5000, 16384, 65536};
  for (std::size_t t : thresholds) std::printf("  thr=%-8zu", t);
  std::printf("   (one-way us)\n");
  for (std::size_t bytes : {2048u, 4096u, 6144u, 12288u, 24576u}) {
    std::printf("%10zu", bytes);
    for (std::size_t t : thresholds) {
      std::printf("  %12.1f", pingpong_us_at(bytes, t));
    }
    std::printf("\n");
  }
  std::printf("paper's note confirmed: raising the threshold past 5000 B\n"
              "keeps mid-sized messages on the (cheaper) eager path.\n");

  bench::heading("Ablation 2 — spin count sweep (4-rank token ring, cLAN)");
  std::printf("%12s %14s\n", "spin count", "ring time (us)");
  for (int sc : {0, 10, 100, 1000, 10000}) {
    std::printf("%12d %14.1f\n", sc, token_ring_us(sc));
  }
  std::printf("%12s %14.1f\n", "polling", token_ring_us(-1));
  std::printf("a small spin budget pays the ~40 us kernel wake-up on every\n"
              "hop; a large one converges to pure polling.\n");

  bench::heading("Ablation 3 — dynamic credit windows (paper future work)");
  const CreditResult fixed = credit_run(false);
  const CreditResult dyn = credit_run(true);
  std::printf("%-14s %12s %14s\n", "mode", "time (s)", "pinned (MB)");
  std::printf("%-14s %12.4f %14.2f\n", "fixed-32", fixed.seconds,
              fixed.pinned_mb);
  std::printf("%-14s %12.4f %14.2f\n", "dynamic", dyn.seconds, dyn.pinned_mb);
  std::printf("dynamic windows trade a small warm-up cost for a large\n"
              "reduction in pinned memory on skewed traffic.\n");

  bench::heading("Ablation 4 — MPI_ANY_SOURCE connect-to-all cost");
  std::printf("%8s %18s %18s\n", "procs", "named recv (us)",
              "wildcard recv (us)");
  for (int np : {4, 8, 16}) {
    std::printf("%8d %18.1f %18.1f\n", np,
                anysource_first_recv_us(false, np),
                anysource_first_recv_us(true, np));
  }
  std::printf("the wildcard's O(N) connection burst is a one-time cost per\n"
              "peer set (section 3.5's design).\n");
  return 0;
}
