// Sweep-runner throughput: Worlds/second for a fixed batch of fault-
// matrix configurations as the worker-thread count scales 1 -> 16.
//
// The batch mirrors the CI fault matrix (8-rank on-demand Worlds under
// lossy control/data packets, one seed per World). Every World is an
// independent single-threaded simulation, so the ideal curve is linear
// up to the physical core count; the printed speedup column is the
// ISSUE's acceptance metric (>= 4x at 8 threads on an 8-core runner).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/sweep.h"

using namespace odmpi;

namespace {

// One fault-matrix cell: neighbor exchange + wildcard-free collectives at
// 8 ranks with lossy control and data packets (the CI battery's shape).
void workload(mpi::Comm& c) {
  const int np = c.size();
  const int r = c.rank();
  for (int lap = 0; lap < 8; ++lap) {
    std::int32_t v = r + lap;
    std::int32_t in = -1;
    c.sendrecv(&v, 1, mpi::kInt32, (r + 1) % np, lap, &in, 1, mpi::kInt32,
               (r + np - 1) % np, lap);
    double acc = 0;
    const double mine = r + 1.0;
    c.allreduce(&mine, &acc, 1, mpi::kDouble, mpi::Op::kSum);
  }
  c.barrier();
}

std::vector<sim::SweepConfig> batch(int count) {
  std::vector<sim::SweepConfig> configs;
  configs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    sim::SweepConfig cfg;
    cfg.label = "fault/s" + std::to_string(i);
    cfg.nranks = 8;
    cfg.options.device.connection_model = mpi::ConnectionModel::kOnDemand;
    cfg.options.seed = static_cast<std::uint64_t>(i) + 1;
    cfg.options.fault.enabled = true;
    cfg.options.fault.seed = static_cast<std::uint64_t>(i) * 7919 + 1;
    cfg.options.fault.control_drop_rate = 0.02;
    cfg.options.fault.data_drop_rate = 0.01;
    cfg.body = workload;
    configs.push_back(std::move(cfg));
  }
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const int nworlds = bench::quick_mode() ? 16 : 64;

  bench::heading("Sweep throughput — " + std::to_string(nworlds) +
                 " fault-matrix Worlds (8 ranks, lossy) vs thread count");

  // Warm the per-thread arena and page in the code before timing.
  (void)sim::SweepRunner::run_all(batch(4), 1);

  double base_secs = 0;
  std::printf("%8s %12s %12s %9s\n", "threads", "wall (s)", "Worlds/s",
              "speedup");
  for (int threads : {1, 2, 4, 8, 16}) {
    const auto t0 = std::chrono::steady_clock::now();
    const sim::SweepReport rep = sim::SweepRunner::run_all(batch(nworlds),
                                                           threads);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep.ok != nworlds) {
      std::fprintf(stderr, "threads=%d: only %d/%d Worlds completed ok\n",
                   threads, rep.ok, nworlds);
      return 1;
    }
    if (threads == 1) base_secs = secs;
    std::printf("%8d %12.3f %12.1f %8.2fx\n", threads, secs, nworlds / secs,
                base_secs / secs);
  }
  std::printf("\nWorlds are independent single-threaded simulations: the\n"
              "curve should track physical cores until the machine runs out\n"
              "of them, with per-thread arena reuse keeping allocation off\n"
              "the shared heap.\n");
  return 0;
}
