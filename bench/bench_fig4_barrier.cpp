// Figure 4: MPI_Barrier latency vs number of processes (the paper's
// methodology: 1000 barriers per process, averaged, then averaged across
// processes). The punchlines:
//  * cLAN: on-demand == static-polling; static-spinwait blows up because
//    barrier rounds regularly outlast the spin window and every kernel
//    wake-up compounds along the dissemination chain;
//  * BVIA: on-demand beats static outright because it opens only log2(N)
//    VIs, and BVIA's per-message cost grows with open VIs (Figure 1);
//  * non-power-of-two sizes fluctuate (extra fold/unfold steps).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

double barrier_us(const bench::Config& cfg, bool bvia, int nprocs) {
  mpi::JobOptions opt = bench::job_options(cfg, bvia);
  const int iters = bench::quick_mode() ? 100 : 1000;
  double result = -1;
  mpi::World world(nprocs, opt);
  if (!world.run_job([&](mpi::Comm& c) {
        for (int i = 0; i < 10; ++i) c.barrier();  // warmup + connect
        const double t0 = c.wtime();
        for (int i = 0; i < iters; ++i) c.barrier();
        double mine = (c.wtime() - t0) * 1e6 / iters;
        double sum = 0;  // gather the average across processes
        c.allreduce(&mine, &sum, 1, mpi::kDouble, mpi::Op::kSum);
        if (c.rank() == 0) result = sum / c.size();
      })) {
    return -1;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::heading("Figure 4 — MPI_Barrier latency vs number of processes");
  const std::vector<int> sizes = bench::quick_mode()
                                     ? std::vector<int>{4, 8, 16}
                                     : std::vector<int>{2, 3, 4, 5, 6, 7, 8,
                                                        10, 12, 14, 16};
  for (bool bvia : {false, true}) {
    const auto configs = bvia ? bench::bvia_configs() : bench::clan_configs();
    const std::vector<int>& np_list = sizes;
    std::printf("\n%s barrier latency (us):\n%8s",
                bvia ? "Berkeley VIA" : "cLAN", "procs");
    for (const auto& c : configs) std::printf("  %16s", c.label.c_str());
    std::printf("\n");
    for (int np : np_list) {
      if (bvia && np > 8) continue;  // the paper caps BVIA at 8 nodes
      std::printf("%8d", np);
      for (const auto& c : configs) {
        std::printf("  %16.1f", barrier_us(c, bvia, np));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper shape: on cLAN, on-demand tracks static-polling while\n"
      "static-spinwait is far worse; on BVIA, on-demand is faster than\n"
      "static (e.g. ~161 vs ~196 us at 8 nodes in the paper) because it\n"
      "holds 3 VIs instead of 7.\n");
  return 0;
}
