// Raw simulator performance (google-benchmark, wall-clock): event loop
// throughput, fiber context switches, message matching, progress-pass
// scaling, and end-to-end simulated messages per second — the numbers
// that bound how large a virtual cluster the reproduction can handle.
//
// CI runs this with --benchmark_format=json and checks the results
// against the coarse floors committed in BENCH_simcore.json (see the
// perf-smoke job and scripts/check_bench_floor.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "src/mpi/matching.h"
#include "src/odmpi.h"

using namespace odmpi;

namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(i, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

// Timer-heavy workloads (reliable-delivery retransmit timers) schedule
// many events that are almost always cancelled before firing.
void BM_EngineScheduleCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int n = static_cast<int>(state.range(0));
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      ids.push_back(engine.schedule_at(i, [&fired] { ++fired; }));
    }
    for (int i = 0; i < n; i += 2) {
      engine.cancel(ids[static_cast<std::size_t>(i)]);
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScheduleCancel)->Arg(100000);

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber fiber([] {
    for (;;) sim::Fiber::yield_to_scheduler();
  });
  for (auto _ : state) {
    fiber.resume();
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two switches per resume
}
BENCHMARK(BM_FiberSwitch);

mpi::RequestPtr make_recv(mpi::ContextId ctx, mpi::Rank src, mpi::Tag tag) {
  auto req = std::make_shared<mpi::RequestState>();
  req->kind = mpi::ReqKind::kRecv;
  req->context = ctx;
  req->src = src;
  req->tag = tag;
  return req;
}

// Exact-match arrival against a posted queue populated by `depth` other
// sources: the common shape of a many-peer server rank. The linear
// engine paid O(depth) per match; the bucketed engine is O(1).
void BM_MatchPostedExact(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  mpi::MatchingEngine eng;
  for (int s = 0; s < depth; ++s) {
    eng.add_posted(make_recv(7, s, s));
  }
  // Always match the source whose receive sits behind depth-1 others:
  // the linear scan pays O(depth), a bucketed lookup O(1).
  const mpi::Rank hot = depth - 1;
  for (auto _ : state) {
    mpi::RequestPtr r = eng.match_arrival(7, hot, hot);
    benchmark::DoNotOptimize(r);
    eng.add_posted(std::move(r));  // steady state: refill the same recv
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchPostedExact)->Arg(4)->Arg(64);

// Probe for one source against an unexpected queue filled by `depth`
// other sources (the paper's unexpected-message pile-up shape).
void BM_MatchUnexpectedProbe(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  mpi::MatchingEngine eng;
  for (int s = 0; s < depth; ++s) {
    auto msg = std::make_unique<mpi::UnexpectedMsg>();
    msg->src = s;
    msg->tag = s;
    msg->context = 7;
    msg->total_bytes = 8;
    msg->arrived_bytes = 8;
    eng.add_unexpected(std::move(msg));
  }
  const mpi::Rank hot = depth - 1;
  for (auto _ : state) {
    mpi::UnexpectedMsg* m = eng.peek_unexpected(7, hot, hot);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchUnexpectedProbe)->Arg(4)->Arg(64);

// Progress-pass cost with N-1 open but idle channels (full static mesh,
// nothing in flight). The software analogue of the paper's Figure 1
// question: per-pass cost must not grow with the number of idle VIs.
// Manual timing: only rank 0's progress loop is measured; world setup
// and the static-mesh bootstrap are excluded.
void BM_ProgressPassIdleChannels(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  constexpr int kPasses = 100000;
  for (auto _ : state) {
    mpi::JobOptions opt;
    opt.device.connection_model = mpi::ConnectionModel::kStaticPeerToPeer;
    mpi::World world(nranks, opt);
    double secs = 0;
    (void)world.run_job([&](mpi::Comm& c) {
      if (c.rank() != 0) return;
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kPasses; ++i) c.device().progress();
      secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
    });
    state.SetIterationTime(secs);
  }
  state.SetItemsProcessed(state.iterations() * kPasses);
}
// Fixed iteration counts: the measured region is tiny next to world
// setup, so adaptive iteration search would re-build the 64-rank mesh
// thousands of times chasing its min_time target.
BENCHMARK(BM_ProgressPassIdleChannels)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(3)
    ->UseManualTime();

// Two neighbors exchanging messages while the other N-2 ranks hold open
// idle connections: simulated-message throughput must stay flat in N.
void BM_ProgressScalingActivePair(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  constexpr int kRounds = 2000;
  for (auto _ : state) {
    mpi::JobOptions opt;
    opt.device.connection_model = mpi::ConnectionModel::kStaticPeerToPeer;
    mpi::World world(nranks, opt);
    double secs = 0;
    (void)world.run_job([&](mpi::Comm& c) {
      std::int32_t v = 0;
      if (c.rank() == 0) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kRounds; ++i) {
          c.send(&v, 1, mpi::kInt32, 1, 0);
          c.recv(&v, 1, mpi::kInt32, 1, 0);
        }
        secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      } else if (c.rank() == 1) {
        for (int i = 0; i < kRounds; ++i) {
          c.recv(&v, 1, mpi::kInt32, 0, 0);
          c.send(&v, 1, mpi::kInt32, 0, 0);
        }
      }
    });
    state.SetIterationTime(secs);
  }
  state.SetItemsProcessed(state.iterations() * 2 * kRounds);
}
BENCHMARK(BM_ProgressScalingActivePair)
    ->Arg(2)
    ->Arg(64)
    ->Iterations(3)
    ->UseManualTime();

void BM_SimulatedPingPong(benchmark::State& state) {
  for (auto _ : state) {
    mpi::JobOptions opt;
    opt.device.connection_model = mpi::ConnectionModel::kOnDemand;
    mpi::World world(2, opt);
    (void)world.run_job([](mpi::Comm& c) {
      std::int32_t v = 0;
      for (int i = 0; i < 100; ++i) {
        if (c.rank() == 0) {
          c.send(&v, 1, mpi::kInt32, 1, 0);
          c.recv(&v, 1, mpi::kInt32, 1, 0);
        } else {
          c.recv(&v, 1, mpi::kInt32, 0, 0);
          c.send(&v, 1, mpi::kInt32, 0, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 200);  // messages simulated
}
BENCHMARK(BM_SimulatedPingPong);

void BM_SimulatedAllreduce32(benchmark::State& state) {
  for (auto _ : state) {
    mpi::JobOptions opt;
    opt.device.connection_model = mpi::ConnectionModel::kOnDemand;
    mpi::World world(32, opt);
    (void)world.run_job([](mpi::Comm& c) {
      double v = c.rank(), s = 0;
      for (int i = 0; i < 20; ++i) {
        c.allreduce(&v, &s, 1, mpi::kDouble, mpi::Op::kSum);
      }
    });
  }
  // 20 allreduces across 32 ranks per iteration, to match the baseline
  // record's unit (rank-operations per second).
  state.SetItemsProcessed(state.iterations() * 20 * 32);
}
BENCHMARK(BM_SimulatedAllreduce32);

}  // namespace

BENCHMARK_MAIN();
