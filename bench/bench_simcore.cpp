// Raw simulator performance (google-benchmark, wall-clock): event loop
// throughput, fiber context switches, and end-to-end simulated messages
// per second — the numbers that bound how large a virtual cluster the
// reproduction can handle.
#include <benchmark/benchmark.h>

#include "src/odmpi.h"

using namespace odmpi;

namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(i, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber fiber([] {
    for (;;) sim::Fiber::yield_to_scheduler();
  });
  for (auto _ : state) {
    fiber.resume();
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two switches per resume
}
BENCHMARK(BM_FiberSwitch);

void BM_SimulatedPingPong(benchmark::State& state) {
  for (auto _ : state) {
    mpi::JobOptions opt;
    opt.device.connection_model = mpi::ConnectionModel::kOnDemand;
    mpi::World world(2, opt);
    world.run([](mpi::Comm& c) {
      std::int32_t v = 0;
      for (int i = 0; i < 100; ++i) {
        if (c.rank() == 0) {
          c.send(&v, 1, mpi::kInt32, 1, 0);
          c.recv(&v, 1, mpi::kInt32, 1, 0);
        } else {
          c.recv(&v, 1, mpi::kInt32, 0, 0);
          c.send(&v, 1, mpi::kInt32, 0, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 200);  // messages simulated
}
BENCHMARK(BM_SimulatedPingPong);

void BM_SimulatedAllreduce32(benchmark::State& state) {
  for (auto _ : state) {
    mpi::JobOptions opt;
    opt.device.connection_model = mpi::ConnectionModel::kOnDemand;
    mpi::World world(32, opt);
    world.run([](mpi::Comm& c) {
      double v = c.rank(), s = 0;
      for (int i = 0; i < 20; ++i) {
        c.allreduce(&v, &s, 1, mpi::kDouble, mpi::Op::kSum);
      }
    });
  }
}
BENCHMARK(BM_SimulatedAllreduce32);

}  // namespace

BENCHMARK_MAIN();
