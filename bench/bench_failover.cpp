// Failover latency under rank-death injection: how long after a kill
// does every survivor *know*, and how much completion time does the
// degradation cost? Charted against the DeviceProfile timeout constants
// that bound detection analytically (DESIGN.md section 12):
//
//   * conn_retry_budget()  — handshake / liveness-probe exhaustion,
//   * RD exhaustion        — sum of doubling retransmit timeouts,
//   * watchdog interval    — 20 x conn_timeout between probe sweeps.
//
// One rank is killed mid-run; each survivor's detection instant is the
// device gauge mpi.peer_failed_last_ns (single kill => last == first).
// Columns: kill time, min/mean/max detection latency across survivors,
// completion overhead vs the kill-free baseline, watchdog probes sent.
//
// With --trace=<file> every measured run records all lanes, so CI can
// feed the killed-run traces to scripts/check_trace.py --check-failures.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace odmpi;

namespace {

constexpr int kVictim = 3;

// Rotating neighbor exchange: every survivor eventually needs the
// victim as a partner, so detection is on the critical path for all of
// them — the worst case for failure propagation.
void exchange_body(mpi::Comm& c, int passes, int bytes) {
  std::vector<char> out(static_cast<std::size_t>(bytes), 'f');
  std::vector<char> in(static_cast<std::size_t>(bytes));
  for (int pass = 0; pass < passes; ++pass) {
    for (int stride = 1; stride < c.size(); ++stride) {
      const int right = (c.rank() + stride) % c.size();
      const int left = (c.rank() - stride + c.size()) % c.size();
      c.sendrecv(out.data(), bytes, mpi::kByte, right, stride, in.data(),
                 bytes, mpi::kByte, left, stride);
    }
  }
}

mpi::JobOptions make_options(bool bvia, mpi::ConnectionModel model) {
  mpi::JobOptions opt;
  opt.profile = bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan();
  opt.device.connection_model = model;
  opt.deadline = sim::seconds(600);
  return opt;
}

struct Row {
  std::string label;
  sim::SimTime baseline = 0;
  sim::SimTime kill_time = 0;
  mpi::RunResult result;
  sim::SimTime detect_min = 0;
  sim::SimTime detect_mean = 0;
  sim::SimTime detect_max = 0;
  std::int64_t probes = 0;
};

Row run_config(const std::string& label, bool bvia,
               mpi::ConnectionModel model, int nprocs, int passes,
               int bytes) {
  Row row;
  row.label = label;
  {
    mpi::World world(nprocs, make_options(bvia, model));
    mpi::RunResult base =
        world.run_job([&](mpi::Comm& c) { exchange_body(c, passes, bytes); });
    if (!base.ok()) {
      row.result = std::move(base);
      return row;
    }
    row.baseline = base.completion_time;
  }

  row.kill_time = row.baseline * 2 / 5;  // mid-run, well before finalize
  mpi::JobOptions opt = make_options(bvia, model);
  opt.fault.kill_rank(kVictim, row.kill_time);
  opt.trace = bench::next_trace_config();
  mpi::World world(nprocs, opt);
  row.result =
      world.run_job([&](mpi::Comm& c) { exchange_body(c, passes, bytes); });
  if (row.result.status != mpi::RunStatus::kRankFailed) return row;

  std::int64_t sum = 0;
  int n = 0;
  for (int r = 0; r < nprocs; ++r) {
    if (r == kVictim) continue;
    const mpi::RankReport& rep = world.report(r);
    row.probes += rep.device_stats.get("mpi.watchdog_probes");
    const std::int64_t at = rep.device_stats.get("mpi.peer_failed_last_ns");
    if (at == 0) continue;  // finished before it ever needed the victim
    const sim::SimTime latency = static_cast<sim::SimTime>(at) - row.kill_time;
    if (n == 0 || latency < row.detect_min) row.detect_min = latency;
    if (latency > row.detect_max) row.detect_max = latency;
    sum += latency;
    ++n;
  }
  if (n > 0) row.detect_mean = static_cast<sim::SimTime>(sum / n);
  return row;
}

void print_bounds(const via::DeviceProfile& p) {
  const sim::SimTime rd =
      p.retransmit_timeout * ((sim::SimTime{1} << (p.max_retransmits + 1)) - 1);
  std::printf(
      "%-6s conn_retry_budget=%.3f ms  rd_exhaustion=%.3f ms  "
      "watchdog_interval=%.3f ms\n",
      p.name.c_str(), sim::to_ms(p.conn_retry_budget()), sim::to_ms(rd),
      sim::to_ms(20 * p.conn_timeout));
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bool quick = bench::quick_mode();
  const int nprocs = 8;
  const int passes = quick ? 24 : 96;
  const int bytes = 4096;

  bench::heading("Failover: detection latency after a rank kill (" +
                 std::to_string(nprocs) + " procs, victim rank " +
                 std::to_string(kVictim) + ")");
  std::printf("analytic detection bounds per profile:\n");
  print_bounds(via::DeviceProfile::clan());
  print_bounds(via::DeviceProfile::bvia());

  struct Case {
    const char* label;
    bool bvia;
    mpi::ConnectionModel model;
  };
  const std::vector<Case> cases = {
      {"clan/on-demand", false, mpi::ConnectionModel::kOnDemand},
      {"clan/static-p2p", false, mpi::ConnectionModel::kStaticPeerToPeer},
      {"bvia/on-demand", true, mpi::ConnectionModel::kOnDemand},
      {"bvia/static-p2p", true, mpi::ConnectionModel::kStaticPeerToPeer},
  };

  std::printf("\n%-18s %9s %11s %11s %11s %10s %7s\n", "config", "kill-ms",
              "det-min-ms", "det-mean-ms", "det-max-ms", "overhd-ms",
              "probes");
  for (const Case& c : cases) {
    Row row = run_config(c.label, c.bvia, c.model, nprocs, passes, bytes);
    if (row.result.status != mpi::RunStatus::kRankFailed) {
      std::printf("%-18s %s\n", row.label.c_str(),
                  row.result.summary().c_str());
      continue;
    }
    std::printf("%-18s %9.3f %11.3f %11.3f %11.3f %10.3f %7lld\n",
                row.label.c_str(), sim::to_ms(row.kill_time),
                sim::to_ms(row.detect_min), sim::to_ms(row.detect_mean),
                sim::to_ms(row.detect_max),
                sim::to_ms(row.result.completion_time - row.baseline),
                static_cast<long long>(row.probes));
  }
  std::printf(
      "\nshape: detection tracks conn_retry_budget (liveness-probe\n"
      "exhaustion, plus a small per-retry congestion allowance) — the\n"
      "watchdog fires well before RD exhaustion would. Gossip collapses\n"
      "the survivor spread (max - min) to a few wire hops once the first\n"
      "survivor knows. The completion overhead is the degradation cost:\n"
      "bounded by detection latency, not by the remaining work.\n");
  return 0;
}
