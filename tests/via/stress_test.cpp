// VIA-layer stress and timing-model tests: egress bandwidth serialization
// under fan-in, completion-queue ordering under load, many-VI lifecycles,
// and descriptor reuse.
#include <gtest/gtest.h>

#include <vector>

#include "src/via/nic.h"
#include "src/via/provider.h"
#include "src/via/vi.h"
#include "tests/via/via_test_util.h"

namespace odmpi::via {
namespace {

using testing::MiniCluster;
using testing::PinnedBuffer;

void await_connected(Vi* vi) {
  auto* p = sim::Process::current();
  while (vi->state() != ViState::kConnected) {
    p->advance(sim::nanoseconds(100));
    p->yield();
  }
}

Vi* connect_to(MiniCluster& mc, NodeId a, NodeId b, Discriminator disc,
               CompletionQueue* scq = nullptr,
               CompletionQueue* rcq = nullptr) {
  Vi* va = mc.nic(a).create_vi(scq, nullptr);
  Vi* vb = mc.nic(b).create_vi(nullptr, rcq);
  mc.nic(a).connections().connect_peer(*va, b, disc);
  mc.nic(b).connections().connect_peer(*vb, a, disc);
  await_connected(va);
  await_connected(vb);
  return va;
}

TEST(ViaStress, FanInSaturatesReceiverWhileSendersShareNothing) {
  // Four senders stream to one receiver: each sender's egress link is
  // independent, so all streams arrive in parallel; the total virtual
  // time is set by one sender's serialization, not four.
  MiniCluster mc(5, DeviceProfile::clan());
  constexpr int kMsgs = 16;
  constexpr std::size_t kBytes = 8192;
  mc.spawn(0, [&] {
    auto* p = sim::Process::current();
    std::vector<Vi*> send_vis;
    std::vector<Vi*> recv_vis;
    for (int s = 1; s <= 4; ++s) {
      Vi* va = mc.nic(s).create_vi(nullptr, nullptr);
      Vi* vb = mc.nic(0).create_vi(nullptr, nullptr);
      mc.nic(s).connections().connect_peer(*va, 0, 10u + s);
      mc.nic(0).connections().connect_peer(*vb, s, 10u + s);
      await_connected(va);
      await_connected(vb);
      send_vis.push_back(va);
      recv_vis.push_back(vb);
    }
    std::vector<std::unique_ptr<PinnedBuffer>> srcs, dsts;
    std::vector<std::vector<Descriptor>> recvs(4), sends(4);
    for (int s = 0; s < 4; ++s) {
      srcs.push_back(std::make_unique<PinnedBuffer>(mc.nic(s + 1), kBytes));
      dsts.push_back(
          std::make_unique<PinnedBuffer>(mc.nic(0), kBytes * kMsgs));
      recvs[static_cast<std::size_t>(s)].resize(kMsgs);
      sends[static_cast<std::size_t>(s)].resize(kMsgs);
      for (int i = 0; i < kMsgs; ++i) {
        auto& r = recvs[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)];
        r.addr = dsts.back()->data() + static_cast<std::size_t>(i) * kBytes;
        r.length = kBytes;
        r.mem_handle = dsts.back()->handle;
        ASSERT_EQ(recv_vis[static_cast<std::size_t>(s)]->post_recv(&r),
                  Status::kSuccess);
      }
    }
    const sim::SimTime t0 = p->now();
    for (int i = 0; i < kMsgs; ++i) {
      for (int s = 0; s < 4; ++s) {
        auto& d = sends[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)];
        d.addr = srcs[static_cast<std::size_t>(s)]->data();
        d.length = kBytes;
        d.mem_handle = srcs[static_cast<std::size_t>(s)]->handle;
        ASSERT_EQ(send_vis[static_cast<std::size_t>(s)]->post_send(&d),
                  Status::kSuccess);
      }
    }
    // Wait for every receive.
    for (auto& v : recvs) {
      for (auto& r : v) {
        while (!r.done) {
          p->advance(sim::nanoseconds(200));
          p->yield();
        }
        ASSERT_EQ(r.status, Status::kSuccess);
      }
    }
    const double elapsed_us = sim::to_us(p->now() - t0);
    // One sender alone needs kMsgs * kBytes / bandwidth ~ 16*8KB*8.9ns
    // ~ 1.17 ms; four parallel senders must NOT quadruple that.
    const double one_stream_us =
        kMsgs * (kBytes + 32) * DeviceProfile::clan().per_byte_ns / 1000.0;
    EXPECT_GT(elapsed_us, one_stream_us * 0.9);
    EXPECT_LT(elapsed_us, one_stream_us * 2.0)
        << "independent egress links appear serialized";
  });
  ASSERT_TRUE(mc.run());
}

TEST(ViaStress, CompletionOrderMatchesArrivalOrderAcrossVis) {
  MiniCluster mc(3, DeviceProfile::clan());
  mc.spawn(0, [&] {
    auto* p = sim::Process::current();
    CompletionQueue* rcq = mc.nic(0).create_cq();
    // Two senders on different nodes, one shared recv CQ.
    Vi* from1;
    Vi* to1;
    Vi* from2;
    Vi* to2;
    {
      Vi* va = mc.nic(1).create_vi(nullptr, nullptr);
      Vi* vb = mc.nic(0).create_vi(nullptr, rcq);
      mc.nic(1).connections().connect_peer(*va, 0, 1);
      mc.nic(0).connections().connect_peer(*vb, 1, 1);
      await_connected(va);
      await_connected(vb);
      from1 = va;
      to1 = vb;
    }
    {
      Vi* va = mc.nic(2).create_vi(nullptr, nullptr);
      Vi* vb = mc.nic(0).create_vi(nullptr, rcq);
      mc.nic(2).connections().connect_peer(*va, 0, 2);
      mc.nic(0).connections().connect_peer(*vb, 2, 2);
      await_connected(va);
      await_connected(vb);
      from2 = va;
      to2 = vb;
    }
    PinnedBuffer small(mc.nic(2), 16), big(mc.nic(1), 32768);
    PinnedBuffer dst(mc.nic(0), 65536);
    Descriptor r1, r2;
    r1.addr = dst.data();
    r1.length = 32768;
    r1.mem_handle = dst.handle;
    r2.addr = dst.data() + 32768;
    r2.length = 16;
    r2.mem_handle = dst.handle;
    to1->post_recv(&r1);
    to2->post_recv(&r2);

    // The big message is posted first but takes far longer on the wire;
    // the small one must complete first on the shared CQ.
    Descriptor s1, s2;
    s1.addr = big.data();
    s1.length = 32768;
    s1.mem_handle = big.handle;
    s2.addr = small.data();
    s2.length = 16;
    s2.mem_handle = small.handle;
    from1->post_send(&s1);
    from2->post_send(&s2);
    Completion first = rcq->wait();
    Completion second = rcq->wait();
    EXPECT_EQ(first.descriptor, &r2) << "small message should arrive first";
    EXPECT_EQ(second.descriptor, &r1);
    (void)p;
  });
  ASSERT_TRUE(mc.run());
}

TEST(ViaStress, ManyViLifecyclesReuseIdsSafely) {
  MiniCluster mc(2, DeviceProfile::clan());
  mc.spawn(0, [&] {
    for (int round = 0; round < 10; ++round) {
      Vi* a = mc.nic(0).create_vi(nullptr, nullptr);
      Vi* b = mc.nic(1).create_vi(nullptr, nullptr);
      mc.nic(0).connections().connect_peer(*a, 1, 100u + round);
      mc.nic(1).connections().connect_peer(*b, 0, 100u + round);
      await_connected(a);
      await_connected(b);
      a->disconnect();
      // Let the disconnect propagate before destroying the far side.
      sim::Process::current()->sleep(sim::microseconds(200));
      mc.nic(0).destroy_vi(a);
      mc.nic(1).destroy_vi(b);
    }
    EXPECT_EQ(mc.nic(0).open_vi_count(), 0);
    EXPECT_EQ(mc.nic(0).vis_ever_created(), 10);
    EXPECT_EQ(mc.nic(0).connections().connections_established(), 10u);
  });
  ASSERT_TRUE(mc.run());
}

TEST(ViaStress, DescriptorRepostAfterCompletion) {
  MiniCluster mc(2, DeviceProfile::clan());
  mc.spawn(0, [&] {
    auto* p = sim::Process::current();
    Vi* a = connect_to(mc, 0, 1, 5);
    Vi* b = mc.nic(1).find_vi(0);
    PinnedBuffer src(mc.nic(0), 64), dst(mc.nic(1), 64);
    Descriptor recv, send;
    for (int i = 0; i < 20; ++i) {
      recv.reset_for_repost();
      recv.addr = dst.data();
      recv.length = 64;
      recv.mem_handle = dst.handle;
      ASSERT_EQ(b->post_recv(&recv), Status::kSuccess);
      send.reset_for_repost();
      send.op = DescOp::kSend;
      send.addr = src.data();
      send.length = 64;
      send.mem_handle = src.handle;
      ASSERT_EQ(a->post_send(&send), Status::kSuccess);
      while (!recv.done || !send.done) {
        p->advance(sim::nanoseconds(100));
        p->yield();
      }
      ASSERT_EQ(recv.status, Status::kSuccess);
      ASSERT_EQ(send.status, Status::kSuccess);
    }
    EXPECT_EQ(b->drops(), 0u);
  });
  ASSERT_TRUE(mc.run());
}

}  // namespace
}  // namespace odmpi::via
