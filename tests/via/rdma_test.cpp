// RDMA transport tier tests: rkey export / protection coverage, RDMA
// read data movement with initiator-only completion semantics, the
// shared receive queue (XRC-style endpoint sharing), and read recovery
// under fault injection.
#include <gtest/gtest.h>

#include <cstring>

#include "src/via/device_profile.h"
#include "src/via/memory.h"
#include "src/via/nic.h"
#include "src/via/provider.h"
#include "src/via/srq.h"
#include "src/via/vi.h"
#include "tests/via/via_test_util.h"

namespace odmpi::via {
namespace {

using testing::MiniCluster;
using testing::PinnedBuffer;

void spin_until(const bool& flag) {
  auto* p = sim::Process::current();
  while (!flag) {
    p->advance(sim::nanoseconds(100));
    p->yield();
  }
}

struct ConnectedPair {
  Vi* vi0 = nullptr;
  Vi* vi1 = nullptr;
};

void connect_pair(MiniCluster& mc, ConnectedPair& pair) {
  pair.vi0 = mc.nic(0).create_vi(nullptr, nullptr);
  pair.vi1 = mc.nic(1).create_vi(nullptr, nullptr);
  mc.nic(0).connections().connect_peer(*pair.vi0, 1, 1);
  mc.nic(1).connections().connect_peer(*pair.vi1, 0, 1);
  auto* p = sim::Process::current();
  while (pair.vi0->state() != ViState::kConnected ||
         pair.vi1->state() != ViState::kConnected) {
    p->advance(sim::nanoseconds(100));
    p->yield();
  }
}

TEST(Rdma, ProfileCapabilities) {
  const DeviceProfile rdma = DeviceProfile::rdma();
  EXPECT_EQ(rdma.name, "rdma");
  EXPECT_TRUE(rdma.supports_rdma_read);
  EXPECT_TRUE(rdma.supports_shared_recv);
  EXPECT_TRUE(rdma.supports_client_server);
  // The paper-era profiles predate both capabilities.
  EXPECT_FALSE(DeviceProfile::clan().supports_rdma_read);
  EXPECT_FALSE(DeviceProfile::clan().supports_shared_recv);
  EXPECT_FALSE(DeviceProfile::bvia().supports_rdma_read);
  EXPECT_FALSE(DeviceProfile::bvia().supports_shared_recv);
}

TEST(Rdma, RKeyExportAndCoverage) {
  MiniCluster mc(1, DeviceProfile::rdma());
  mc.spawn(0, [&] {
    PinnedBuffer buf(mc.nic(0), 256);
    MemoryRegistry& mem = mc.nic(0).memory();
    const RKey rkey = mem.export_rkey(buf.handle);
    EXPECT_NE(rkey, kInvalidRKey);
    EXPECT_TRUE(mem.covers_rkey(rkey, buf.data(), 256));
    EXPECT_TRUE(mem.covers_rkey(rkey, buf.data() + 128, 128));
    EXPECT_FALSE(mem.covers_rkey(rkey, buf.data() + 128, 256));
    EXPECT_FALSE(mem.covers_rkey(rkey + 7, buf.data(), 1));
    EXPECT_EQ(mem.export_rkey(buf.handle + 99), kInvalidRKey);
    mc.nic(0).deregister_memory(buf.handle);
    EXPECT_FALSE(mem.covers_rkey(rkey, buf.data(), 1));
  });
  ASSERT_TRUE(mc.run());
}

TEST(Rdma, ReadPullsDataWithInitiatorOnlyCompletion) {
  MiniCluster mc(2, DeviceProfile::rdma());
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer dst(mc.nic(0), 512), src(mc.nic(1), 512);
    src.fill(0x5C);
    dst.fill(0x00);
    const RKey rkey = mc.nic(1).memory().export_rkey(src.handle);

    Descriptor read;
    read.op = DescOp::kRdmaRead;
    read.addr = dst.data();
    read.length = 512;
    read.mem_handle = dst.handle;
    read.remote_addr = src.data();
    read.remote_rkey = rkey;
    ASSERT_EQ(pair.vi0->post_send(&read), Status::kSuccess);
    EXPECT_EQ(pair.vi0->sends_in_flight(), 1);
    spin_until(read.done);
    EXPECT_EQ(read.status, Status::kSuccess);
    EXPECT_EQ(read.bytes_transferred, 512u);
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), 512), 0);
    EXPECT_EQ(pair.vi0->sends_in_flight(), 0);

    // IB read semantics: the target's host is never involved — no
    // receive descriptor consumed, no completion, no drop recorded.
    EXPECT_EQ(mc.nic(0).stats().get("rdma.read"), 1);
    EXPECT_EQ(mc.nic(0).stats().get("rdma.read_bytes"), 512);
    EXPECT_EQ(mc.nic(1).stats().get("rdma.read_served"), 1);
    EXPECT_EQ(pair.vi1->drops(), 0u);
    EXPECT_EQ(mc.nic(1).stats().get("msg.dropped_no_desc"), 0);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Rdma, ReadOutsideExportedRegionFailsProtection) {
  MiniCluster mc(2, DeviceProfile::rdma());
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer dst(mc.nic(0), 64), src(mc.nic(1), 64);
    const RKey rkey = mc.nic(1).memory().export_rkey(src.handle);

    Descriptor read;
    read.op = DescOp::kRdmaRead;
    read.addr = dst.data();
    read.length = 64;
    read.mem_handle = dst.handle;
    read.remote_addr = src.data() + 32;  // runs 32 bytes past the region
    read.remote_rkey = rkey;
    EXPECT_EQ(pair.vi0->post_send(&read), Status::kProtectionError);
    EXPECT_TRUE(read.done);
    EXPECT_EQ(read.status, Status::kProtectionError);

    Descriptor bogus;
    bogus.op = DescOp::kRdmaRead;
    bogus.addr = dst.data();
    bogus.length = 64;
    bogus.mem_handle = dst.handle;
    bogus.remote_addr = src.data();
    bogus.remote_rkey = kInvalidRKey;
    EXPECT_EQ(pair.vi0->post_send(&bogus), Status::kProtectionError);
    EXPECT_EQ(mc.nic(0).stats().get("rdma.protection_error"), 2);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Rdma, SharedRecvQueueServesManyPeers) {
  MiniCluster mc(3, DeviceProfile::rdma());
  mc.spawn(0, [&] {
    // One shared receive context on node 0 feeding VIs to two peers.
    SharedRecvQueue* srq = mc.nic(0).create_shared_recv_queue();
    Vi* to1 = mc.nic(0).create_vi(nullptr, nullptr);
    Vi* to2 = mc.nic(0).create_vi(nullptr, nullptr);
    to1->bind_shared_recv(srq);
    to2->bind_shared_recv(srq);
    EXPECT_EQ(to1->shared_recv(), srq);
    EXPECT_EQ(to2->shared_recv(), srq);

    Vi* from1 = mc.nic(1).create_vi(nullptr, nullptr);
    Vi* from2 = mc.nic(2).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*to1, 1, 1);
    mc.nic(1).connections().connect_peer(*from1, 0, 1);
    mc.nic(0).connections().connect_peer(*to2, 2, 2);
    mc.nic(2).connections().connect_peer(*from2, 0, 2);
    auto* p = sim::Process::current();
    while (to1->state() != ViState::kConnected ||
           to2->state() != ViState::kConnected) {
      p->advance(sim::nanoseconds(100));
      p->yield();
    }

    // Pool of 2 buffers; a post through a bound VI also lands in the SRQ.
    PinnedBuffer pool0(mc.nic(0), 64), pool1(mc.nic(0), 64);
    Descriptor r0, r1;
    r0.addr = pool0.data();
    r0.length = 64;
    r0.mem_handle = pool0.handle;
    ASSERT_EQ(srq->post(&r0), Status::kSuccess);
    r1.addr = pool1.data();
    r1.length = 64;
    r1.mem_handle = pool1.handle;
    ASSERT_EQ(to2->post_recv(&r1), Status::kSuccess);  // delegates to SRQ
    EXPECT_EQ(srq->depth(), 2u);
    EXPECT_EQ(srq->posted_total(), 2u);

    PinnedBuffer s1(mc.nic(1), 64), s2(mc.nic(2), 64);
    s1.fill(0x11);
    s2.fill(0x22);
    Descriptor send1, send2;
    send1.op = DescOp::kSend;
    send1.addr = s1.data();
    send1.length = 64;
    send1.mem_handle = s1.handle;
    ASSERT_EQ(from1->post_send(&send1), Status::kSuccess);
    spin_until(r0.done);
    EXPECT_EQ(std::memcmp(r0.addr, s1.data(), 64), 0);
    send2.op = DescOp::kSend;
    send2.addr = s2.data();
    send2.length = 64;
    send2.mem_handle = s2.handle;
    ASSERT_EQ(from2->post_send(&send2), Status::kSuccess);
    spin_until(r1.done);
    EXPECT_EQ(std::memcmp(r1.addr, s2.data(), 64), 0);
    EXPECT_EQ(srq->depth(), 0u);

    // Pool exhausted: the next arrival drops, attributed to the SRQ and
    // to the VI it arrived on.
    Descriptor send3;
    send3.op = DescOp::kSend;
    send3.addr = s1.data();
    send3.length = 64;
    send3.mem_handle = s1.handle;
    ASSERT_EQ(from1->post_send(&send3), Status::kSuccess);
    spin_until(send3.done);
    sim::Process::current()->sleep(sim::milliseconds(1));
    EXPECT_EQ(srq->drops(), 1u);
    EXPECT_EQ(to1->drops(), 1u);
    EXPECT_EQ(mc.nic(0).stats().get("msg.dropped_no_desc"), 1);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Rdma, ReadSurvivesRequestAndResponseLoss) {
  sim::FaultConfig fault;
  fault.enabled = true;
  fault.seed = 0xFA417;
  fault.control_drop_rate = 0.25;  // read requests travel as control
  fault.data_drop_rate = 0.15;     // read responses travel as data
  MiniCluster mc(2, DeviceProfile::rdma(), fault);
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer dst(mc.nic(0), 256), src(mc.nic(1), 256);
    const RKey rkey = mc.nic(1).memory().export_rkey(src.handle);
    for (int round = 0; round < 8; ++round) {
      src.fill(static_cast<unsigned char>(0xA0 + round));
      dst.fill(0x00);
      Descriptor read;
      read.op = DescOp::kRdmaRead;
      read.addr = dst.data();
      read.length = 256;
      read.mem_handle = dst.handle;
      read.remote_addr = src.data();
      read.remote_rkey = rkey;
      ASSERT_EQ(pair.vi0->post_send(&read), Status::kSuccess);
      spin_until(read.done);
      ASSERT_EQ(read.status, Status::kSuccess) << "round " << round;
      ASSERT_EQ(std::memcmp(src.data(), dst.data(), 256), 0)
          << "round " << round;
    }
    // At these drop rates at least one request or response was lost and
    // recovered by the idempotent retry path.
    EXPECT_GT(mc.nic(0).stats().get("via.retransmits"), 0);
  });
  ASSERT_TRUE(mc.run());
}

}  // namespace
}  // namespace odmpi::via
