// Connection-model tests: peer-to-peer matching (including crossing
// requests), client/server accept and reject, and the unmatched-request
// queue the on-demand manager polls.
#include "src/via/connection.h"

#include <gtest/gtest.h>

#include "src/via/nic.h"
#include "src/via/provider.h"
#include "src/via/vi.h"
#include "tests/via/via_test_util.h"

namespace odmpi::via {
namespace {

using testing::MiniCluster;

// Polls until the VI leaves kConnectPending, yielding virtual time.
void await_connected(Vi* vi) {
  auto* p = sim::Process::current();
  while (vi->state() == ViState::kConnectPending) {
    p->advance(sim::nanoseconds(100));
    p->yield();
  }
}

TEST(PeerConnect, BothSidesConnectRegardlessOfOrder) {
  for (int first : {0, 1}) {
    MiniCluster mc(2);
    Vi* vis[2] = {nullptr, nullptr};
    for (int n : {0, 1}) {
      const int me = n, other = 1 - n;
      mc.spawn(n, [&, me, other, first] {
        // The "second" caller waits a while before connecting.
        if (me != first) sim::Process::current()->sleep(sim::microseconds(500));
        vis[me] = mc.nic(me).create_vi(nullptr, nullptr);
        mc.nic(me).connections().connect_peer(*vis[me], other, /*disc=*/7);
        await_connected(vis[me]);
      });
    }
    ASSERT_TRUE(mc.run());
    EXPECT_EQ(vis[0]->state(), ViState::kConnected);
    EXPECT_EQ(vis[1]->state(), ViState::kConnected);
    EXPECT_EQ(vis[0]->remote_node(), 1);
    EXPECT_EQ(vis[1]->remote_node(), 0);
    EXPECT_EQ(vis[0]->remote_vi(), vis[1]->id());
    EXPECT_EQ(vis[1]->remote_vi(), vis[0]->id());
  }
}

TEST(PeerConnect, SimultaneousCrossingRequestsStillMatchOnce) {
  MiniCluster mc(2);
  Vi* vis[2] = {nullptr, nullptr};
  for (int n : {0, 1}) {
    const int me = n, other = 1 - n;
    mc.spawn(n, [&, me, other] {
      vis[me] = mc.nic(me).create_vi(nullptr, nullptr);
      mc.nic(me).connections().connect_peer(*vis[me], other, 42);
      await_connected(vis[me]);
    });
  }
  ASSERT_TRUE(mc.run());
  EXPECT_EQ(vis[0]->state(), ViState::kConnected);
  EXPECT_EQ(vis[1]->state(), ViState::kConnected);
  // Exactly one logical connection: each side established one.
  EXPECT_EQ(mc.nic(0).connections().connections_established(), 1u);
  EXPECT_EQ(mc.nic(1).connections().connections_established(), 1u);
}

TEST(PeerConnect, DistinctDiscriminatorsDoNotCrossMatch) {
  MiniCluster mc(3);
  // Node 0 connects to 1 (disc 1) and to 2 (disc 2) simultaneously.
  Vi* v01 = nullptr;
  Vi* v02 = nullptr;
  Vi* v10 = nullptr;
  Vi* v20 = nullptr;
  mc.spawn(0, [&] {
    v01 = mc.nic(0).create_vi(nullptr, nullptr);
    v02 = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*v01, 1, 1);
    mc.nic(0).connections().connect_peer(*v02, 2, 2);
    await_connected(v01);
    await_connected(v02);
  });
  mc.spawn(1, [&] {
    v10 = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(1).connections().connect_peer(*v10, 0, 1);
    await_connected(v10);
  });
  mc.spawn(2, [&] {
    v20 = mc.nic(2).create_vi(nullptr, nullptr);
    mc.nic(2).connections().connect_peer(*v20, 0, 2);
    await_connected(v20);
  });
  ASSERT_TRUE(mc.run());
  EXPECT_EQ(v01->remote_node(), 1);
  EXPECT_EQ(v02->remote_node(), 2);
  EXPECT_EQ(v10->remote_vi(), v01->id());
  EXPECT_EQ(v20->remote_vi(), v02->id());
}

TEST(PeerConnect, UnmatchedRequestVisibleThroughPoll) {
  MiniCluster mc(2);
  bool saw_request = false;
  mc.spawn(0, [&] {
    Vi* vi = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*vi, 1, 99);
    await_connected(vi);
  });
  mc.spawn(1, [&] {
    auto* p = sim::Process::current();
    // Poll until node 0's request shows up, then accept it by issuing the
    // matching connect_peer — the on-demand manager's exact flow.
    std::vector<IncomingRequest> reqs;
    while (reqs.empty()) {
      reqs = mc.nic(1).connections().poll_incoming();
      p->advance(sim::nanoseconds(200));
      p->yield();
    }
    saw_request = true;
    EXPECT_EQ(reqs[0].src_node, 0);
    EXPECT_EQ(reqs[0].discriminator, 99u);
    Vi* vi = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(1).connections().connect_peer(*vi, reqs[0].src_node, 99);
    EXPECT_EQ(vi->state(), ViState::kConnected);
  });
  ASSERT_TRUE(mc.run());
  EXPECT_TRUE(saw_request);
}

TEST(PeerConnect, ConnectOnNonIdleViFails) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    Vi* vi = mc.nic(0).create_vi(nullptr, nullptr);
    EXPECT_EQ(mc.nic(0).connections().connect_peer(*vi, 1, 5),
              Status::kSuccess);
    // Second connect on the same (pending) VI is rejected locally.
    EXPECT_EQ(mc.nic(0).connections().connect_peer(*vi, 1, 6),
              Status::kInvalidState);
  });
  mc.spawn(1, [&] {
    Vi* vi = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(1).connections().connect_peer(*vi, 0, 5);
    await_connected(vi);
  });
  ASSERT_TRUE(mc.run());
}

TEST(ClientServer, AcceptConnectsBothSides) {
  MiniCluster mc(2);
  Vi* server_vi = nullptr;
  Vi* client_vi = nullptr;
  mc.spawn(0, [&] {  // server
    IncomingRequest req = mc.nic(0).connections().connect_wait(77);
    EXPECT_EQ(req.src_node, 1);
    server_vi = mc.nic(0).create_vi(nullptr, nullptr);
    EXPECT_EQ(mc.nic(0).connections().connect_accept(req, *server_vi),
              Status::kSuccess);
  });
  mc.spawn(1, [&] {  // client
    sim::Process::current()->sleep(sim::microseconds(100));
    client_vi = mc.nic(1).create_vi(nullptr, nullptr);
    EXPECT_EQ(mc.nic(1).connections().connect_request(*client_vi, 0, 77),
              Status::kSuccess);
  });
  ASSERT_TRUE(mc.run());
  EXPECT_EQ(server_vi->state(), ViState::kConnected);
  EXPECT_EQ(client_vi->state(), ViState::kConnected);
  EXPECT_EQ(client_vi->remote_vi(), server_vi->id());
}

TEST(ClientServer, RequestBeforeWaitIsQueued) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {  // server arrives late
    sim::Process::current()->sleep(sim::milliseconds(2));
    IncomingRequest req = mc.nic(0).connections().connect_wait(5);
    Vi* vi = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_accept(req, *vi);
  });
  mc.spawn(1, [&] {
    Vi* vi = mc.nic(1).create_vi(nullptr, nullptr);
    EXPECT_EQ(mc.nic(1).connections().connect_request(*vi, 0, 5),
              Status::kSuccess);
  });
  ASSERT_TRUE(mc.run());
}

TEST(ClientServer, RejectReturnsRejectedAndViReusable) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    IncomingRequest req = mc.nic(0).connections().connect_wait(8);
    mc.nic(0).connections().connect_reject(req);
  });
  mc.spawn(1, [&] {
    sim::Process::current()->sleep(sim::microseconds(50));
    Vi* vi = mc.nic(1).create_vi(nullptr, nullptr);
    EXPECT_EQ(mc.nic(1).connections().connect_request(*vi, 0, 8),
              Status::kRejected);
    EXPECT_EQ(vi->state(), ViState::kIdle);  // reusable after reject
  });
  ASSERT_TRUE(mc.run());
}

TEST(Disconnect, PropagatesToPeer) {
  MiniCluster mc(2);
  Vi* vis[2] = {nullptr, nullptr};
  mc.spawn(0, [&] {
    vis[0] = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*vis[0], 1, 3);
    await_connected(vis[0]);
    vis[0]->disconnect();
  });
  mc.spawn(1, [&] {
    vis[1] = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(1).connections().connect_peer(*vis[1], 0, 3);
    await_connected(vis[1]);
    auto* p = sim::Process::current();
    while (vis[1]->state() == ViState::kConnected) {
      p->advance(sim::nanoseconds(200));
      p->yield();
    }
    EXPECT_EQ(vis[1]->state(), ViState::kDisconnected);
  });
  ASSERT_TRUE(mc.run());
  EXPECT_EQ(vis[0]->state(), ViState::kDisconnected);
}

// Regression: a remote-initiated disconnect must flush the surviving
// VI's preposted receive descriptors with kDisconnected, exactly like a
// local destroy_vi does, and without pushing CQ entries (the host learns
// of the disconnect from the state change). Before the fix the
// descriptors stayed queued forever — the MPI eviction teardown would
// have leaked every eager buffer on the side that received the
// disconnect instead of initiating it.
TEST(Disconnect, FlushesSurvivorsPrepostedReceives) {
  MiniCluster mc(2);
  constexpr int kPreposted = 4;
  constexpr std::size_t kBufBytes = 64;
  std::vector<Descriptor> descs(kPreposted);
  mc.spawn(0, [&] {
    Vi* vi = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*vi, 1, 11);
    await_connected(vi);
    // Let the peer observe the established connection before tearing it
    // down, so the test exercises disconnect-of-a-connected-VI.
    sim::Process::current()->sleep(sim::microseconds(50));
    vi->disconnect();
  });
  mc.spawn(1, [&] {
    CompletionQueue* recv_cq = mc.nic(1).create_cq();
    Vi* vi = mc.nic(1).create_vi(nullptr, recv_cq);
    testing::PinnedBuffer buf(mc.nic(1), kPreposted * kBufBytes);
    for (int i = 0; i < kPreposted; ++i) {
      auto& d = descs[static_cast<std::size_t>(i)];
      d.op = DescOp::kReceive;
      d.addr = buf.data() + static_cast<std::size_t>(i) * kBufBytes;
      d.length = kBufBytes;
      d.mem_handle = buf.handle;
      ASSERT_EQ(vi->post_recv(&d), Status::kSuccess);
    }
    mc.nic(1).connections().connect_peer(*vi, 0, 11);
    await_connected(vi);
    auto* p = sim::Process::current();
    while (vi->state() == ViState::kConnected) {
      p->advance(sim::nanoseconds(200));
      p->yield();
    }
    EXPECT_EQ(vi->state(), ViState::kDisconnected);
    EXPECT_EQ(vi->recv_queue_depth(), 0u)
        << "disconnect must flush preposted receives";
    for (const Descriptor& d : descs) {
      EXPECT_TRUE(d.done);
      EXPECT_EQ(d.status, Status::kDisconnected);
    }
    EXPECT_FALSE(recv_cq->has_entries())
        << "flushed receives must not surface as CQ completions";
  });
  ASSERT_TRUE(mc.run());
}

TEST(ConnectCost, ChargesOsInvolvement) {
  MiniCluster mc(2);
  sim::SimTime spent = 0;
  mc.spawn(0, [&] {
    auto* p = sim::Process::current();
    const sim::SimTime before = p->now();
    Vi* vi = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*vi, 1, 2);
    spent = p->now() - before;
    await_connected(vi);
  });
  mc.spawn(1, [&] {
    Vi* vi = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(1).connections().connect_peer(*vi, 0, 2);
    await_connected(vi);
  });
  ASSERT_TRUE(mc.run());
  const DeviceProfile p = DeviceProfile::clan();
  EXPECT_GE(spent, p.vi_create_cost + p.conn_os_cost);
}

}  // namespace
}  // namespace odmpi::via
