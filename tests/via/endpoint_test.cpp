// VI endpoint data-path tests: send/receive matching, the unconnected-send
// discard, drops on missing receive descriptors, length errors, completion
// queues, and RDMA writes.
#include "src/via/vi.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/via/nic.h"
#include "src/via/provider.h"
#include "tests/via/via_test_util.h"

namespace odmpi::via {
namespace {

using testing::MiniCluster;
using testing::PinnedBuffer;

// Establishes a connected VI pair between node 0 and node 1 inside the
// test body (run from a process on either node before data-path work).
struct ConnectedPair {
  Vi* vi0 = nullptr;
  Vi* vi1 = nullptr;
};

void connect_pair(MiniCluster& mc, ConnectedPair& pair,
                  CompletionQueue* scq0 = nullptr,
                  CompletionQueue* rcq0 = nullptr,
                  CompletionQueue* scq1 = nullptr,
                  CompletionQueue* rcq1 = nullptr) {
  pair.vi0 = mc.nic(0).create_vi(scq0, rcq0);
  pair.vi1 = mc.nic(1).create_vi(scq1, rcq1);
  mc.nic(0).connections().connect_peer(*pair.vi0, 1, 1);
  mc.nic(1).connections().connect_peer(*pair.vi1, 0, 1);
  auto* p = sim::Process::current();
  while (pair.vi0->state() != ViState::kConnected ||
         pair.vi1->state() != ViState::kConnected) {
    p->advance(sim::nanoseconds(100));
    p->yield();
  }
}

void spin_until(const bool& flag) {
  auto* p = sim::Process::current();
  while (!flag) {
    p->advance(sim::nanoseconds(100));
    p->yield();
  }
}

TEST(Endpoint, SendArrivesInPostedReceive) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer src(mc.nic(0), 64), dst(mc.nic(1), 64);
    src.fill(0xAB);
    dst.fill(0x00);

    Descriptor recv;
    recv.addr = dst.data();
    recv.length = 64;
    recv.mem_handle = dst.handle;
    ASSERT_EQ(pair.vi1->post_recv(&recv), Status::kSuccess);

    Descriptor send;
    send.op = DescOp::kSend;
    send.addr = src.data();
    send.length = 64;
    send.mem_handle = src.handle;
    ASSERT_EQ(pair.vi0->post_send(&send), Status::kSuccess);

    spin_until(recv.done);
    EXPECT_EQ(recv.status, Status::kSuccess);
    EXPECT_EQ(recv.bytes_transferred, 64u);
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), 64), 0);
    spin_until(send.done);
    EXPECT_EQ(send.status, Status::kSuccess);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, SendOnUnconnectedViIsDiscarded) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    Vi* vi = mc.nic(0).create_vi(nullptr, nullptr);
    PinnedBuffer buf(mc.nic(0), 32);
    Descriptor send;
    send.addr = buf.data();
    send.length = 32;
    send.mem_handle = buf.handle;
    EXPECT_EQ(vi->post_send(&send), Status::kNotConnected);
    EXPECT_TRUE(send.done);
    EXPECT_EQ(send.status, Status::kNotConnected);
    EXPECT_EQ(mc.nic(0).stats().get("via.send_discarded_unconnected"), 1);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, ArrivalWithoutReceiveDescriptorIsDropped) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer src(mc.nic(0), 16);
    Descriptor send;
    send.addr = src.data();
    send.length = 16;
    send.mem_handle = src.handle;
    ASSERT_EQ(pair.vi0->post_send(&send), Status::kSuccess);
    spin_until(send.done);
    // Give the message time to arrive and be dropped.
    sim::Process::current()->sleep(sim::milliseconds(1));
    EXPECT_EQ(pair.vi1->drops(), 1u);
    EXPECT_EQ(mc.nic(1).stats().get("msg.dropped_no_desc"), 1);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, UnregisteredBufferRejected) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    std::vector<std::byte> unregistered(32);
    Descriptor d;
    d.addr = unregistered.data();
    d.length = 32;
    d.mem_handle = kInvalidMemoryHandle;
    EXPECT_EQ(pair.vi0->post_send(&d), Status::kNotRegistered);
    Descriptor r;
    r.addr = unregistered.data();
    r.length = 32;
    r.mem_handle = kInvalidMemoryHandle;
    EXPECT_EQ(pair.vi1->post_recv(&r), Status::kNotRegistered);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, OversizedMessageCompletesWithLengthError) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer src(mc.nic(0), 128), dst(mc.nic(1), 64);
    Descriptor recv;
    recv.addr = dst.data();
    recv.length = 64;
    recv.mem_handle = dst.handle;
    ASSERT_EQ(pair.vi1->post_recv(&recv), Status::kSuccess);
    Descriptor send;
    send.addr = src.data();
    send.length = 128;  // larger than the posted 64-byte buffer
    send.mem_handle = src.handle;
    ASSERT_EQ(pair.vi0->post_send(&send), Status::kSuccess);
    spin_until(recv.done);
    EXPECT_EQ(recv.status, Status::kLengthError);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, ReceivesMatchInFifoOrder) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer src(mc.nic(0), 8), dst(mc.nic(1), 64);
    Descriptor recvs[4];
    for (int i = 0; i < 4; ++i) {
      recvs[i].addr = dst.data() + i * 8;
      recvs[i].length = 8;
      recvs[i].mem_handle = dst.handle;
      ASSERT_EQ(pair.vi1->post_recv(&recvs[i]), Status::kSuccess);
    }
    Descriptor sends[4];
    for (int i = 0; i < 4; ++i) {
      src.fill(static_cast<unsigned char>(i + 1));
      sends[i].op = DescOp::kSend;
      sends[i].addr = src.data();
      sends[i].length = 8;
      sends[i].mem_handle = src.handle;
      ASSERT_EQ(pair.vi0->post_send(&sends[i]), Status::kSuccess);
      spin_until(sends[i].done);  // keep payload buffer reuse safe
    }
    spin_until(recvs[3].done);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(recvs[i].status, Status::kSuccess);
      EXPECT_EQ(static_cast<int>(dst.bytes[static_cast<size_t>(i) * 8]),
                i + 1);
    }
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, CompletionQueueCollectsBothSides) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    CompletionQueue* scq = mc.nic(0).create_cq();
    CompletionQueue* rcq = mc.nic(1).create_cq();
    ConnectedPair pair;
    connect_pair(mc, pair, scq, nullptr, nullptr, rcq);
    PinnedBuffer src(mc.nic(0), 16), dst(mc.nic(1), 16);
    Descriptor recv;
    recv.addr = dst.data();
    recv.length = 16;
    recv.mem_handle = dst.handle;
    pair.vi1->post_recv(&recv);
    Descriptor send;
    send.addr = src.data();
    send.length = 16;
    send.mem_handle = src.handle;
    pair.vi0->post_send(&send);

    // Blocking waits retrieve completions in arrival order.
    Completion sc = scq->wait();
    EXPECT_EQ(sc.descriptor, &send);
    EXPECT_FALSE(sc.is_receive);
    Completion rc = rcq->wait();
    EXPECT_EQ(rc.descriptor, &recv);
    EXPECT_TRUE(rc.is_receive);
    EXPECT_EQ(rc.vi, pair.vi1);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, RdmaWriteLandsSilently) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer src(mc.nic(0), 256), dst(mc.nic(1), 256);
    src.fill(0x5C);
    dst.fill(0);
    Descriptor w;
    w.op = DescOp::kRdmaWrite;
    w.addr = src.data();
    w.length = 256;
    w.mem_handle = src.handle;
    w.remote_addr = dst.data();
    w.remote_mem_handle = dst.handle;
    ASSERT_EQ(pair.vi0->post_send(&w), Status::kSuccess);
    spin_until(w.done);
    EXPECT_EQ(w.status, Status::kSuccess);
    sim::Process::current()->sleep(sim::milliseconds(1));
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), 256), 0);
    // No receive descriptor was consumed and no drop recorded.
    EXPECT_EQ(pair.vi1->drops(), 0u);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, RdmaWriteOutsideRegionIsProtectionError) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    ConnectedPair pair;
    connect_pair(mc, pair);
    PinnedBuffer src(mc.nic(0), 64), dst(mc.nic(1), 64);
    Descriptor w;
    w.op = DescOp::kRdmaWrite;
    w.addr = src.data();
    w.length = 64;
    w.mem_handle = src.handle;
    w.remote_addr = dst.data() + 32;  // runs 32 bytes past the region
    w.remote_mem_handle = dst.handle;
    EXPECT_EQ(pair.vi0->post_send(&w), Status::kProtectionError);
    EXPECT_EQ(w.status, Status::kProtectionError);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, PrepostedReceiveBeforeConnectIsLegal) {
  MiniCluster mc(2);
  mc.spawn(0, [&] {
    Vi* vi1 = mc.nic(1).create_vi(nullptr, nullptr);
    PinnedBuffer dst(mc.nic(1), 32);
    Descriptor recv;
    recv.addr = dst.data();
    recv.length = 32;
    recv.mem_handle = dst.handle;
    EXPECT_EQ(vi1->post_recv(&recv), Status::kSuccess);  // before connect

    Vi* vi0 = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*vi0, 1, 4);
    mc.nic(1).connections().connect_peer(*vi1, 0, 4);
    auto* p = sim::Process::current();
    while (vi0->state() != ViState::kConnected) {
      p->advance(sim::nanoseconds(100));
      p->yield();
    }
    PinnedBuffer src(mc.nic(0), 32);
    Descriptor send;
    send.addr = src.data();
    send.length = 32;
    send.mem_handle = src.handle;
    ASSERT_EQ(vi0->post_send(&send), Status::kSuccess);
    spin_until(recv.done);
    EXPECT_EQ(recv.status, Status::kSuccess);
  });
  ASSERT_TRUE(mc.run());
}

TEST(Endpoint, ViCountersTrackLifecycle) {
  MiniCluster mc(1);
  mc.spawn(0, [&] {
    Vi* a = mc.nic(0).create_vi(nullptr, nullptr);
    Vi* b = mc.nic(0).create_vi(nullptr, nullptr);
    EXPECT_EQ(mc.nic(0).open_vi_count(), 2);
    EXPECT_EQ(mc.nic(0).vis_ever_created(), 2);
    mc.nic(0).destroy_vi(a);
    EXPECT_EQ(mc.nic(0).open_vi_count(), 1);
    EXPECT_EQ(mc.nic(0).vis_ever_created(), 2);
    // Remaining VI still findable by id after the other was destroyed.
    EXPECT_EQ(mc.nic(0).find_vi(b->id()), b);
  });
  ASSERT_TRUE(mc.run());
}

}  // namespace
}  // namespace odmpi::via
