#include "src/via/fabric.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"

namespace odmpi::via {
namespace {

DeviceProfile flat_profile() {
  DeviceProfile p = DeviceProfile::clan();
  p.per_byte_ns = 10.0;
  p.wire_latency = sim::microseconds(5);
  return p;
}

TEST(Fabric, DeliveryTimeIsNicPlusTxPlusWire) {
  sim::Engine e;
  DeviceProfile p = flat_profile();
  Fabric f(e, 2, p);
  sim::SimTime arrived = -1;
  f.deliver(0, 1, /*bytes=*/100, sim::FaultClass::kData, /*depart=*/0, /*src_nic=*/sim::microseconds(2),
            /*dst_nic=*/0, {}, [&] { arrived = e.now(); });
  e.run();
  // 2us NIC + 100B*10ns + 5us wire = 8us.
  EXPECT_EQ(arrived, sim::microseconds(8));
}

TEST(Fabric, TxDoneFiresBeforeArrival) {
  sim::Engine e;
  DeviceProfile p = flat_profile();
  Fabric f(e, 2, p);
  std::vector<int> order;
  f.deliver(0, 1, 100, sim::FaultClass::kData, 0, 0, 0, [&] { order.push_back(1); },
            [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Fabric, EgressSerializesBackToBackSends) {
  sim::Engine e;
  DeviceProfile p = flat_profile();
  Fabric f(e, 3, p);
  std::vector<sim::SimTime> arrivals;
  // Two 1000-byte messages posted at t=0 from node 0: the second waits for
  // the first to finish transmitting (10us each).
  f.deliver(0, 1, 1000, sim::FaultClass::kData, 0, 0, 0, {}, [&] { arrivals.push_back(e.now()); });
  f.deliver(0, 2, 1000, sim::FaultClass::kData, 0, 0, 0, {}, [&] { arrivals.push_back(e.now()); });
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::microseconds(10 + 5));
  EXPECT_EQ(arrivals[1], sim::microseconds(20 + 5));
}

TEST(Fabric, DistinctSourcesDoNotSerialize) {
  sim::Engine e;
  DeviceProfile p = flat_profile();
  Fabric f(e, 3, p);
  std::vector<sim::SimTime> arrivals;
  f.deliver(0, 2, 1000, sim::FaultClass::kData, 0, 0, 0, {}, [&] { arrivals.push_back(e.now()); });
  f.deliver(1, 2, 1000, sim::FaultClass::kData, 0, 0, 0, {}, [&] { arrivals.push_back(e.now()); });
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);  // parallel links
}

TEST(Fabric, SameSourceSameDestinationStaysOrdered) {
  sim::Engine e;
  DeviceProfile p = flat_profile();
  Fabric f(e, 2, p);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    f.deliver(0, 1, 64, sim::FaultClass::kData, 0, 0, 0, {}, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Fabric, CountsTraffic) {
  sim::Engine e;
  DeviceProfile p = flat_profile();
  Fabric f(e, 2, p);
  f.deliver(0, 1, 100, sim::FaultClass::kData, 0, 0, 0, {}, [] {});
  f.deliver(1, 0, 200, sim::FaultClass::kData, 0, 0, 0, {}, [] {});
  e.run();
  EXPECT_EQ(f.packets_delivered(), 2u);
  EXPECT_EQ(f.bytes_delivered(), 300u);
}

TEST(Fabric, DstNicDelayAddsToArrival) {
  sim::Engine e;
  DeviceProfile p = flat_profile();
  Fabric f(e, 2, p);
  sim::SimTime arrived = -1;
  f.deliver(0, 1, 0, sim::FaultClass::kData, 0, 0, sim::microseconds(3), {},
            [&] { arrived = e.now(); });
  e.run();
  EXPECT_EQ(arrived, sim::microseconds(5 + 3));
}

}  // namespace
}  // namespace odmpi::via
