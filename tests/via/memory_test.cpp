#include "src/via/memory.h"

#include <gtest/gtest.h>

#include <vector>

namespace odmpi::via {
namespace {

TEST(MemoryRegistry, RegisterTracksPinnedBytes) {
  MemoryRegistry reg;
  std::vector<std::byte> buf(4096);
  auto h = reg.register_region(buf.data(), buf.size());
  EXPECT_NE(h, kInvalidMemoryHandle);
  EXPECT_EQ(reg.pinned_bytes(), 4096);
  EXPECT_EQ(reg.region_count(), 1u);
}

TEST(MemoryRegistry, DeregisterReleasesBytes) {
  MemoryRegistry reg;
  std::vector<std::byte> buf(1000);
  auto h = reg.register_region(buf.data(), buf.size());
  EXPECT_TRUE(reg.deregister(h));
  EXPECT_EQ(reg.pinned_bytes(), 0);
  EXPECT_FALSE(reg.deregister(h));  // double-free rejected
}

TEST(MemoryRegistry, PeakHighWaterMark) {
  MemoryRegistry reg;
  std::vector<std::byte> a(100), b(200);
  auto ha = reg.register_region(a.data(), a.size());
  auto hb = reg.register_region(b.data(), b.size());
  EXPECT_EQ(reg.peak_pinned_bytes(), 300);
  reg.deregister(ha);
  reg.deregister(hb);
  EXPECT_EQ(reg.peak_pinned_bytes(), 300);
  EXPECT_EQ(reg.pinned_bytes(), 0);
}

TEST(MemoryRegistry, CoversExactRegion) {
  MemoryRegistry reg;
  std::vector<std::byte> buf(128);
  auto h = reg.register_region(buf.data(), buf.size());
  EXPECT_TRUE(reg.covers(h, buf.data(), 128));
  EXPECT_TRUE(reg.covers(h, buf.data() + 64, 64));
  EXPECT_FALSE(reg.covers(h, buf.data() + 64, 65));   // runs past end
  EXPECT_FALSE(reg.covers(h, buf.data() - 1, 4));     // before start
  EXPECT_FALSE(reg.covers(kInvalidMemoryHandle, buf.data(), 1));
}

TEST(MemoryRegistry, CoversWrongHandleFails) {
  MemoryRegistry reg;
  std::vector<std::byte> a(64), b(64);
  auto ha = reg.register_region(a.data(), a.size());
  auto hb = reg.register_region(b.data(), b.size());
  EXPECT_FALSE(reg.covers(ha, b.data(), 8));
  EXPECT_TRUE(reg.covers(hb, b.data(), 8));
}

TEST(MemoryRegistry, HandlesAreUnique) {
  MemoryRegistry reg;
  std::vector<std::byte> buf(16);
  auto h1 = reg.register_region(buf.data(), buf.size());
  reg.deregister(h1);
  auto h2 = reg.register_region(buf.data(), buf.size());
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace odmpi::via
