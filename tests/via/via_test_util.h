// Shared helpers for VIA-layer tests: a two-node (or N-node) cluster with
// a process per node running a test body, plus registered scratch buffers.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/process.h"
#include "src/via/provider.h"

namespace odmpi::via::testing {

class MiniCluster {
 public:
  explicit MiniCluster(int nodes,
                       DeviceProfile profile = DeviceProfile::clan(),
                       sim::FaultConfig fault = {})
      : cluster_(engine_, nodes, std::move(profile), fault) {}

  sim::Engine& engine() { return engine_; }
  Cluster& cluster() { return cluster_; }
  Nic& nic(NodeId n) { return cluster_.nic(n); }

  /// Adds a process bound to node `n` running `body`.
  void spawn(int n, std::function<void()> body) {
    procs_.push_back(
        std::make_unique<sim::Process>(engine_, n, std::move(body)));
    procs_.back()->start();
  }

  /// Runs the simulation to quiescence and returns true if every spawned
  /// process finished (false indicates a deadlock in the test scenario).
  bool run() {
    engine_.run();
    for (const auto& p : procs_) {
      if (!p->finished()) return false;
    }
    return true;
  }

  sim::Process& process(std::size_t i) { return *procs_.at(i); }

 private:
  sim::Engine engine_;
  Cluster cluster_;
  std::vector<std::unique_ptr<sim::Process>> procs_;
};

/// A registered scratch buffer on a node.
struct PinnedBuffer {
  PinnedBuffer(Nic& nic, std::size_t size) : bytes(size) {
    handle = nic.register_memory(bytes.data(), bytes.size());
  }
  std::vector<std::byte> bytes;
  MemoryHandle handle;

  std::byte* data() { return bytes.data(); }
  void fill(unsigned char v) {
    for (auto& b : bytes) b = std::byte{v};
  }
};

}  // namespace odmpi::via::testing
