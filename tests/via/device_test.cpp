// Device-profile behaviour: the cLAN/BVIA asymmetries the paper's results
// hinge on — per-VI NIC cost (Figure 1), wait-vs-poll penalties, and the
// client/server capability flag.
#include "src/via/device_profile.h"

#include <gtest/gtest.h>

#include "src/via/nic.h"
#include "src/via/provider.h"
#include "tests/via/via_test_util.h"

namespace odmpi::via {
namespace {

using testing::MiniCluster;
using testing::PinnedBuffer;

// One-way latency of a single 8-byte message between two fresh processes,
// with `extra_vis` additional connected-but-idle VIs open on each node.
sim::SimTime one_way_latency(const DeviceProfile& profile, int extra_vis) {
  MiniCluster mc(2, profile);
  sim::SimTime latency = -1;
  mc.spawn(0, [&] {
    auto* p = sim::Process::current();
    // Open the idle VIs first (pairs across the two nodes).
    for (int i = 0; i < extra_vis; ++i) {
      Vi* a = mc.nic(0).create_vi(nullptr, nullptr);
      Vi* b = mc.nic(1).create_vi(nullptr, nullptr);
      mc.nic(0).connections().connect_peer(*a, 1, 1000u + i);
      mc.nic(1).connections().connect_peer(*b, 0, 1000u + i);
      while (a->state() != ViState::kConnected ||
             b->state() != ViState::kConnected) {
        p->advance(sim::nanoseconds(100));
        p->yield();
      }
    }
    Vi* s = mc.nic(0).create_vi(nullptr, nullptr);
    Vi* r = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*s, 1, 1);
    mc.nic(1).connections().connect_peer(*r, 0, 1);
    while (s->state() != ViState::kConnected ||
           r->state() != ViState::kConnected) {
      p->advance(sim::nanoseconds(100));
      p->yield();
    }
    PinnedBuffer src(mc.nic(0), 8), dst(mc.nic(1), 8);
    Descriptor recv;
    recv.addr = dst.data();
    recv.length = 8;
    recv.mem_handle = dst.handle;
    r->post_recv(&recv);
    Descriptor send;
    send.addr = src.data();
    send.length = 8;
    send.mem_handle = src.handle;
    const sim::SimTime t0 = p->now();
    s->post_send(&send);
    while (!recv.done) {
      p->advance(sim::nanoseconds(50));
      p->yield();
    }
    latency = p->now() - t0;
  });
  EXPECT_TRUE(mc.run());
  return latency;
}

TEST(DeviceProfile, ClanLatencyIndependentOfOpenVis) {
  const auto base = one_way_latency(DeviceProfile::clan(), 0);
  const auto loaded = one_way_latency(DeviceProfile::clan(), 30);
  EXPECT_EQ(base, loaded);
}

TEST(DeviceProfile, BviaLatencyGrowsWithOpenVis) {
  // Figure 1: Berkeley VIA latency as a function of the number of VIs.
  const auto base = one_way_latency(DeviceProfile::bvia(), 0);
  const auto vis10 = one_way_latency(DeviceProfile::bvia(), 10);
  const auto vis30 = one_way_latency(DeviceProfile::bvia(), 30);
  EXPECT_GT(vis10, base);
  EXPECT_GT(vis30, vis10);
  // Growth is linear in the per-VI scan cost.
  const auto slope = DeviceProfile::bvia().nic_per_vi_cost;
  EXPECT_EQ(vis10 - base, 10 * slope);
  EXPECT_EQ(vis30 - vis10, 20 * slope);
}

TEST(DeviceProfile, SmallMessageLatencyInPaperRegime) {
  // MVICH reported ~14us on cLAN and ~35us on BVIA for small messages;
  // the raw VIA level must land somewhat below those MPI-level numbers.
  const double clan_us = sim::to_us(one_way_latency(DeviceProfile::clan(), 0));
  const double bvia_us = sim::to_us(one_way_latency(DeviceProfile::bvia(), 2));
  EXPECT_GT(clan_us, 8.0);
  EXPECT_LT(clan_us, 16.0);
  EXPECT_GT(bvia_us, 25.0);
  EXPECT_LT(bvia_us, 40.0);
}

TEST(DeviceProfile, ClanBlockingWaitChargesWakeup) {
  MiniCluster mc(2, DeviceProfile::clan());
  mc.spawn(0, [&] {
    auto* p = sim::Process::current();
    CompletionQueue* rcq = mc.nic(0).create_cq();
    Vi* r = mc.nic(0).create_vi(nullptr, rcq);
    Vi* s = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*r, 1, 1);
    mc.nic(1).connections().connect_peer(*s, 0, 1);
    while (r->state() != ViState::kConnected ||
           s->state() != ViState::kConnected) {
      p->advance(sim::nanoseconds(100));
      p->yield();
    }
    PinnedBuffer dst(mc.nic(0), 8), src(mc.nic(1), 8);
    Descriptor recv;
    recv.addr = dst.data();
    recv.length = 8;
    recv.mem_handle = dst.handle;
    r->post_recv(&recv);
    // Send fires 200us in the future via a scheduled event; the waiter
    // must really sleep and pay the kernel wake-up on the way out.
    Descriptor* send = new Descriptor();
    send->addr = src.data();
    send->length = 8;
    send->mem_handle = src.handle;
    mc.engine().schedule_at(p->now() + sim::microseconds(200),
                            [s, send] { s->post_send(send); });
    rcq->wait();
    EXPECT_EQ(rcq->kernel_wakeups(), 1u);
    const DeviceProfile prof = DeviceProfile::clan();
    // Wake-up happened at arrival + penalty, i.e. past 200us + penalty.
    EXPECT_GE(p->now(), sim::microseconds(200) + prof.blocking_wait_wakeup);
    delete send;
  });
  ASSERT_TRUE(mc.run());
}

TEST(DeviceProfile, BviaWaitIsPollNoPenalty) {
  MiniCluster mc(2, DeviceProfile::bvia());
  mc.spawn(0, [&] {
    auto* p = sim::Process::current();
    CompletionQueue* rcq = mc.nic(0).create_cq();
    Vi* r = mc.nic(0).create_vi(nullptr, rcq);
    Vi* s = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*r, 1, 1);
    mc.nic(1).connections().connect_peer(*s, 0, 1);
    while (r->state() != ViState::kConnected ||
           s->state() != ViState::kConnected) {
      p->advance(sim::nanoseconds(100));
      p->yield();
    }
    PinnedBuffer dst(mc.nic(0), 8), src(mc.nic(1), 8);
    Descriptor recv;
    recv.addr = dst.data();
    recv.length = 8;
    recv.mem_handle = dst.handle;
    r->post_recv(&recv);
    Descriptor* send = new Descriptor();
    send->addr = src.data();
    send->length = 8;
    send->mem_handle = src.handle;
    const sim::SimTime arrival_window = sim::microseconds(200);
    mc.engine().schedule_at(p->now() + arrival_window,
                            [s, send] { s->post_send(send); });
    const sim::SimTime t0 = p->now();
    rcq->wait();
    EXPECT_EQ(rcq->kernel_wakeups(), 0u);
    // Elapsed ~= message arrival time, with no added penalty beyond the
    // NIC/wire costs themselves.
    const DeviceProfile prof = DeviceProfile::bvia();
    EXPECT_LT(p->now() - t0, arrival_window + sim::microseconds(40));
    EXPECT_GE(p->now() - t0, arrival_window + prof.wire_latency);
    delete send;
  });
  ASSERT_TRUE(mc.run());
}

TEST(DeviceProfile, CapabilityFlags) {
  EXPECT_TRUE(DeviceProfile::clan().supports_client_server);
  EXPECT_FALSE(DeviceProfile::bvia().supports_client_server);
  EXPECT_FALSE(DeviceProfile::clan().wait_is_poll);
  EXPECT_TRUE(DeviceProfile::bvia().wait_is_poll);
  EXPECT_EQ(DeviceProfile::clan().nic_per_vi_cost, 0);
  EXPECT_GT(DeviceProfile::bvia().nic_per_vi_cost, 0);
}

TEST(DeviceProfile, RegistrationCostScalesWithPages) {
  MiniCluster mc(1, DeviceProfile::clan());
  mc.spawn(0, [&] {
    auto* p = sim::Process::current();
    std::vector<std::byte> small(4096), big(40 * 4096);
    sim::SimTime t0 = p->now();
    mc.nic(0).register_memory(small.data(), small.size());
    const sim::SimTime one_page = p->now() - t0;
    t0 = p->now();
    mc.nic(0).register_memory(big.data(), big.size());
    const sim::SimTime forty_pages = p->now() - t0;
    EXPECT_EQ(forty_pages, 40 * one_page);
  });
  ASSERT_TRUE(mc.run());
}

}  // namespace
}  // namespace odmpi::via
