// Fault-injection tests at the VIA layer: unreliable-delivery transport
// errors, reliable-delivery retransmission through loss, duplicate
// suppression, connection handshake retry under control-packet loss, the
// clean timeout on an unreachable peer, and bit-for-bit replay of a
// faulted run from the same seed.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/sim/fault.h"
#include "src/via/nic.h"
#include "src/via/provider.h"
#include "src/via/vi.h"
#include "tests/via/via_test_util.h"

namespace odmpi::via {
namespace {

using testing::MiniCluster;
using testing::PinnedBuffer;

void connect_pair(MiniCluster& mc, Vi*& vi0, Vi*& vi1) {
  vi0 = mc.nic(0).create_vi(nullptr, nullptr);
  vi1 = mc.nic(1).create_vi(nullptr, nullptr);
  mc.nic(0).connections().connect_peer(*vi0, 1, 1);
  mc.nic(1).connections().connect_peer(*vi1, 0, 1);
  auto* p = sim::Process::current();
  while (vi0->state() != ViState::kConnected ||
         vi1->state() != ViState::kConnected) {
    p->advance(sim::nanoseconds(100));
    p->yield();
  }
}

void spin_until(const std::function<bool()>& pred) {
  auto* p = sim::Process::current();
  while (!pred()) {
    p->advance(sim::nanoseconds(200));
    p->yield();
  }
}

TEST(FaultInjection, UnreliableSendSurfacesTransportError) {
  sim::FaultConfig f;
  f.enabled = true;
  f.data_drop_rate = 1.0;  // every data packet dies; control is clean
  MiniCluster mc(2, DeviceProfile::clan(), f);
  mc.spawn(0, [&] {
    Vi *vi0, *vi1;
    connect_pair(mc, vi0, vi1);
    ASSERT_EQ(vi0->reliability(), ReliabilityLevel::kUnreliableDelivery);
    PinnedBuffer src(mc.nic(0), 64), dst(mc.nic(1), 64);
    Descriptor recv;
    recv.addr = dst.data();
    recv.length = 64;
    recv.mem_handle = dst.handle;
    ASSERT_EQ(vi1->post_recv(&recv), Status::kSuccess);

    Descriptor send;
    send.op = DescOp::kSend;
    send.addr = src.data();
    send.length = 64;
    send.mem_handle = src.handle;
    ASSERT_EQ(vi0->post_send(&send), Status::kSuccess);
    spin_until([&] { return send.done; });
    // VIA Unreliable Delivery: the loss is reported, never recovered.
    EXPECT_EQ(send.status, Status::kTransportError);
    EXPECT_FALSE(recv.done);
    EXPECT_EQ(mc.nic(0).stats().get("via.ud_transport_errors"), 1);
    EXPECT_GE(mc.cluster().fabric().packets_dropped(), 1u);
  });
  ASSERT_TRUE(mc.run());
}

TEST(FaultInjection, ReliableDeliveryRetransmitsThroughLoss) {
  sim::FaultConfig f;
  f.enabled = true;
  f.seed = 1234;
  f.data_drop_rate = 0.25;
  MiniCluster mc(2, DeviceProfile::clan(), f);
  constexpr int kMsgs = 16;
  mc.spawn(0, [&] {
    Vi *vi0, *vi1;
    connect_pair(mc, vi0, vi1);
    vi0->set_reliability(ReliabilityLevel::kReliableDelivery);
    vi1->set_reliability(ReliabilityLevel::kReliableDelivery);

    std::vector<std::unique_ptr<PinnedBuffer>> srcs, dsts;
    std::vector<Descriptor> sends(kMsgs), recvs(kMsgs);
    for (int i = 0; i < kMsgs; ++i) {
      dsts.push_back(std::make_unique<PinnedBuffer>(mc.nic(1), 32));
      recvs[i].addr = dsts.back()->data();
      recvs[i].length = 32;
      recvs[i].mem_handle = dsts.back()->handle;
      ASSERT_EQ(vi1->post_recv(&recvs[i]), Status::kSuccess);
    }
    for (int i = 0; i < kMsgs; ++i) {
      srcs.push_back(std::make_unique<PinnedBuffer>(mc.nic(0), 32));
      srcs.back()->fill(static_cast<unsigned char>(i + 1));
      sends[i].op = DescOp::kSend;
      sends[i].addr = srcs.back()->data();
      sends[i].length = 32;
      sends[i].mem_handle = srcs.back()->handle;
      ASSERT_EQ(vi0->post_send(&sends[i]), Status::kSuccess);
    }
    spin_until([&] {
      for (const auto& d : recvs) {
        if (!d.done) return false;
      }
      for (const auto& d : sends) {
        if (!d.done) return false;
      }
      return true;
    });
    // Every message delivered exactly once, in order, despite 25% loss.
    for (int i = 0; i < kMsgs; ++i) {
      EXPECT_EQ(sends[i].status, Status::kSuccess);
      EXPECT_EQ(recvs[i].status, Status::kSuccess);
      EXPECT_EQ(static_cast<unsigned char>(dsts[i]->bytes[0]), i + 1)
          << "message " << i << " out of order or corrupted";
    }
    EXPECT_GE(mc.nic(0).stats().get("via.retransmits"), 1);
  });
  ASSERT_TRUE(mc.run());
}

TEST(FaultInjection, DuplicatesAreSuppressed) {
  sim::FaultConfig f;
  f.enabled = true;
  f.seed = 5;
  f.duplicate_rate = 1.0;  // the switch copies every packet
  MiniCluster mc(2, DeviceProfile::clan(), f);
  constexpr int kMsgs = 5;
  mc.spawn(0, [&] {
    Vi *vi0, *vi1;
    connect_pair(mc, vi0, vi1);
    vi0->set_reliability(ReliabilityLevel::kReliableDelivery);
    vi1->set_reliability(ReliabilityLevel::kReliableDelivery);
    std::vector<std::unique_ptr<PinnedBuffer>> bufs;
    std::vector<Descriptor> sends(kMsgs), recvs(kMsgs);
    for (int i = 0; i < kMsgs; ++i) {
      bufs.push_back(std::make_unique<PinnedBuffer>(mc.nic(1), 16));
      recvs[i].addr = bufs.back()->data();
      recvs[i].length = 16;
      recvs[i].mem_handle = bufs.back()->handle;
      ASSERT_EQ(vi1->post_recv(&recvs[i]), Status::kSuccess);
    }
    PinnedBuffer src(mc.nic(0), 16);
    for (int i = 0; i < kMsgs; ++i) {
      sends[i].op = DescOp::kSend;
      sends[i].addr = src.data();
      sends[i].length = 16;
      sends[i].mem_handle = src.handle;
      ASSERT_EQ(vi0->post_send(&sends[i]), Status::kSuccess);
      spin_until([&] { return sends[i].done; });
    }
    // Let all duplicate copies arrive.
    sim::Process::current()->sleep(sim::milliseconds(2));
    // Exactly kMsgs deliveries: the duplicate copies were sequence-checked
    // away, not delivered into the extra descriptors.
    EXPECT_EQ(mc.nic(1).stats().get("msg.received"),
              static_cast<std::int64_t>(kMsgs));
    EXPECT_GE(mc.nic(1).stats().get("via.dup_suppressed"),
              static_cast<std::int64_t>(kMsgs));
    EXPECT_GE(mc.cluster().fabric().packets_duplicated(),
              static_cast<std::uint64_t>(kMsgs));
  });
  ASSERT_TRUE(mc.run());
}

TEST(FaultInjection, HandshakeRetriesThroughControlLoss) {
  sim::FaultConfig f;
  f.enabled = true;
  f.seed = 77;
  f.control_drop_rate = 0.5;
  MiniCluster mc(2, DeviceProfile::clan(), f);
  Vi* vi0 = nullptr;
  mc.spawn(0, [&] {
    vi0 = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*vi0, 1, 9);
    spin_until([&] { return vi0->state() != ViState::kConnectPending; });
    EXPECT_EQ(vi0->state(), ViState::kConnected);
  });
  mc.spawn(1, [&] {
    // The on-demand manager's flow: poll for the request, answer it.
    std::vector<IncomingRequest> reqs;
    spin_until([&] {
      reqs = mc.nic(1).connections().poll_incoming();
      return !reqs.empty();
    });
    Vi* vi = mc.nic(1).create_vi(nullptr, nullptr);
    mc.nic(1).connections().connect_peer(*vi, reqs[0].src_node, 9);
    spin_until([&] { return vi->state() == ViState::kConnected; });
  });
  ASSERT_TRUE(mc.run());
  const std::int64_t retries = mc.nic(0).stats().get("conn.retries") +
                               mc.nic(1).stats().get("conn.retries");
  EXPECT_GE(retries, 1) << "50% control loss should force a retransmission";
}

TEST(FaultInjection, UnreachablePeerTimesOutCleanly) {
  sim::FaultConfig f;
  f.enabled = true;
  f.block_pair(0, 1);
  const DeviceProfile profile = DeviceProfile::clan();
  MiniCluster mc(2, profile, f);
  sim::SimTime failed_at = -1;
  mc.spawn(0, [&] {
    Vi* vi = mc.nic(0).create_vi(nullptr, nullptr);
    mc.nic(0).connections().connect_peer(*vi, 1, 4);
    spin_until([&] { return vi->state() != ViState::kConnectPending; });
    EXPECT_EQ(vi->state(), ViState::kError);
    failed_at = sim::Process::current()->now();
    // A retry is possible on the same endpoint (it fails again here, but
    // the call itself must be accepted).
    EXPECT_EQ(mc.nic(0).connections().connect_peer(*vi, 1, 4),
              Status::kSuccess);
    spin_until([&] { return vi->state() != ViState::kConnectPending; });
    EXPECT_EQ(vi->state(), ViState::kError);
  });
  ASSERT_TRUE(mc.run());
  EXPECT_EQ(mc.nic(0).stats().get("conn.timeouts"), 2);
  EXPECT_EQ(mc.nic(0).stats().get("conn.retries"),
            2 * profile.max_conn_retries);
  // The failure arrived within the documented budget (plus slack for the
  // host polling quantum), not after an unbounded hang.
  EXPECT_LE(failed_at, profile.conn_retry_budget() + sim::milliseconds(1));
}

TEST(FaultInjection, SameSeedReplaysRunBitForBit) {
  auto run_once = [](std::uint64_t seed, sim::SimTime* final_time) {
    sim::FaultConfig f;
    f.enabled = true;
    f.seed = seed;
    f.data_drop_rate = 0.2;
    f.control_drop_rate = 0.2;
    f.duplicate_rate = 0.1;
    f.delay_rate = 0.2;
    MiniCluster mc(2, DeviceProfile::clan(), f);
    mc.spawn(0, [&] {
      Vi *vi0, *vi1;
      connect_pair(mc, vi0, vi1);
      vi0->set_reliability(ReliabilityLevel::kReliableDelivery);
      vi1->set_reliability(ReliabilityLevel::kReliableDelivery);
      std::vector<std::unique_ptr<PinnedBuffer>> bufs;
      std::vector<Descriptor> sends(8), recvs(8);
      for (int i = 0; i < 8; ++i) {
        bufs.push_back(std::make_unique<PinnedBuffer>(mc.nic(1), 24));
        recvs[i].addr = bufs.back()->data();
        recvs[i].length = 24;
        recvs[i].mem_handle = bufs.back()->handle;
        EXPECT_EQ(vi1->post_recv(&recvs[i]), Status::kSuccess);
      }
      PinnedBuffer src(mc.nic(0), 24);
      for (int i = 0; i < 8; ++i) {
        sends[i].op = DescOp::kSend;
        sends[i].addr = src.data();
        sends[i].length = 24;
        sends[i].mem_handle = src.handle;
        EXPECT_EQ(vi0->post_send(&sends[i]), Status::kSuccess);
      }
      spin_until([&] {
        for (const auto& d : recvs) {
          if (!d.done) return false;
        }
        return true;
      });
    });
    EXPECT_TRUE(mc.run());
    *final_time = mc.engine().now();
    return mc.cluster().aggregate_stats().all();
  };

  sim::SimTime t1 = 0, t2 = 0, t3 = 0;
  const auto s1 = run_once(2024, &t1);
  const auto s2 = run_once(2024, &t2);
  const auto s3 = run_once(2025, &t3);
  EXPECT_EQ(s1, s2) << "same seed must replay identical fault counters";
  EXPECT_EQ(t1, t2) << "same seed must replay identical final sim time";
  EXPECT_NE(s1, s3) << "different seed should perturb the run";
}

}  // namespace
}  // namespace odmpi::via
