// Table 1 pattern-generator tests: structural properties and closeness to
// the published averages.
#include "src/patterns/patterns.h"

#include <gtest/gtest.h>

namespace odmpi::patterns {
namespace {

TEST(Patterns, SphotMatchesPaperExactly) {
  // 0.98 at 64 processes: 63 workers send to the master, which sends to
  // nobody — the paper's metric counts send destinations.
  EXPECT_NEAR(average_destinations(sphot(64)), 0.98, 0.005);
  EXPECT_LE(average_destinations(sphot(1024)), 1.0);
}

TEST(Patterns, Sweep3dMatchesPaperExactly) {
  EXPECT_DOUBLE_EQ(average_destinations(sweep3d(64)), 3.5);
  const double at1024 = average_destinations(sweep3d(1024));
  EXPECT_LT(at1024, 4.0);
  EXPECT_GT(at1024, 3.5);
}

TEST(Patterns, SppmIsNearestNeighbour) {
  const auto d = sppm(64);
  // 4x4x4 grid: every destination is a face neighbour, none self.
  for (int r = 0; r < 64; ++r) {
    EXPECT_LE(d[static_cast<std::size_t>(r)].size(), 6u);
    EXPECT_FALSE(d[static_cast<std::size_t>(r)].contains(r));
  }
  EXPECT_LT(average_destinations(d), 6.0);
  EXPECT_LT(average_destinations(sppm(1024)), 6.0);  // paper: < 6
}

TEST(Patterns, SmgHasLargePartnerSets) {
  const double at64 = average_destinations(smg2000(64));
  // Paper: 41.88 — an order of magnitude above the stencil apps.
  EXPECT_GT(at64, 25.0);
  EXPECT_LT(at64, 63.0);
  EXPECT_LT(average_destinations(smg2000(1024)), 1023.0);
}

TEST(Patterns, SamraiNearPaper) {
  EXPECT_NEAR(average_destinations(samrai(64)), 4.94, 0.35);
  EXPECT_LT(average_destinations(samrai(1024)), 10.0);
}

TEST(Patterns, CgNearPaperAndBounded) {
  EXPECT_NEAR(average_destinations(cg(64)), 6.36, 0.75);
  EXPECT_LT(average_destinations(cg(1024)), 11.0);  // paper: < 11
}

TEST(Patterns, DestinationsAreValidRanks) {
  for (auto fn : {&sppm, &smg2000, &sphot, &sweep3d, &samrai, &cg}) {
    const auto d = fn(64);
    ASSERT_EQ(d.size(), 64u);
    for (const auto& s : d) {
      for (int t : s) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 64);
      }
    }
  }
}

TEST(Patterns, SymmetryWhereExpected) {
  // Halo-exchange apps have symmetric partner relations.
  for (auto fn : {&sppm, &sweep3d}) {
    const auto d = fn(64);
    for (int r = 0; r < 64; ++r) {
      for (int t : d[static_cast<std::size_t>(r)]) {
        EXPECT_TRUE(d[static_cast<std::size_t>(t)].contains(r))
            << r << " -> " << t << " not symmetric";
      }
    }
  }
}

TEST(Patterns, Table1HasAllRows) {
  const auto rows = table1();
  ASSERT_EQ(rows.size(), 12u);  // 6 apps x 2 sizes
  for (const auto& row : rows) {
    EXPECT_GT(row.average, 0.0) << row.name;
    EXPECT_GT(row.paper, 0.0);
  }
}

}  // namespace
}  // namespace odmpi::patterns
