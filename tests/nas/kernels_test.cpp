// NAS kernel tests: numerics verify, results are identical across
// connection-management strategies (the change must be transparent), and
// the per-process VI counts under on-demand management reproduce the
// shape of the paper's Table 2.
#include <gtest/gtest.h>

#include "src/nas/common.h"
#include "tests/mpi/mpi_test_util.h"

namespace odmpi::nas {
namespace {

using mpi::ConnectionModel;
using mpi::testing::make_options;

struct KernelCase {
  const char* kernel;
  int nprocs;
};

KernelResult run_kernel(const char* kernel, int nprocs,
                        ConnectionModel model, double* vis_avg = nullptr,
                        bool bvia = false) {
  mpi::JobOptions opt = make_options(
      model,
      bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan());
  mpi::World world(nprocs, opt);
  KernelResult result;
  EXPECT_TRUE(world.run_job([&](mpi::Comm& comm) {
    KernelResult r = kernel_by_name(kernel)(comm, Class::S);
    if (comm.rank() == 0) result = r;
  })) << kernel << " deadlocked";
  if (vis_avg != nullptr) *vis_avg = world.metrics().mean_vis_per_process;
  return result;
}

class KernelMatrix : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelMatrix, VerifiesUnderOnDemand) {
  const auto& p = GetParam();
  KernelResult r = run_kernel(p.kernel, p.nprocs, ConnectionModel::kOnDemand);
  EXPECT_TRUE(r.verified) << p.kernel << " failed verification";
  EXPECT_GT(r.time_sec, 0.0);
}

TEST_P(KernelMatrix, ChecksumIdenticalAcrossConnectionModels) {
  const auto& p = GetParam();
  const KernelResult od =
      run_kernel(p.kernel, p.nprocs, ConnectionModel::kOnDemand);
  const KernelResult st =
      run_kernel(p.kernel, p.nprocs, ConnectionModel::kStaticPeerToPeer);
  // Connection management must not perturb the computation at all.
  EXPECT_EQ(od.checksum, st.checksum) << p.kernel;
  EXPECT_EQ(od.verified, st.verified);
}

TEST_P(KernelMatrix, VerifiesOnBerkeleyVia) {
  const auto& p = GetParam();
  if (p.nprocs > 8) GTEST_SKIP() << "paper caps BVIA at 8 processes";
  KernelResult r = run_kernel(p.kernel, p.nprocs, ConnectionModel::kOnDemand,
                              nullptr, /*bvia=*/true);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelMatrix,
    ::testing::Values(KernelCase{"CG", 4}, KernelCase{"CG", 8},
                      KernelCase{"CG", 16}, KernelCase{"MG", 8},
                      KernelCase{"MG", 16}, KernelCase{"IS", 4},
                      KernelCase{"IS", 8}, KernelCase{"IS", 16},
                      KernelCase{"EP", 8}, KernelCase{"EP", 16},
                      KernelCase{"FT", 4}, KernelCase{"FT", 8},
                      KernelCase{"SP", 4}, KernelCase{"SP", 9},
                      KernelCase{"SP", 16}, KernelCase{"BT", 4},
                      KernelCase{"BT", 16}, KernelCase{"LU", 4},
                      KernelCase{"LU", 8}, KernelCase{"LU", 16}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return std::string(info.param.kernel) + "_np" +
             std::to_string(info.param.nprocs);
    });

TEST(Table2Shape, OnDemandViCountsMatchPaper) {
  // Table 2's on-demand column (16 processes): EP ~ log2(N) = 4,
  // CG ~ 4.75, IS = 15 (full mesh), SP/BT ~ 8.
  double vis = 0;
  run_kernel("EP", 16, ConnectionModel::kOnDemand, &vis);
  EXPECT_DOUBLE_EQ(vis, 4.0);

  run_kernel("CG", 16, ConnectionModel::kOnDemand, &vis);
  EXPECT_NEAR(vis, 4.75, 0.26);

  run_kernel("IS", 16, ConnectionModel::kOnDemand, &vis);
  EXPECT_DOUBLE_EQ(vis, 15.0);

  run_kernel("SP", 16, ConnectionModel::kOnDemand, &vis);
  EXPECT_NEAR(vis, 8.0, 1.5);
}

TEST(Table2Shape, StaticAlwaysCreatesFullMesh) {
  double vis = 0;
  run_kernel("EP", 16, ConnectionModel::kStaticPeerToPeer, &vis);
  EXPECT_DOUBLE_EQ(vis, 15.0);
  run_kernel("CG", 8, ConnectionModel::kStaticPeerToPeer, &vis);
  EXPECT_DOUBLE_EQ(vis, 7.0);
}

TEST(KernelBudgets, ComputeBudgetsGrowWithClass) {
  for (const char* k : {"CG", "MG", "IS", "EP", "FT", "SP", "BT", "LU"}) {
    EXPECT_LT(compute_budget(k, Class::S), compute_budget(k, Class::A)) << k;
    EXPECT_LT(compute_budget(k, Class::A), compute_budget(k, Class::B)) << k;
    EXPECT_LT(compute_budget(k, Class::B), compute_budget(k, Class::C)) << k;
  }
}

TEST(KernelBudgets, IterationTablesArePositive) {
  for (const char* k : {"CG", "MG", "IS", "EP", "FT", "SP", "BT", "LU"}) {
    for (Class c : {Class::S, Class::A, Class::B, Class::C}) {
      EXPECT_GT(iterations(k, c), 0) << k << " " << to_string(c);
    }
  }
}

}  // namespace
}  // namespace odmpi::nas
