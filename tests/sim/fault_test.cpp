// FaultPlan unit tests: determinism (same seed => bit-identical verdict
// stream), rate calibration, class separation, link overrides and the
// draw-free brownout path.
#include "src/sim/fault.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace odmpi::sim {
namespace {

using Verdict = std::tuple<bool, bool, SimTime, SimTime>;

Verdict key(const FaultDecision& d) {
  return {d.drop, d.duplicate, d.extra_delay, d.duplicate_lag};
}

FaultConfig noisy_config(std::uint64_t seed) {
  FaultConfig f;
  f.enabled = true;
  f.seed = seed;
  f.data_drop_rate = 0.2;
  f.control_drop_rate = 0.1;
  f.duplicate_rate = 0.15;
  f.delay_rate = 0.25;
  return f;
}

TEST(FaultPlan, DisabledByDefault) {
  FaultConfig f;
  EXPECT_FALSE(f.enabled);
  FaultPlan plan(f);
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultPlan, SameSeedReplaysBitForBit) {
  FaultPlan a(noisy_config(42));
  FaultPlan b(noisy_config(42));
  std::vector<Verdict> va, vb;
  for (int i = 0; i < 2000; ++i) {
    const int src = i % 7;
    const int dst = (i + 3) % 7;
    const FaultClass cls = i % 3 == 0 ? FaultClass::kControl
                                      : FaultClass::kData;
    const SimTime when = microseconds(i);
    va.push_back(key(a.decide(src, dst, cls, when)));
    vb.push_back(key(b.decide(src, dst, cls, when)));
  }
  EXPECT_EQ(va, vb);
  EXPECT_EQ(a.stats().all(), b.stats().all());
}

TEST(FaultPlan, DifferentSeedsProduceDifferentSchedules) {
  FaultPlan a(noisy_config(1));
  FaultPlan b(noisy_config(2));
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    if (key(a.decide(0, 1, FaultClass::kData, microseconds(i))) !=
        key(b.decide(0, 1, FaultClass::kData, microseconds(i)))) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, DropRateIsRoughlyHonoured) {
  FaultConfig f;
  f.enabled = true;
  f.seed = 7;
  f.data_drop_rate = 0.3;
  FaultPlan plan(f);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    (void)plan.decide(0, 1, FaultClass::kData, microseconds(i));
  }
  const double observed =
      static_cast<double>(plan.stats().get("fault.dropped_data")) / n;
  EXPECT_NEAR(observed, 0.3, 0.02);
}

TEST(FaultPlan, ClassRatesAreIndependent) {
  FaultConfig f;
  f.enabled = true;
  f.data_drop_rate = 1.0;
  f.control_drop_rate = 0.0;
  FaultPlan plan(f);
  EXPECT_TRUE(plan.decide(0, 1, FaultClass::kData, 0).drop);
  EXPECT_FALSE(plan.decide(0, 1, FaultClass::kControl, 0).drop);
  EXPECT_EQ(plan.stats().get("fault.dropped_data"), 1);
  EXPECT_EQ(plan.stats().get("fault.dropped_control"), 0);
}

TEST(FaultPlan, BlockedPairIsUnreachableBothWays) {
  FaultConfig f;
  f.enabled = true;
  f.block_pair(2, 5);
  FaultPlan plan(f);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(plan.decide(2, 5, FaultClass::kData, microseconds(i)).drop);
    EXPECT_TRUE(plan.decide(5, 2, FaultClass::kControl, microseconds(i)).drop);
    EXPECT_FALSE(plan.decide(2, 3, FaultClass::kData, microseconds(i)).drop);
  }
}

TEST(FaultPlan, BrownoutDropsEverythingInWindowOnly) {
  FaultConfig f;
  f.enabled = true;
  f.brownouts.push_back(BrownoutWindow{3, microseconds(10), microseconds(20)});
  FaultPlan plan(f);
  // Inside the window, packets touching node 3 in either direction drop.
  EXPECT_TRUE(plan.decide(3, 0, FaultClass::kData, microseconds(15)).drop);
  EXPECT_TRUE(plan.decide(0, 3, FaultClass::kControl, microseconds(10)).drop);
  // End is exclusive; before/after and other nodes are clean.
  EXPECT_FALSE(plan.decide(3, 0, FaultClass::kData, microseconds(20)).drop);
  EXPECT_FALSE(plan.decide(3, 0, FaultClass::kData, microseconds(9)).drop);
  EXPECT_FALSE(plan.decide(1, 2, FaultClass::kData, microseconds(15)).drop);
  EXPECT_EQ(plan.stats().get("fault.brownout_drops"), 2);
}

TEST(FaultPlan, BrownoutConsumesNoRandomness) {
  // Plan A sees brownout drops interleaved with normal packets; plan B sees
  // only the normal packets. If brownout verdicts made Rng draws, the
  // shared tail would diverge.
  FaultConfig base = noisy_config(99);
  FaultConfig with_brownout = base;
  with_brownout.brownouts.push_back(
      BrownoutWindow{9, 0, microseconds(1000000)});
  FaultPlan a(with_brownout);
  FaultPlan b(base);
  for (int i = 0; i < 500; ++i) {
    (void)a.decide(9, 1, FaultClass::kData, microseconds(i));  // brownout
    const auto va = a.decide(0, 1, FaultClass::kData, microseconds(i));
    const auto vb = b.decide(0, 1, FaultClass::kData, microseconds(i));
    ASSERT_EQ(key(va), key(vb)) << "diverged at packet " << i;
  }
}

TEST(FaultPlan, DuplicateAndDelayVerdicts) {
  FaultConfig f;
  f.enabled = true;
  f.duplicate_rate = 1.0;
  f.delay_rate = 1.0;
  f.duplicate_lag = microseconds(5);
  f.delay_jitter_max = microseconds(50);
  FaultPlan plan(f);
  for (int i = 0; i < 100; ++i) {
    const FaultDecision d = plan.decide(0, 1, FaultClass::kData, 0);
    EXPECT_FALSE(d.drop);
    EXPECT_TRUE(d.duplicate);
    EXPECT_EQ(d.duplicate_lag, microseconds(5));
    EXPECT_GT(d.extra_delay, 0);
    EXPECT_LE(d.extra_delay, microseconds(50));
  }
  EXPECT_EQ(plan.stats().get("fault.duplicated"), 100);
  EXPECT_EQ(plan.stats().get("fault.delayed"), 100);
}

}  // namespace
}  // namespace odmpi::sim
