#include "src/sim/process.h"

#include <gtest/gtest.h>

#include <vector>

namespace odmpi::sim {
namespace {

TEST(Process, AdvanceChargesLocalClock) {
  Engine e;
  SimTime observed = -1;
  Process p(e, 0, [&] {
    Process::current()->advance(microseconds(5));
    Process::current()->advance(microseconds(7));
    observed = Process::current()->now();
  });
  p.start();
  e.run();
  EXPECT_EQ(observed, microseconds(12));
  EXPECT_TRUE(p.finished());
}

TEST(Process, StartDelayOffsetsClock) {
  Engine e;
  SimTime observed = -1;
  Process p(e, 0, [&] { observed = Process::current()->now(); });
  p.start(microseconds(42));
  e.run();
  EXPECT_EQ(observed, microseconds(42));
}

TEST(Process, YieldLetsEarlierEventsRunFirst) {
  Engine e;
  std::vector<int> order;
  Process p(e, 0, [&] {
    auto* self = Process::current();
    self->advance(microseconds(100));
    order.push_back(1);
    self->yield();  // the event at t=50 must fire during this yield
    order.push_back(3);
  });
  p.start();
  e.schedule_at(microseconds(50), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Process, SleepAdvancesAndInterleaves) {
  Engine e;
  std::vector<std::pair<int, SimTime>> trace;
  Process a(e, 0, [&] {
    for (int i = 0; i < 3; ++i) {
      Process::current()->sleep(microseconds(10));
      trace.emplace_back(0, Process::current()->now());
    }
  });
  Process b(e, 1, [&] {
    for (int i = 0; i < 2; ++i) {
      Process::current()->sleep(microseconds(15));
      trace.emplace_back(1, Process::current()->now());
    }
  });
  a.start();
  b.start();
  e.run();
  ASSERT_EQ(trace.size(), 5u);
  // Interleaving strictly by virtual time: 10a 15b 20a 30a/30b.
  EXPECT_EQ(trace[0], std::make_pair(0, microseconds(10)));
  EXPECT_EQ(trace[1], std::make_pair(1, microseconds(15)));
  EXPECT_EQ(trace[2], std::make_pair(0, microseconds(20)));
}

TEST(Process, BlockWaitsForWakeup) {
  Engine e;
  SimTime woke_at = -1;
  SimTime blocked_for = -1;
  Process p(e, 0, [&] {
    auto* self = Process::current();
    self->advance(microseconds(10));
    blocked_for = self->block();
    woke_at = self->now();
  });
  p.start();
  e.schedule_at(microseconds(70), [&] { p.wakeup(); });
  e.run();
  EXPECT_EQ(woke_at, microseconds(70));
  EXPECT_EQ(blocked_for, microseconds(60));
  EXPECT_TRUE(p.finished());
}

TEST(Process, LatchedWakeupMakesBlockImmediate) {
  Engine e;
  SimTime blocked_for = -1;
  Process p(e, 0, [&] {
    auto* self = Process::current();
    self->wakeup();  // signal self while running: latched
    blocked_for = self->block();
  });
  p.start();
  e.run();
  EXPECT_EQ(blocked_for, 0);
  EXPECT_TRUE(p.finished());
}

TEST(Process, WakeupBeforeLocalTimeDoesNotRewindClock) {
  Engine e;
  SimTime woke_at = -1;
  Process p(e, 0, [&] {
    auto* self = Process::current();
    self->advance(microseconds(100));  // local clock ahead of global
    self->block();
    woke_at = self->now();
  });
  p.start();
  // Fires at global t=5 while the process's local clock reads 100.
  e.schedule_at(microseconds(5), [&] { p.wakeup(); });
  e.run();
  EXPECT_EQ(woke_at, microseconds(100));
}

TEST(Process, DeadlockLeavesProcessBlockedAndEngineQuiescent) {
  Engine e;
  Process p(e, 0, [&] { Process::current()->block(); });
  p.start();
  e.run();
  EXPECT_EQ(p.state(), Process::State::Blocked);
  EXPECT_FALSE(p.finished());
}

TEST(Process, ManyProcessesDeterministicCompletion) {
  Engine e;
  constexpr int kN = 64;
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<int> finish_order;
  for (int i = 0; i < kN; ++i) {
    procs.push_back(std::make_unique<Process>(e, i, [&, i] {
      // Rank i sleeps i+1 us twice; finish order == rank order.
      Process::current()->sleep(microseconds(i + 1));
      Process::current()->sleep(microseconds(i + 1));
      finish_order.push_back(i);
    }));
    procs.back()->start();
  }
  e.run();
  ASSERT_EQ(finish_order.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(finish_order[static_cast<size_t>(i)], i);
}


TEST(Process, SpuriousWakeupPatternRequiresConditionLoops) {
  // A latched wakeup makes the next block() return immediately — the
  // semantics condition-style users must re-check against (this is what
  // the runtime's sense-reversing barrier does).
  Engine e;
  int wakes = 0;
  Process p(e, 0, [&] {
    auto* self = Process::current();
    self->wakeup();            // latch a stale signal
    bool condition = false;
    e.schedule_at(microseconds(50), [&] {
      condition = true;
      p.wakeup();
    });
    while (!condition) {
      self->block();
      ++wakes;
    }
    EXPECT_EQ(self->now(), microseconds(50));
  });
  p.start();
  e.run();
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(wakes, 2);  // one spurious (latched), one real
}

TEST(Process, WakeupFromAnotherProcessUsesSenderLocalTime) {
  Engine e;
  SimTime woke_at = -1;
  Process sleeper(e, 0, [&] {
    Process::current()->block();
    woke_at = Process::current()->now();
  });
  Process waker(e, 1, [&] {
    auto* self = Process::current();
    self->advance(microseconds(80));  // local clock ahead of global
    sleeper.wakeup();
  });
  sleeper.start();
  waker.start();
  e.run();
  // The wakeup is stamped with the waker's local time.
  EXPECT_EQ(woke_at, microseconds(80));
}

TEST(Process, CurrentTimeFallsBackToEngineClock) {
  Engine e;
  e.schedule_at(microseconds(33), [&] {
    EXPECT_EQ(Process::current(), nullptr);
    EXPECT_EQ(Process::current_time(e), microseconds(33));
  });
  e.run();
}

}  // namespace
}  // namespace odmpi::sim
