#include "src/sim/fiber.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace odmpi::sim {
namespace {

TEST(Fiber, RunsBodyToCompletion) {
  int calls = 0;
  Fiber f([&] { ++calls; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yield_to_scheduler();
    trace.push_back(2);
    Fiber::yield_to_scheduler();
    trace.push_back(3);
  });
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1}));
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksRunningFiber) {
  Fiber* observed = nullptr;
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber f([&] { observed = Fiber::current(); });
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, NestedResumeOfSecondFiberFromScheduler) {
  std::string order;
  Fiber a([&] {
    order += "a1";
    Fiber::yield_to_scheduler();
    order += "a2";
  });
  Fiber b([&] {
    order += "b1";
    Fiber::yield_to_scheduler();
    order += "b2";
  });
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(order, "a1b1a2b2");
}

TEST(Fiber, LocalStateSurvivesManySwitches) {
  long sum = 0;
  Fiber f([&] {
    long local = 0;
    for (int i = 0; i < 1000; ++i) {
      local += i;
      Fiber::yield_to_scheduler();
    }
    sum = local;
  });
  while (!f.finished()) f.resume();
  EXPECT_EQ(sum, 999L * 1000 / 2);
}

TEST(Fiber, DeepStackUsageWithinConfiguredSize) {
  // Recursion that touches ~64 kB of a 256 kB stack must be safe.
  bool done = false;
  Fiber f([&] {
    struct Rec {
      static int go(int depth) {
        char pad[1024];
        pad[0] = static_cast<char>(depth);
        if (depth == 0) return pad[0];
        return go(depth - 1) + (pad[0] != 0 ? 1 : 0);
      }
    };
    (void)Rec::go(64);
    done = true;
  });
  f.resume();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace odmpi::sim
