#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace odmpi::sim {
namespace {

TEST(Engine, ProcessesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(microseconds(30), [&] { order.push_back(3); });
  e.schedule_at(microseconds(10), [&] { order.push_back(1); });
  e.schedule_at(microseconds(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), microseconds(30));
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(microseconds(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_after(microseconds(1), chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), microseconds(4));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(microseconds(10), [&] {
    EXPECT_THROW(e.schedule_at(microseconds(5), [] {}), std::logic_error);
  });
  e.run();
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  EventId id = e.schedule_at(microseconds(10), [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.cancel(0));
  EXPECT_FALSE(e.cancel(12345));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(microseconds(10), [&] { order.push_back(1); });
  e.schedule_at(microseconds(30), [&] { order.push_back(2); });
  e.run_until(microseconds(20));
  EXPECT_EQ(order, (std::vector<int>{1}));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, RunUntilOnEmptyQueueAdvancesClock) {
  Engine e;
  e.run_until(microseconds(100));
  EXPECT_EQ(e.now(), microseconds(100));
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_after(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
}

}  // namespace
}  // namespace odmpi::sim
