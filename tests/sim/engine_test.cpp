#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace odmpi::sim {
namespace {

TEST(Engine, ProcessesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(microseconds(30), [&] { order.push_back(3); });
  e.schedule_at(microseconds(10), [&] { order.push_back(1); });
  e.schedule_at(microseconds(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), microseconds(30));
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(microseconds(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_after(microseconds(1), chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), microseconds(4));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(microseconds(10), [&] {
    EXPECT_THROW(e.schedule_at(microseconds(5), [] {}), std::logic_error);
  });
  e.run();
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  EventId id = e.schedule_at(microseconds(10), [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.cancel(0));
  EXPECT_FALSE(e.cancel(12345));
}

// Regression: cancelling an event that already fired used to report
// success (any id below the running counter was accepted) and leak a
// tombstone scanned by every subsequent pop.
TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  bool fired = false;
  EventId id = e.schedule_at(microseconds(10), [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  EventId id = e.schedule_at(microseconds(10), [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
  e.run();
}

TEST(Engine, CancelOwnIdWhileFiringReturnsFalse) {
  Engine e;
  EventId id = 0;
  bool self_cancel = true;
  id = e.schedule_at(microseconds(10), [&] { self_cancel = e.cancel(id); });
  e.run();
  EXPECT_FALSE(self_cancel);
}

// A stale id must stay invalid even after its slab slot is reused by a
// newer event (the generation check).
TEST(Engine, StaleIdAfterSlotReuseReturnsFalse) {
  Engine e;
  bool fired = false;
  EventId old_id = e.schedule_at(microseconds(10), [] {});
  EXPECT_TRUE(e.cancel(old_id));
  e.schedule_at(microseconds(20), [&] { fired = true; });  // reuses the slot
  EXPECT_FALSE(e.cancel(old_id));
  e.run();
  EXPECT_TRUE(fired);
}

// Regression: events_pending() used to count cancelled tombstones.
TEST(Engine, EventsPendingCountsLiveEventsOnly) {
  Engine e;
  EXPECT_EQ(e.events_pending(), 0u);
  EventId a = e.schedule_at(microseconds(10), [] {});
  e.schedule_at(microseconds(20), [] {});
  e.schedule_at(microseconds(30), [] {});
  EXPECT_EQ(e.events_pending(), 3u);
  EXPECT_TRUE(e.cancel(a));
  EXPECT_EQ(e.events_pending(), 2u);
  e.run_until(microseconds(20));
  EXPECT_EQ(e.events_pending(), 1u);
  e.run();
  EXPECT_EQ(e.events_pending(), 0u);
}

// Randomized differential test: seeded interleavings of schedules,
// cancellations and partial runs must fire in exactly the strict
// (time, insertion-sequence) order a sorted reference list predicts.
// Mixes monotone bursts (the engine's sorted fast path) with
// out-of-order times and mid-stream cancels (the sift-based heap path).
TEST(Engine, RandomizedOrderingMatchesSortedReference) {
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    std::mt19937 rng(seed);
    Engine e;
    std::vector<int> fired;
    struct ModelEvent {
      SimTime time;
      int label;
      bool cancelled = false;
    };
    std::vector<ModelEvent> model;           // one entry per schedule call
    std::vector<std::pair<int, EventId>> ids;  // (label, id), uncancelled
    std::size_t cancelled_live = 0;

    const auto schedule_one = [&](SimTime t) {
      const int label = static_cast<int>(model.size());
      ids.emplace_back(
          label, e.schedule_at(t, [&fired, label] { fired.push_back(label); }));
      model.push_back(ModelEvent{t, label});
    };

    SimTime horizon = 0;
    for (int round = 0; round < 60; ++round) {
      const int action = static_cast<int>(rng() % 10);
      if (action < 4) {
        // Monotone burst (exercises the sorted fast path).
        SimTime t = std::max<SimTime>(horizon, e.now());
        for (int i = 0; i < 5; ++i) {
          t += static_cast<SimTime>(rng() % 50);
          schedule_one(t);
        }
        horizon = std::max(horizon, t);
      } else if (action < 7) {
        // Out-of-order inserts (exercises the sift-based heap path).
        for (int i = 0; i < 5; ++i) {
          schedule_one(e.now() + static_cast<SimTime>(rng() % 1000));
        }
      } else if (action < 9 && !ids.empty()) {
        // Cancel a random id; successful cancels are mirrored in the
        // model, refused cancels (already fired) leave it untouched.
        const std::size_t pick = rng() % ids.size();
        const auto [label, id] = ids[pick];
        if (e.cancel(id)) {
          model[static_cast<std::size_t>(label)].cancelled = true;
          ++cancelled_live;
        }
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Drain a bounded slice of virtual time.
        e.run_until(e.now() + static_cast<SimTime>(rng() % 500));
      }
      ASSERT_EQ(e.events_pending(),
                model.size() - fired.size() - cancelled_live)
          << "seed " << seed << " round " << round;
    }
    e.run();

    // Expected order: every never-cancelled event, sorted by time with
    // ties broken by schedule order.
    std::vector<ModelEvent> expected_events;
    for (const ModelEvent& ev : model) {
      if (!ev.cancelled) expected_events.push_back(ev);
    }
    std::stable_sort(expected_events.begin(), expected_events.end(),
                     [](const ModelEvent& a, const ModelEvent& b) {
                       return a.time < b.time;
                     });
    std::vector<int> expected;
    expected.reserve(expected_events.size());
    for (const ModelEvent& ev : expected_events) expected.push_back(ev.label);
    EXPECT_EQ(fired, expected) << "seed " << seed;
  }
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(microseconds(10), [&] { order.push_back(1); });
  e.schedule_at(microseconds(30), [&] { order.push_back(2); });
  e.run_until(microseconds(20));
  EXPECT_EQ(order, (std::vector<int>{1}));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, RunUntilOnEmptyQueueAdvancesClock) {
  Engine e;
  e.run_until(microseconds(100));
  EXPECT_EQ(e.now(), microseconds(100));
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_after(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
}

}  // namespace
}  // namespace odmpi::sim
