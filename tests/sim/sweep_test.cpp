// SweepRunner determinism and aggregation tests.
//
// The load-bearing property: a sweep's per-config results are a pure
// function of the configs — bit-identical digests, statuses, completion
// times and stats whether the sweep ran on 1 thread, on 8 threads, or as
// a plain sequential loop with no runner at all. Anything less means
// cross-World shared state leaked through (intern table, thread_local
// registers, pool arenas) and the parallel batteries can't be trusted.
#include "src/sim/sweep.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/mpi/runtime.h"
#include "src/sim/pool_alloc.h"

namespace odmpi::sim {
namespace {

using mpi::Comm;
using mpi::ConnectionModel;
using mpi::JobOptions;
using mpi::RunStatus;

// A small but layer-crossing workload: neighbor exchange (connects
// channels), a wildcard receive fan-in (matching), one collective.
void workload(Comm& c) {
  const int np = c.size();
  const int r = c.rank();
  std::int32_t v = r;
  std::int32_t in = -1;
  c.sendrecv(&v, 1, mpi::kInt32, (r + 1) % np, 7, &in, 1, mpi::kInt32,
             (r + np - 1) % np, 7);
  EXPECT_EQ(in, (r + np - 1) % np);
  double acc = 0;
  const double mine = r + 1.0;
  c.allreduce(&mine, &acc, 1, mpi::kDouble, mpi::Op::kSum);
  EXPECT_EQ(acc, np * (np + 1) / 2.0);
}

// The 32-config grid: {on-demand, static-p2p} x {4, 8 ranks} x
// {clean, faulted} x 4 seeds — a miniature of the CI fault matrix.
std::vector<SweepConfig> grid_configs() {
  std::vector<SweepConfig> configs;
  const std::uint64_t seeds[] = {1, 2, 0xFA417, 20020925};
  for (ConnectionModel model :
       {ConnectionModel::kOnDemand, ConnectionModel::kStaticPeerToPeer}) {
    for (int np : {4, 8}) {
      for (bool faulted : {false, true}) {
        for (std::uint64_t seed : seeds) {
          SweepConfig cfg;
          cfg.label = std::string(mpi::to_string(model)) + "/np" +
                      std::to_string(np) + (faulted ? "/fault" : "/clean") +
                      "/s" + std::to_string(seed);
          cfg.nranks = np;
          cfg.options.device.connection_model = model;
          cfg.options.seed = seed;
          if (faulted) {
            cfg.options.fault.enabled = true;
            cfg.options.fault.seed = seed;
            cfg.options.fault.control_drop_rate = 0.02;
            cfg.options.fault.data_drop_rate = 0.01;
            cfg.options.fault.duplicate_rate = 0.01;
          }
          cfg.options.trace.enabled = true;
          cfg.body = workload;
          cfg.collect_stats = true;
          cfg.collect_digest = true;
          cfg.collect_reports = true;
          configs.push_back(cfg);
        }
      }
    }
  }
  return configs;
}

// Field-by-field identity of two sweep items (label, status, digests,
// timings, stats, per-rank reports).
void expect_items_identical(const SweepItemResult& a, const SweepItemResult& b,
                            const std::string& what) {
  EXPECT_EQ(a.label, b.label) << what;
  EXPECT_EQ(a.error, b.error) << what << " " << a.label;
  EXPECT_EQ(a.result.status, b.result.status) << what << " " << a.label;
  EXPECT_EQ(a.result.failed_ranks, b.result.failed_ranks)
      << what << " " << a.label;
  EXPECT_EQ(a.result.completion_time, b.result.completion_time)
      << what << " " << a.label;
  EXPECT_EQ(a.mean_init_us, b.mean_init_us) << what << " " << a.label;
  EXPECT_EQ(a.mean_vis_per_process, b.mean_vis_per_process)
      << what << " " << a.label;
  EXPECT_EQ(a.digest, b.digest) << what << " " << a.label;
  EXPECT_EQ(a.stats.all(), b.stats.all()) << what << " " << a.label;
  ASSERT_EQ(a.reports.size(), b.reports.size()) << what << " " << a.label;
  for (std::size_t r = 0; r < a.reports.size(); ++r) {
    EXPECT_EQ(a.reports[r].init_time, b.reports[r].init_time)
        << what << " " << a.label << " rank " << r;
    EXPECT_EQ(a.reports[r].total_time, b.reports[r].total_time)
        << what << " " << a.label << " rank " << r;
    EXPECT_EQ(a.reports[r].vis_created, b.reports[r].vis_created)
        << what << " " << a.label << " rank " << r;
  }
}

TEST(Sweep, ThreadCountInvariance32ConfigGrid) {
  const SweepReport seq = SweepRunner::run_all(grid_configs(), 1);
  const SweepReport par = SweepRunner::run_all(grid_configs(), 8);
  ASSERT_EQ(seq.items.size(), 32u);
  ASSERT_EQ(par.items.size(), 32u);
  for (std::size_t i = 0; i < seq.items.size(); ++i) {
    expect_items_identical(seq.items[i], par.items[i], "threads=1 vs 8");
    EXPECT_FALSE(seq.items[i].digest.empty());
  }
  EXPECT_EQ(seq.ok, par.ok);
  EXPECT_EQ(seq.deadline, par.deadline);
  EXPECT_EQ(seq.rank_failed, par.rank_failed);
  EXPECT_EQ(seq.completion_min, par.completion_min);
  EXPECT_EQ(seq.completion_max, par.completion_max);
  EXPECT_EQ(seq.completion_mean, par.completion_mean);
  EXPECT_EQ(seq.merged_stats.all(), par.merged_stats.all());
  EXPECT_EQ(seq.deadline, 0);
  EXPECT_EQ(seq.errored, 0);
}

TEST(Sweep, MatchesStandaloneSequentialRun) {
  // The same grid run with no SweepRunner at all: plain Worlds on the
  // test's own thread must agree with the 8-thread sweep bit for bit.
  const std::vector<SweepConfig> configs = grid_configs();
  const SweepReport par = SweepRunner::run_all(grid_configs(), 8);
  ASSERT_EQ(par.items.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    mpi::World world(configs[i].nranks, configs[i].options);
    const mpi::RunResult r = world.run_job(configs[i].body);
    const SweepItemResult& item = par.items[i];
    EXPECT_EQ(item.result.status, r.status) << configs[i].label;
    EXPECT_EQ(item.result.failed_ranks, r.failed_ranks) << configs[i].label;
    EXPECT_EQ(item.result.completion_time, r.completion_time)
        << configs[i].label;
    EXPECT_EQ(item.digest, world.tracer().digest()) << configs[i].label;
    EXPECT_EQ(item.stats.all(), world.aggregate_stats().all())
        << configs[i].label;
  }
}

TEST(Sweep, SubmissionOrderPreservedAndLabelsCarried) {
  std::vector<SweepConfig> configs = grid_configs();
  std::vector<std::string> labels;
  labels.reserve(configs.size());
  for (const SweepConfig& c : configs) labels.push_back(c.label);
  const SweepReport rep = SweepRunner::run_all(std::move(configs), 8);
  for (std::size_t i = 0; i < rep.items.size(); ++i) {
    EXPECT_EQ(rep.items[i].label, labels[i]);
  }
}

TEST(Sweep, StatusCountsAndCompletionStats) {
  std::vector<SweepConfig> configs;
  // Two clean runs and one guaranteed deadline (deadline too small for
  // bootstrap), to exercise the status tallies.
  for (int i = 0; i < 2; ++i) {
    SweepConfig cfg;
    cfg.label = "ok" + std::to_string(i);
    cfg.nranks = 2;
    cfg.body = workload;
    configs.push_back(cfg);
  }
  SweepConfig dead;
  dead.label = "deadline";
  dead.nranks = 2;
  dead.options.deadline = 1;  // 1ns: nobody gets through MPI_Init
  dead.body = workload;
  configs.push_back(dead);

  const SweepReport rep = SweepRunner::run_all(std::move(configs), 4);
  EXPECT_EQ(rep.ok, 2);
  EXPECT_EQ(rep.deadline, 1);
  EXPECT_EQ(rep.rank_failed, 0);
  EXPECT_EQ(rep.errored, 0);
  EXPECT_FALSE(rep.all_ok());
  EXPECT_GT(rep.completion_max, 0);
  EXPECT_LE(rep.completion_min, rep.completion_max);
  EXPECT_EQ(rep.items[2].result.status, RunStatus::kDeadline);
}

TEST(Sweep, RunnerIsReusable) {
  SweepRunner runner(4);
  SweepConfig cfg;
  cfg.nranks = 2;
  cfg.body = workload;
  cfg.label = "first";
  runner.submit(cfg);
  const SweepReport first = runner.run();
  ASSERT_EQ(first.items.size(), 1u);
  EXPECT_EQ(first.ok, 1);

  cfg.label = "second";
  runner.submit(cfg);
  runner.submit(cfg);
  const SweepReport second = runner.run();
  ASSERT_EQ(second.items.size(), 2u);
  EXPECT_EQ(second.ok, 2);
}

TEST(Sweep, PerThreadArenaReuseObservable) {
  // Worlds executed back-to-back on one thread must recycle pool blocks:
  // that is the whole point of per-thread arenas in the sweep runner.
  // Run a single-threaded sweep of several Worlds and check the pool
  // reuse counter advanced. (threads=1 executes on this thread.)
  const detail::PoolStats before = detail::pool_stats();
  std::vector<SweepConfig> configs;
  for (int i = 0; i < 4; ++i) {
    SweepConfig cfg;
    cfg.label = "arena" + std::to_string(i);
    cfg.nranks = 4;
    cfg.body = workload;
    configs.push_back(cfg);
  }
  const SweepReport rep = SweepRunner::run_all(std::move(configs), 1);
  EXPECT_EQ(rep.ok, 4);
  const detail::PoolStats after = detail::pool_stats();
  EXPECT_GT(after.reuses, before.reuses)
      << "back-to-back Worlds did not recycle any pooled blocks";
}

}  // namespace
}  // namespace odmpi::sim
