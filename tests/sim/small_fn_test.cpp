#include "src/sim/small_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>

namespace odmpi::sim {
namespace {

// The engine's schedule/fire fast path must never allocate for the
// callables the simulator actually schedules: a `this` pointer plus a
// couple of ids. Compile-time proof for representative shapes.
struct FakeDevice {
  int x = 0;
};
static_assert(SmallFn::stores_inline<decltype([] {})>);
int g_sink = 0;
static_assert(SmallFn::stores_inline<decltype([] { ++g_sink; })>);
static_assert([] {
  FakeDevice* dev = nullptr;
  std::uint64_t cookie = 0;
  std::int64_t when = 0;
  auto fn = [dev, cookie, when] {
    (void)dev;
    (void)cookie;
    (void)when;
  };
  return SmallFn::stores_inline<decltype(fn)>;
}());
// Captures beyond the inline buffer take the (rare) heap fallback.
static_assert(!SmallFn::stores_inline<decltype([big = std::array<char, 64>{}] {
  (void)big;
})>);

TEST(SmallFn, SmallCaptureIsStoredInline) {
  int hits = 0;
  SmallFn fn([&hits] { ++hits; });
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, LargeCaptureFallsBackToHeapAndStillRuns) {
  std::array<std::uint64_t, 16> payload{};
  payload[7] = 42;
  std::uint64_t got = 0;
  SmallFn fn([payload, &got] { got = payload[7]; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(got, 42u);
}

TEST(SmallFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  SmallFn a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
  b.reset();
  EXPECT_EQ(counter.use_count(), 1);  // destroyed exactly once
}

TEST(SmallFn, MoveAssignReleasesPreviousCallable) {
  auto first = std::make_shared<int>(0);
  auto second = std::make_shared<int>(0);
  SmallFn fn([first] { ++*first; });
  fn = SmallFn([second] { ++*second; });
  EXPECT_EQ(first.use_count(), 1);  // old callable destroyed on assign
  fn();
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(*first, 0);
}

}  // namespace
}  // namespace odmpi::sim
