#include "src/sim/stats.h"

#include <gtest/gtest.h>

namespace odmpi::sim {
namespace {

TEST(Stats, AddAndGet) {
  Stats s;
  EXPECT_EQ(s.get("x"), 0);
  s.add("x");
  s.add("x", 4);
  EXPECT_EQ(s.get("x"), 5);
}

TEST(Stats, SetOverwrites) {
  Stats s;
  s.add("g", 10);
  s.set("g", 3);
  EXPECT_EQ(s.get("g"), 3);
}

TEST(Stats, SetMaxKeepsHighWater) {
  Stats s;
  s.set_max("peak", 5);
  s.set_max("peak", 2);
  EXPECT_EQ(s.get("peak"), 5);
  s.set_max("peak", 9);
  EXPECT_EQ(s.get("peak"), 9);
}

TEST(Stats, MergeSums) {
  Stats a, b;
  a.add("n", 2);
  b.add("n", 3);
  b.add("m", 1);
  a.merge(b);
  EXPECT_EQ(a.get("n"), 5);
  EXPECT_EQ(a.get("m"), 1);
}

TEST(Stats, ClearEmpties) {
  Stats s;
  s.add("x");
  s.clear();
  EXPECT_TRUE(s.all().empty());
}

}  // namespace
}  // namespace odmpi::sim
