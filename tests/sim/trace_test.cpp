// Unit tests for sim::Tracer: the disabled path must record and allocate
// nothing, the enabled path must capture spans/instants/counters with
// process-local timestamps, and the digest must be deterministic.
#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/engine.h"
#include "src/sim/process.h"

namespace odmpi::sim {
namespace {

const Stats::Counter kName = Stats::counter("trace.test.event");
const Stats::Counter kOther = Stats::counter("trace.test.other");

TEST(Tracer, DisabledRecordsAndAllocatesNothing) {
  Engine engine;
  Tracer t;  // default-constructed: disabled
  EXPECT_FALSE(t.enabled());

  TraceConfig off;
  off.enabled = false;
  t.configure(off, &engine);
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.on(TraceCat::kMsg));

  t.instant(TraceCat::kMsg, kName, 0);
  t.counter(TraceCat::kMsg, kName, 0, 42);
  t.complete(TraceCat::kFabric, kName, 0, 1, 10, 20);
  const TraceSpanId id = t.begin_span(TraceCat::kConn, kName, 0);
  EXPECT_EQ(id, 0u);
  t.end_span(id);  // null span: must be a harmless no-op

  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.chunk_allocations(), 0u);
  EXPECT_TRUE(t.digest().empty());
}

TEST(Tracer, CategoryMaskFiltersRecords) {
  Engine engine;
  Tracer t;
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.categories = trace_bit(TraceCat::kConn);
  t.configure(cfg, &engine);
  EXPECT_TRUE(t.enabled());
  EXPECT_TRUE(t.on(TraceCat::kConn));
  EXPECT_FALSE(t.on(TraceCat::kMsg));

  t.instant(TraceCat::kMsg, kName, 0);  // masked off
  t.instant(TraceCat::kConn, kName, 0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.event(0).cat, TraceCat::kConn);
}

TEST(Tracer, SpanCapturesProcessLocalInterval) {
  Engine engine;
  Tracer t;
  TraceConfig cfg;
  cfg.enabled = true;
  t.configure(cfg, &engine);

  Process proc(engine, 0, [&] {
    Process* p = Process::current();
    p->advance(nanoseconds(100));
    const TraceSpanId id = t.begin_span(TraceCat::kMsg, kName, /*rank=*/3,
                                        /*peer=*/7, /*a0=*/64, /*a1=*/9);
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(t.event(id - 1).open);
    p->advance(nanoseconds(250));
    t.end_span(id);
  });
  proc.start();
  engine.run();

  ASSERT_EQ(t.size(), 1u);
  const Tracer::Event& e = t.event(0);
  EXPECT_EQ(e.ph, 'X');
  EXPECT_EQ(e.ts, nanoseconds(100));
  EXPECT_EQ(e.dur, nanoseconds(250));
  EXPECT_EQ(e.rank, 3);
  EXPECT_EQ(e.peer, 7);
  EXPECT_EQ(e.a0, 64);
  EXPECT_EQ(e.a1, 9);
  EXPECT_TRUE(e.name == kName);
  EXPECT_FALSE(e.open);
}

TEST(Tracer, DigestIsDeterministicAndComplete) {
  Engine engine;
  const auto record = [&](Tracer& t) {
    TraceConfig cfg;
    cfg.enabled = true;
    t.configure(cfg, &engine);
    t.instant_at(TraceCat::kFabric, kName, 0, 1, nanoseconds(5), 128, 2);
    t.complete(TraceCat::kFabric, kOther, 1, 0, nanoseconds(10),
               nanoseconds(30), 256, 0);
    t.counter(TraceCat::kMsg, kName, 0, 17);
  };
  Tracer a;
  Tracer b;
  record(a);
  record(b);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest().find("trace.test.event"), std::string::npos);
  EXPECT_NE(a.digest().find("ts=5"), std::string::npos);
  EXPECT_NE(a.digest().find("a0=256"), std::string::npos);
}

TEST(Tracer, ChromeJsonHasExpectedShape) {
  Engine engine;
  Tracer t;
  TraceConfig cfg;
  cfg.enabled = true;
  t.configure(cfg, &engine);
  t.complete(TraceCat::kConn, kName, 2, 5, nanoseconds(1500),
             nanoseconds(2500), 1, 2);
  t.instant_at(TraceCat::kFabric, kOther, 0, -1, nanoseconds(42));
  t.counter(TraceCat::kMsg, kName, 1, 3);

  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("trace.test.event"), std::string::npos);
  // 1500 ns span start -> 1.500 us, printed with fixed decimals.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
}

TEST(Tracer, ClearReturnsStorageAndResets) {
  Engine engine;
  Tracer t;
  TraceConfig cfg;
  cfg.enabled = true;
  t.configure(cfg, &engine);
  // Cross a chunk boundary to exercise multi-chunk storage.
  for (int i = 0; i < 1500; ++i) {
    t.instant_at(TraceCat::kMsg, kName, 0, -1, nanoseconds(i));
  }
  EXPECT_EQ(t.size(), 1500u);
  EXPECT_GE(t.chunk_allocations(), 2u);
  EXPECT_EQ(t.event(1200).ts, nanoseconds(1200));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.digest().empty());
}

}  // namespace
}  // namespace odmpi::sim
