#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace odmpi::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(123, 0), b(123, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BoolRespectsProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 42;
  auto a = splitmix64(s);
  auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace odmpi::sim
