// MPI-layer fault-injection tests: NAS kernels still verify when the
// connection handshake packets are lossy (on-demand management retries),
// eager data loss is recovered by reliable delivery, a totally
// unreachable peer surfaces kTimeout on the affected requests instead of
// hanging the job, and a faulted run replays bit-for-bit from its seed.
//
// The CI fault matrix re-runs these under several seeds via the
// ODMPI_FAULT_SEED environment variable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/nas/common.h"
#include "src/sim/sweep.h"
#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using nas::KernelResult;
using testing::make_options;

/// Seed for this run: ODMPI_FAULT_SEED if set (the CI matrix), else fixed.
std::uint64_t fault_seed() {
  if (const char* env = std::getenv("ODMPI_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xFA417;
}

JobOptions faulty_options(double control_drop, double data_drop = 0.0,
                          ConnectionModel model = ConnectionModel::kOnDemand) {
  JobOptions opt = make_options(model);
  opt.fault.enabled = true;
  opt.fault.seed = fault_seed();
  opt.fault.control_drop_rate = control_drop;
  opt.fault.data_drop_rate = data_drop;
  return opt;
}

KernelResult run_kernel_with_faults(const char* kernel, int nprocs,
                                    const JobOptions& opt) {
  World world(nprocs, opt);
  KernelResult result;
  EXPECT_TRUE(world.run_job([&](Comm& comm) {
    KernelResult r = nas::kernel_by_name(kernel)(comm, nas::Class::S);
    if (comm.rank() == 0) result = r;
  })) << kernel << " deadlocked under faults";
  return result;
}

struct LossyKernelCase {
  const char* kernel;
  int nprocs;
  double control_drop;
};

// ISSUE acceptance: CG and MG at 8 ranks verify under 1% and 5% loss of
// connection-handshake control packets with on-demand management. The
// retries show up in the stats; the numerics must be untouched. All four
// kernel x loss-rate cells run as one parallel sweep.
TEST(LossyHandshake, NasKernelsVerifyUnderControlLoss) {
  const std::vector<LossyKernelCase> cases = {
      {"CG", 8, 0.01}, {"CG", 8, 0.05}, {"MG", 8, 0.01}, {"MG", 8, 0.05}};
  std::vector<KernelResult> results(cases.size());  // sized once: stable
  std::vector<sim::SweepConfig> configs;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const LossyKernelCase& p = cases[i];
    sim::SweepConfig cfg;
    cfg.label = std::string(p.kernel) + "_drop" +
                std::to_string(static_cast<int>(p.control_drop * 100));
    cfg.nranks = p.nprocs;
    cfg.options = faulty_options(p.control_drop);
    cfg.collect_stats = true;
    KernelResult* out = &results[i];
    const char* kernel = p.kernel;
    cfg.body = [kernel, out](Comm& comm) {
      KernelResult r = nas::kernel_by_name(kernel)(comm, nas::Class::S);
      if (comm.rank() == 0) *out = r;
    };
    configs.push_back(std::move(cfg));
  }
  const sim::SweepReport rep = sim::SweepRunner::run_all(std::move(configs), 0);
  ASSERT_EQ(rep.items.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const sim::SweepItemResult& item = rep.items[i];
    SCOPED_TRACE(item.label);
    ASSERT_TRUE(item.ok()) << item.label << " deadlocked under "
                           << cases[i].control_drop
                           << " control-packet loss: " << item.error;
    EXPECT_TRUE(results[i].verified)
        << item.label << " mis-verified under handshake loss";
    EXPECT_EQ(item.stats.get("mpi.channel_failures"), 0)
        << "recoverable loss rate must not kill channels";
  }
}

// Static peer-to-peer management also retries its MPI_Init handshake storm.
TEST(FaultConn, StaticPeerToPeerSurvivesControlLoss) {
  JobOptions opt =
      faulty_options(0.05, 0.0, ConnectionModel::kStaticPeerToPeer);
  KernelResult r = run_kernel_with_faults("CG", 8, opt);
  EXPECT_TRUE(r.verified);
}

// Eager data packets lost on the wire are retransmitted transparently:
// a ping-pong chain delivers every payload intact.
TEST(FaultConn, EagerDataLossIsRecoveredByReliableDelivery) {
  JobOptions opt = faulty_options(0.0, /*data_drop=*/0.03);
  World world(2, opt);
  constexpr int kRounds = 100;
  constexpr int kCount = 256;
  ASSERT_TRUE(world.run_job([&](Comm& comm) {
    std::vector<double> buf(kCount);
    for (int r = 0; r < kRounds; ++r) {
      if (comm.rank() == 0) {
        for (int i = 0; i < kCount; ++i) buf[i] = r * 1000 + i;
        comm.send(buf.data(), kCount, kDouble, 1, r);
      } else {
        std::fill(buf.begin(), buf.end(), -1.0);
        MsgStatus st = comm.recv(buf.data(), kCount, kDouble, 0, r);
        ASSERT_EQ(st.count_bytes, kCount * sizeof(double));
        for (int i = 0; i < kCount; ++i) {
          ASSERT_EQ(buf[i], r * 1000 + i) << "payload corrupted at " << i;
        }
      }
    }
  }));
  auto stats = world.aggregate_stats();
  // Every payload arrived intact, so any packet the plan dropped must
  // have been recovered by a retransmission. (Whether drops occur at all
  // depends on the seed; the consistency must hold for every seed.)
  if (stats.get("fault.dropped_data") > 0) {
    EXPECT_GT(stats.get("via.retransmits"), 0)
        << "data was dropped but never retransmitted";
  }
  EXPECT_EQ(stats.get("mpi.channel_failures"), 0);
}

// A peer whose link is completely dead: the job completes (no hang), the
// requests touching that peer fail with kTimeout, everything else works.
TEST(FaultConn, UnreachablePeerFailsRequestsInsteadOfHanging) {
  JobOptions opt = make_options(ConnectionModel::kOnDemand);
  opt.fault.enabled = true;
  opt.fault.seed = fault_seed();
  opt.fault.block_pair(0, 1);
  World world(2, opt);
  // The run finishes degraded (kRankFailed: both ranks saw the dead
  // channel); only a deadline means the dead link hung somebody.
  const RunResult dead_link = world.run_job([&](Comm& comm) {
    double x = comm.rank();
    if (comm.rank() == 0) {
      Request req = comm.isend(&x, 1, kDouble, 1, 7);
      req.wait();
      EXPECT_TRUE(req.failed()) << "send to unreachable peer must fail";
      EXPECT_EQ(req.error(), via::Status::kTimeout);
      // Subsequent traffic to the dead peer fails fast.
      Request again = comm.isend(&x, 1, kDouble, 1, 8);
      again.wait();
      EXPECT_TRUE(again.failed());
    } else {
      Request req = comm.irecv(&x, 1, kDouble, 0, 7);
      req.wait();
      EXPECT_TRUE(req.failed()) << "recv from unreachable peer must fail";
      EXPECT_EQ(req.error(), via::Status::kTimeout);
    }
  });
  ASSERT_NE(dead_link.status, RunStatus::kDeadline)
      << "dead link must surface errors, not deadlock: "
      << dead_link.summary();
  auto stats = world.aggregate_stats();
  EXPECT_GE(stats.get("mpi.channel_failures"), 2);
  EXPECT_GE(stats.get("conn.timeouts"), 1);
}

// 100% control loss (handshakes can never complete, data path nominally
// fine): same contract — clean kTimeout, not a hang.
TEST(FaultConn, TotalHandshakeLossTimesOutCleanly) {
  JobOptions opt = faulty_options(/*control_drop=*/1.0);
  World world(2, opt);
  // Finishes kRankFailed — the handshake can never complete, so both
  // ranks time out their requests and finalize; a deadline is the hang
  // this test exists to rule out.
  const RunResult lost = world.run_job([&](Comm& comm) {
    double x = 42.0;
    if (comm.rank() == 0) {
      Request req = comm.isend(&x, 1, kDouble, 1, 1);
      req.wait();
      EXPECT_TRUE(req.failed());
      EXPECT_EQ(req.error(), via::Status::kTimeout);
    } else {
      Request req = comm.irecv(&x, 1, kDouble, 0, 1);
      req.wait();
      EXPECT_TRUE(req.failed());
    }
  });
  ASSERT_NE(lost.status, RunStatus::kDeadline) << lost.summary();
  auto stats = world.aggregate_stats();
  // Both on-demand attempts burned the full VIA retry budget repeatedly.
  EXPECT_GE(stats.get("mpi.connect_reattempts"), 1);
  EXPECT_GE(stats.get("mpi.connect_failures"), 1);
}

// Same seed, same config => bit-identical fault schedule, stats and
// virtual completion time. This is the property the CI seed matrix and
// any bisection of a fault-triggered bug rely on.
TEST(FaultConn, FaultedRunReplaysBitForBit) {
  auto run_once = [](std::uint64_t seed, sim::SimTime* when) {
    JobOptions opt = make_options(ConnectionModel::kOnDemand);
    opt.fault.enabled = true;
    opt.fault.seed = seed;
    opt.fault.control_drop_rate = 0.05;
    opt.fault.data_drop_rate = 0.02;
    opt.fault.duplicate_rate = 0.02;
    opt.fault.delay_rate = 0.1;
    World world(4, opt);
    KernelResult result;
    EXPECT_TRUE(world.run_job([&](Comm& comm) {
      KernelResult r = nas::kernel_by_name("CG")(comm, nas::Class::S);
      if (comm.rank() == 0) result = r;
    }));
    EXPECT_TRUE(result.verified);
    *when = world.completion_time();
    return world.aggregate_stats().all();
  };

  const std::uint64_t seed = fault_seed();
  sim::SimTime t1 = 0, t2 = 0;
  const auto s1 = run_once(seed, &t1);
  const auto s2 = run_once(seed, &t2);
  EXPECT_EQ(s1, s2) << "fault replay diverged: stats differ";
  EXPECT_EQ(t1, t2) << "fault replay diverged: completion time differs";
}

}  // namespace
}  // namespace odmpi::mpi
