// Point-to-point semantics: modes, wildcards, ordering, protocols.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::ConfigParam;
using testing::full_matrix;
using testing::make_options;
using testing::param_name;
using testing::run_or_die;

class Pt2PtMatrix : public ::testing::TestWithParam<ConfigParam> {};

TEST_P(Pt2PtMatrix, PingPongIntegers) {
  run_or_die(2, GetParam().options(), [](Comm& c) {
    std::vector<std::int32_t> buf(16);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 100);
      c.send(buf.data(), 16, kInt32, 1, 7);
      MsgStatus st = c.recv(buf.data(), 16, kInt32, 1, 8);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 8);
      EXPECT_EQ(buf[0], 200);
    } else {
      MsgStatus st = c.recv(buf.data(), 16, kInt32, 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.count_bytes, 64u);
      EXPECT_EQ(buf[15], 115);
      std::iota(buf.begin(), buf.end(), 200);
      c.send(buf.data(), 16, kInt32, 0, 8);
    }
  });
}

TEST_P(Pt2PtMatrix, LargeMessageRendezvous) {
  run_or_die(2, GetParam().options(), [](Comm& c) {
    constexpr int kN = 40000;  // ~160 kB: far beyond the eager threshold
    std::vector<std::int32_t> buf(kN);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0);
      c.send(buf.data(), kN, kInt32, 1, 1);
    } else {
      c.recv(buf.data(), kN, kInt32, 0, 1);
      for (int i = 0; i < kN; i += 997) EXPECT_EQ(buf[i], i);
      EXPECT_EQ(buf[kN - 1], kN - 1);
    }
  });
}

TEST_P(Pt2PtMatrix, MultiSegmentEagerMessage) {
  // Between one eager segment (~3776 B) and the threshold (5000 B).
  run_or_die(2, GetParam().options(), [](Comm& c) {
    constexpr int kN = 1200;  // 4800 bytes -> two eager segments
    std::vector<std::int32_t> buf(kN);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 5);
      c.send(buf.data(), kN, kInt32, 1, 2);
    } else {
      c.recv(buf.data(), kN, kInt32, 0, 2);
      EXPECT_EQ(buf[0], 5);
      EXPECT_EQ(buf[kN - 1], 5 + kN - 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, Pt2PtMatrix,
                         ::testing::ValuesIn(full_matrix()), param_name);

TEST(Pt2Pt, NonOvertakingManyMessagesSamePair) {
  run_or_die(2, make_options(), [](Comm& c) {
    constexpr int kMsgs = 200;
    if (c.rank() == 0) {
      for (std::int32_t i = 0; i < kMsgs; ++i) {
        c.send(&i, 1, kInt32, 1, /*tag=*/5);
      }
    } else {
      for (std::int32_t i = 0; i < kMsgs; ++i) {
        std::int32_t v = -1;
        c.recv(&v, 1, kInt32, 0, 5);
        EXPECT_EQ(v, i) << "messages overtook each other";
      }
    }
  });
}

TEST(Pt2Pt, NonOvertakingAcrossEagerAndRendezvous) {
  // A short eager message sent after a long rendezvous message to the
  // same (dst, tag) must still be received second.
  run_or_die(2, make_options(), [](Comm& c) {
    std::vector<std::int32_t> big(30000, 1);
    std::int32_t small = 2;
    if (c.rank() == 0) {
      Request r1 = c.isend(big.data(), 30000, kInt32, 1, 3);
      Request r2 = c.isend(&small, 1, kInt32, 1, 3);
      r1.wait();
      r2.wait();
    } else {
      std::vector<std::int32_t> rbig(30000, 0);
      std::int32_t rsmall = 0;
      MsgStatus st1 = c.recv(rbig.data(), 30000, kInt32, 0, 3);
      MsgStatus st2 = c.recv(&rsmall, 1, kInt32, 0, 3);
      EXPECT_EQ(st1.count_bytes, 30000u * 4);
      EXPECT_EQ(st2.count_bytes, 4u);
      EXPECT_EQ(rbig[12345], 1);
      EXPECT_EQ(rsmall, 2);
    }
  });
}

TEST(Pt2Pt, AnySourceReceivesFromAll) {
  run_or_die(4, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<bool> seen(4, false);
      for (int i = 0; i < 3; ++i) {
        std::int32_t v = -1;
        MsgStatus st = c.recv(&v, 1, kInt32, kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source);
        EXPECT_EQ(st.tag, 40 + st.source);
        seen[static_cast<std::size_t>(st.source)] = true;
      }
      EXPECT_TRUE(seen[1] && seen[2] && seen[3]);
    } else {
      std::int32_t me = c.rank();
      c.send(&me, 1, kInt32, 0, 40 + me);
    }
  });
}

TEST(Pt2Pt, AnyTagMatchesFirstArrival) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t a = 1, b = 2;
      c.send(&a, 1, kInt32, 1, 100);
      c.send(&b, 1, kInt32, 1, 200);
    } else {
      std::int32_t v = 0;
      MsgStatus st = c.recv(&v, 1, kInt32, 0, kAnyTag);
      EXPECT_EQ(st.tag, 100);
      EXPECT_EQ(v, 1);
      st = c.recv(&v, 1, kInt32, 0, kAnyTag);
      EXPECT_EQ(st.tag, 200);
      EXPECT_EQ(v, 2);
    }
  });
}

TEST(Pt2Pt, TagSelectionSkipsNonMatching) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t a = 1, b = 2;
      c.send(&a, 1, kInt32, 1, 100);
      c.send(&b, 1, kInt32, 1, 200);
    } else {
      std::int32_t v = 0;
      // Receive the *second* message first by tag.
      c.recv(&v, 1, kInt32, 0, 200);
      EXPECT_EQ(v, 2);
      c.recv(&v, 1, kInt32, 0, 100);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Pt2Pt, SynchronousSendCompletesOnlyWhenMatched) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t v = 7;
      const double t0 = c.wtime();
      c.ssend(&v, 1, kInt32, 1, 1);  // receiver posts after 5 ms
      const double elapsed = c.wtime() - t0;
      EXPECT_GT(elapsed, 4e-3) << "ssend returned before the matching recv";
    } else {
      sim::Process::current()->sleep(sim::milliseconds(5));
      std::int32_t v = 0;
      c.recv(&v, 1, kInt32, 0, 1);
      EXPECT_EQ(v, 7);
    }
  });
}

TEST(Pt2Pt, BufferedSendIsLocalAndBufferReusable) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t v = 11;
      const double t0 = c.wtime();
      c.bsend(&v, 1, kInt32, 1, 1);
      const double elapsed = c.wtime() - t0;
      EXPECT_LT(elapsed, 1e-3) << "bsend must complete locally";
      v = 999;  // overwrite: the copy must already be taken
      std::int32_t ack = 0;
      c.recv(&ack, 1, kInt32, 1, 2);
      EXPECT_EQ(ack, 11);
    } else {
      sim::Process::current()->sleep(sim::milliseconds(5));
      std::int32_t v = 0;
      c.recv(&v, 1, kInt32, 0, 1);
      c.send(&v, 1, kInt32, 0, 2);
    }
  });
}

TEST(Pt2Pt, SelfSendAndRecv) {
  run_or_die(1, make_options(), [](Comm& c) {
    std::int32_t out = 42, in = 0;
    Request r = c.irecv(&in, 1, kInt32, 0, 9);
    c.send(&out, 1, kInt32, 0, 9);
    MsgStatus st = r.wait();
    EXPECT_EQ(in, 42);
    EXPECT_EQ(st.source, 0);
  });
}

TEST(Pt2Pt, SelfSsendUnblocksOnMatch) {
  run_or_die(1, make_options(), [](Comm& c) {
    std::int32_t out = 5, in = 0;
    Request s = c.issend(&out, 1, kInt32, 0, 1);
    EXPECT_FALSE(s.test());  // no receive posted yet
    c.recv(&in, 1, kInt32, 0, 1);
    EXPECT_TRUE(s.test());
    EXPECT_EQ(in, 5);
  });
}

TEST(Pt2Pt, ProcNullIsNoOp) {
  run_or_die(1, make_options(), [](Comm& c) {
    std::int32_t v = 3;
    c.send(&v, 1, kInt32, kProcNull, 0);
    MsgStatus st = c.recv(&v, 1, kInt32, kProcNull, 0);
    EXPECT_EQ(st.source, kProcNull);
    EXPECT_EQ(st.count_bytes, 0u);
    EXPECT_EQ(v, 3);  // untouched
  });
}

TEST(Pt2Pt, TruncationFlagsOversizedEager) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::int32_t> big(100, 9);
      c.send(big.data(), 100, kInt32, 1, 1);
    } else {
      std::vector<std::int32_t> small(10, 0);
      Request r = c.irecv(small.data(), 10, kInt32, 0, 1);
      MsgStatus st = r.wait();
      EXPECT_EQ(st.count_bytes, 400u);  // full envelope size reported
      EXPECT_TRUE(r.state()->truncated);
      EXPECT_EQ(small[9], 9);  // the part that fit arrived intact
    }
  });
}

TEST(Pt2Pt, ZeroByteMessageCarriesEnvelope) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      c.send(nullptr, 0, kByte, 1, 77);
    } else {
      MsgStatus st = c.recv(nullptr, 0, kByte, 0, 77);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 77);
      EXPECT_EQ(st.count_bytes, 0u);
    }
  });
}

TEST(Pt2Pt, SendrecvExchanges) {
  run_or_die(2, make_options(), [](Comm& c) {
    std::int32_t out = c.rank() * 10, in = -1;
    const int other = 1 - c.rank();
    c.sendrecv(&out, 1, kInt32, other, 1, &in, 1, kInt32, other, 1);
    EXPECT_EQ(in, other * 10);
  });
}

TEST(Pt2Pt, ProbeSeesEnvelopeWithoutConsuming) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t v = 13;
      c.send(&v, 1, kInt32, 1, 55);
    } else {
      MsgStatus st = c.probe(kAnySource, kAnyTag);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 55);
      EXPECT_EQ(st.count_bytes, 4u);
      std::int32_t v = 0;
      c.recv(&v, 1, kInt32, st.source, st.tag);
      EXPECT_EQ(v, 13);
    }
  });
}

TEST(Pt2Pt, IprobeReturnsFalseWhenNothingArrived) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 1) {
      EXPECT_FALSE(c.iprobe(0, 1));
    }
    c.barrier();
    if (c.rank() == 0) {
      std::int32_t v = 1;
      c.send(&v, 1, kInt32, 1, 1);
    } else {
      std::int32_t v = 0;
      c.recv(&v, 1, kInt32, 0, 1);
    }
  });
}

TEST(Pt2Pt, WaitAnyFindsTheArrivedRequest) {
  run_or_die(3, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t a = 0, b = 0;
      std::vector<Request> reqs;
      reqs.push_back(c.irecv(&a, 1, kInt32, 1, 1));
      reqs.push_back(c.irecv(&b, 1, kInt32, 2, 2));
      const std::size_t first = wait_any(reqs);
      EXPECT_EQ(first, 1u);  // rank 2 sends immediately, rank 1 sleeps
      wait_all(reqs);
      EXPECT_EQ(a, 100);
      EXPECT_EQ(b, 200);
    } else if (c.rank() == 1) {
      sim::Process::current()->sleep(sim::milliseconds(10));
      std::int32_t v = 100;
      c.send(&v, 1, kInt32, 0, 1);
    } else {
      std::int32_t v = 200;
      c.send(&v, 1, kInt32, 0, 2);
    }
  });
}

TEST(Pt2Pt, ManyOutstandingIrecvsCompleteInPostOrderPerTag) {
  run_or_die(2, make_options(), [](Comm& c) {
    constexpr int kN = 50;
    if (c.rank() == 0) {
      for (std::int32_t i = 0; i < kN; ++i) c.send(&i, 1, kInt32, 1, 4);
    } else {
      std::vector<std::int32_t> vals(kN, -1);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(c.irecv(&vals[static_cast<std::size_t>(i)], 1, kInt32,
                               0, 4));
      }
      wait_all(reqs);
      for (std::int32_t i = 0; i < kN; ++i)
        EXPECT_EQ(vals[static_cast<std::size_t>(i)], i);
    }
  });
}

TEST(Pt2Pt, CreditExhaustionRecoversUnderFlood) {
  // 200 one-way eager messages >> the 32-credit window: flow control must
  // stall and resume without loss or reordering.
  run_or_die(2, make_options(), [](Comm& c) {
    constexpr int kN = 200;
    if (c.rank() == 0) {
      std::vector<Request> reqs;
      for (std::int32_t i = 0; i < kN; ++i) {
        std::vector<std::int32_t> payload(64, i);
        c.bsend(payload.data(), 64, kInt32, 1, 6);  // buffered: fire & forget
      }
      std::int32_t done = 0;
      c.recv(&done, 1, kInt32, 1, 7);
      EXPECT_EQ(done, kN);
    } else {
      std::vector<std::int32_t> buf(64);
      for (std::int32_t i = 0; i < kN; ++i) {
        c.recv(buf.data(), 64, kInt32, 0, 6);
        ASSERT_EQ(buf[0], i);
        ASSERT_EQ(buf[63], i);
      }
      std::int32_t done = kN;
      c.send(&done, 1, kInt32, 0, 7);
    }
  });
}

TEST(Pt2Pt, NoViaLevelDropsInCorrectPrograms) {
  JobOptions opt = make_options();
  World w(4, opt);
  ASSERT_TRUE(w.run_job([](Comm& c) {
    // A little of everything.
    std::vector<std::int32_t> data(2000, c.rank());
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    c.sendrecv(data.data(), 2000, kInt32, right, 1, data.data(), 2000, kInt32,
               left, 1);
    c.barrier();
  }));
  sim::Stats total = w.aggregate_stats();
  EXPECT_EQ(total.get("msg.dropped_no_desc"), 0)
      << "flow control failed: VIA dropped a message with no descriptor";
}

}  // namespace
}  // namespace odmpi::mpi
