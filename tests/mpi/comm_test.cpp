// Communicator management: dup, split, context isolation.
#include <gtest/gtest.h>

#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;
using testing::run_or_die;

TEST(CommMgmt, DupIsolatesTraffic) {
  run_or_die(2, make_options(), [](Comm& c) {
    Comm d = c.dup();
    EXPECT_NE(d.context(), c.context());
    EXPECT_EQ(d.rank(), c.rank());
    EXPECT_EQ(d.size(), c.size());
    // A message on `c` must not match a receive on `d`.
    if (c.rank() == 0) {
      std::int32_t a = 1, b = 2;
      c.send(&a, 1, kInt32, 1, 5);
      d.send(&b, 1, kInt32, 1, 5);
    } else {
      std::int32_t v = -1;
      d.recv(&v, 1, kInt32, 0, 5);
      EXPECT_EQ(v, 2) << "receive on dup matched the original comm's send";
      c.recv(&v, 1, kInt32, 0, 5);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(CommMgmt, SplitEvenOdd) {
  run_or_die(8, make_options(), [](Comm& c) {
    Comm half = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(half.valid());
    EXPECT_EQ(half.size(), 4);
    EXPECT_EQ(half.rank(), c.rank() / 2);
    // Collective inside the sub-communicator.
    const std::int64_t sum = half.allreduce_one<std::int64_t>(c.rank(),
                                                              Op::kSum);
    const std::int64_t expect = (c.rank() % 2 == 0) ? 0 + 2 + 4 + 6
                                                    : 1 + 3 + 5 + 7;
    EXPECT_EQ(sum, expect);
  });
}

TEST(CommMgmt, SplitKeyOrdersRanks) {
  run_or_die(4, make_options(), [](Comm& c) {
    // Reverse order by key.
    Comm rev = c.split(0, -c.rank());
    ASSERT_TRUE(rev.valid());
    EXPECT_EQ(rev.rank(), c.size() - 1 - c.rank());
  });
}

TEST(CommMgmt, SplitNegativeColorYieldsInvalid) {
  run_or_die(4, make_options(), [](Comm& c) {
    const int color = (c.rank() == 3) ? -1 : 0;
    Comm sub = c.split(color, 0);
    if (c.rank() == 3) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
      sub.barrier();
    }
  });
}

TEST(CommMgmt, RanksTranslateThroughSubComm) {
  run_or_die(6, make_options(), [](Comm& c) {
    // Group {4, 5} via split; inside it, rank 0 is world rank 4.
    Comm sub = c.split(c.rank() >= 4 ? 1 : -1, c.rank());
    if (c.rank() < 4) return;
    ASSERT_TRUE(sub.valid());
    if (sub.rank() == 0) {
      std::int32_t v = 99;
      sub.send(&v, 1, kInt32, 1, 1);
    } else {
      std::int32_t v = -1;
      MsgStatus st = sub.recv(&v, 1, kInt32, kAnySource, 1);
      EXPECT_EQ(st.source, 0);  // sub-communicator-relative source
      EXPECT_EQ(v, 99);
    }
  });
}

TEST(CommMgmt, AnySourceInSubCommOnlyConnectsGroup) {
  // The on-demand wildcard rule is scoped to the communicator (paper
  // section 3.5: "all other processes in the specified communicator").
  World w(8, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm& c) {
    Comm sub = c.split(c.rank() < 4 ? 0 : 1, c.rank());
    ASSERT_TRUE(sub.valid());
    sub.barrier();  // establish some membership traffic
    if (c.rank() == 0) {
      std::int32_t v = -1;
      sub.recv(&v, 1, kInt32, kAnySource, 9);
      EXPECT_EQ(v, 42);
    } else if (c.rank() == 1) {
      std::int32_t v = 42;
      sub.send(&v, 1, kInt32, 0, 9);
    }
    c.barrier();
  }));
  // Rank 0's wildcard receive may connect to its sub-communicator (ranks
  // 1-3) plus whatever the split/barriers needed — but never to 5, 6, 7
  // (rank 4 is 0's barrier partner in the world comm: 0 XOR 4).
  EXPECT_LE(w.report(0).vis_created, 5);
}

TEST(CommMgmt, NestedSplitsCompose) {
  run_or_die(8, make_options(), [](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());
    ASSERT_TRUE(half.valid());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    ASSERT_TRUE(quarter.valid());
    EXPECT_EQ(quarter.size(), 2);
    const std::int64_t sum =
        quarter.allreduce_one<std::int64_t>(c.rank(), Op::kSum);
    // Partner is the world-rank neighbour within the pair.
    const int base = (c.rank() / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

}  // namespace
}  // namespace odmpi::mpi
