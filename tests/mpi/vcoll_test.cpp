// Tests for the variable-count collectives and the remaining request
// operations (wait_some / test_all / test_any).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;
using testing::run_or_die;

TEST(VColl, GathervVariableBlocks) {
  run_or_die(5, make_options(), [](Comm& c) {
    const int n = c.size();
    // Rank r contributes r+1 ints valued r.
    std::vector<std::int32_t> mine(static_cast<std::size_t>(c.rank() + 1),
                                   c.rank());
    std::vector<int> counts(static_cast<std::size_t>(n));
    std::vector<int> displs(static_cast<std::size_t>(n));
    int off = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] = r + 1;
      displs[static_cast<std::size_t>(r)] = off;
      off += r + 1;
    }
    std::vector<std::int32_t> all(static_cast<std::size_t>(off), -1);
    c.gatherv(mine.data(), c.rank() + 1, all.data(), counts.data(),
              displs.data(), kInt32, /*root=*/2);
    if (c.rank() == 2) {
      for (int r = 0; r < n; ++r) {
        for (int k = 0; k < r + 1; ++k) {
          EXPECT_EQ(all[static_cast<std::size_t>(
                        displs[static_cast<std::size_t>(r)] + k)],
                    r);
        }
      }
    }
  });
}

TEST(VColl, ScattervInverseOfGatherv) {
  run_or_die(4, make_options(), [](Comm& c) {
    const int n = c.size();
    std::vector<int> counts(static_cast<std::size_t>(n));
    std::vector<int> displs(static_cast<std::size_t>(n));
    int off = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] = 2 * r + 1;
      displs[static_cast<std::size_t>(r)] = off;
      off += 2 * r + 1;
    }
    std::vector<std::int32_t> src;
    if (c.rank() == 0) {
      src.resize(static_cast<std::size_t>(off));
      std::iota(src.begin(), src.end(), 0);
    }
    std::vector<std::int32_t> mine(
        static_cast<std::size_t>(2 * c.rank() + 1), -1);
    c.scatterv(src.data(), counts.data(), displs.data(), mine.data(),
               2 * c.rank() + 1, kInt32, 0);
    for (int k = 0; k < 2 * c.rank() + 1; ++k) {
      EXPECT_EQ(mine[static_cast<std::size_t>(k)],
                displs[static_cast<std::size_t>(c.rank())] + k);
    }
  });
}

TEST(VColl, AllgathervEveryoneSeesAll) {
  run_or_die(6, make_options(), [](Comm& c) {
    const int n = c.size();
    std::vector<int> counts(static_cast<std::size_t>(n));
    std::vector<int> displs(static_cast<std::size_t>(n));
    int off = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] = (r % 3) + 1;
      displs[static_cast<std::size_t>(r)] = off;
      off += counts[static_cast<std::size_t>(r)];
    }
    std::vector<std::int32_t> mine(
        static_cast<std::size_t>(counts[static_cast<std::size_t>(c.rank())]),
        c.rank() * 11);
    std::vector<std::int32_t> all(static_cast<std::size_t>(off), -1);
    c.allgatherv(mine.data(), static_cast<int>(mine.size()), all.data(),
                 counts.data(), displs.data(), kInt32);
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k < counts[static_cast<std::size_t>(r)]; ++k) {
        EXPECT_EQ(all[static_cast<std::size_t>(
                      displs[static_cast<std::size_t>(r)] + k)],
                  r * 11);
      }
    }
  });
}

TEST(RequestOps, WaitSomeReturnsCompletedSubset) {
  run_or_die(3, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t a = 0, b = 0;
      std::vector<Request> reqs;
      reqs.push_back(c.irecv(&a, 1, kInt32, 1, 1));
      reqs.push_back(c.irecv(&b, 1, kInt32, 2, 2));
      const auto done = wait_some(reqs);
      ASSERT_GE(done.size(), 1u);
      EXPECT_EQ(done.front(), 1u);  // rank 2 sends immediately
      wait_all(reqs);
      EXPECT_EQ(a, 10);
      EXPECT_EQ(b, 20);
    } else if (c.rank() == 1) {
      sim::Process::current()->sleep(sim::milliseconds(5));
      std::int32_t v = 10;
      c.send(&v, 1, kInt32, 0, 1);
    } else {
      std::int32_t v = 20;
      c.send(&v, 1, kInt32, 0, 2);
    }
  });
}

TEST(RequestOps, TestAllAndTestAny) {
  run_or_die(2, make_options(), [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t a = 0;
      std::vector<Request> reqs;
      reqs.push_back(c.irecv(&a, 1, kInt32, 1, 1));
      EXPECT_FALSE(test_all(reqs));
      EXPECT_EQ(test_any(reqs), kNoRequest);
      // Spin the progress engine until the message lands.
      c.device().wait_until([&] { return reqs[0].done(); });
      EXPECT_TRUE(test_all(reqs));
      EXPECT_EQ(test_any(reqs), 0u);
      EXPECT_EQ(a, 5);
    } else {
      sim::Process::current()->sleep(sim::milliseconds(2));
      std::int32_t v = 5;
      c.send(&v, 1, kInt32, 0, 1);
    }
  });
}

TEST(Pt2PtExtra, SendrecvReplaceRotatesRing) {
  run_or_die(5, make_options(), [](Comm& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    std::int32_t v = c.rank();
    for (int step = 0; step < 3; ++step) {
      c.sendrecv_replace(&v, 1, kInt32, right, 0, left, 0);
    }
    // After 3 rotations, I hold the value from 3 ranks to my left.
    EXPECT_EQ(v, (c.rank() - 3 + c.size()) % c.size());
  });
}

}  // namespace
}  // namespace odmpi::mpi
