// Differential transport battery for the RDMA tier: the seeded random
// workload (pt2pt eager + rendezvous, wildcard fan-ins, collectives)
// runs on the eager clan baseline and then on the rdma profile in every
// interesting corner — write rendezvous, read (RDMA-read) rendezvous,
// XRC-style shared receive endpoints, connection caps, static
// management, lossy links, and forced all-eager / all-rendezvous
// thresholds. Everything user-visible — payload bytes, receive
// statuses, per-(source,tag) ordering, collective results — must be
// byte-identical to the baseline: the transport tier is transparent or
// it is wrong.
//
// Wildcard receives are the one place arrival *timing* legitimately
// leaks into results (which sender matches first), so for those the
// comparison is the timing-independent contract: the set of matched
// sources and the per-source payloads, not their interleaving. Phase C
// doubles as the ANY_SOURCE-through-one-shared-context property test in
// the shared-endpoint configs.
//
// All configurations execute as ONE parallel sweep in SetUpTestSuite —
// each World is independent, so the battery's wall-clock is the slowest
// single config rather than their sum. Individual TEST_Fs then compare
// cached results. The rank-death property test runs separately (a kill
// run is *supposed* to fail, so it cannot share the all-green sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/sweep.h"
#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

constexpr int kP = 8;
constexpr std::uint64_t kScheduleSeed = 0x0D0C2002ULL;

std::uint64_t fnv1a(const std::byte* data, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic payload byte: a pure function of the message identity,
/// so sender and receiver agree without communicating.
std::byte payload_byte(int src, int tag, std::size_t i) {
  const auto x = static_cast<std::uint64_t>(src) * 1000003ULL +
                 static_cast<std::uint64_t>(tag) * 8191ULL + i;
  return static_cast<std::byte>((x * 2654435761ULL) >> 24);
}

void fill_payload(std::vector<std::byte>& buf, int src, int tag) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = payload_byte(src, tag, i);
  }
}

/// One message of the random phase, generated identically on every rank.
struct ScheduledMsg {
  int src;
  int dst;
  int tag;
  std::size_t bytes;
};

std::vector<ScheduledMsg> make_schedule(std::uint64_t seed, int count) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> rank_d(0, kP - 1);
  // Sizes straddle the 5000 B eager/rendezvous threshold.
  const std::size_t sizes[] = {16, 700, 3800, 6000, 18000};
  std::uniform_int_distribution<int> size_d(0, 4);
  std::vector<ScheduledMsg> sched;
  sched.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    int src = rank_d(rng);
    int dst = rank_d(rng);
    if (dst == src) dst = (dst + 1) % kP;
    sched.push_back({src, dst, 1000 + k,
                     sizes[static_cast<std::size_t>(size_d(rng))]});
  }
  return sched;
}

/// Everything user-visible a rank observed, in a deterministic encoding.
struct RankCapture {
  // Named receives: (source, tag, count_bytes, payload hash) per receive
  // in posted order.
  std::vector<std::uint64_t> named;
  // Wildcard receives: sorted matched sources and an order-independent
  // combined payload hash, per fan-in round.
  std::vector<int> any_sources;
  std::uint64_t any_hash = 0;
  // Collective results.
  std::vector<double> coll;

  bool operator==(const RankCapture&) const = default;
};

void record_named(RankCapture& cap, const MsgStatus& st,
                  const std::vector<std::byte>& buf) {
  cap.named.push_back(static_cast<std::uint64_t>(st.source));
  cap.named.push_back(static_cast<std::uint64_t>(st.tag));
  cap.named.push_back(st.count_bytes);
  cap.named.push_back(fnv1a(buf.data(), st.count_bytes));
}

/// The workload body — same as the eviction battery's, so the two
/// batteries certify the same user-visible contract. Fibers within one
/// World are cooperatively scheduled in one thread, so writing into
/// that World's capture vector needs no locking.
void workload(Comm& comm, std::vector<RankCapture>& captures) {
  const int r = comm.rank();
  RankCapture& cap = captures[static_cast<std::size_t>(r)];

  // Phase A: rotating ring, mixed eager/rendezvous sizes.
  {
    const std::size_t sizes[] = {64, 3000, 9000};
    for (int t = 1; t < kP; ++t) {
      const int dst = (r + t) % kP;
      const int src = (r - t + kP) % kP;
      const std::size_t n = sizes[static_cast<std::size_t>(t) % 3];
      std::vector<std::byte> sbuf(n), rbuf(n);
      fill_payload(sbuf, r, t);
      MsgStatus st = comm.sendrecv(sbuf.data(), static_cast<int>(n), kByte,
                                   dst, t, rbuf.data(), static_cast<int>(n),
                                   kByte, src, t);
      record_named(cap, st, rbuf);
    }
  }

  // Phase B: seeded random sparse traffic, nonblocking, unique tags.
  {
    const auto sched = make_schedule(kScheduleSeed, 48);
    std::vector<Request> reqs;
    std::vector<std::vector<std::byte>> rbufs, sbufs;
    std::vector<std::size_t> my_recvs;  // schedule indices, posted order
    for (std::size_t k = 0; k < sched.size(); ++k) {
      const ScheduledMsg& m = sched[k];
      if (m.dst != r) continue;
      rbufs.emplace_back(m.bytes);
      my_recvs.push_back(k);
      reqs.push_back(comm.irecv(rbufs.back().data(),
                                static_cast<int>(m.bytes), kByte, m.src,
                                m.tag));
    }
    const std::size_t nrecvs = reqs.size();
    for (const ScheduledMsg& m : sched) {
      if (m.src != r) continue;
      sbufs.emplace_back(m.bytes);
      fill_payload(sbufs.back(), m.src, m.tag);
      reqs.push_back(comm.isend(sbufs.back().data(),
                                static_cast<int>(m.bytes), kByte, m.dst,
                                m.tag));
    }
    wait_all(reqs);
    for (std::size_t i = 0; i < nrecvs; ++i) {
      const ScheduledMsg& m = sched[my_recvs[i]];
      MsgStatus st;
      st.source = m.src;
      st.tag = m.tag;
      st.count_bytes = reqs[i].state()->bytes_received;
      record_named(cap, st, rbufs[i]);
    }
  }

  // Phase C: wildcard fan-ins with rotating roots (order-independent
  // record; see the file comment). Under shared_recv_endpoint every
  // arrival at the root funnels through ONE SharedRecvQueue — this is
  // the ANY_SOURCE fan-in property test for the XRC mode.
  for (int t = 0; t < 3; ++t) {
    const int root = (t * 3) % kP;
    const int tag = 500 + t;
    if (r == root) {
      std::vector<int> sources;
      for (int k = 0; k < kP - 1; ++k) {
        std::vector<std::byte> buf(256);
        MsgStatus st = comm.recv(buf.data(), 256, kByte, kAnySource, tag);
        sources.push_back(st.source);
        cap.any_hash += fnv1a(buf.data(), st.count_bytes);
      }
      std::sort(sources.begin(), sources.end());
      cap.any_sources.insert(cap.any_sources.end(), sources.begin(),
                             sources.end());
    } else {
      std::vector<std::byte> buf(256);
      fill_payload(buf, r, tag);
      comm.send(buf.data(), 256, kByte, root, tag);
    }
    comm.barrier();
  }

  // Phase D: collectives.
  {
    const double mine = r * 1.5 + 1.0;
    cap.coll.push_back(comm.allreduce_one(mine, Op::kSum));
    cap.coll.push_back(comm.allreduce_one(mine, Op::kMax));
    std::vector<double> all_in(kP), all_out(kP, -1.0);
    for (int i = 0; i < kP; ++i) all_in[static_cast<std::size_t>(i)] = r * 100.0 + i;
    comm.alltoall(all_in.data(), 1, all_out.data(), kDouble);
    cap.coll.insert(cap.coll.end(), all_out.begin(), all_out.end());
    double root_val = (r == 3) ? 2718.28 : 0.0;
    comm.bcast_one(root_val, 3);
    cap.coll.push_back(root_val);
  }
}

/// Eviction-pressure body: the full-fan-out sendrecv ring under a tight
/// VI budget, with rendezvous-sized payloads so evictions race the
/// rendezvous state machine. Received hashes go into cap.coll, verified
/// after the sweep (no gtest assertions inside a body running on a
/// worker thread).
void pressure_workload(Comm& comm, std::vector<RankCapture>& captures) {
  const int r = comm.rank();
  RankCapture& cap = captures[static_cast<std::size_t>(r)];
  for (int t = 1; t < kP; ++t) {
    const int dst = (r + t) % kP;
    const int src = (r - t + kP) % kP;
    std::vector<std::byte> sbuf(6000), rbuf(6000);
    fill_payload(sbuf, r, t);
    comm.sendrecv(sbuf.data(), 6000, kByte, dst, t, rbuf.data(), 6000, kByte,
                  src, t);
    cap.coll.push_back(static_cast<double>(
        fnv1a(rbuf.data(), rbuf.size()) >> 32));
  }
}

struct RdmaOpt {
  ConnectionModel model = ConnectionModel::kOnDemand;
  RndvMode rndv = RndvMode::kWrite;
  bool shared = false;
  int max_vis = 0;
  std::size_t eager_threshold = 0;  // 0 = keep the default
};

JobOptions rdma_options(const RdmaOpt& o) {
  JobOptions opt = make_options(o.model, via::DeviceProfile::rdma());
  opt.device.rndv_mode = o.rndv;
  opt.device.shared_recv_endpoint = o.shared;
  opt.device.max_vis = o.max_vis;
  if (o.eager_threshold != 0) opt.device.eager_threshold = o.eager_threshold;
  return opt;
}

JobOptions with_faults(JobOptions opt) {
  opt.fault.enabled = true;
  opt.fault.seed = 0xFA417;
  opt.fault.control_drop_rate = 0.02;
  opt.fault.data_drop_rate = 0.01;
  return opt;
}

class RdmaDiff : public ::testing::Test {
 protected:
  struct CaseResult {
    std::vector<RankCapture> captures;
    sim::SweepItemResult item;
  };

  // Every configuration runs once, concurrently, before the first test.
  static void SetUpTestSuite() {
    results_ = new std::map<std::string, CaseResult>();
    std::vector<sim::SweepConfig> configs;
    const auto add = [&](const std::string& label, const JobOptions& opt,
                         bool pressure = false) {
      CaseResult& slot = (*results_)[label];
      slot.captures.resize(kP);
      sim::SweepConfig cfg;
      cfg.label = label;
      cfg.nranks = kP;
      cfg.options = opt;
      cfg.collect_stats = true;
      cfg.collect_reports = true;
      std::vector<RankCapture>* caps = &slot.captures;  // map nodes: stable
      cfg.body = pressure
                     ? std::function<void(Comm&)>(
                           [caps](Comm& c) { pressure_workload(c, *caps); })
                     : std::function<void(Comm&)>(
                           [caps](Comm& c) { workload(c, *caps); });
      configs.push_back(std::move(cfg));
    };
    // The golden: the paper-era eager/write transport on clan.
    add("baseline", make_options(ConnectionModel::kOnDemand));
    // The rdma profile in every corner. Labels name what differs.
    add("rdma-write", rdma_options({}));
    add("rdma-read", rdma_options({.rndv = RndvMode::kRead}));
    add("rdma-read+static",
        rdma_options({.model = ConnectionModel::kStaticPeerToPeer,
                      .rndv = RndvMode::kRead}));
    add("rdma-write+cap4", rdma_options({.max_vis = 4}));
    add("rdma-read+cap4",
        rdma_options({.rndv = RndvMode::kRead, .max_vis = 4}));
    add("rdma-shared", rdma_options({.shared = true}));
    add("rdma-shared+cap4", rdma_options({.shared = true, .max_vis = 4}));
    add("rdma-shared+read",
        rdma_options({.rndv = RndvMode::kRead, .shared = true}));
    // Threshold forcing: every Phase A/B payload eager, or (almost)
    // every one rendezvous — including the 256 B wildcard fan-ins, which
    // then arrive as unexpected RTSes at a shared endpoint.
    add("rdma-eager-all", rdma_options({.eager_threshold = 1 << 20}));
    add("rdma-rndv-all",
        rdma_options({.rndv = RndvMode::kRead, .eager_threshold = 15}));
    // Faults on top: lossy control and data packets force handshake
    // retries, RDMA-read retries, and retransmissions; user-visible
    // results must STILL match the clean eager baseline.
    add("rdma-read+faults",
        with_faults(rdma_options({.rndv = RndvMode::kRead, .max_vis = 4})));
    add("rdma-shared+faults",
        with_faults(rdma_options({.shared = true, .max_vis = 4})));
    // Eviction pressure against the shared pool: rendezvous-heavy ring
    // under a tight cap, so shared-endpoint peers get evicted mid-flow
    // and their grants must drain back to the pool and replay.
    add("pressure-shared-cap4",
        rdma_options({.shared = true, .max_vis = 4}), /*pressure=*/true);
    add("pressure-read-cap2",
        rdma_options({.rndv = RndvMode::kRead, .max_vis = 2}),
        /*pressure=*/true);

    const sim::SweepReport rep =
        sim::SweepRunner::run_all(std::move(configs), 0);
    for (const sim::SweepItemResult& item : rep.items) {
      EXPECT_TRUE(item.ok())
          << item.label << " did not complete: status "
          << static_cast<int>(item.result.status) << " error='" << item.error
          << "'";
      (*results_)[item.label].item = item;
    }
  }

  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const CaseResult& result(const std::string& label) {
    return results_->at(label);
  }

  static void expect_matches_baseline(const std::string& label) {
    const std::vector<RankCapture>& base = result("baseline").captures;
    const std::vector<RankCapture>& got = result(label).captures;
    ASSERT_EQ(got.size(), base.size());
    for (int r = 0; r < kP; ++r) {
      const RankCapture& b = base[static_cast<std::size_t>(r)];
      const RankCapture& g = got[static_cast<std::size_t>(r)];
      EXPECT_EQ(g.named, b.named)
          << label << ": rank " << r << " named-receive records diverged";
      EXPECT_EQ(g.any_sources, b.any_sources)
          << label << ": rank " << r << " wildcard source sets diverged";
      EXPECT_EQ(g.any_hash, b.any_hash)
          << label << ": rank " << r << " wildcard payloads diverged";
      EXPECT_EQ(g.coll, b.coll)
          << label << ": rank " << r << " collective results diverged";
    }
  }

  static std::int64_t total_pinned_peak(const std::string& label) {
    const CaseResult& res = result(label);
    std::int64_t total = 0;
    for (const RankReport& r : res.item.reports) total += r.pinned_bytes_peak;
    return total;
  }

 private:
  static std::map<std::string, CaseResult>* results_;
};

std::map<std::string, RdmaDiff::CaseResult>* RdmaDiff::results_ = nullptr;

TEST_F(RdmaDiff, WriteRendezvousOnRdmaProfileMatchesEagerGolden) {
  expect_matches_baseline("rdma-write");
}

TEST_F(RdmaDiff, ReadRendezvousMatchesEagerGolden) {
  expect_matches_baseline("rdma-read");
}

TEST_F(RdmaDiff, ReadRendezvousUnderStaticManagementMatches) {
  expect_matches_baseline("rdma-read+static");
}

TEST_F(RdmaDiff, WriteRendezvousUnderCap4Matches) {
  expect_matches_baseline("rdma-write+cap4");
}

TEST_F(RdmaDiff, ReadRendezvousUnderCap4Matches) {
  expect_matches_baseline("rdma-read+cap4");
}

TEST_F(RdmaDiff, SharedRecvEndpointMatchesPerPeerWindows) {
  expect_matches_baseline("rdma-shared");
}

TEST_F(RdmaDiff, SharedRecvEndpointUnderCap4Matches) {
  expect_matches_baseline("rdma-shared+cap4");
}

TEST_F(RdmaDiff, SharedRecvEndpointWithReadRendezvousMatches) {
  expect_matches_baseline("rdma-shared+read");
}

TEST_F(RdmaDiff, AllEagerThresholdMatches) {
  expect_matches_baseline("rdma-eager-all");
}

TEST_F(RdmaDiff, AllRendezvousThresholdMatches) {
  expect_matches_baseline("rdma-rndv-all");
}

TEST_F(RdmaDiff, FaultedReadRendezvousStillMatchesCleanBaseline) {
  expect_matches_baseline("rdma-read+faults");
}

TEST_F(RdmaDiff, FaultedSharedEndpointStillMatchesCleanBaseline) {
  expect_matches_baseline("rdma-shared+faults");
}

// The Table-2 claim in miniature: one shared receive pool pins strictly
// less memory than per-peer credit windows, on the same workload, with
// identical results (asserted above).
TEST_F(RdmaDiff, SharedEndpointPinsStrictlyLessThanPerPeer) {
  const std::int64_t per_peer = total_pinned_peak("rdma-write");
  const std::int64_t shared = total_pinned_peak("rdma-shared");
  EXPECT_GT(per_peer, 0);
  EXPECT_GT(shared, 0);
  EXPECT_LT(shared, per_peer)
      << "shared receive pool should pin less than per-peer windows";
}

// Eviction of a shared-endpoint peer: the cap is honored at every poll
// (vis_open_peak is maintained inside Device::poll), evictions actually
// happen, and — per the diff assertions — drained grants replay
// transparently on reconnect.
TEST_F(RdmaDiff, SharedAndReadEvictionsStayUnderBudgetAndReplay) {
  struct Spec {
    const char* label;
    int cap;
  };
  for (const Spec& s : {Spec{"pressure-shared-cap4", 4},
                        Spec{"pressure-read-cap2", 2}}) {
    const CaseResult& res = result(s.label);
    ASSERT_TRUE(res.item.ok());
    // The ring delivered the right payloads (hash of the deterministic
    // pattern from the expected source)...
    for (int r = 0; r < kP; ++r) {
      const RankCapture& rc = res.captures[static_cast<std::size_t>(r)];
      ASSERT_EQ(rc.coll.size(), static_cast<std::size_t>(kP - 1));
      for (int t = 1; t < kP; ++t) {
        const int src = (r - t + kP) % kP;
        std::vector<std::byte> want(6000);
        fill_payload(want, src, t);
        EXPECT_EQ(rc.coll[static_cast<std::size_t>(t - 1)],
                  static_cast<double>(fnv1a(want.data(), want.size()) >> 32))
            << s.label << " rank " << r << " step " << t;
      }
    }
    // ...while every rank stayed under its VI budget and actually evicted.
    ASSERT_EQ(res.item.reports.size(), static_cast<std::size_t>(kP));
    for (int r = 0; r < kP; ++r) {
      EXPECT_LE(res.item.reports[static_cast<std::size_t>(r)].vis_open_peak,
                s.cap)
          << s.label << " cap exceeded on rank " << r;
    }
    EXPECT_GT(res.item.stats.get("mpi.evictions"), 0)
        << s.label << " with 7 peers never evicted";
  }
}

// Rank death over a shared receive context: the victim's silence must be
// detected through the SharedRecvQueue plumbing exactly as it is with
// per-peer windows — survivors finalize with errors, never deadlock.
// Runs outside the batch sweep because a kill run is supposed to fail.
TEST_F(RdmaDiff, RankDeathDetectedOverSharedEndpoint) {
  const sim::SimTime base_time = result("rdma-shared").item.result.completion_time;
  ASSERT_GT(base_time, 0);

  JobOptions opt = rdma_options({.shared = true});
  constexpr int kVictim = 5;
  opt.fault.kill_rank(kVictim, static_cast<sim::SimTime>(base_time * 0.4));
  // Detection is bounded (retry budgets + watchdog); a hung survivor is
  // what blows this, not a slow degraded finish.
  opt.deadline = sim::seconds(60);

  World world(kP, opt);
  // Named ring + collectives only — no wildcard fan-ins. A root counting
  // on an ANY_SOURCE message from the victim would deadlock by
  // construction (real MPI hangs there too); what is under test is that
  // the death propagates through the one shared receive context.
  const RunResult result = world.run_job([](Comm& c) {
    const int r = c.rank();
    for (int t = 1; t < kP; ++t) {
      const int dst = (r + t) % kP;
      const int src = (r - t + kP) % kP;
      std::vector<std::byte> sbuf(3000), rbuf(3000);
      fill_payload(sbuf, r, t);
      c.sendrecv(sbuf.data(), 3000, kByte, dst, t, rbuf.data(), 3000, kByte,
                 src, t);
    }
    for (int it = 0; it < 20; ++it) {
      c.barrier();
      double x = r + it, sum = 0;
      c.allreduce(&x, &sum, 1, kDouble, Op::kSum);
    }
  });

  // A kill degrades the run; it never deadlocks it.
  ASSERT_NE(result.status, RunStatus::kDeadline) << result.summary();
  ASSERT_EQ(result.status, RunStatus::kRankFailed) << result.summary();
  ASSERT_EQ(result.deaths.size(), 1u);
  EXPECT_EQ(result.deaths[0].rank, kVictim);
  EXPECT_EQ(result.failed_ranks, std::vector<int>{kVictim});
  // At least one survivor noticed through its shared receive context.
  EXPECT_FALSE(result.impacted_ranks.empty()) << result.summary();
  for (int r : result.impacted_ranks) {
    EXPECT_NE(r, kVictim);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, kP);
  }
}

}  // namespace
}  // namespace odmpi::mpi
