// Helpers for MPI-layer tests: job options for each (device, connection
// model, wait policy) corner and a run wrapper that asserts completion.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "src/odmpi.h"

namespace odmpi::mpi::testing {

inline JobOptions make_options(
    ConnectionModel model = ConnectionModel::kOnDemand,
    via::DeviceProfile profile = via::DeviceProfile::clan(),
    WaitPolicy policy = WaitPolicy::spinwait(100)) {
  JobOptions opt;
  opt.profile = std::move(profile);
  opt.device.connection_model = model;
  opt.device.wait_policy = policy;
  opt.deadline = sim::seconds(600);  // generous virtual deadlock guard
  return opt;
}

/// Runs `fn` and fails the test unless the job finished cleanly.
inline void run_or_die(int nranks, const JobOptions& opt,
                       const std::function<void(Comm&)>& fn) {
  World world(nranks, opt);
  const RunResult result = world.run_job(fn);
  ASSERT_EQ(result.status, RunStatus::kOk)
      << result.summary() << " (" << to_string(opt.device.connection_model)
      << " on " << opt.profile.name << ")";
}

/// The full experimental matrix of the paper (used by TEST_P suites).
struct ConfigParam {
  ConnectionModel model;
  bool bvia;
  bool polling;

  [[nodiscard]] JobOptions options() const {
    return make_options(model,
                        bvia ? via::DeviceProfile::bvia()
                             : via::DeviceProfile::clan(),
                        polling ? WaitPolicy::polling()
                                : WaitPolicy::spinwait(100));
  }

  friend std::ostream& operator<<(std::ostream& os, const ConfigParam& p) {
    return os << to_string(p.model) << (p.bvia ? "_bvia" : "_clan")
              << (p.polling ? "_polling" : "_spinwait");
  }
};

inline std::string param_name(
    const ::testing::TestParamInfo<ConfigParam>& info) {
  std::string s = to_string(info.param.model);
  for (auto& c : s)
    if (c == '-') c = '_';
  s += info.param.bvia ? "_bvia" : "_clan";
  s += info.param.polling ? "_polling" : "_spinwait";
  return s;
}

inline std::vector<ConfigParam> full_matrix() {
  std::vector<ConfigParam> v;
  for (ConnectionModel m :
       {ConnectionModel::kOnDemand, ConnectionModel::kStaticPeerToPeer,
        ConnectionModel::kStaticClientServer}) {
    for (bool bvia : {false, true}) {
      if (bvia && m == ConnectionModel::kStaticClientServer) continue;
      for (bool polling : {false, true}) v.push_back({m, bvia, polling});
    }
  }
  return v;
}

}  // namespace odmpi::mpi::testing
