// Connection-storm battery: N-1 simultaneous handshakes into one rank.
//
// An MPI_ANY_SOURCE receive on rank 0 makes its on-demand manager connect
// to every peer (section 3.5) at the same virtual instant every peer's
// first send connects back — the worst-case admission backlog the batched
// poll_incoming path (DeviceConfig::admission_batch) exists for. The
// battery holds, at 256 and 1024 ranks, clean and under 1% handshake
// loss:
//   - the storm completes (no deadline) with every payload delivered;
//   - zero retry-budget exhaustions (mpi.connect_failures == 0): batching
//     must delay admissions, never starve one past its VIA retry budget;
//   - identically-seeded storms replay to identical trace digests.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

JobOptions storm_options(double handshake_loss) {
  JobOptions opt = make_options(ConnectionModel::kOnDemand);
  // Trimmed per-channel resources: rank 0 ends the storm holding N-1
  // channels, and the default 32 x 3840 B eager provisioning is memory
  // the 4-byte payloads never use.
  opt.device.credits = 2;
  opt.device.eager_buf_bytes = 128;
  opt.deadline = sim::seconds(3600);  // loss + backoff at 1k ranks is slow
  if (handshake_loss > 0) {
    opt.fault.enabled = true;
    opt.fault.seed = 0x5708;
    opt.fault.control_drop_rate = handshake_loss;
  }
  return opt;
}

// Every rank != 0 sends its id; rank 0 absorbs them via ANY_SOURCE and
// records what arrived.
std::function<void(Comm&)> storm_body(std::vector<std::int32_t>* got) {
  return [got](Comm& c) {
    if (c.rank() == 0) {
      const int n = c.size() - 1;
      std::vector<std::int32_t> in(static_cast<std::size_t>(n), -1);
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        reqs.push_back(c.irecv(&in[static_cast<std::size_t>(i)], 1, kInt32,
                               kAnySource, 7));
      }
      for (Request& r : reqs) r.wait();
      *got = in;
    } else {
      std::int32_t me = c.rank();
      c.send(&me, 1, kInt32, 0, 7);
    }
  };
}

struct StormCase {
  int nranks;
  double loss;
};

class ConnStorm : public ::testing::TestWithParam<StormCase> {};

TEST_P(ConnStorm, AllPayloadsLandWithoutRetryExhaustion) {
  const StormCase& p = GetParam();
  World w(p.nranks, storm_options(p.loss));
  std::vector<std::int32_t> got;
  const RunResult result = w.run_job(storm_body(&got));
  ASSERT_EQ(result.status, RunStatus::kOk) << result.summary();

  // Payload set equality: every sender's id exactly once.
  std::sort(got.begin(), got.end());
  std::vector<std::int32_t> want(static_cast<std::size_t>(p.nranks - 1));
  std::iota(want.begin(), want.end(), 1);
  EXPECT_EQ(got, want);

  // The batched admission path must never push a handshake past its VIA
  // retry budget — batching defers, it does not starve.
  auto stats = w.aggregate_stats();
  EXPECT_EQ(stats.get("mpi.connect_failures"), 0);

  // The ANY_SOURCE fan-out connected rank 0 to everybody; each peer holds
  // exactly its channel to rank 0.
  EXPECT_EQ(w.report(0).vis_created, p.nranks - 1);
  for (int r = 1; r < p.nranks; ++r) {
    EXPECT_EQ(w.report(r).vis_created, 1) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Battery, ConnStorm,
    ::testing::Values(StormCase{256, 0.0}, StormCase{256, 0.01},
                      StormCase{1024, 0.0}, StormCase{1024, 0.01}),
    [](const ::testing::TestParamInfo<StormCase>& tpi) {
      return "np" + std::to_string(tpi.param.nranks) +
             (tpi.param.loss > 0 ? "_lossy" : "_clean");
    });

// Identically-seeded storms are bit-identical: same trace digest across
// two full runs, clean and lossy.
TEST(ConnStormDeterminism, DigestStableAcrossReruns) {
  for (double loss : {0.0, 0.01}) {
    std::string first;
    for (int pass = 0; pass < 2; ++pass) {
      JobOptions opt = storm_options(loss);
      opt.trace.enabled = true;
      World w(256, opt);
      std::vector<std::int32_t> got;
      const RunResult result = w.run_job(storm_body(&got));
      ASSERT_EQ(result.status, RunStatus::kOk) << result.summary();
      const std::string digest = w.tracer().digest();
      if (pass == 0) {
        first = digest;
      } else {
        EXPECT_EQ(digest, first) << "storm not deterministic, loss=" << loss;
      }
    }
  }
}

}  // namespace
}  // namespace odmpi::mpi
