// Rank-death injection battery (DESIGN.md section 12).
//
// The hard invariant under test: a mid-run kill must never end as
// kDeadline. Every surviving rank detects the death (reliable-delivery
// exhaustion, handshake timeout, or watchdog probe), learns of it through
// kPeerFailed gossip, completes its blocked operations with a kPeerFailed
// error instead of hanging, and finalizes. RunResult reports the killed
// ranks (failed_ranks) apart from the degraded survivors
// (impacted_ranks), and the whole failure cascade replays bit-for-bit:
// the trace digest of a killed run is identical across reruns.
//
// The matrix crosses {on-demand, static peer-to-peer, on-demand capped at
// max_vis=4} x 4 seeds (the seed picks the victim) x 2 kill times
// (during/just after init, mid-body) over NAS CG, NAS MG and a collective
// suite. Directed tests cover the ANY_SOURCE-all-dead sweep, named
// receives and sends against a corpse, the eviction-vs-death race, and
// the summary wording.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/nas/common.h"
#include "src/sim/sweep.h"
#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

constexpr int kNp = 8;

enum class KillConfig { kOnDemand, kStaticP2P, kCapped4 };
enum class Workload { kCG, kMG, kColl };

const char* to_string(KillConfig c) {
  switch (c) {
    case KillConfig::kOnDemand:
      return "ondemand";
    case KillConfig::kStaticP2P:
      return "static";
    case KillConfig::kCapped4:
      return "capped4";
  }
  return "?";
}

const char* to_string(Workload w) {
  switch (w) {
    case Workload::kCG:
      return "CG";
    case Workload::kMG:
      return "MG";
    case Workload::kColl:
      return "COLL";
  }
  return "?";
}

JobOptions options_for(KillConfig config) {
  JobOptions opt = make_options(config == KillConfig::kStaticP2P
                                    ? ConnectionModel::kStaticPeerToPeer
                                    : ConnectionModel::kOnDemand);
  if (config == KillConfig::kCapped4) opt.device.max_vis = 4;
  // Detection is bounded (handshake/RD budgets ~tens of ms, watchdog
  // ~3 ms period), so a degraded run finishes well inside this; a hung
  // survivor is what blows it.
  opt.deadline = sim::seconds(60);
  return opt;
}

void run_workload(Workload w, Comm& comm) {
  switch (w) {
    case Workload::kCG:
      nas::run_cg(comm, nas::Class::S);
      return;
    case Workload::kMG:
      nas::run_mg(comm, nas::Class::S);
      return;
    case Workload::kColl: {
      // A few dozen rounds of the main collective shapes: recursive
      // doubling (barrier/allreduce), binomial tree (bcast), pairwise
      // exchange (alltoall).
      std::vector<double> buf(static_cast<std::size_t>(comm.size()), 1.0);
      std::vector<double> out(buf.size(), 0.0);
      for (int it = 0; it < 40; ++it) {
        comm.barrier();
        double x = comm.rank() + it, sum = 0;
        comm.allreduce(&x, &sum, 1, kDouble, Op::kSum);
        comm.bcast(buf.data(), comm.size(), kDouble, it % comm.size());
        comm.alltoall(buf.data(), 1, out.data(), kDouble);
      }
      return;
    }
  }
}

struct KillParam {
  KillConfig config;
  Workload workload;
  std::uint64_t seed;
  double kill_frac;  // kill time as a fraction of the kill-free runtime

  [[nodiscard]] int victim() const {
    // The seed picks the victim; avoid rank 0 so rooted collectives keep
    // a live root more often than not (rank 0 death is covered by seed 7
    // victim arithmetic below landing on various ranks).
    return 1 + static_cast<int>(seed % (kNp - 1));
  }

  friend std::ostream& operator<<(std::ostream& os, const KillParam& p) {
    return os << to_string(p.config) << "_" << to_string(p.workload)
              << "_s" << p.seed << "_f" << static_cast<int>(p.kill_frac * 100);
  }
};

std::vector<KillParam> kill_matrix() {
  std::vector<KillParam> v;
  for (KillConfig c :
       {KillConfig::kOnDemand, KillConfig::kStaticP2P, KillConfig::kCapped4}) {
    for (Workload w : {Workload::kCG, Workload::kMG, Workload::kColl}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        // Two kill times per (config, workload, seed): early (init /
        // first rounds) and mid-body.
        v.push_back({c, w, seed, 0.1});
        v.push_back({c, w, seed, 0.55});
      }
    }
  }
  return v;
}

std::string param_label(const KillParam& p) {
  return std::string(to_string(p.config)) + "_" + to_string(p.workload) +
         "_s" + std::to_string(p.seed) + "_f" +
         std::to_string(static_cast<int>(p.kill_frac * 100));
}

// The 72-case matrix runs as two parallel sweeps instead of 72 serial
// test cases: first the kill-free baselines (one per unique config x
// workload x seed — their completion times place the kills), then every
// killed run. Each killed run's invariants are asserted per item, labeled
// so a failure still names its cell of the matrix.
TEST(RankKillMatrix, SurvivorsFinalize) {
  const std::vector<KillParam> matrix = kill_matrix();

  // Phase 1: kill-free baselines through the sweep runner.
  std::map<std::string, std::size_t> base_index;
  std::vector<sim::SweepConfig> base_configs;
  auto base_key = [](const KillParam& p) {
    return std::string(to_string(p.config)) + "/" + to_string(p.workload) +
           "/s" + std::to_string(p.seed);
  };
  for (const KillParam& p : matrix) {
    const std::string key = base_key(p);
    if (base_index.count(key) != 0) continue;
    base_index[key] = base_configs.size();
    sim::SweepConfig cfg;
    cfg.label = key;
    cfg.nranks = kNp;
    cfg.options = options_for(p.config);
    cfg.options.seed = p.seed;
    const Workload w = p.workload;
    cfg.body = [w](Comm& c) { run_workload(w, c); };
    base_configs.push_back(std::move(cfg));
  }
  const sim::SweepReport base = sim::SweepRunner::run_all(base_configs);
  for (const sim::SweepItemResult& item : base.items) {
    ASSERT_TRUE(item.error.empty()) << item.label << ": " << item.error;
    ASSERT_EQ(item.result.status, RunStatus::kOk)
        << item.label << ": " << item.result.summary();
    ASSERT_GT(item.result.completion_time, 0) << item.label;
  }

  // Phase 2: the killed runs, one sweep config per matrix cell.
  std::vector<sim::SweepConfig> kill_configs;
  kill_configs.reserve(matrix.size());
  for (const KillParam& p : matrix) {
    const sim::SimTime base_time =
        base.items[base_index.at(base_key(p))].result.completion_time;
    sim::SweepConfig cfg;
    cfg.label = param_label(p);
    cfg.nranks = kNp;
    cfg.options = options_for(p.config);
    cfg.options.seed = p.seed;
    cfg.options.fault.kill_rank(
        p.victim(), static_cast<sim::SimTime>(base_time * p.kill_frac));
    const Workload w = p.workload;
    cfg.body = [w](Comm& c) { run_workload(w, c); };
    cfg.collect_reports = true;
    kill_configs.push_back(std::move(cfg));
  }
  const sim::SweepReport killed = sim::SweepRunner::run_all(kill_configs);

  ASSERT_EQ(killed.items.size(), matrix.size());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const KillParam& p = matrix[i];
    const sim::SweepItemResult& item = killed.items[i];
    const RunResult& result = item.result;
    SCOPED_TRACE(item.label);
    ASSERT_TRUE(item.error.empty()) << item.error;

    // The invariant: a kill degrades the run, it never deadlocks it.
    ASSERT_NE(result.status, RunStatus::kDeadline) << result.summary();
    ASSERT_EQ(result.status, RunStatus::kRankFailed) << result.summary();

    // Exactly the scheduled death, at exactly the scheduled time.
    const sim::SimTime kill_time =
        kill_configs[i].options.fault.rank_kills[0].time;
    ASSERT_EQ(result.deaths.size(), 1u);
    EXPECT_EQ(result.deaths[0].rank, p.victim());
    EXPECT_EQ(result.deaths[0].time, kill_time);
    EXPECT_EQ(result.failed_ranks, std::vector<int>{p.victim()});

    // Every survivor finalized; those that saw the death are reported as
    // impacted, sorted, and disjoint from the dead.
    EXPECT_TRUE(std::is_sorted(result.impacted_ranks.begin(),
                               result.impacted_ranks.end()));
    for (int r : result.impacted_ranks) {
      EXPECT_NE(r, p.victim());
      EXPECT_GE(r, 0);
      EXPECT_LT(r, kNp);
    }
    // At least one survivor must have noticed (the victim had live peers).
    EXPECT_FALSE(result.impacted_ranks.empty()) << result.summary();
    // Survivors' reports are complete.
    for (int r = 0; r < kNp; ++r) {
      if (r == p.victim()) continue;
      EXPECT_TRUE(item.reports[static_cast<std::size_t>(r)].finished)
          << "survivor " << r << " hung";
    }
  }
}

// --- Determinism: the failure cascade replays bit-for-bit -------------------

std::string killed_digest(KillConfig config, std::uint64_t seed) {
  JobOptions opt = options_for(config);
  opt.seed = seed;
  opt.trace.enabled = true;
  opt.fault.kill_rank(/*rank=*/3, sim::milliseconds(5));
  World world(kNp, opt);
  const RunResult result =
      world.run_job([&](Comm& c) { run_workload(Workload::kColl, c); });
  EXPECT_EQ(result.status, RunStatus::kRankFailed) << result.summary();
  EXPECT_NE(result.trace, nullptr);
  return world.tracer().digest();
}

TEST(RankKillDeterminism, FailureTraceDigestIdenticalAcrossReruns) {
  for (KillConfig c : {KillConfig::kOnDemand, KillConfig::kStaticP2P}) {
    for (std::uint64_t seed : {11ull, 12ull}) {
      const std::string first = killed_digest(c, seed);
      const std::string second = killed_digest(c, seed);
      EXPECT_FALSE(first.empty());
      EXPECT_EQ(first, second)
          << "failure cascade must replay bit-for-bit (" << to_string(c)
          << ", seed " << seed << ")";
    }
  }
}

TEST(RankKillDeterminism, DifferentSeedsStillFinalize) {
  // Cross-seed variation moves the workload, not the kill handling.
  const std::string a = killed_digest(KillConfig::kOnDemand, 21);
  const std::string b = killed_digest(KillConfig::kOnDemand, 22);
  EXPECT_FALSE(a.empty());
  EXPECT_FALSE(b.empty());
}

// --- Directed degradation tests ---------------------------------------------

TEST(RankKillDegrade, NamedRecvFromCorpseCompletesWithPeerFailed) {
  JobOptions opt = options_for(KillConfig::kOnDemand);
  opt.fault.kill_rank(1, sim::milliseconds(2));
  World world(2, opt);
  const RunResult result = world.run_job([](Comm& c) {
    if (c.rank() != 0) {
      // Rank 1 computes quietly until it is killed; it must not send, or
      // the recv below could complete normally before the death.
      sim::Process::current()->advance(sim::seconds(1));
      return;
    }
    std::int32_t x = 0;
    Request r = c.irecv(&x, 1, kInt32, 1, 7);
    r.wait();
    EXPECT_TRUE(r.done());
    EXPECT_EQ(r.error(), via::Status::kPeerFailed);
  });
  EXPECT_EQ(result.status, RunStatus::kRankFailed) << result.summary();
  EXPECT_EQ(result.failed_ranks, std::vector<int>{1});
}

TEST(RankKillDegrade, AnySourceRecvCompletesOnceAllCandidatesDead) {
  // The latent ANY_SOURCE hang: a wildcard receive whose every possible
  // sender is dead must complete with kPeerFailed, not wait forever.
  JobOptions opt = options_for(KillConfig::kOnDemand);
  opt.fault.kill_rank(1, sim::milliseconds(2));
  opt.fault.kill_rank(2, sim::milliseconds(3));
  World world(3, opt);
  const RunResult result = world.run_job([](Comm& c) {
    if (c.rank() != 0) {
      sim::Process::current()->advance(sim::seconds(1));
      return;
    }
    std::int32_t x = 0;
    Request r = c.irecv(&x, 1, kInt32, kAnySource, 9);
    r.wait();
    EXPECT_TRUE(r.done());
    EXPECT_EQ(r.error(), via::Status::kPeerFailed);
  });
  EXPECT_EQ(result.status, RunStatus::kRankFailed) << result.summary();
  EXPECT_EQ(result.failed_ranks, (std::vector<int>{1, 2}));
}

TEST(RankKillDegrade, SendToCorpseFailsAfterDetection) {
  JobOptions opt = options_for(KillConfig::kOnDemand);
  opt.fault.kill_rank(1, sim::milliseconds(1));
  World world(2, opt);
  const RunResult result = world.run_job([](Comm& c) {
    if (c.rank() != 0) {
      sim::Process::current()->advance(sim::seconds(1));
      return;
    }
    // Give the kill time to land before the first-touch connect.
    sim::Process::current()->advance(sim::milliseconds(2));
    std::int32_t x = 42;
    Request r = c.isend(&x, 1, kInt32, 1, 5);
    r.wait();
    EXPECT_TRUE(r.done());
    EXPECT_EQ(r.error(), via::Status::kPeerFailed);
    // Once the death is known, further operations fail fast.
    Request r2 = c.isend(&x, 1, kInt32, 1, 5);
    EXPECT_TRUE(r2.done());
    EXPECT_EQ(r2.error(), via::Status::kPeerFailed);
  });
  EXPECT_EQ(result.status, RunStatus::kRankFailed) << result.summary();
}

TEST(RankKillDegrade, EvictionChurnWithDeathDoesNotWedge) {
  // Resource-capped round-robin keeps the LRU eviction handshake machinery
  // constantly busy while a peer dies under it: the eviction-vs-death race
  // (an eviction teardown against a corpse) must convert to failure, never
  // wedge the drain.
  JobOptions opt = options_for(KillConfig::kCapped4);
  opt.device.max_vis = 2;
  opt.fault.kill_rank(3, sim::milliseconds(4));
  World world(6, opt);
  const RunResult result = world.run_job([](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t x = 0;
      for (int round = 0; round < 6; ++round) {
        for (int peer = 1; peer < c.size(); ++peer) {
          Request r = c.isend(&x, 1, kInt32, peer, 2);
          r.wait();  // completes normally or with kPeerFailed/kTimeout
        }
      }
    } else {
      std::int32_t x = 0;
      for (int round = 0; round < 6; ++round) {
        Request r = c.irecv(&x, 1, kInt32, 0, 2);
        r.wait();
      }
    }
  });
  ASSERT_NE(result.status, RunStatus::kDeadline) << result.summary();
  EXPECT_EQ(result.failed_ranks, std::vector<int>{3});
}

TEST(RankKillDegrade, CollectiveRoundsCompleteDegraded) {
  // Every survivor's collective rounds complete (with errors under the
  // hood) rather than hanging on the corpse's tree/ring position.
  JobOptions opt = options_for(KillConfig::kStaticP2P);
  opt.fault.kill_rank(2, sim::milliseconds(3));
  World world(4, opt);
  const RunResult result = world.run_job([](Comm& c) {
    for (int it = 0; it < 10; ++it) {
      // A compute slice between rounds keeps the body spanning the kill
      // time (tiny collectives alone finish in microseconds).
      sim::Process::current()->advance(sim::milliseconds(1));
      double x = c.rank(), sum = 0;
      c.allreduce(&x, &sum, 1, kDouble, Op::kSum);
      c.barrier();
    }
  });
  ASSERT_NE(result.status, RunStatus::kDeadline) << result.summary();
  EXPECT_EQ(result.failed_ranks, std::vector<int>{2});
  for (int r : {0, 1, 3}) {
    EXPECT_TRUE(world.report(r).finished) << "survivor " << r;
  }
}

// --- Reporting --------------------------------------------------------------

TEST(RankKillReport, SummaryDistinguishesKilledFromImpacted) {
  JobOptions opt = options_for(KillConfig::kOnDemand);
  opt.fault.kill_rank(3, sim::milliseconds(5));
  World world(kNp, opt);
  const RunResult result =
      world.run_job([](Comm& c) { run_workload(Workload::kColl, c); });
  ASSERT_EQ(result.status, RunStatus::kRankFailed) << result.summary();
  const std::string s = result.summary();
  EXPECT_NE(s.find("rank 3 died at t="), std::string::npos) << s;
  EXPECT_NE(s.find("survivor"), std::string::npos) << s;
  EXPECT_NE(s.find("degraded"), std::string::npos) << s;
}

TEST(RankKillReport, FailedRanksSortedAndDeduplicated) {
  JobOptions opt = options_for(KillConfig::kOnDemand);
  // Out of order, with a duplicate entry: the report sorts and dedups.
  opt.fault.kill_rank(5, sim::milliseconds(4));
  opt.fault.kill_rank(2, sim::milliseconds(3));
  opt.fault.kill_rank(5, sim::milliseconds(6));
  World world(kNp, opt);
  const RunResult result =
      world.run_job([](Comm& c) { run_workload(Workload::kColl, c); });
  ASSERT_NE(result.status, RunStatus::kDeadline) << result.summary();
  EXPECT_EQ(result.failed_ranks, (std::vector<int>{2, 5}));
  // The duplicate kill is a no-op: two effective deaths.
  EXPECT_EQ(result.deaths.size(), 2u);
}

TEST(RankKillReport, KillAfterCompletionIsNoOp) {
  JobOptions opt = options_for(KillConfig::kOnDemand);
  opt.fault.kill_rank(1, sim::seconds(3000));  // long after the job ends
  World world(4, opt);
  const RunResult result = world.run_job([](Comm& c) { c.barrier(); });
  EXPECT_EQ(result.status, RunStatus::kOk) << result.summary();
  EXPECT_TRUE(result.deaths.empty());
  EXPECT_TRUE(result.failed_ranks.empty());
}

TEST(RankKillReport, KillFreeFaultConfigStillReportsOk) {
  // An explicitly empty kill list must not activate any kill machinery.
  JobOptions opt = options_for(KillConfig::kOnDemand);
  ASSERT_FALSE(opt.fault.has_kills());
  World world(4, opt);
  const RunResult result = world.run_job([](Comm& c) { c.barrier(); });
  EXPECT_EQ(result.status, RunStatus::kOk) << result.summary();
}

}  // namespace
}  // namespace odmpi::mpi
