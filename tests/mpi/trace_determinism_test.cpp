// Tracing acceptance tests: the digest of a traced run is bit-identical
// across reruns (with and without fault injection, for both connection
// models); a traced 4-rank on-demand job shows a connection handshake
// span strictly overlapping a parked-send span (the paper's hidden
// connection cost, visible on the timeline); and the RunResult API
// reports ok / deadline / rank-failed outcomes with a live trace pointer
// exactly when tracing was requested.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

const sim::Stats::Counter kTrHandshake =
    sim::Stats::counter("mpi.conn.handshake");
const sim::Stats::Counter kTrPark = sim::Stats::counter("mpi.send.park");

JobOptions traced(JobOptions opt) {
  opt.trace.enabled = true;
  return opt;
}

/// A small but layered workload: ring pt2pt (first-touch connections),
/// an allreduce (collective spans) and a barrier.
void workload(Comm& c) {
  const int me = c.rank();
  const int n = c.size();
  std::int32_t tok = me;
  if (me == 0) {
    c.send(&tok, 1, kInt32, (me + 1) % n, 3);
    c.recv(&tok, 1, kInt32, (me - 1 + n) % n, 3);
  } else {
    c.recv(&tok, 1, kInt32, (me - 1 + n) % n, 3);
    c.send(&tok, 1, kInt32, (me + 1) % n, 3);
  }
  double x = me, sum = 0;
  c.allreduce(&x, &sum, 1, kDouble, Op::kSum);
  c.barrier();
}

std::string traced_digest(ConnectionModel model, bool fault) {
  JobOptions opt = traced(make_options(model));
  if (fault) {
    opt.fault.enabled = true;
    opt.fault.seed = 0xFA417;
    opt.fault.control_drop_rate = 0.05;
    opt.fault.data_drop_rate = 0.02;
  }
  World w(4, opt);
  const RunResult result = w.run_job(workload);
  EXPECT_EQ(result.status, RunStatus::kOk) << result.summary();
  EXPECT_NE(result.trace, nullptr);
  EXPECT_GT(result.trace->size(), 0u);
  return w.tracer().digest();
}

struct DigestCase {
  ConnectionModel model;
  bool fault;
};

class TraceDigest : public ::testing::TestWithParam<DigestCase> {};

TEST_P(TraceDigest, IdenticalAcrossReruns) {
  const auto& p = GetParam();
  const std::string first = traced_digest(p.model, p.fault);
  const std::string second = traced_digest(p.model, p.fault);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "trace digest must replay bit-for-bit";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TraceDigest,
    ::testing::Values(DigestCase{ConnectionModel::kOnDemand, false},
                      DigestCase{ConnectionModel::kOnDemand, true},
                      DigestCase{ConnectionModel::kStaticPeerToPeer, false},
                      DigestCase{ConnectionModel::kStaticPeerToPeer, true}),
    [](const ::testing::TestParamInfo<DigestCase>& info) {
      std::string s = to_string(info.param.model);
      for (auto& ch : s)
        if (ch == '-') ch = '_';
      return s + (info.param.fault ? "_fault" : "_clean");
    });

// The acceptance criterion from the issue: in a traced on-demand run, a
// parked send's residency span strictly overlaps the connection
// handshake span that it is waiting on — the trace *shows* the paper's
// claim that connection setup hides behind the first send.
TEST(TraceObservability, HandshakeSpanOverlapsParkedSend) {
  JobOptions opt = traced(make_options(ConnectionModel::kOnDemand));
  World w(4, opt);
  const RunResult result = w.run_job(workload);
  ASSERT_EQ(result.status, RunStatus::kOk) << result.summary();
  ASSERT_NE(result.trace, nullptr);

  const sim::Tracer& tr = *result.trace;
  bool overlap_found = false;
  for (std::size_t i = 0; i < tr.size() && !overlap_found; ++i) {
    const auto& park = tr.event(i);
    if (!(park.name == kTrPark) || park.ph != 'X') continue;
    for (std::size_t j = 0; j < tr.size(); ++j) {
      const auto& hs = tr.event(j);
      if (!(hs.name == kTrHandshake) || hs.rank != park.rank ||
          hs.peer != park.peer) {
        continue;
      }
      // Strict overlap: each interval starts before the other ends.
      if (hs.ts < park.ts + park.dur && park.ts < hs.ts + hs.dur) {
        EXPECT_GT(park.dur, 0) << "parked send span must have extent";
        EXPECT_GT(hs.dur, 0) << "handshake span must have extent";
        overlap_found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlap_found)
      << "no handshake span overlapped a parked-send span on any rank";
}

TEST(RunResultApi, UntracedRunHasNoTraceAndRecordsNoEvents) {
  JobOptions opt = make_options(ConnectionModel::kOnDemand);
  World w(2, opt);
  const RunResult result = w.run_job(workload);
  EXPECT_EQ(result.status, RunStatus::kOk) << result.summary();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(static_cast<bool>(result));
  EXPECT_EQ(result.trace, nullptr);
  EXPECT_TRUE(result.failed_ranks.empty());
  EXPECT_GT(result.completion_time, 0);
  // The always-constructed tracer stayed inert: no events, no chunks.
  EXPECT_EQ(w.tracer().size(), 0u);
  EXPECT_EQ(w.tracer().chunk_allocations(), 0u);
}

TEST(RunResultApi, UnreachablePeerReportsRankFailed) {
  JobOptions opt = make_options(ConnectionModel::kOnDemand);
  opt.fault.enabled = true;
  opt.fault.seed = 0xFA417;
  opt.fault.block_pair(0, 1);
  World w(2, opt);
  const RunResult result = w.run_job([](Comm& comm) {
    double x = comm.rank();
    if (comm.rank() == 0) {
      Request req = comm.isend(&x, 1, kDouble, 1, 7);
      req.wait();
      EXPECT_TRUE(req.failed());
    } else {
      Request req = comm.irecv(&x, 1, kDouble, 0, 7);
      req.wait();
      EXPECT_TRUE(req.failed());
    }
  });
  // Every rank finished (legacy bool-run semantics: success), but the
  // structured result names the ranks that saw channel failures.
  EXPECT_EQ(result.status, RunStatus::kRankFailed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.failed_ranks, (std::vector<int>{0, 1}));
  EXPECT_NE(result.summary().find("failed channels"), std::string::npos);
}

// Holds the deprecated shim's contract: run() is true iff the run beat
// the deadline, *including* degraded kRankFailed finishes.
TEST(RunResultApi, LegacyBoolRunMatchesDeadlineSemantics) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  {
    JobOptions opt = make_options();
    World w(2, opt);
    EXPECT_TRUE(w.run(workload));
  }
  {
    // Failed channels but finished ranks: legacy run() stays true.
    JobOptions opt = make_options(ConnectionModel::kOnDemand);
    opt.fault.enabled = true;
    opt.fault.block_pair(0, 1);
    World w(2, opt);
    EXPECT_TRUE(w.run([](Comm& comm) {
      double x = 0;
      Request req = comm.rank() == 0 ? comm.isend(&x, 1, kDouble, 1, 1)
                                     : comm.irecv(&x, 1, kDouble, 0, 1);
      req.wait();
    }));
  }
#pragma GCC diagnostic pop
}

TEST(TraceObservability, TraceFileWrittenWhenPathSet) {
  JobOptions opt = traced(make_options(ConnectionModel::kOnDemand));
  opt.trace.path = ::testing::TempDir() + "odmpi_trace_test.json";
  World w(2, opt);
  const RunResult result = w.run_job(workload);
  ASSERT_EQ(result.status, RunStatus::kOk) << result.summary();
  std::ifstream in(opt.trace.path);
  ASSERT_TRUE(in.good()) << "trace file missing: " << opt.trace.path;
  std::string head;
  std::getline(in, head);
  EXPECT_NE(head.find("traceEvents"), std::string::npos);
}

}  // namespace
}  // namespace odmpi::mpi
