// Collective correctness across rank counts (including non-powers of two)
// and the full device/connection-model matrix, checked against serial
// references.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::ConfigParam;
using testing::full_matrix;
using testing::make_options;
using testing::run_or_die;

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BarrierSynchronizes) {
  const int n = GetParam();
  run_or_die(n, make_options(), [](Comm& c) {
    // Rank 0 sleeps; after the barrier everyone's clock must be past it.
    if (c.rank() == 0) sim::Process::current()->sleep(sim::milliseconds(3));
    c.barrier();
    EXPECT_GE(c.wtime(), 3e-3);
  });
}

TEST_P(CollectiveSizes, BcastFromEveryRoot) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    for (int root = 0; root < n; ++root) {
      std::vector<std::int32_t> buf(32);
      if (c.rank() == root) {
        std::iota(buf.begin(), buf.end(), root * 1000);
      }
      c.bcast(buf.data(), 32, kInt32, root);
      EXPECT_EQ(buf[0], root * 1000);
      EXPECT_EQ(buf[31], root * 1000 + 31);
    }
  });
}

TEST_P(CollectiveSizes, ReduceSumMatchesSerial) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    std::vector<double> in(8), out(8, -1);
    for (int i = 0; i < 8; ++i) in[static_cast<std::size_t>(i)] = c.rank() + i;
    c.reduce(in.data(), out.data(), 8, kDouble, Op::kSum, /*root=*/0);
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) {
        const double expect = n * (n - 1) / 2.0 + n * i;
        EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], expect);
      }
    }
  });
}

TEST_P(CollectiveSizes, AllreduceEveryOp) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    const std::int64_t me = c.rank() + 1;
    EXPECT_EQ(c.allreduce_one(me, Op::kSum),
              static_cast<std::int64_t>(n) * (n + 1) / 2);
    EXPECT_EQ(c.allreduce_one(me, Op::kMax), n);
    EXPECT_EQ(c.allreduce_one(me, Op::kMin), 1);
    double p = 1;
    for (int i = 1; i <= n; ++i) p *= i;
    EXPECT_DOUBLE_EQ(c.allreduce_one(static_cast<double>(me), Op::kProd), p);
  });
}

TEST_P(CollectiveSizes, GatherCollectsInRankOrder) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    const int root = n - 1;
    std::int32_t mine[2] = {c.rank() * 2, c.rank() * 2 + 1};
    std::vector<std::int32_t> all(static_cast<std::size_t>(2 * n), -1);
    c.gather(mine, 2, all.data(), kInt32, root);
    if (c.rank() == root) {
      for (int i = 0; i < 2 * n; ++i)
        EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
    }
  });
}

TEST_P(CollectiveSizes, ScatterDistributesBlocks) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    std::vector<std::int32_t> src;
    if (c.rank() == 0) {
      src.resize(static_cast<std::size_t>(3 * n));
      std::iota(src.begin(), src.end(), 0);
    }
    std::int32_t mine[3] = {-1, -1, -1};
    c.scatter(src.data(), 3, mine, kInt32, 0);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(mine[i], c.rank() * 3 + i);
  });
}

TEST_P(CollectiveSizes, AllgatherGivesEveryoneEverything) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    std::int32_t mine = c.rank() * 7;
    std::vector<std::int32_t> all(static_cast<std::size_t>(n), -1);
    c.allgather(&mine, 1, all.data(), kInt32);
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 7);
  });
}

TEST_P(CollectiveSizes, AlltoallTransposes) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    std::vector<std::int32_t> out(static_cast<std::size_t>(n));
    std::vector<std::int32_t> in(static_cast<std::size_t>(n), -1);
    for (int r = 0; r < n; ++r)
      out[static_cast<std::size_t>(r)] = c.rank() * 100 + r;
    c.alltoall(out.data(), 1, in.data(), kInt32);
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(in[static_cast<std::size_t>(r)], r * 100 + c.rank());
  });
}

TEST_P(CollectiveSizes, AlltoallvVariableBlocks) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    // Rank r sends r+1 copies of its rank to everyone.
    const int me = c.rank();
    std::vector<int> scounts(static_cast<std::size_t>(n), me + 1);
    std::vector<int> sdispls(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      sdispls[static_cast<std::size_t>(r)] = r * (me + 1);
    std::vector<std::int32_t> sbuf(static_cast<std::size_t>(n * (me + 1)), me);

    std::vector<int> rcounts(static_cast<std::size_t>(n));
    std::vector<int> rdispls(static_cast<std::size_t>(n));
    int off = 0;
    for (int r = 0; r < n; ++r) {
      rcounts[static_cast<std::size_t>(r)] = r + 1;
      rdispls[static_cast<std::size_t>(r)] = off;
      off += r + 1;
    }
    std::vector<std::int32_t> rbuf(static_cast<std::size_t>(off), -1);
    c.alltoallv(sbuf.data(), scounts.data(), sdispls.data(), rbuf.data(),
                rcounts.data(), rdispls.data(), kInt32);
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k < r + 1; ++k) {
        EXPECT_EQ(rbuf[static_cast<std::size_t>(
                      rdispls[static_cast<std::size_t>(r)] + k)],
                  r);
      }
    }
  });
}

TEST_P(CollectiveSizes, ReduceScatterSegments) {
  const int n = GetParam();
  run_or_die(n, make_options(), [n](Comm& c) {
    std::vector<int> counts(static_cast<std::size_t>(n), 2);
    std::vector<std::int32_t> in(static_cast<std::size_t>(2 * n));
    for (int i = 0; i < 2 * n; ++i)
      in[static_cast<std::size_t>(i)] = c.rank() + i;
    std::int32_t out[2] = {-1, -1};
    c.reduce_scatter(in.data(), out, counts.data(), kInt32, Op::kSum);
    // Sum over ranks of (rank + i) = n(n-1)/2 + n*i for i = my segment.
    const int base = n * (n - 1) / 2;
    EXPECT_EQ(out[0], base + n * (2 * c.rank()));
    EXPECT_EQ(out[1], base + n * (2 * c.rank() + 1));
  });
}

TEST_P(CollectiveSizes, ScanPrefixSums) {
  const int n = GetParam();
  run_or_die(n, make_options(), [](Comm& c) {
    std::int32_t mine = c.rank() + 1, out = -1;
    c.scan(&mine, &out, 1, kInt32, Op::kSum);
    EXPECT_EQ(out, (c.rank() + 1) * (c.rank() + 2) / 2);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "np" + std::to_string(info.param);
                         });

class CollectiveMatrix : public ::testing::TestWithParam<ConfigParam> {};

TEST_P(CollectiveMatrix, AllreduceAndBarrierUnderEveryConfig) {
  run_or_die(8, GetParam().options(), [](Comm& c) {
    for (int iter = 0; iter < 3; ++iter) {
      const double v = c.rank() + iter;
      const double sum = c.allreduce_one(v, Op::kSum);
      EXPECT_DOUBLE_EQ(sum, 28.0 + 8.0 * iter);
      c.barrier();
    }
  });
}

TEST_P(CollectiveMatrix, LargePayloadBcastUsesRendezvous) {
  run_or_die(4, GetParam().options(), [](Comm& c) {
    std::vector<double> buf(4096);  // 32 kB > eager threshold
    if (c.rank() == 2) {
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<double>(i) * 0.5;
    }
    c.bcast(buf.data(), 4096, kDouble, 2);
    EXPECT_DOUBLE_EQ(buf[4095], 4095 * 0.5);
  });
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, CollectiveMatrix,
                         ::testing::ValuesIn(full_matrix()),
                         testing::param_name);

TEST(CollectivePartners, BarrierTouchesLog2Peers) {
  // Table 2's Barrier row: recursive doubling at np=16 -> 4 VIs per rank.
  World w(16, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm& c) { c.barrier(); }));
  for (int r = 0; r < 16; ++r) EXPECT_EQ(w.report(r).vis_created, 4);
}

TEST(CollectivePartners, AlltoallTouchesAllPeers) {
  World w(8, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm& c) {
    std::vector<std::int32_t> a(8, c.rank()), b(8);
    c.alltoall(a.data(), 1, b.data(), kInt32);
  }));
  for (int r = 0; r < 8; ++r) EXPECT_EQ(w.report(r).vis_created, 7);
}

}  // namespace
}  // namespace odmpi::mpi
