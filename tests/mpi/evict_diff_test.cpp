// Differential battery for resource-capped connection management: one
// seeded random workload (pt2pt eager + rendezvous, wildcard fan-ins,
// collectives) runs under on-demand unlimited, on-demand capped at
// 8/4/2, and static peer-to-peer management. Everything user-visible —
// payload bytes, receive statuses, per-(source,tag) ordering, collective
// results — must be byte-identical across configurations: eviction and
// reconnection are transparent or they are wrong.
//
// Wildcard receives are the one place arrival *timing* legitimately leaks
// into results (which sender matches first), so for those the comparison
// is the timing-independent contract: the set of matched sources and the
// per-source payloads, not their interleaving.
//
// All configurations (the five diff cases plus two eviction-pressure
// runs) execute as ONE parallel sweep in SetUpTestSuite — each World is
// independent, so the battery's wall-clock is the slowest single config
// rather than their sum. Individual TEST_Fs then compare cached results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/sweep.h"
#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

constexpr int kP = 8;
constexpr std::uint64_t kScheduleSeed = 0x0D0C2002ULL;

std::uint64_t fnv1a(const std::byte* data, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic payload byte: a pure function of the message identity,
/// so sender and receiver agree without communicating.
std::byte payload_byte(int src, int tag, std::size_t i) {
  const auto x = static_cast<std::uint64_t>(src) * 1000003ULL +
                 static_cast<std::uint64_t>(tag) * 8191ULL + i;
  return static_cast<std::byte>((x * 2654435761ULL) >> 24);
}

void fill_payload(std::vector<std::byte>& buf, int src, int tag) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = payload_byte(src, tag, i);
  }
}

/// One message of the random phase, generated identically on every rank.
struct ScheduledMsg {
  int src;
  int dst;
  int tag;
  std::size_t bytes;
};

std::vector<ScheduledMsg> make_schedule(std::uint64_t seed, int count) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> rank_d(0, kP - 1);
  // Sizes straddle the 5000 B eager/rendezvous threshold.
  const std::size_t sizes[] = {16, 700, 3800, 6000, 18000};
  std::uniform_int_distribution<int> size_d(0, 4);
  std::vector<ScheduledMsg> sched;
  sched.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    int src = rank_d(rng);
    int dst = rank_d(rng);
    if (dst == src) dst = (dst + 1) % kP;
    sched.push_back({src, dst, 1000 + k,
                     sizes[static_cast<std::size_t>(size_d(rng))]});
  }
  return sched;
}

/// Everything user-visible a rank observed, in a deterministic encoding.
struct RankCapture {
  // Named receives: (source, tag, count_bytes, payload hash) per receive
  // in posted order.
  std::vector<std::uint64_t> named;
  // Wildcard receives: sorted matched sources and an order-independent
  // combined payload hash, per fan-in round.
  std::vector<int> any_sources;
  std::uint64_t any_hash = 0;
  // Collective results.
  std::vector<double> coll;

  bool operator==(const RankCapture&) const = default;
};

void record_named(RankCapture& cap, const MsgStatus& st,
                  const std::vector<std::byte>& buf) {
  cap.named.push_back(static_cast<std::uint64_t>(st.source));
  cap.named.push_back(static_cast<std::uint64_t>(st.tag));
  cap.named.push_back(st.count_bytes);
  cap.named.push_back(fnv1a(buf.data(), st.count_bytes));
}

/// The workload body. Fibers within one World are cooperatively scheduled
/// in one thread, so writing into that World's capture vector needs no
/// locking; distinct sweep configs write into distinct vectors.
void workload(Comm& comm, std::vector<RankCapture>& captures) {
  const int r = comm.rank();
  RankCapture& cap = captures[static_cast<std::size_t>(r)];

  // Phase A: rotating ring, mixed eager/rendezvous sizes.
  {
    const std::size_t sizes[] = {64, 3000, 9000};
    for (int t = 1; t < kP; ++t) {
      const int dst = (r + t) % kP;
      const int src = (r - t + kP) % kP;
      const std::size_t n = sizes[static_cast<std::size_t>(t) % 3];
      std::vector<std::byte> sbuf(n), rbuf(n);
      fill_payload(sbuf, r, t);
      MsgStatus st = comm.sendrecv(sbuf.data(), static_cast<int>(n), kByte,
                                   dst, t, rbuf.data(), static_cast<int>(n),
                                   kByte, src, t);
      record_named(cap, st, rbuf);
    }
  }

  // Phase B: seeded random sparse traffic, nonblocking, unique tags.
  {
    const auto sched = make_schedule(kScheduleSeed, 48);
    std::vector<Request> reqs;
    std::vector<std::vector<std::byte>> rbufs, sbufs;
    std::vector<std::size_t> my_recvs;  // schedule indices, posted order
    for (std::size_t k = 0; k < sched.size(); ++k) {
      const ScheduledMsg& m = sched[k];
      if (m.dst != r) continue;
      rbufs.emplace_back(m.bytes);
      my_recvs.push_back(k);
      reqs.push_back(comm.irecv(rbufs.back().data(),
                                static_cast<int>(m.bytes), kByte, m.src,
                                m.tag));
    }
    const std::size_t nrecvs = reqs.size();
    for (const ScheduledMsg& m : sched) {
      if (m.src != r) continue;
      sbufs.emplace_back(m.bytes);
      fill_payload(sbufs.back(), m.src, m.tag);
      reqs.push_back(comm.isend(sbufs.back().data(),
                                static_cast<int>(m.bytes), kByte, m.dst,
                                m.tag));
    }
    wait_all(reqs);
    for (std::size_t i = 0; i < nrecvs; ++i) {
      const ScheduledMsg& m = sched[my_recvs[i]];
      MsgStatus st;
      st.source = m.src;
      st.tag = m.tag;
      st.count_bytes = reqs[i].state()->bytes_received;
      record_named(cap, st, rbufs[i]);
    }
  }

  // Phase C: wildcard fan-ins with rotating roots (order-independent
  // record; see the file comment).
  for (int t = 0; t < 3; ++t) {
    const int root = (t * 3) % kP;
    const int tag = 500 + t;
    if (r == root) {
      std::vector<int> sources;
      for (int k = 0; k < kP - 1; ++k) {
        std::vector<std::byte> buf(256);
        MsgStatus st = comm.recv(buf.data(), 256, kByte, kAnySource, tag);
        sources.push_back(st.source);
        cap.any_hash += fnv1a(buf.data(), st.count_bytes);
      }
      std::sort(sources.begin(), sources.end());
      cap.any_sources.insert(cap.any_sources.end(), sources.begin(),
                             sources.end());
    } else {
      std::vector<std::byte> buf(256);
      fill_payload(buf, r, tag);
      comm.send(buf.data(), 256, kByte, root, tag);
    }
    comm.barrier();
  }

  // Phase D: collectives.
  {
    const double mine = r * 1.5 + 1.0;
    cap.coll.push_back(comm.allreduce_one(mine, Op::kSum));
    cap.coll.push_back(comm.allreduce_one(mine, Op::kMax));
    std::vector<double> all_in(kP), all_out(kP, -1.0);
    for (int i = 0; i < kP; ++i) all_in[static_cast<std::size_t>(i)] = r * 100.0 + i;
    comm.alltoall(all_in.data(), 1, all_out.data(), kDouble);
    cap.coll.insert(cap.coll.end(), all_out.begin(), all_out.end());
    double root_val = (r == 3) ? 2718.28 : 0.0;
    comm.bcast_one(root_val, 3);
    cap.coll.push_back(root_val);
  }
}

/// Eviction-pressure body: the full-fan-out sendrecv ring under a tight VI
/// budget. Received values go into cap.coll, verified after the sweep
/// (no gtest assertions inside a body running on a worker thread).
void pressure_workload(Comm& comm, std::vector<RankCapture>& captures) {
  const int r = comm.rank();
  RankCapture& cap = captures[static_cast<std::size_t>(r)];
  for (int t = 1; t < kP; ++t) {
    const double out = r;
    double in = -1.0;
    comm.sendrecv(&out, 1, kDouble, (r + t) % kP, t, &in, 1, kDouble,
                  (r - t + kP) % kP, t);
    cap.coll.push_back(in);
  }
}

JobOptions config(ConnectionModel model, int max_vis) {
  JobOptions opt = make_options(model);
  opt.device.max_vis = max_vis;
  return opt;
}

class EvictDiff : public ::testing::Test {
 protected:
  struct CaseResult {
    std::vector<RankCapture> captures;
    sim::SweepItemResult item;
  };

  // Every configuration runs once, concurrently, before the first test.
  static void SetUpTestSuite() {
    results_ = new std::map<std::string, CaseResult>();
    std::vector<sim::SweepConfig> configs;
    const auto add = [&](const std::string& label, const JobOptions& opt,
                         bool pressure = false) {
      CaseResult& slot = (*results_)[label];
      slot.captures.resize(kP);
      sim::SweepConfig cfg;
      cfg.label = label;
      cfg.nranks = kP;
      cfg.options = opt;
      cfg.collect_stats = true;
      cfg.collect_reports = true;
      std::vector<RankCapture>* caps = &slot.captures;  // map nodes: stable
      cfg.body = pressure
                     ? std::function<void(Comm&)>(
                           [caps](Comm& c) { pressure_workload(c, *caps); })
                     : std::function<void(Comm&)>(
                           [caps](Comm& c) { workload(c, *caps); });
      configs.push_back(std::move(cfg));
    };
    add("baseline", config(ConnectionModel::kOnDemand, 0));
    add("max_vis=8", config(ConnectionModel::kOnDemand, 8));
    add("max_vis=4", config(ConnectionModel::kOnDemand, 4));
    add("max_vis=2", config(ConnectionModel::kOnDemand, 2));
    add("static-p2p", config(ConnectionModel::kStaticPeerToPeer, 0));
    {
      // Faults on top of the cap: lossy control and data packets force
      // handshake retries and retransmissions through the evict/reconnect
      // cycle; user-visible results must STILL match the clean baseline.
      JobOptions opt = config(ConnectionModel::kOnDemand, 4);
      opt.fault.enabled = true;
      opt.fault.seed = 0xFA417;
      opt.fault.control_drop_rate = 0.02;
      opt.fault.data_drop_rate = 0.01;
      add("max_vis=4+faults", opt);
    }
    add("pressure-cap4", config(ConnectionModel::kOnDemand, 4),
        /*pressure=*/true);
    add("pressure-cap2", config(ConnectionModel::kOnDemand, 2),
        /*pressure=*/true);

    const sim::SweepReport rep =
        sim::SweepRunner::run_all(std::move(configs), 0);
    for (const sim::SweepItemResult& item : rep.items) {
      EXPECT_TRUE(item.ok())
          << item.label << " did not complete: status "
          << static_cast<int>(item.result.status) << " error='" << item.error
          << "'";
      (*results_)[item.label].item = item;
    }
  }

  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const CaseResult& result(const std::string& label) {
    return results_->at(label);
  }

  static void expect_matches_baseline(const std::string& label) {
    const std::vector<RankCapture>& base = result("baseline").captures;
    const std::vector<RankCapture>& got = result(label).captures;
    ASSERT_EQ(got.size(), base.size());
    for (int r = 0; r < kP; ++r) {
      const RankCapture& b = base[static_cast<std::size_t>(r)];
      const RankCapture& g = got[static_cast<std::size_t>(r)];
      EXPECT_EQ(g.named, b.named)
          << label << ": rank " << r << " named-receive records diverged";
      EXPECT_EQ(g.any_sources, b.any_sources)
          << label << ": rank " << r << " wildcard source sets diverged";
      EXPECT_EQ(g.any_hash, b.any_hash)
          << label << ": rank " << r << " wildcard payloads diverged";
      EXPECT_EQ(g.coll, b.coll)
          << label << ": rank " << r << " collective results diverged";
    }
  }

 private:
  static std::map<std::string, CaseResult>* results_;
};

std::map<std::string, EvictDiff::CaseResult>* EvictDiff::results_ = nullptr;

TEST_F(EvictDiff, CappedBudget8MatchesUnlimited) {
  // Budget 8 >= the 7-peer fan-out: capped code paths armed, but
  // evictions may never trigger. Results must be identical either way.
  expect_matches_baseline("max_vis=8");
}

TEST_F(EvictDiff, CappedBudget4MatchesUnlimited) {
  expect_matches_baseline("max_vis=4");
}

TEST_F(EvictDiff, CappedBudget2MatchesUnlimited) {
  expect_matches_baseline("max_vis=2");
}

TEST_F(EvictDiff, StaticPeerToPeerMatchesOnDemand) {
  expect_matches_baseline("static-p2p");
}

TEST_F(EvictDiff, CappedAndFaultedStillMatchesUnlimited) {
  expect_matches_baseline("max_vis=4+faults");
}

TEST_F(EvictDiff, CappedRunsActuallyEvictAndStayUnderBudget) {
  for (int cap : {4, 2}) {
    const CaseResult& res = result("pressure-cap" + std::to_string(cap));
    ASSERT_TRUE(res.item.ok());
    // The sendrecv ring delivered the right values...
    for (int r = 0; r < kP; ++r) {
      const RankCapture& rc = res.captures[static_cast<std::size_t>(r)];
      ASSERT_EQ(rc.coll.size(), static_cast<std::size_t>(kP - 1));
      for (int t = 1; t < kP; ++t) {
        EXPECT_EQ(rc.coll[static_cast<std::size_t>(t - 1)], (r - t + kP) % kP)
            << "cap " << cap << " rank " << r << " step " << t;
      }
    }
    // ...while every rank stayed under its VI budget and actually evicted.
    ASSERT_EQ(res.item.reports.size(), static_cast<std::size_t>(kP));
    for (int r = 0; r < kP; ++r) {
      EXPECT_LE(res.item.reports[static_cast<std::size_t>(r)].vis_open_peak,
                cap)
          << "cap " << cap << " exceeded on rank " << r;
    }
    EXPECT_GT(res.item.stats.get("mpi.evictions"), 0)
        << "cap " << cap << " with 7 peers never evicted";
  }
}

}  // namespace
}  // namespace odmpi::mpi
