// Connection-management behaviour: the paper's core claims at MPI level.
#include <gtest/gtest.h>

#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;
using testing::run_or_die;

TEST(StaticConn, FullyConnectedAfterInit) {
  for (ConnectionModel m : {ConnectionModel::kStaticPeerToPeer,
                            ConnectionModel::kStaticClientServer}) {
    World w(6, make_options(m));
    ASSERT_TRUE(w.run_job([](Comm&) { /* no communication at all */ }));
    for (int r = 0; r < 6; ++r) {
      EXPECT_EQ(w.report(r).vis_created, 5)
          << "static init must create N-1 VIs on rank " << r;
    }
  }
}

TEST(OnDemandConn, NoViWithoutCommunication) {
  World w(6, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm&) {}));
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(w.report(r).vis_created, 0)
        << "on-demand must create nothing for a silent application";
  }
}

TEST(OnDemandConn, RingCreatesExactlyTwoVisPerRank) {
  // Table 2's Ring row: each rank talks to left+right only.
  World w(8, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    std::int32_t tok = c.rank(), in = -1;
    c.sendrecv(&tok, 1, kInt32, right, 1, &in, 1, kInt32, left, 1);
    EXPECT_EQ(in, left);
  }));
  for (int r = 0; r < 8; ++r) EXPECT_EQ(w.report(r).vis_created, 2);
}

TEST(OnDemandConn, PairTalkCreatesOneViEachSide) {
  World w(8, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm& c) {
    if (c.rank() >= 2) return;  // only ranks 0 and 1 talk
    std::int32_t v = c.rank();
    const int other = 1 - c.rank();
    c.sendrecv(&v, 1, kInt32, other, 1, &v, 1, kInt32, other, 1);
  }));
  EXPECT_EQ(w.report(0).vis_created, 1);
  EXPECT_EQ(w.report(1).vis_created, 1);
  for (int r = 2; r < 8; ++r) EXPECT_EQ(w.report(r).vis_created, 0);
}

TEST(OnDemandConn, ViCountEqualsDistinctPeersUnderRandomTraffic) {
  constexpr int kN = 8;
  // Deterministic random pairs; count expected distinct peers per rank.
  sim::Rng rng(2024);
  std::vector<std::pair<int, int>> pairs;
  std::vector<std::vector<bool>> touches(kN, std::vector<bool>(kN, false));
  for (int i = 0; i < 30; ++i) {
    int a = static_cast<int>(rng.next_below(kN));
    int b = static_cast<int>(rng.next_below(kN));
    if (a == b) continue;
    pairs.emplace_back(a, b);
    touches[a][b] = touches[b][a] = true;
  }
  World w(kN, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([&](Comm& c) {
    for (auto [a, b] : pairs) {
      std::int32_t v = 1;
      if (c.rank() == a) c.send(&v, 1, kInt32, b, 3);
      if (c.rank() == b) c.recv(&v, 1, kInt32, a, 3);
    }
  }));
  for (int r = 0; r < kN; ++r) {
    int expected = 0;
    for (int p = 0; p < kN; ++p) expected += touches[r][p];
    EXPECT_EQ(w.report(r).vis_created, expected) << "rank " << r;
  }
}

TEST(OnDemandConn, ParkedSendsDrainInOrder) {
  // Multiple nonblocking sends issued before the connection exists (paper
  // section 3.4): all must arrive, in order.
  run_or_die(2, make_options(ConnectionModel::kOnDemand), [](Comm& c) {
    constexpr int kN = 20;
    if (c.rank() == 0) {
      std::vector<std::int32_t> vals(kN);
      std::vector<Request> reqs;
      for (std::int32_t i = 0; i < kN; ++i) {
        vals[static_cast<std::size_t>(i)] = i;
        reqs.push_back(
            c.isend(&vals[static_cast<std::size_t>(i)], 1, kInt32, 1, 2));
      }
      wait_all(reqs);
    } else {
      // Delay so rank 0's sends all pile up in the pre-posted FIFO.
      sim::Process::current()->sleep(sim::milliseconds(20));
      for (std::int32_t i = 0; i < kN; ++i) {
        std::int32_t v = -1;
        c.recv(&v, 1, kInt32, 0, 2);
        ASSERT_EQ(v, i) << "pre-posted send FIFO violated MPI order";
      }
    }
  });
}

TEST(OnDemandConn, ParkedSendsCountedInStats) {
  World w(2, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t v = 1;
      Request r1 = c.isend(&v, 1, kInt32, 1, 1);
      Request r2 = c.isend(&v, 1, kInt32, 1, 1);
      r1.wait();
      r2.wait();
    } else {
      sim::Process::current()->sleep(sim::milliseconds(5));
      std::int32_t v;
      c.recv(&v, 1, kInt32, 0, 1);
      c.recv(&v, 1, kInt32, 0, 1);
    }
  }));
  // Both isends were posted before any connection existed.
  EXPECT_EQ(w.report(0).device_stats.get("mpi.parked_sends"), 2);
}

TEST(OnDemandConn, AnySourceConnectsToWholeCommunicator) {
  // Section 3.5: a wildcard receive must issue connection requests to all
  // peers, so the receiver ends with N-1 VIs even though only one sender
  // ever transmits.
  World w(6, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t v = -1;
      MsgStatus st = c.recv(&v, 1, kInt32, kAnySource, 1);
      EXPECT_EQ(st.source, 3);
      EXPECT_EQ(v, 33);
    } else if (c.rank() == 3) {
      std::int32_t v = 33;
      c.send(&v, 1, kInt32, 0, 1);
    }
    // Everyone must keep progressing so rank 0's connection requests are
    // answered even by otherwise idle ranks: a barrier provides that (and
    // is itself part of realistic programs).
    c.barrier();
  }));
  EXPECT_EQ(w.report(0).vis_created, 5);
}

TEST(OnDemandConn, SimultaneousMutualFirstSendsBothComplete) {
  // Crossing first-sends: both sides issue connect requests at once.
  run_or_die(2, make_options(ConnectionModel::kOnDemand), [](Comm& c) {
    std::int32_t out = c.rank() + 50, in = -1;
    const int other = 1 - c.rank();
    Request s = c.isend(&out, 1, kInt32, other, 1);
    Request r = c.irecv(&in, 1, kInt32, other, 1);
    s.wait();
    r.wait();
    EXPECT_EQ(in, other + 50);
  });
}

TEST(OnDemandConn, ReceiverInitiatedConnection) {
  // The receive side also triggers connection setup (section 4): a
  // receiver that posts early lets the (late) sender find the connection
  // already established.
  World w(2, make_options(ConnectionModel::kOnDemand));
  ASSERT_TRUE(w.run_job([](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t v = -1;
      c.recv(&v, 1, kInt32, 1, 1);  // posted immediately
      EXPECT_EQ(v, 9);
    } else {
      sim::Process::current()->sleep(sim::milliseconds(10));
      // By now rank 0's connection request has been queued at our NIC for
      // ~10 ms; our first send matches it instantly.
      std::int32_t v = 9;
      c.send(&v, 1, kInt32, 0, 1);
    }
  }));
  EXPECT_EQ(w.report(0).device_stats.get("mpi.parked_sends"), 0);
}

TEST(StaticTreeConn, FullyConnectedAfterInitAndDataFlows) {
  // The fair static baseline: one aggregated OOB exchange, then local
  // binds — fully connected at init like the other static models, with
  // zero per-pair wire handshakes.
  World w(6, make_options(ConnectionModel::kStaticTree));
  ASSERT_TRUE(w.run_job([](Comm& c) {
    // All-pairs traffic over the pre-bound mesh.
    for (int peer = 0; peer < c.size(); ++peer) {
      if (peer == c.rank()) continue;
      std::int32_t out = c.rank(), in = -1;
      c.sendrecv(&out, 1, kInt32, peer, 3, &in, 1, kInt32, peer, 3);
      EXPECT_EQ(in, peer);
    }
  }));
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(w.report(r).vis_created, 5)
        << "tree init must create N-1 VIs on rank " << r;
    EXPECT_EQ(w.report(r).device_stats.get("mpi.parked_sends"), 0)
        << "every channel must be bound before user code on rank " << r;
  }
  // No wire handshakes at all: the OOB exchange replaces them.
  EXPECT_EQ(w.aggregate_stats().get("mpi.ondemand_connects"), 0);
}

TEST(StaticTreeConn, InitBeatsPairwiseStaticAtScale) {
  // The reason the extended Figure 8 uses it as the static baseline: the
  // aggregated exchange costs O(log N) hops + O(N) marshalling per rank
  // versus the O(N) serialized wire handshakes of pairwise static.
  double init_tree = 0, init_p2p = 0;
  {
    World w(16, make_options(ConnectionModel::kStaticTree));
    ASSERT_TRUE(w.run_job([](Comm&) {}));
    init_tree = w.metrics().mean_init_us;
  }
  {
    World w(16, make_options(ConnectionModel::kStaticPeerToPeer));
    ASSERT_TRUE(w.run_job([](Comm&) {}));
    init_p2p = w.metrics().mean_init_us;
  }
  EXPECT_LT(init_tree, init_p2p)
      << "bulk OOB exchange must beat per-pair wire handshakes";
}

TEST(InitTime, OnDemandInitBeatsStaticAndCsIsWorst) {
  // Figure 8's ordering at 8 processes on cLAN.
  double init_cs = 0, init_p2p = 0, init_od = 0;
  {
    World w(8, make_options(ConnectionModel::kStaticClientServer));
    ASSERT_TRUE(w.run_job([](Comm&) {}));
    init_cs = w.metrics().mean_init_us;
  }
  {
    World w(8, make_options(ConnectionModel::kStaticPeerToPeer));
    ASSERT_TRUE(w.run_job([](Comm&) {}));
    init_p2p = w.metrics().mean_init_us;
  }
  {
    World w(8, make_options(ConnectionModel::kOnDemand));
    ASSERT_TRUE(w.run_job([](Comm&) {}));
    init_od = w.metrics().mean_init_us;
  }
  EXPECT_GT(init_cs, init_p2p) << "serialized client/server must be slowest";
  EXPECT_GT(init_p2p, init_od) << "full-mesh init must cost more than none";
}

TEST(PinnedMemory, StaticPinsFullMeshOnDemandPinsUsage) {
  const auto run_ring = [](ConnectionModel m) {
    World w(8, make_options(m));
    EXPECT_TRUE(w.run_job([](Comm& c) {
      const int right = (c.rank() + 1) % c.size();
      const int left = (c.rank() - 1 + c.size()) % c.size();
      std::int32_t t = 0;
      c.sendrecv(&t, 1, kInt32, right, 1, &t, 1, kInt32, left, 1);
    }));
    return w.report(0).pinned_bytes_peak;
  };
  const auto static_pinned = run_ring(ConnectionModel::kStaticPeerToPeer);
  const auto od_pinned = run_ring(ConnectionModel::kOnDemand);
  // Static: 7 VIs x 120 kB of receive buffers (+ shared send pool);
  // on-demand: 2 VIs worth. The gap is the paper's wasted pinned memory.
  EXPECT_GT(static_pinned, od_pinned + 4 * 120 * 1024);
}

TEST(Deadline, DeadlockedProgramReportsFailure) {
  JobOptions opt = make_options();
  opt.deadline = sim::seconds(1);
  World w(2, opt);
  const RunResult result = w.run_job([](Comm& c) {
    std::int32_t v;
    c.recv(&v, 1, kInt32, 1 - c.rank(), 1);  // both receive, nobody sends
  });
  EXPECT_EQ(result.status, RunStatus::kDeadline);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.failed_ranks, (std::vector<Rank>{0, 1}));
  EXPECT_FALSE(w.report(0).finished);
  EXPECT_FALSE(w.report(1).finished);
}

TEST(DynamicCredits, GrowsWindowAndDeliversEverything) {
  // Paper's stated future work: dynamic flow control per VI connection.
  JobOptions opt = make_options(ConnectionModel::kOnDemand);
  opt.device.dynamic_credits = true;
  opt.device.initial_dynamic_credits = 4;
  World w(2, opt);
  ASSERT_TRUE(w.run_job([](Comm& c) {
    constexpr int kN = 100;
    if (c.rank() == 0) {
      for (std::int32_t i = 0; i < kN; ++i) c.send(&i, 1, kInt32, 1, 1);
    } else {
      for (std::int32_t i = 0; i < kN; ++i) {
        std::int32_t v = -1;
        c.recv(&v, 1, kInt32, 0, 1);
        ASSERT_EQ(v, i);
      }
    }
  }));
  EXPECT_GT(w.report(1).device_stats.get("mpi.credit_window_grown"), 0);
  // Initial pinned footprint is smaller than the fixed 32-credit window;
  // growth is bounded by it.
  EXPECT_LE(w.report(1).device_stats.get("mpi.pinned_recv_bytes"),
            32 * 3840);
}

}  // namespace
}  // namespace odmpi::mpi
