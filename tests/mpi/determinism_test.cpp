// Simulation-level properties: bit-identical reruns, virtual-time sanity,
// and calibration checks that anchor the paper reproduction.
#include <gtest/gtest.h>

#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

struct RunDigest {
  std::vector<sim::SimTime> finish_times;
  std::vector<int> vis;
  std::int64_t packets;

  bool operator==(const RunDigest&) const = default;
};

RunDigest run_mixed_workload(ConnectionModel model, bool bvia) {
  JobOptions opt = make_options(
      model, bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan());
  World w(6, opt);
  EXPECT_TRUE(w.run_job([](Comm& c) {
    sim::Rng rng(99, static_cast<std::uint64_t>(c.rank()));
    std::vector<std::int32_t> buf(512);
    for (int iter = 0; iter < 5; ++iter) {
      const int right = (c.rank() + 1) % c.size();
      const int left = (c.rank() - 1 + c.size()) % c.size();
      c.sendrecv(buf.data(), 256, kInt32, right, iter, buf.data(), 256,
                 kInt32, left, iter);
      double v = c.rank() + rng.next_double();
      double sum = 0;
      c.allreduce(&v, &sum, 1, kDouble, Op::kSum);
      if (iter % 2 == 0) c.barrier();
    }
  }));
  RunDigest d;
  for (int r = 0; r < 6; ++r) {
    d.finish_times.push_back(w.report(r).total_time);
    d.vis.push_back(w.report(r).vis_created);
  }
  d.packets = w.aggregate_stats().get("mpi.packets_sent");
  return d;
}

TEST(Determinism, IdenticalRunsProduceIdenticalTimesAndStats) {
  for (ConnectionModel m : {ConnectionModel::kOnDemand,
                            ConnectionModel::kStaticPeerToPeer}) {
    const RunDigest a = run_mixed_workload(m, false);
    const RunDigest b = run_mixed_workload(m, false);
    EXPECT_EQ(a, b) << "simulation is nondeterministic for "
                    << to_string(m);
  }
}

TEST(Determinism, DeviceProfilesProduceDifferentButStableTimes) {
  const RunDigest clan = run_mixed_workload(ConnectionModel::kOnDemand, false);
  const RunDigest bvia = run_mixed_workload(ConnectionModel::kOnDemand, true);
  EXPECT_NE(clan.finish_times, bvia.finish_times);
  // BVIA is the slower network: every rank finishes later.
  for (std::size_t r = 0; r < clan.finish_times.size(); ++r) {
    EXPECT_GT(bvia.finish_times[r], clan.finish_times[r]);
  }
}

TEST(Calibration, PingPongLatencyMatchesPaperRegime) {
  // MVICH small-message one-way latency: ~14 us on cLAN, ~35 us on BVIA
  // (Figure 2 of the paper). Keep the simulator anchored to those.
  const auto measure = [](via::DeviceProfile profile) {
    JobOptions opt = make_options(ConnectionModel::kStaticPeerToPeer,
                                  std::move(profile),
                                  WaitPolicy::polling());
    double result_us = 0;
    World w(2, opt);
    EXPECT_TRUE(w.run_job([&result_us](Comm& c) {
      std::int32_t buf = 0;
      constexpr int kIters = 200;
      // Warmup.
      for (int i = 0; i < 10; ++i) {
        if (c.rank() == 0) {
          c.send(&buf, 1, kInt32, 1, 0);
          c.recv(&buf, 1, kInt32, 1, 0);
        } else {
          c.recv(&buf, 1, kInt32, 0, 0);
          c.send(&buf, 1, kInt32, 0, 0);
        }
      }
      const double t0 = c.wtime();
      for (int i = 0; i < kIters; ++i) {
        if (c.rank() == 0) {
          c.send(&buf, 1, kInt32, 1, 0);
          c.recv(&buf, 1, kInt32, 1, 0);
        } else {
          c.recv(&buf, 1, kInt32, 0, 0);
          c.send(&buf, 1, kInt32, 0, 0);
        }
      }
      if (c.rank() == 0) {
        result_us = (c.wtime() - t0) * 1e6 / (2.0 * kIters);
      }
    }));
    return result_us;
  };
  const double clan_us = measure(via::DeviceProfile::clan());
  const double bvia_us = measure(via::DeviceProfile::bvia());
  EXPECT_GT(clan_us, 10.0);
  EXPECT_LT(clan_us, 20.0);
  EXPECT_GT(bvia_us, 28.0);
  EXPECT_LT(bvia_us, 45.0);
}

TEST(Calibration, BandwidthApproachesProfilePeak) {
  JobOptions opt = make_options(ConnectionModel::kStaticPeerToPeer,
                                via::DeviceProfile::clan(),
                                WaitPolicy::polling());
  double mbps = 0;
  World w(2, opt);
  ASSERT_TRUE(w.run_job([&mbps](Comm& c) {
    constexpr std::size_t kBytes = 256 * 1024;
    constexpr int kIters = 20;
    std::vector<std::byte> buf(kBytes);
    if (c.rank() == 0) {
      const double t0 = c.wtime();
      for (int i = 0; i < kIters; ++i)
        c.send(buf.data(), kBytes, kByte, 1, 0);
      std::int32_t ack;
      c.recv(&ack, 1, kInt32, 1, 1);
      mbps = kIters * kBytes / (c.wtime() - t0) / 1e6;
    } else {
      for (int i = 0; i < kIters; ++i)
        c.recv(buf.data(), kBytes, kByte, 0, 0);
      std::int32_t ack = 1;
      c.send(&ack, 1, kInt32, 0, 1);
    }
  }));
  EXPECT_GT(mbps, 85.0);   // cLAN peak ~112 MB/s minus protocol overhead
  EXPECT_LT(mbps, 115.0);
}

TEST(Calibration, SpinwaitPenaltyCompoundsAlongDependencyChains) {
  // The paper's spinwait effect (Figures 4-6): when each receive's
  // arrival depends on the *other* side's previous wake-up — as in
  // barrier rounds — every kernel wake-up delays the next send, and the
  // ~40 us penalties compound. A one-way stream does not compound (the
  // sender's cadence dominates); a compute+ping-pong loop does.
  const auto measure = [](WaitPolicy policy) {
    JobOptions opt = make_options(ConnectionModel::kStaticPeerToPeer,
                                  via::DeviceProfile::clan(), policy);
    double us = 0;
    World w(2, opt);
    EXPECT_TRUE(w.run_job([&us](Comm& c) {
      // Token passing: while one rank computes for 100 us (far beyond the
      // ~30 us spin window), the other waits idle — so under spinwait the
      // waiter really sleeps and pays the kernel wake-up, which delays
      // its own compute phase and compounds around the ring.
      constexpr int kRounds = 10;
      std::int32_t token = 0;
      const int other = 1 - c.rank();
      const double t0 = c.wtime();
      for (int i = 0; i < kRounds; ++i) {
        if (c.rank() == 0) {
          sim::Process::current()->sleep(sim::microseconds(100));
          c.send(&token, 1, kInt32, other, 0);
          c.recv(&token, 1, kInt32, other, 0);
        } else {
          c.recv(&token, 1, kInt32, other, 0);
          sim::Process::current()->sleep(sim::microseconds(100));
          c.send(&token, 1, kInt32, other, 0);
        }
      }
      if (c.rank() == 0) us = (c.wtime() - t0) * 1e6;
    }));
    return us;
  };
  const double spinwait_us = measure(WaitPolicy::spinwait(100));
  const double polling_us = measure(WaitPolicy::polling());
  // Two ~40 us wake-ups per round compound along the dependency chain.
  EXPECT_GT(spinwait_us, polling_us + 10 * 60.0);
}

}  // namespace
}  // namespace odmpi::mpi
