// Differential test for the bucketed MatchingEngine: replay seeded
// random interleavings of posts, arrivals, probes, claims, cancels and
// take_posted_from against the previous linear-scan implementation kept
// here as a reference oracle, asserting both engines make identical
// matching decisions. The linear scan over one insertion-ordered queue
// IS the MPI non-overtaking rule (MPI 1.2 section 3.5), so agreement
// with it proves the (context, source)-bucket + global-sequence scheme
// preserves match order, wildcards included.

#include "src/mpi/matching.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "src/mpi/request.h"
#include "src/mpi/types.h"

namespace odmpi::mpi {
namespace {

// The pre-bucketing MatchingEngine: single insertion-ordered queues,
// linear scans. Kept verbatim (modulo naming) as the semantic oracle.
class ReferenceMatchingEngine {
 public:
  void add_posted(RequestPtr recv) { posted_.push_back(std::move(recv)); }

  RequestPtr match_arrival(ContextId ctx, Rank src, Tag tag) {
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      RequestPtr& req = *it;
      if (MatchingEngine::matches(req->context, req->src, req->tag, ctx, src,
                                  tag)) {
        RequestPtr found = std::move(req);
        posted_.erase(it);
        return found;
      }
    }
    return nullptr;
  }

  UnexpectedMsg* peek_unexpected(ContextId ctx, Rank src, Tag tag) {
    for (auto& msg : unexpected_) {
      if (msg->claimed != nullptr) continue;
      if (MatchingEngine::matches(ctx, src, tag, msg->context, msg->src,
                                  msg->tag)) {
        return msg.get();
      }
    }
    return nullptr;
  }

  UnexpectedMsg* match_posted(const RequestPtr& recv) {
    return peek_unexpected(recv->context, recv->src, recv->tag);
  }

  UnexpectedMsg* add_unexpected(std::unique_ptr<UnexpectedMsg> msg) {
    unexpected_.push_back(std::move(msg));
    return unexpected_.back().get();
  }

  void remove_unexpected(UnexpectedMsg* msg) {
    auto it = std::find_if(unexpected_.begin(), unexpected_.end(),
                           [msg](const auto& m) { return m.get() == msg; });
    ASSERT_NE(it, unexpected_.end());
    unexpected_.erase(it);
  }

  bool cancel_posted(const RequestPtr& recv) {
    auto it = std::find(posted_.begin(), posted_.end(), recv);
    if (it == posted_.end()) return false;
    posted_.erase(it);
    return true;
  }

  std::vector<RequestPtr> take_posted_from(Rank src) {
    std::vector<RequestPtr> taken;
    for (auto it = posted_.begin(); it != posted_.end();) {
      if ((*it)->src == src) {
        taken.push_back(std::move(*it));
        it = posted_.erase(it);
      } else {
        ++it;
      }
    }
    return taken;
  }

  [[nodiscard]] std::size_t posted_count() const { return posted_.size(); }
  [[nodiscard]] std::size_t unexpected_count() const {
    return unexpected_.size();
  }

 private:
  std::deque<RequestPtr> posted_;
  std::deque<std::unique_ptr<UnexpectedMsg>> unexpected_;
};

RequestPtr make_recv(ContextId ctx, Rank src, Tag tag) {
  auto r = std::make_shared<RequestState>();
  r->kind = ReqKind::kRecv;
  r->context = ctx;
  r->src = src;
  r->tag = tag;
  return r;
}

std::unique_ptr<UnexpectedMsg> make_msg(ContextId ctx, Rank src, Tag tag,
                                        std::uint64_t id) {
  auto m = std::make_unique<UnexpectedMsg>();
  m->context = ctx;
  m->src = src;
  m->tag = tag;
  m->sender_cookie = id;  // identity for cross-engine comparison
  return m;
}

// Both engines hold their own copies of every request/message; pairs are
// correlated by position (posted) or by sender_cookie (unexpected).
struct PostedPair {
  RequestPtr dut;  // lives in the bucketed engine
  RequestPtr ref;  // lives in the reference engine
};
struct UnexpectedPair {
  UnexpectedMsg* dut;
  UnexpectedMsg* ref;
};

class DifferentialDriver {
 public:
  explicit DifferentialDriver(std::uint32_t seed) : rng_(seed) {}

  void run(int steps) {
    for (int i = 0; i < steps; ++i) {
      switch (rng_() % 8) {
        case 0:
        case 1:
          do_add_posted();
          break;
        case 2:
          do_match_arrival();
          break;
        case 3:
          do_add_unexpected();
          break;
        case 4:
          do_probe();
          break;
        case 5:
          do_match_posted_and_maybe_claim();
          break;
        case 6:
          do_remove_or_cancel();
          break;
        case 7:
          do_take_posted_from();
          break;
      }
      ASSERT_EQ(dut_.posted_count(), ref_.posted_count()) << "step " << i;
      ASSERT_EQ(dut_.unexpected_count(), ref_.unexpected_count())
          << "step " << i;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

 private:
  ContextId rand_ctx() { return static_cast<ContextId>(rng_() % 3); }
  Rank rand_src(bool allow_wild) {
    if (allow_wild && rng_() % 4 == 0) return kAnySource;
    return static_cast<Rank>(rng_() % 4);
  }
  Tag rand_tag(bool allow_wild) {
    if (allow_wild && rng_() % 4 == 0) return kAnyTag;
    return static_cast<Tag>(rng_() % 5);
  }

  void do_add_posted() {
    const ContextId ctx = rand_ctx();
    const Rank src = rand_src(/*allow_wild=*/true);
    const Tag tag = rand_tag(/*allow_wild=*/true);
    PostedPair pair{make_recv(ctx, src, tag), make_recv(ctx, src, tag)};
    dut_.add_posted(pair.dut);
    ref_.add_posted(pair.ref);
    posted_.push_back(std::move(pair));
  }

  void do_match_arrival() {
    const ContextId ctx = rand_ctx();
    const Rank src = rand_src(/*allow_wild=*/false);
    const Tag tag = rand_tag(/*allow_wild=*/false);
    RequestPtr got_dut = dut_.match_arrival(ctx, src, tag);
    RequestPtr got_ref = ref_.match_arrival(ctx, src, tag);
    ASSERT_EQ(got_dut == nullptr, got_ref == nullptr)
        << "arrival (" << ctx << "," << src << "," << tag << ")";
    if (got_dut == nullptr) return;
    // Both engines must have pulled the same logical receive.
    auto it = std::find_if(posted_.begin(), posted_.end(),
                           [&](const PostedPair& p) { return p.dut == got_dut; });
    ASSERT_NE(it, posted_.end());
    ASSERT_EQ(it->ref, got_ref) << "engines matched different receives";
    posted_.erase(it);
  }

  void do_add_unexpected() {
    const ContextId ctx = rand_ctx();
    const Rank src = rand_src(/*allow_wild=*/false);
    const Tag tag = rand_tag(/*allow_wild=*/false);
    const std::uint64_t id = next_id_++;
    UnexpectedPair pair{dut_.add_unexpected(make_msg(ctx, src, tag, id)),
                        ref_.add_unexpected(make_msg(ctx, src, tag, id))};
    unexpected_.push_back(pair);
  }

  void do_probe() {
    const ContextId ctx = rand_ctx();
    const Rank src = rand_src(/*allow_wild=*/true);
    const Tag tag = rand_tag(/*allow_wild=*/true);
    UnexpectedMsg* got_dut = dut_.peek_unexpected(ctx, src, tag);
    UnexpectedMsg* got_ref = ref_.peek_unexpected(ctx, src, tag);
    ASSERT_EQ(got_dut == nullptr, got_ref == nullptr)
        << "probe (" << ctx << "," << src << "," << tag << ")";
    if (got_dut != nullptr) {
      ASSERT_EQ(got_dut->sender_cookie, got_ref->sender_cookie)
          << "engines probed different messages";
    }
  }

  void do_match_posted_and_maybe_claim() {
    const RequestPtr probe = make_recv(rand_ctx(), rand_src(true),
                                       rand_tag(true));
    UnexpectedMsg* got_dut = dut_.match_posted(probe);
    UnexpectedMsg* got_ref = ref_.match_posted(probe);
    ASSERT_EQ(got_dut == nullptr, got_ref == nullptr);
    if (got_dut == nullptr) return;
    ASSERT_EQ(got_dut->sender_cookie, got_ref->sender_cookie);
    if (rng_() % 2 == 0) {
      // Claim in both engines: later probes must skip this entry.
      got_dut->claimed = probe;
      got_ref->claimed = probe;
    }
  }

  void do_remove_or_cancel() {
    if (rng_() % 2 == 0 && !unexpected_.empty()) {
      const std::size_t pick = rng_() % unexpected_.size();
      dut_.remove_unexpected(unexpected_[pick].dut);
      ref_.remove_unexpected(unexpected_[pick].ref);
      unexpected_.erase(unexpected_.begin() +
                        static_cast<std::ptrdiff_t>(pick));
    } else if (!posted_.empty()) {
      const std::size_t pick = rng_() % posted_.size();
      const bool ok_dut = dut_.cancel_posted(posted_[pick].dut);
      const bool ok_ref = ref_.cancel_posted(posted_[pick].ref);
      ASSERT_EQ(ok_dut, ok_ref);
      ASSERT_TRUE(ok_dut);  // pair list only holds still-queued receives
      posted_.erase(posted_.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }

  void do_take_posted_from() {
    const Rank src = rand_src(/*allow_wild=*/false);
    std::vector<RequestPtr> got_dut = dut_.take_posted_from(src);
    std::vector<RequestPtr> got_ref = ref_.take_posted_from(src);
    ASSERT_EQ(got_dut.size(), got_ref.size());
    for (std::size_t i = 0; i < got_dut.size(); ++i) {
      auto it = std::find_if(
          posted_.begin(), posted_.end(),
          [&](const PostedPair& p) { return p.dut == got_dut[i]; });
      ASSERT_NE(it, posted_.end());
      // Same receive at the same position proves identical post order.
      ASSERT_EQ(it->ref, got_ref[i]) << "take_posted_from order differs at "
                                     << i;
      posted_.erase(it);
    }
  }

  std::mt19937 rng_;
  MatchingEngine dut_;
  ReferenceMatchingEngine ref_;
  std::vector<PostedPair> posted_;
  std::vector<UnexpectedPair> unexpected_;
  std::uint64_t next_id_ = 1;
};

TEST(MatchingDifferential, RandomInterleavingsMatchLinearOracle) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    DifferentialDriver driver(seed);
    driver.run(400);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Directed non-overtaking case on top of the fuzzing: two same-envelope
// posts must match arrivals in post order even when a wildcard receive
// sits between them in a different bucket.
TEST(MatchingDifferential, WildcardBetweenExactPostsKeepsPostOrder) {
  MatchingEngine me;
  RequestPtr first = make_recv(0, 1, 7);
  RequestPtr wild = make_recv(0, kAnySource, kAnyTag);
  RequestPtr second = make_recv(0, 1, 7);
  me.add_posted(first);
  me.add_posted(wild);
  me.add_posted(second);
  EXPECT_EQ(me.match_arrival(0, 1, 7), first);
  EXPECT_EQ(me.match_arrival(0, 1, 7), wild);  // wildcard is now oldest
  EXPECT_EQ(me.match_arrival(0, 1, 7), second);
  EXPECT_EQ(me.match_arrival(0, 1, 7), nullptr);
}

}  // namespace
}  // namespace odmpi::mpi
