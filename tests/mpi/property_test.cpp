// Property-based tests: randomized traffic soups and collective sweeps,
// checked for delivery integrity, ordering, determinism, and complete
// independence from the connection-management strategy.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

// A randomized but deterministic traffic plan: every rank sends a set of
// messages (random peer, tag, size, mode) and posts the matching receives
// derived from the same plan. Content is a function of (src, dst, seq).
struct PlannedMessage {
  int src, dst, tag;
  std::size_t bytes;
  int mode;  // 0=send, 1=ssend, 2=bsend
};

std::vector<PlannedMessage> make_plan(int nprocs, std::uint64_t seed,
                                      int count) {
  sim::Rng rng(seed);
  std::vector<PlannedMessage> plan;
  plan.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    PlannedMessage m;
    m.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nprocs)));
    do {
      m.dst = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(nprocs)));
    } while (m.dst == m.src);
    m.tag = static_cast<int>(rng.next_below(5));
    // Mix of zero-byte, eager, multi-segment-eager, and rendezvous sizes.
    const std::size_t sizes[] = {0, 8, 512, 3776, 4800, 5001, 9000, 20000};
    m.bytes = sizes[rng.next_below(8)];
    m.mode = static_cast<int>(rng.next_below(3));
    plan.push_back(m);
  }
  return plan;
}

std::byte content_byte(const PlannedMessage& m, std::size_t offset, int seq) {
  return static_cast<std::byte>(
      (m.src * 7 + m.dst * 13 + m.tag * 31 + seq * 3 + offset) & 0xFF);
}

// Runs the plan and returns a per-rank digest of received bytes.
std::vector<std::uint64_t> run_plan(int nprocs, std::uint64_t seed, int count,
                                    ConnectionModel model, bool bvia) {
  const auto plan = make_plan(nprocs, seed, count);
  std::vector<std::uint64_t> digest(static_cast<std::size_t>(nprocs), 0);
  JobOptions opt = make_options(
      model, bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan());
  World world(nprocs, opt);
  EXPECT_TRUE(world.run_job([&](Comm& c) {
    const int me = c.rank();
    // Post all my receives (in plan order per source, preserving the
    // non-overtaking requirement), then fire all my sends.
    std::vector<Request> reqs;
    std::vector<std::vector<std::byte>> recv_bufs;
    std::vector<int> recv_plan_idx;
    for (int i = 0; i < count; ++i) {
      if (plan[static_cast<std::size_t>(i)].dst != me) continue;
      const auto& m = plan[static_cast<std::size_t>(i)];
      recv_bufs.emplace_back(m.bytes ? m.bytes : 1);
      recv_plan_idx.push_back(i);
      reqs.push_back(c.irecv(recv_bufs.back().data(),
                             static_cast<int>(m.bytes), kByte, m.src, m.tag));
    }
    std::vector<std::vector<std::byte>> send_bufs;
    for (int i = 0; i < count; ++i) {
      if (plan[static_cast<std::size_t>(i)].src != me) continue;
      const auto& m = plan[static_cast<std::size_t>(i)];
      send_bufs.emplace_back(m.bytes ? m.bytes : 1);
      for (std::size_t k = 0; k < m.bytes; ++k)
        send_bufs.back()[k] = content_byte(m, k, i);
      switch (m.mode) {
        case 0:
          reqs.push_back(c.isend(send_bufs.back().data(),
                                 static_cast<int>(m.bytes), kByte, m.dst,
                                 m.tag));
          break;
        case 1:
          reqs.push_back(c.issend(send_bufs.back().data(),
                                  static_cast<int>(m.bytes), kByte, m.dst,
                                  m.tag));
          break;
        default:
          reqs.push_back(c.ibsend(send_bufs.back().data(),
                                  static_cast<int>(m.bytes), kByte, m.dst,
                                  m.tag));
          break;
      }
    }
    wait_all(reqs);
    // Digest everything received.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& buf : recv_bufs) {
      for (std::byte b : buf) {
        h ^= static_cast<std::uint64_t>(b);
        h *= 0x100000001b3ULL;
      }
    }
    digest[static_cast<std::size_t>(me)] = h;
  })) << "traffic soup deadlocked (seed " << seed << ")";
  return digest;
}

class TrafficSoup : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrafficSoup, DeliveryIndependentOfConnectionModel) {
  const std::uint64_t seed = GetParam();
  const auto od = run_plan(6, seed, 60, ConnectionModel::kOnDemand, false);
  const auto st =
      run_plan(6, seed, 60, ConnectionModel::kStaticPeerToPeer, false);
  EXPECT_EQ(od, st) << "received data differs between connection models";
}

TEST_P(TrafficSoup, DeliveryIndependentOfDevice) {
  const std::uint64_t seed = GetParam();
  const auto clan = run_plan(5, seed, 40, ConnectionModel::kOnDemand, false);
  const auto bvia = run_plan(5, seed, 40, ConnectionModel::kOnDemand, true);
  EXPECT_EQ(clan, bvia) << "received data differs between devices";
}

TEST_P(TrafficSoup, ContentIntegrityAgainstThePlan) {
  // Re-run with per-message verification instead of a digest: receives
  // posted per (src, tag) stream must see messages in plan order with the
  // exact planned bytes.
  const std::uint64_t seed = GetParam();
  const int nprocs = 4, count = 50;
  const auto plan = make_plan(nprocs, seed, count);
  JobOptions opt = make_options();
  World world(nprocs, opt);
  ASSERT_TRUE(world.run_job([&](Comm& c) {
    const int me = c.rank();
    std::vector<Request> sends;
    std::vector<std::vector<std::byte>> send_bufs;
    for (int i = 0; i < count; ++i) {
      const auto& m = plan[static_cast<std::size_t>(i)];
      if (m.src == me) {
        send_bufs.emplace_back(m.bytes ? m.bytes : 1);
        for (std::size_t k = 0; k < m.bytes; ++k)
          send_bufs.back()[k] = content_byte(m, k, i);
        sends.push_back(c.isend(send_bufs.back().data(),
                                static_cast<int>(m.bytes), kByte, m.dst,
                                m.tag));
      }
      if (m.dst == me) {
        std::vector<std::byte> buf(m.bytes ? m.bytes : 1);
        MsgStatus st =
            c.recv(buf.data(), static_cast<int>(m.bytes), kByte, m.src, m.tag);
        ASSERT_EQ(st.count_bytes, m.bytes);
        for (std::size_t k = 0; k < m.bytes; ++k) {
          ASSERT_EQ(buf[k], content_byte(m, k, i))
              << "corrupt byte " << k << " of plan message " << i;
        }
      }
    }
    wait_all(sends);
  }));
  // A correct program never trips VIA's drop-on-no-descriptor.
  EXPECT_EQ(world.aggregate_stats().get("msg.dropped_no_desc"), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficSoup,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

class RandomCollectives : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCollectives, MatchSerialReference) {
  const std::uint64_t seed = GetParam();
  constexpr int kN = 6;
  // Deterministic per-rank inputs.
  std::vector<std::vector<std::int64_t>> inputs(kN);
  for (int r = 0; r < kN; ++r) {
    sim::Rng rng(seed, static_cast<std::uint64_t>(r));
    inputs[static_cast<std::size_t>(r)].resize(8);
    for (auto& v : inputs[static_cast<std::size_t>(r)])
      v = rng.next_int(-1000, 1000);
  }
  // Serial references.
  std::vector<std::int64_t> ref_sum(8, 0), ref_max(8, INT64_MIN);
  for (int r = 0; r < kN; ++r) {
    for (int i = 0; i < 8; ++i) {
      ref_sum[static_cast<std::size_t>(i)] +=
          inputs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      ref_max[static_cast<std::size_t>(i)] =
          std::max(ref_max[static_cast<std::size_t>(i)],
                   inputs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)]);
    }
  }
  JobOptions opt = make_options();
  World world(kN, opt);
  ASSERT_TRUE(world.run_job([&](Comm& c) {
    const auto& mine = inputs[static_cast<std::size_t>(c.rank())];
    std::vector<std::int64_t> out(8);
    c.allreduce(mine.data(), out.data(), 8, kInt64, Op::kSum);
    EXPECT_EQ(out, ref_sum);
    c.allreduce(mine.data(), out.data(), 8, kInt64, Op::kMax);
    EXPECT_EQ(out, ref_max);

    // reduce to a random root.
    sim::Rng rng(seed, 999);
    const int root = static_cast<int>(rng.next_below(kN));
    std::vector<std::int64_t> rout(8, -1);
    c.reduce(mine.data(), rout.data(), 8, kInt64, Op::kSum, root);
    if (c.rank() == root) EXPECT_EQ(rout, ref_sum);

    // allgather + manual flatten reference.
    std::vector<std::int64_t> gathered(8 * kN);
    c.allgather(mine.data(), 8, gathered.data(), kInt64);
    for (int r = 0; r < kN; ++r) {
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(r * 8 + i)],
                  inputs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)]);
      }
    }
  }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCollectives,
                         ::testing::Values(7u, 77u, 777u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(Scale, RingAt64RanksOnDemand) {
  JobOptions opt = make_options();
  World world(64, opt);
  ASSERT_TRUE(world.run_job([](Comm& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    std::int32_t tok = c.rank(), in = -1;
    c.sendrecv(&tok, 1, kInt32, right, 0, &in, 1, kInt32, left, 0);
    EXPECT_EQ(in, left);
    const std::int64_t sum = c.allreduce_one<std::int64_t>(c.rank(),
                                                           Op::kSum);
    EXPECT_EQ(sum, 64 * 63 / 2);
  }));
  // Ring + allreduce partners only: far below the 63 a static mesh pins.
  EXPECT_LT(world.metrics().mean_vis_per_process, 9.0);
}

TEST(Scale, StaticFullMeshAt48Ranks) {
  JobOptions opt = make_options(ConnectionModel::kStaticPeerToPeer);
  World world(48, opt);
  ASSERT_TRUE(world.run_job([](Comm& c) { c.barrier(); }));
  for (int r = 0; r < 48; ++r)
    ASSERT_EQ(world.report(r).vis_created, 47);
}

TEST(Stress, ConcurrentTrafficOnManyCommunicators) {
  JobOptions opt = make_options();
  World world(8, opt);
  ASSERT_TRUE(world.run_job([](Comm& c) {
    Comm a = c.dup();
    Comm b = c.split(c.rank() % 2, c.rank());
    // Interleave collectives across the three communicators.
    for (int i = 0; i < 5; ++i) {
      const std::int64_t s1 = c.allreduce_one<std::int64_t>(1, Op::kSum);
      EXPECT_EQ(s1, 8);
      const std::int64_t s2 = a.allreduce_one<std::int64_t>(2, Op::kSum);
      EXPECT_EQ(s2, 16);
      const std::int64_t s3 = b.allreduce_one<std::int64_t>(3, Op::kSum);
      EXPECT_EQ(s3, 12);
      a.barrier();
    }
  }));
}

TEST(Stress, ManySmallUnexpectedMessages) {
  // All sends fired before any receive is posted: everything lands in the
  // unexpected queue, exercising its ordering and memory handling.
  JobOptions opt = make_options();
  World world(4, opt);
  ASSERT_TRUE(world.run_job([](Comm& c) {
    constexpr int kMsgs = 64;
    if (c.rank() != 0) {
      for (std::int32_t i = 0; i < kMsgs; ++i) {
        std::int32_t v = c.rank() * 1000 + i;
        c.bsend(&v, 1, kInt32, 0, i % 7);
      }
    }
    c.barrier();  // everything is in flight / queued before rank 0 recvs
    if (c.rank() == 0) {
      int received = 0;
      std::map<int, std::int32_t> last_per_src;
      for (int i = 0; i < 3 * kMsgs; ++i) {
        std::int32_t v = -1;
        MsgStatus st = c.recv(&v, 1, kInt32, kAnySource, kAnyTag);
        ++received;
        auto it = last_per_src.find(st.source);
        if (it != last_per_src.end()) {
          // Same (src, tag) stream must be ordered; across tags we only
          // check the per-source sequence grows for equal tags.
          if ((it->second % 7) == (v % 7)) EXPECT_LT(it->second, v);
        }
        last_per_src[st.source] = v;
      }
      EXPECT_EQ(received, 3 * kMsgs);
    }
  }));
}

}  // namespace
}  // namespace odmpi::mpi
