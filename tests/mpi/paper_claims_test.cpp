// Executable versions of the paper's headline claims, so regressions in
// the cost model or the protocol stack that would silently break the
// reproduction fail loudly here.
#include <gtest/gtest.h>

#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

double barrier_us(ConnectionModel model, WaitPolicy policy, bool bvia,
                  int nprocs) {
  JobOptions opt = make_options(
      model, bvia ? via::DeviceProfile::bvia() : via::DeviceProfile::clan(),
      policy);
  double result = -1;
  World w(nprocs, opt);
  EXPECT_TRUE(w.run_job([&](Comm& c) {
    for (int i = 0; i < 5; ++i) c.barrier();
    const double t0 = c.wtime();
    for (int i = 0; i < 200; ++i) c.barrier();
    double mine = (c.wtime() - t0) * 1e6 / 200;
    double sum = 0;
    c.allreduce(&mine, &sum, 1, kDouble, Op::kSum);
    if (c.rank() == 0) result = sum / c.size();
  }));
  return result;
}

double pingpong_us(std::size_t bytes, WaitPolicy policy) {
  JobOptions opt = make_options(ConnectionModel::kStaticPeerToPeer,
                                via::DeviceProfile::clan(), policy);
  double result = -1;
  World w(2, opt);
  EXPECT_TRUE(w.run_job([&](Comm& c) {
    std::vector<std::byte> buf(bytes);
    const auto round = [&] {
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, kByte, 1, 0);
        c.recv(buf.data(), bytes, kByte, 1, 0);
      } else {
        c.recv(buf.data(), bytes, kByte, 0, 0);
        c.send(buf.data(), bytes, kByte, 0, 0);
      }
    };
    for (int i = 0; i < 5; ++i) round();
    const double t0 = c.wtime();
    for (int i = 0; i < 50; ++i) round();
    if (c.rank() == 0) result = (c.wtime() - t0) * 1e6 / 100;
  }));
  return result;
}

TEST(PaperClaims, OnDemandMatchesStaticPollingBarrierOnClan) {
  // Section 5.4: "the on-demand mechanism can achieve same results as the
  // static mechanism using polling" (Figure 4a).
  const double od = barrier_us(ConnectionModel::kOnDemand,
                               WaitPolicy::polling(), false, 8);
  const double st = barrier_us(ConnectionModel::kStaticPeerToPeer,
                               WaitPolicy::polling(), false, 8);
  EXPECT_NEAR(od, st, 0.02 * st);
}

TEST(PaperClaims, SpinwaitIsNoGoodForBarrier) {
  // Section 5.4: non-power-of-two sizes leave processes past the spin
  // budget, and the kernel wake-ups compound (Figure 4a).
  const double spin = barrier_us(ConnectionModel::kStaticPeerToPeer,
                                 WaitPolicy::spinwait(100), false, 5);
  const double poll = barrier_us(ConnectionModel::kStaticPeerToPeer,
                                 WaitPolicy::polling(), false, 5);
  EXPECT_GT(spin, 1.5 * poll);
}

TEST(PaperClaims, OnDemandBeatsStaticBarrierOnBerkeleyVia) {
  // Section 5.4 / Figure 4b: 161 vs 196 us at 8 nodes in the paper —
  // fewer open VIs means a faster NIC.
  const double od = barrier_us(ConnectionModel::kOnDemand,
                               WaitPolicy::polling(), true, 8);
  const double st = barrier_us(ConnectionModel::kStaticPeerToPeer,
                               WaitPolicy::polling(), true, 8);
  EXPECT_LT(od, st);
}

TEST(PaperClaims, EagerToRendezvousJumpAtThreshold) {
  // Section 5.3: "a jump happens around 5000 bytes".
  const double below = pingpong_us(4999, WaitPolicy::polling());
  const double above = pingpong_us(5001, WaitPolicy::polling());
  EXPECT_GT(above, below + 15.0) << "no protocol switch visible at 5000 B";
}

TEST(PaperClaims, NonPowerOfTwoFluctuation) {
  // Section 5.4: "If the number of processes is not a power 2 number,
  // fluctuation occurs since extra steps are needed".
  const double np4 = barrier_us(ConnectionModel::kStaticPeerToPeer,
                                WaitPolicy::polling(), false, 4);
  const double np5 = barrier_us(ConnectionModel::kStaticPeerToPeer,
                                WaitPolicy::polling(), false, 5);
  const double np8 = barrier_us(ConnectionModel::kStaticPeerToPeer,
                                WaitPolicy::polling(), false, 8);
  EXPECT_GT(np5, np4);  // extra fold/unfold step
  EXPECT_GT(np5, 0.9 * np8);  // np=5 costs nearly as much as np=8
}

TEST(PaperClaims, OnDemandResourceUsageScalesWithApplicationNotSystem) {
  // The abstract's core sentence: "resource usage scales only as demanded
  // by the application itself, not the underlying system". Same ring
  // application at three system sizes: on-demand VI count is constant.
  for (int np : {8, 16, 32}) {
    World w(np, make_options(ConnectionModel::kOnDemand));
    ASSERT_TRUE(w.run_job([](Comm& c) {
      const int right = (c.rank() + 1) % c.size();
      const int left = (c.rank() - 1 + c.size()) % c.size();
      std::int32_t t = 0;
      c.sendrecv(&t, 1, kInt32, right, 1, &t, 1, kInt32, left, 1);
    }));
    EXPECT_DOUBLE_EQ(w.metrics().mean_vis_per_process, 2.0)
        << "ring VI count must not depend on the system size (np=" << np
        << ")";
  }
}

TEST(PaperClaims, ConnectionTimeAmortizesWithTraffic) {
  // Section 5.5: "This connection overhead can be amortized by all
  // communication operations on that connection." The per-message cost
  // gap between on-demand and static shrinks as the message count grows.
  const auto run_msgs = [](ConnectionModel m, int msgs) {
    JobOptions opt = make_options(m, via::DeviceProfile::clan(),
                                  WaitPolicy::polling());
    double secs = -1;
    World w(2, opt);
    EXPECT_TRUE(w.run_job([&](Comm& c) {
      std::int32_t v = 0;
      const double t0 = c.wtime();
      for (int i = 0; i < msgs; ++i) {
        if (c.rank() == 0) {
          c.send(&v, 1, kInt32, 1, 0);
          c.recv(&v, 1, kInt32, 1, 0);
        } else {
          c.recv(&v, 1, kInt32, 0, 0);
          c.send(&v, 1, kInt32, 0, 0);
        }
      }
      if (c.rank() == 0) secs = c.wtime() - t0;
    }));
    return secs;
  };
  const double few_ratio =
      run_msgs(ConnectionModel::kOnDemand, 5) /
      run_msgs(ConnectionModel::kStaticPeerToPeer, 5);
  const double many_ratio =
      run_msgs(ConnectionModel::kOnDemand, 500) /
      run_msgs(ConnectionModel::kStaticPeerToPeer, 500);
  EXPECT_GT(few_ratio, 1.5) << "5 messages cannot hide a connection setup";
  EXPECT_LT(many_ratio, 1.02) << "500 messages must amortize it";
}

}  // namespace
}  // namespace odmpi::mpi
