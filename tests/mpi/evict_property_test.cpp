// Property / stress battery for resource-capped connection management
// (DeviceConfig::max_vis): under heavy channel churn the per-process VI
// budget must hold at every progress step, evicted pairs must reconnect
// transparently with per-pair message order preserved, eviction must
// never strand channel state, and the whole machine must keep these
// guarantees under fault injection (the CI seed matrix re-runs the
// *FaultMatrix tests with several ODMPI_FAULT_SEED values).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tests/mpi/mpi_test_util.h"

namespace odmpi::mpi {
namespace {

using testing::make_options;

/// Seed for this run: ODMPI_FAULT_SEED if set (the CI matrix), else fixed.
std::uint64_t fault_seed() {
  if (const char* env = std::getenv("ODMPI_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xFA417;
}

JobOptions capped_options(int max_vis) {
  JobOptions opt = make_options(ConnectionModel::kOnDemand);
  opt.device.max_vis = max_vis;
  return opt;
}

/// The budget invariant: the live VI count never exceeds max_vis — a
/// victim is fully torn down before its replacement is created, so this
/// holds at *every* step, not just between operations.
void check_budget(Comm& comm, int budget) {
  ASSERT_LE(comm.device().nic().open_vi_count(), budget)
      << "rank " << comm.rank() << " exceeded its VI budget";
  ASSERT_LE(comm.device().open_channel_vis(), budget);
}

/// An evicted channel (kUnconnected again but once held a VI) must be
/// left with nothing stranded: no VI, no queued packets, no partial eager
/// reassembly, no eager buffers still pinned.
void check_evicted_channels_clean(Comm& comm) {
  Device& dev = comm.device();
  for (int p = 0; p < comm.size(); ++p) {
    if (p == comm.rank()) continue;
    const Channel& ch = dev.channel(p);
    if (ch.state != Channel::State::kUnconnected || !ch.ever_had_vi) continue;
    ASSERT_EQ(ch.vi, nullptr);
    ASSERT_TRUE(ch.outq.empty()) << "eviction stranded queued packets";
    ASSERT_FALSE(ch.in_req) << "eviction stranded a partial eager recv";
    ASSERT_EQ(ch.in_unexp, nullptr);
    ASSERT_EQ(ch.in_total, 0u);
    ASSERT_TRUE(ch.recv_bufs.empty()) << "eviction leaked eager buffers";
  }
}

// ---------------------------------------------------------------------------
// The ISSUE's 64-rank churn: every round each rank talks to a new pair of
// peers (send to (r+t)%P, recv from (r-t+P)%P), so with budget 4 almost
// every round forces evictions on both sides. The budget and cleanliness
// invariants are checked after every round on every rank.
TEST(EvictProperty, RotatingChurn64RanksStaysUnderBudget) {
  constexpr int kP = 64;
  constexpr int kBudget = 4;
  constexpr int kCount = 48;
  World world(kP, capped_options(kBudget));
  ASSERT_TRUE(world.run_job([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<double> sbuf(kCount), rbuf(kCount);
    for (int t = 1; t < kP; ++t) {
      const int dst = (r + t) % kP;
      const int src = (r - t + kP) % kP;
      for (int i = 0; i < kCount; ++i) sbuf[i] = r * 1.0e6 + t * 1.0e3 + i;
      comm.sendrecv(sbuf.data(), kCount, kDouble, dst, t, rbuf.data(), kCount,
                    kDouble, src, t);
      for (int i = 0; i < kCount; ++i) {
        ASSERT_EQ(rbuf[i], src * 1.0e6 + t * 1.0e3 + i)
            << "payload corrupted across eviction churn (round " << t << ")";
      }
      check_budget(comm, kBudget);
      check_evicted_channels_clean(comm);
    }
  }));
  for (int r = 0; r < kP; ++r) {
    EXPECT_LE(world.report(r).vis_open_peak, kBudget)
        << "rank " << r << " peak VI count over budget";
  }
  auto stats = world.aggregate_stats();
  EXPECT_GT(stats.get("mpi.evictions"), 0) << "cap 4 with 63 peers must evict";
  EXPECT_GT(stats.get("mpi.reconnects"), 0)
      << "rotating pattern revisits peers, so evictions imply reconnects";
  EXPECT_EQ(stats.get("mpi.channel_failures"), 0);
}

// Budget invariant at *every* progress step: requests are polled by hand
// with test() so the VI count is observed between individual progress
// passes, not just between whole operations.
TEST(EvictProperty, BudgetHeldAtEveryProgressStep) {
  constexpr int kP = 12;
  constexpr int kBudget = 3;
  World world(kP, capped_options(kBudget));
  ASSERT_TRUE(world.run_job([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<double> rvals(kP, -1.0), svals(kP, 0.0);
    std::vector<Request> reqs;
    for (int o = 1; o < kP; ++o) {
      const int peer = (r + o) % kP;
      reqs.push_back(comm.irecv(&rvals[peer], 1, kDouble, peer, 100 + r));
    }
    for (int o = 1; o < kP; ++o) {
      const int peer = (r + o) % kP;
      svals[peer] = r * 1000.0 + peer;
      reqs.push_back(comm.isend(&svals[peer], 1, kDouble, peer, 100 + peer));
    }
    bool all_done = false;
    while (!all_done) {
      all_done = true;
      for (auto& rq : reqs) {
        if (!rq.test()) all_done = false;
        check_budget(comm, kBudget);
      }
      check_evicted_channels_clean(comm);
      // yield() is the simulator's interleaving point: it lets queued
      // deliveries land between polls, like a real NIC would interleave
      // with a polling host loop.
      if (!all_done) sim::Process::current()->yield();
    }
    for (int o = 1; o < kP; ++o) {
      const int peer = (r + o) % kP;
      ASSERT_EQ(rvals[peer], peer * 1000.0 + r);
    }
  }));
}

// Per-pair ordering across evict/reconnect cycles: every pair exchanges a
// sequence number on the SAME tag once per epoch; with budget 2 and 7
// peers the pair's channel is evicted and rebuilt between almost every
// meeting. Receiving the expected sequence proves the drain was in order
// and nothing was lost or duplicated across the teardown.
TEST(EvictProperty, SamePairOrderingSurvivesEvictReconnectCycles) {
  constexpr int kP = 8;
  constexpr int kBudget = 2;
  constexpr int kEpochs = 4;
  World world(kP, capped_options(kBudget));
  ASSERT_TRUE(world.run_job([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<int> seq_out(kP, 0), seq_in(kP, 0);
    for (int e = 0; e < kEpochs; ++e) {
      for (int t = 1; t < kP; ++t) {
        const int dst = (r + t) % kP;
        const int src = (r - t + kP) % kP;
        const double out = seq_out[dst]++;
        double in = -1.0;
        comm.sendrecv(&out, 1, kDouble, dst, 0, &in, 1, kDouble, src, 0);
        ASSERT_EQ(in, seq_in[src]++)
            << "pair (" << src << " -> " << r
            << ") reordered across reconnect (epoch " << e << ")";
        check_budget(comm, kBudget);
      }
      check_evicted_channels_clean(comm);
    }
  }));
  auto stats = world.aggregate_stats();
  EXPECT_GT(stats.get("mpi.evictions"), 0);
  EXPECT_GT(stats.get("mpi.reconnects"), 0);
  EXPECT_EQ(stats.get("mpi.channel_failures"), 0);
}

// Race: eviction vs the MPI_ANY_SOURCE fan-out of section 3.5. The root's
// wildcard receive wants a connection to every member while its budget
// only holds 3; the deferred-connect FIFO must cycle slots through
// evictions until every sender has been heard. Roots rotate so incoming
// pressure also lands on ranks mid-churn.
TEST(EvictProperty, AnySourceFanInUnderCap) {
  constexpr int kP = 10;
  constexpr int kBudget = 3;
  constexpr int kRounds = 3;
  World world(kP, capped_options(kBudget));
  ASSERT_TRUE(world.run_job([&](Comm& comm) {
    const int r = comm.rank();
    for (int t = 0; t < kRounds; ++t) {
      const int root = t % kP;
      if (r == root) {
        std::vector<int> seen(kP, 0);
        for (int k = 0; k < kP - 1; ++k) {
          double v = -1.0;
          MsgStatus st = comm.recv(&v, 1, kDouble, kAnySource, 500 + t);
          ASSERT_GE(st.source, 0);
          ASSERT_LT(st.source, kP);
          ASSERT_NE(st.source, root);
          ASSERT_EQ(v, st.source * 10.0 + t) << "wrong payload for source";
          ++seen[static_cast<std::size_t>(st.source)];
          check_budget(comm, kBudget);
        }
        for (int p = 0; p < kP; ++p) {
          ASSERT_EQ(seen[static_cast<std::size_t>(p)], p == root ? 0 : 1)
              << "fan-in lost or duplicated a sender";
        }
      } else {
        const double v = r * 10.0 + t;
        comm.send(&v, 1, kDouble, root, 500 + t);
        check_budget(comm, kBudget);
      }
      comm.barrier();
      check_evicted_channels_clean(comm);
    }
  }));
  auto stats = world.aggregate_stats();
  EXPECT_GT(stats.get("mpi.evictions"), 0);
  EXPECT_EQ(stats.get("mpi.channel_failures"), 0);
}

// Rendezvous traffic (above eager_threshold) in the churn: a channel with
// an in-flight RTS/CTS/RDMA exchange is not evictable, so large transfers
// must complete untouched while smaller channels cycle around them.
TEST(EvictProperty, RendezvousSurvivesChurn) {
  constexpr int kP = 8;
  constexpr int kBudget = 3;
  constexpr int kBig = 20000;  // bytes, well above the 5000 B threshold
  World world(kP, capped_options(kBudget));
  ASSERT_TRUE(world.run_job([&](Comm& comm) {
    const int r = comm.rank();
    const int n = kBig / static_cast<int>(sizeof(double));
    std::vector<double> sbuf(static_cast<std::size_t>(n)),
        rbuf(static_cast<std::size_t>(n));
    for (int t = 1; t < kP; ++t) {
      const int dst = (r + t) % kP;
      const int src = (r - t + kP) % kP;
      for (int i = 0; i < n; ++i) sbuf[static_cast<std::size_t>(i)] = r + t * 0.5 + i * 1e-3;
      comm.sendrecv(sbuf.data(), n, kDouble, dst, t, rbuf.data(), n, kDouble,
                    src, t);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(rbuf[static_cast<std::size_t>(i)], src + t * 0.5 + i * 1e-3);
      }
      check_budget(comm, kBudget);
    }
  }));
  auto stats = world.aggregate_stats();
  EXPECT_GT(stats.get("mpi.rndv_sends"), 0);
  EXPECT_GT(stats.get("mpi.evictions"), 0);
  EXPECT_EQ(stats.get("mpi.channel_failures"), 0);
}

// With the default unlimited budget the eviction machinery must never
// run: zero evictions, zero reconnects, and the peak VI count reaches the
// full peer fan-out exactly as before the feature existed.
TEST(EvictProperty, UnlimitedBudgetNeverEvicts) {
  constexpr int kP = 8;
  World world(kP, capped_options(0));
  ASSERT_TRUE(world.run_job([&](Comm& comm) {
    const int r = comm.rank();
    for (int t = 1; t < kP; ++t) {
      const int dst = (r + t) % kP;
      const int src = (r - t + kP) % kP;
      const double out = r;
      double in = -1.0;
      comm.sendrecv(&out, 1, kDouble, dst, t, &in, 1, kDouble, src, t);
      ASSERT_EQ(in, src);
    }
  }));
  auto stats = world.aggregate_stats();
  EXPECT_EQ(stats.get("mpi.evictions"), 0);
  EXPECT_EQ(stats.get("mpi.reconnects"), 0);
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(world.report(r).vis_open_peak, kP - 1);
  }
}

// Same seed + same capped config => bit-identical stats and completion
// time. Eviction decisions (LRU choice, defer order) must be as
// deterministic as everything else in the simulator.
TEST(EvictProperty, CappedRunReplaysBitForBit) {
  auto run_once = [](sim::SimTime* when) {
    World world(8, capped_options(2));
    EXPECT_TRUE(world.run_job([&](Comm& comm) {
      const int r = comm.rank();
      const int kP = comm.size();
      for (int e = 0; e < 3; ++e) {
        for (int t = 1; t < kP; ++t) {
          const double out = r + e;
          double in = -1.0;
          comm.sendrecv(&out, 1, kDouble, (r + t) % kP, 0, &in, 1, kDouble,
                        (r - t + kP) % kP, 0);
        }
      }
    }));
    *when = world.completion_time();
    return world.aggregate_stats().all();
  };
  sim::SimTime t1 = 0, t2 = 0;
  const auto s1 = run_once(&t1);
  const auto s2 = run_once(&t2);
  EXPECT_EQ(s1, s2) << "capped replay diverged: stats differ";
  EXPECT_EQ(t1, t2) << "capped replay diverged: completion time differs";
}

// ---------------------------------------------------------------------------
// Fault matrix: the eviction handshake and its reconnects under lossy
// control packets (connection handshakes, disconnect notifications) and
// lossy data packets (eager traffic including kEvictReq/kEvictAck, which
// reliable delivery retransmits). The invariants and payload checks are
// the same as in the clean runs; seeds rotate via ODMPI_FAULT_SEED.
struct EvictFaultCase {
  double control_drop;
  double data_drop;
  int budget;
};

class EvictFaultMatrix : public ::testing::TestWithParam<EvictFaultCase> {};

TEST_P(EvictFaultMatrix, ChurnKeepsInvariantsUnderLoss) {
  const EvictFaultCase& p = GetParam();
  constexpr int kP = 8;
  constexpr int kEpochs = 2;
  JobOptions opt = capped_options(p.budget);
  opt.fault.enabled = true;
  opt.fault.seed = fault_seed();
  opt.fault.control_drop_rate = p.control_drop;
  opt.fault.data_drop_rate = p.data_drop;
  World world(kP, opt);
  ASSERT_TRUE(world.run_job([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<int> seq_out(kP, 0), seq_in(kP, 0);
    for (int e = 0; e < kEpochs; ++e) {
      for (int t = 1; t < kP; ++t) {
        const int dst = (r + t) % kP;
        const int src = (r - t + kP) % kP;
        const double out = seq_out[dst]++;
        double in = -1.0;
        comm.sendrecv(&out, 1, kDouble, dst, 0, &in, 1, kDouble, src, 0);
        ASSERT_EQ(in, seq_in[src]++)
            << "ordering broke under faults (pair " << src << "->" << r
            << ", seed 0x" << std::hex << fault_seed() << ")";
        check_budget(comm, p.budget);
      }
      check_evicted_channels_clean(comm);
    }
  })) << "churn deadlocked under faults (seed 0x" << std::hex << fault_seed()
      << ")";
  auto stats = world.aggregate_stats();
  EXPECT_GT(stats.get("mpi.evictions"), 0);
  EXPECT_EQ(stats.get("mpi.channel_failures"), 0)
      << "recoverable loss rates must not kill channels";
}

INSTANTIATE_TEST_SUITE_P(
    Loss, EvictFaultMatrix,
    ::testing::Values(EvictFaultCase{0.01, 0.0, 4},
                      EvictFaultCase{0.05, 0.0, 4},
                      EvictFaultCase{0.01, 0.01, 2},
                      EvictFaultCase{0.05, 0.02, 2}),
    [](const ::testing::TestParamInfo<EvictFaultCase>& ti) {
      std::string s = "ctl";
      s += std::to_string(static_cast<int>(ti.param.control_drop * 100));
      s += "_data";
      s += std::to_string(static_cast<int>(ti.param.data_drop * 100));
      s += "_cap";
      s += std::to_string(ti.param.budget);
      return s;
    });

}  // namespace
}  // namespace odmpi::mpi
