// Unit tests for the smaller MPI-layer pieces: packet headers, datatype
// tables, reduction ops, groups, wait policies, and the matching engine
// in isolation.
#include <gtest/gtest.h>

#include <vector>

#include "src/mpi/datatype.h"
#include "src/mpi/group.h"
#include "src/mpi/matching.h"
#include "src/mpi/op.h"
#include "src/mpi/packet.h"
#include "src/mpi/types.h"

namespace odmpi::mpi {
namespace {

TEST(PacketHeader, RoundTripsThroughBuffer) {
  PacketHeader h;
  h.type = PacketType::kCts;
  h.credits = 17;
  h.src_rank = 42;
  h.tag = -3;
  h.context = 9;
  h.total_bytes = 123456789ULL;
  h.cookie = 0xDEADBEEFCAFEULL;
  h.recv_cookie = 77;
  h.remote_addr = 0x7fff12345678ULL;
  h.remote_handle = 5;
  std::byte buf[kHeaderBytes];
  write_header(buf, h);
  const PacketHeader r = read_header(buf);
  EXPECT_EQ(r.type, PacketType::kCts);
  EXPECT_EQ(r.credits, 17);
  EXPECT_EQ(r.src_rank, 42);
  EXPECT_EQ(r.tag, -3);
  EXPECT_EQ(r.context, 9);
  EXPECT_EQ(r.total_bytes, 123456789ULL);
  EXPECT_EQ(r.cookie, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(r.recv_cookie, 77ULL);
  EXPECT_EQ(r.remote_addr, 0x7fff12345678ULL);
  EXPECT_EQ(r.remote_handle, 5u);
}

TEST(DatatypeTable, SizesMatchCxxTypes) {
  EXPECT_EQ(kByte.size(), sizeof(char));
  EXPECT_EQ(kInt32.size(), sizeof(std::int32_t));
  EXPECT_EQ(kInt64.size(), sizeof(std::int64_t));
  EXPECT_EQ(kFloat.size(), sizeof(float));
  EXPECT_EQ(kDouble.size(), sizeof(double));
  EXPECT_EQ(datatype_of<double>(), kDouble);
  EXPECT_EQ(datatype_of<std::int32_t>(), kInt32);
}

TEST(Ops, ArithmeticOnDoubles) {
  double a[3] = {1, 5, -2}, b[3] = {4, 2, -7};
  apply_op(Op::kSum, kDouble, a, b, 3);
  EXPECT_DOUBLE_EQ(a[0], 5);
  apply_op(Op::kMax, kDouble, a, b, 3);
  EXPECT_DOUBLE_EQ(a[2], -7 > -9 ? -7.0 : -9.0);
  double c[2] = {3, 4}, d[2] = {2, 0.5};
  apply_op(Op::kProd, kDouble, c, d, 2);
  EXPECT_DOUBLE_EQ(c[0], 6);
  EXPECT_DOUBLE_EQ(c[1], 2);
  apply_op(Op::kMin, kDouble, c, d, 2);
  EXPECT_DOUBLE_EQ(c[0], 2);
}

TEST(Ops, LogicalAndBitwiseOnIntegers) {
  std::int32_t a[4] = {0, 1, 5, 0}, b[4] = {0, 2, 0, 0};
  std::int32_t l[4] = {0, 1, 5, 0};
  apply_op(Op::kLand, kInt32, l, b, 4);
  EXPECT_EQ(l[0], 0);
  EXPECT_EQ(l[1], 1);
  EXPECT_EQ(l[2], 0);
  std::int32_t o[4] = {0, 1, 5, 0};
  apply_op(Op::kLor, kInt32, o, b, 4);
  EXPECT_EQ(o[0], 0);
  EXPECT_EQ(o[1], 1);
  EXPECT_EQ(o[2], 1);
  std::int32_t x[2] = {0b1100, 0b1010};
  std::int32_t y[2] = {0b1010, 0b0110};
  apply_op(Op::kBand, kInt32, x, y, 2);
  EXPECT_EQ(x[0], 0b1000);
  apply_op(Op::kBor, kInt32, x, y, 2);
  EXPECT_EQ(x[1], (0b1010 & 0b0110) | 0b0110);
  (void)a;
}

TEST(GroupUnit, WorldAndTranslation) {
  Group g = Group::world(5);
  EXPECT_EQ(g.size(), 5);
  EXPECT_EQ(g.world_rank(3), 3);
  EXPECT_EQ(g.rank_of_world(4), 4);
  EXPECT_TRUE(g.contains(0));
  EXPECT_FALSE(g.contains(5));
}

TEST(GroupUnit, SubsetTranslation) {
  Group g(std::vector<Rank>{7, 2, 9});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.world_rank(0), 7);
  EXPECT_EQ(g.world_rank(2), 9);
  EXPECT_EQ(g.rank_of_world(2), 1);
  EXPECT_EQ(g.rank_of_world(3), -1);
}

TEST(WaitPolicyUnit, PollingAndSpinwait) {
  EXPECT_TRUE(WaitPolicy::polling().is_polling());
  EXPECT_FALSE(WaitPolicy::spinwait(100).is_polling());
  EXPECT_EQ(WaitPolicy::spinwait(250).spin_count, 250);
  EXPECT_STREQ(to_string(WaitPolicy::polling()), "polling");
  EXPECT_STREQ(to_string(WaitPolicy::spinwait()), "spinwait");
}

// --- MatchingEngine in isolation -------------------------------------------

RequestPtr make_recv(ContextId ctx, Rank src, Tag tag) {
  auto r = std::make_shared<RequestState>();
  r->kind = ReqKind::kRecv;
  r->context = ctx;
  r->src = src;
  r->tag = tag;
  return r;
}

std::unique_ptr<UnexpectedMsg> make_msg(ContextId ctx, Rank src, Tag tag) {
  auto m = std::make_unique<UnexpectedMsg>();
  m->context = ctx;
  m->src = src;
  m->tag = tag;
  m->total_bytes = 0;
  return m;
}

TEST(Matching, ArrivalMatchesOldestPostedFirst) {
  MatchingEngine me;
  auto r1 = make_recv(0, 3, 5);
  auto r2 = make_recv(0, 3, 5);
  me.add_posted(r1);
  me.add_posted(r2);
  EXPECT_EQ(me.match_arrival(0, 3, 5), r1);
  EXPECT_EQ(me.match_arrival(0, 3, 5), r2);
  EXPECT_EQ(me.match_arrival(0, 3, 5), nullptr);
}

TEST(Matching, WildcardsMatchAnything) {
  MatchingEngine me;
  me.add_posted(make_recv(0, kAnySource, kAnyTag));
  EXPECT_NE(me.match_arrival(0, 7, 123), nullptr);
  // But context never wildcards.
  me.add_posted(make_recv(1, kAnySource, kAnyTag));
  EXPECT_EQ(me.match_arrival(0, 7, 123), nullptr);
}

TEST(Matching, PostedSkipsWrongEnvelope) {
  MatchingEngine me;
  me.add_posted(make_recv(0, 2, 9));
  EXPECT_EQ(me.match_arrival(0, 2, 8), nullptr);   // wrong tag
  EXPECT_EQ(me.match_arrival(0, 3, 9), nullptr);   // wrong src
  EXPECT_NE(me.match_arrival(0, 2, 9), nullptr);
}

TEST(Matching, UnexpectedClaimedEntriesAreSkipped) {
  MatchingEngine me;
  UnexpectedMsg* m1 = me.add_unexpected(make_msg(0, 1, 4));
  UnexpectedMsg* m2 = me.add_unexpected(make_msg(0, 1, 4));
  auto recv = make_recv(0, 1, 4);
  EXPECT_EQ(me.match_posted(recv), m1);
  m1->claimed = recv;
  auto recv2 = make_recv(0, 1, 4);
  EXPECT_EQ(me.match_posted(recv2), m2);
}

TEST(Matching, RemoveUnexpectedKeepsOrderOfOthers) {
  MatchingEngine me;
  UnexpectedMsg* m1 = me.add_unexpected(make_msg(0, 1, 1));
  UnexpectedMsg* m2 = me.add_unexpected(make_msg(0, 1, 1));
  UnexpectedMsg* m3 = me.add_unexpected(make_msg(0, 1, 1));
  me.remove_unexpected(m2);
  auto recv = make_recv(0, 1, 1);
  EXPECT_EQ(me.match_posted(recv), m1);
  me.remove_unexpected(m1);
  EXPECT_EQ(me.match_posted(recv), m3);
}

TEST(Matching, CancelPostedRemovesExactlyThatRequest) {
  MatchingEngine me;
  auto r1 = make_recv(0, kAnySource, 1);
  auto r2 = make_recv(0, kAnySource, 1);
  me.add_posted(r1);
  me.add_posted(r2);
  EXPECT_TRUE(me.cancel_posted(r1));
  EXPECT_FALSE(me.cancel_posted(r1));
  EXPECT_EQ(me.match_arrival(0, 0, 1), r2);
}

TEST(Matching, PeekDoesNotConsume) {
  MatchingEngine me;
  me.add_unexpected(make_msg(0, 5, 2));
  EXPECT_NE(me.peek_unexpected(0, kAnySource, kAnyTag), nullptr);
  EXPECT_NE(me.peek_unexpected(0, 5, 2), nullptr);
  EXPECT_EQ(me.peek_unexpected(0, 6, 2), nullptr);
  EXPECT_EQ(me.unexpected_count(), 1u);
}

}  // namespace
}  // namespace odmpi::mpi
