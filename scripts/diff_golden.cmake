# Runs a figure benchmark and byte-compares its stdout against a golden
# transcript. Invoked by ctest (see bench/CMakeLists.txt):
#
#   cmake -DBIN=<benchmark binary> -DGOLDEN=<golden file> \
#         -DACTUAL=<scratch output path> -P diff_golden.cmake
#
# The simulator is deterministic by contract — same inputs, same virtual
# timeline, same bytes out — so any diff here means an engine or protocol
# change altered event ordering, not just performance.
unset(ENV{ODMPI_QUICK})
execute_process(
  COMMAND ${BIN}
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BIN} exited with status ${rc}")
endif()
file(WRITE ${ACTUAL} "${out}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${ACTUAL}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "output of ${BIN} differs from golden ${GOLDEN}; actual saved to "
    "${ACTUAL}. A diff means event ordering changed — if intentional, "
    "re-capture the golden and say why in the commit message.")
endif()
