#!/usr/bin/env python3
"""Sanity-checks a Chrome trace-event JSON file written by sim::Tracer.

Validates the invariants every odmpi trace must satisfy, so CI can gate
on a bench run with --trace=<file>:

  * the file is valid JSON with a non-empty ``traceEvents`` array;
  * every event carries the required keys for its phase ('X' spans also
    need ``dur``, counters carry ``args.value``);
  * phases are limited to X/i/C/M and categories to the four tracer
    lanes (fabric, conn, msg, coll);
  * timestamps and durations are non-negative and no span is left open;
  * every pid seen in a data event also has a process_name metadata
    record (the lane naming the viewer relies on).

Usage:
    check_trace.py <trace.json> [--require-cat fabric,conn,msg]

Exits non-zero listing every violation.
"""

import argparse
import json
import pathlib
import sys

KNOWN_PHASES = {"X", "i", "C", "M"}
KNOWN_CATS = {"fabric", "conn", "msg", "coll"}


def check(path: pathlib.Path, require_cats: set) -> list:
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: no traceEvents"]

    seen_cats = set()
    data_pids = set()
    named_pids = set()
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(e.get("pid"))
            continue
        for key in ("name", "cat", "ts", "pid", "tid"):
            if key not in e:
                errors.append(f"event {i}: missing {key!r}")
        cat = e.get("cat")
        if cat not in KNOWN_CATS:
            errors.append(f"event {i}: unknown category {cat!r}")
        else:
            seen_cats.add(cat)
        data_pids.add(e.get("pid"))
        if float(e.get("ts", 0)) < 0:
            errors.append(f"event {i}: negative timestamp")
        if ph == "X":
            if "dur" not in e:
                errors.append(f"event {i}: span without dur")
            elif float(e["dur"]) < 0:
                errors.append(f"event {i}: negative duration")
            if e.get("args", {}).get("open"):
                errors.append(
                    f"event {i}: span {e.get('name')!r} never closed"
                )
        if ph == "C" and "value" not in e.get("args", {}):
            errors.append(f"event {i}: counter without args.value")

    for pid in sorted(data_pids - named_pids):
        errors.append(f"pid {pid}: no process_name metadata record")
    for cat in sorted(require_cats - seen_cats):
        errors.append(f"required category {cat!r} absent from trace")
    return errors


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=pathlib.Path)
    parser.add_argument(
        "--require-cat",
        default="",
        help="comma-separated categories that must appear in the trace",
    )
    args = parser.parse_args(argv[1:])
    require = {c for c in args.require_cat.split(",") if c}
    unknown = require - KNOWN_CATS
    if unknown:
        print(f"unknown --require-cat value(s): {sorted(unknown)}",
              file=sys.stderr)
        return 2

    errors = check(args.trace, require)
    if errors:
        for err in errors:
            print(f"TRACE CHECK FAILED: {err}", file=sys.stderr)
        return 1
    doc = json.loads(args.trace.read_text())
    n = sum(1 for e in doc["traceEvents"] if e.get("ph") != "M")
    print(f"{args.trace}: OK ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
