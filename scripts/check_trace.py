#!/usr/bin/env python3
"""Sanity-checks a Chrome trace-event JSON file written by sim::Tracer.

Validates the invariants every odmpi trace must satisfy, so CI can gate
on a bench run with --trace=<file>:

  * the file is valid JSON with a non-empty ``traceEvents`` array;
  * every event carries the required keys for its phase ('X' spans also
    need ``dur``, counters carry ``args.value``);
  * phases are limited to X/i/C/M and categories to the four tracer
    lanes (fabric, conn, msg, coll);
  * timestamps and durations are non-negative and no span is left open
    (except on a rank with a fault.rank_killed instant — dying mid-
    operation legitimately abandons the span);
  * every pid seen in a data event also has a process_name metadata
    record (the lane naming the viewer relies on);
  * with --check-evictions, the eviction lifecycle on every (pid, peer)
    channel is well-formed: mpi.conn.evict and mpi.conn.reconnect
    strictly alternate starting with an evict — a reconnect with no
    preceding evict is impossible (the first connect is never traced as
    a reconnect), and a trailing evict with no reconnect is a clean
    shutdown, which is fine;
  * with --check-rendezvous, every rendezvous handshake traced in the
    msg lane is causally ordered: correlating the via.rdma.* instants
    by (sender rank, sender cookie), each transfer must run
    rts -> cts -> write -> fin (write mode) or rts -> read -> fin
    (read mode, where the receiver pulls and the fin travels back to
    the sender), with no mode mixing, exactly one rts and one fin per
    transfer, and non-decreasing timestamps along the chain;
  * with --check-failures, the rank-death cascade is causally ordered:
    every survivor event about a dead rank (mpi.conn.peer_failed
    learnings, kPeerFailed-labelled mpi.conn.failed channel failures,
    mpi.msg.aborted request aborts) happens at or after that rank's
    fault.rank_killed instant, each surviving pid learns of a given
    death exactly once, and every death somebody aborted work over was
    actually learned by that pid first.

Usage:
    check_trace.py <trace.json> [--require-cat fabric,conn,msg]
                   [--check-evictions] [--min-evictions N]
                   [--check-rendezvous] [--min-rendezvous N]
                   [--check-failures] [--min-deaths N]

Exits non-zero listing every violation.
"""

import argparse
import json
import pathlib
import sys

KNOWN_PHASES = {"X", "i", "C", "M"}
KNOWN_CATS = {"fabric", "conn", "msg", "coll"}


def check(path: pathlib.Path, require_cats: set) -> list:
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: no traceEvents"]

    killed_pids = {
        e.get("pid") for e in events if e.get("name") == "fault.rank_killed"
    }
    seen_cats = set()
    data_pids = set()
    named_pids = set()
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(e.get("pid"))
            continue
        for key in ("name", "cat", "ts", "pid", "tid"):
            if key not in e:
                errors.append(f"event {i}: missing {key!r}")
        cat = e.get("cat")
        if cat not in KNOWN_CATS:
            errors.append(f"event {i}: unknown category {cat!r}")
        else:
            seen_cats.add(cat)
        data_pids.add(e.get("pid"))
        if float(e.get("ts", 0)) < 0:
            errors.append(f"event {i}: negative timestamp")
        if ph == "X":
            if "dur" not in e:
                errors.append(f"event {i}: span without dur")
            elif float(e["dur"]) < 0:
                errors.append(f"event {i}: negative duration")
            if e.get("args", {}).get("open") and e.get("pid") not in killed_pids:
                errors.append(
                    f"event {i}: span {e.get('name')!r} never closed"
                )
        if ph == "C" and "value" not in e.get("args", {}):
            errors.append(f"event {i}: counter without args.value")

    for pid in sorted(data_pids - named_pids):
        errors.append(f"pid {pid}: no process_name metadata record")
    for cat in sorted(require_cats - seen_cats):
        errors.append(f"required category {cat!r} absent from trace")
    return errors


def check_evictions(path: pathlib.Path, min_evictions: int) -> list:
    """Validates the resource-capped eviction lifecycle in a trace.

    Per (pid, peer) channel, in timestamp order, the conn lane must show
    evict / reconnect strictly alternating and starting with an evict.
    A channel may end on an unanswered evict — that is the clean-shutdown
    case where the pair never spoke again before MPI_Finalize.
    """
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    lifecycle = {}  # (pid, peer) -> list of (ts, index_in_file, kind)
    for i, e in enumerate(doc.get("traceEvents", [])):
        name = e.get("name")
        if name not in ("mpi.conn.evict", "mpi.conn.reconnect"):
            continue
        kind = "evict" if name == "mpi.conn.evict" else "reconnect"
        peer = e.get("args", {}).get("peer", -1)
        if not isinstance(peer, int) or peer < 0:
            errors.append(f"event {i}: {name} without a valid args.peer")
            continue
        key = (e.get("pid"), peer)
        lifecycle.setdefault(key, []).append((float(e.get("ts", 0)), i, kind))

    n_evict = 0
    for (pid, peer), events in sorted(lifecycle.items()):
        events.sort()  # ts, then file order for simultaneous instants
        expect = "evict"
        for ts, i, kind in events:
            if kind != expect:
                errors.append(
                    f"pid {pid} peer {peer}: event {i} is a {kind} at "
                    f"ts={ts} but the lifecycle expected {expect!r} "
                    "(evict/reconnect must alternate, starting with evict)"
                )
                break
            if kind == "evict":
                n_evict += 1
            expect = "reconnect" if kind == "evict" else "evict"

    if n_evict < min_evictions:
        errors.append(
            f"only {n_evict} eviction(s) traced, expected at least "
            f"{min_evictions} — the capped run did not actually churn"
        )
    return errors


def check_rendezvous(path: pathlib.Path, min_rendezvous: int) -> list:
    """Validates the rendezvous protocol ordering in a trace.

    The device emits one msg-lane instant per protocol step, all
    correlated by the *sender's* cookie (args.a0):

      * ``via.rdma.rts``   on the sender's pid (args.peer = receiver);
      * ``via.rdma.cts``   on the receiver's pid (args.peer = sender);
      * ``via.rdma.write`` on the sender's pid — the RDMA write posts;
      * ``via.rdma.read``  on the receiver's pid (args.peer = sender) —
        the read-rendezvous pull posts instead of cts/write;
      * ``via.rdma.fin``   with args.a1 = 0 on the receiver's pid
        (write mode: the fin packet notifies the receiver) or
        args.a1 = 1 on the sender's pid (read mode: the reverse fin
        releases the sender).

    So the correlation key is (sender rank, cookie) where the sender
    rank is the pid for rts/write/fin-a1=1 and args.peer for
    cts/read/fin-a1=0.  Per key the chain must be causally ordered
    rts <= cts <= write <= fin or rts <= read <= fin, with exactly one
    rts and one fin and no mixing of the two modes.  (A zero-byte write
    rendezvous legitimately has no write instant: there is nothing to
    RDMA.)
    """
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    STEPS = {
        "via.rdma.rts": "rts",
        "via.rdma.cts": "cts",
        "via.rdma.write": "write",
        "via.rdma.read": "read",
        "via.rdma.fin": "fin",
    }
    chains = {}  # (sender, cookie) -> {step: [(ts, event index)]}
    for i, e in enumerate(doc.get("traceEvents", [])):
        step = STEPS.get(e.get("name"))
        if step is None:
            continue
        args = e.get("args", {})
        cookie = args.get("a0")
        if cookie is None:
            errors.append(f"event {i}: {e.get('name')} without args.a0")
            continue
        if step in ("rts", "write"):
            sender = e.get("pid")
        elif step == "fin":
            sender = e.get("pid") if args.get("a1") == 1 else args.get(
                "peer", -1)
        else:  # cts, read — emitted at the receiver, peer names the sender
            sender = args.get("peer", -1)
        if not isinstance(sender, int) or sender < 0:
            errors.append(
                f"event {i}: {e.get('name')} without a resolvable sender"
            )
            continue
        chain = chains.setdefault((sender, cookie), {})
        chain.setdefault(step, []).append((float(e.get("ts", 0)), i))

    n_complete = 0
    for (sender, cookie), chain in sorted(chains.items()):
        where = f"rendezvous (sender {sender}, cookie {cookie})"
        for step in ("rts", "fin"):
            if len(chain.get(step, [])) > 1:
                errors.append(f"{where}: {len(chain[step])} {step} instants")
        if "rts" not in chain:
            errors.append(f"{where}: no rts — the handshake has no start")
            continue
        if "fin" not in chain:
            errors.append(f"{where}: no fin — the transfer never completed")
            continue
        is_read = "read" in chain
        if is_read and ("cts" in chain or "write" in chain):
            errors.append(f"{where}: mixes read and write protocol steps")
            continue
        order = ["rts", "read", "fin"] if is_read else [
            "rts", "cts", "write", "fin"]
        prev_ts, prev_step = None, None
        ok = True
        for step in order:
            if step not in chain:
                continue  # zero-byte write rendezvous: no write instant
            ts = min(t for t, _ in chain[step])
            if prev_ts is not None and ts < prev_ts:
                errors.append(
                    f"{where}: {step} at ts={ts} precedes {prev_step} at "
                    f"ts={prev_ts} — protocol steps out of causal order"
                )
                ok = False
                break
            prev_ts, prev_step = ts, step
        if ok:
            n_complete += 1

    if n_complete < min_rendezvous:
        errors.append(
            f"only {n_complete} complete rendezvous traced, expected at "
            f"least {min_rendezvous} — the run never left the eager path"
        )
    return errors


def check_failures(path: pathlib.Path, min_deaths: int) -> list:
    """Validates the rank-death cascade in a trace.

    The tracer emits one ``fault.rank_killed`` instant on the victim's
    pid at the moment the kill fires.  Everything a survivor does about
    that death must be causally downstream of it:

      * ``mpi.conn.peer_failed`` (pid learned args.peer is dead) — at or
        after the kill, and at most one per (pid, victim): a device
        records a death the first time it learns of it and never again;
      * ``mpi.conn.failed`` with args.a0 == 12 (via::Status::kPeerFailed)
        — a channel failed *because* the peer died, so the death must
        predate it and the pid must have a peer_failed learning event;
      * ``mpi.msg.aborted`` against the victim (args.peer >= 0 — wildcard
        aborts carry peer -1 and are skipped) — at or after the kill.
    """
    K_PEER_FAILED = 12  # via::Status::kPeerFailed ordinal
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    kills = {}  # victim pid -> kill ts
    for i, e in enumerate(doc.get("traceEvents", [])):
        if e.get("name") != "fault.rank_killed":
            continue
        victim = e.get("pid")
        ts = float(e.get("ts", 0))
        if victim in kills:
            errors.append(
                f"event {i}: pid {victim} killed twice "
                f"(ts={kills[victim]} and ts={ts})"
            )
        else:
            kills[victim] = ts

    if len(kills) < min_deaths:
        errors.append(
            f"only {len(kills)} fault.rank_killed instant(s) traced, "
            f"expected at least {min_deaths} — the kill never fired"
        )
    if not kills:
        return errors

    learned = set()  # (pid, victim) pairs that saw mpi.conn.peer_failed
    for i, e in enumerate(doc.get("traceEvents", [])):
        name = e.get("name")
        if name not in ("mpi.conn.peer_failed", "mpi.conn.failed",
                        "mpi.msg.aborted"):
            continue
        peer = e.get("args", {}).get("peer", -1)
        if not isinstance(peer, int) or peer < 0:
            if name == "mpi.msg.aborted":
                continue  # wildcard abort, no single victim to check
            errors.append(f"event {i}: {name} without a valid args.peer")
            continue
        pid = e.get("pid")
        ts = float(e.get("ts", 0))

        if name == "mpi.conn.peer_failed":
            if peer not in kills:
                errors.append(
                    f"event {i}: pid {pid} reports peer {peer} failed "
                    "but that rank was never killed"
                )
                continue
            if ts < kills[peer]:
                errors.append(
                    f"event {i}: pid {pid} learned of peer {peer}'s "
                    f"death at ts={ts}, before the kill at "
                    f"ts={kills[peer]}"
                )
            if (pid, peer) in learned:
                errors.append(
                    f"event {i}: pid {pid} learned of peer {peer}'s "
                    "death twice — deaths must be recorded on first "
                    "learning only"
                )
            learned.add((pid, peer))
        elif name == "mpi.conn.failed":
            if e.get("args", {}).get("a0") != K_PEER_FAILED:
                continue  # ordinary timeout/transport failure
            if peer not in kills:
                errors.append(
                    f"event {i}: pid {pid} channel to {peer} failed "
                    "with kPeerFailed but that rank was never killed"
                )
            elif ts < kills[peer]:
                errors.append(
                    f"event {i}: pid {pid} channel to {peer} failed "
                    f"with kPeerFailed at ts={ts}, before the kill at "
                    f"ts={kills[peer]}"
                )
        else:  # mpi.msg.aborted
            if peer in kills and ts < kills[peer]:
                errors.append(
                    f"event {i}: pid {pid} aborted a request against "
                    f"{peer} at ts={ts}, before the kill at "
                    f"ts={kills[peer]}"
                )

    # Every kPeerFailed channel failure must be explained by a learning
    # event on the same pid (the device labels peer_error only from its
    # known-failed set or the fault plan — the former always traces).
    for i, e in enumerate(doc.get("traceEvents", [])):
        if e.get("name") != "mpi.conn.failed":
            continue
        if e.get("args", {}).get("a0") != K_PEER_FAILED:
            continue
        pid = e.get("pid")
        peer = e.get("args", {}).get("peer", -1)
        if peer in kills and (pid, peer) not in learned:
            errors.append(
                f"event {i}: pid {pid} failed its channel to {peer} "
                "with kPeerFailed but never traced a peer_failed "
                "learning event for that death"
            )
    return errors


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=pathlib.Path)
    parser.add_argument(
        "--require-cat",
        default="",
        help="comma-separated categories that must appear in the trace",
    )
    parser.add_argument(
        "--check-evictions",
        action="store_true",
        help="validate the conn.evict / conn.reconnect lifecycle "
        "(resource-capped runs)",
    )
    parser.add_argument(
        "--min-evictions",
        type=int,
        default=0,
        help="with --check-evictions, fail unless the trace shows at "
        "least this many evictions",
    )
    parser.add_argument(
        "--check-rendezvous",
        action="store_true",
        help="validate the via.rdma.* rendezvous handshake ordering "
        "(rts/cts/write/fin or rts/read/fin per transfer)",
    )
    parser.add_argument(
        "--min-rendezvous",
        type=int,
        default=0,
        help="with --check-rendezvous, fail unless the trace shows at "
        "least this many completed rendezvous transfers",
    )
    parser.add_argument(
        "--check-failures",
        action="store_true",
        help="validate the rank-death cascade ordering "
        "(fault-injected runs with rank_kills)",
    )
    parser.add_argument(
        "--min-deaths",
        type=int,
        default=0,
        help="with --check-failures, fail unless the trace shows at "
        "least this many fault.rank_killed instants",
    )
    args = parser.parse_args(argv[1:])
    require = {c for c in args.require_cat.split(",") if c}
    unknown = require - KNOWN_CATS
    if unknown:
        print(f"unknown --require-cat value(s): {sorted(unknown)}",
              file=sys.stderr)
        return 2

    errors = check(args.trace, require)
    if args.check_evictions or args.min_evictions:
        errors += check_evictions(args.trace, args.min_evictions)
    if args.check_rendezvous or args.min_rendezvous:
        errors += check_rendezvous(args.trace, args.min_rendezvous)
    if args.check_failures or args.min_deaths:
        errors += check_failures(args.trace, args.min_deaths)
    if errors:
        for err in errors:
            print(f"TRACE CHECK FAILED: {err}", file=sys.stderr)
        return 1
    doc = json.loads(args.trace.read_text())
    n = sum(1 for e in doc["traceEvents"] if e.get("ph") != "M")
    print(f"{args.trace}: OK ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
