#!/usr/bin/env python3
"""Coarse perf-regression gate for bench_simcore.

Compares a fresh ``bench_simcore --benchmark_format=json`` run against the
floors recorded in BENCH_simcore.json at the repo root. The floors are set
to 1/5 of the numbers measured when the record was committed, so only a
>5x throughput regression fails — CI runners are too noisy for anything
tighter, and the point of the gate is catching algorithmic regressions
(an accidental O(n) scan back on the hot path), not 20% wobble.

Usage:
    check_bench_floor.py <fresh_benchmark.json> [<BENCH_simcore.json>]

Exits non-zero listing every benchmark below its floor.
"""

import json
import pathlib
import sys


def items_per_second(results: dict) -> tuple:
    """Returns ({name: items_per_second}, [names with a null/missing rate]).

    A bench without an items_per_second rate cannot be floor-checked, so a
    null is an error to surface, not a row to skip silently: every bench in
    bench_simcore must call SetItemsProcessed.
    """
    out = {}
    nulls = []
    for bench in results.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev under --benchmark_repetitions)
        # repeat the base name; only check the raw iteration rows.
        if bench.get("run_type") == "aggregate":
            continue
        ips = bench.get("items_per_second")
        if ips is None:
            nulls.append(bench["name"])
        else:
            out[bench["name"]] = ips
    return out, nulls


def record_nulls(record: dict) -> list:
    """Names in the committed record whose before/after/speedup are null."""
    bad = []
    for bench in record.get("benchmarks", []):
        if any(
            bench.get(key) is None
            for key in ("before_items_per_second", "after_items_per_second",
                        "speedup")
        ):
            bad.append(bench["name"])
    return bad


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    fresh_path = pathlib.Path(argv[1])
    record_path = (
        pathlib.Path(argv[2])
        if len(argv) > 2
        else pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_simcore.json"
    )

    fresh, fresh_nulls = items_per_second(json.loads(fresh_path.read_text()))
    record = json.loads(record_path.read_text())
    floors = record["floors"]

    failures = []
    missing = []
    for name in fresh_nulls:
        print(
            f"NULL {name}: no items_per_second in fresh run "
            "(missing SetItemsProcessed?)",
            file=sys.stderr,
        )
    for name in record_nulls(record):
        print(
            f"NULL {name}: record has null before/after/speedup — "
            "measure and fill it in",
            file=sys.stderr,
        )
        missing.append(name)
    missing.extend(fresh_nulls)
    for name, floor in sorted(floors.items()):
        got = fresh.get(name)
        if got is None:
            missing.append(name)
            continue
        status = "ok" if got >= floor else "FAIL"
        print(f"{status:4s} {name:60s} {got:14.1f} >= floor {floor:14.1f}")
        if got < floor:
            failures.append((name, got, floor))

    for name in missing:
        print(f"MISS {name}: not present in fresh run", file=sys.stderr)

    if failures or missing:
        print(
            f"\n{len(failures)} benchmark(s) below floor, "
            f"{len(missing)} missing — >5x regression or renamed bench; "
            "if intentional, re-record BENCH_simcore.json.",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(floors)} benchmarks at or above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
