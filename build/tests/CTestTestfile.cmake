# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_nas[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_via[1]_include.cmake")
