file(REMOVE_RECURSE
  "CMakeFiles/test_via.dir/via/connection_test.cpp.o"
  "CMakeFiles/test_via.dir/via/connection_test.cpp.o.d"
  "CMakeFiles/test_via.dir/via/device_test.cpp.o"
  "CMakeFiles/test_via.dir/via/device_test.cpp.o.d"
  "CMakeFiles/test_via.dir/via/endpoint_test.cpp.o"
  "CMakeFiles/test_via.dir/via/endpoint_test.cpp.o.d"
  "CMakeFiles/test_via.dir/via/fabric_test.cpp.o"
  "CMakeFiles/test_via.dir/via/fabric_test.cpp.o.d"
  "CMakeFiles/test_via.dir/via/memory_test.cpp.o"
  "CMakeFiles/test_via.dir/via/memory_test.cpp.o.d"
  "CMakeFiles/test_via.dir/via/stress_test.cpp.o"
  "CMakeFiles/test_via.dir/via/stress_test.cpp.o.d"
  "test_via"
  "test_via.pdb"
  "test_via[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
