
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/via/connection_test.cpp" "tests/CMakeFiles/test_via.dir/via/connection_test.cpp.o" "gcc" "tests/CMakeFiles/test_via.dir/via/connection_test.cpp.o.d"
  "/root/repo/tests/via/device_test.cpp" "tests/CMakeFiles/test_via.dir/via/device_test.cpp.o" "gcc" "tests/CMakeFiles/test_via.dir/via/device_test.cpp.o.d"
  "/root/repo/tests/via/endpoint_test.cpp" "tests/CMakeFiles/test_via.dir/via/endpoint_test.cpp.o" "gcc" "tests/CMakeFiles/test_via.dir/via/endpoint_test.cpp.o.d"
  "/root/repo/tests/via/fabric_test.cpp" "tests/CMakeFiles/test_via.dir/via/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/test_via.dir/via/fabric_test.cpp.o.d"
  "/root/repo/tests/via/memory_test.cpp" "tests/CMakeFiles/test_via.dir/via/memory_test.cpp.o" "gcc" "tests/CMakeFiles/test_via.dir/via/memory_test.cpp.o.d"
  "/root/repo/tests/via/stress_test.cpp" "tests/CMakeFiles/test_via.dir/via/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_via.dir/via/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
